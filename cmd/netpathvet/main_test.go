package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"
)

// TestRepoIsClean lints the entire module the test file lives in. This is
// the same invocation CI runs; a violation anywhere in the repo fails here
// first, with the diagnostic in the failure message.
func TestRepoIsClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"./..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("netpathvet found %d violation(s) in the repo:\n%s", n, buf.String())
	}
}

func TestFindModule(t *testing.T) {
	_, thisFile, _, _ := runtime.Caller(0)
	root, modpath, err := findModule(filepath.Dir(thisFile))
	if err != nil {
		t.Fatal(err)
	}
	if modpath != "netpath" {
		t.Errorf("module path = %q, want %q", modpath, "netpath")
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "" {
		t.Errorf("implausible module root %q", root)
	}
}

// TestSingleDirArgs lints one directory given as an explicit argument.
func TestSingleDirArgs(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("linting cmd/netpathvet itself found %d violation(s):\n%s", n, buf.String())
	}
}
