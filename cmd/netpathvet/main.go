// Command netpathvet is the repository's custom lint pass. It enforces three
// invariants the standard toolchain cannot know about:
//
//   - sinkcheck: *telemetry.Sink methods are not nil-safe by design (the
//     guard would cost a branch on every disabled-telemetry counter write),
//     so every call site must be dominated by its own nil check.
//   - hotalloc: packages tagged hot-path (internal/vm, internal/path,
//     internal/telemetry, internal/snapshot) must not call fmt or the
//     allocating strings/strconv helpers outside functions marked cold.
//   - dispatchpure: functions annotated //netpathvet:dispatch (the tier-1
//     fragment loop, the tier-2 guard check and fused micro-op loop) must not
//     acquire mutexes, touch channels, select, close, or spawn goroutines —
//     the mutator never stalls; blocking work lives in the promotion slow
//     path and the background compiler.
//
// Usage:
//
//	netpathvet [./...]          lint every package of the enclosing module
//	netpathvet dir [dir ...]    lint specific package directories
//
// Diagnostics print as file:line:col: message (analyzer); the exit status is
// 1 when anything is flagged. The analyzers live in internal/lint and mirror
// the golang.org/x/tools/go/analysis API so they can be ported to the real
// driver if that dependency is ever vendored.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"netpath/internal/lint"
)

func main() {
	n, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpathvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// run lints the requested packages, prints diagnostics to w, and returns
// how many were found.
func run(args []string, w io.Writer) (int, error) {
	var pkgs []*lint.Package
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		root, modpath, err := findModule(".")
		if err != nil {
			return 0, err
		}
		pkgs, err = lint.LoadModule(root, modpath)
		if err != nil {
			return 0, err
		}
	} else {
		for _, dir := range args {
			root, modpath, err := findModule(dir)
			if err != nil {
				return 0, err
			}
			abs, err := filepath.Abs(dir)
			if err != nil {
				return 0, err
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return 0, err
			}
			ip := modpath
			if rel != "." {
				ip = modpath + "/" + filepath.ToSlash(rel)
			}
			pkg, err := lint.LoadDir(dir, ip)
			if err != nil {
				return 0, err
			}
			if pkg != nil {
				pkgs = append(pkgs, pkg)
			}
		}
	}
	diags, fsets, err := lint.Run(lint.Analyzers(), pkgs)
	if err != nil {
		return 0, err
	}
	for i, d := range diags {
		pos := fsets[i].Position(d.Pos)
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	return len(diags), nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
