// Command netpathd serves the VM → NET → fragment-cache stack as a hardened
// multi-tenant HTTP service. Tenants POST assembled guests (or encoded
// programs, or built-in benchmark names) to /v1/run; the daemon verifies,
// admits, rate-limits, executes under per-tenant step/deadline/table
// budgets, and answers with the run result or a typed error. Telemetry,
// health, and operator status ride the same listener.
//
// Usage:
//
//	netpathd [-addr :8092] [-workers n] [-queue n] [-rate r] [-burst b]
//	         [-max-tenants n] [-shared-tables] [-telemetry-out file]
//	         [-snapshot-in file] [-snapshot-out file] [-snapshot-store n]
//	         [-tier2] [-tier2-workers n] [-tier2-queue n] [-tier2-threshold n]
//	         [-trace-sample f] [-trace-store n] [-flight n] [-flight-out file]
//
// Endpoints:
//
//	POST /v1/run         submit a guest (JSON envelope; see internal/server)
//	GET  /healthz        liveness
//	GET  /readyz         readiness (typed JSON; 503 while draining or degraded)
//	GET  /statusz        admission/ladder/tenant state (JSON)
//	GET  /metrics        Prometheus text (VM + dynamo + server instruments)
//	GET  /snapshot       versioned JSON telemetry snapshot
//	GET  /events         telemetry event ring drain
//	GET  /v1/trace/{id}  retained span trace (netpath-trace/v1 JSON)
//	GET  /debug/flight   flight-recorder freezes (netpath-flight/v1 JSON)
//
// With -trace-store n, the daemon retains up to n request traces: runs are
// head-sampled at -trace-sample (a traceparent header with the sampled flag
// forces retention), and errored/bailed/deopted/shed runs are tail-promoted
// so incidents always leave a skeleton trace. The response carries the
// trace_id and a traceparent header; fetch the tree from /v1/trace/{id} and
// render it with `pathdump trace`. -flight n keeps a per-tenant ring of the
// last n span records and freezes it on faults, bails, deopts, and sheds.
//
// SIGTERM/SIGINT starts a graceful drain: admission closes with typed 503s,
// in-flight and queued guests finish, the final telemetry snapshot is
// written to -telemetry-out (if set), the resident profile store is written
// to -snapshot-out (if set), the flight-recorder dump is written to
// -flight-out (if set), and the process exits 0.
//
// With -snapshot-store n, the daemon keeps up to n per-(tenant, program,
// scheme) profile snapshots resident: each completed run merges its profile
// back, and each admitted run warm-starts from its own tenant's entry.
// -snapshot-in seeds the store at boot from a profile file (a previous
// drain's -snapshot-out, possibly fleet-merged with pathdump merge);
// -snapshot-every rewrites -snapshot-out periodically so a crash loses at
// most that interval of profiling.
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netpath/internal/server"
	"netpath/internal/snapshot"
	"netpath/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netpathd: ")
	addr := flag.String("addr", ":8092", "listen address")
	workers := flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS-derived default)")
	queueDepth := flag.Int("queue", 64, "admission queue depth (total buffered guests)")
	queueTenant := flag.Int("queue-per-tenant", 0, "per-tenant queue share (0 = queue/4)")
	maxTenants := flag.Int("max-tenants", 256, "tenant table bound")
	rate := flag.Float64("rate", 0, "per-tenant submissions/sec token bucket rate (0 = unlimited)")
	burst := flag.Float64("burst", 10, "token bucket burst")
	sharedTables := flag.Bool("shared-tables", false, "give every tenant the full table budget instead of a per-tenant shard")
	tier2 := flag.Bool("tier2", false, "enable background superblock compilation (tier-2 execution)")
	tier2Workers := flag.Int("tier2-workers", 1, "tier-2 compile worker count")
	tier2Queue := flag.Int("tier2-queue", 64, "tier-2 compile queue capacity")
	tier2Threshold := flag.Int64("tier2-threshold", 0, "fragment completions before tier-2 promotion (0 = engine default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight guests on shutdown")
	telemetryOut := flag.String("telemetry-out", "", "write the final telemetry snapshot to this file on drain (- = stdout)")
	snapStore := flag.Int("snapshot-store", 0, "keep up to n resident profile snapshots for warm-starting tenant re-runs (0 = disabled)")
	snapIn := flag.String("snapshot-in", "", "seed the profile store from this snapshot file at boot (requires -snapshot-store)")
	snapOut := flag.String("snapshot-out", "", "write the resident profile store to this file on drain (requires -snapshot-store)")
	snapEvery := flag.Duration("snapshot-every", 0, "with -snapshot-out: also rewrite the profile file at this interval (0 = drain only)")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling probability for request traces [0,1] (requires -trace-store)")
	traceStore := flag.Int("trace-store", 0, "retain up to n request traces for /v1/trace/{id} (0 = tracing disabled)")
	flightN := flag.Int("flight", 0, "per-tenant flight-recorder ring size in span records (0 = disabled)")
	flightOut := flag.String("flight-out", "", "write the flight-recorder dump to this file on drain (- = stdout)")
	flag.Parse()

	telemetry.SetActive(true)
	telemetry.PublishExpvar()

	srv := server.New(server.Config{
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		QueueDepthPerTenant: *queueTenant,
		MaxTenants:          *maxTenants,
		RatePerSec:          *rate,
		Burst:               *burst,
		SharedTables:        *sharedTables,
		Tier2:               *tier2,
		Tier2Workers:        *tier2Workers,
		Tier2Queue:          *tier2Queue,
		Tier2Threshold:      *tier2Threshold,
		SnapshotLimit:       *snapStore,
		TraceStore:          *traceStore,
		TraceSample:         *traceSample,
		FlightRecords:       *flightN,
		Logf:                log.Printf,
	})
	if *snapIn != "" {
		if *snapStore <= 0 {
			log.Fatal("-snapshot-in requires -snapshot-store > 0")
		}
		f, err := snapshot.ReadFile(*snapIn, snapshot.DefaultLimits())
		if err != nil {
			log.Fatalf("-snapshot-in: %v", err)
		}
		n, err := srv.ImportSnapshots(f)
		if err != nil {
			log.Fatalf("-snapshot-in: %v", err)
		}
		log.Printf("seeded profile store with %d snapshot(s) from %s", n, *snapIn)
	}
	if *snapOut != "" && *snapStore <= 0 {
		log.Fatal("-snapshot-out requires -snapshot-store > 0")
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (workers=%d queue=%d rate=%.1f/s)",
		bound, *workers, *queueDepth, *rate)

	writeProfiles := func() {
		f := srv.ExportSnapshots()
		if err := snapshot.WriteFile(*snapOut, f); err != nil {
			log.Printf("snapshot-out: %v", err)
			return
		}
		log.Printf("wrote %d profile snapshot(s) to %s", len(f.Snapshots), *snapOut)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	var got os.Signal
	if *snapOut != "" && *snapEvery > 0 {
		// Periodic rewrite bounds profiling loss to one interval on a
		// crash; the drain path below still writes the final state.
		tick := time.NewTicker(*snapEvery)
		defer tick.Stop()
	wait:
		for {
			select {
			case got = <-sig:
				break wait
			case <-tick.C:
				writeProfiles()
			}
		}
	} else {
		got = <-sig
	}
	log.Printf("received %v; draining (timeout %s)", got, *drainTimeout)

	var out io.Writer
	switch *telemetryOut {
	case "":
	case "-":
		out = os.Stdout
	default:
		f, err := os.Create(*telemetryOut)
		if err != nil {
			log.Printf("telemetry-out: %v (skipping flush)", err)
		} else {
			defer f.Close()
			out = f
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx, out); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if *snapOut != "" {
		writeProfiles()
	}
	if *flightOut != "" {
		// The flight dump is the black box: whatever the per-tenant rings
		// froze on faults/bails/deopts/sheds survives the process.
		w := io.Writer(os.Stdout)
		if *flightOut != "-" {
			f, err := os.Create(*flightOut)
			if err != nil {
				log.Printf("flight-out: %v (skipping dump)", err)
				w = nil
			} else {
				defer f.Close()
				w = f
			}
		}
		if w != nil {
			if err := srv.FlightDoc().Encode(w); err != nil {
				log.Printf("flight-out: %v", err)
			} else if *flightOut != "-" {
				log.Printf("wrote flight-recorder dump to %s", *flightOut)
			}
		}
	}
	log.Printf("drained cleanly")
}
