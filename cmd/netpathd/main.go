// Command netpathd serves the VM → NET → fragment-cache stack as a hardened
// multi-tenant HTTP service. Tenants POST assembled guests (or encoded
// programs, or built-in benchmark names) to /v1/run; the daemon verifies,
// admits, rate-limits, executes under per-tenant step/deadline/table
// budgets, and answers with the run result or a typed error. Telemetry,
// health, and operator status ride the same listener.
//
// Usage:
//
//	netpathd [-addr :8092] [-workers n] [-queue n] [-rate r] [-burst b]
//	         [-max-tenants n] [-shared-tables] [-snapshot-out file]
//	         [-tier2] [-tier2-workers n] [-tier2-queue n] [-tier2-threshold n]
//
// Endpoints:
//
//	POST /v1/run    submit a guest (JSON envelope; see internal/server)
//	GET  /healthz   liveness
//	GET  /readyz    readiness (503 while draining)
//	GET  /statusz   admission/ladder/tenant state (JSON)
//	GET  /metrics   Prometheus text (VM + dynamo + server instruments)
//	GET  /snapshot  versioned JSON telemetry snapshot
//	GET  /events    telemetry event ring drain
//
// SIGTERM/SIGINT starts a graceful drain: admission closes with typed 503s,
// in-flight and queued guests finish, the final telemetry snapshot is
// written to -snapshot-out (if set), and the process exits 0.
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netpath/internal/server"
	"netpath/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netpathd: ")
	addr := flag.String("addr", ":8092", "listen address")
	workers := flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS-derived default)")
	queueDepth := flag.Int("queue", 64, "admission queue depth (total buffered guests)")
	queueTenant := flag.Int("queue-per-tenant", 0, "per-tenant queue share (0 = queue/4)")
	maxTenants := flag.Int("max-tenants", 256, "tenant table bound")
	rate := flag.Float64("rate", 0, "per-tenant submissions/sec token bucket rate (0 = unlimited)")
	burst := flag.Float64("burst", 10, "token bucket burst")
	sharedTables := flag.Bool("shared-tables", false, "give every tenant the full table budget instead of a per-tenant shard")
	tier2 := flag.Bool("tier2", false, "enable background superblock compilation (tier-2 execution)")
	tier2Workers := flag.Int("tier2-workers", 1, "tier-2 compile worker count")
	tier2Queue := flag.Int("tier2-queue", 64, "tier-2 compile queue capacity")
	tier2Threshold := flag.Int64("tier2-threshold", 0, "fragment completions before tier-2 promotion (0 = engine default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight guests on shutdown")
	snapshotOut := flag.String("snapshot-out", "", "write the final telemetry snapshot to this file on drain (- = stdout)")
	flag.Parse()

	telemetry.SetActive(true)
	telemetry.PublishExpvar()

	srv := server.New(server.Config{
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		QueueDepthPerTenant: *queueTenant,
		MaxTenants:          *maxTenants,
		RatePerSec:          *rate,
		Burst:               *burst,
		SharedTables:        *sharedTables,
		Tier2:               *tier2,
		Tier2Workers:        *tier2Workers,
		Tier2Queue:          *tier2Queue,
		Tier2Threshold:      *tier2Threshold,
		Logf:                log.Printf,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (workers=%d queue=%d rate=%.1f/s)",
		bound, *workers, *queueDepth, *rate)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("received %v; draining (timeout %s)", got, *drainTimeout)

	var out io.Writer
	switch *snapshotOut {
	case "":
	case "-":
		out = os.Stdout
	default:
		f, err := os.Create(*snapshotOut)
		if err != nil {
			log.Printf("snapshot-out: %v (skipping flush)", err)
		} else {
			defer f.Close()
			out = f
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx, out); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained cleanly")
}
