package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netpath/internal/asm"
)

func TestVerifyProgramOK(t *testing.T) {
	p, err := asm.Parse("sample.s", sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if !verifyProgram(&buf, p) {
		t.Fatalf("sample program failed verification:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "verify ok") {
		t.Errorf("report missing ok line: %q", buf.String())
	}
}

func TestVerifyProgramRejectsInfiniteLoop(t *testing.T) {
	src := ".mem 8\n\nfunc main:\nspin:\n    jmp spin\n"
	p, err := asm.Parse("spin.s", src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if verifyProgram(&buf, p) {
		t.Fatalf("counterless infinite loop passed verification:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "infinite-loop") {
		t.Errorf("report does not name the infinite-loop class: %q", buf.String())
	}
}

func TestLoadFileAndBenchmark(t *testing.T) {
	file := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(file, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(file, 0.05); err != nil {
		t.Errorf("load(file): %v", err)
	}
	if _, err := load("compress", 0.05); err != nil {
		t.Errorf("load(benchmark): %v", err)
	}
	if _, err := load("no-such-thing", 0.05); err == nil {
		t.Error("load(bogus): want an error")
	}
}

// TestAnalyzeSample: the text report over the sample program must prove its
// one store in-bounds (the address register is never written, so it is the
// constant 0 against .mem 8).
func TestAnalyzeSample(t *testing.T) {
	p, err := asm.Parse("sample.s", sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analyze(&buf, p, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bounds proven 1/1") {
		t.Errorf("analyze did not prove the sample store in-bounds:\n%s", out)
	}
	if !strings.Contains(out, "main") {
		t.Errorf("analyze report missing the per-function line:\n%s", out)
	}
}

// TestAnalyzeDOT: the -dot mode emits range-annotated Graphviz with the
// bounds verdict attached to the memory access.
func TestAnalyzeDOT(t *testing.T) {
	p, err := asm.Parse("sample.s", sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analyze(&buf, p, true, "main"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph \"main\"") {
		t.Errorf("missing digraph header:\n%s", out)
	}
	if !strings.Contains(out, "in-bounds") {
		t.Errorf("DOT output missing the bounds annotation:\n%s", out)
	}
}

// TestAnalyzeDOTUnknownFunc: restricting to a nonexistent function is an
// error, not silently empty output.
func TestAnalyzeDOTUnknownFunc(t *testing.T) {
	p, err := asm.Parse("sample.s", sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analyze(&buf, p, true, "nonesuch"); err == nil {
		t.Fatal("analyze -dot accepted an unknown function name")
	}
}
