// Command netasm assembles, runs, formats and profiles programs written in
// the toy machine's assembly format (see internal/asm for the syntax).
//
// Usage:
//
//	netasm run file.s          execute a program, print the machine state
//	netasm fmt file.s          parse and reprint in canonical form
//	netasm profile file.s      execute and print the path profile
//	netasm dump <benchmark>    emit a synthetic workload as assembly
//	netasm verify file.s       run the static CFG verifier, report issues
//	netasm analyze file.s      run the dataflow analyses, report the facts
//	netasm sample              print a sample program to get started
//
// The -verify flag makes run/fmt/profile/dump gate on the static verifier
// first: the report prints to stderr and error-class issues abort before any
// execution, the same load-time check dynamo applies. The verify and analyze
// subcommands accept a file or a benchmark name; verify exits 1 on
// error-class issues.
//
// analyze prints per-function dataflow facts — call-stack depth, proven
// in-bounds memory accesses, statically decided branches — distilled from
// the abstract-interpretation lattices in internal/dataflow (the same facts
// the tier-2 guard elider and the translation validator consume). With -dot
// it instead emits each function's CFG as Graphviz DOT annotated with
// register range intervals, address bounds proofs, and branch verdicts;
// -fn restricts the DOT output to one function.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"netpath/internal/asm"
	"netpath/internal/cfg"
	"netpath/internal/dataflow"
	"netpath/internal/isa"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

const sample = `; sample: iterative fibonacci — Mem[0] = fib(20)
.mem 8

func main:
    movi r1, 0      ; a
    movi r2, 1      ; b
    movi r3, 0      ; i
loop:
    add r4, r1, r2
    mov r1, r2
    mov r2, r4
    addi r3, r3, 1
    bri.lt r3, 19, loop
    store [r0+0], r2
    halt
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("netasm: ")
	steps := flag.Int64("maxsteps", 500_000_000, "step limit for run/profile (<=0 = unlimited)")
	scale := flag.Float64("scale", 0.05, "workload scale for dump")
	top := flag.Int("top", 5, "top paths to print for profile")
	verify := flag.Bool("verify", false, "run the static CFG verifier before executing; abort on errors")
	dot := flag.Bool("dot", false, "analyze: emit range-annotated DOT instead of the text report")
	fn := flag.String("fn", "", "analyze -dot: restrict output to one function")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: netasm run|fmt|profile|dump|verify|analyze|sample [file.s | benchmark]")
		os.Exit(2)
	}
	cmd := args[0]
	if cmd == "sample" {
		fmt.Print(sample)
		return
	}
	if len(args) != 2 {
		log.Fatalf("%s wants one argument", cmd)
	}

	switch cmd {
	case "dump":
		b, err := workload.ByName(args[1])
		if err != nil {
			log.Fatal(err)
		}
		p, err := b.Build(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if *verify && !verifyProgram(os.Stderr, p) {
			os.Exit(1)
		}
		fmt.Print(asm.Format(p))
	case "verify":
		p, err := load(args[1], *scale)
		if err != nil {
			log.Fatal(err)
		}
		if !verifyProgram(os.Stdout, p) {
			os.Exit(1)
		}
	case "analyze":
		p, err := load(args[1], *scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := analyze(os.Stdout, p, *dot, *fn); err != nil {
			log.Fatal(err)
		}
	case "run", "fmt", "profile":
		src, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		p, err := asm.Parse(args[1], string(src))
		if err != nil {
			log.Fatal(err)
		}
		if *verify && !verifyProgram(os.Stderr, p) {
			os.Exit(1)
		}
		switch cmd {
		case "fmt":
			fmt.Print(asm.Format(p))
		case "run":
			run(p, *steps)
		case "profile":
			prof(p, *steps, *top)
		}
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// load resolves arg as an assembly file when one exists at that path, and
// as a synthetic benchmark name otherwise.
func load(arg string, scale float64) (*prog.Program, error) {
	if src, err := os.ReadFile(arg); err == nil {
		return asm.Parse(arg, string(src))
	}
	b, err := workload.ByName(arg)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a readable file nor a benchmark: %w", arg, err)
	}
	return b.Build(scale)
}

// analyze runs the whole-program dataflow analyses and prints the distilled
// facts per function; with dot it emits range-annotated DOT instead (every
// function, or just fnName when given).
func analyze(w io.Writer, p *prog.Program, dot bool, fnName string) error {
	facts, err := dataflow.Analyze(p)
	if err != nil {
		return err
	}
	if dot {
		emitted := false
		for fi := range p.Funcs {
			if fnName != "" && p.Funcs[fi].Name != fnName {
				continue
			}
			if err := dataflow.WriteDOT(w, facts, fi); err != nil {
				return err
			}
			emitted = true
		}
		if !emitted {
			return fmt.Errorf("program has no function %q", fnName)
		}
		return nil
	}
	proven, total := facts.InBoundsCount()
	decided, branches := facts.DecidedBranchCount()
	fmt.Fprintf(w, "%s: %d instr, %d function(s); bounds proven %d/%d, branches decided %d/%d\n",
		p.Name, p.Len(), len(p.Funcs), proven, total, decided, branches)
	for fi := range p.Funcs {
		f := p.Funcs[fi]
		fp, ft, fd, fb := 0, 0, 0, 0
		for pc := f.Entry; pc < f.End; pc++ {
			switch op := p.Instrs[pc].Op; {
			case op == isa.Load || op == isa.Store:
				ft++
				if facts.InBounds(int32(pc)) {
					fp++
				}
			case op.IsConditional():
				fb++
				if facts.Branch(int32(pc)) != dataflow.BranchUnknown {
					fd++
				}
			}
		}
		fmt.Fprintf(w, "  %-12s [%4d,%4d) %-10s bounds %d/%d  decided %d/%d\n",
			f.Name, f.Entry, f.End, facts.Depths[fi], fp, ft, fd, fb)
	}
	return nil
}

// verifyProgram prints the static verifier's report to w and reports
// whether the program passed (warnings alone pass; errors fail).
func verifyProgram(w io.Writer, p *prog.Program) bool {
	r := cfg.Verify(p)
	fmt.Fprint(w, r.String())
	if len(r.Issues) == 0 {
		fmt.Fprintln(w) // "verify ok" carries no trailing newline
	}
	return r.Err() == nil
}

func run(p *prog.Program, steps int64) {
	m := vm.New(p)
	err := m.Run(steps)
	if err == vm.ErrStepLimit {
		log.Fatalf("%v — the program did not halt within -maxsteps=%d; raise the limit or pass -maxsteps=0", err, steps)
	} else if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d instructions\n", m.Steps)
	fmt.Print("registers:")
	for i, v := range m.Reg {
		if v != 0 {
			fmt.Printf(" r%d=%d", i, v)
		}
	}
	fmt.Println()
	nonzero := 0
	for a, v := range m.Mem {
		if v != 0 && nonzero < 16 {
			fmt.Printf("mem[%d] = %d\n", a, v)
			nonzero++
		}
	}
}

func prof(p *prog.Program, steps int64, top int) {
	pr, err := profile.Collect(p, steps)
	if err != nil {
		log.Fatal(err)
	}
	hs := pr.Hot(0.001)
	fmt.Printf("flow %d, %d distinct paths, %d heads; 0.1%% hot: %d paths, %.1f%% of flow\n",
		pr.Flow, pr.NumPaths(), pr.UniqueHeads(), hs.Count, hs.FlowPct(pr))
	for _, pc := range pr.TopPaths(top) {
		fmt.Printf("  %8d x %s\n", pc.Freq, pr.Paths.Info(pc.ID).Signature())
	}
}
