package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"netpath/internal/benchjson"
	"netpath/internal/dynamo"
	"netpath/internal/experiments"
	"netpath/internal/isa"
	"netpath/internal/metrics"
	"netpath/internal/par"
	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/staticpred"
	"netpath/internal/telemetry"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

// runBenchSuite measures the experiment pipeline and its hot loops and
// writes the machine-readable baseline (see internal/benchjson). Pipeline
// stages are measured with the worker pool pinned to 1, and again at the
// configured width when the machine can actually run that wide — the
// parallel entry and its speedup metric are recorded only when
// min(workers, GOMAXPROCS) > 1, so a single-core runner never claims a
// parallel "speedup" it cannot have. The microbenchmarks pin the
// allocation budget of the profiling chain (intern_hit must stay at
// 0 allocs/op); gate_test.go diffs those counts against the committed
// baseline.
func runBenchSuite(scale float64, out string) error {
	rep := benchjson.NewReport(scale, par.Workers())

	// Effective parallel width: a pool wider than GOMAXPROCS cannot run
	// concurrently, so on a single-core runner the "parallel" pass would
	// just re-measure the serial stage plus scheduling noise and report a
	// bogus sub-1.0 "speedup". Measure and claim parallelism only when the
	// machine can actually deliver it.
	width := par.Workers()
	if mp := runtime.GOMAXPROCS(0); mp < width {
		width = mp
	}

	// Pipeline stages, serial then (when width > 1) parallel.
	stage := func(name string, f func(b *testing.B)) {
		old := par.SetWorkers(1)
		serial := testing.Benchmark(f)
		par.SetWorkers(old)

		es := benchjson.FromResult(name+"_serial", serial)
		rep.Add(es)
		if width <= 1 {
			fmt.Fprintf(os.Stderr, "bench %-16s serial %12.0f ns/op   (parallel skipped: width 1)\n",
				name, es.NsPerOp)
			return
		}
		parallel := testing.Benchmark(f)
		ep := benchjson.FromResult(name+"_parallel", parallel)
		ep.Metrics = map[string]float64{"workers": float64(width)}
		if ep.NsPerOp > 0 {
			ep.Metrics["speedup_vs_serial"] = es.NsPerOp / ep.NsPerOp
		}
		rep.Add(ep)
		fmt.Fprintf(os.Stderr, "bench %-16s serial %12.0f ns/op   parallel %12.0f ns/op  (x%.2f)\n",
			name, es.NsPerOp, ep.NsPerOp, es.NsPerOp/ep.NsPerOp)
	}

	stage("collect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CollectAll(scale); err != nil {
				b.Fatal(err)
			}
		}
	})

	bps, err := experiments.CollectAll(scale)
	if err != nil {
		return err
	}
	taus := metrics.DefaultTaus()
	stage("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			series := experiments.SweepSchemes(bps, taus)
			if len(series) == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
	stage("fig5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunFig5(scale); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Hot-loop microbenchmarks (single benchmark program, no pool).
	bm, err := workload.ByName("compress")
	if err != nil {
		return err
	}
	p, err := bm.Build(scale)
	if err != nil {
		return err
	}
	micro := func(name string, f func(b *testing.B)) {
		e := benchjson.FromResult(name, testing.Benchmark(f))
		rep.Add(e)
		fmt.Fprintf(os.Stderr, "bench %-16s %12.0f ns/op  %6d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	}
	micro("vm_interp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := vm.New(p)
			if err := m.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	micro("vm_interp_legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := vm.New(p)
			m.SetEngine(vm.EngineLegacy)
			if err := m.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	micro("path_tracking", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := profile.Collect(p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	pr, err := profile.Collect(p, 0)
	if err != nil {
		return err
	}
	hs := pr.Hot(experiments.HotFrac)
	micro("net_replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics.Evaluate(pr, hs, predict.NewNET(50, pr.Paths.Head), 50)
		}
	})
	micro("static_predict", func(b *testing.B) {
		// The static scheme's whole analysis cost: CFG construction, loop
		// maps, heuristic walks, and interner matching — what a load-time
		// translator would pay once per program.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp, err := staticpred.Predict(pr)
			if err != nil {
				b.Fatal(err)
			}
			if sp.PredictedCount() == 0 {
				b.Fatal("static predictor matched nothing")
			}
		}
	})
	micro("intern_hit", func(b *testing.B) {
		it := path.NewInterner()
		var sig path.SigBuilder
		build := func(bits int) {
			sig.Reset(7)
			for j := 0; j < 6; j++ {
				sig.CondBit(bits&(1<<j) != 0)
			}
		}
		for v := 0; v < 8; v++ {
			build(v)
			it.Intern(sig.Key(), 7, 6)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			build(i % 8)
			it.InternBytes(sig.Bytes(), 7, 6)
		}
	})
	micro("telemetry_emit", func(b *testing.B) {
		// The raw hot-path write: counter add + histogram observe + ring
		// event. Must report 0 allocs/op; gate_test.go re-checks it as a
		// hard zero independent of this baseline.
		reg := telemetry.NewRegistry(1 << 10)
		c := reg.Counter("bench_events_total", "bench")
		h := reg.Histogram("bench_sizes", "bench")
		s := reg.NewSink()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Inc(c)
			s.Observe(h, int64(i&1023))
			s.Emit(telemetry.EvFragEnter, int64(i), 7, 0)
		}
	})

	// Tier pair: the same full mini-Dynamo NET run (τ=50) with and without
	// the background superblock compiler, on ijpeg — the suite's dominant-
	// inner-path workload (the paper's 93.3% hot flow), where tier 2's
	// fused superblocks cover the most steps. One compile worker: the
	// baseline host is single-core, so the worker time-slices against the
	// guest and extra workers only add scheduling churn. The tier-2 entry's
	// speedup metric is the headline number for the tiered-execution work;
	// its allocs/op is gated (promotion is the only allocating tier-2
	// mutator path, entered once per threshold crossing).
	tbm, err := workload.ByName("ijpeg")
	if err != nil {
		return err
	}
	tp, err := tbm.Build(scale)
	if err != nil {
		return err
	}
	t2c := dynamo.NewTier2Compiler(1, 256)
	defer t2c.Close()
	tierRun := func(b *testing.B, tc *dynamo.Tier2Compiler) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := dynamo.DefaultConfig(dynamo.SchemeNET, 50)
			cfg.Tier2 = tc
			cfg.Tier2Threshold = 8
			if _, err := dynamo.New(tp, cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	t1e := benchjson.FromResult("net_replay_tier1",
		testing.Benchmark(func(b *testing.B) { tierRun(b, nil) }))
	rep.Add(t1e)
	fmt.Fprintf(os.Stderr, "bench %-16s %12.0f ns/op  %6d allocs/op\n", t1e.Name, t1e.NsPerOp, t1e.AllocsPerOp)
	t2e := benchjson.FromResult("net_replay_tier2",
		testing.Benchmark(func(b *testing.B) { tierRun(b, t2c) }))
	if t2e.NsPerOp > 0 {
		t2e.Metrics = map[string]float64{"speedup_vs_tier1": t1e.NsPerOp / t2e.NsPerOp}
	}
	rep.Add(t2e)
	fmt.Fprintf(os.Stderr, "bench %-16s %12.0f ns/op  %6d allocs/op  (x%.2f vs tier1)\n",
		t2e.Name, t2e.NsPerOp, t2e.AllocsPerOp, t2e.Metrics["speedup_vs_tier1"])

	micro("compile_queue", func(b *testing.B) {
		// Promotion-to-publication round trip: a tiny hot loop is promoted on
		// its first completion; the op under measurement is the enqueue, the
		// background compile, and the atomic publication becoming visible.
		lp := buildBenchLoop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tc := dynamo.NewTier2Compiler(1, 4)
			cfg := dynamo.DefaultConfig(dynamo.SchemeNET, 5)
			cfg.Tier2 = tc
			cfg.Tier2Threshold = 1
			cfg.MaxSteps = 2000
			_, _ = dynamo.New(lp, cfg).Run() // stops on the step limit after promoting
			for tc.Compiled()+tc.Rejected() < 1 {
				runtime.Gosched()
			}
			tc.Close()
		}
	})
	micro("fused_dispatch", func(b *testing.B) {
		// One warmed superblock entry: entry-guard check plus the fused host
		// micro-op loop. This is the tier-2 inner loop the 0-alloc gate pins.
		lp := buildBenchLoop()
		m := vm.New(lp)
		for m.Steps < 2 { // past the prologue, at the loop head
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
		var spec []vm.SBStep
		for len(spec) < 3 { // AddI ; AddI ; BrI (taken)
			pc := m.PC
			in := m.InstrAt(pc)
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
			spec = append(spec, vm.SBStep{In: in, PC: int32(pc), Next: int32(m.PC)})
		}
		sb, _, err := vm.CompileSuperblock(spec, lp.Len())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !sb.GuardsPass(m) {
				b.Fatal("entry guards failed")
			}
			if x := m.RunSuperblock(sb); !x.Completed {
				b.Fatal("superblock did not complete")
			}
		}
	})

	// Telemetry overhead pair: the same mini-Dynamo run with the sink off and
	// on. The committed ns/op pair documents the enabled-path cost (the
	// acceptance bar is <= 5% overhead); allocs/op must be identical.
	dynRun := func(b *testing.B, sink *telemetry.Sink) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := dynamo.DefaultConfig(dynamo.SchemeNET, 50)
			cfg.Telemetry = sink
			if _, err := dynamo.New(p, cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	off := benchjson.FromResult("telemetry_off",
		testing.Benchmark(func(b *testing.B) { dynRun(b, nil) }))
	rep.Add(off)
	fmt.Fprintf(os.Stderr, "bench %-16s %12.0f ns/op  %6d allocs/op\n", off.Name, off.NsPerOp, off.AllocsPerOp)
	on := benchjson.FromResult("telemetry_on",
		testing.Benchmark(func(b *testing.B) { dynRun(b, telemetry.Def.NewSink()) }))
	if off.NsPerOp > 0 {
		on.Metrics = map[string]float64{"overhead_vs_off": on.NsPerOp/off.NsPerOp - 1}
	}
	rep.Add(on)
	fmt.Fprintf(os.Stderr, "bench %-16s %12.0f ns/op  %6d allocs/op  (%+.1f%% vs off)\n",
		on.Name, on.NsPerOp, on.AllocsPerOp, 100*on.Metrics["overhead_vs_off"])

	// Time-to-peak pair per benchmark: guest steps until the windowed cache
	// coverage reaches 90% of the cold run's steady state, cold (empty cache)
	// vs warm (restored from the cold run's profile snapshot). One run each —
	// the measurement is a step count on a deterministic guest, not a timing,
	// so Iterations is honestly 1 and ns/op is meaningless here.
	ttp, err := experiments.RunTimeToPeak(nil, scale, 50)
	if err != nil {
		return err
	}
	for _, r := range ttp {
		rep.Add(benchjson.Entry{
			Name: "time_to_peak_cold_" + r.Bench, Iterations: 1,
			Metrics: map[string]float64{
				"steps_to_peak":   float64(r.ColdSteps),
				"steady_coverage": r.SteadyCov,
			},
		})
		rep.Add(benchjson.Entry{
			Name: "time_to_peak_warm_" + r.Bench, Iterations: 1,
			Metrics: map[string]float64{
				"steps_to_peak":   float64(r.WarmSteps),
				"steady_coverage": r.SteadyCov,
				"ratio_vs_cold":   r.Ratio,
			},
		})
		fmt.Fprintf(os.Stderr, "bench time_to_peak %-10s cold %10d steps   warm %10d steps  (x%.3f, %d frags restored)\n",
			r.Bench, r.ColdSteps, r.WarmSteps, r.Ratio, r.Restored)
	}

	if err := benchjson.WriteFile(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark entries to %s\n", len(rep.Entries), out)
	return nil
}

// buildBenchLoop is a counting loop with two ALU ops per iteration — the
// minimal tier-2 target used by the compile_queue and fused_dispatch
// micros. The trip count is effectively unbounded so the dispatch micro can
// re-enter its superblock b.N times without the loop ever exiting.
func buildBenchLoop() *prog.Program {
	b := prog.NewBuilder("benchloop")
	b.SetMemSize(4)
	f := b.Func("main")
	f.MovI(0, 0)
	f.Label("loop")
	f.AddI(0, 0, 1)
	f.AddI(2, 2, 3)
	f.BrI(isa.Lt, 0, 1<<62, "loop")
	f.Halt()
	return b.MustBuild()
}
