// Command hotpath regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark suite.
//
// Usage:
//
//	hotpath [-scale f] [-tau n] [-parallel n] table1|table2|fig2|fig3|fig4|fig5|static|phases|timetopeak|chaos|all
//
// Tables 1-2 and Figures 2-4 use the abstract metrics (Section 5); Figure 5
// runs the mini-Dynamo concrete evaluation (Section 6); phases runs the
// windowed-metrics extension (Sections 6.1/7); chaos sweeps the mini-Dynamo
// under escalating fault injection (robustness evaluation; not part of
// "all", which regenerates exactly the paper's tables and figures).
//
// The pipeline fans (benchmark, scheme, τ) cells out over a bounded worker
// pool; -parallel overrides the width (default GOMAXPROCS, 1 = serial —
// output is byte-identical either way). -cpuprofile/-memprofile/-trace
// capture pprof/trace data for the run, and -bench-out measures the
// pipeline and its hot loops into a machine-readable perf baseline
// (BENCH_hotpath.json).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"netpath/internal/experiments"
	"netpath/internal/metrics"
	"netpath/internal/par"
	"netpath/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotpath: ")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = reported experiments)")
	tau := flag.Int64("tau", 50, "prediction delay for the phases/boa/ablation reports")
	csvDir := flag.String("csv", "", "also write fig2/fig3 sweep and fig5 grid CSVs into this directory")
	parallel := flag.Int("parallel", 0, "worker pool width for the experiment grid (0 = GOMAXPROCS, 1 = serial)")
	benchOut := flag.String("bench-out", "", "measure the pipeline + hot loops and write the perf baseline JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry (/metrics, /snapshot, /events, pprof) on this address and enable collection")
	telemetryHold := flag.Duration("telemetry-hold", 0, "keep the telemetry server (and process) alive this long after the work completes")
	progress := flag.Duration("progress", 0, "print a progress line (cells done, ETA) to stderr at this interval")
	flag.Parse()

	par.SetWorkers(*parallel)

	if *telemetryAddr != "" {
		srv, addr, err := telemetry.Serve(*telemetryAddr, telemetry.Def)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics /snapshot /events on http://%s\n", addr)
		if *telemetryHold > 0 {
			hold := *telemetryHold
			defer func() {
				fmt.Fprintf(os.Stderr, "telemetry: holding the server for %s (scrape now)\n", hold)
				time.Sleep(hold)
			}()
		}
	}
	if *progress > 0 {
		done, planned := experiments.ProgressCounters()
		prog := telemetry.StartProgress(os.Stderr, "hotpath", done, planned, *progress)
		defer prog.Stop()
	}

	cmds := flag.Args()
	if len(cmds) == 0 && *benchOut == "" {
		fmt.Fprintln(os.Stderr, "usage: hotpath [-scale f] [-parallel n] [-bench-out f.json] table1|table2|fig2|fig3|fig4|fig5|static|phases|boa|ablation|hardware|timetopeak|chaos|all")
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Start(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	if *benchOut != "" {
		if err := runBenchSuite(*scale, *benchOut); err != nil {
			log.Fatal(err)
		}
		if len(cmds) == 0 {
			return
		}
	}

	needProfiles := false
	needFig5 := false
	for _, c := range cmds {
		switch c {
		case "table1", "table2", "fig2", "fig3", "fig4", "static", "phases", "boa", "ablation", "all":
			needProfiles = true
		case "hardware":
			// needs no oracle profiles
		}
		if c == "fig5" || c == "all" {
			needFig5 = true
		}
	}

	var bps []experiments.BenchProfile
	if needProfiles {
		start := time.Now()
		var err error
		bps, err = experiments.CollectAll(*scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "collected oracle profiles for %d benchmarks in %.1fs\n\n", len(bps), time.Since(start).Seconds())
	}
	var series []experiments.Series
	sweep := func() []experiments.Series {
		if series == nil {
			series = experiments.SweepSchemes(bps, metrics.DefaultTaus())
		}
		return series
	}
	var fig5 map[string][]experiments.Fig5Result
	if needFig5 {
		start := time.Now()
		var err error
		fig5, err = experiments.RunFig5(*scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ran the Figure 5 Dynamo grid in %.1fs\n\n", time.Since(start).Seconds())
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, sweep(), fig5); err != nil {
			log.Fatal(err)
		}
	}

	for _, c := range cmds {
		switch c {
		case "table1":
			fmt.Println(experiments.Table1(bps))
		case "table2":
			fmt.Println(experiments.Table2(bps))
		case "fig2":
			fmt.Println(experiments.Fig2(sweep()))
		case "fig3":
			fmt.Println(experiments.Fig3(sweep()))
		case "fig4":
			fmt.Println(experiments.Fig4(bps))
		case "fig5":
			fmt.Println(experiments.Fig5(fig5))
		case "static":
			fmt.Println(experiments.StaticReport(bps))
		case "phases":
			fmt.Println(experiments.PhasesReport(bps, *tau))
		case "boa":
			out, err := experiments.BoaReport(bps, *scale, *tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		case "ablation":
			fmt.Println(experiments.AblationReport(bps, *tau))
		case "hardware":
			out, err := experiments.HardwareReport(*scale, *tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		case "timetopeak":
			out, err := experiments.TimeToPeakReport(*scale, *tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		case "chaos":
			out, err := experiments.ChaosReport(*scale, *tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		case "all":
			fmt.Println(experiments.Table1(bps))
			fmt.Println(experiments.Table2(bps))
			fmt.Println(experiments.Fig2(sweep()))
			fmt.Println(experiments.Fig3(sweep()))
			fmt.Println(experiments.Fig4(bps))
			fmt.Println(experiments.Fig5(fig5))
			fmt.Println(experiments.StaticReport(bps))
			fmt.Println(experiments.PhasesReport(bps, *tau))
			out, err := experiments.BoaReport(bps, *scale, *tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
			fmt.Println(experiments.AblationReport(bps, *tau))
			hw, err := experiments.HardwareReport(*scale, *tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(hw)
		default:
			log.Fatalf("unknown command %q", c)
		}
	}
}

// writeCSVs exports the sweep and Dynamo grid for external plotting.
func writeCSVs(dir string, series []experiments.Series, grid map[string][]experiments.Fig5Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "sweep.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteSeriesCSV(f, series); err != nil {
		return err
	}
	if grid != nil {
		g, err := os.Create(filepath.Join(dir, "fig5.csv"))
		if err != nil {
			return err
		}
		defer g.Close()
		if err := experiments.WriteFig5CSV(g, grid); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote CSVs to %s\n", dir)
	return nil
}
