// Command dynamo runs one benchmark (or all of them) under the mini-Dynamo
// dynamic optimizer and prints the execution report: speedup over native,
// cycle breakdown, cache behaviour, and the heuristics' decisions.
//
// Usage:
//
//	dynamo [-scheme net|pathprofile] [-tau n] [-scale f] [-maxsteps n] [-v]
//	       [-tier2] [-tier2-workers n] [-tier2-threshold n]
//	       [-snapshot-in f] [-snapshot-out f] [-snapshot-every n]
//	       [-trace f] [benchmark ...]
//
// -snapshot-in warm-starts each benchmark from a persisted profile snapshot
// (captured by an earlier -snapshot-out run, possibly fleet-merged with
// pathdump merge); -snapshot-out captures the profiling state the run paid
// for, and -snapshot-every additionally captures mid-run so short-lived
// phases survive cache flushes.
//
// -trace captures a request-scoped span trace of one benchmark run —
// trace-select, fragment-emit, tier-2 compile/promote/deopt events — and
// writes it as netpath-trace/v1 JSON ("-" = stdout), renderable with
// `pathdump trace`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"netpath/internal/dynamo"
	"netpath/internal/snapshot"
	"netpath/internal/telemetry"
	"netpath/internal/trace"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynamo: ")
	schemeFlag := flag.String("scheme", "net", "prediction scheme: net or pathprofile")
	tau := flag.Int64("tau", 50, "prediction delay")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	maxSteps := flag.Int64("maxsteps", 500_000_000, "abort after this many machine steps (<=0 = unlimited)")
	verbose := flag.Bool("v", false, "print the full cycle breakdown")
	noopt := flag.Bool("noopt", false, "disable the trace optimizer (ablation)")
	nolink := flag.Bool("nolink", false, "disable fragment linking (ablation)")
	tier2 := flag.Bool("tier2", false, "enable background superblock compilation (tier-2 execution)")
	tier2Workers := flag.Int("tier2-workers", 1, "tier-2 compile worker count")
	tier2Queue := flag.Int("tier2-queue", 64, "tier-2 compile queue capacity")
	tier2Threshold := flag.Int64("tier2-threshold", 0, "fragment completions before tier-2 promotion (0 = engine default)")
	fragments := flag.Int("fragments", 0, "print the top N resident fragments after the run")
	snapIn := flag.String("snapshot-in", "", "warm-start from the profile snapshot file (matched by program fingerprint)")
	snapOut := flag.String("snapshot-out", "", "write a profile snapshot file at exit")
	snapEvery := flag.Int("snapshot-every", 0, "with -snapshot-out: also capture every n path events, merged into the output (0 = exit only)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry (/metrics, /snapshot, /events, pprof) on this address and enable collection")
	telemetryHold := flag.Duration("telemetry-hold", 0, "keep the telemetry server (and process) alive this long after the work completes")
	traceOut := flag.String("trace", "", "capture a span trace of the run and write netpath-trace/v1 JSON to this file (\"-\" = stdout; wants exactly one benchmark)")
	flag.Parse()

	if *telemetryAddr != "" {
		srv, addr, err := telemetry.Serve(*telemetryAddr, telemetry.Def)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("telemetry: serving /metrics /snapshot /events on http://%s", addr)
		if *telemetryHold > 0 {
			hold := *telemetryHold
			defer func() {
				log.Printf("telemetry: holding the server for %s (scrape now)", hold)
				time.Sleep(hold)
			}()
		}
	}

	var scheme dynamo.Scheme
	switch strings.ToLower(*schemeFlag) {
	case "net":
		scheme = dynamo.SchemeNET
	case "pathprofile", "pp":
		scheme = dynamo.SchemePathProfile
	default:
		log.Fatalf("unknown scheme %q", *schemeFlag)
	}

	// The trace's write defer is registered before the tier-2 compiler's
	// Close defer on purpose: defers run LIFO, so the document is encoded
	// only after Close has joined the compile workers and their late
	// tier2-compile spans have landed in the arena.
	var tr *trace.Trace
	trRoot, trExec := trace.NoSpan, trace.NoSpan
	if *traceOut != "" {
		if len(flag.Args()) != 1 {
			log.Fatal("-trace wants exactly one benchmark")
		}
		tr = trace.New(trace.NewID(), "", 4096, time.Now())
		trRoot = tr.Add(trace.SpanRequest, trace.NoSpan, 0, 0, 0, 0)
		defer func() {
			d := tr.Doc()
			out := os.Stdout
			if *traceOut != "-" {
				f, err := os.Create(*traceOut)
				if err != nil {
					log.Fatalf("-trace: %v", err)
				}
				defer f.Close()
				out = f
			}
			if err := d.Encode(out); err != nil {
				log.Fatalf("-trace: %v", err)
			}
			if *traceOut != "-" {
				log.Printf("wrote trace %s (%d spans) to %s", d.TraceID, len(d.Spans), *traceOut)
			}
		}()
	}

	var t2c *dynamo.Tier2Compiler
	if *tier2 {
		t2c = dynamo.NewTier2Compiler(*tier2Workers, *tier2Queue)
		defer t2c.Close()
	}

	var warmFile *snapshot.File
	if *snapIn != "" {
		var err error
		warmFile, err = snapshot.ReadFile(*snapIn, snapshot.DefaultLimits())
		if err != nil {
			log.Fatalf("-snapshot-in: %v", err)
		}
	}
	var outSnaps []*snapshot.Snapshot

	names := flag.Args()
	if len(names) == 0 {
		names = workload.Names()
	}
	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := b.Build(*scale)
		if err != nil {
			log.Fatal(err)
		}
		cfg := dynamo.DefaultConfig(scheme, *tau)
		cfg.DisableOptimizer = *noopt
		cfg.DisableLinking = *nolink
		cfg.Tier2 = t2c
		cfg.Tier2Threshold = *tier2Threshold
		if telemetry.Active() {
			cfg.Telemetry = telemetry.Def.NewSink()
		}
		if *maxSteps > 0 {
			cfg.MaxSteps = *maxSteps
		}
		if tr != nil {
			trExec = tr.Begin(trace.SpanExecute, trRoot, 0, 0)
			cfg.Trace = tr
			cfg.TraceParent = trExec
		}
		var midSnaps []*snapshot.Snapshot
		if *snapOut != "" && *snapEvery > 0 {
			cfg.ProbeEvery = *snapEvery
			cfg.Probe = func(s *dynamo.System) { midSnaps = append(midSnaps, s.Snapshot("")) }
		}
		start := time.Now()
		sys := dynamo.New(p, cfg)
		if warmFile != nil {
			if err := restoreFrom(sys, warmFile, p.Fingerprint(), cfg.Scheme.String()); err != nil {
				log.Fatalf("%s: -snapshot-in: %v", name, err)
			}
		}
		res, err := sys.Run()
		if errors.Is(err, vm.ErrStepLimit) {
			log.Fatalf("%s: %v — the program did not halt within -maxsteps=%d; raise the limit or pass -maxsteps=0", name, err, *maxSteps)
		}
		if err != nil {
			log.Fatal(err)
		}
		if tr != nil {
			tr.SetArg(trExec, 0, res.Steps)
			tr.End(trExec)
		}
		if warmFile != nil {
			fmt.Printf("warm-start: restored %d fragments, %d heads, %d paths, %d tier-2 for %s\n",
				res.RestoredFragments, res.RestoredHeads, res.RestoredPaths, res.RestoredT2, name)
		}
		if *snapOut != "" {
			outSnaps = append(outSnaps, mergeCaptures(append(midSnaps, sys.Snapshot(""))))
		}
		fmt.Printf("%s  [%.2fs]\n", res, time.Since(start).Seconds())
		if *verbose {
			printBreakdown(res)
			opt := sys.OptimizerStats()
			fmt.Printf("  opt:    %d folded, %d branches folded, %d loads removed, %d dead writes, %d jumps straightened\n",
				opt.FoldedOps, opt.FoldedBranches, opt.LoadsRemoved, opt.DeadRemoved, opt.JumpsRemoved)
		}
		if *fragments > 0 {
			fmt.Print(sys.DumpCache(*fragments))
		}
	}

	if *snapOut != "" {
		if err := snapshot.WriteFile(*snapOut, snapshot.NewFile(outSnaps...)); err != nil {
			log.Fatalf("-snapshot-out: %v", err)
		}
		log.Printf("wrote %d profile snapshot(s) to %s", len(outSnaps), *snapOut)
	}
}

// restoreFrom warm-starts sys from the snapshots in f matching the program
// fingerprint and the configured scheme, fleet-merged. Snapshots exported
// from a multi-tenant server keep their tenant labels; the local CLI accepts
// any of them, so tenants are normalized away before the merge. A file with
// no matching snapshot leaves the system cold, with a notice.
func restoreFrom(sys *dynamo.System, f *snapshot.File, fp uint64, scheme string) error {
	var match []*snapshot.Snapshot
	for _, sn := range f.Snapshots {
		if sn.Fingerprint == fp && sn.Scheme == scheme {
			c := *sn
			c.Tenant = ""
			match = append(match, &c)
		}
	}
	if len(match) == 0 {
		log.Printf("warm-start: no snapshot matches fingerprint %#x scheme %s; starting cold", fp, scheme)
		return nil
	}
	merged, err := snapshot.MergeAll(match)
	if err != nil {
		return err
	}
	return sys.Restore(merged)
}

// mergeCaptures folds a run's mid-run captures and exit snapshot into one
// profile; capture errors cannot occur (same system, same group key), so a
// merge failure here is a bug worth crashing on.
func mergeCaptures(snaps []*snapshot.Snapshot) *snapshot.Snapshot {
	merged, err := snapshot.MergeAll(snaps)
	if err != nil {
		log.Fatalf("snapshot merge: %v", err)
	}
	return merged
}

func printBreakdown(r dynamo.Result) {
	fmt.Printf("  native: %.0f cycles (%d instrs, %d redirects)\n", r.NativeCycles, r.Steps, r.Redirects)
	fmt.Printf("  dynamo: %.0f cycles = interp %.0f + frag %.0f + profile %.0f + build %.0f + trans %.0f\n",
		r.Cycles, r.InterpCycles, r.FragCycles, r.ProfileCycles, r.BuildCycles, r.TransCycles)
	fmt.Printf("  instrs: interp %d, cached %d (%.2f%% of run), eliminated %d, native-after-bail %d\n",
		r.InterpInstrs, r.FragInstrs, 100*r.CachedFraction(), r.ElimInstrs, r.NativeInstrs)
	fmt.Printf("  cache:  %d fragments, %d flushes, enters %d, linked %d, exits %d\n",
		r.Fragments, r.Flushes, r.FragEnters, r.LinkedJumps, r.FragExits)
	if r.T2Promotions > 0 || r.T2Enters > 0 {
		pct := 0.0
		if r.Steps > 0 {
			pct = 100 * float64(r.T2Instrs) / float64(r.Steps)
		}
		fmt.Printf("  tier2:  %d promoted, %d superblock entries, %d instrs (%.2f%% of run), %d guard bounces, %d deopts\n",
			r.T2Promotions, r.T2Enters, r.T2Instrs, pct, r.T2GuardFails, r.T2Deopts)
	}
	if r.BailedOut {
		fmt.Printf("  bail-out at step %d\n", r.BailStep)
	}
}
