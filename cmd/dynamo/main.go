// Command dynamo runs one benchmark (or all of them) under the mini-Dynamo
// dynamic optimizer and prints the execution report: speedup over native,
// cycle breakdown, cache behaviour, and the heuristics' decisions.
//
// Usage:
//
//	dynamo [-scheme net|pathprofile] [-tau n] [-scale f] [-maxsteps n] [-v]
//	       [-tier2] [-tier2-workers n] [-tier2-threshold n] [benchmark ...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"netpath/internal/dynamo"
	"netpath/internal/telemetry"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynamo: ")
	schemeFlag := flag.String("scheme", "net", "prediction scheme: net or pathprofile")
	tau := flag.Int64("tau", 50, "prediction delay")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	maxSteps := flag.Int64("maxsteps", 500_000_000, "abort after this many machine steps (<=0 = unlimited)")
	verbose := flag.Bool("v", false, "print the full cycle breakdown")
	noopt := flag.Bool("noopt", false, "disable the trace optimizer (ablation)")
	nolink := flag.Bool("nolink", false, "disable fragment linking (ablation)")
	tier2 := flag.Bool("tier2", false, "enable background superblock compilation (tier-2 execution)")
	tier2Workers := flag.Int("tier2-workers", 1, "tier-2 compile worker count")
	tier2Queue := flag.Int("tier2-queue", 64, "tier-2 compile queue capacity")
	tier2Threshold := flag.Int64("tier2-threshold", 0, "fragment completions before tier-2 promotion (0 = engine default)")
	fragments := flag.Int("fragments", 0, "print the top N resident fragments after the run")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry (/metrics, /snapshot, /events, pprof) on this address and enable collection")
	telemetryHold := flag.Duration("telemetry-hold", 0, "keep the telemetry server (and process) alive this long after the work completes")
	flag.Parse()

	if *telemetryAddr != "" {
		srv, addr, err := telemetry.Serve(*telemetryAddr, telemetry.Def)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("telemetry: serving /metrics /snapshot /events on http://%s", addr)
		if *telemetryHold > 0 {
			hold := *telemetryHold
			defer func() {
				log.Printf("telemetry: holding the server for %s (scrape now)", hold)
				time.Sleep(hold)
			}()
		}
	}

	var scheme dynamo.Scheme
	switch strings.ToLower(*schemeFlag) {
	case "net":
		scheme = dynamo.SchemeNET
	case "pathprofile", "pp":
		scheme = dynamo.SchemePathProfile
	default:
		log.Fatalf("unknown scheme %q", *schemeFlag)
	}

	var t2c *dynamo.Tier2Compiler
	if *tier2 {
		t2c = dynamo.NewTier2Compiler(*tier2Workers, *tier2Queue)
		defer t2c.Close()
	}

	names := flag.Args()
	if len(names) == 0 {
		names = workload.Names()
	}
	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := b.Build(*scale)
		if err != nil {
			log.Fatal(err)
		}
		cfg := dynamo.DefaultConfig(scheme, *tau)
		cfg.DisableOptimizer = *noopt
		cfg.DisableLinking = *nolink
		cfg.Tier2 = t2c
		cfg.Tier2Threshold = *tier2Threshold
		if telemetry.Active() {
			cfg.Telemetry = telemetry.Def.NewSink()
		}
		if *maxSteps > 0 {
			cfg.MaxSteps = *maxSteps
		}
		start := time.Now()
		sys := dynamo.New(p, cfg)
		res, err := sys.Run()
		if errors.Is(err, vm.ErrStepLimit) {
			log.Fatalf("%s: %v — the program did not halt within -maxsteps=%d; raise the limit or pass -maxsteps=0", name, err, *maxSteps)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  [%.2fs]\n", res, time.Since(start).Seconds())
		if *verbose {
			printBreakdown(res)
			opt := sys.OptimizerStats()
			fmt.Printf("  opt:    %d folded, %d branches folded, %d loads removed, %d dead writes, %d jumps straightened\n",
				opt.FoldedOps, opt.FoldedBranches, opt.LoadsRemoved, opt.DeadRemoved, opt.JumpsRemoved)
		}
		if *fragments > 0 {
			fmt.Print(sys.DumpCache(*fragments))
		}
	}
}

func printBreakdown(r dynamo.Result) {
	fmt.Printf("  native: %.0f cycles (%d instrs, %d redirects)\n", r.NativeCycles, r.Steps, r.Redirects)
	fmt.Printf("  dynamo: %.0f cycles = interp %.0f + frag %.0f + profile %.0f + build %.0f + trans %.0f\n",
		r.Cycles, r.InterpCycles, r.FragCycles, r.ProfileCycles, r.BuildCycles, r.TransCycles)
	fmt.Printf("  instrs: interp %d, cached %d (%.2f%% of run), eliminated %d, native-after-bail %d\n",
		r.InterpInstrs, r.FragInstrs, 100*r.CachedFraction(), r.ElimInstrs, r.NativeInstrs)
	fmt.Printf("  cache:  %d fragments, %d flushes, enters %d, linked %d, exits %d\n",
		r.Fragments, r.Flushes, r.FragEnters, r.LinkedJumps, r.FragExits)
	if r.T2Promotions > 0 || r.T2Enters > 0 {
		pct := 0.0
		if r.Steps > 0 {
			pct = 100 * float64(r.T2Instrs) / float64(r.Steps)
		}
		fmt.Printf("  tier2:  %d promoted, %d superblock entries, %d instrs (%.2f%% of run), %d guard bounces, %d deopts\n",
			r.T2Promotions, r.T2Enters, r.T2Instrs, pct, r.T2GuardFails, r.T2Deopts)
	}
	if r.BailedOut {
		fmt.Printf("  bail-out at step %d\n", r.BailStep)
	}
}
