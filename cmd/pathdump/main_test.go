package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// timingRe matches the wall-clock suffix of a summary line, the one
// non-deterministic field in the dump format.
var timingRe = regexp.MustCompile(`\[\d+\.\d{2}s\]`)

func normalize(s string) string {
	return timingRe.ReplaceAllString(s, "[TIME]")
}

// TestGoldenDump drives the full flag-parsing → dump pipeline and compares
// the normalized output against the committed golden file. Regenerate with
// `go test ./cmd/pathdump -run TestGoldenDump -update` after an intentional
// format change.
func TestGoldenDump(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-top", "3", "-hot", "0.001", "compress", "deltablue"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := normalize(buf.String())

	golden := filepath.Join("testdata", "dump_compress_deltablue.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("dump output diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestGoldenCFG drives the cfg subcommand end to end — workload build, CFG
// construction, static hot-path walk, DOT rendering — and compares against
// the committed golden file. The output is fully deterministic (no timing
// field), so no normalization is needed. Regenerate with -update.
func TestGoldenCFG(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"cfg", "-scale", "0.05", "-fn", "main", "compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "cfg_compress_main.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("cfg DOT output diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
	if !strings.Contains(got, "digraph") {
		t.Errorf("cfg output is not DOT:\n%.200s", got)
	}
	if !strings.Contains(got, "color=red") {
		t.Errorf("cfg output highlights no hot-path edges:\n%.400s", got)
	}
}

func TestCFGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"cfg"}, &buf); err == nil {
		t.Error("cfg with no benchmark: want an error")
	}
	if err := run([]string{"cfg", "-fn", "no-such-fn", "compress"}, &buf); err == nil {
		t.Error("cfg with unknown function: want an error")
	}
}

func TestVerifyOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-verify", "compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "verify ok") {
		t.Errorf("-verify output missing report:\n%.400s", buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "not-a-number"}, &buf); err == nil {
		t.Error("bad -scale value: want a parse error")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag: want a parse error")
	}
	if err := run([]string{"-scale", "0.05", "no-such-benchmark"}, &buf); err == nil {
		t.Error("unknown benchmark: want an error")
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-json", "compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
}

func TestDisasmOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-disasm", "compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "compress") {
		t.Errorf("disasm output missing summary line:\n%.400s", out)
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Errorf("disasm output suspiciously short:\n%s", out)
	}
}

// TestGoldenTrace drives the trace subcommand over a committed sample
// document and compares the waterfall against the golden file. The renderer
// consumes only the wire Doc, so the output is fully deterministic.
// Regenerate with -update.
func TestGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"trace", filepath.Join("testdata", "trace_sample.json")}, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "trace_sample.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("trace waterfall diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
	for _, kind := range []string{"request", "queue-wait", "execute", "tier2-compile"} {
		if !strings.Contains(got, kind) {
			t.Errorf("waterfall missing %q span:\n%s", kind, got)
		}
	}
}

func TestTraceChromeOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"trace", "-chrome", filepath.Join("testdata", "trace_sample.json")}, &buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("-chrome output is not a JSON array: %v", err)
	}
	if len(evs) != 12 {
		t.Fatalf("chrome events = %d, want one per span (12)", len(evs))
	}
	for _, ev := range evs {
		if ev["ph"] != "X" {
			t.Errorf("event %v: ph = %v, want X", ev["name"], ev["ph"])
		}
	}
}

func TestTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"trace"}, &buf); err == nil {
		t.Error("trace with no input file: want an error")
	}
	if err := run([]string{"trace", "testdata/no-such-file.json"}, &buf); err == nil {
		t.Error("trace with missing file: want an error")
	}
	if err := run([]string{"trace", filepath.Join("testdata", "dump_compress_deltablue.golden")}, &buf); err == nil {
		t.Error("trace with a non-trace file: want a decode error")
	}
}
