package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// timingRe matches the wall-clock suffix of a summary line, the one
// non-deterministic field in the dump format.
var timingRe = regexp.MustCompile(`\[\d+\.\d{2}s\]`)

func normalize(s string) string {
	return timingRe.ReplaceAllString(s, "[TIME]")
}

// TestGoldenDump drives the full flag-parsing → dump pipeline and compares
// the normalized output against the committed golden file. Regenerate with
// `go test ./cmd/pathdump -run TestGoldenDump -update` after an intentional
// format change.
func TestGoldenDump(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-top", "3", "-hot", "0.001", "compress", "deltablue"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := normalize(buf.String())

	golden := filepath.Join("testdata", "dump_compress_deltablue.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("dump output diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "not-a-number"}, &buf); err == nil {
		t.Error("bad -scale value: want a parse error")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag: want a parse error")
	}
	if err := run([]string{"-scale", "0.05", "no-such-benchmark"}, &buf); err == nil {
		t.Error("unknown benchmark: want an error")
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-json", "compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
}

func TestDisasmOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-disasm", "compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "compress") {
		t.Errorf("disasm output missing summary line:\n%.400s", out)
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Errorf("disasm output suspiciously short:\n%s", out)
	}
}
