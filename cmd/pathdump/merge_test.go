package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"netpath/internal/snapshot"
)

// writeSnapFile writes a one-snapshot wire file for the merge tests.
func writeSnapFile(t *testing.T, path string, sn *snapshot.Snapshot) {
	t.Helper()
	if err := snapshot.WriteFile(path, snapshot.NewFile(sn)); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSubcommand drives pathdump merge end to end: two shard files
// sharing one group key plus a third in a different group merge into a
// two-profile output whose shared group carries the joined counters.
func TestMergeSubcommand(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	c := filepath.Join(dir, "c.json")
	out := filepath.Join(dir, "merged.json")

	writeSnapFile(t, a, &snapshot.Snapshot{
		Program: "bench", Tenant: "t1", Fingerprint: 7, Scheme: "net", Tau: 50, Flow: 100, Steps: 1000,
		Heads: []snapshot.HeadCount{{Addr: 10, Count: 60}},
	})
	writeSnapFile(t, b, &snapshot.Snapshot{
		Program: "bench", Tenant: "t1", Fingerprint: 7, Scheme: "net", Tau: 50, Flow: 40, Steps: 500,
		Heads: []snapshot.HeadCount{{Addr: 10, Count: 30}, {Addr: 20, Count: 55}},
	})
	writeSnapFile(t, c, &snapshot.Snapshot{
		Program: "bench", Tenant: "t2", Fingerprint: 7, Scheme: "net", Tau: 50, Flow: 9, Steps: 90,
	})

	var buf bytes.Buffer
	if err := run([]string{"merge", "-o", out, a, b, c}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 2 merged profile(s)") {
		t.Errorf("summary missing group count:\n%s", buf.String())
	}

	f, err := snapshot.ReadFile(out, snapshot.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("merged file has %d snapshots; want 2 groups", len(f.Snapshots))
	}
	var t1 *snapshot.Snapshot
	for _, sn := range f.Snapshots {
		if sn.Tenant == "t1" {
			t1 = sn
		}
	}
	if t1 == nil {
		t.Fatal("merged file lost the t1 group")
	}
	// The merge is a join (field-wise MAX), so re-merging overlapping
	// captures never double-counts: flow is max(100, 40), head 10 is
	// max(60, 30), and head 20 survives from the shard that saw it.
	if t1.Flow != 100 {
		t.Errorf("t1 flow = %d; want 100 (join, not sum)", t1.Flow)
	}
	if len(t1.Heads) != 2 {
		t.Errorf("t1 has %d heads; want 2", len(t1.Heads))
	}
	for _, h := range t1.Heads {
		if h.Addr == 10 && h.Count != 60 {
			t.Errorf("head 10 count = %d; want 60", h.Count)
		}
		if h.Addr == 20 && h.Count != 55 {
			t.Errorf("head 20 count = %d; want 55", h.Count)
		}
	}
}

// TestMergeErrors: missing -o, no inputs, and an unreadable input all fail
// with a useful error instead of writing anything.
func TestMergeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"merge"}, &buf); err == nil {
		t.Error("merge without -o: want an error")
	}
	if err := run([]string{"merge", "-o", filepath.Join(t.TempDir(), "x.json")}, &buf); err == nil {
		t.Error("merge without inputs: want an error")
	}
	if err := run([]string{"merge", "-o", filepath.Join(t.TempDir(), "x.json"), "no-such-file.json"}, &buf); err == nil {
		t.Error("merge with a missing input: want an error")
	}
}
