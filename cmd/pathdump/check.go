package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"

	"netpath/internal/dataflow"
	"netpath/internal/dynamo"
	"netpath/internal/workload"
)

// checkEntry is one benchmark's static-analysis verdict: the dataflow facts
// the analyzer proved, the translation validator's accept/reject tallies
// across both tiers, and the measured guard-elision effect. The JSON form is
// the CI artifact; the gate fails on any reject.
type checkEntry struct {
	Name string `json:"name"`

	// Whole-program dataflow facts.
	BoundsProven    int `json:"bounds_proven"`
	BoundsTotal     int `json:"bounds_total"`
	BranchesDecided int `json:"branches_decided"`
	BranchesTotal   int `json:"branches_total"`

	// Tier-1 translation validation (at emit).
	ValidatorChecked int64 `json:"validator_checked"`
	ValidatorRejects int64 `json:"validator_rejects"`

	// Tier-2 translation validation (after background compile).
	T2Compiled         int64 `json:"t2_compiled"`
	T2ValidatorRejects int64 `json:"t2_validator_rejects"`

	// Guard elision, and its measured effect.
	T2BoundsElided  int64   `json:"t2_bounds_elided"`
	T2GuardsImplied int64   `json:"t2_guards_implied"`
	T2GuardChecks   int64   `json:"t2_guard_checks"`
	T2Instrs        int64   `json:"t2_instrs"`
	GuardsPerStep   float64 `json:"guards_per_step"`
}

// rejects is the gate condition: any refused translation fails the check.
func (e *checkEntry) rejects() int64 {
	return e.ValidatorRejects + e.T2ValidatorRejects
}

// runCheck implements the check subcommand: the CI static-analysis gate.
// Each benchmark runs under the full tiered mini-Dynamo with the translation
// validator on (every tier-1 emit and tier-2 superblock proven against its
// recorded guest sequence before installation) and facts-driven guard
// elision enabled — the most aggressive configuration, so the validator is
// checking exactly the translations production would run. The command exits
// nonzero if any translation is rejected: on these deterministic workloads a
// reject is a compiler bug, not an input anomaly.
func runCheck(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pathdump check", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	tau := fs.Int64("tau", 50, "NET promotion threshold")
	thresh := fs.Int64("tier2-threshold", 8, "fragment completions before tier-2 promotion")
	jsonOut := fs.Bool("json", false, "emit the per-benchmark report as JSON (the CI facts artifact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = workload.Names()
	}
	entries := make([]checkEntry, 0, len(names))
	var bad []string
	for _, name := range names {
		e, err := checkOne(name, *scale, *tau, *thresh)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		entries = append(entries, *e)
		if e.rejects() > 0 {
			bad = append(bad, name)
		}
		if !*jsonOut {
			fmt.Fprintf(w,
				"%-10s bounds=%d/%d decided=%d/%d  t1 checked=%d rejects=%d  t2 compiled=%d rejects=%d elided=%d implied=%d  guards/step=%.3f\n",
				e.Name, e.BoundsProven, e.BoundsTotal, e.BranchesDecided, e.BranchesTotal,
				e.ValidatorChecked, e.ValidatorRejects,
				e.T2Compiled, e.T2ValidatorRejects,
				e.T2BoundsElided, e.T2GuardsImplied, e.GuardsPerStep)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Benchmarks []checkEntry `json:"benchmarks"`
		}{entries}); err != nil {
			return err
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("validator rejected translations on %v", bad)
	}
	return nil
}

// checkOne analyzes and runs one benchmark. The tier-2 compiler gets its own
// queue so the drain condition below is exact: every successful enqueue
// (Result.T2Promotions) ends as exactly one compile or rejection.
func checkOne(name string, scale float64, tau, thresh int64) (*checkEntry, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := b.Build(scale)
	if err != nil {
		return nil, err
	}
	e := &checkEntry{Name: name}
	facts, err := dataflow.Analyze(p)
	if err != nil {
		return nil, err
	}
	e.BoundsProven, e.BoundsTotal = facts.InBoundsCount()
	e.BranchesDecided, e.BranchesTotal = facts.DecidedBranchCount()

	tc := dynamo.NewTier2Compiler(1, 256)
	defer tc.Close()
	cfg := dynamo.DefaultConfig(dynamo.SchemeNET, tau)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = thresh
	cfg.Tier2Elide = true
	cfg.ValidateEmits = true
	res, err := dynamo.New(p, cfg).Run()
	if err != nil {
		return nil, err
	}
	// Drain the compile queue: promotions the run enqueued may still be in
	// flight, and the validator's verdict lands when the compile finishes.
	for tc.Compiled()+tc.Rejected() < res.T2Promotions {
		runtime.Gosched()
	}
	e.ValidatorChecked = res.ValidatorChecked
	e.ValidatorRejects = res.ValidatorRejects
	e.T2Compiled = tc.Compiled()
	e.T2ValidatorRejects = tc.ValidatorRejected()
	e.T2BoundsElided = res.T2BoundsElided
	e.T2GuardsImplied = res.T2GuardsImplied
	e.T2GuardChecks = res.T2GuardChecks
	e.T2Instrs = res.T2Instrs
	if res.T2Instrs > 0 {
		e.GuardsPerStep = float64(res.T2GuardChecks) / float64(res.T2Instrs)
	}
	return e, nil
}
