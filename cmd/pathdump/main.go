// Command pathdump inspects the path profile of a benchmark (or all of
// them): distinct paths, flow, hot-set statistics, unique heads, and the
// top paths by frequency. It is the debugging companion to cmd/hotpath.
//
// Usage:
//
//	pathdump [-scale f] [-top n] [-hot frac] [benchmark ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"netpath/internal/profile"
	"netpath/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathdump: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and writes the requested dumps to w. Split from main so
// the golden-output test can drive the full flag-to-format pipeline.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pathdump", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	top := fs.Int("top", 0, "print the top N paths by frequency")
	hot := fs.Float64("hot", 0.001, "fractional hot threshold")
	disasm := fs.Bool("disasm", false, "print the program disassembly")
	jsonOut := fs.Bool("json", false, "emit the path profile as JSON instead of a summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = workload.Names()
	}
	for _, name := range names {
		if err := dump(w, name, *scale, *top, *hot, *disasm, *jsonOut); err != nil {
			return err
		}
	}
	return nil
}

func dump(w io.Writer, name string, scale float64, top int, hotFrac float64, disasm, jsonOut bool) error {
	b, err := workload.ByName(name)
	if err != nil {
		return err
	}
	p, err := b.Build(scale)
	if err != nil {
		return err
	}
	if disasm {
		fmt.Fprint(w, p.Disasm())
	}
	start := time.Now()
	pr, err := profile.Collect(p, 0)
	if err != nil {
		return err
	}
	if jsonOut {
		return pr.WriteJSON(w)
	}
	hs := pr.Hot(hotFrac)
	fmt.Fprintf(w,
		"%-10s instrs=%-9d steps=%-11d paths=%-7d heads=%-6d flow=%-9d hot(%.2g%%): %d paths, %.1f%% flow  [%.2fs]\n",
		name, p.Len(), pr.Steps, pr.NumPaths(), pr.UniqueHeads(), pr.Flow,
		hotFrac*100, hs.Count, hs.FlowPct(pr), time.Since(start).Seconds())
	if top > 0 {
		for _, pc := range pr.TopPaths(top) {
			info := pr.Paths.Info(pc.ID)
			fmt.Fprintf(w, "  %10d  %s\n", pc.Freq, info.Signature())
		}
	}
	return nil
}
