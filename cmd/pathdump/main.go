// Command pathdump inspects the path profile of a benchmark (or all of
// them): distinct paths, flow, hot-set statistics, unique heads, and the
// top paths by frequency. It is the debugging companion to cmd/hotpath.
//
// Usage:
//
//	pathdump [-scale f] [-top n] [-hot frac] [-verify] [benchmark ...]
//	pathdump cfg [-scale f] [-fn name] benchmark ...
//	pathdump merge -o out.json snap.json ...
//	pathdump trace [-chrome] trace.json
//	pathdump check [-scale f] [-json] [benchmark ...]
//
// The cfg subcommand emits one function's control-flow graph as Graphviz
// DOT, with the static predictor's maximum-likelihood hot-path edges
// highlighted in red; -verify runs the static verifier over each program
// and prints its report before the summary.
//
// The merge subcommand is the fleet aggregator for profile snapshots: it
// reads N netpath-snap/v1 files (per-shard -snapshot-out exports), groups
// their snapshots by (tenant, program fingerprint, scheme), flow-weight
// merges each group, and writes one file whose profiles warm-start the whole
// fleet's next generation.
//
// The check subcommand is the static-analysis gate: it runs each benchmark
// (default: all of them) under the tiered mini-Dynamo with the translation
// validator and statically-proven guard elision enabled, reporting the
// dataflow facts, validator verdicts, and guards-executed-per-step, and
// exits nonzero if any tier-1 or tier-2 translation is rejected. -json
// emits the report as the machine-readable CI artifact.
//
// The trace subcommand renders a netpath-trace/v1 document — a saved
// /v1/trace/{id} response or cmd/dynamo -trace output — as a text waterfall,
// or with -chrome as Chrome trace-event JSON for chrome://tracing / Perfetto.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"netpath/internal/cfg"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/snapshot"
	"netpath/internal/staticpred"
	"netpath/internal/trace"
	"netpath/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathdump: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and writes the requested dumps to w. Split from main so
// the golden-output test can drive the full flag-to-format pipeline.
func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "cfg" {
		return runCFG(args[1:], w)
	}
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(args[1:], w)
	}
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:], w)
	}
	if len(args) > 0 && args[0] == "check" {
		return runCheck(args[1:], w)
	}
	fs := flag.NewFlagSet("pathdump", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	top := fs.Int("top", 0, "print the top N paths by frequency")
	hot := fs.Float64("hot", 0.001, "fractional hot threshold")
	disasm := fs.Bool("disasm", false, "print the program disassembly")
	jsonOut := fs.Bool("json", false, "emit the path profile as JSON instead of a summary")
	verify := fs.Bool("verify", false, "run the static verifier and print its report before the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = workload.Names()
	}
	for _, name := range names {
		if err := dump(w, name, *scale, *top, *hot, *disasm, *jsonOut, *verify); err != nil {
			return err
		}
	}
	return nil
}

// runCFG implements the cfg subcommand: emit one function's CFG as DOT with
// the static maximum-likelihood hot-path edges highlighted.
func runCFG(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pathdump cfg", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	fn := fs.String("fn", "main", "function whose CFG to emit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf("cfg wants at least one benchmark name")
	}
	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return err
		}
		p, err := b.Build(*scale)
		if err != nil {
			return err
		}
		fi := -1
		for i := range p.Funcs {
			if p.Funcs[i].Name == *fn {
				fi = i
			}
		}
		if fi < 0 {
			return fmt.Errorf("%s has no function %q", name, *fn)
		}
		g, err := cfg.Build(p, fi)
		if err != nil {
			return err
		}
		hl, err := hotPathEdges(p, fi, g)
		if err != nil {
			return err
		}
		if err := cfg.WriteDOT(w, g, hl); err != nil {
			return err
		}
	}
	return nil
}

// runMerge implements the merge subcommand: fleet-merge N snapshot files
// into one. Snapshots group by (tenant, fingerprint, scheme); each group
// merges commutatively, so shard order and capture order don't matter. The
// output keeps groups in first-seen order for a stable, diffable file.
func runMerge(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pathdump merge", flag.ContinueOnError)
	out := fs.String("o", "", "output snapshot file (required)")
	quiet := fs.Bool("q", false, "suppress the per-group summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("merge wants -o out.json")
	}
	ins := fs.Args()
	if len(ins) == 0 {
		return fmt.Errorf("merge wants at least one input snapshot file")
	}
	lim := snapshot.DefaultLimits()
	groups := map[snapshot.Key][]*snapshot.Snapshot{}
	var order []snapshot.Key
	for _, path := range ins {
		f, err := snapshot.ReadFile(path, lim)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, sn := range f.Snapshots {
			k := sn.GroupKey()
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], sn)
		}
	}
	merged := snapshot.NewFile()
	for _, k := range order {
		sn, err := snapshot.MergeAll(groups[k])
		if err != nil {
			return err
		}
		sn.Clamp(lim)
		merged.Snapshots = append(merged.Snapshots, sn)
		if !*quiet {
			tenant := k.Tenant
			if tenant == "" {
				tenant = "-"
			}
			fmt.Fprintf(w, "%-12s %#016x %-4s  %d input(s) -> heads=%d traces=%d paths=%d flow=%d\n",
				tenant, k.Fingerprint, k.Scheme, len(groups[k]),
				len(sn.Heads), len(sn.Traces), len(sn.Paths), sn.Flow)
		}
	}
	if err := snapshot.WriteFile(*out, merged); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(w, "wrote %d merged profile(s) to %s\n", len(merged.Snapshots), *out)
	}
	return nil
}

// runTrace implements the trace subcommand: render a captured trace
// document. The input is one netpath-trace/v1 JSON file ("-" reads stdin);
// the default output is the text waterfall, -chrome switches to Chrome
// trace-event JSON.
func runTrace(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pathdump trace", flag.ContinueOnError)
	chrome := fs.Bool("chrome", false, "emit Chrome trace-event JSON instead of the text waterfall")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace wants exactly one input file (\"-\" for stdin)")
	}
	var r io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	d, err := trace.DecodeDoc(r)
	if err != nil {
		return err
	}
	if *chrome {
		return trace.ChromeJSON(w, d)
	}
	return trace.Waterfall(w, d)
}

// hotPathEdges maps the static predictor's walks through function fi onto
// CFG edges: every block-to-block transfer a maximum-likelihood walk takes
// inside the function is highlighted.
func hotPathEdges(p *prog.Program, fi int, g *cfg.Graph) (map[cfg.Edge]bool, error) {
	a, err := staticpred.Analyze(p)
	if err != nil {
		return nil, err
	}
	nodeAt := func(addr int) cfg.Node {
		bi := p.BlockAt(addr)
		if bi < 0 || p.Blocks[bi].Func != fi {
			return -1
		}
		if n, ok := g.NodeOf[bi]; ok {
			return n
		}
		return -1
	}
	hl := map[cfg.Edge]bool{}
	for _, wk := range a.Walks() {
		for _, st := range wk.Steps {
			// Only block terminators realize CFG edges.
			bi := p.BlockAt(st.PC)
			if bi < 0 || p.Blocks[bi].Func != fi || st.PC != p.Blocks[bi].End-1 {
				continue
			}
			from, to := nodeAt(st.PC), nodeAt(st.Next)
			if from >= 0 && to >= 0 {
				hl[cfg.Edge{From: from, To: to}] = true
			}
		}
	}
	return hl, nil
}

func dump(w io.Writer, name string, scale float64, top int, hotFrac float64, disasm, jsonOut, verify bool) error {
	b, err := workload.ByName(name)
	if err != nil {
		return err
	}
	p, err := b.Build(scale)
	if err != nil {
		return err
	}
	if verify {
		r := cfg.Verify(p)
		fmt.Fprintln(w, r.String())
		if err := r.Err(); err != nil {
			return err
		}
	}
	if disasm {
		fmt.Fprint(w, p.Disasm())
	}
	start := time.Now()
	pr, err := profile.Collect(p, 0)
	if err != nil {
		return err
	}
	if jsonOut {
		return pr.WriteJSON(w)
	}
	hs := pr.Hot(hotFrac)
	fmt.Fprintf(w,
		"%-10s instrs=%-9d steps=%-11d paths=%-7d heads=%-6d flow=%-9d hot(%.2g%%): %d paths, %.1f%% flow  [%.2fs]\n",
		name, p.Len(), pr.Steps, pr.NumPaths(), pr.UniqueHeads(), pr.Flow,
		hotFrac*100, hs.Count, hs.FlowPct(pr), time.Since(start).Seconds())
	if top > 0 {
		for _, pc := range pr.TopPaths(top) {
			info := pr.Paths.Info(pc.ID)
			fmt.Fprintf(w, "  %10d  %s\n", pc.Freq, info.Signature())
		}
	}
	return nil
}
