package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCheckCleanBenchmark runs the static-analysis gate end to end on one
// small benchmark: the validator must check translations at both tiers and
// reject none, and elision must do measurable work.
func TestCheckCleanBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"check", "-scale", "0.05", "-json", "deltablue"}, &buf); err != nil {
		t.Fatalf("check: %v", err)
	}
	var rep struct {
		Benchmarks []checkEntry `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("check -json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d benchmark entries, want 1", len(rep.Benchmarks))
	}
	e := rep.Benchmarks[0]
	if e.Name != "deltablue" {
		t.Errorf("entry name = %q, want deltablue", e.Name)
	}
	if e.ValidatorChecked == 0 {
		t.Error("tier-1 validator checked nothing")
	}
	if e.T2Compiled == 0 {
		t.Error("tier-2 compiled nothing; the gate exercised no superblocks")
	}
	if r := e.rejects(); r != 0 {
		t.Errorf("validator rejected %d translations on a clean benchmark", r)
	}
	if e.BoundsProven == 0 || e.BoundsProven != e.BoundsTotal {
		t.Errorf("bounds proven %d/%d, want full coverage on deltablue",
			e.BoundsProven, e.BoundsTotal)
	}
	if e.T2BoundsElided == 0 {
		t.Error("guard elision dropped no bounds checks")
	}
}

// TestCheckTextOutput: the human-readable mode prints one line per
// benchmark with the gate's headline fields.
func TestCheckTextOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"check", "-scale", "0.05", "deltablue"}, &buf); err != nil {
		t.Fatalf("check: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"deltablue", "rejects=0", "guards/step="} {
		if !strings.Contains(out, want) {
			t.Errorf("check output missing %q:\n%s", want, out)
		}
	}
}

// TestCheckUnknownBenchmark: a bad name must fail loudly, not skip.
func TestCheckUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"check", "nonesuch"}, &buf); err == nil {
		t.Fatal("check accepted an unknown benchmark name")
	}
}
