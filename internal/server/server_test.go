package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netpath/internal/asm"
	"netpath/internal/prog"
)

// Guests used across the tests.
const (
	// countAsm halts after a short counted loop, leaving the count in r0.
	countAsm = `
func main:
    movi r0, 0
loop:
    addi r0, r0, 1
    bri.lt r0, 1000, loop
    halt
`
	// spinAsm runs ~1e12 iterations — effectively forever, but with a
	// statically visible exit edge so the verifier admits it. Deadline and
	// step-budget tests hang guests with it.
	spinAsm = `
func main:
    movi r0, 1
spin:
    addi r0, r0, 1
    bri.lt r0, 1000000000000, spin
    halt
`
	// faultAsm loads far outside its 4-word memory: a guaranteed runtime
	// fault the static verifier cannot see.
	faultAsm = `
.mem 4
func main:
    movi r0, 1000
    load r1, [r0+0]
    halt
`
	// hangAsm is an obviously infinite counterless loop — the verifier
	// rejects it at load time (ClassInfiniteLoop).
	hangAsm = `
func main:
loop:
    jmp loop
`
)

// quietCfg returns a test config that logs through t and keeps runs short.
func quietCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		Workers:    2,
		QueueDepth: 16,
		Logf:       t.Logf,
	}
}

// startServer builds a Server plus an httptest front end and registers
// cleanup. Telemetry instruments live in the process-global registry, so no
// per-test registry is needed (duplicate mux patterns would panic).
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx, nil)
	})
	return s, ts
}

// postRun submits body (marshalled if not []byte) and returns the status,
// the decoded success response, and the decoded error (one of which is nil).
func postRun(t *testing.T, url string, body any) (int, *runResponse, *apiError, http.Header) {
	t.Helper()
	var buf []byte
	switch b := body.(type) {
	case []byte:
		buf = b
	case string:
		buf = []byte(b)
	default:
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var rr runResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatalf("decode success body: %v", err)
		}
		return resp.StatusCode, &rr, nil, resp.Header
	}
	var eb errBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil {
		t.Fatalf("status %d with undecodable error body (err=%v)", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, eb.Error, resp.Header
}

// TestRunAsmRoundTrip: an assembled guest executes under full translation
// and the response carries its architectural result.
func TestRunAsmRoundTrip(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	code, resp, apiErr, _ := postRun(t, ts.URL, map[string]any{
		"tenant": "alice", "asm": countAsm,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, err %+v", code, apiErr)
	}
	if resp.Mode != "dynamo" || resp.Degraded {
		t.Fatalf("mode %q degraded=%v, want dynamo/undegraded", resp.Mode, resp.Degraded)
	}
	if resp.Steps == 0 || len(resp.Regs) == 0 || resp.Regs[0] != 1000 {
		t.Fatalf("steps=%d regs=%v, want r0=1000", resp.Steps, resp.Regs)
	}
}

// TestRunEncodedProg: the netpath-prog/v1 wire form round-trips through the
// server and matches the asm form's result.
func TestRunEncodedProg(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	p, err := asm.Parse("count", countAsm)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := prog.EncodeJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	code, resp, apiErr, _ := postRun(t, ts.URL, map[string]any{
		"tenant": "bob", "prog": json.RawMessage(doc),
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, err %+v", code, apiErr)
	}
	if resp.Regs[0] != 1000 {
		t.Fatalf("r0 = %d, want 1000", resp.Regs[0])
	}
}

// TestRunBench: built-in workloads are submittable by name.
func TestRunBench(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	code, resp, apiErr, _ := postRun(t, ts.URL, map[string]any{
		"tenant": "carol", "bench": "compress", "scale": 0.005,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, err %+v", code, apiErr)
	}
	if resp.Name != "compress" || resp.Steps == 0 {
		t.Fatalf("resp %+v, want compress with steps > 0", resp)
	}
}

// TestTypedRejections: every malformed or over-quota submission maps to its
// documented code and 4xx status — never a 5xx.
func TestTypedRejections(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	cases := []struct {
		name     string
		body     any
		wantCode ErrCode
		wantHTTP int
	}{
		{"garbage", "{nope", CodeBadRequest, 400},
		{"trailing", `{"tenant":"a","asm":"func main:\n halt\n"} {}`, CodeBadRequest, 400},
		{"unknown field", map[string]any{"tenant": "a", "asm": countAsm, "wat": 1}, CodeBadRequest, 400},
		{"missing tenant", map[string]any{"asm": countAsm}, CodeBadRequest, 400},
		{"bad tenant", map[string]any{"tenant": "a b\nc", "asm": countAsm}, CodeBadRequest, 400},
		{"no program", map[string]any{"tenant": "a"}, CodeBadRequest, 400},
		{"two programs", map[string]any{"tenant": "a", "asm": countAsm, "bench": "compress"}, CodeBadRequest, 400},
		{"bad scheme", map[string]any{"tenant": "a", "asm": countAsm, "scheme": "jit"}, CodeBadRequest, 400},
		{"negative steps", map[string]any{"tenant": "a", "asm": countAsm, "max_steps": -1}, CodeBadRequest, 400},
		{"bad scale", map[string]any{"tenant": "a", "bench": "compress", "scale": 2.0}, CodeBadRequest, 400},
		{"unknown bench", map[string]any{"tenant": "a", "bench": "doom"}, CodeBadRequest, 400},
		{"parse error", map[string]any{"tenant": "a", "asm": "func main:\n frobnicate r0\n"}, CodeParse, 400},
		{"bad prog doc", map[string]any{"tenant": "a", "prog": json.RawMessage(`{"version":"bogus"}`)}, CodeParse, 400},
		{"verify rejected", map[string]any{"tenant": "a", "asm": hangAsm}, CodeVerify, 422},
		{"steps over quota", map[string]any{"tenant": "a", "asm": countAsm, "max_steps": int64(1) << 60}, CodeQuota, 422},
		{"deadline over quota", map[string]any{"tenant": "a", "asm": countAsm, "deadline_ms": 1 << 30}, CodeQuota, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, apiErr, _ := postRun(t, ts.URL, tc.body)
			if code != tc.wantHTTP || apiErr == nil || apiErr.Code != tc.wantCode {
				t.Fatalf("got status %d code %v, want %d %s (err %+v)",
					code, codeOf(apiErr), tc.wantHTTP, tc.wantCode, apiErr)
			}
		})
	}
}

func codeOf(e *apiError) ErrCode {
	if e == nil {
		return ""
	}
	return e.Code
}

// TestBodyTooLarge: MaxBytesReader rejections surface as a quota error, not
// a connection reset or a 5xx.
func TestBodyTooLarge(t *testing.T) {
	cfg := quietCfg(t)
	cfg.Quotas = DefaultQuotas()
	cfg.Quotas.MaxBodyBytes = 512
	_, ts := startServer(t, cfg)
	big := map[string]any{"tenant": "a", "asm": countAsm + strings.Repeat("; pad\n", 200)}
	code, _, apiErr, _ := postRun(t, ts.URL, big)
	if code != http.StatusRequestEntityTooLarge || apiErr.Code != CodeQuota {
		t.Fatalf("got %d %v, want 413 quota_exceeded", code, codeOf(apiErr))
	}
}

// TestDeadlinePreemption: a spinning guest is preempted at its wall-clock
// deadline with the typed deadline error, under both translation and the
// degraded interpreter.
func TestDeadlinePreemption(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	start := time.Now()
	code, _, apiErr, _ := postRun(t, ts.URL, map[string]any{
		"tenant": "alice", "asm": spinAsm, "deadline_ms": 100,
	})
	elapsed := time.Since(start)
	if code != http.StatusRequestTimeout || apiErr.Code != CodeDeadline {
		t.Fatalf("got %d %v, want 408 deadline", code, codeOf(apiErr))
	}
	if apiErr.Steps == 0 {
		t.Fatalf("deadline error carries no step count: %+v", apiErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("preemption took %v; cooperative yield is broken", elapsed)
	}
}

// TestStepLimit: a spinning guest under a step budget stops with the typed
// step-limit error.
func TestStepLimit(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	code, _, apiErr, _ := postRun(t, ts.URL, map[string]any{
		"tenant": "alice", "asm": spinAsm, "max_steps": 20000,
	})
	if code != http.StatusUnprocessableEntity || apiErr.Code != CodeStepLimit {
		t.Fatalf("got %d %v, want 422 step_limit", code, codeOf(apiErr))
	}
}

// TestGuestFault: a runtime memory fault maps to the typed guest-fault
// error, not a 5xx.
func TestGuestFault(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	code, _, apiErr, _ := postRun(t, ts.URL, map[string]any{
		"tenant": "alice", "asm": faultAsm,
	})
	if code != http.StatusUnprocessableEntity || apiErr.Code != CodeGuestFault {
		t.Fatalf("got %d %v, want 422 guest_fault", code, codeOf(apiErr))
	}
	if !strings.Contains(apiErr.Message, "fault") {
		t.Fatalf("fault message %q names no fault", apiErr.Message)
	}
}

// TestRateLimit: the token bucket rejects the burst-exhausting submission
// with 429 and a Retry-After hint, and refills with the (injected) clock.
func TestRateLimit(t *testing.T) {
	clock := time.Unix(1000, 0)
	cfg := quietCfg(t)
	cfg.RatePerSec = 1
	cfg.Burst = 2
	cfg.Now = func() time.Time { return clock }
	_, ts := startServer(t, cfg)

	body := map[string]any{"tenant": "alice", "asm": countAsm}
	for i := 0; i < 2; i++ {
		if code, _, apiErr, _ := postRun(t, ts.URL, body); code != http.StatusOK {
			t.Fatalf("burst submission %d: %d %+v", i, code, apiErr)
		}
	}
	code, _, apiErr, hdr := postRun(t, ts.URL, body)
	if code != http.StatusTooManyRequests || apiErr.Code != CodeRateLimited {
		t.Fatalf("got %d %v, want 429 rate_limited", code, codeOf(apiErr))
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	clock = clock.Add(3 * time.Second)
	if code, _, apiErr, _ := postRun(t, ts.URL, body); code != http.StatusOK {
		t.Fatalf("after refill: %d %+v", code, apiErr)
	}
}

// TestTenantTableBound: the tenant table refuses fresh tenants past the cap
// with a typed quota error; existing tenants keep working.
func TestTenantTableBound(t *testing.T) {
	cfg := quietCfg(t)
	cfg.MaxTenants = 2
	_, ts := startServer(t, cfg)
	for _, tenant := range []string{"a", "b"} {
		if code, _, apiErr, _ := postRun(t, ts.URL, map[string]any{"tenant": tenant, "asm": countAsm}); code != 200 {
			t.Fatalf("tenant %s: %d %+v", tenant, code, apiErr)
		}
	}
	code, _, apiErr, _ := postRun(t, ts.URL, map[string]any{"tenant": "c", "asm": countAsm})
	if code != http.StatusUnprocessableEntity || apiErr.Code != CodeQuota {
		t.Fatalf("third tenant: got %d %v, want 422 quota_exceeded", code, codeOf(apiErr))
	}
	if code, _, _, _ := postRun(t, ts.URL, map[string]any{"tenant": "a", "asm": countAsm}); code != 200 {
		t.Fatalf("existing tenant rejected after table filled: %d", code)
	}
}

// TestDrainRejectsAndReadyz: during shutdown new submissions get the typed
// draining 503 and /readyz flips, while /healthz stays alive.
func TestDrainRejectsAndReadyz(t *testing.T) {
	cfg := quietCfg(t)
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drain an idle server; handler stays mounted on the httptest listener.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var snap bytes.Buffer
	if err := s.Shutdown(ctx, &snap); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !json.Valid(snap.Bytes()) {
		t.Fatalf("final snapshot is not valid JSON: %.80s", snap.String())
	}

	code, _, apiErr, hdr := postRun(t, ts.URL, map[string]any{"tenant": "a", "asm": countAsm})
	if code != http.StatusServiceUnavailable || apiErr.Code != CodeDraining {
		t.Fatalf("got %d %v, want 503 draining", code, codeOf(apiErr))
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while draining, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestStatuszAndMetrics: the operator endpoints serve on the same mux as the
// API and reflect the runs above.
func TestStatuszAndMetrics(t *testing.T) {
	_, ts := startServer(t, quietCfg(t))
	if code, _, apiErr, _ := postRun(t, ts.URL, map[string]any{"tenant": "ops", "asm": countAsm}); code != 200 {
		t.Fatalf("warm-up run: %d %+v", code, apiErr)
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var doc statuszDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /statusz: %v", err)
	}
	found := false
	for _, tn := range doc.Tenants {
		if tn.Name == "ops" && tn.Completed >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/statusz does not show tenant ops completed: %+v", doc)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := sb.String()
	for _, want := range []string{"netpath_server_submits_total", "netpath_server_completed_total", "netpath_dynamo_frag_enters_total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}
