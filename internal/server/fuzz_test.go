package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzSubmit pins the submission decoder's hardening contract: an arbitrary
// request body — truncated JSON, hostile assembly, bogus program documents,
// absurd numbers — always yields a typed 4xx/503 or a success, never a 5xx
// and never a panic. Quotas are tiny so the occasional accidentally-valid
// guest stays cheap.
func FuzzSubmit(f *testing.F) {
	cfg := Config{
		Workers:    2,
		QueueDepth: 8,
		Logf:       func(string, ...any) {},
		Quotas: Quotas{
			MaxBodyBytes:    1 << 16,
			MaxInstrs:       512,
			MaxMemWords:     1 << 12,
			MaxSteps:        500_000,
			DefaultSteps:    100_000,
			MaxDeadline:     time.Second,
			DefaultDeadline: 200 * time.Millisecond,
		},
	}
	s := New(cfg)
	handler := s.Handler()
	f.Cleanup(func() { s.queue.close(); s.pool.Wait() })

	f.Add([]byte(`{"tenant":"a","asm":"func main:\n halt\n"}`))
	f.Add([]byte(`{"tenant":"a","prog":{"version":"netpath-prog/v1"}}`))
	f.Add([]byte(`{"tenant":"a","bench":"compress","scale":0.001}`))
	f.Add([]byte(`{"tenant":"a","asm":"func main:\n movi r0, 0\nl:\n addi r0, r0, 1\n bri.lt r0, 10, l\n halt\n","max_steps":1000}`))
	f.Add([]byte(`{"tenant":""}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"tenant":"a","asm":"func main:\n halt\n","deadline_ms":-5}`))
	f.Add([]byte(`{"tenant":"a","asm":"func main:\n halt\n"} trailing`))
	f.Add([]byte(`{"tenant":"a","prog":{"version":"netpath-prog/v1","name":"x","mem_size":-1,"instrs":[{"op":26}],"funcs":[{"name":"f","entry":0,"end":1}],"blocks":[0]}}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		if rr.Code >= 500 && rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("body %q produced status %d: %s", body, rr.Code, rr.Body.String())
		}
		if rr.Code != http.StatusOK {
			var eb errBody
			if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Error == nil || eb.Error.Code == "" {
				t.Fatalf("body %q: status %d without a typed error envelope: %s",
					body, rr.Code, rr.Body.String())
			}
		}
	})
}
