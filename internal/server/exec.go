package server

import (
	"context"
	"errors"
	"net/http"
	"runtime/debug"
	"time"

	"netpath/internal/chaos"
	"netpath/internal/dynamo"
	"netpath/internal/trace"
	"netpath/internal/vm"
)

// runJob executes one admitted guest on a worker goroutine. It is the
// panic-isolation boundary: whatever a hostile guest (or a server bug)
// throws, exactly one of j.resp / j.apiErr is set and j.done is closed, the
// worker survives, and the process keeps serving other tenants.
func (s *Server) runJob(j *job) {
	start := s.now()
	queueWait := start.Sub(j.enqueued)
	// Observed at the dequeue point — before execution — so queue pressure
	// shows up in the /statusz percentiles while long runs are still going.
	telQueueWait.Observe(queueWait.Microseconds())
	telQueueDepth.Set(int64(s.queue.depth()))
	telInFlight.Set(s.inFlight.Add(1))
	defer func() {
		telInFlight.Set(s.inFlight.Add(-1))
		if r := recover(); r != nil {
			telPanics.Inc()
			s.logf("panic running guest for tenant %s: %v\n%s", j.tenant, r, debug.Stack())
			j.apiErr = errf(CodeInternal, http.StatusInternalServerError,
				"internal error; the request was aborted")
		}
		close(j.done)
	}()

	if j.tr != nil {
		startNS := start.Sub(j.t0).Nanoseconds()
		j.tr.Add(trace.SpanQueueWait, j.trRoot,
			j.enqueued.Sub(j.t0).Nanoseconds(), startNS, 0, 0)
		j.trExec = j.tr.Add(trace.SpanExecute, j.trRoot, startNS, 0, 0, 0)
	}

	steps, deadline := j.req.budgets(s.cfg.Quotas)
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	degraded := s.degradeLevel() >= degradeInterpOnly
	var (
		resp *runResponse
		err  *apiError
	)
	if degraded {
		resp, err = s.runInterp(ctx, j, steps)
		if resp != nil {
			resp.Degraded = true
		}
	} else {
		resp, err = s.runDynamo(ctx, j, steps)
	}
	end := s.now()
	runNS := end.Sub(start).Nanoseconds()
	if resp != nil {
		resp.QueueNS = queueWait.Nanoseconds()
		resp.RunNS = runNS
		j.resp = resp
	} else {
		j.apiErr = err
	}
	telRunTime.Observe(runNS / 1e3)
	s.finishTrace(j, start, end, resp, err)
}

// offNS is the current span offset from the request arrival. Server-side
// span times always come from cfg.Now (not trace.Now) so fake-clock tests
// stay coherent with the rest of the handler's timing.
func (s *Server) offNS(j *job) int64 { return s.now().Sub(j.t0).Nanoseconds() }

// finishTrace settles a completed run's observability: closes the sampled
// spans, tail-promotes errored runs the sampling coin skipped, feeds the
// tenant's flight ring, and freezes it on fault/bail/deopt incidents.
func (s *Server) finishTrace(j *job, start, end time.Time, resp *runResponse, apiErr *apiError) {
	if s.traces == nil && s.flight == nil {
		return
	}
	code := ""
	if apiErr != nil {
		code = string(apiErr.Code)
	}
	startNS := start.Sub(j.t0).Nanoseconds()
	endNS := end.Sub(j.t0).Nanoseconds()
	var runSteps, deopts int64
	bailed := false
	if resp != nil {
		runSteps, bailed, deopts = resp.Steps, resp.BailedOut, resp.Deopts
	} else if apiErr != nil {
		runSteps = apiErr.Steps
	}

	tr := j.tr
	if tr != nil {
		tr.SetArg(j.trExec, 0, runSteps)
		tr.EndAt(j.trExec, endNS)
		tr.EndAt(j.trRoot, endNS)
	} else if s.traces != nil && (code != "" || bailed || deopts > 0) {
		// Tail promotion: head sampling said no, but the run ended in an
		// incident — retain a skeleton trace rebuilt from the timing points
		// the handler recorded anyway. Engine spans are absent (the run
		// really did execute with a nil trace); the server-level phases and
		// the terminal code are what an operator needs to start digging.
		tr = trace.New(j.traceID, j.tenant, 8, j.t0)
		root := tr.Add(trace.SpanRequest, trace.NoSpan, 0, endNS, 0, 0)
		tr.Add(trace.SpanAdmission, root, 0, j.admitEndNS, 0, 0)
		tr.Add(trace.SpanVerify, root, j.admitEndNS, j.verifyEndNS, 0, 0)
		tr.Add(trace.SpanQueueWait, root,
			j.enqueued.Sub(j.t0).Nanoseconds(), startNS, 0, 0)
		tr.Add(trace.SpanExecute, root, startNS, endNS, 0, runSteps)
		tr.MarkTail()
	}
	if tr != nil {
		if code != "" {
			tr.SetErr(code)
		}
		s.traces.Put(tr)
		s.noteExemplar(tr.TraceID())
		j.retained = true
		if resp != nil {
			resp.TraceID = tr.TraceID().String()
		}
	}

	if s.flight != nil {
		s.flight.Note(j.tenant, trace.Record{
			TraceID: j.traceID, Kind: trace.SpanExecute,
			StartUnixNS: j.t0.Add(time.Duration(startNS)).UnixNano(),
			DurNS:       endNS - startNS, Arg: runSteps, Outcome: code,
		})
		switch {
		case apiErr != nil && apiErr.Code == CodeGuestFault:
			s.flight.Freeze(j.tenant, "fault", j.traceID)
		case bailed:
			s.flight.Freeze(j.tenant, "bail", j.traceID)
		case deopts > 0:
			s.flight.Freeze(j.tenant, "deopt", j.traceID)
		}
	}
}

// runDynamo executes the guest under the full NET translation stack, with
// its table shard allocated from the server's global budget.
func (s *Server) runDynamo(ctx context.Context, j *job, steps int64) (*runResponse, *apiError) {
	req := j.req
	tau := req.Tau
	if tau == 0 {
		tau = 50
	}
	cfg := dynamo.DefaultConfig(req.scheme, tau)
	cfg.MaxSteps = steps
	cfg.Telemetry = s.sink
	cfg.Trace = j.tr
	cfg.TraceParent = j.trExec
	s.shards.Alloc(j.tenant).Apply(&cfg)
	cfg.Tier2Threshold = s.cfg.Tier2Threshold
	if req.ChaosSeed != 0 && (req.ChaosTrapPerM > 0 || req.ChaosSoftPerM > 0) {
		cfg.Chaos = chaos.NewRandom(req.ChaosSeed, chaos.Rates{
			TrapPerM:        req.ChaosTrapPerM,
			RecordAbortPerM: req.ChaosSoftPerM,
			FragAbortPerM:   req.ChaosSoftPerM,
			CorruptPerM:     req.ChaosSoftPerM,
			SpikePerM:       req.ChaosSoftPerM,
		})
	}

	sys := dynamo.New(req.program, cfg)
	// Warm-start from the tenant's stored profile, keyed strictly by
	// (tenant, program fingerprint, scheme): another tenant's profile for
	// the same bytes is invisible here. A failed restore (e.g. a chaos
	// configuration that rejects pre-seeding) just starts the run cold.
	var key snapKey
	if s.snaps != nil {
		key = snapKey{tenant: j.tenant, fp: req.program.Fingerprint(), scheme: req.scheme.String()}
		if sn := s.snaps.get(key); sn != nil {
			rs := trace.NoSpan
			if j.tr != nil {
				rs = j.tr.Add(trace.SpanRestore, j.trExec, s.offNS(j), 0, 0, 0)
			}
			if err := sys.Restore(sn); err != nil {
				s.logf("snapshot restore for tenant %s: %v (running cold)", j.tenant, err)
			} else {
				telSnapRestored.Inc()
			}
			if j.tr != nil {
				j.tr.EndAt(rs, s.offNS(j))
			}
		}
	}
	res, runErr := sys.RunContext(ctx)
	s.shards.Release(j.tenant, res)
	if apiErr := s.mapRunError(runErr, res.Steps); apiErr != nil {
		return nil, apiErr
	}
	if s.snaps != nil {
		// Merge the run's profile back under the same key, clamped to the
		// shard's table budget so the stored profile never outgrows what a
		// later shard of this tenant could import.
		ms := trace.NoSpan
		if j.tr != nil {
			ms = j.tr.Add(trace.SpanMergeBack, j.trExec, s.offNS(j), 0, 0, 0)
		}
		sn := sys.Snapshot(j.tenant)
		sn.Clamp(sys.SnapshotLimits())
		if err := s.snaps.put(key, sn); err != nil {
			s.logf("snapshot merge-back for tenant %s: %v", j.tenant, err)
		} else {
			telSnapMerged.Inc()
		}
		if j.tr != nil {
			j.tr.EndAt(ms, s.offNS(j))
		}
	}

	m := sys.Machine()
	return &runResponse{
		Tenant:    j.tenant,
		Name:      req.Name,
		Scheme:    req.scheme.String(),
		Mode:      "dynamo",
		Steps:     res.Steps,
		Fragments: res.Fragments,
		Flushes:   res.Flushes,
		SpeedupPC: 100 * res.Speedup(),
		CachedPC:  100 * res.CachedFraction(),
		BailedOut: res.BailedOut,
		Deopts:    res.T2Deopts,
		Restored:  res.RestoredFragments,
		Regs:      append([]int64(nil), m.Reg[:]...),
	}, nil
}

// runInterp executes the guest on the bare VM — the degraded mode: no
// profiling, no translation, no fragment-table pressure, just bounded
// interpretation. Uses the chunked context-aware step loop so deadlines
// still preempt.
func (s *Server) runInterp(ctx context.Context, j *job, steps int64) (*runResponse, *apiError) {
	m := vm.New(j.req.program)
	if j.tr != nil {
		tr, parent := j.tr, j.trExec
		m.SetFaultObserver(func(kind vm.FaultKind, pc int, step int64) {
			now := tr.Now()
			tr.Add(trace.SpanFault, parent, now, now, int32(pc), int64(kind))
		})
	}
	runErr := m.RunContext(ctx, steps)
	if apiErr := s.mapRunError(runErr, m.Steps); apiErr != nil {
		return nil, apiErr
	}
	return &runResponse{
		Tenant: j.tenant,
		Name:   j.req.Name,
		Scheme: j.req.scheme.String(),
		Mode:   "interp",
		Steps:  m.Steps,
		Regs:   append([]int64(nil), m.Reg[:]...),
	}, nil
}

// mapRunError translates VM/dynamo run errors into the typed API vocabulary.
// nil means the guest halted cleanly.
func (s *Server) mapRunError(err error, steps int64) *apiError {
	if err == nil {
		return nil
	}
	var de *dynamo.DeadlineError
	switch {
	case errors.As(err, &de):
		telDeadlines.Inc()
		e := errf(CodeDeadline, http.StatusRequestTimeout,
			"guest preempted at wall-clock deadline after %d steps", de.Steps)
		e.Steps = de.Steps
		return e
	case errors.Is(err, vm.ErrPreempted),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		telDeadlines.Inc()
		e := errf(CodeDeadline, http.StatusRequestTimeout,
			"guest preempted at wall-clock deadline after %d steps", steps)
		e.Steps = steps
		return e
	case errors.Is(err, vm.ErrStepLimit):
		telStepLimits.Inc()
		e := errf(CodeStepLimit, http.StatusUnprocessableEntity,
			"guest exhausted its %d-step budget", steps)
		e.Steps = steps
		return e
	}
	var fault *vm.Fault
	if errors.As(err, &fault) {
		telGuestFaults.Inc()
		e := errf(CodeGuestFault, http.StatusUnprocessableEntity, "guest fault: %v", fault)
		e.Steps = steps
		return e
	}
	// Anything else is a server-side failure (e.g. a dynamo invariant); it
	// is not the client's fault but it must not masquerade as success.
	telPanics.Inc()
	s.logf("unexpected run error for steps=%d: %v", steps, err)
	return errf(CodeInternal, http.StatusInternalServerError, "internal error: run failed")
}
