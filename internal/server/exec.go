package server

import (
	"context"
	"errors"
	"net/http"
	"runtime/debug"

	"netpath/internal/chaos"
	"netpath/internal/dynamo"
	"netpath/internal/vm"
)

// runJob executes one admitted guest on a worker goroutine. It is the
// panic-isolation boundary: whatever a hostile guest (or a server bug)
// throws, exactly one of j.resp / j.apiErr is set and j.done is closed, the
// worker survives, and the process keeps serving other tenants.
func (s *Server) runJob(j *job) {
	start := s.now()
	queueWait := start.Sub(j.enqueued)
	telQueueDepth.Set(int64(s.queue.depth()))
	telInFlight.Set(s.inFlight.Add(1))
	defer func() {
		telInFlight.Set(s.inFlight.Add(-1))
		if r := recover(); r != nil {
			telPanics.Inc()
			s.logf("panic running guest for tenant %s: %v\n%s", j.tenant, r, debug.Stack())
			j.apiErr = errf(CodeInternal, http.StatusInternalServerError,
				"internal error; the request was aborted")
		}
		close(j.done)
	}()

	steps, deadline := j.req.budgets(s.cfg.Quotas)
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	degraded := s.degradeLevel() >= degradeInterpOnly
	var (
		resp *runResponse
		err  *apiError
	)
	if degraded {
		resp, err = s.runInterp(ctx, j, steps)
		if resp != nil {
			resp.Degraded = true
		}
	} else {
		resp, err = s.runDynamo(ctx, j, steps)
	}
	runNS := s.now().Sub(start).Nanoseconds()
	if resp != nil {
		resp.QueueNS = queueWait.Nanoseconds()
		resp.RunNS = runNS
		j.resp = resp
	} else {
		j.apiErr = err
	}
	telQueueWait.Observe(queueWait.Microseconds())
	telRunTime.Observe(runNS / 1e3)
}

// runDynamo executes the guest under the full NET translation stack, with
// its table shard allocated from the server's global budget.
func (s *Server) runDynamo(ctx context.Context, j *job, steps int64) (*runResponse, *apiError) {
	req := j.req
	tau := req.Tau
	if tau == 0 {
		tau = 50
	}
	cfg := dynamo.DefaultConfig(req.scheme, tau)
	cfg.MaxSteps = steps
	cfg.Telemetry = s.sink
	s.shards.Alloc(j.tenant).Apply(&cfg)
	cfg.Tier2Threshold = s.cfg.Tier2Threshold
	if req.ChaosSeed != 0 && (req.ChaosTrapPerM > 0 || req.ChaosSoftPerM > 0) {
		cfg.Chaos = chaos.NewRandom(req.ChaosSeed, chaos.Rates{
			TrapPerM:        req.ChaosTrapPerM,
			RecordAbortPerM: req.ChaosSoftPerM,
			FragAbortPerM:   req.ChaosSoftPerM,
			CorruptPerM:     req.ChaosSoftPerM,
			SpikePerM:       req.ChaosSoftPerM,
		})
	}

	sys := dynamo.New(req.program, cfg)
	// Warm-start from the tenant's stored profile, keyed strictly by
	// (tenant, program fingerprint, scheme): another tenant's profile for
	// the same bytes is invisible here. A failed restore (e.g. a chaos
	// configuration that rejects pre-seeding) just starts the run cold.
	var key snapKey
	if s.snaps != nil {
		key = snapKey{tenant: j.tenant, fp: req.program.Fingerprint(), scheme: req.scheme.String()}
		if sn := s.snaps.get(key); sn != nil {
			if err := sys.Restore(sn); err != nil {
				s.logf("snapshot restore for tenant %s: %v (running cold)", j.tenant, err)
			} else {
				telSnapRestored.Inc()
			}
		}
	}
	res, runErr := sys.RunContext(ctx)
	s.shards.Release(j.tenant, res)
	if apiErr := s.mapRunError(runErr, res.Steps); apiErr != nil {
		return nil, apiErr
	}
	if s.snaps != nil {
		// Merge the run's profile back under the same key, clamped to the
		// shard's table budget so the stored profile never outgrows what a
		// later shard of this tenant could import.
		sn := sys.Snapshot(j.tenant)
		sn.Clamp(sys.SnapshotLimits())
		if err := s.snaps.put(key, sn); err != nil {
			s.logf("snapshot merge-back for tenant %s: %v", j.tenant, err)
		} else {
			telSnapMerged.Inc()
		}
	}

	m := sys.Machine()
	return &runResponse{
		Tenant:    j.tenant,
		Name:      req.Name,
		Scheme:    req.scheme.String(),
		Mode:      "dynamo",
		Steps:     res.Steps,
		Fragments: res.Fragments,
		Flushes:   res.Flushes,
		SpeedupPC: 100 * res.Speedup(),
		CachedPC:  100 * res.CachedFraction(),
		BailedOut: res.BailedOut,
		Restored:  res.RestoredFragments,
		Regs:      append([]int64(nil), m.Reg[:]...),
	}, nil
}

// runInterp executes the guest on the bare VM — the degraded mode: no
// profiling, no translation, no fragment-table pressure, just bounded
// interpretation. Uses the chunked context-aware step loop so deadlines
// still preempt.
func (s *Server) runInterp(ctx context.Context, j *job, steps int64) (*runResponse, *apiError) {
	m := vm.New(j.req.program)
	runErr := m.RunContext(ctx, steps)
	if apiErr := s.mapRunError(runErr, m.Steps); apiErr != nil {
		return nil, apiErr
	}
	return &runResponse{
		Tenant: j.tenant,
		Name:   j.req.Name,
		Scheme: j.req.scheme.String(),
		Mode:   "interp",
		Steps:  m.Steps,
		Regs:   append([]int64(nil), m.Reg[:]...),
	}, nil
}

// mapRunError translates VM/dynamo run errors into the typed API vocabulary.
// nil means the guest halted cleanly.
func (s *Server) mapRunError(err error, steps int64) *apiError {
	if err == nil {
		return nil
	}
	var de *dynamo.DeadlineError
	switch {
	case errors.As(err, &de):
		telDeadlines.Inc()
		e := errf(CodeDeadline, http.StatusRequestTimeout,
			"guest preempted at wall-clock deadline after %d steps", de.Steps)
		e.Steps = de.Steps
		return e
	case errors.Is(err, vm.ErrPreempted),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		telDeadlines.Inc()
		e := errf(CodeDeadline, http.StatusRequestTimeout,
			"guest preempted at wall-clock deadline after %d steps", steps)
		e.Steps = steps
		return e
	case errors.Is(err, vm.ErrStepLimit):
		telStepLimits.Inc()
		e := errf(CodeStepLimit, http.StatusUnprocessableEntity,
			"guest exhausted its %d-step budget", steps)
		e.Steps = steps
		return e
	}
	var fault *vm.Fault
	if errors.As(err, &fault) {
		telGuestFaults.Inc()
		e := errf(CodeGuestFault, http.StatusUnprocessableEntity, "guest fault: %v", fault)
		e.Steps = steps
		return e
	}
	// Anything else is a server-side failure (e.g. a dynamo invariant); it
	// is not the client's fault but it must not masquerade as success.
	telPanics.Inc()
	s.logf("unexpected run error for steps=%d: %v", steps, err)
	return errf(CodeInternal, http.StatusInternalServerError, "internal error: run failed")
}
