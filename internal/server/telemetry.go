package server

import "netpath/internal/telemetry"

// The server's own instruments, registered alongside the VM/dynamo set in the
// process-wide registry so one /metrics scrape covers both layers. Request
// handling is cold relative to the guest step loop, so these write through
// plain instrument methods rather than per-worker Sinks.
var (
	telSubmits = telemetry.NewCounter("server_submits_total",
		"Guest submissions received (before admission).")
	telAdmitted = telemetry.NewCounter("server_admitted_total",
		"Guest submissions admitted to the run queue.")
	telShed = telemetry.NewCounter("server_shed_total",
		"Submissions rejected by load shedding (queue full or draining).")
	telRateLimited = telemetry.NewCounter("server_rate_limited_total",
		"Submissions rejected by a tenant token bucket.")
	telRejected = telemetry.NewCounter("server_rejected_total",
		"Submissions rejected before admission (parse, verify, quota).")
	telCompleted = telemetry.NewCounter("server_completed_total",
		"Guest runs that finished and returned a result.")
	telDeadlines = telemetry.NewCounter("server_deadline_total",
		"Guest runs preempted at their wall-clock deadline.")
	telStepLimits = telemetry.NewCounter("server_step_limit_total",
		"Guest runs stopped at their machine-step budget.")
	telGuestFaults = telemetry.NewCounter("server_guest_fault_total",
		"Guest runs ended by a machine fault.")
	telPanics = telemetry.NewCounter("server_panics_total",
		"Worker panics recovered (request died, process survived).")

	telQueueDepth = telemetry.NewGauge("server_queue_depth",
		"Guests currently buffered in the admission queue.")
	telInFlight = telemetry.NewGauge("server_inflight",
		"Guests currently executing on workers.")
	telDegradeLevel = telemetry.NewGauge("server_degrade_level",
		"Degradation ladder level: 0 normal, 1 interpret-only.")
	telTenants = telemetry.NewGauge("server_tenants",
		"Tenants known to the server.")

	telQueueWait = telemetry.NewHistogram("server_queue_wait_us",
		"Microseconds a guest waited in the admission queue.")
	telRunTime = telemetry.NewHistogram("server_run_us",
		"Microseconds a guest spent executing.")
)
