package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"
)

// submit posts body to /v1/run without touching testing.T, so concurrent
// test clients can call it from goroutines and let the main goroutine
// assert.
func submit(url string, body any) (code int, hdr http.Header, raw []byte, err error) {
	var buf []byte
	switch b := body.(type) {
	case []byte:
		buf = b
	case string:
		buf = []byte(b)
	default:
		if buf, err = json.Marshal(body); err != nil {
			return 0, nil, nil, err
		}
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw, err
}

// decodeErrBody decodes the typed error envelope out of a non-200 body.
func decodeErrBody(raw []byte) *apiError {
	var eb errBody
	if json.Unmarshal(raw, &eb) != nil {
		return nil
	}
	return eb.Error
}

// TestOverloadShedsTyped: with a tiny worker pool and queue, a flood of
// slow guests forces load shedding. The contract under overload: shed
// submissions get a well-formed 503 + Retry-After immediately, and every
// admitted guest still completes within a bounded p99 (deadlines make even
// hostile guests finite).
func TestOverloadShedsTyped(t *testing.T) {
	cfg := quietCfg(t)
	cfg.Workers = 2
	cfg.QueueDepth = 4
	cfg.QueueDepthPerTenant = 2
	_, ts := startServer(t, cfg)

	const (
		clients   = 5
		perClient = 4
	)
	type outcome struct {
		code    int
		retry   string
		raw     []byte
		latency time.Duration
		err     error
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	// Every request is its own goroutine: the whole flood is concurrent, so
	// in-flight (2) + queued (4) leaves most of the 20 to shed.
	for c := 0; c < clients; c++ {
		tenant := []string{"t0", "t1", "t2", "t3", "t4"}[c]
		for i := 0; i < perClient; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				code, hdr, raw, err := submit(ts.URL, map[string]any{
					"tenant": tenant, "asm": spinAsm, "deadline_ms": 150,
				})
				mu.Lock()
				outcomes = append(outcomes, outcome{
					code: code, retry: hdr.Get("Retry-After"),
					raw: raw, latency: time.Since(start), err: err,
				})
				mu.Unlock()
			}()
		}
	}
	wg.Wait()

	sheds, admitted := 0, 0
	var admittedLat []time.Duration
	for _, o := range outcomes {
		if o.err != nil {
			t.Fatalf("transport error under overload: %v", o.err)
		}
		apiErr := decodeErrBody(o.raw)
		switch o.code {
		case http.StatusServiceUnavailable:
			sheds++
			if apiErr == nil || apiErr.Code != CodeOverloaded || o.retry == "" {
				t.Fatalf("shed without typed overloaded error + Retry-After: %d %s", o.code, o.raw)
			}
		case http.StatusRequestTimeout:
			admitted++
			if apiErr == nil || apiErr.Code != CodeDeadline {
				t.Fatalf("admitted spin guest ended with %d %s, want typed deadline", o.code, o.raw)
			}
			admittedLat = append(admittedLat, o.latency)
		default:
			t.Fatalf("unexpected outcome under overload: %d %s", o.code, o.raw)
		}
	}
	if sheds == 0 {
		t.Fatal("flood of 20 slow guests against 2 workers + depth-4 queue shed nothing")
	}
	if admitted == 0 {
		t.Fatal("everything shed; admission control admitted nothing")
	}
	sort.Slice(admittedLat, func(i, j int) bool { return admittedLat[i] < admittedLat[j] })
	p99 := admittedLat[len(admittedLat)-1]
	// Worst case: wait behind (queue depth + in-flight) × 150 ms deadlines
	// plus preemption slack. 10 s is an order of magnitude of headroom —
	// the assertion catches unbounded waits, not scheduler jitter.
	if p99 > 10*time.Second {
		t.Fatalf("admitted p99 latency %v; admitted guests are not bounded under overload", p99)
	}
	t.Logf("overload: %d shed, %d admitted, admitted p99 %v", sheds, admitted, p99)
}

// TestDegradationLadder: sustained shedding demotes the server to
// interpret-only; a shed-free cool-off restores translation. The clock is
// injected so the test exercises the ladder, not the wall clock.
func TestDegradationLadder(t *testing.T) {
	clock := time.Unix(2000, 0)
	var clockMu sync.Mutex
	cfg := quietCfg(t)
	cfg.TripSheds = 3
	cfg.TripWindow = time.Minute
	cfg.CoolOff = time.Minute
	cfg.Now = func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock }
	s, ts := startServer(t, cfg)

	for i := 0; i < 3; i++ {
		s.noteShed()
	}
	if lvl := s.degradeLevel(); lvl != degradeInterpOnly {
		t.Fatalf("after %d sheds level = %d, want interp-only", cfg.TripSheds, lvl)
	}

	code, resp, apiErr, _ := postRun(t, ts.URL, map[string]any{"tenant": "a", "asm": countAsm})
	if code != http.StatusOK {
		t.Fatalf("degraded run: %d %+v", code, apiErr)
	}
	if resp.Mode != "interp" || !resp.Degraded {
		t.Fatalf("degraded server ran mode=%q degraded=%v, want interp/degraded", resp.Mode, resp.Degraded)
	}
	if resp.Regs[0] != 1000 {
		t.Fatalf("degraded mode changed the architectural result: r0 = %d", resp.Regs[0])
	}

	clockMu.Lock()
	clock = clock.Add(2 * time.Minute)
	clockMu.Unlock()
	code, resp, apiErr, _ = postRun(t, ts.URL, map[string]any{"tenant": "a", "asm": countAsm})
	if code != http.StatusOK {
		t.Fatalf("post-recovery run: %d %+v", code, apiErr)
	}
	if resp.Mode != "dynamo" || resp.Degraded {
		t.Fatalf("after cool-off mode=%q degraded=%v, want dynamo restored", resp.Mode, resp.Degraded)
	}
	if lvl := s.degradeLevel(); lvl != degradeNormal {
		t.Fatalf("ladder did not recover: level %d", lvl)
	}
}
