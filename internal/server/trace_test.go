package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"netpath/internal/trace"
)

// fetchTrace GETs /v1/trace/{id} and decodes the document (nil on non-200).
func fetchTrace(t *testing.T, url, id string) *trace.Doc {
	t.Helper()
	resp, err := http.Get(url + "/v1/trace/" + id)
	if err != nil {
		t.Fatalf("GET /v1/trace/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	d, err := trace.DecodeDoc(resp.Body)
	if err != nil {
		t.Fatalf("decode trace %s: %v", id, err)
	}
	return d
}

// spanIndex maps a decoded trace by span kind and by ID.
func spanIndex(d *trace.Doc) (byKind map[string][]trace.SpanDoc, byID map[int32]trace.SpanDoc) {
	byKind = make(map[string][]trace.SpanDoc)
	byID = make(map[int32]trace.SpanDoc)
	for _, s := range d.Spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
		byID[s.ID] = s
	}
	return byKind, byID
}

// checkTree pins the structural invariants every retained trace must hold:
// exactly one root, every parent resolves, children start no earlier than
// their parents, and no span runs backwards.
func checkTree(t *testing.T, d *trace.Doc) {
	t.Helper()
	_, byID := spanIndex(d)
	roots := 0
	for _, s := range d.Spans {
		if s.EndNS < s.StartNS {
			t.Fatalf("span %d (%s) ends before it starts: %+v", s.ID, s.Kind, s)
		}
		if s.Parent == trace.NoSpan {
			roots++
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d (%s) has unresolved parent %d", s.ID, s.Kind, s.Parent)
		}
		if s.StartNS < p.StartNS {
			t.Fatalf("span %d (%s) starts before its parent %d (%s)", s.ID, s.Kind, p.ID, p.Kind)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly 1: %+v", roots, d.Spans)
	}
}

// TestTraceEndToEnd: a head-sampled run returns its trace ID in the response
// and the traceparent header, and the retained document is a well-formed
// tree covering admission, verify, queue-wait, and execute.
func TestTraceEndToEnd(t *testing.T) {
	cfg := quietCfg(t)
	cfg.TraceStore = 16
	cfg.TraceSample = 1
	_, ts := startServer(t, cfg)

	status, resp, _, hdr := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": countAsm})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.TraceID == "" {
		t.Fatal("sampled run returned no trace_id")
	}
	par, ok := trace.ParseTraceparent(hdr.Get("traceparent"))
	if !ok {
		t.Fatalf("unparseable traceparent response header %q", hdr.Get("traceparent"))
	}
	if par.ID.String() != resp.TraceID || !par.Sampled {
		t.Fatalf("traceparent %q disagrees with trace_id %s", hdr.Get("traceparent"), resp.TraceID)
	}

	d := fetchTrace(t, ts.URL, resp.TraceID)
	if d == nil {
		t.Fatalf("trace %s not retained", resp.TraceID)
	}
	if d.Tenant != "acme" || d.TailPromoted || d.Err != "" {
		t.Fatalf("unexpected doc header: %+v", d)
	}
	checkTree(t, d)
	byKind, byID := spanIndex(d)
	for _, kind := range []string{"request", "admission", "verify", "queue-wait", "execute"} {
		if len(byKind[kind]) == 0 {
			t.Fatalf("missing %s span; have %v", kind, d.Spans)
		}
	}
	// The server phases all nest directly under the request root.
	root := byKind["request"][0]
	for _, kind := range []string{"admission", "verify", "queue-wait", "execute"} {
		if p := byKind[kind][0].Parent; p != root.ID {
			t.Fatalf("%s span parented to %d (%s), want request root %d",
				kind, p, byID[p].Kind, root.ID)
		}
	}
	// Pipeline order: admission ends before verify ends before queue-wait
	// starts; execute starts when queue-wait ends.
	v, q, e := byKind["verify"][0], byKind["queue-wait"][0], byKind["execute"][0]
	if v.StartNS < byKind["admission"][0].EndNS || q.StartNS < v.EndNS || e.StartNS != q.EndNS {
		t.Fatalf("phases out of order: verify=%+v queue=%+v exec=%+v", v, q, e)
	}
	// The engine ran under the same trace: trace selection happened.
	if len(byKind["trace-select"]) == 0 || len(byKind["fragment-emit"]) == 0 {
		t.Fatalf("engine spans missing from sampled run: %v", d.Spans)
	}
}

// TestTraceTier2Spans: with the background compiler on, the submitting run's
// trace accumulates tier2-enqueue, tier2-compile, and tier2-promote spans —
// the compile landing after the response is why the store holds live traces.
func TestTraceTier2Spans(t *testing.T) {
	cfg := quietCfg(t)
	cfg.TraceStore = 16
	cfg.TraceSample = 1
	cfg.Tier2 = true
	cfg.Tier2Threshold = 4
	_, ts := startServer(t, cfg)

	status, resp, _, _ := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": hotAsm})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}

	deadline := time.Now().Add(10 * time.Second)
	var d *trace.Doc
	for time.Now().Before(deadline) {
		d = fetchTrace(t, ts.URL, resp.TraceID)
		if d != nil {
			byKind, _ := spanIndex(d)
			if len(byKind["tier2-compile"]) > 0 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d == nil {
		t.Fatalf("trace %s not retained", resp.TraceID)
	}
	checkTree(t, d)
	byKind, byID := spanIndex(d)
	if len(byKind["tier2-enqueue"]) == 0 || len(byKind["tier2-compile"]) == 0 ||
		len(byKind["tier2-promote"]) == 0 {
		t.Fatalf("missing tier-2 spans: %v", d.Spans)
	}
	exec := byKind["execute"][0]
	if p := byKind["tier2-compile"][0].Parent; p != exec.ID {
		t.Fatalf("tier2-compile parented to %d (%s), want execute %d", p, byID[p].Kind, exec.ID)
	}
	if p := byKind["tier2-promote"][0].Parent; byID[p].Kind != "tier2-compile" {
		t.Fatalf("tier2-promote parented to %d (%s), want tier2-compile", p, byID[p].Kind)
	}
}

// TestTraceTailPromotion: with head sampling off, a clean run leaves nothing
// behind, but a faulting run is tail-promoted — skeleton spans only, tagged
// with the terminal error code, announced via the traceparent header.
func TestTraceTailPromotion(t *testing.T) {
	cfg := quietCfg(t)
	cfg.TraceStore = 16
	cfg.TraceSample = 0
	_, ts := startServer(t, cfg)

	_, okResp, _, okHdr := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": countAsm})
	if okResp.TraceID != "" || okHdr.Get("traceparent") != "" {
		t.Fatalf("sampled-out clean run retained a trace: id=%q header=%q",
			okResp.TraceID, okHdr.Get("traceparent"))
	}

	status, _, apiErr, hdr := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": faultAsm})
	if status != http.StatusUnprocessableEntity || apiErr.Code != CodeGuestFault {
		t.Fatalf("fault run: status %d err %+v", status, apiErr)
	}
	par, ok := trace.ParseTraceparent(hdr.Get("traceparent"))
	if !ok {
		t.Fatalf("errored run carries no traceparent header (got %q)", hdr.Get("traceparent"))
	}
	d := fetchTrace(t, ts.URL, par.ID.String())
	if d == nil {
		t.Fatalf("tail-promoted trace %s not retained", par.ID)
	}
	checkTree(t, d)
	if !d.TailPromoted || d.Err != string(CodeGuestFault) {
		t.Fatalf("want tail-promoted guest_fault doc, got %+v", d)
	}
	byKind, _ := spanIndex(d)
	for _, kind := range []string{"request", "admission", "verify", "queue-wait", "execute"} {
		if len(byKind[kind]) == 0 {
			t.Fatalf("skeleton missing %s span: %v", kind, d.Spans)
		}
	}
	// Skeletons are server-side only: the run really did execute untraced.
	if len(byKind["trace-select"]) != 0 {
		t.Fatalf("tail-promoted skeleton has engine spans: %v", d.Spans)
	}
}

// TestTraceEndpointErrors: the trace endpoint speaks the typed error
// vocabulary for malformed and unknown IDs, and when tracing is off.
func TestTraceEndpointErrors(t *testing.T) {
	cfg := quietCfg(t)
	cfg.TraceStore = 4
	_, ts := startServer(t, cfg)

	for _, tc := range []struct {
		id     string
		status int
		code   ErrCode
	}{
		{"zzzz", http.StatusBadRequest, CodeBadRequest},
		{"0123456789abcdef0123456789abcdef", http.StatusNotFound, CodeNotFound},
	} {
		resp, err := http.Get(ts.URL + "/v1/trace/" + tc.id)
		if err != nil {
			t.Fatal(err)
		}
		var eb errBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil {
			t.Fatalf("id %q: undecodable error body (err=%v)", tc.id, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || eb.Error.Code != tc.code {
			t.Fatalf("id %q: got %d/%s, want %d/%s", tc.id, resp.StatusCode, eb.Error.Code, tc.status, tc.code)
		}
	}
}

// TestFlightRecorder: the per-tenant ring records every run, and a guest
// fault freezes it into a dump visible at /debug/flight.
func TestFlightRecorder(t *testing.T) {
	cfg := quietCfg(t)
	cfg.FlightRecords = 8
	_, ts := startServer(t, cfg)

	if status, _, _, _ := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": countAsm}); status != http.StatusOK {
		t.Fatalf("warmup run status %d", status)
	}
	if status, _, _, _ := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": faultAsm}); status != http.StatusUnprocessableEntity {
		t.Fatalf("fault run status %d", status)
	}

	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc trace.FlightDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /debug/flight: %v", err)
	}
	if doc.Schema != trace.FlightSchema || doc.Freezes < 1 || len(doc.Dumps) < 1 {
		t.Fatalf("no freeze recorded: %+v", doc)
	}
	dump := doc.Dumps[0]
	if dump.Tenant != "acme" || dump.Reason != "fault" {
		t.Fatalf("dump = %+v, want tenant acme reason fault", dump)
	}
	// The frozen ring holds the history leading up to the incident: the
	// clean warmup run and the faulting run itself.
	if len(dump.Records) < 2 {
		t.Fatalf("dump holds %d records, want the pre-incident history too", len(dump.Records))
	}
	sawFault := false
	for _, rec := range dump.Records {
		if rec.Outcome == string(CodeGuestFault) {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatalf("no record with guest_fault outcome: %+v", dump.Records)
	}
}

// TestReadyzDegraded: tripping the degradation ladder flips /readyz to a
// typed 503 — balancers route around an interp-only instance — and recovery
// is reported once the ladder climbs back.
func TestReadyzDegraded(t *testing.T) {
	cfg := quietCfg(t)
	cfg.TripSheds = 3
	s, ts := startServer(t, cfg)

	getReadyz := func() (int, readyzDoc) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var d readyzDoc
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatalf("decode /readyz: %v", err)
		}
		if !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
			t.Fatalf("Content-Type %q", resp.Header.Get("Content-Type"))
		}
		return resp.StatusCode, d
	}

	if status, d := getReadyz(); status != http.StatusOK || !d.Ready || d.State != "ready" {
		t.Fatalf("healthy server: %d %+v", status, d)
	}
	for i := 0; i < cfg.TripSheds; i++ {
		s.noteShed()
	}
	if s.degradeLevel() != degradeInterpOnly {
		t.Fatal("ladder did not trip")
	}
	status, d := getReadyz()
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while degraded, want 503", status)
	}
	if d.Ready || d.State != "degraded-interp-only" || d.DegradeLevel != degradeInterpOnly {
		t.Fatalf("degraded body %+v", d)
	}
	// Degraded-not-ready still serves: submissions land in interp mode.
	if status, resp, _, _ := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": countAsm}); status != http.StatusOK || !resp.Degraded {
		t.Fatalf("degraded run: status %d resp %+v", status, resp)
	}
}

// TestStatuszPercentilesAndExemplars: after traced traffic, /statusz carries
// queue-wait/run percentiles and exemplar trace IDs that resolve in the LRU.
func TestStatuszPercentilesAndExemplars(t *testing.T) {
	cfg := quietCfg(t)
	cfg.TraceStore = 16
	cfg.TraceSample = 1
	_, ts := startServer(t, cfg)

	for i := 0; i < 3; i++ {
		if status, _, _, _ := postRun(t, ts.URL, map[string]any{"tenant": "acme", "asm": countAsm}); status != http.StatusOK {
			t.Fatalf("run %d status %d", i, status)
		}
	}
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc statuszDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /statusz: %v", err)
	}
	// The process-global histograms have seen this test's runs at minimum.
	if doc.RunP50US <= 0 || doc.RunP99US < doc.RunP50US {
		t.Fatalf("run percentiles not populated: %+v", doc)
	}
	if doc.QueueWaitP99US < doc.QueueWaitP50US {
		t.Fatalf("queue percentiles inverted: %+v", doc)
	}
	if doc.TracesStored == 0 || len(doc.ExemplarTraces) == 0 {
		t.Fatalf("trace state missing from statusz: %+v", doc)
	}
	if d := fetchTrace(t, ts.URL, doc.ExemplarTraces[len(doc.ExemplarTraces)-1]); d == nil {
		t.Fatal("exemplar trace ID does not resolve")
	}
}
