package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// Quotas bounds what one submission may ask of the machine. Zero fields
// take defaults; the ceilings are hard — a request asking beyond them is a
// typed quota rejection, not a clamp, so tenants learn their limits instead
// of silently getting less than they asked for.
type Quotas struct {
	// MaxBodyBytes caps the HTTP request body.
	MaxBodyBytes int64
	// MaxInstrs caps program length in instructions.
	MaxInstrs int
	// MaxMemWords caps guest memory.
	MaxMemWords int
	// MaxSteps is the per-run machine-step ceiling; DefaultSteps applies
	// when a submission does not ask.
	MaxSteps     int64
	DefaultSteps int64
	// MaxDeadline is the per-run wall-clock ceiling; DefaultDeadline
	// applies when a submission does not ask.
	MaxDeadline     time.Duration
	DefaultDeadline time.Duration
}

// DefaultQuotas returns the stock per-tenant resource governor settings.
func DefaultQuotas() Quotas {
	return Quotas{
		MaxBodyBytes:    1 << 20,
		MaxInstrs:       1 << 16,
		MaxMemWords:     1 << 20,
		MaxSteps:        200_000_000,
		DefaultSteps:    50_000_000,
		MaxDeadline:     30 * time.Second,
		DefaultDeadline: 5 * time.Second,
	}
}

func (q Quotas) withDefaults() Quotas {
	d := DefaultQuotas()
	if q.MaxBodyBytes <= 0 {
		q.MaxBodyBytes = d.MaxBodyBytes
	}
	if q.MaxInstrs <= 0 {
		q.MaxInstrs = d.MaxInstrs
	}
	if q.MaxMemWords <= 0 {
		q.MaxMemWords = d.MaxMemWords
	}
	if q.MaxSteps <= 0 {
		q.MaxSteps = d.MaxSteps
	}
	if q.DefaultSteps <= 0 || q.DefaultSteps > q.MaxSteps {
		q.DefaultSteps = min64(d.DefaultSteps, q.MaxSteps)
	}
	if q.MaxDeadline <= 0 {
		q.MaxDeadline = d.MaxDeadline
	}
	if q.DefaultDeadline <= 0 || q.DefaultDeadline > q.MaxDeadline {
		q.DefaultDeadline = minDur(d.DefaultDeadline, q.MaxDeadline)
	}
	return q
}

// tenantState is one tenant's admission and accounting state.
type tenantState struct {
	name string

	// Token bucket (mu-guarded; refilled lazily on each allow check).
	mu     sync.Mutex
	tokens float64
	last   time.Time

	// Lifetime stats, exported on /statusz.
	submitted  atomic.Int64
	admitted   atomic.Int64
	completed  atomic.Int64
	shed       atomic.Int64
	rateLimits atomic.Int64
	faults     atomic.Int64
	deadlines  atomic.Int64
}

// allow takes one token if available; otherwise reports how long until one
// accrues. rate <= 0 disables limiting.
func (t *tenantState) allow(rate, burst float64, now time.Time) (bool, time.Duration) {
	if rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.IsZero() {
		t.tokens = burst
	} else if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens += dt * rate
		if t.tokens > burst {
			t.tokens = burst
		}
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / rate * float64(time.Second))
	return false, wait
}

// tenantSet owns the tenant table. It is bounded: a submission flood with
// ever-fresh tenant names must not grow server memory without limit, so
// past the cap new tenants are refused with a quota error (existing tenants
// are unaffected).
type tenantSet struct {
	mu  sync.Mutex
	m   map[string]*tenantState
	max int
}

func newTenantSet(max int) *tenantSet {
	return &tenantSet{m: make(map[string]*tenantState), max: max}
}

// get returns the tenant's state, creating it if the table has room.
func (ts *tenantSet) get(name string) (*tenantState, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.m[name]; ok {
		return t, true
	}
	if len(ts.m) >= ts.max {
		return nil, false
	}
	t := &tenantState{name: name}
	ts.m[name] = t
	return t, true
}

// count returns the tenant table size.
func (ts *tenantSet) count() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.m)
}

// all returns the tenants sorted by name (for stable /statusz output).
func (ts *tenantSet) all() []*tenantState {
	ts.mu.Lock()
	out := make([]*tenantState, 0, len(ts.m))
	for _, t := range ts.m {
		out = append(out, t)
	}
	ts.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
