package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"netpath/internal/dynamo"
)

// TestChaosSoakConcurrent is the chaos-under-concurrency soak: N tenants
// hammer one server with a seeded mix of healthy guests, chaos-injected
// guests, spinners, faulters, and malformed junk, while tiny table budgets
// force eviction pressure and a tiny queue forces overload. The contract
// under all of it, checked with -race in CI:
//
//   - every response is a success or a typed 4xx/503 — never a 5xx, never
//     a transport error, never a worker panic;
//   - the server then drains gracefully and flushes a valid final snapshot.
func TestChaosSoakConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := quietCfg(t)
	cfg.Workers = 4
	cfg.QueueDepth = 8
	cfg.QueueDepthPerTenant = 3
	cfg.Tables = dynamo.TableBudget{HeadCounters: 1 << 10, Paths: 1 << 12, Fragments: 256}
	cfg.Quotas = DefaultQuotas()
	cfg.Quotas.DefaultSteps = 3_000_000
	cfg.Quotas.DefaultDeadline = 2 * time.Second
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	panicsBefore := telPanics.Value()

	const (
		tenants    = 6
		perTenant  = 8
		benchScale = 0.003
	)
	// One request body per (tenant, iteration), cycling through the threat
	// mix; chaos seeds vary per submission so runs do not share schedules.
	mkBody := func(tenant string, i int) any {
		switch i % 5 {
		case 0: // healthy translated guest
			return map[string]any{"tenant": tenant, "asm": countAsm}
		case 1: // benchmark under soft chaos: aborts, corruptions, spikes
			return map[string]any{
				"tenant": tenant, "bench": "compress", "scale": benchScale,
				"chaos_seed": int64(1000 + i), "chaos_soft_per_m": 200,
			}
		case 2: // benchmark under trap chaos: injected machine faults
			return map[string]any{
				"tenant": tenant, "bench": "li", "scale": benchScale,
				"chaos_seed": int64(2000 + i), "chaos_trap_per_m": 5,
			}
		case 3: // hostile spinner, bounded by a short deadline
			return map[string]any{"tenant": tenant, "asm": spinAsm, "deadline_ms": 80}
		default: // malformed junk
			return []byte(fmt.Sprintf(`{"tenant":%q,"asm":`, tenant))
		}
	}

	type outcome struct {
		code int
		raw  []byte
		err  error
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	for tn := 0; tn < tenants; tn++ {
		tenant := fmt.Sprintf("soak-%d", tn)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				code, _, raw, err := submit(ts.URL, mkBody(tenant, i))
				mu.Lock()
				outcomes = append(outcomes, outcome{code: code, raw: raw, err: err})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	counts := map[int]int{}
	for _, o := range outcomes {
		if o.err != nil {
			t.Fatalf("transport error during soak: %v", o.err)
		}
		counts[o.code]++
		if o.code >= 500 && o.code != http.StatusServiceUnavailable {
			t.Fatalf("soak produced a %d: %s", o.code, o.raw)
		}
		if o.code != http.StatusOK {
			if apiErr := decodeErrBody(o.raw); apiErr == nil || apiErr.Code == "" {
				t.Fatalf("status %d without a typed error body: %s", o.code, o.raw)
			}
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatal("soak completed no guest successfully")
	}
	t.Logf("soak outcomes by status: %v; table evictions %d, pressure %d milli",
		counts, s.shards.Evictions(), s.shards.PressureMilli())

	if got := telPanics.Value(); got != panicsBefore {
		t.Fatalf("soak recovered %d worker panics; hardened paths must not panic", got-panicsBefore)
	}

	// Graceful drain with the final snapshot flush.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var snap bytes.Buffer
	if err := s.Shutdown(ctx, &snap); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(snap.Bytes(), &doc); err != nil {
		t.Fatalf("final snapshot is not valid JSON: %v", err)
	}
	if _, ok := doc["counters"]; !ok {
		t.Fatalf("final snapshot has no counters section: %v", doc)
	}
}
