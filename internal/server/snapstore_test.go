package server

import (
	"testing"

	"netpath/internal/snapshot"
)

// hotAsm loops long enough for the default τ=50 NET scheme to select traces
// and install fragments, so a completed run leaves a non-empty profile in the
// snapshot store.
const hotAsm = `
func main:
    movi r0, 0
loop:
    addi r0, r0, 1
    bri.lt r0, 20000, loop
    halt
`

// TestSnapshotTenantIsolation is the multi-tenant boundary check for the
// profile store: tenant A's warm profile must never pre-promote fragments
// for tenant B, even when B submits the byte-identical program (same
// fingerprint, same scheme). Only the same tenant re-running warm-starts.
func TestSnapshotTenantIsolation(t *testing.T) {
	cfg := quietCfg(t)
	cfg.SnapshotLimit = 8
	_, ts := startServer(t, cfg)

	run := func(tenant string) *runResponse {
		t.Helper()
		status, rr, apiErr, _ := postRun(t, ts.URL, map[string]any{
			"tenant": tenant,
			"asm":    hotAsm,
		})
		if apiErr != nil || rr == nil {
			t.Fatalf("tenant %s run failed: status=%d err=%v", tenant, status, apiErr)
		}
		return rr
	}

	// Tenant A's first run is cold and leaves a profile behind.
	if rr := run("tenant-a"); rr.Restored != 0 {
		t.Fatalf("tenant A's first run restored %d fragments; want cold start", rr.Restored)
	}

	// Tenant B runs the byte-identical program: same fingerprint, same
	// scheme — and must still start cold. A's profile is invisible.
	if rr := run("tenant-b"); rr.Restored != 0 {
		t.Fatalf("tenant B warm-started from tenant A's profile: restored %d fragments", rr.Restored)
	}

	// Tenant A re-runs and warm-starts from its own stored profile.
	if rr := run("tenant-a"); rr.Restored == 0 {
		t.Fatal("tenant A's second run restored nothing; want warm start from its own profile")
	}
}

// TestSnapshotStoreExport checks that the resident store exports per-tenant
// labelled snapshots and that an export→import round trip seeds a fresh
// server's store (the netpathd restart path).
func TestSnapshotStoreExport(t *testing.T) {
	cfg := quietCfg(t)
	cfg.SnapshotLimit = 8
	s, ts := startServer(t, cfg)

	for _, tenant := range []string{"a", "b"} {
		status, rr, apiErr, _ := postRun(t, ts.URL, map[string]any{
			"tenant": tenant,
			"asm":    hotAsm,
		})
		if apiErr != nil || rr == nil {
			t.Fatalf("tenant %s run failed: status=%d err=%v", tenant, status, apiErr)
		}
	}

	f := s.ExportSnapshots()
	if len(f.Snapshots) != 2 {
		t.Fatalf("exported %d snapshots; want 2 (one per tenant)", len(f.Snapshots))
	}
	seen := map[string]bool{}
	for _, sn := range f.Snapshots {
		seen[sn.Tenant] = true
		if sn.Fingerprint == 0 {
			t.Errorf("exported snapshot for tenant %q has zero fingerprint", sn.Tenant)
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("export lost tenant labels: %v", seen)
	}

	// Round trip into a second server: its store is seeded, and tenant A
	// warm-starts immediately on its first run there.
	cfg2 := quietCfg(t)
	cfg2.SnapshotLimit = 8
	s2, ts2 := startServer(t, cfg2)
	n, err := s2.ImportSnapshots(f)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if n != 2 {
		t.Fatalf("imported %d snapshots; want 2", n)
	}
	status, rr, apiErr, _ := postRun(t, ts2.URL, map[string]any{
		"tenant": "a",
		"asm":    hotAsm,
	})
	if apiErr != nil || rr == nil {
		t.Fatalf("tenant a run on seeded server failed: status=%d err=%v", status, apiErr)
	}
	if rr.Restored == 0 {
		t.Fatal("seeded server ran tenant a cold; want warm start from imported profile")
	}
}

// TestSnapStoreFIFOEviction exercises the bound directly: distinct keys past
// the limit evict the oldest entries, and a merge into an existing key never
// counts against the bound.
func TestSnapStoreFIFOEviction(t *testing.T) {
	st := newSnapStore(2)
	key := func(tenant string) snapKey {
		return snapKey{tenant: tenant, fp: 42, scheme: "net"}
	}
	sn := func(tenant string) *snapshot.Snapshot {
		return &snapshot.Snapshot{Tenant: tenant, Fingerprint: 42, Scheme: "net", Flow: 1}
	}

	for _, tenant := range []string{"a", "b", "c"} {
		if err := st.put(key(tenant), sn(tenant)); err != nil {
			t.Fatalf("put %s: %v", tenant, err)
		}
	}
	if st.get(key("a")) != nil {
		t.Fatal("oldest key survived eviction at limit 2")
	}
	if st.get(key("b")) == nil || st.get(key("c")) == nil {
		t.Fatal("eviction removed a key inside the bound")
	}

	// Merging into a resident key is an update, not an insert: no eviction.
	if err := st.put(key("b"), sn("b")); err != nil {
		t.Fatalf("merge put: %v", err)
	}
	if st.get(key("b")).Flow != 1 {
		t.Fatalf("merge lost flow: got %d", st.get(key("b")).Flow)
	}
	if st.get(key("c")) == nil {
		t.Fatal("merge into resident key evicted another entry")
	}
}

// TestSnapStoreDisabled: a server without SnapshotLimit has no store;
// export is empty and import is a no-op rather than an error.
func TestSnapStoreDisabled(t *testing.T) {
	s := New(quietCfg(t))
	t.Cleanup(func() { s.Shutdown(t.Context(), nil) })
	if f := s.ExportSnapshots(); len(f.Snapshots) != 0 {
		t.Fatalf("disabled store exported %d snapshots", len(f.Snapshots))
	}
	n, err := s.ImportSnapshots(snapshot.NewFile(&snapshot.Snapshot{Scheme: "net"}))
	if err != nil || n != 0 {
		t.Fatalf("disabled import: n=%d err=%v; want 0, nil", n, err)
	}
}
