package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// ErrCode enumerates the typed error vocabulary of the API. Every failure a
// guest or a client can provoke maps to exactly one code and one 4xx/503
// status; 500 is reserved for recovered panics — a malformed or hostile
// submission can never produce one (FuzzSubmit pins this).
type ErrCode string

// API error codes.
const (
	// CodeBadRequest: the request envelope itself is malformed (bad JSON,
	// missing tenant, no program, conflicting program forms).
	CodeBadRequest ErrCode = "bad_request"
	// CodeParse: the program body failed to assemble or decode.
	CodeParse ErrCode = "parse_error"
	// CodeVerify: the static CFG verifier refused the program at load time.
	CodeVerify ErrCode = "verify_rejected"
	// CodeQuota: the program or its requested budgets exceed the tenant's
	// resource quotas (size, memory, steps, deadline), or the tenant table
	// is full.
	CodeQuota ErrCode = "quota_exceeded"
	// CodeRateLimited: the tenant's token bucket is empty; retry after the
	// indicated delay.
	CodeRateLimited ErrCode = "rate_limited"
	// CodeOverloaded: admission queue full (global or per-tenant share) —
	// load shed; retry after the indicated delay.
	CodeOverloaded ErrCode = "overloaded"
	// CodeDraining: the server is shutting down and admits no new guests.
	CodeDraining ErrCode = "draining"
	// CodeDeadline: the guest exceeded its wall-clock deadline and was
	// preempted.
	CodeDeadline ErrCode = "deadline"
	// CodeStepLimit: the guest exhausted its machine-step budget.
	CodeStepLimit ErrCode = "step_limit"
	// CodeGuestFault: the guest faulted (memory out of bounds, bad
	// indirect target, stack overflow, ...); the fault text names the kind
	// and PC.
	CodeGuestFault ErrCode = "guest_fault"
	// CodeNotFound: the referenced resource (a trace ID) is unknown —
	// malformed, evicted, or never sampled.
	CodeNotFound ErrCode = "not_found"
	// CodeInternal: a recovered panic; the request died, the process did
	// not.
	CodeInternal ErrCode = "internal"
)

// apiError is a typed, JSON-renderable request failure.
type apiError struct {
	Code       ErrCode `json:"code"`
	Message    string  `json:"message"`
	Steps      int64   `json:"steps,omitempty"`         // executed before the failure, when meaningful
	RetryAfter int     `json:"retry_after_s,omitempty"` // seconds; also the Retry-After header
	status     int
}

// errBody is the error response envelope.
type errBody struct {
	Error *apiError `json:"error"`
}

func errf(code ErrCode, status int, format string, args ...any) *apiError {
	return &apiError{Code: code, Message: fmt.Sprintf(format, args...), status: status}
}

// write renders the error as its JSON envelope with the right status and,
// for retryable rejections, a Retry-After header.
func (e *apiError) write(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	status := e.status
	if status == 0 {
		status = http.StatusInternalServerError
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errBody{Error: e})
}
