// Package server is netpathd's engine room: a hardened multi-tenant
// translation service over the VM → NET → fragment-cache stack. Guests
// arrive over HTTP, pass the static verifier, wait in a bounded
// per-tenant-fair admission queue, and execute on a resident worker pool
// under per-tenant step/deadline/table budgets. The failure philosophy is
// the paper's "less is more" applied to robustness: every failure mode has
// one typed, bounded response — shed early (503 + Retry-After), preempt
// cooperatively (408), degrade to interpretation under sustained overload,
// and drain cleanly on shutdown. A guest can be slow, hostile, or unlucky;
// the process stays up and the other tenants keep their shares.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"netpath/internal/dynamo"
	"netpath/internal/par"
	"netpath/internal/telemetry"
	"netpath/internal/trace"
)

// Degradation ladder levels.
const (
	degradeNormal     = 0 // full NET translation
	degradeInterpOnly = 1 // interpretation only: no profiling, no fragment pressure
)

// Config tunes the server. Zero fields take defaults.
type Config struct {
	// Workers is the resident worker pool width (0 = par.Workers()).
	Workers int
	// QueueDepth bounds total buffered guests; QueueDepthPerTenant bounds
	// one tenant's share of the buffer.
	QueueDepth          int
	QueueDepthPerTenant int
	// MaxTenants bounds the tenant table.
	MaxTenants int
	// RatePerSec and Burst configure the per-tenant token bucket
	// (RatePerSec <= 0 disables rate limiting).
	RatePerSec float64
	Burst      float64
	// Quotas are the per-tenant resource ceilings.
	Quotas Quotas
	// Tables is the global fragment/head/path table budget divided among
	// active tenants; SharedTables grants every tenant the full budget
	// instead (the throughput-over-isolation configuration).
	Tables       dynamo.TableBudget
	SharedTables bool

	// Tier2 turns on background superblock compilation: hot fragments are
	// promoted onto a bounded compile queue shared by all tenants
	// (round-robin, so one tenant's hot loop cannot monopolize it) and
	// executed as fused superblocks once published. Tier2Workers and
	// Tier2Queue size the compile pool (defaults: 1 worker, 64 jobs);
	// Tier2Threshold is the completions-per-fragment promotion bar
	// (default: the dynamo package's).
	Tier2          bool
	Tier2Workers   int
	Tier2Queue     int
	Tier2Threshold int64

	// SnapshotLimit enables the persistent-profile store: completed runs
	// merge their profile into a bounded per-(tenant, program, scheme) store
	// and later runs of the same key warm-start from it. The value bounds
	// the number of distinct stored profiles (FIFO eviction); 0 disables the
	// store entirely (the default — warm-starting trades memory for
	// cold-start latency, and the operator opts in).
	SnapshotLimit int

	// TripSheds sheds within TripWindow trip the ladder to interp-only;
	// CoolOff without a shed recovers it.
	TripSheds  int
	TripWindow time.Duration
	CoolOff    time.Duration

	// TraceStore turns on request-scoped tracing: up to TraceStore completed
	// traces are retained in an LRU served by GET /v1/trace/{id} (0 disables
	// tracing entirely — every pipeline site then sees a nil *trace.Trace,
	// one nil check, zero allocations). TraceSample is the head-sampling
	// probability in [0,1] applied per request; callers whose traceparent
	// header sets the sampled flag are always sampled. Regardless of the
	// coin, runs that end in an error, a bail-out, or a tier-2 deopt are
	// tail-promoted with their server-level skeleton spans. TraceSpans caps
	// the per-trace span arena (default 256).
	TraceStore  int
	TraceSample float64
	TraceSpans  int
	// FlightRecords turns on the black-box flight recorder: a per-tenant
	// ring of the last FlightRecords run records, frozen into a bounded dump
	// list (FlightDumps, default 16) on guest faults, bail-outs, tier-2
	// deopts, and load sheds, served by GET /debug/flight (0 disables).
	FlightRecords int
	FlightDumps   int
	// TraceRand draws the sampling coin in [0,1) (nil = math/rand; tests
	// inject a deterministic source).
	TraceRand func() float64

	// Registry receives telemetry (nil = telemetry.Def).
	Registry *telemetry.Registry
	// Logf logs server-side events (nil = log.Printf).
	Logf func(format string, args ...any)
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = par.Workers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepthPerTenant <= 0 {
		c.QueueDepthPerTenant = (c.QueueDepth + 3) / 4
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 256
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.Quotas == (Quotas{}) {
		c.Quotas = DefaultQuotas()
	} else {
		c.Quotas = c.Quotas.withDefaults()
	}
	if c.Tables == (dynamo.TableBudget{}) {
		c.Tables = dynamo.DefaultTableBudget()
	}
	if c.TripSheds <= 0 {
		c.TripSheds = 16
	}
	if c.TripWindow <= 0 {
		c.TripWindow = 5 * time.Second
	}
	if c.CoolOff <= 0 {
		c.CoolOff = 10 * time.Second
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 256
	}
	if c.TraceSample < 0 {
		c.TraceSample = 0
	}
	if c.TraceSample > 1 {
		c.TraceSample = 1
	}
	if c.TraceRand == nil {
		c.TraceRand = rand.Float64
	}
	if c.Registry == nil {
		c.Registry = telemetry.Def
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is a running netpathd instance.
type Server struct {
	cfg     Config
	queue   *queue
	tenants *tenantSet
	shards  *dynamo.ShardSet
	tier2   *dynamo.Tier2Compiler
	snaps   *snapStore    // nil when Config.SnapshotLimit == 0
	traces  *trace.Store  // nil when Config.TraceStore == 0
	flight  *trace.Flight // nil when Config.FlightRecords == 0
	pool    *par.Resident
	mux     *http.ServeMux
	sink    *telemetry.Sink

	inFlight atomic.Int64
	draining atomic.Bool

	// exemplars holds the most recently retained trace IDs for /statusz, so
	// an operator can jump from a status snapshot straight to a waterfall.
	exMu      sync.Mutex
	exemplars []string

	// Degradation ladder state. sheds holds recent shed times (bounded to
	// TripSheds); the ladder trips when TripSheds sheds land inside
	// TripWindow and recovers after CoolOff shed-free.
	ladderMu sync.Mutex
	level    atomic.Int32
	shedTs   []time.Time
	lastShed time.Time

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a server (not yet listening; see Start, or use Handler directly
// in tests via httptest).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newQueue(cfg.QueueDepth, cfg.QueueDepthPerTenant),
		tenants: newTenantSet(cfg.MaxTenants),
		shards:  dynamo.NewShardSet(cfg.Tables, cfg.SharedTables),
		sink:    cfg.Registry.NewSink(),
	}
	if cfg.Tier2 {
		s.tier2 = dynamo.NewTier2Compiler(cfg.Tier2Workers, cfg.Tier2Queue)
		s.shards.SetTier2(s.tier2)
	}
	if cfg.SnapshotLimit > 0 {
		s.snaps = newSnapStore(cfg.SnapshotLimit)
	}
	s.traces = trace.NewStore(cfg.TraceStore)
	s.flight = trace.NewFlight(cfg.FlightRecords, cfg.FlightDumps)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	cfg.Registry.RegisterOn(s.mux)
	s.pool = par.StartResident(cfg.Workers, func() (func(), bool) {
		j, ok := s.queue.dequeue()
		if !ok {
			return nil, false
		}
		return func() { s.runJob(j) }, true
	})
	return s
}

// Handler exposes the full mux (API + health + telemetry) for embedding and
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine, returning the bound
// address (so ":0" callers can discover the port).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains the server: admission closes immediately (new submissions
// get typed 503 draining errors), buffered and in-flight guests run to
// completion, workers retire, the listener closes, and the final telemetry
// snapshot is flushed to w (nil skips the flush). ctx bounds the wait for
// in-flight guests; on expiry the HTTP server is torn down regardless.
func (s *Server) Shutdown(ctx context.Context, w interface{ Write([]byte) (int, error) }) error {
	s.draining.Store(true)
	s.queue.close()

	done := make(chan struct{})
	go func() { s.pool.Wait(); close(done) }()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: drain interrupted: %w", context.Cause(ctx))
	}
	if s.tier2 != nil {
		// After the run workers drain: no mutator is left to observe a
		// late publication, and Close joins the compile workers.
		s.tier2.Close()
	}

	if s.httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.httpSrv.Shutdown(shCtx); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: http shutdown: %w", err)
		}
	}
	if w != nil {
		if err := s.cfg.Registry.WriteJSON(w); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: snapshot flush: %w", err)
		}
	}
	return drainErr
}

func (s *Server) now() time.Time                  { return s.cfg.Now() }
func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }
func (s *Server) degradeLevel() int32             { return s.level.Load() }

// noteShed feeds the degradation ladder: sustained shedding means the
// machine cannot keep up with translation overhead on top of execution, so
// the server demotes itself to interpretation — serving every admitted guest
// slower beats serving none.
func (s *Server) noteShed() {
	now := s.now()
	s.ladderMu.Lock()
	defer s.ladderMu.Unlock()
	s.lastShed = now
	cutoff := now.Add(-s.cfg.TripWindow)
	ts := s.shedTs[:0]
	for _, t := range s.shedTs {
		if t.After(cutoff) {
			ts = append(ts, t)
		}
	}
	s.shedTs = append(ts, now)
	if len(s.shedTs) >= s.cfg.TripSheds && s.level.Load() == degradeNormal {
		s.level.Store(degradeInterpOnly)
		telDegradeLevel.Set(degradeInterpOnly)
		s.logf("degradation ladder tripped: %d sheds in %v; demoting to interpret-only",
			len(s.shedTs), s.cfg.TripWindow)
	}
}

// maybeRecover climbs back to normal after a shed-free cool-off. Called on
// the submission path so recovery needs no background ticker.
func (s *Server) maybeRecover() {
	if s.level.Load() == degradeNormal {
		return
	}
	now := s.now()
	s.ladderMu.Lock()
	defer s.ladderMu.Unlock()
	if s.level.Load() != degradeNormal && now.Sub(s.lastShed) > s.cfg.CoolOff {
		s.level.Store(degradeNormal)
		s.shedTs = s.shedTs[:0]
		telDegradeLevel.Set(degradeNormal)
		s.logf("degradation ladder recovered: %v shed-free; restoring translation", s.cfg.CoolOff)
	}
}

// handleRun is the submission path: decode → tenant/rate gate → resolve
// (parse + quota + verify) → enqueue → wait → respond.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	telSubmits.Inc()
	s.maybeRecover()
	t0 := s.now()
	var parent trace.Parent
	if s.traces != nil {
		if h := r.Header.Get("traceparent"); h != "" {
			parent, _ = trace.ParseTraceparent(h)
		}
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Quotas.MaxBodyBytes)
	req, apiErr := decodeRequest(r.Body)
	if apiErr == nil {
		apiErr = req.validate()
	}
	if apiErr != nil {
		telRejected.Inc()
		apiErr.write(w)
		return
	}

	tenant, ok := s.tenants.get(req.Tenant)
	if !ok {
		telRejected.Inc()
		errf(CodeQuota, http.StatusUnprocessableEntity,
			"tenant table full (%d tenants); no new tenants admitted", s.cfg.MaxTenants).write(w)
		return
	}
	tenant.submitted.Add(1)
	telTenants.Set(int64(s.tenants.count()))

	if allowed, wait := tenant.allow(s.cfg.RatePerSec, s.cfg.Burst, s.now()); !allowed {
		tenant.rateLimits.Add(1)
		telRateLimited.Inc()
		e := errf(CodeRateLimited, http.StatusTooManyRequests,
			"tenant %s rate limited; retry after %v", req.Tenant, wait.Round(time.Millisecond))
		e.RetryAfter = int(wait/time.Second) + 1
		e.write(w)
		return
	}

	admitEnd := s.now()
	if apiErr := req.resolve(s.cfg.Quotas); apiErr != nil {
		telRejected.Inc()
		apiErr.write(w)
		return
	}

	// One clock reading ends the verify phase and starts the queue wait, so
	// the two spans tile without overlap.
	verifyEnd := s.now()
	j := &job{
		tenant: req.Tenant, req: req, enqueued: verifyEnd,
		t0: t0, trRoot: trace.NoSpan, trExec: trace.NoSpan,
		done: make(chan struct{}),
	}
	if s.traces != nil || s.flight != nil {
		j.admitEndNS = admitEnd.Sub(t0).Nanoseconds()
		j.verifyEndNS = verifyEnd.Sub(t0).Nanoseconds()
		j.traceID = parent.ID
		if j.traceID.IsZero() {
			j.traceID = trace.NewID()
		}
	}
	if s.traces != nil && (parent.Sampled || s.cfg.TraceRand() < s.cfg.TraceSample) {
		// Head-sampled: allocate the span arena now, so every later phase —
		// including the engine's — records into preallocated memory.
		j.tr = trace.New(j.traceID, j.tenant, s.cfg.TraceSpans, t0)
		j.trRoot = j.tr.Add(trace.SpanRequest, trace.NoSpan, 0, 0, 0, 0)
		j.tr.Add(trace.SpanAdmission, j.trRoot, 0, j.admitEndNS, 0, 0)
		j.tr.Add(trace.SpanVerify, j.trRoot, j.admitEndNS, j.verifyEndNS, 0,
			int64(len(req.program.Instrs)))
	}
	if apiErr := s.queue.enqueue(j); apiErr != nil {
		tenant.shed.Add(1)
		telShed.Inc()
		if apiErr.Code == CodeOverloaded {
			s.noteShed()
		}
		s.recordShed(w, j, apiErr)
		apiErr.write(w)
		return
	}
	tenant.admitted.Add(1)
	telAdmitted.Inc()
	telQueueDepth.Set(int64(s.queue.depth()))

	// Wait for the worker. The job always completes — deadlines preempt
	// runaway guests — so waiting without a select on r.Context() is safe;
	// a vanished client just gets its response written to a dead socket.
	<-j.done
	if j.retained {
		w.Header().Set("traceparent", trace.Traceparent(j.traceID, true))
	}
	if j.apiErr != nil {
		switch j.apiErr.Code {
		case CodeDeadline:
			tenant.deadlines.Add(1)
		case CodeGuestFault, CodeStepLimit:
			tenant.faults.Add(1)
		}
		j.apiErr.write(w)
		return
	}
	tenant.completed.Add(1)
	telCompleted.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.resp)
}

// recordShed settles observability for a run rejected at the queue: the
// tenant's flight ring freezes (a shed is an incident even though no guest
// ran) and, when tracing is on, a tail-promoted skeleton trace is retained so
// the rejection stays inspectable after the 503 is gone.
func (s *Server) recordShed(w http.ResponseWriter, j *job, e *apiError) {
	if s.flight != nil {
		s.flight.Note(j.tenant, trace.Record{
			TraceID: j.traceID, Kind: trace.SpanAdmission,
			StartUnixNS: j.t0.UnixNano(), DurNS: s.now().Sub(j.t0).Nanoseconds(),
			Outcome: string(e.Code),
		})
		s.flight.Freeze(j.tenant, "shed", j.traceID)
	}
	if s.traces == nil {
		return
	}
	tr := j.tr
	root := j.trRoot
	if tr == nil {
		tr = trace.New(j.traceID, j.tenant, 8, j.t0)
		root = tr.Add(trace.SpanRequest, trace.NoSpan, 0, 0, 0, 0)
		tr.Add(trace.SpanAdmission, root, 0, j.admitEndNS, 0, 0)
		tr.Add(trace.SpanVerify, root, j.admitEndNS, j.verifyEndNS, 0, 0)
		tr.MarkTail()
	}
	tr.EndAt(root, s.now().Sub(j.t0).Nanoseconds())
	tr.SetErr(string(e.Code))
	s.traces.Put(tr)
	s.noteExemplar(tr.TraceID())
	w.Header().Set("traceparent", trace.Traceparent(tr.TraceID(), true))
}

// noteExemplar keeps the last few retained trace IDs for /statusz.
const maxExemplars = 8

func (s *Server) noteExemplar(id trace.ID) {
	s.exMu.Lock()
	s.exemplars = append(s.exemplars, id.String())
	if len(s.exemplars) > maxExemplars {
		s.exemplars = s.exemplars[len(s.exemplars)-maxExemplars:]
	}
	s.exMu.Unlock()
}

func (s *Server) exemplarTraces() []string {
	s.exMu.Lock()
	defer s.exMu.Unlock()
	return append([]string(nil), s.exemplars...)
}

// handleTrace serves a retained trace document from the LRU.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		errf(CodeNotFound, http.StatusNotFound,
			"tracing disabled; start the server with a trace store").write(w)
		return
	}
	id, ok := trace.ParseID(r.PathValue("id"))
	if !ok {
		errf(CodeBadRequest, http.StatusBadRequest,
			"malformed trace id (want 32 hex digits)").write(w)
		return
	}
	t := s.traces.Get(id)
	if t == nil {
		errf(CodeNotFound, http.StatusNotFound,
			"trace %s not found (evicted, or the run was sampled out)", id).write(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	t.Doc().Encode(w)
}

// handleFlight serves the flight-recorder dumps (an empty document when the
// recorder is disabled — the endpoint shape stays stable either way).
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.Doc().Encode(w)
}

// FlightDoc snapshots the flight recorder (empty when disabled); the daemon's
// drain path writes it next to the telemetry snapshot.
func (s *Server) FlightDoc() *trace.FlightDoc { return s.flight.Doc() }

// handleHealthz: liveness — the process is up and the mux is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// readyzDoc is the typed /readyz body: load balancers key on the status
// code, operators and scripts on the state string.
type readyzDoc struct {
	Ready        bool   `json:"ready"`
	State        string `json:"state"` // "ready", "draining", "degraded-interp-only"
	DegradeLevel int32  `json:"degrade_level"`
}

// handleReadyz: readiness — admitting new guests at full service. Draining
// flips it so load balancers stop routing here before the listener closes;
// so does interp-only degradation: a balancer with healthy peers should route
// around a degraded instance, which keeps serving whatever still arrives.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	d := readyzDoc{Ready: true, State: "ready", DegradeLevel: s.degradeLevel()}
	switch {
	case s.draining.Load():
		d.Ready, d.State = false, "draining"
	case d.DegradeLevel >= degradeInterpOnly:
		d.Ready, d.State = false, "degraded-interp-only"
	}
	if !d.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(d)
}

// statuszTenant is one tenant's row in the /statusz document.
type statuszTenant struct {
	Name       string `json:"name"`
	Submitted  int64  `json:"submitted"`
	Admitted   int64  `json:"admitted"`
	Completed  int64  `json:"completed"`
	Shed       int64  `json:"shed"`
	RateLimits int64  `json:"rate_limited"`
	Faults     int64  `json:"faults"`
	Deadlines  int64  `json:"deadlines"`
}

// statuszDoc is the /statusz JSON document.
type statuszDoc struct {
	Draining       bool  `json:"draining"`
	DegradeLevel   int32 `json:"degrade_level"`
	QueueDepth     int   `json:"queue_depth"`
	QueueHighWater int   `json:"queue_high_water"`
	Sheds          int64 `json:"sheds"`
	InFlight       int64 `json:"inflight"`
	Workers        int   `json:"workers"`
	ActiveShards   int   `json:"active_shards"`
	TableEvictions int64 `json:"table_evictions"`

	// Latency percentiles from the queue-wait and run histograms (power-of-
	// two buckets; estimates are within 2x — see telemetry.Quantile).
	QueueWaitP50US int64 `json:"queue_wait_p50_us"`
	QueueWaitP95US int64 `json:"queue_wait_p95_us"`
	QueueWaitP99US int64 `json:"queue_wait_p99_us"`
	RunP50US       int64 `json:"run_p50_us"`
	RunP95US       int64 `json:"run_p95_us"`
	RunP99US       int64 `json:"run_p99_us"`

	// Tracing state: retained trace count, flight-recorder freezes, and the
	// most recent retained trace IDs (fetch via /v1/trace/{id}).
	TracesStored   int             `json:"traces_stored,omitempty"`
	FlightFreezes  int64           `json:"flight_freezes,omitempty"`
	ExemplarTraces []string        `json:"exemplar_traces,omitempty"`
	Tenants        []statuszTenant `json:"tenants"`
}

// handleStatusz: operator-facing JSON snapshot of admission and ladder state.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	depth, high, sheds := s.queue.stats()
	doc := statuszDoc{
		Draining:       s.draining.Load(),
		DegradeLevel:   s.level.Load(),
		QueueDepth:     depth,
		QueueHighWater: high,
		Sheds:          sheds,
		InFlight:       s.inFlight.Load(),
		Workers:        s.pool.Size(),
		ActiveShards:   s.shards.Tenants(),
		TableEvictions: s.shards.Evictions(),
		QueueWaitP50US: telQueueWait.Quantile(0.50),
		QueueWaitP95US: telQueueWait.Quantile(0.95),
		QueueWaitP99US: telQueueWait.Quantile(0.99),
		RunP50US:       telRunTime.Quantile(0.50),
		RunP95US:       telRunTime.Quantile(0.95),
		RunP99US:       telRunTime.Quantile(0.99),
		TracesStored:   s.traces.Len(),
		FlightFreezes:  s.flight.Freezes(),
		ExemplarTraces: s.exemplarTraces(),
	}
	for _, t := range s.tenants.all() {
		doc.Tenants = append(doc.Tenants, statuszTenant{
			Name:       t.name,
			Submitted:  t.submitted.Load(),
			Admitted:   t.admitted.Load(),
			Completed:  t.completed.Load(),
			Shed:       t.shed.Load(),
			RateLimits: t.rateLimits.Load(),
			Faults:     t.faults.Load(),
			Deadlines:  t.deadlines.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}
