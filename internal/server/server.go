// Package server is netpathd's engine room: a hardened multi-tenant
// translation service over the VM → NET → fragment-cache stack. Guests
// arrive over HTTP, pass the static verifier, wait in a bounded
// per-tenant-fair admission queue, and execute on a resident worker pool
// under per-tenant step/deadline/table budgets. The failure philosophy is
// the paper's "less is more" applied to robustness: every failure mode has
// one typed, bounded response — shed early (503 + Retry-After), preempt
// cooperatively (408), degrade to interpretation under sustained overload,
// and drain cleanly on shutdown. A guest can be slow, hostile, or unlucky;
// the process stays up and the other tenants keep their shares.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"netpath/internal/dynamo"
	"netpath/internal/par"
	"netpath/internal/telemetry"
)

// Degradation ladder levels.
const (
	degradeNormal     = 0 // full NET translation
	degradeInterpOnly = 1 // interpretation only: no profiling, no fragment pressure
)

// Config tunes the server. Zero fields take defaults.
type Config struct {
	// Workers is the resident worker pool width (0 = par.Workers()).
	Workers int
	// QueueDepth bounds total buffered guests; QueueDepthPerTenant bounds
	// one tenant's share of the buffer.
	QueueDepth          int
	QueueDepthPerTenant int
	// MaxTenants bounds the tenant table.
	MaxTenants int
	// RatePerSec and Burst configure the per-tenant token bucket
	// (RatePerSec <= 0 disables rate limiting).
	RatePerSec float64
	Burst      float64
	// Quotas are the per-tenant resource ceilings.
	Quotas Quotas
	// Tables is the global fragment/head/path table budget divided among
	// active tenants; SharedTables grants every tenant the full budget
	// instead (the throughput-over-isolation configuration).
	Tables       dynamo.TableBudget
	SharedTables bool

	// Tier2 turns on background superblock compilation: hot fragments are
	// promoted onto a bounded compile queue shared by all tenants
	// (round-robin, so one tenant's hot loop cannot monopolize it) and
	// executed as fused superblocks once published. Tier2Workers and
	// Tier2Queue size the compile pool (defaults: 1 worker, 64 jobs);
	// Tier2Threshold is the completions-per-fragment promotion bar
	// (default: the dynamo package's).
	Tier2          bool
	Tier2Workers   int
	Tier2Queue     int
	Tier2Threshold int64

	// SnapshotLimit enables the persistent-profile store: completed runs
	// merge their profile into a bounded per-(tenant, program, scheme) store
	// and later runs of the same key warm-start from it. The value bounds
	// the number of distinct stored profiles (FIFO eviction); 0 disables the
	// store entirely (the default — warm-starting trades memory for
	// cold-start latency, and the operator opts in).
	SnapshotLimit int

	// TripSheds sheds within TripWindow trip the ladder to interp-only;
	// CoolOff without a shed recovers it.
	TripSheds  int
	TripWindow time.Duration
	CoolOff    time.Duration

	// Registry receives telemetry (nil = telemetry.Def).
	Registry *telemetry.Registry
	// Logf logs server-side events (nil = log.Printf).
	Logf func(format string, args ...any)
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = par.Workers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepthPerTenant <= 0 {
		c.QueueDepthPerTenant = (c.QueueDepth + 3) / 4
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 256
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.Quotas == (Quotas{}) {
		c.Quotas = DefaultQuotas()
	} else {
		c.Quotas = c.Quotas.withDefaults()
	}
	if c.Tables == (dynamo.TableBudget{}) {
		c.Tables = dynamo.DefaultTableBudget()
	}
	if c.TripSheds <= 0 {
		c.TripSheds = 16
	}
	if c.TripWindow <= 0 {
		c.TripWindow = 5 * time.Second
	}
	if c.CoolOff <= 0 {
		c.CoolOff = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Def
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is a running netpathd instance.
type Server struct {
	cfg     Config
	queue   *queue
	tenants *tenantSet
	shards  *dynamo.ShardSet
	tier2   *dynamo.Tier2Compiler
	snaps   *snapStore // nil when Config.SnapshotLimit == 0
	pool    *par.Resident
	mux     *http.ServeMux
	sink    *telemetry.Sink

	inFlight atomic.Int64
	draining atomic.Bool

	// Degradation ladder state. sheds holds recent shed times (bounded to
	// TripSheds); the ladder trips when TripSheds sheds land inside
	// TripWindow and recovers after CoolOff shed-free.
	ladderMu sync.Mutex
	level    atomic.Int32
	shedTs   []time.Time
	lastShed time.Time

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a server (not yet listening; see Start, or use Handler directly
// in tests via httptest).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newQueue(cfg.QueueDepth, cfg.QueueDepthPerTenant),
		tenants: newTenantSet(cfg.MaxTenants),
		shards:  dynamo.NewShardSet(cfg.Tables, cfg.SharedTables),
		sink:    cfg.Registry.NewSink(),
	}
	if cfg.Tier2 {
		s.tier2 = dynamo.NewTier2Compiler(cfg.Tier2Workers, cfg.Tier2Queue)
		s.shards.SetTier2(s.tier2)
	}
	if cfg.SnapshotLimit > 0 {
		s.snaps = newSnapStore(cfg.SnapshotLimit)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	cfg.Registry.RegisterOn(s.mux)
	s.pool = par.StartResident(cfg.Workers, func() (func(), bool) {
		j, ok := s.queue.dequeue()
		if !ok {
			return nil, false
		}
		return func() { s.runJob(j) }, true
	})
	return s
}

// Handler exposes the full mux (API + health + telemetry) for embedding and
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine, returning the bound
// address (so ":0" callers can discover the port).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains the server: admission closes immediately (new submissions
// get typed 503 draining errors), buffered and in-flight guests run to
// completion, workers retire, the listener closes, and the final telemetry
// snapshot is flushed to w (nil skips the flush). ctx bounds the wait for
// in-flight guests; on expiry the HTTP server is torn down regardless.
func (s *Server) Shutdown(ctx context.Context, w interface{ Write([]byte) (int, error) }) error {
	s.draining.Store(true)
	s.queue.close()

	done := make(chan struct{})
	go func() { s.pool.Wait(); close(done) }()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: drain interrupted: %w", context.Cause(ctx))
	}
	if s.tier2 != nil {
		// After the run workers drain: no mutator is left to observe a
		// late publication, and Close joins the compile workers.
		s.tier2.Close()
	}

	if s.httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.httpSrv.Shutdown(shCtx); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: http shutdown: %w", err)
		}
	}
	if w != nil {
		if err := s.cfg.Registry.WriteJSON(w); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: snapshot flush: %w", err)
		}
	}
	return drainErr
}

func (s *Server) now() time.Time                  { return s.cfg.Now() }
func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }
func (s *Server) degradeLevel() int32             { return s.level.Load() }

// noteShed feeds the degradation ladder: sustained shedding means the
// machine cannot keep up with translation overhead on top of execution, so
// the server demotes itself to interpretation — serving every admitted guest
// slower beats serving none.
func (s *Server) noteShed() {
	now := s.now()
	s.ladderMu.Lock()
	defer s.ladderMu.Unlock()
	s.lastShed = now
	cutoff := now.Add(-s.cfg.TripWindow)
	ts := s.shedTs[:0]
	for _, t := range s.shedTs {
		if t.After(cutoff) {
			ts = append(ts, t)
		}
	}
	s.shedTs = append(ts, now)
	if len(s.shedTs) >= s.cfg.TripSheds && s.level.Load() == degradeNormal {
		s.level.Store(degradeInterpOnly)
		telDegradeLevel.Set(degradeInterpOnly)
		s.logf("degradation ladder tripped: %d sheds in %v; demoting to interpret-only",
			len(s.shedTs), s.cfg.TripWindow)
	}
}

// maybeRecover climbs back to normal after a shed-free cool-off. Called on
// the submission path so recovery needs no background ticker.
func (s *Server) maybeRecover() {
	if s.level.Load() == degradeNormal {
		return
	}
	now := s.now()
	s.ladderMu.Lock()
	defer s.ladderMu.Unlock()
	if s.level.Load() != degradeNormal && now.Sub(s.lastShed) > s.cfg.CoolOff {
		s.level.Store(degradeNormal)
		s.shedTs = s.shedTs[:0]
		telDegradeLevel.Set(degradeNormal)
		s.logf("degradation ladder recovered: %v shed-free; restoring translation", s.cfg.CoolOff)
	}
}

// handleRun is the submission path: decode → tenant/rate gate → resolve
// (parse + quota + verify) → enqueue → wait → respond.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	telSubmits.Inc()
	s.maybeRecover()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Quotas.MaxBodyBytes)
	req, apiErr := decodeRequest(r.Body)
	if apiErr == nil {
		apiErr = req.validate()
	}
	if apiErr != nil {
		telRejected.Inc()
		apiErr.write(w)
		return
	}

	tenant, ok := s.tenants.get(req.Tenant)
	if !ok {
		telRejected.Inc()
		errf(CodeQuota, http.StatusUnprocessableEntity,
			"tenant table full (%d tenants); no new tenants admitted", s.cfg.MaxTenants).write(w)
		return
	}
	tenant.submitted.Add(1)
	telTenants.Set(int64(s.tenants.count()))

	if allowed, wait := tenant.allow(s.cfg.RatePerSec, s.cfg.Burst, s.now()); !allowed {
		tenant.rateLimits.Add(1)
		telRateLimited.Inc()
		e := errf(CodeRateLimited, http.StatusTooManyRequests,
			"tenant %s rate limited; retry after %v", req.Tenant, wait.Round(time.Millisecond))
		e.RetryAfter = int(wait/time.Second) + 1
		e.write(w)
		return
	}

	if apiErr := req.resolve(s.cfg.Quotas); apiErr != nil {
		telRejected.Inc()
		apiErr.write(w)
		return
	}

	j := &job{tenant: req.Tenant, req: req, enqueued: s.now(), done: make(chan struct{})}
	if apiErr := s.queue.enqueue(j); apiErr != nil {
		tenant.shed.Add(1)
		telShed.Inc()
		if apiErr.Code == CodeOverloaded {
			s.noteShed()
		}
		apiErr.write(w)
		return
	}
	tenant.admitted.Add(1)
	telAdmitted.Inc()
	telQueueDepth.Set(int64(s.queue.depth()))

	// Wait for the worker. The job always completes — deadlines preempt
	// runaway guests — so waiting without a select on r.Context() is safe;
	// a vanished client just gets its response written to a dead socket.
	<-j.done
	if j.apiErr != nil {
		switch j.apiErr.Code {
		case CodeDeadline:
			tenant.deadlines.Add(1)
		case CodeGuestFault, CodeStepLimit:
			tenant.faults.Add(1)
		}
		j.apiErr.write(w)
		return
	}
	tenant.completed.Add(1)
	telCompleted.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.resp)
}

// handleHealthz: liveness — the process is up and the mux is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz: readiness — admitting new guests. Draining flips it so load
// balancers stop routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

// statuszTenant is one tenant's row in the /statusz document.
type statuszTenant struct {
	Name       string `json:"name"`
	Submitted  int64  `json:"submitted"`
	Admitted   int64  `json:"admitted"`
	Completed  int64  `json:"completed"`
	Shed       int64  `json:"shed"`
	RateLimits int64  `json:"rate_limited"`
	Faults     int64  `json:"faults"`
	Deadlines  int64  `json:"deadlines"`
}

// statuszDoc is the /statusz JSON document.
type statuszDoc struct {
	Draining       bool            `json:"draining"`
	DegradeLevel   int32           `json:"degrade_level"`
	QueueDepth     int             `json:"queue_depth"`
	QueueHighWater int             `json:"queue_high_water"`
	Sheds          int64           `json:"sheds"`
	InFlight       int64           `json:"inflight"`
	Workers        int             `json:"workers"`
	ActiveShards   int             `json:"active_shards"`
	TableEvictions int64           `json:"table_evictions"`
	Tenants        []statuszTenant `json:"tenants"`
}

// handleStatusz: operator-facing JSON snapshot of admission and ladder state.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	depth, high, sheds := s.queue.stats()
	doc := statuszDoc{
		Draining:       s.draining.Load(),
		DegradeLevel:   s.level.Load(),
		QueueDepth:     depth,
		QueueHighWater: high,
		Sheds:          sheds,
		InFlight:       s.inFlight.Load(),
		Workers:        s.pool.Size(),
		ActiveShards:   s.shards.Tenants(),
		TableEvictions: s.shards.Evictions(),
	}
	for _, t := range s.tenants.all() {
		doc.Tenants = append(doc.Tenants, statuszTenant{
			Name:       t.name,
			Submitted:  t.submitted.Load(),
			Admitted:   t.admitted.Load(),
			Completed:  t.completed.Load(),
			Shed:       t.shed.Load(),
			RateLimits: t.rateLimits.Load(),
			Faults:     t.faults.Load(),
			Deadlines:  t.deadlines.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}
