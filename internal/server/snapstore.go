package server

import (
	"sync"

	"netpath/internal/snapshot"
	"netpath/internal/telemetry"
)

var (
	telSnapStored = telemetry.NewGauge("server_snapshots_resident",
		"profile snapshots resident in the server store")
	telSnapEvicted = telemetry.NewCounter("server_snapshots_evicted_total",
		"profile snapshots evicted from the bounded store (FIFO)")
	telSnapRestored = telemetry.NewCounter("server_snapshots_restored_total",
		"guest runs warm-started from a stored profile")
	telSnapMerged = telemetry.NewCounter("server_snapshots_merged_total",
		"run profiles merged back into the store")
)

// snapKey identifies a stored profile: the tenant, the program image, and
// the prediction scheme its counters were collected under. The tenant is
// part of the key on purpose — profiles are behavioural fingerprints of a
// tenant's workload, so one tenant's profile must never warm (or even be
// observable through timing by) another tenant's runs, even for a
// byte-identical program.
type snapKey struct {
	tenant string
	fp     uint64
	scheme string
}

// snapStore is the server's bounded in-memory profile store. Each completed
// run's profile joins the store under its key (the CRDT merge, so re-runs
// and concurrent workers commute); each admitted run warm-starts from its
// key's entry when one exists. The store is FIFO-bounded by distinct keys:
// a population of tenants × programs cannot grow it without bound, and an
// evicted profile simply means those guests start cold again.
type snapStore struct {
	mu    sync.Mutex
	limit int
	m     map[snapKey]*snapshot.Snapshot
	order []snapKey // insertion order, for FIFO eviction
}

func newSnapStore(limit int) *snapStore {
	return &snapStore{limit: limit, m: make(map[snapKey]*snapshot.Snapshot)}
}

// get returns the stored profile for k, nil if none. The returned snapshot
// is shared and must be treated as read-only (Restore copies before
// clamping).
func (st *snapStore) get(k snapKey) *snapshot.Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[k]
}

// put joins sn into the store under k, evicting the oldest keys when the
// store is over its bound. A merge failure (group mismatch) cannot happen
// for snapshots captured under the same key; it is reported for import
// paths feeding untrusted files.
func (st *snapStore) put(k snapKey, sn *snapshot.Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.m[k]; ok {
		merged, err := snapshot.Merge(cur, sn)
		if err != nil {
			return err
		}
		st.m[k] = merged
		return nil
	}
	st.m[k] = sn
	st.order = append(st.order, k)
	for st.limit > 0 && len(st.order) > st.limit {
		evict := st.order[0]
		st.order = st.order[1:]
		delete(st.m, evict)
		telSnapEvicted.Inc()
	}
	telSnapStored.Set(int64(len(st.m)))
	return nil
}

// export snapshots the whole store as a wire file (insertion order; the
// codec canonicalizes each snapshot's sections on encode).
func (st *snapStore) export() *snapshot.File {
	st.mu.Lock()
	defer st.mu.Unlock()
	f := snapshot.NewFile()
	for _, k := range st.order {
		if sn, ok := st.m[k]; ok {
			f.Snapshots = append(f.Snapshots, sn)
		}
	}
	return f
}

// importFile joins every snapshot of a decoded (already validated) file
// into the store, returning how many were accepted.
func (st *snapStore) importFile(f *snapshot.File) (int, error) {
	n := 0
	for _, sn := range f.Snapshots {
		k := snapKey{tenant: sn.Tenant, fp: sn.Fingerprint, scheme: sn.Scheme}
		if err := st.put(k, sn); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ExportSnapshots returns the server's resident profile store as a wire
// file (empty when the store is disabled); netpathd persists it on drain.
func (s *Server) ExportSnapshots() *snapshot.File {
	if s.snaps == nil {
		return snapshot.NewFile()
	}
	return s.snaps.export()
}

// ImportSnapshots seeds the profile store from a wire file (a previous
// process's ExportSnapshots, possibly fleet-merged). Returns the number of
// profiles accepted; an error mid-file keeps the profiles already merged.
// No-op when the store is disabled.
func (s *Server) ImportSnapshots(f *snapshot.File) (int, error) {
	if s.snaps == nil {
		return 0, nil
	}
	return s.snaps.importFile(f)
}
