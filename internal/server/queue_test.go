package server

import (
	"testing"
	"time"
)

func mkJob(tenant string) *job {
	return &job{tenant: tenant, done: make(chan struct{})}
}

// TestQueueRoundRobin: with one tenant flooding and another trickling,
// dequeue alternates tenants instead of serving the flood FIFO.
func TestQueueRoundRobin(t *testing.T) {
	q := newQueue(16, 8)
	for i := 0; i < 3; i++ {
		if err := q.enqueue(mkJob("flood")); err != nil {
			t.Fatalf("enqueue flood %d: %+v", i, err)
		}
	}
	if err := q.enqueue(mkJob("trickle")); err != nil {
		t.Fatalf("enqueue trickle: %+v", err)
	}
	var order []string
	for i := 0; i < 4; i++ {
		j, ok := q.dequeue()
		if !ok {
			t.Fatal("queue reported drained with jobs pending")
		}
		order = append(order, j.tenant)
	}
	want := []string{"flood", "trickle", "flood", "flood"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// TestQueueCaps: the global and per-tenant caps shed with typed overload
// errors carrying Retry-After.
func TestQueueCaps(t *testing.T) {
	q := newQueue(4, 2)
	if err := q.enqueue(mkJob("a")); err != nil {
		t.Fatalf("first: %+v", err)
	}
	if err := q.enqueue(mkJob("a")); err != nil {
		t.Fatalf("second: %+v", err)
	}
	err := q.enqueue(mkJob("a"))
	if err == nil || err.Code != CodeOverloaded || err.RetryAfter == 0 || err.status != 503 {
		t.Fatalf("per-tenant cap: %+v, want overloaded 503 with Retry-After", err)
	}
	if err := q.enqueue(mkJob("b")); err != nil {
		t.Fatalf("other tenant blocked by a's share: %+v", err)
	}
	if err := q.enqueue(mkJob("c")); err != nil {
		t.Fatalf("fourth global: %+v", err)
	}
	err = q.enqueue(mkJob("d"))
	if err == nil || err.Code != CodeOverloaded {
		t.Fatalf("global cap: %+v, want overloaded", err)
	}
	if _, _, sheds := q.stats(); sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}
}

// TestQueueCloseDrains: close stops admission with the draining error but
// buffered jobs still come out; then dequeue reports done.
func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(8, 8)
	q.enqueue(mkJob("a"))
	q.enqueue(mkJob("b"))
	q.close()
	q.close() // idempotent
	if err := q.enqueue(mkJob("c")); err == nil || err.Code != CodeDraining {
		t.Fatalf("enqueue after close: %+v, want draining", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := q.dequeue(); !ok {
			t.Fatalf("buffered job %d lost in drain", i)
		}
	}
	if _, ok := q.dequeue(); ok {
		t.Fatal("dequeue returned a job from a drained queue")
	}
}

// TestTokenBucket: burst, denial with a sane wait hint, refill.
func TestTokenBucket(t *testing.T) {
	ts := &tenantState{name: "x"}
	now := time.Unix(500, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := ts.allow(2, 3, now); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, wait := ts.allow(2, 3, now)
	if ok {
		t.Fatal("4th token granted from an empty bucket")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait hint %v, want (0, 500ms]-ish for rate 2/s", wait)
	}
	if ok, _ := ts.allow(2, 3, now.Add(time.Second)); !ok {
		t.Fatal("token denied after a full refill interval")
	}
	// Disabled limiter always admits.
	for i := 0; i < 100; i++ {
		if ok, _ := ts.allow(0, 0, now); !ok {
			t.Fatal("disabled limiter denied")
		}
	}
}
