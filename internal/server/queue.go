package server

import (
	"net/http"
	"sync"
	"time"

	"netpath/internal/trace"
)

// job is one admitted guest execution travelling from the HTTP handler
// through the admission queue to a worker and back.
type job struct {
	tenant   string
	req      *runRequest
	enqueued time.Time

	// Trace plumbing, set at admission (see handleRun). t0 anchors every
	// span offset; tr is nil for sampled-out runs (the zero-cost state). The
	// admission/verify offsets are kept even when unsampled so an errored
	// run can be tail-promoted into a skeleton trace after the fact.
	t0          time.Time
	traceID     trace.ID
	tr          *trace.Trace
	trRoot      int32
	trExec      int32
	admitEndNS  int64
	verifyEndNS int64
	retained    bool // trace kept in the store (worker → handler, via done)

	// Filled by the worker; done is closed when exactly one of resp/apiErr
	// is set.
	resp   *runResponse
	apiErr *apiError
	done   chan struct{}
}

// queue is the bounded, per-tenant-fair admission queue. Each tenant gets
// its own FIFO; workers dequeue round-robin across tenants with pending
// work, so one tenant flooding its share cannot starve another's trickle —
// the queueing analogue of the per-tenant table shards. Two caps gate
// enqueue: a global depth (total buffered guests) and a per-tenant depth
// (one tenant's share of the buffer). Both rejections are load sheds.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond

	capTotal  int
	capTenant int

	pending map[string][]*job // per-tenant FIFO
	ring    []string          // tenants with pending work, round-robin order
	next    int               // ring cursor
	size    int

	closed bool // no further enqueues; dequeues drain, then report done

	// High-water mark and shed count, for /statusz and the ladder.
	highWater int
	sheds     int64
}

func newQueue(capTotal, capTenant int) *queue {
	q := &queue{
		capTotal:  capTotal,
		capTenant: capTenant,
		pending:   make(map[string][]*job),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// enqueue admits j or rejects it with a typed shed/drain error.
func (q *queue) enqueue(j *job) *apiError {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return &apiError{Code: CodeDraining, Message: "server is draining; no new guests admitted",
			RetryAfter: 5, status: http.StatusServiceUnavailable}
	}
	if q.size >= q.capTotal {
		q.sheds++
		return &apiError{Code: CodeOverloaded, Message: "admission queue full; load shed",
			RetryAfter: 1, status: http.StatusServiceUnavailable}
	}
	tq := q.pending[j.tenant]
	if len(tq) >= q.capTenant {
		q.sheds++
		return &apiError{Code: CodeOverloaded, Message: "tenant queue share full; load shed",
			RetryAfter: 1, status: http.StatusServiceUnavailable}
	}
	if len(tq) == 0 {
		q.ring = append(q.ring, j.tenant)
	}
	q.pending[j.tenant] = append(tq, j)
	q.size++
	if q.size > q.highWater {
		q.highWater = q.size
	}
	q.cond.Signal()
	return nil
}

// dequeue blocks until a job is available (rotating fairly across tenants)
// or the queue is closed and drained, in which case ok is false and the
// calling worker retires.
func (q *queue) dequeue() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.size > 0 {
			if q.next >= len(q.ring) {
				q.next = 0
			}
			tenant := q.ring[q.next]
			tq := q.pending[tenant]
			j = tq[0]
			tq[0] = nil // do not pin completed jobs
			tq = tq[1:]
			if len(tq) == 0 {
				delete(q.pending, tenant)
				q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
				// next now points at the following tenant; no advance.
			} else {
				q.pending[tenant] = tq
				q.next++
			}
			q.size--
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops admission; buffered jobs still drain. Idempotent.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the buffered job count.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// stats returns depth, lifetime high water, and lifetime sheds.
func (q *queue) stats() (depth, highWater int, sheds int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size, q.highWater, q.sheds
}
