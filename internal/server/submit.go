package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"netpath/internal/asm"
	"netpath/internal/cfg"
	"netpath/internal/dynamo"
	"netpath/internal/prog"
	"netpath/internal/workload"
)

// runRequest is the POST /v1/run submission envelope. Exactly one of Asm,
// Prog, or Bench names the guest program; everything else tunes the run
// within the tenant's quotas.
type runRequest struct {
	// Tenant is the submitting tenant's identity (required; admission
	// fairness, rate limits, and table shards key on it).
	Tenant string `json:"tenant"`
	// Name labels the run in results (defaults per program form).
	Name string `json:"name,omitempty"`

	// Asm is internal/asm assembly text.
	Asm string `json:"asm,omitempty"`
	// Prog is an encoded netpath-prog/v1 program document.
	Prog json.RawMessage `json:"prog,omitempty"`
	// Bench names a built-in workload benchmark; Scale sizes it.
	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`

	// Scheme selects the prediction scheme: "net" (default), "pp", "static".
	Scheme string `json:"scheme,omitempty"`
	// Tau overrides the hot threshold (0 = scheme default).
	Tau int64 `json:"tau,omitempty"`
	// MaxSteps caps machine steps (0 = tenant default; capped by quota).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// DeadlineMS caps wall-clock run time in milliseconds (0 = tenant
	// default; capped by quota).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// ChaosSeed, with any nonzero rate below, runs the guest under a seeded
	// fault injector — the soak harness's knob, also open to tenants who
	// want to rehearse their guests against adversity.
	ChaosSeed     int64   `json:"chaos_seed,omitempty"`
	ChaosTrapPerM float64 `json:"chaos_trap_per_m,omitempty"`
	ChaosSoftPerM float64 `json:"chaos_soft_per_m,omitempty"`

	// resolved by decode/resolve, not wire fields
	program *prog.Program
	scheme  dynamo.Scheme
}

// runResponse is the successful POST /v1/run reply.
type runResponse struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	Scheme string `json:"scheme"`
	// Mode is "dynamo" or "interp"; Degraded is true when the ladder forced
	// interp-only on a guest that asked for translation.
	Mode     string `json:"mode"`
	Degraded bool   `json:"degraded,omitempty"`

	Steps     int64   `json:"steps"`
	Fragments int     `json:"fragments,omitempty"`
	Flushes   int     `json:"flushes,omitempty"`
	SpeedupPC float64 `json:"speedup_pct,omitempty"`
	CachedPC  float64 `json:"cached_pct,omitempty"`
	BailedOut bool    `json:"bailed_out,omitempty"`
	// Deopts reports published tier-2 superblocks torn down during the run.
	Deopts int64 `json:"tier2_deopts,omitempty"`
	// Restored reports fragments pre-installed from the tenant's stored
	// profile before the first guest instruction (0 = cold start).
	Restored int     `json:"restored_fragments,omitempty"`
	Regs     []int64 `json:"regs"`

	QueueNS int64 `json:"queue_ns"`
	RunNS   int64 `json:"run_ns"`
	// TraceID names the retained request trace, present when the run was
	// head-sampled or tail-promoted; fetch it via GET /v1/trace/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// maxDecodeDepth bounds nothing today (the envelope is flat) but
// MaxBytesReader bounds everything: decodeRequest must be called with a body
// already wrapped by http.MaxBytesReader.
func decodeRequest(body io.Reader) (*runRequest, *apiError) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req runRequest
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, errf(CodeQuota, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
		}
		return nil, errf(CodeBadRequest, http.StatusBadRequest, "malformed JSON: %v", err)
	}
	// Trailing garbage after the envelope is a malformed request, not noise.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errf(CodeBadRequest, http.StatusBadRequest, "trailing data after request object")
	}
	return &req, nil
}

// validate checks the envelope shape (cheap, before any admission cost).
func (r *runRequest) validate() *apiError {
	if r.Tenant == "" {
		return errf(CodeBadRequest, http.StatusBadRequest, "missing tenant")
	}
	if len(r.Tenant) > 64 || strings.ContainsAny(r.Tenant, " \t\n\r\"") {
		return errf(CodeBadRequest, http.StatusBadRequest, "invalid tenant name")
	}
	forms := 0
	if r.Asm != "" {
		forms++
	}
	if len(r.Prog) > 0 {
		forms++
	}
	if r.Bench != "" {
		forms++
	}
	if forms == 0 {
		return errf(CodeBadRequest, http.StatusBadRequest,
			"no program: provide exactly one of asm, prog, bench")
	}
	if forms > 1 {
		return errf(CodeBadRequest, http.StatusBadRequest,
			"ambiguous program: provide exactly one of asm, prog, bench")
	}
	if r.MaxSteps < 0 || r.DeadlineMS < 0 || r.Tau < 0 {
		return errf(CodeBadRequest, http.StatusBadRequest,
			"max_steps, deadline_ms, and tau must be non-negative")
	}
	if r.Scale < 0 || r.Scale > 1 {
		return errf(CodeBadRequest, http.StatusBadRequest, "scale must be in (0, 1]")
	}
	if r.ChaosTrapPerM < 0 || r.ChaosSoftPerM < 0 ||
		r.ChaosTrapPerM > 1e6 || r.ChaosSoftPerM > 1e6 {
		return errf(CodeBadRequest, http.StatusBadRequest, "chaos rates must be in [0, 1e6] per million steps")
	}
	switch r.Scheme {
	case "", "net", "pp", "pathprofile", "static":
	default:
		return errf(CodeBadRequest, http.StatusBadRequest,
			"unknown scheme %q (want net, pp, or static)", r.Scheme)
	}
	return nil
}

// resolve builds the guest program, enforces size quotas, and gates it
// through the static verifier. This is the expensive pre-admission stage:
// a program the verifier refuses never occupies a queue slot.
func (r *runRequest) resolve(q Quotas) *apiError {
	var p *prog.Program
	switch {
	case r.Asm != "":
		name := r.Name
		if name == "" {
			name = "asm"
		}
		var err error
		p, err = asm.Parse(name, r.Asm)
		if err != nil {
			return errf(CodeParse, http.StatusBadRequest, "assemble: %v", err)
		}
	case len(r.Prog) > 0:
		var err error
		p, err = prog.DecodeJSON(r.Prog)
		if err != nil {
			return errf(CodeParse, http.StatusBadRequest, "decode prog: %v", err)
		}
	default:
		b, err := workload.ByName(r.Bench)
		if err != nil {
			return errf(CodeBadRequest, http.StatusBadRequest, "%v", err)
		}
		scale := r.Scale
		if scale == 0 {
			scale = 0.01
		}
		p, err = b.Build(scale)
		if err != nil {
			return errf(CodeInternal, http.StatusInternalServerError, "build benchmark: %v", err)
		}
	}
	if len(p.Instrs) > q.MaxInstrs {
		return errf(CodeQuota, http.StatusUnprocessableEntity,
			"program has %d instructions; tenant quota is %d", len(p.Instrs), q.MaxInstrs)
	}
	if p.MemSize > q.MaxMemWords {
		return errf(CodeQuota, http.StatusUnprocessableEntity,
			"program wants %d memory words; tenant quota is %d", p.MemSize, q.MaxMemWords)
	}
	if r.MaxSteps > q.MaxSteps {
		return errf(CodeQuota, http.StatusUnprocessableEntity,
			"max_steps %d exceeds tenant quota %d", r.MaxSteps, q.MaxSteps)
	}
	if time.Duration(r.DeadlineMS)*time.Millisecond > q.MaxDeadline {
		return errf(CodeQuota, http.StatusUnprocessableEntity,
			"deadline_ms %d exceeds tenant quota %dms", r.DeadlineMS, q.MaxDeadline.Milliseconds())
	}
	// The same verifier gates here as in dynamo.New's verify gate; failing
	// fast keeps hostile programs out of the queue entirely.
	if err := cfg.VerifyProgram(p); err != nil {
		return errf(CodeVerify, http.StatusUnprocessableEntity, "verifier rejected program: %v", err)
	}
	if r.Name == "" {
		r.Name = p.Name
	}
	switch r.Scheme {
	case "pp", "pathprofile":
		r.scheme = dynamo.SchemePathProfile
	case "static":
		r.scheme = dynamo.SchemeStatic
	default:
		r.scheme = dynamo.SchemeNET
	}
	r.program = p
	return nil
}

// budgets returns the effective step and wall-clock budgets under q.
func (r *runRequest) budgets(q Quotas) (steps int64, deadline time.Duration) {
	steps = r.MaxSteps
	if steps == 0 {
		steps = q.DefaultSteps
	}
	deadline = time.Duration(r.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = q.DefaultDeadline
	}
	return steps, deadline
}
