// Package balllarus implements Ball–Larus efficient path profiling
// ("Efficient Path Profiling", MICRO-29, 1996), the offline scheme the paper
// derives path-profile-based prediction from (Section 2).
//
// The algorithm assigns each acyclic entry→exit path of a function a unique
// number in [0, NumPaths) such that summing edge values along the path
// yields its number. Back edges are removed and replaced by pseudo edges
// Entry→head and tail→Exit, so each loop iteration is one counted path.
// A spanning tree then pushes the instrumentation onto the chords (non-tree
// edges) only — the "minimal low-cost set of edges" the paper refers to.
package balllarus

import (
	"fmt"
	"sort"

	"netpath/internal/cfg"
)

// MaxPaths bounds the path count per function; beyond it the static
// numbering is rejected (the exponential blowup the paper warns about).
const MaxPaths = int64(1) << 40

// EdgeID indexes the DAG edge list of a Numbering.
type EdgeID int

// DAGEdge is one edge of the acyclic path-numbering graph.
type DAGEdge struct {
	From, To cfg.Node
	// Pseudo marks Entry→loophead / looptail→Exit replacement edges (and
	// the Exit→Entry tree-closing edge).
	Pseudo bool
	// Val is the Ball–Larus edge value: path numbers are sums of Val along
	// DAG paths.
	Val int64
	// Tree marks spanning-tree membership; instrumentation goes on chords
	// (Tree == false).
	Tree bool
	// Inc is the chord increment: summing Inc over the chords of a DAG path
	// also yields the path number. Zero for tree edges.
	Inc int64
}

// Numbering is the static Ball–Larus analysis result for one function.
type Numbering struct {
	G *cfg.Graph

	// NumPaths is the number of distinct acyclic paths.
	NumPaths int64
	// Edges lists the DAG edges; EdgeIDs index it.
	Edges []DAGEdge

	// byPair resolves an executed CFG edge to its DAG edge.
	byPair map[[2]cfg.Node]EdgeID
	// backEdge maps an executed back edge to its pseudo replacement pair:
	// tail→Exit and Entry→head.
	backEdge map[[2]cfg.Node][2]EdgeID
}

// New computes the Ball–Larus numbering for g. It fails on functions with
// indirect jumps (no static CFG), irreducible or parallel-edge graphs, and
// path counts beyond MaxPaths.
func New(g *cfg.Graph) (*Numbering, error) {
	if g.HasIndirect {
		return nil, fmt.Errorf("balllarus: function %q has indirect jumps", g.Prog.Funcs[g.Func].Name)
	}
	n := &Numbering{G: g, byPair: map[[2]cfg.Node]EdgeID{}, backEdge: map[[2]cfg.Node][2]EdgeID{}}

	isBack := map[[2]cfg.Node]bool{}
	for _, e := range g.BackEdges() {
		isBack[[2]cfg.Node{e.From, e.To}] = true
	}

	addEdge := func(from, to cfg.Node, pseudo bool) EdgeID {
		id := EdgeID(len(n.Edges))
		n.Edges = append(n.Edges, DAGEdge{From: from, To: to, Pseudo: pseudo})
		return id
	}

	// Real (forward) edges.
	for _, e := range g.Edges() {
		if isBack[[2]cfg.Node{e.From, e.To}] {
			continue
		}
		key := [2]cfg.Node{e.From, e.To}
		if _, dup := n.byPair[key]; dup {
			return nil, fmt.Errorf("balllarus: parallel edge %v", e)
		}
		n.byPair[key] = addEdge(e.From, e.To, false)
	}
	// Pseudo edges for back edges (dedup by endpoint).
	toExit := map[cfg.Node]EdgeID{}
	fromEntry := map[cfg.Node]EdgeID{}
	for _, e := range g.BackEdges() {
		te, ok := toExit[e.From]
		if !ok {
			te = addEdge(e.From, cfg.Exit, true)
			toExit[e.From] = te
		}
		fe, ok := fromEntry[e.To]
		if !ok {
			fe = addEdge(cfg.Entry, e.To, true)
			fromEntry[e.To] = fe
		}
		n.backEdge[[2]cfg.Node{e.From, e.To}] = [2]EdgeID{te, fe}
	}

	if err := n.assignValues(); err != nil {
		return nil, err
	}
	n.spanningTree()
	n.chordIncrements()
	return n, nil
}

// assignValues topologically sorts the DAG and computes NumPaths and Val.
func (n *Numbering) assignValues() error {
	nn := n.G.NumNodes()
	succs := make([][]EdgeID, nn)
	indeg := make([]int, nn)
	for id, e := range n.Edges {
		succs[e.From] = append(succs[e.From], EdgeID(id))
		indeg[e.To]++
	}
	// Kahn's algorithm; a leftover cycle means irreducible control flow.
	var queue []cfg.Node
	for u := 0; u < nn; u++ {
		if indeg[u] == 0 {
			queue = append(queue, cfg.Node(u))
		}
	}
	var topo []cfg.Node
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		topo = append(topo, u)
		for _, id := range succs[u] {
			v := n.Edges[id].To
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(topo) != nn {
		return fmt.Errorf("balllarus: irreducible control flow (cycle after back-edge removal)")
	}

	np := make([]int64, nn)
	np[cfg.Exit] = 1
	for i := len(topo) - 1; i >= 0; i-- {
		u := topo[i]
		if u == cfg.Exit {
			continue
		}
		var sum int64
		for _, id := range succs[u] {
			n.Edges[id].Val = sum
			sum += np[n.Edges[id].To]
			if sum > MaxPaths {
				return fmt.Errorf("balllarus: more than %d paths", MaxPaths)
			}
		}
		np[u] = sum
	}
	n.NumPaths = np[cfg.Entry]
	return nil
}

// spanningTree marks a spanning tree of the DAG edges plus a virtual
// Exit→Entry closing edge (kept implicit: the tree is rooted at Entry and
// the potential of Exit is pinned to zero by construction below).
func (n *Numbering) spanningTree() {
	// Union-find.
	parent := make([]int, n.G.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
		return true
	}
	// Force the virtual Exit—Entry edge into the tree first so that Exit
	// and Entry share a component with potential difference 0.
	union(int(cfg.Exit), int(cfg.Entry))
	// Deterministic greedy tree over the remaining edges.
	ids := make([]EdgeID, len(n.Edges))
	for i := range ids {
		ids[i] = EdgeID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := &n.Edges[id]
		if union(int(e.From), int(e.To)) {
			e.Tree = true
		}
	}
}

// chordIncrements computes pot() over the tree and Inc for every chord:
// Inc(u→v) = Val(u→v) + pot(u) − pot(v). Summing Inc over the chords of any
// entry→exit DAG path equals the path number (pot(Exit) == pot(Entry) == 0
// because the virtual closing edge with value 0 is in the tree).
func (n *Numbering) chordIncrements() {
	nn := n.G.NumNodes()
	type adj struct {
		to  cfg.Node
		val int64 // signed: +Val traversing edge forward, −Val backward
	}
	tree := make([][]adj, nn)
	for _, e := range n.Edges {
		if !e.Tree {
			continue
		}
		tree[e.From] = append(tree[e.From], adj{to: e.To, val: e.Val})
		tree[e.To] = append(tree[e.To], adj{to: e.From, val: -e.Val})
	}
	pot := make([]int64, nn)
	visited := make([]bool, nn)
	// Entry and Exit are tree-connected with difference 0 by the virtual
	// edge: seed both.
	stack := []cfg.Node{cfg.Entry, cfg.Exit}
	visited[cfg.Entry], visited[cfg.Exit] = true, true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range tree[u] {
			if visited[a.to] {
				continue
			}
			visited[a.to] = true
			pot[a.to] = pot[u] + a.val
			stack = append(stack, a.to)
		}
	}
	for i := range n.Edges {
		e := &n.Edges[i]
		if e.Tree {
			e.Inc = 0
		} else {
			e.Inc = e.Val + pot[e.From] - pot[e.To]
		}
	}
}

// LookupEdge resolves an executed forward CFG edge to its DAG edge ID.
func (n *Numbering) LookupEdge(from, to cfg.Node) (EdgeID, bool) {
	id, ok := n.byPair[[2]cfg.Node{from, to}]
	return id, ok
}

// LookupBackEdge resolves an executed back edge to its (tail→Exit,
// Entry→head) pseudo edge pair.
func (n *Numbering) LookupBackEdge(from, to cfg.Node) (toExit, fromEntry EdgeID, ok bool) {
	p, ok := n.backEdge[[2]cfg.Node{from, to}]
	return p[0], p[1], ok
}

// Chords returns the number of instrumented edges (non-tree DAG edges) —
// the runtime instrumentation points of the optimized scheme.
func (n *Numbering) Chords() int {
	c := 0
	for _, e := range n.Edges {
		if !e.Tree {
			c++
		}
	}
	return c
}

// NumEdges returns the total DAG edge count (the naive scheme instruments
// all of them).
func (n *Numbering) NumEdges() int { return len(n.Edges) }
