package balllarus

import (
	"reflect"
	"testing"

	"netpath/internal/cfg"
	"netpath/internal/isa"
	"netpath/internal/prog"
)

// diamondLoop: a loop with an even/odd diamond body, n iterations.
func diamondLoop(n int64) *prog.Program {
	b := prog.NewBuilder("diamond")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.RemI(3, 0, 2)
	m.BrI(isa.Eq, 3, 0, "even")
	m.AddI(1, 1, 1)
	m.Jmp("join")
	m.Label("even")
	m.AddI(2, 2, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Halt()
	return b.MustBuild()
}

// nestedCalls: outer loop calls a helper containing its own diamond.
func nestedCalls(n int64) *prog.Program {
	b := prog.NewBuilder("nested")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.Call("helper")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Halt()
	h := b.Func("helper")
	h.RemI(3, 0, 3)
	h.BrI(isa.Eq, 3, 0, "div3")
	h.AddI(1, 1, 1)
	h.Ret()
	h.Label("div3")
	h.AddI(2, 2, 1)
	h.Ret()
	return b.MustBuild()
}

func TestNumPathsDiamond(t *testing.T) {
	p := diamondLoop(10)
	g, err := cfg.Build(p, 0)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	num, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Prefixes {real entry, pseudo entry} × arms {even, odd} × suffixes
	// {halt-exit, pseudo exit} = 8 acyclic paths.
	if num.NumPaths != 8 {
		t.Errorf("NumPaths = %d, want 8", num.NumPaths)
	}
	if num.Chords() >= num.NumEdges() {
		t.Errorf("chords %d must be < edges %d", num.Chords(), num.NumEdges())
	}
}

func TestEdgeValuesGiveUniqueNumbers(t *testing.T) {
	// Enumerate all DAG paths by DFS summing Val; numbers must be a
	// permutation of [0, NumPaths).
	p := diamondLoop(10)
	g, _ := cfg.Build(p, 0)
	num, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	succs := map[cfg.Node][]DAGEdge{}
	for _, e := range num.Edges {
		succs[e.From] = append(succs[e.From], e)
	}
	seen := map[int64]bool{}
	var dfs func(u cfg.Node, sumVal, sumInc int64)
	dfs = func(u cfg.Node, sumVal, sumInc int64) {
		if u == cfg.Exit {
			if sumVal != sumInc {
				t.Fatalf("path %d: chord-increment sum %d differs", sumVal, sumInc)
			}
			if seen[sumVal] {
				t.Fatalf("duplicate path number %d", sumVal)
			}
			seen[sumVal] = true
			return
		}
		for _, e := range succs[u] {
			inc := int64(0)
			if !e.Tree {
				inc = e.Inc
			}
			dfs(e.To, sumVal+e.Val, sumInc+inc)
		}
	}
	dfs(cfg.Entry, 0, 0)
	if int64(len(seen)) != num.NumPaths {
		t.Fatalf("enumerated %d paths, want %d", len(seen), num.NumPaths)
	}
	for i := int64(0); i < num.NumPaths; i++ {
		if !seen[i] {
			t.Errorf("path number %d never produced", i)
		}
	}
}

func TestProfileCountsDiamond(t *testing.T) {
	rt, err := Profile(diamondLoop(10), false, 0)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if got := rt.TotalCount(0); got != 10 {
		t.Errorf("total paths = %d, want 10 (one per iteration)", got)
	}
	// 5 even iterations and 5 odd iterations, split across entry/middle/exit
	// path variants. Decode each counted path and tally arms.
	var even, odd int64
	for num, c := range rt.Counts[0] {
		nodes, err := rt.DecodePath(0, num)
		if err != nil {
			t.Fatalf("DecodePath(%d): %v", num, err)
		}
		// The even arm contains the block with the "even" label; identify by
		// checking the decoded blocks' instructions for AddI r2.
		isEven := false
		for _, nd := range nodes {
			bi := rt.graphs[0].BlockOf[nd]
			blk := rt.Prog.Blocks[bi]
			for a := blk.Start; a < blk.End; a++ {
				in := rt.Prog.Instrs[a]
				if in.Op == isa.AddI && in.A == 2 {
					isEven = true
				}
			}
		}
		if isEven {
			even += c
		} else {
			odd += c
		}
	}
	if even != 5 || odd != 5 {
		t.Errorf("even/odd = %d/%d, want 5/5", even, odd)
	}
}

func TestOptimizedMatchesNaive(t *testing.T) {
	progs := []*prog.Program{diamondLoop(25), nestedCalls(30)}
	for _, p := range progs {
		naive, err := Profile(p, false, 0)
		if err != nil {
			t.Fatalf("%s naive: %v", p.Name, err)
		}
		opt, err := Profile(p, true, 0)
		if err != nil {
			t.Fatalf("%s optimized: %v", p.Name, err)
		}
		for fi := range p.Funcs {
			if naive.Counts[fi] == nil {
				continue
			}
			if !reflect.DeepEqual(naive.Counts[fi], opt.Counts[fi]) {
				t.Errorf("%s func %d: naive %v != optimized %v", p.Name, fi, naive.Counts[fi], opt.Counts[fi])
			}
		}
		if opt.RegisterOps >= naive.RegisterOps {
			t.Errorf("%s: optimized register ops %d, want < naive %d", p.Name, opt.RegisterOps, naive.RegisterOps)
		}
		if opt.CountOps != naive.CountOps {
			t.Errorf("%s: count ops differ: %d vs %d", p.Name, opt.CountOps, naive.CountOps)
		}
	}
}

func TestCalleeProfiledSeparately(t *testing.T) {
	rt, err := Profile(nestedCalls(30), false, 0)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	hi := -1
	for fi, f := range rt.Prog.Funcs {
		if f.Name == "helper" {
			hi = fi
		}
	}
	if got := rt.TotalCount(hi); got != 30 {
		t.Errorf("helper path executions = %d, want 30", got)
	}
	// Two distinct helper paths (div3 or not).
	if got := len(rt.Counts[hi]); got != 2 {
		t.Errorf("helper distinct paths = %d, want 2", got)
	}
	// main: one path per iteration.
	if got := rt.TotalCount(0); got != 30 {
		t.Errorf("main path executions = %d, want 30", got)
	}
}

func TestIndirectRejected(t *testing.T) {
	b := prog.NewBuilder("ind")
	b.SetMemSize(8)
	m := b.Func("main")
	m.Load(1, 0, 4)
	m.JmpInd(1)
	m.Label("a")
	m.Halt()
	b.SetMemLabel(4, "a")
	p := b.MustBuild()
	g, _ := cfg.Build(p, 0)
	if _, err := New(g); err == nil {
		t.Error("New must reject functions with indirect jumps")
	}
	// The runtime still runs, skipping the function.
	rt, err := Profile(p, false, 0)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if rt.Numberings[0] != nil {
		t.Error("unprofilable function must have nil numbering")
	}
}

func TestParallelEdgeRejected(t *testing.T) {
	b := prog.NewBuilder("par")
	b.SetMemSize(4)
	m := b.Func("main")
	m.BrI(isa.Eq, 0, 0, "next")
	m.Label("next")
	m.Halt()
	p := b.MustBuild()
	g, _ := cfg.Build(p, 0)
	if _, err := New(g); err == nil {
		t.Error("New must reject parallel edges")
	}
}

func TestDecodePathErrors(t *testing.T) {
	rt, err := Profile(diamondLoop(4), false, 0)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if _, err := rt.DecodePath(0, -1); err == nil {
		t.Error("negative path number must fail")
	}
	if _, err := rt.DecodePath(0, rt.Numberings[0].NumPaths); err == nil {
		t.Error("out-of-range path number must fail")
	}
	// All valid numbers decode.
	for i := int64(0); i < rt.Numberings[0].NumPaths; i++ {
		if _, err := rt.DecodePath(0, i); err != nil {
			t.Errorf("DecodePath(%d): %v", i, err)
		}
	}
}
