package balllarus

import (
	"reflect"
	"testing"

	"netpath/internal/randprog"
)

// TestRandomProgramsNaiveVsOptimized cross-validates the two Ball-Larus
// instrumentation placements on random programs: chord instrumentation
// (spanning-tree increments) must produce exactly the counts of naive
// per-edge instrumentation, with strictly fewer register operations.
func TestRandomProgramsNaiveVsOptimized(t *testing.T) {
	const seeds = 30
	validated := 0
	for seed := int64(0); seed < seeds; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		naive, err := Profile(p, false, 20_000_000)
		if err != nil {
			t.Fatalf("seed %d naive: %v", seed, err)
		}
		opt, err := Profile(p, true, 20_000_000)
		if err != nil {
			t.Fatalf("seed %d optimized: %v", seed, err)
		}
		for fi := range p.Funcs {
			if naive.Counts[fi] == nil {
				continue // function with indirect jumps: not numbered
			}
			validated++
			if !reflect.DeepEqual(naive.Counts[fi], opt.Counts[fi]) {
				t.Errorf("seed %d func %q: counts differ\nnaive: %v\nopt:   %v",
					seed, p.Funcs[fi].Name, naive.Counts[fi], opt.Counts[fi])
			}
		}
		if opt.RegisterOps > naive.RegisterOps {
			t.Errorf("seed %d: chord placement used more register ops (%d > %d)",
				seed, opt.RegisterOps, naive.RegisterOps)
		}
	}
	if validated < 20 {
		t.Errorf("only %d numbered functions across %d seeds; generator too indirect-heavy", validated, seeds)
	}
}

// TestRandomProgramsDecodeRoundTrip checks that every counted path number
// decodes to a valid Entry→Exit node sequence.
func TestRandomProgramsDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		rt, err := Profile(p, true, 20_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for fi := range p.Funcs {
			for num := range rt.Counts[fi] {
				if _, err := rt.DecodePath(fi, num); err != nil {
					t.Errorf("seed %d func %d path %d: decode failed: %v", seed, fi, num, err)
				}
			}
		}
	}
}
