package balllarus

import (
	"fmt"
	"sort"

	"netpath/internal/cfg"
	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// Runtime executes Ball–Larus path profiling over a live VM event stream,
// maintaining one instrumentation frame per active procedure invocation.
//
// Two modes exercise the two instrumentation strategies of the original
// algorithm:
//
//   - naive: every DAG edge updates the path register (r += Val(e));
//   - optimized: only chords update it (r += Inc(e)), the spanning-tree
//     placement.
//
// Both must produce identical path counts; the test suite verifies this,
// and the Ops counters expose the instrumentation-cost difference.
type Runtime struct {
	Prog *prog.Program
	// Optimized selects chord-only instrumentation.
	Optimized bool

	// Numberings per function; nil entries mark functions BL cannot handle
	// (indirect jumps etc.) — their execution is tracked but not counted.
	Numberings []*Numbering
	// Counts[fi][pathNum] is the execution count of that function's path.
	Counts []map[int64]int64
	// RegisterOps counts path-register updates (r += ...) actually
	// performed; CountOps counts path-table updates.
	RegisterOps int64
	CountOps    int64

	graphs []*cfg.Graph
	stack  []blFrame
}

type blFrame struct {
	fn   int
	node cfg.Node
	r    int64
	ok   bool // function has a numbering
}

// NewRuntime builds CFGs and numberings for every function of p. Functions
// that Ball–Larus cannot number are skipped (recorded as nil) rather than
// failing the whole program.
func NewRuntime(p *prog.Program, optimized bool) (*Runtime, error) {
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		Prog:       p,
		Optimized:  optimized,
		Numberings: make([]*Numbering, len(p.Funcs)),
		Counts:     make([]map[int64]int64, len(p.Funcs)),
		graphs:     graphs,
	}
	for fi, g := range graphs {
		num, err := New(g)
		if err != nil {
			continue // unprofilable function: leave nil
		}
		rt.Numberings[fi] = num
		rt.Counts[fi] = make(map[int64]int64)
	}
	rt.pushFrame(p.FuncOf(p.Entry), p.Entry)
	return rt, nil
}

func (rt *Runtime) pushFrame(fn, addr int) {
	fr := blFrame{fn: fn, ok: rt.Numberings[fn] != nil}
	if fr.ok {
		g := rt.graphs[fn]
		fr.node = g.NodeOf[rt.Prog.BlockAt(addr)]
		// Take the Entry→first edge.
		rt.takeEdge(&fr, cfg.Entry, fr.node)
	}
	rt.stack = append(rt.stack, fr)
}

// inc returns the runtime register increment for DAG edge id.
func (rt *Runtime) inc(num *Numbering, id EdgeID) int64 {
	e := num.Edges[id]
	if rt.Optimized {
		if e.Tree {
			return 0
		}
		rt.RegisterOps++
		return e.Inc
	}
	rt.RegisterOps++
	return e.Val
}

// takeEdge applies the register update for traversing from→to inside fr.
func (rt *Runtime) takeEdge(fr *blFrame, from, to cfg.Node) {
	num := rt.Numberings[fr.fn]
	if id, ok := num.LookupEdge(from, to); ok {
		fr.r += rt.inc(num, id)
		fr.node = to
		return
	}
	if toExit, fromEntry, ok := num.LookupBackEdge(from, to); ok {
		fr.r += rt.inc(num, toExit)
		rt.count(fr.fn, fr.r)
		fr.r = rt.inc(num, fromEntry)
		fr.node = to
		return
	}
	// Unknown edge (should not happen on validated programs).
	fr.node = to
}

func (rt *Runtime) count(fn int, pathNum int64) {
	rt.Counts[fn][pathNum]++
	rt.CountOps++
}

// closeFrame counts the in-flight path ending at Exit and pops the frame.
func (rt *Runtime) closeFrame() {
	fr := &rt.stack[len(rt.stack)-1]
	if fr.ok {
		num := rt.Numberings[fr.fn]
		if id, ok := num.LookupEdge(fr.node, cfg.Exit); ok {
			fr.r += rt.inc(num, id)
			rt.count(fr.fn, fr.r)
		}
	}
	rt.stack = rt.stack[:len(rt.stack)-1]
}

// OnBranch consumes one VM branch event; install it as (or call it from)
// the machine listener.
func (rt *Runtime) OnBranch(ev vm.BranchEvent) {
	if len(rt.stack) == 0 {
		return
	}
	switch ev.Kind {
	case isa.KindCall, isa.KindCallInd:
		// Caller's call edge is taken when the callee returns; just push.
		rt.pushFrame(rt.Prog.FuncOf(ev.Target), ev.Target)
		return
	case isa.KindReturn:
		rt.closeFrame()
		if len(rt.stack) == 0 {
			return
		}
		// Resume the caller: take the call-continuation edge.
		fr := &rt.stack[len(rt.stack)-1]
		if fr.ok {
			g := rt.graphs[fr.fn]
			to := g.NodeOf[rt.Prog.BlockAt(ev.Target)]
			rt.takeEdge(fr, fr.node, to)
		}
		return
	}
	// Intraprocedural transfer (cond, jump, indirect).
	fr := &rt.stack[len(rt.stack)-1]
	if !fr.ok {
		return
	}
	g := rt.graphs[fr.fn]
	bi := rt.Prog.BlockAt(ev.Target)
	to, in := g.NodeOf[bi]
	if !in {
		return // cross-function jump; not representable intraprocedurally
	}
	rt.takeEdge(fr, fr.node, to)
}

// Finish counts the path in flight in the innermost frame after the program
// halts (the frame reached Halt, which edges to Exit).
func (rt *Runtime) Finish() {
	if len(rt.stack) > 0 {
		rt.closeFrame()
	}
	// Outer frames never returned; their partial paths are not counted,
	// matching an offline profiler reading counters at program end.
	rt.stack = nil
}

// TotalCount sums all path counts of function fi.
func (rt *Runtime) TotalCount(fi int) int64 {
	var s int64
	for _, c := range rt.Counts[fi] {
		s += c
	}
	return s
}

// Profile runs p to completion under a fresh runtime and returns it.
func Profile(p *prog.Program, optimized bool, maxSteps int64) (*Runtime, error) {
	rt, err := NewRuntime(p, optimized)
	if err != nil {
		return nil, err
	}
	m := vm.New(p)
	m.SetSink(rt)
	if err := m.Run(maxSteps); err != nil && err != vm.ErrStepLimit {
		return nil, err
	}
	rt.Finish()
	return rt, nil
}

// DecodePath maps a path number of function fi back to its block-node
// sequence (Entry and Exit excluded), inverting the numbering: at each node
// take the out-edge with the largest Val not exceeding the remainder.
func (rt *Runtime) DecodePath(fi int, pathNum int64) ([]cfg.Node, error) {
	num := rt.Numberings[fi]
	if num == nil {
		return nil, fmt.Errorf("balllarus: function %d has no numbering", fi)
	}
	if pathNum < 0 || pathNum >= num.NumPaths {
		return nil, fmt.Errorf("balllarus: path number %d out of range [0,%d)", pathNum, num.NumPaths)
	}
	succs := make(map[cfg.Node][]DAGEdge)
	for _, e := range num.Edges {
		succs[e.From] = append(succs[e.From], e)
	}
	for _, es := range succs {
		sort.Slice(es, func(i, j int) bool { return es[i].Val < es[j].Val })
	}
	var out []cfg.Node
	u, rem := cfg.Entry, pathNum
	for u != cfg.Exit {
		es := succs[u]
		if len(es) == 0 {
			return nil, fmt.Errorf("balllarus: decode stuck at node %d", u)
		}
		k := len(es) - 1
		for k > 0 && es[k].Val > rem {
			k--
		}
		rem -= es[k].Val
		u = es[k].To
		if u != cfg.Exit {
			out = append(out, u)
		}
		if len(out) > len(num.Edges)+2 {
			return nil, fmt.Errorf("balllarus: decode did not terminate")
		}
	}
	if rem != 0 {
		return nil, fmt.Errorf("balllarus: decode residue %d", rem)
	}
	return out, nil
}
