// Package vm implements the interpreter for the toy machine. The machine
// executes a prog.Program one instruction at a time and reports every
// dynamic control transfer to an optional listener; the profiling and
// prediction layers are built entirely on that branch event stream.
package vm

import (
	"errors"
	"fmt"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// BranchEvent describes one executed control transfer.
type BranchEvent struct {
	PC       int            // address of the control instruction
	Target   int            // address execution continues at
	Taken    bool           // false only for not-taken conditional branches
	Kind     isa.BranchKind // classification of the transfer
	Backward bool           // taken and Target <= PC (delimits forward paths)
}

// Sink receives branch events through a direct interface method — one
// indirect call per event. The profiling stack (path.Tracker, dynamo.System)
// implements it on its concrete type, which skips the extra call frame a
// method-value Listener closure would add on the interpreter's hottest edge.
// Implementations must not modify the machine.
type Sink interface {
	OnBranch(BranchEvent)
}

// Listener receives branch events as a plain function; it is the convenience
// form of Sink for ad-hoc callers (tests, one-off measurements).
// Implementations must not modify the machine.
type Listener func(BranchEvent)

// OnBranch implements Sink, so a Listener can stand wherever a Sink is
// expected.
func (l Listener) OnBranch(ev BranchEvent) { l(ev) }

// FaultHook is consulted at the top of every Step, before the instruction
// executes. Returning a non-nil error injects a machine fault at the current
// PC: the machine halts and Step returns the error. The chaos package uses
// this seam to force traps at chosen step counts; a hook must be
// deterministic in the machine state it observes so runs stay replayable.
type FaultHook func(m *Machine) error

// Limits and failure modes.
var (
	// ErrStepLimit is returned by Run when the step budget is exhausted
	// before the program halts.
	ErrStepLimit = errors.New("vm: step limit exceeded")
	// ErrHalted is returned by Step on a halted machine.
	ErrHalted = errors.New("vm: machine is halted")
)

// FaultKind classifies machine faults.
type FaultKind uint8

// Machine fault kinds.
const (
	// FaultMemOOB: load or store outside [0, MemSize).
	FaultMemOOB FaultKind = iota
	// FaultBadIndirect: indirect jump to an address that is not a block start.
	FaultBadIndirect
	// FaultBadCallTarget: indirect call to an address that is not a function
	// entry.
	FaultBadCallTarget
	// FaultStackOverflow: call depth exceeded MaxCallDepth.
	FaultStackOverflow
	// FaultReturnUnderflow: return with an empty call stack.
	FaultReturnUnderflow
	// FaultBadOpcode: undefined opcode.
	FaultBadOpcode
	// FaultBadPC: control transfer (or entry) outside the instruction array.
	FaultBadPC
	// FaultBadRegister: register operand outside the register file.
	FaultBadRegister
	// FaultInjected: fault forced by a FaultHook (chaos testing).
	FaultInjected
)

var faultNames = [...]string{
	"mem-oob", "bad-indirect", "bad-call-target", "stack-overflow",
	"return-underflow", "bad-opcode", "bad-pc", "bad-register", "injected",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is a machine fault. Step returns a *Fault (wrapped errors.As-compatible)
// for every execution error other than ErrHalted; the machine is halted when
// it is returned. The message always names the faulting PC.
type Fault struct {
	Kind FaultKind
	PC   int
	Msg  string
}

// Error implements error.
func (f *Fault) Error() string { return f.Msg }

func (m *Machine) fault(kind FaultKind, format string, args ...any) error {
	m.Halted = true
	return &Fault{Kind: kind, PC: m.PC, Msg: fmt.Sprintf(format, args...)}
}

// MaxCallDepth bounds the return stack to catch runaway recursion in
// malformed workloads.
const MaxCallDepth = 1 << 16

// Machine is the interpreter state.
type Machine struct {
	Prog   *prog.Program
	Reg    [isa.NumRegs]int64
	Mem    []int64
	PC     int
	Halted bool
	// Steps counts executed instructions (including Halt).
	Steps int64

	stack     []int64
	sink      Sink
	faultHook FaultHook
}

// New creates a machine for p with memory initialized from p.InitMem and the
// program counter at p.Entry.
func New(p *prog.Program) *Machine {
	m := &Machine{Prog: p}
	m.Reset()
	return m
}

// Reset restores the machine to its initial state (registers zero, memory
// re-initialized, PC at entry).
func (m *Machine) Reset() {
	m.Reg = [isa.NumRegs]int64{}
	m.Mem = make([]int64, m.Prog.MemSize)
	for _, mi := range m.Prog.InitMem {
		// Out-of-range initializers are ignored rather than panicking;
		// Validate rejects them for built programs, but the machine must
		// also survive hand-assembled (fuzzed) images.
		if mi.Addr >= 0 && mi.Addr < len(m.Mem) {
			m.Mem[mi.Addr] = mi.Value
		}
	}
	m.PC = m.Prog.Entry
	m.Halted = false
	m.Steps = 0
	m.stack = m.stack[:0]
}

// SetSink installs the branch event sink (nil disables events). Prefer this
// over SetListener on hot paths: the event is delivered by one interface
// call on the receiver's concrete type.
func (m *Machine) SetSink(s Sink) { m.sink = s }

// SetListener installs a function-valued branch event listener
// (nil disables events). Equivalent to SetSink(Listener(l)).
func (m *Machine) SetListener(l Listener) {
	if l == nil {
		m.sink = nil
		return
	}
	m.sink = l
}

// SetFaultHook installs the fault-injection hook (nil disables injection).
func (m *Machine) SetFaultHook(h FaultHook) { m.faultHook = h }

// CallDepth returns the current return-stack depth.
func (m *Machine) CallDepth() int { return len(m.stack) }

// InstrAt returns the instruction at addr; it panics on out-of-range
// addresses (callers hold a validated program).
func (m *Machine) InstrAt(addr int) isa.Instr { return m.Prog.Instrs[addr] }

func (m *Machine) branch(pc, target int, taken bool, kind isa.BranchKind) {
	if m.sink != nil {
		m.sink.OnBranch(BranchEvent{
			PC:       pc,
			Target:   target,
			Taken:    taken,
			Kind:     kind,
			Backward: taken && target <= pc,
		})
	}
}

func (m *Machine) memAddr(base int64, off int64) (int, error) {
	a := base + off
	if a < 0 || a >= int64(len(m.Mem)) {
		return 0, m.fault(FaultMemOOB, "vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), m.PC)
	}
	return int(a), nil
}

// Step executes one instruction. It returns ErrHalted on a halted machine
// and an execution fault (bad memory access, bad indirect target, return
// underflow, call overflow, bad register operand, bad PC) as a *Fault error;
// faults halt the machine. Step never panics, even on hand-assembled
// programs that bypass prog.Validate.
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	if m.faultHook != nil {
		if err := m.faultHook(m); err != nil {
			m.Halted = true
			return err
		}
	}
	pc := m.PC
	if pc < 0 || pc >= len(m.Prog.Instrs) {
		return m.fault(FaultBadPC, "vm: pc %d outside program [0,%d)", pc, len(m.Prog.Instrs))
	}
	in := &m.Prog.Instrs[pc]
	if int(in.A|in.B|in.C) >= isa.NumRegs {
		return m.fault(FaultBadRegister, "vm: register operand out of range in %v at pc %d", in.Op, pc)
	}
	m.Steps++
	next := pc + 1

	switch in.Op {
	case isa.Nop:
	case isa.MovI:
		m.Reg[in.A] = in.Imm
	case isa.Mov:
		m.Reg[in.A] = m.Reg[in.B]
	case isa.Add:
		m.Reg[in.A] = m.Reg[in.B] + m.Reg[in.C]
	case isa.Sub:
		m.Reg[in.A] = m.Reg[in.B] - m.Reg[in.C]
	case isa.Mul:
		m.Reg[in.A] = m.Reg[in.B] * m.Reg[in.C]
	case isa.Div:
		if m.Reg[in.C] == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] / m.Reg[in.C]
		}
	case isa.Rem:
		if m.Reg[in.C] == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] % m.Reg[in.C]
		}
	case isa.And:
		m.Reg[in.A] = m.Reg[in.B] & m.Reg[in.C]
	case isa.Or:
		m.Reg[in.A] = m.Reg[in.B] | m.Reg[in.C]
	case isa.Xor:
		m.Reg[in.A] = m.Reg[in.B] ^ m.Reg[in.C]
	case isa.Shl:
		m.Reg[in.A] = m.Reg[in.B] << (uint(m.Reg[in.C]) & 63)
	case isa.Shr:
		m.Reg[in.A] = m.Reg[in.B] >> (uint(m.Reg[in.C]) & 63)
	case isa.AddI:
		m.Reg[in.A] = m.Reg[in.B] + in.Imm
	case isa.MulI:
		m.Reg[in.A] = m.Reg[in.B] * in.Imm
	case isa.AndI:
		m.Reg[in.A] = m.Reg[in.B] & in.Imm
	case isa.RemI:
		if in.Imm == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] % in.Imm
		}
	case isa.Load:
		a, err := m.memAddr(m.Reg[in.B], in.Imm)
		if err != nil {
			return err
		}
		m.Reg[in.A] = m.Mem[a]
	case isa.Store:
		a, err := m.memAddr(m.Reg[in.B], in.Imm)
		if err != nil {
			return err
		}
		m.Mem[a] = m.Reg[in.A]

	case isa.Jmp:
		next = int(in.Target)
		m.branch(pc, next, true, isa.KindJump)
	case isa.Br:
		if in.Cond.Eval(m.Reg[in.A], m.Reg[in.B]) {
			next = int(in.Target)
			m.branch(pc, next, true, isa.KindCond)
		} else {
			m.branch(pc, next, false, isa.KindCond)
		}
	case isa.BrI:
		if in.Cond.Eval(m.Reg[in.A], in.Imm) {
			next = int(in.Target)
			m.branch(pc, next, true, isa.KindCond)
		} else {
			m.branch(pc, next, false, isa.KindCond)
		}
	case isa.JmpInd:
		t := int(m.Reg[in.A])
		if !m.Prog.IsBlockStart(t) {
			return m.fault(FaultBadIndirect, "vm: indirect jump to %d (not a block start) at pc %d", t, pc)
		}
		next = t
		m.branch(pc, next, true, isa.KindIndirect)
	case isa.Call:
		if len(m.stack) >= MaxCallDepth {
			return m.fault(FaultStackOverflow, "vm: call stack overflow at pc %d", pc)
		}
		m.stack = append(m.stack, int64(pc+1))
		next = int(in.Target)
		m.branch(pc, next, true, isa.KindCall)
	case isa.CallInd:
		t := int(m.Reg[in.A])
		fi := m.Prog.FuncOf(t)
		if fi < 0 || fi >= len(m.Prog.Funcs) || m.Prog.Funcs[fi].Entry != t {
			return m.fault(FaultBadCallTarget, "vm: indirect call to %d (not a function entry) at pc %d", t, pc)
		}
		if len(m.stack) >= MaxCallDepth {
			return m.fault(FaultStackOverflow, "vm: call stack overflow at pc %d", pc)
		}
		m.stack = append(m.stack, int64(pc+1))
		next = t
		m.branch(pc, next, true, isa.KindCallInd)
	case isa.Ret:
		if len(m.stack) == 0 {
			return m.fault(FaultReturnUnderflow, "vm: return with empty call stack at pc %d", pc)
		}
		next = int(m.stack[len(m.stack)-1])
		m.stack = m.stack[:len(m.stack)-1]
		m.branch(pc, next, true, isa.KindReturn)
	case isa.Halt:
		m.Halted = true
		return nil
	default:
		return m.fault(FaultBadOpcode, "vm: unknown opcode %v at pc %d", in.Op, pc)
	}

	if next < 0 || next >= len(m.Prog.Instrs) {
		return m.fault(FaultBadPC, "vm: control transfer to %d out of range at pc %d", next, pc)
	}
	m.PC = next
	return nil
}

// Run executes until the program halts or maxSteps instructions have been
// executed (ErrStepLimit). maxSteps <= 0 means no limit.
func (m *Machine) Run(maxSteps int64) error {
	for !m.Halted {
		if maxSteps > 0 && m.Steps >= maxSteps {
			return ErrStepLimit
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
