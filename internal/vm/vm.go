// Package vm implements the interpreter for the toy machine. The machine
// executes a prog.Program one instruction at a time and reports every
// dynamic control transfer to an optional listener; the profiling and
// prediction layers are built entirely on that branch event stream.
package vm

import (
	"errors"
	"fmt"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// BranchEvent describes one executed control transfer.
type BranchEvent struct {
	PC       int            // address of the control instruction
	Target   int            // address execution continues at
	Taken    bool           // false only for not-taken conditional branches
	Kind     isa.BranchKind // classification of the transfer
	Backward bool           // taken and Target <= PC (delimits forward paths)
}

// Sink receives branch events through a direct interface method — one
// indirect call per event. The profiling stack (path.Tracker, dynamo.System)
// implements it on its concrete type, which skips the extra call frame a
// method-value Listener closure would add on the interpreter's hottest edge.
// Implementations must not modify the machine.
type Sink interface {
	OnBranch(BranchEvent)
}

// Listener receives branch events as a plain function; it is the convenience
// form of Sink for ad-hoc callers (tests, one-off measurements).
// Implementations must not modify the machine.
type Listener func(BranchEvent)

// OnBranch implements Sink, so a Listener can stand wherever a Sink is
// expected.
func (l Listener) OnBranch(ev BranchEvent) { l(ev) }

// FaultHook is consulted at the top of every Step, before the instruction
// executes. Returning a non-nil error injects a machine fault at the current
// PC: the machine halts and Step returns the error. The chaos package uses
// this seam to force traps at chosen step counts; a hook must be
// deterministic in the machine state it observes so runs stay replayable.
type FaultHook func(m *Machine) error

// Limits and failure modes.
var (
	// ErrStepLimit is returned by Run when the step budget is exhausted
	// before the program halts.
	ErrStepLimit = errors.New("vm: step limit exceeded")
	// ErrHalted is returned by Step on a halted machine.
	ErrHalted = errors.New("vm: machine is halted")
)

// FaultKind classifies machine faults.
type FaultKind uint8

// Machine fault kinds.
const (
	// FaultMemOOB: load or store outside [0, MemSize).
	FaultMemOOB FaultKind = iota
	// FaultBadIndirect: indirect jump to an address that is not a block start.
	FaultBadIndirect
	// FaultBadCallTarget: indirect call to an address that is not a function
	// entry.
	FaultBadCallTarget
	// FaultStackOverflow: call depth exceeded MaxCallDepth.
	FaultStackOverflow
	// FaultReturnUnderflow: return with an empty call stack.
	FaultReturnUnderflow
	// FaultBadOpcode: undefined opcode.
	FaultBadOpcode
	// FaultBadPC: control transfer (or entry) outside the instruction array.
	FaultBadPC
	// FaultBadRegister: register operand outside the register file.
	FaultBadRegister
	// FaultInjected: fault forced by a FaultHook (chaos testing).
	FaultInjected
)

var faultNames = [...]string{
	"mem-oob", "bad-indirect", "bad-call-target", "stack-overflow",
	"return-underflow", "bad-opcode", "bad-pc", "bad-register", "injected",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is a machine fault. Step returns a *Fault (wrapped errors.As-compatible)
// for every execution error other than ErrHalted; the machine is halted when
// it is returned. The message always names the faulting PC.
type Fault struct {
	Kind FaultKind
	PC   int
	Msg  string
}

// Error implements error.
func (f *Fault) Error() string { return f.Msg }

// fault constructs the machine's fault error; it runs at most once per
// execution, on the failure path.
//
//netpathvet:cold
func (m *Machine) fault(kind FaultKind, format string, args ...any) error {
	m.Halted = true
	countFault(kind, m.PC, m.Steps)
	if m.faultObs != nil {
		m.faultObs(kind, m.PC, m.Steps)
	}
	return &Fault{Kind: kind, PC: m.PC, Msg: fmt.Sprintf(format, args...)}
}

// MaxCallDepth bounds the return stack to catch runaway recursion in
// malformed workloads.
const MaxCallDepth = 1 << 16

// Engine selects the execution engine. The predecoded direct-threaded
// engine (EngineFast) is the default; the original switch-based decoder
// (EngineLegacy) is kept as the reference semantics for differential
// testing. Both engines produce identical architectural state, branch
// events, step counts, and fault errors on every program.
type Engine uint8

// Execution engines.
const (
	EngineFast Engine = iota
	EngineLegacy
)

// Machine is the interpreter state.
type Machine struct {
	Prog   *prog.Program
	Reg    [isa.NumRegs]int64
	Mem    []int64
	PC     int
	Halted bool
	// Steps counts executed instructions (including Halt).
	Steps int64

	// ops is the predecoded micro-op image of Prog; it depends only on the
	// instruction bytes, so Reset leaves it intact.
	ops []uop
	// trap holds a fault raised inside a micro-op handler until SettleExec
	// delivers it.
	trap *Fault
	// legacy routes Step/Run through the switch-based decoder.
	legacy bool

	stack     []int64
	sink      Sink
	faultHook FaultHook
	faultObs  FaultObserver

	// sbx parks the exit state of a stopped superblock. It lives here rather
	// than on the RunSuperblock frame so superblock handlers take no escaping
	// arguments (the tier-2 dispatch path must not allocate).
	sbx sbExec
}

// New creates a machine for p with memory initialized from p.InitMem and the
// program counter at p.Entry. The program is predecoded once, here, into the
// direct-threaded micro-op array both Step and Run dispatch through.
func New(p *prog.Program) *Machine {
	m := &Machine{Prog: p, ops: predecode(p)}
	m.Reset()
	return m
}

// SetEngine selects the execution engine; see Engine. It may be switched at
// any instruction boundary.
func (m *Machine) SetEngine(e Engine) { m.legacy = e == EngineLegacy }

// Reset restores the machine to its initial state (registers zero, memory
// re-initialized, PC at entry).
func (m *Machine) Reset() {
	m.Reg = [isa.NumRegs]int64{}
	m.Mem = make([]int64, m.Prog.MemSize)
	for _, mi := range m.Prog.InitMem {
		// Out-of-range initializers are ignored rather than panicking;
		// Validate rejects them for built programs, but the machine must
		// also survive hand-assembled (fuzzed) images.
		if mi.Addr >= 0 && mi.Addr < len(m.Mem) {
			m.Mem[mi.Addr] = mi.Value
		}
	}
	m.PC = m.Prog.Entry
	m.Halted = false
	m.Steps = 0
	m.trap = nil
	m.stack = m.stack[:0]
}

// SetSink installs the branch event sink (nil disables events). Prefer this
// over SetListener on hot paths: the event is delivered by one interface
// call on the receiver's concrete type.
func (m *Machine) SetSink(s Sink) { m.sink = s }

// SetListener installs a function-valued branch event listener
// (nil disables events). Equivalent to SetSink(Listener(l)).
func (m *Machine) SetListener(l Listener) {
	if l == nil {
		m.sink = nil
		return
	}
	m.sink = l
}

// SetFaultHook installs the fault-injection hook (nil disables injection).
// A non-nil hook routes Run through the per-step slow path so the hook is
// consulted before every instruction, exactly as Step does.
func (m *Machine) SetFaultHook(h FaultHook) { m.faultHook = h }

// HasFaultHook reports whether a fault-injection hook is installed. Batched
// executors (dynamo's fragment loop) use it to pick the slow-path stepper.
func (m *Machine) HasFaultHook() bool { return m.faultHook != nil }

// FaultObserver is notified once per delivered fault with the kind, the
// faulting guest PC, and the machine step count at delivery. It runs on the
// failure path only — never per instruction — so observers may be as heavy
// as a span write or a flight-recorder note.
type FaultObserver func(kind FaultKind, pc int, step int64)

// SetFaultObserver installs the per-machine fault observer (nil disables
// it). Unlike the unconditional fault counters, the observer carries
// request-scoped context: dynamo and netpathd use it to attach fault spans
// to the run's trace.
func (m *Machine) SetFaultObserver(obs FaultObserver) { m.faultObs = obs }

// CallDepth returns the current return-stack depth.
func (m *Machine) CallDepth() int { return len(m.stack) }

// InstrAt returns the instruction at addr; it panics on out-of-range
// addresses (callers hold a validated program).
func (m *Machine) InstrAt(addr int) isa.Instr { return m.Prog.Instrs[addr] }

// branch reports a control transfer to the sink. The nil-sink early return
// keeps branch within the inlining budget, so unprofiled runs pay one
// inlined compare per transfer instead of a call.
func (m *Machine) branch(pc, target int, taken bool, kind isa.BranchKind) {
	if m.sink == nil {
		return
	}
	m.emitBranch(pc, target, taken, kind)
}

// emitBranch is kept out of line so branch stays within the inlining
// budget; it only runs when a sink is installed.
//
//go:noinline
func (m *Machine) emitBranch(pc, target int, taken bool, kind isa.BranchKind) {
	m.sink.OnBranch(BranchEvent{
		PC:       pc,
		Target:   target,
		Taken:    taken,
		Kind:     kind,
		Backward: isa.IsBackward(pc, target, taken),
	})
}

func (m *Machine) memAddr(base int64, off int64) (int, error) {
	a := base + off
	if a < 0 || a >= int64(len(m.Mem)) {
		return 0, m.fault(FaultMemOOB, "vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), m.PC)
	}
	return int(a), nil
}

// Step executes one instruction. It returns ErrHalted on a halted machine
// and an execution fault (bad memory access, bad indirect target, return
// underflow, call overflow, bad register operand, bad PC) as a *Fault error;
// faults halt the machine. Step never panics, even on hand-assembled
// programs that bypass prog.Validate.
func (m *Machine) Step() error {
	if m.legacy {
		return m.stepSwitch()
	}
	if m.Halted {
		return ErrHalted
	}
	if m.faultHook != nil {
		if err := m.faultHook(m); err != nil {
			m.Halted = true
			m.noteFaultErr(err)
			return err
		}
	}
	pc := m.PC
	if uint(pc) >= uint(len(m.ops)) {
		return m.fault(FaultBadPC, "vm: pc %d outside program [0,%d)", pc, len(m.Prog.Instrs))
	}
	u := &m.ops[pc]
	m.Steps++
	nu := u.fn(m, u)
	if nu == nil {
		return m.SettleExec(pc, stop)
	}
	m.PC = int(nu.pc)
	return nil
}

// ExecAt executes the single predecoded micro-op at pc and returns the next
// PC, or a negative value when the micro-op stopped the machine (Halt or
// fault). It counts the step but does not move m.PC — callers (the batched
// Run loop, dynamo's fragment executor) own the PC and resolve stops via
// SettleExec. The caller must ensure the machine is not halted and pc is in
// range.
func (m *Machine) ExecAt(pc int) int {
	u := &m.ops[pc]
	m.Steps++
	nu := u.fn(m, u)
	if nu == nil {
		return stop
	}
	return int(nu.pc)
}

// SettleExec resolves a stop reported by ExecAt for the micro-op at pc,
// reproducing the legacy engine's cold-path semantics: a clean Halt returns
// nil and a parked handler fault is delivered, with the step uncounted for
// bad-register faults, which the legacy engine rejects before counting.
// m.PC is left at pc — the halting or faulting instruction — in every
// case. npc is the stop value, kept for the defensive fallback: handlers
// fault all out-of-range transfers themselves, so a non-halted settle
// cannot happen on any reachable path.
func (m *Machine) SettleExec(pc, npc int) error {
	m.PC = pc
	if m.Halted {
		f := m.trap
		if f == nil {
			return nil
		}
		m.trap = nil
		if f.Kind == FaultBadRegister {
			m.Steps--
		}
		return f
	}
	return m.fault(FaultBadPC, "vm: control transfer to %d out of range at pc %d", npc, pc)
}

// stepSwitch is the original switch-based decoder, retained as the legacy
// engine (EngineLegacy) and as the reference semantics the predecoded
// engine is differentially tested against.
func (m *Machine) stepSwitch() error {
	if m.Halted {
		return ErrHalted
	}
	if m.faultHook != nil {
		if err := m.faultHook(m); err != nil {
			m.Halted = true
			m.noteFaultErr(err)
			return err
		}
	}
	pc := m.PC
	if pc < 0 || pc >= len(m.Prog.Instrs) {
		return m.fault(FaultBadPC, "vm: pc %d outside program [0,%d)", pc, len(m.Prog.Instrs))
	}
	in := &m.Prog.Instrs[pc]
	if int(in.A|in.B|in.C) >= isa.NumRegs {
		return m.fault(FaultBadRegister, "vm: register operand out of range in %v at pc %d", in.Op, pc)
	}
	m.Steps++
	next := pc + 1

	switch in.Op {
	case isa.Nop:
	case isa.MovI:
		m.Reg[in.A] = in.Imm
	case isa.Mov:
		m.Reg[in.A] = m.Reg[in.B]
	case isa.Add:
		m.Reg[in.A] = m.Reg[in.B] + m.Reg[in.C]
	case isa.Sub:
		m.Reg[in.A] = m.Reg[in.B] - m.Reg[in.C]
	case isa.Mul:
		m.Reg[in.A] = m.Reg[in.B] * m.Reg[in.C]
	case isa.Div:
		if m.Reg[in.C] == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] / m.Reg[in.C]
		}
	case isa.Rem:
		if m.Reg[in.C] == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] % m.Reg[in.C]
		}
	case isa.And:
		m.Reg[in.A] = m.Reg[in.B] & m.Reg[in.C]
	case isa.Or:
		m.Reg[in.A] = m.Reg[in.B] | m.Reg[in.C]
	case isa.Xor:
		m.Reg[in.A] = m.Reg[in.B] ^ m.Reg[in.C]
	case isa.Shl:
		m.Reg[in.A] = m.Reg[in.B] << (uint(m.Reg[in.C]) & 63)
	case isa.Shr:
		m.Reg[in.A] = m.Reg[in.B] >> (uint(m.Reg[in.C]) & 63)
	case isa.AddI:
		m.Reg[in.A] = m.Reg[in.B] + in.Imm
	case isa.MulI:
		m.Reg[in.A] = m.Reg[in.B] * in.Imm
	case isa.AndI:
		m.Reg[in.A] = m.Reg[in.B] & in.Imm
	case isa.RemI:
		if in.Imm == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] % in.Imm
		}
	case isa.Load:
		a, err := m.memAddr(m.Reg[in.B], in.Imm)
		if err != nil {
			return err
		}
		m.Reg[in.A] = m.Mem[a]
	case isa.Store:
		a, err := m.memAddr(m.Reg[in.B], in.Imm)
		if err != nil {
			return err
		}
		m.Mem[a] = m.Reg[in.A]

	case isa.Jmp:
		next = int(in.Target)
		m.branch(pc, next, true, isa.KindJump)
	case isa.Br:
		if in.Cond.Eval(m.Reg[in.A], m.Reg[in.B]) {
			next = int(in.Target)
			m.branch(pc, next, true, isa.KindCond)
		} else {
			m.branch(pc, next, false, isa.KindCond)
		}
	case isa.BrI:
		if in.Cond.Eval(m.Reg[in.A], in.Imm) {
			next = int(in.Target)
			m.branch(pc, next, true, isa.KindCond)
		} else {
			m.branch(pc, next, false, isa.KindCond)
		}
	case isa.JmpInd:
		t := int(m.Reg[in.A])
		if !m.Prog.IsBlockStart(t) {
			return m.fault(FaultBadIndirect, "vm: indirect jump to %d (not a block start) at pc %d", t, pc)
		}
		next = t
		m.branch(pc, next, true, isa.KindIndirect)
	case isa.Call:
		if len(m.stack) >= MaxCallDepth {
			return m.fault(FaultStackOverflow, "vm: call stack overflow at pc %d", pc)
		}
		m.stack = append(m.stack, int64(pc+1))
		next = int(in.Target)
		m.branch(pc, next, true, isa.KindCall)
	case isa.CallInd:
		t := int(m.Reg[in.A])
		fi := m.Prog.FuncOf(t)
		if fi < 0 || fi >= len(m.Prog.Funcs) || m.Prog.Funcs[fi].Entry != t {
			return m.fault(FaultBadCallTarget, "vm: indirect call to %d (not a function entry) at pc %d", t, pc)
		}
		if len(m.stack) >= MaxCallDepth {
			return m.fault(FaultStackOverflow, "vm: call stack overflow at pc %d", pc)
		}
		m.stack = append(m.stack, int64(pc+1))
		next = t
		m.branch(pc, next, true, isa.KindCallInd)
	case isa.Ret:
		if len(m.stack) == 0 {
			return m.fault(FaultReturnUnderflow, "vm: return with empty call stack at pc %d", pc)
		}
		next = int(m.stack[len(m.stack)-1])
		m.stack = m.stack[:len(m.stack)-1]
		m.branch(pc, next, true, isa.KindReturn)
	case isa.Halt:
		m.Halted = true
		return nil
	default:
		return m.fault(FaultBadOpcode, "vm: unknown opcode %v at pc %d", in.Op, pc)
	}

	if next < 0 || next >= len(m.Prog.Instrs) {
		return m.fault(FaultBadPC, "vm: control transfer to %d out of range at pc %d", next, pc)
	}
	m.PC = next
	return nil
}

// Run executes until the program halts or maxSteps instructions have been
// executed (ErrStepLimit). maxSteps <= 0 means no limit.
//
// With the fast engine and no fault hook, Run executes a batched inner
// dispatch loop threaded through the micro-ops' successor pointers: the
// only loop-carried state is the current micro-op and the step count, the
// step budget is folded into a single compare, and neither Halted nor the
// hook nor PC bounds are re-checked per instruction — handlers return nil
// to stop and fault out-of-range transfers themselves. A fault hook (chaos
// injection) or the legacy engine routes through the per-step slow path
// instead.
func (m *Machine) Run(maxSteps int64) error {
	if m.legacy || m.faultHook != nil {
		return m.runSlow(maxSteps)
	}
	if m.Halted {
		return nil
	}
	pc := m.PC
	if uint(pc) >= uint(len(m.ops)) {
		if maxSteps > 0 && m.Steps >= maxSteps {
			return ErrStepLimit
		}
		return m.fault(FaultBadPC, "vm: pc %d outside program [0,%d)", pc, len(m.Prog.Instrs))
	}
	limit := int64(1) << 62
	if maxSteps > 0 {
		limit = maxSteps
	}
	u := &m.ops[pc]
	steps := m.Steps
	for {
		if steps >= limit {
			m.PC, m.Steps = int(u.pc), steps
			return ErrStepLimit
		}
		steps++
		nu := u.fn(m, u)
		if nu == nil {
			m.Steps = steps
			return m.SettleExec(int(u.pc), stop)
		}
		u = nu
	}
}

// runSlow is the per-step execution loop: the legacy Run semantics, and the
// slow path the fast engine takes whenever a fault hook must be consulted
// between instructions.
func (m *Machine) runSlow(maxSteps int64) error {
	for !m.Halted {
		if maxSteps > 0 && m.Steps >= maxSteps {
			return ErrStepLimit
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
