// Package vm implements the interpreter for the toy machine. The machine
// executes a prog.Program one instruction at a time and reports every
// dynamic control transfer to an optional listener; the profiling and
// prediction layers are built entirely on that branch event stream.
package vm

import (
	"errors"
	"fmt"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// BranchEvent describes one executed control transfer.
type BranchEvent struct {
	PC       int            // address of the control instruction
	Target   int            // address execution continues at
	Taken    bool           // false only for not-taken conditional branches
	Kind     isa.BranchKind // classification of the transfer
	Backward bool           // taken and Target <= PC (delimits forward paths)
}

// Listener receives branch events. Implementations must not modify the
// machine.
type Listener func(BranchEvent)

// Limits and failure modes.
var (
	// ErrStepLimit is returned by Run when the step budget is exhausted
	// before the program halts.
	ErrStepLimit = errors.New("vm: step limit exceeded")
	// ErrHalted is returned by Step on a halted machine.
	ErrHalted = errors.New("vm: machine is halted")
)

// MaxCallDepth bounds the return stack to catch runaway recursion in
// malformed workloads.
const MaxCallDepth = 1 << 16

// Machine is the interpreter state.
type Machine struct {
	Prog   *prog.Program
	Reg    [isa.NumRegs]int64
	Mem    []int64
	PC     int
	Halted bool
	// Steps counts executed instructions (including Halt).
	Steps int64

	stack    []int64
	listener Listener
}

// New creates a machine for p with memory initialized from p.InitMem and the
// program counter at p.Entry.
func New(p *prog.Program) *Machine {
	m := &Machine{Prog: p}
	m.Reset()
	return m
}

// Reset restores the machine to its initial state (registers zero, memory
// re-initialized, PC at entry).
func (m *Machine) Reset() {
	m.Reg = [isa.NumRegs]int64{}
	m.Mem = make([]int64, m.Prog.MemSize)
	for _, mi := range m.Prog.InitMem {
		m.Mem[mi.Addr] = mi.Value
	}
	m.PC = m.Prog.Entry
	m.Halted = false
	m.Steps = 0
	m.stack = m.stack[:0]
}

// SetListener installs the branch event listener (nil disables events).
func (m *Machine) SetListener(l Listener) { m.listener = l }

// CallDepth returns the current return-stack depth.
func (m *Machine) CallDepth() int { return len(m.stack) }

// InstrAt returns the instruction at addr; it panics on out-of-range
// addresses (callers hold a validated program).
func (m *Machine) InstrAt(addr int) isa.Instr { return m.Prog.Instrs[addr] }

func (m *Machine) branch(pc, target int, taken bool, kind isa.BranchKind) {
	if m.listener != nil {
		m.listener(BranchEvent{
			PC:       pc,
			Target:   target,
			Taken:    taken,
			Kind:     kind,
			Backward: taken && target <= pc,
		})
	}
}

func (m *Machine) memAddr(base int64, off int64) (int, error) {
	a := base + off
	if a < 0 || a >= int64(len(m.Mem)) {
		return 0, fmt.Errorf("vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), m.PC)
	}
	return int(a), nil
}

// Step executes one instruction. It returns ErrHalted on a halted machine
// and an execution fault (bad memory access, bad indirect target, return
// underflow, call overflow) as a non-nil error; faults halt the machine.
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	pc := m.PC
	in := &m.Prog.Instrs[pc]
	m.Steps++
	next := pc + 1

	switch in.Op {
	case isa.Nop:
	case isa.MovI:
		m.Reg[in.A] = in.Imm
	case isa.Mov:
		m.Reg[in.A] = m.Reg[in.B]
	case isa.Add:
		m.Reg[in.A] = m.Reg[in.B] + m.Reg[in.C]
	case isa.Sub:
		m.Reg[in.A] = m.Reg[in.B] - m.Reg[in.C]
	case isa.Mul:
		m.Reg[in.A] = m.Reg[in.B] * m.Reg[in.C]
	case isa.Div:
		if m.Reg[in.C] == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] / m.Reg[in.C]
		}
	case isa.Rem:
		if m.Reg[in.C] == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] % m.Reg[in.C]
		}
	case isa.And:
		m.Reg[in.A] = m.Reg[in.B] & m.Reg[in.C]
	case isa.Or:
		m.Reg[in.A] = m.Reg[in.B] | m.Reg[in.C]
	case isa.Xor:
		m.Reg[in.A] = m.Reg[in.B] ^ m.Reg[in.C]
	case isa.Shl:
		m.Reg[in.A] = m.Reg[in.B] << (uint(m.Reg[in.C]) & 63)
	case isa.Shr:
		m.Reg[in.A] = m.Reg[in.B] >> (uint(m.Reg[in.C]) & 63)
	case isa.AddI:
		m.Reg[in.A] = m.Reg[in.B] + in.Imm
	case isa.MulI:
		m.Reg[in.A] = m.Reg[in.B] * in.Imm
	case isa.AndI:
		m.Reg[in.A] = m.Reg[in.B] & in.Imm
	case isa.RemI:
		if in.Imm == 0 {
			m.Reg[in.A] = 0
		} else {
			m.Reg[in.A] = m.Reg[in.B] % in.Imm
		}
	case isa.Load:
		a, err := m.memAddr(m.Reg[in.B], in.Imm)
		if err != nil {
			m.Halted = true
			return err
		}
		m.Reg[in.A] = m.Mem[a]
	case isa.Store:
		a, err := m.memAddr(m.Reg[in.B], in.Imm)
		if err != nil {
			m.Halted = true
			return err
		}
		m.Mem[a] = m.Reg[in.A]

	case isa.Jmp:
		next = int(in.Target)
		m.branch(pc, next, true, isa.KindJump)
	case isa.Br:
		if in.Cond.Eval(m.Reg[in.A], m.Reg[in.B]) {
			next = int(in.Target)
			m.branch(pc, next, true, isa.KindCond)
		} else {
			m.branch(pc, next, false, isa.KindCond)
		}
	case isa.BrI:
		if in.Cond.Eval(m.Reg[in.A], in.Imm) {
			next = int(in.Target)
			m.branch(pc, next, true, isa.KindCond)
		} else {
			m.branch(pc, next, false, isa.KindCond)
		}
	case isa.JmpInd:
		t := int(m.Reg[in.A])
		if !m.Prog.IsBlockStart(t) {
			m.Halted = true
			return fmt.Errorf("vm: indirect jump to %d (not a block start) at pc %d", t, pc)
		}
		next = t
		m.branch(pc, next, true, isa.KindIndirect)
	case isa.Call:
		if len(m.stack) >= MaxCallDepth {
			m.Halted = true
			return fmt.Errorf("vm: call stack overflow at pc %d", pc)
		}
		m.stack = append(m.stack, int64(pc+1))
		next = int(in.Target)
		m.branch(pc, next, true, isa.KindCall)
	case isa.CallInd:
		t := int(m.Reg[in.A])
		fi := m.Prog.FuncOf(t)
		if fi < 0 || m.Prog.Funcs[fi].Entry != t {
			m.Halted = true
			return fmt.Errorf("vm: indirect call to %d (not a function entry) at pc %d", t, pc)
		}
		if len(m.stack) >= MaxCallDepth {
			m.Halted = true
			return fmt.Errorf("vm: call stack overflow at pc %d", pc)
		}
		m.stack = append(m.stack, int64(pc+1))
		next = t
		m.branch(pc, next, true, isa.KindCallInd)
	case isa.Ret:
		if len(m.stack) == 0 {
			m.Halted = true
			return fmt.Errorf("vm: return with empty call stack at pc %d", pc)
		}
		next = int(m.stack[len(m.stack)-1])
		m.stack = m.stack[:len(m.stack)-1]
		m.branch(pc, next, true, isa.KindReturn)
	case isa.Halt:
		m.Halted = true
		return nil
	default:
		m.Halted = true
		return fmt.Errorf("vm: unknown opcode %v at pc %d", in.Op, pc)
	}

	if next < 0 || next >= len(m.Prog.Instrs) {
		m.Halted = true
		return fmt.Errorf("vm: control transfer to %d out of range at pc %d", next, pc)
	}
	m.PC = next
	return nil
}

// Run executes until the program halts or maxSteps instructions have been
// executed (ErrStepLimit). maxSteps <= 0 means no limit.
func (m *Machine) Run(maxSteps int64) error {
	for !m.Halted {
		if maxSteps > 0 && m.Steps >= maxSteps {
			return ErrStepLimit
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
