// Check-free superblock memory handlers.
//
// These are the handlers CompileSuperblockFacts binds to a Load or Store
// whose address the dataflow analysis proved inside [0, MemSize) on every
// execution reaching it. They index guest memory directly — no bounds test,
// no fault path. The proof obligation is discharged statically (and
// re-checked by the translation validator before publication), which is the
// entire point: a check that cannot fail should not be executed millions of
// times per second.
package vm

import "netpath/internal/isa"

func sbLoadNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Mem[m.Reg[op.b]+op.imm]
	return true
}

func sbStoreNC(m *Machine, op *sbop) bool {
	m.Mem[m.Reg[op.b]+op.imm] = m.Reg[op.a]
	return true
}

// Fused load+ALU with the load's bounds check elided.

func sbLoadAluNC(m *Machine, op *sbop) {
	m.Reg[op.a] = m.Mem[m.Reg[op.b]+op.imm]
}

func sbLoadAddNC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] + m.Reg[op.c2]
	return true
}

func sbLoadSubNC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] - m.Reg[op.c2]
	return true
}

func sbLoadMulNC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] * m.Reg[op.c2]
	return true
}

func sbLoadAndNC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] & m.Reg[op.c2]
	return true
}

func sbLoadOrNC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] | m.Reg[op.c2]
	return true
}

func sbLoadXorNC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] ^ m.Reg[op.c2]
	return true
}

func sbLoadAddINC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] + op.imm2
	return true
}

func sbLoadMulINC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] * op.imm2
	return true
}

func sbLoadAndINC(m *Machine, op *sbop) bool {
	sbLoadAluNC(m, op)
	m.Reg[op.a2] = m.Reg[op.b2] & op.imm2
	return true
}

// Fused ALU+store with the store's bounds check elided.

func sbStore2NC(m *Machine, op *sbop) bool {
	m.Mem[m.Reg[op.b2]+op.imm2] = m.Reg[op.a2]
	return true
}

func sbAddStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] + m.Reg[op.c]
	return sbStore2NC(m, op)
}

func sbSubStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] - m.Reg[op.c]
	return sbStore2NC(m, op)
}

func sbMulStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] * m.Reg[op.c]
	return sbStore2NC(m, op)
}

func sbAndStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] & m.Reg[op.c]
	return sbStore2NC(m, op)
}

func sbOrStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] | m.Reg[op.c]
	return sbStore2NC(m, op)
}

func sbXorStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] ^ m.Reg[op.c]
	return sbStore2NC(m, op)
}

func sbAddIStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] + op.imm
	return sbStore2NC(m, op)
}

func sbMulIStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] * op.imm
	return sbStore2NC(m, op)
}

func sbAndIStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] & op.imm
	return sbStore2NC(m, op)
}

func sbMovStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b]
	return sbStore2NC(m, op)
}

func sbMovIStoreNC(m *Machine, op *sbop) bool {
	m.Reg[op.a] = op.imm
	return sbStore2NC(m, op)
}

// sbLoadAluFnsNC mirrors sbLoadAluFns with the load check elided; the two
// maps share a key set (checked by a test) so the compiler can swap tables.
var sbLoadAluFnsNC = map[isa.Op]sbFn{
	isa.Add: sbLoadAddNC, isa.Sub: sbLoadSubNC, isa.Mul: sbLoadMulNC,
	isa.And: sbLoadAndNC, isa.Or: sbLoadOrNC, isa.Xor: sbLoadXorNC,
	isa.AddI: sbLoadAddINC, isa.MulI: sbLoadMulINC, isa.AndI: sbLoadAndINC,
}

// sbAluStoreFnsNC mirrors sbAluStoreFns with the store check elided.
var sbAluStoreFnsNC = map[isa.Op]sbFn{
	isa.Add: sbAddStoreNC, isa.Sub: sbSubStoreNC, isa.Mul: sbMulStoreNC,
	isa.And: sbAndStoreNC, isa.Or: sbOrStoreNC, isa.Xor: sbXorStoreNC,
	isa.AddI: sbAddIStoreNC, isa.MulI: sbMulIStoreNC, isa.AndI: sbAndIStoreNC,
	isa.Mov: sbMovStoreNC, isa.MovI: sbMovIStoreNC,
}
