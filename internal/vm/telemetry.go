// Telemetry for machine faults. Faults are terminal (the machine halts), so
// unlike the dynamo hot-path sites these are counted unconditionally — no
// Sink, no configuration — and the per-kind counters carry stable names
// derived from faultNames so exporters and the chaos harness agree on them.
package vm

import (
	"errors"

	"netpath/internal/telemetry"
)

// faultCounters[k] counts delivered faults of kind k under
// vm_fault_<name>_total.
var faultCounters = func() [len(faultNames)]*telemetry.Counter {
	var cs [len(faultNames)]*telemetry.Counter
	for k, name := range faultNames {
		cs[k] = telemetry.NewCounter("vm_fault_"+name+"_total",
			"machine faults delivered: "+name)
	}
	return cs
}()

// countFault accounts one delivered fault: a counter bump and an EvVMFault
// ring event (Site = faulting PC, Arg = kind code). Cold path by definition.
func countFault(kind FaultKind, pc int, step int64) {
	if int(kind) < len(faultCounters) {
		faultCounters[kind].Inc()
	}
	telemetry.Def.Ring().Emit(telemetry.EvVMFault, step, int32(pc), int64(kind))
}

// noteFaultErr accounts err if it is (or wraps) a *Fault and notifies the
// machine's fault observer; hook-injected errors pass through here on their
// way out of Step.
func (m *Machine) noteFaultErr(err error) {
	var f *Fault
	if errors.As(err, &f) {
		countFault(f.Kind, f.PC, m.Steps)
		if m.faultObs != nil {
			m.faultObs(f.Kind, f.PC, m.Steps)
		}
	}
}
