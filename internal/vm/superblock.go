// Tier-2 superblock execution engine.
//
// A superblock is a straightened multi-fragment trace lowered to an array of
// host micro-ops executed by an index loop with no per-step bookkeeping: no
// Steps increment, no successor compare, no branch-event emission, and no
// step-budget check inside the loop. Everything the per-step engines account
// incrementally is recovered arithmetically at the exit:
//
//   - Steps: the number of completed on-trace guest steps is added once.
//   - Branch events: on-trace transfers are silent; the caller (dynamo) owns
//     prefix-sum redirect accounting over the recorded successors. Only a
//     diverging op replays through ExecAt, which emits its event, counts its
//     step, performs its stack effects, and raises its faults through the
//     exact same handlers the tier-1 engine uses — so a superblock can never
//     invent a new fault message, event ordering, or architectural state.
//
// The compiler (CompileSuperblock) is a pure function of the recorded spec:
// it touches no Machine state, so it is safe to run on a background compile
// worker while the mutator keeps executing tier-1 fragments. Optimization is
// superblock-scoped rather than per instruction: guards whose operands are
// not written earlier in the block are hoisted into an entry check (fail →
// the caller runs the precise tier-1 loop instead), guards exactly implied
// by an earlier guard are eliminated, pure control ops (Jmp, Nop, decided
// branches) compile to nothing, and common adjacent pairs (cmp+branch,
// load+ALU, ALU+store) fuse into single handlers, halving dispatch work on
// typical loop bodies.
package vm

import (
	"errors"
	"fmt"

	"netpath/internal/isa"
)

// SBStep is one guest step of a superblock spec: the instruction, its
// address, and the control successor observed when the trace was recorded.
type SBStep struct {
	In   isa.Instr
	PC   int32
	Next int32
}

// SBStats reports what the superblock compiler did, for telemetry and tests.
type SBStats struct {
	// Skipped counts guest steps compiled to nothing: Nop, straightened
	// unconditional jumps, and branches whose two outcomes share a successor.
	Skipped int
	// Hoisted counts guards moved into the superblock entry check.
	Hoisted int
	// Redundant counts guards eliminated because an earlier guard with the
	// same operands and outcome still holds.
	Redundant int
	// Fused counts adjacent guest pairs merged into one fused handler.
	Fused int
	// Implied counts guards eliminated on static proof: branches the
	// dataflow analysis decided, and entry guards implied by the kept
	// entry guards that precede them.
	Implied int
	// BoundsElided counts memory bounds checks dropped because the address
	// is statically proven inside [0, MemSize).
	BoundsElided int
}

// SBFacts carries statically proven per-address facts the compiler may use
// to drop runtime checks. The zero value claims nothing. Facts must hold on
// every execution that reaches the address — the translation validator
// (internal/dataflow) re-derives each one before a compiled superblock is
// published, so a lying provider is caught before it can execute.
type SBFacts struct {
	// InBounds reports that the Load/Store at pc always addresses inside
	// guest memory.
	InBounds func(pc int32) bool
	// Decided reports that the Br/BrI at pc always resolves the same way.
	Decided func(pc int32) (taken, ok bool)
}

func (f SBFacts) inBounds(pc int32) bool {
	return f.InBounds != nil && f.InBounds(pc)
}

func (f SBFacts) decided(pc int32) (bool, bool) {
	if f.Decided == nil {
		return false, false
	}
	return f.Decided(pc)
}

// SBExit reports one superblock execution.
type SBExit struct {
	// Guest is the number of guest steps that completed on-trace. On a clean
	// completion it equals NGuest. On a divergence the op at index Guest also
	// executed (off-trace, through ExecAt, with its event and step counted);
	// on a fault the op at index Guest is the faulting instruction.
	Guest int32
	// NextPC is where execution continues (valid when Err is nil).
	NextPC int
	// Completed reports that every guest step ran on-trace; NextPC is then
	// the recorded successor of the final step.
	Completed bool
	// Err is the machine fault that ended the block, already delivered:
	// m.PC is pinned at the faulting instruction and the machine is halted,
	// exactly as the per-step engines leave it.
	Err error
}

// sbGuard is one hoisted entry guard: a pure register predicate that must
// hold for the superblock body (with the guard removed) to be valid.
type sbGuard struct {
	a, b   uint8
	useImm bool
	want   bool // required outcome of cond
	cond   isa.Cond
	imm    int64
}

// sbop is one host micro-op. A fused op carries a second guest sub-op in the
// *2 fields; guest/guest2 are the guest indices used for exit accounting and
// pc/pc2 the guest addresses used for divergence replay and fault messages.
type sbop struct {
	fn         sbFn
	imm        int64
	imm2       int64
	pc, pc2    int32
	next       int32 // recorded successor (fast-path compare for ret/indirect)
	guest      int32
	guest2     int32
	a, b, c    uint8
	a2, b2, c2 uint8
	flag       bool // guard: required taken-ness
	cond       isa.Cond
}

// sbFn executes one host micro-op; false stops the block with the exit
// parked in m.sbx.
type sbFn func(m *Machine, op *sbop) bool

// Superblock is a compiled tier-2 trace, immutable after compilation and
// safe to publish to a running mutator via an atomic pointer store.
type Superblock struct {
	code   []sbop
	guards []sbGuard
	nGuest int32
	exitPC int32
	// checkPfx[g] is the number of in-body runtime checks (branch guards,
	// memory bounds tests, control fast-path compares) attributed to guest
	// indices < g; len nGuest+1. Used for guards-executed accounting.
	checkPfx []int32
}

// NGuest returns the number of guest steps the superblock covers.
func (sb *Superblock) NGuest() int { return int(sb.nGuest) }

// NumGuards returns the number of hoisted entry guards.
func (sb *Superblock) NumGuards() int { return len(sb.guards) }

// NumOps returns the number of host micro-ops in the body.
func (sb *Superblock) NumOps() int { return len(sb.code) }

// ExitPC returns the guest address a completed run continues at.
func (sb *Superblock) ExitPC() int32 { return sb.exitPC }

// BodyChecksAll returns the number of in-body runtime checks a full
// on-trace completion executes. Entry guards are not included; the caller
// accounts those per dispatch via NumGuards (they run even when they fail).
func (sb *Superblock) BodyChecksAll() int64 {
	return int64(sb.checkPfx[len(sb.checkPfx)-1])
}

// BodyChecksUpTo returns the in-body runtime checks attributed to the first
// g completed guest steps. The check that stopped an early exit (a failed
// guard or bounds test at index g) is not included.
func (sb *Superblock) BodyChecksUpTo(g int32) int64 {
	if g < 0 {
		return 0
	}
	if int(g) >= len(sb.checkPfx) {
		g = int32(len(sb.checkPfx) - 1)
	}
	return int64(sb.checkPfx[g])
}

// GuardsPass evaluates the hoisted entry guards against the machine's
// current registers. A false result means the superblock must not run this
// dispatch; the caller falls back to the per-step tier-1 loop, which will
// side-exit at the guard's own position with precise state. The check is
// pure: registers are only read.
//
//netpathvet:dispatch
func (sb *Superblock) GuardsPass(m *Machine) bool {
	for i := range sb.guards {
		g := &sb.guards[i]
		rhs := g.imm
		if !g.useImm {
			rhs = m.Reg[g.b]
		}
		if g.cond.Eval(m.Reg[g.a], rhs) != g.want {
			return false
		}
	}
	return true
}

// sbExec parks the exit state of a stopped superblock. It lives on the
// Machine (not the RunSuperblock frame) so handler calls stay free of
// escaping arguments — the dispatch path must not allocate.
type sbExec struct {
	kind  uint8
	guest int32
	pc    int32
	next  int32
}

const (
	sbExitDiverge = iota + 1
	sbExitFault
)

// RunSuperblock executes sb. The caller must ensure the machine is not
// halted, m.PC equals the superblock's entry address, and (for exact step
// budgets) that NGuest more steps fit the budget; the block is not
// preemptible inside. Architectural effects are exactly those of executing
// the recorded guest steps one at a time on the per-step engines, except
// that on-trace control transfers emit no branch events (the caller accounts
// them from the recorded spec).
//
//netpathvet:dispatch
func (m *Machine) RunSuperblock(sb *Superblock) SBExit {
	code := sb.code
	for i := range code {
		op := &code[i]
		if !op.fn(m, op) {
			x := &m.sbx
			if x.kind == sbExitDiverge {
				m.PC = int(x.next)
				return SBExit{Guest: x.guest, NextPC: int(x.next)}
			}
			return SBExit{Guest: x.guest, Err: m.SettleExec(int(x.pc), stop)}
		}
	}
	m.Steps += int64(sb.nGuest)
	m.PC = int(sb.exitPC)
	return SBExit{Guest: sb.nGuest, NextPC: int(sb.exitPC), Completed: true}
}

// sbDiverge replays the guest op at pc through the per-step machinery after
// its superblock fast path failed: ExecAt counts the step, emits the branch
// event, performs stack effects, and raises any fault with the exact tier-1
// message. The guest-step prefix is settled first so m.Steps is exact at the
// moment the op (and its fault accounting) runs.
func (m *Machine) sbDiverge(pc, guest int32) bool {
	m.Steps += int64(guest)
	npc := m.ExecAt(int(pc))
	x := &m.sbx
	x.guest = guest
	if npc < 0 {
		x.kind = sbExitFault
		x.pc = pc
	} else {
		x.kind = sbExitDiverge
		x.next = int32(npc)
	}
	return false
}

// sbFaultMem raises the out-of-range memory fault from a superblock load or
// store handler, with the step prefix (including the faulting step, which
// the per-step engines count) settled first.
//
//netpathvet:cold
func (m *Machine) sbFaultMem(pc, guest int32, addr int64) bool {
	m.Steps += int64(guest) + 1
	m.trapf(FaultMemOOB, pc, "vm: memory access %d out of range [0,%d) at pc %d", addr, len(m.Mem), pc)
	m.sbx.kind = sbExitFault
	m.sbx.pc = pc
	m.sbx.guest = guest
	return false
}

// Straight-line handlers. These mirror the tier-1 micro-op handlers minus
// the successor link: a straight op inside a superblock cannot diverge.

func sbMovI(m *Machine, op *sbop) bool { m.Reg[op.a] = op.imm; return true }
func sbMov(m *Machine, op *sbop) bool  { m.Reg[op.a] = m.Reg[op.b]; return true }
func sbAdd(m *Machine, op *sbop) bool  { m.Reg[op.a] = m.Reg[op.b] + m.Reg[op.c]; return true }
func sbSub(m *Machine, op *sbop) bool  { m.Reg[op.a] = m.Reg[op.b] - m.Reg[op.c]; return true }
func sbMul(m *Machine, op *sbop) bool  { m.Reg[op.a] = m.Reg[op.b] * m.Reg[op.c]; return true }

func sbDiv(m *Machine, op *sbop) bool {
	if d := m.Reg[op.c]; d != 0 {
		m.Reg[op.a] = m.Reg[op.b] / d
	} else {
		m.Reg[op.a] = 0
	}
	return true
}

func sbRem(m *Machine, op *sbop) bool {
	if d := m.Reg[op.c]; d != 0 {
		m.Reg[op.a] = m.Reg[op.b] % d
	} else {
		m.Reg[op.a] = 0
	}
	return true
}

func sbAnd(m *Machine, op *sbop) bool { m.Reg[op.a] = m.Reg[op.b] & m.Reg[op.c]; return true }
func sbOr(m *Machine, op *sbop) bool  { m.Reg[op.a] = m.Reg[op.b] | m.Reg[op.c]; return true }
func sbXor(m *Machine, op *sbop) bool { m.Reg[op.a] = m.Reg[op.b] ^ m.Reg[op.c]; return true }

func sbShl(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] << (uint(m.Reg[op.c]) & 63)
	return true
}

func sbShr(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] >> (uint(m.Reg[op.c]) & 63)
	return true
}

func sbAddI(m *Machine, op *sbop) bool { m.Reg[op.a] = m.Reg[op.b] + op.imm; return true }
func sbMulI(m *Machine, op *sbop) bool { m.Reg[op.a] = m.Reg[op.b] * op.imm; return true }
func sbAndI(m *Machine, op *sbop) bool { m.Reg[op.a] = m.Reg[op.b] & op.imm; return true }

func sbRemI(m *Machine, op *sbop) bool {
	if op.imm != 0 {
		m.Reg[op.a] = m.Reg[op.b] % op.imm
	} else {
		m.Reg[op.a] = 0
	}
	return true
}

func sbLoad(m *Machine, op *sbop) bool {
	a := m.Reg[op.b] + op.imm
	if uint64(a) >= uint64(len(m.Mem)) {
		return m.sbFaultMem(op.pc, op.guest, a)
	}
	m.Reg[op.a] = m.Mem[a]
	return true
}

func sbStore(m *Machine, op *sbop) bool {
	a := m.Reg[op.b] + op.imm
	if uint64(a) >= uint64(len(m.Mem)) {
		return m.sbFaultMem(op.pc, op.guest, a)
	}
	m.Mem[a] = m.Reg[op.a]
	return true
}

// Control handlers. The recorded successor is the fast path; anything else
// replays through sbDiverge. A recorded target was valid when the trace ran
// and the program is immutable, so the fast paths re-validate only what
// depends on runtime state (stack depth, stack top, register values).

func sbCall(m *Machine, op *sbop) bool {
	if len(m.stack) < MaxCallDepth {
		m.stack = append(m.stack, int64(op.pc)+1)
		return true
	}
	return m.sbDiverge(op.pc, op.guest) // exact overflow fault via ExecAt
}

func sbRet(m *Machine, op *sbop) bool {
	if n := len(m.stack); n > 0 && m.stack[n-1] == int64(op.next) {
		m.stack = m.stack[:n-1]
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbJmpInd(m *Machine, op *sbop) bool {
	if m.Reg[op.a] == int64(op.next) {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbCallInd(m *Machine, op *sbop) bool {
	if m.Reg[op.a] == int64(op.next) && len(m.stack) < MaxCallDepth {
		m.stack = append(m.stack, int64(op.pc)+1)
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

// Guard handlers: the compare and the branch fused into one event-free
// dispatch, specialized per condition. flag is the recorded taken-ness; a
// mismatching outcome replays the branch through ExecAt (event, step count,
// actual target) and exits.

func sbGuardEqRR(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] == m.Reg[op.b]) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardNeRR(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] != m.Reg[op.b]) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardLtRR(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] < m.Reg[op.b]) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardLeRR(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] <= m.Reg[op.b]) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardGtRR(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] > m.Reg[op.b]) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardGeRR(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] >= m.Reg[op.b]) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardEqRI(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] == op.imm) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardNeRI(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] != op.imm) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardLtRI(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] < op.imm) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardLeRI(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] <= op.imm) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardGtRI(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] > op.imm) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

func sbGuardGeRI(m *Machine, op *sbop) bool {
	if (m.Reg[op.a] >= op.imm) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc, op.guest)
}

var sbGuardRRFns = [6]sbFn{sbGuardEqRR, sbGuardNeRR, sbGuardLtRR, sbGuardLeRR, sbGuardGtRR, sbGuardGeRR}
var sbGuardRIFns = [6]sbFn{sbGuardEqRI, sbGuardNeRI, sbGuardLtRI, sbGuardLeRI, sbGuardGtRI, sbGuardGeRI}

// Fused load+ALU handlers: the load's destination (and bounds check) then
// the ALU op, two guest steps in one dispatch. A load fault exits at the
// first sub-op with the second unapplied, exactly as per-step execution.

func sbLoadAlu(m *Machine, op *sbop) (int64, bool) {
	a := m.Reg[op.b] + op.imm
	if uint64(a) >= uint64(len(m.Mem)) {
		return 0, m.sbFaultMem(op.pc, op.guest, a)
	}
	m.Reg[op.a] = m.Mem[a]
	return a, true
}

func sbLoadAdd(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] + m.Reg[op.c2]
	return true
}

func sbLoadSub(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] - m.Reg[op.c2]
	return true
}

func sbLoadMul(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] * m.Reg[op.c2]
	return true
}

func sbLoadAnd(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] & m.Reg[op.c2]
	return true
}

func sbLoadOr(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] | m.Reg[op.c2]
	return true
}

func sbLoadXor(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] ^ m.Reg[op.c2]
	return true
}

func sbLoadAddI(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] + op.imm2
	return true
}

func sbLoadMulI(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] * op.imm2
	return true
}

func sbLoadAndI(m *Machine, op *sbop) bool {
	if _, ok := sbLoadAlu(m, op); !ok {
		return false
	}
	m.Reg[op.a2] = m.Reg[op.b2] & op.imm2
	return true
}

// Fused ALU+store handlers: the ALU result lands, then the store (with its
// bounds check) commits it. A store fault exits at the second sub-op with
// the ALU effect applied — the per-step order.

func sbStore2(m *Machine, op *sbop) bool {
	a := m.Reg[op.b2] + op.imm2
	if uint64(a) >= uint64(len(m.Mem)) {
		return m.sbFaultMem(op.pc2, op.guest2, a)
	}
	m.Mem[a] = m.Reg[op.a2]
	return true
}

func sbAddStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] + m.Reg[op.c]
	return sbStore2(m, op)
}

func sbSubStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] - m.Reg[op.c]
	return sbStore2(m, op)
}

func sbMulStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] * m.Reg[op.c]
	return sbStore2(m, op)
}

func sbAndStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] & m.Reg[op.c]
	return sbStore2(m, op)
}

func sbOrStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] | m.Reg[op.c]
	return sbStore2(m, op)
}

func sbXorStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] ^ m.Reg[op.c]
	return sbStore2(m, op)
}

func sbAddIStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] + op.imm
	return sbStore2(m, op)
}

func sbMulIStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] * op.imm
	return sbStore2(m, op)
}

func sbAndIStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] & op.imm
	return sbStore2(m, op)
}

func sbMovStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b]
	return sbStore2(m, op)
}

func sbMovIStore(m *Machine, op *sbop) bool {
	m.Reg[op.a] = op.imm
	return sbStore2(m, op)
}

// Fused ALU+guard handlers (the loop-counter idiom: update then compare and
// branch). The guard side evaluates the condition generically — still one
// dispatch for two guest steps.

func sbGuard2(m *Machine, op *sbop) bool {
	rhs := op.imm2
	if op.c2 == 0 { // register form; c2 is the form flag, b2 the rhs register
		rhs = m.Reg[op.b2]
	}
	if op.cond.Eval(m.Reg[op.a2], rhs) == op.flag {
		return true
	}
	return m.sbDiverge(op.pc2, op.guest2)
}

func sbAddIGuard(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] + op.imm
	return sbGuard2(m, op)
}

func sbAddGuard(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] + m.Reg[op.c]
	return sbGuard2(m, op)
}

func sbSubGuard(m *Machine, op *sbop) bool {
	m.Reg[op.a] = m.Reg[op.b] - m.Reg[op.c]
	return sbGuard2(m, op)
}

// sbStraight maps straight-line opcodes to their single handlers.
var sbStraight = map[isa.Op]sbFn{
	isa.MovI: sbMovI, isa.Mov: sbMov,
	isa.Add: sbAdd, isa.Sub: sbSub, isa.Mul: sbMul, isa.Div: sbDiv, isa.Rem: sbRem,
	isa.And: sbAnd, isa.Or: sbOr, isa.Xor: sbXor, isa.Shl: sbShl, isa.Shr: sbShr,
	isa.AddI: sbAddI, isa.MulI: sbMulI, isa.AndI: sbAndI, isa.RemI: sbRemI,
	isa.Load: sbLoad, isa.Store: sbStore,
}

// sbLoadAluFns maps the second op of a load+ALU pair to its fused handler.
var sbLoadAluFns = map[isa.Op]sbFn{
	isa.Add: sbLoadAdd, isa.Sub: sbLoadSub, isa.Mul: sbLoadMul,
	isa.And: sbLoadAnd, isa.Or: sbLoadOr, isa.Xor: sbLoadXor,
	isa.AddI: sbLoadAddI, isa.MulI: sbLoadMulI, isa.AndI: sbLoadAndI,
}

// sbAluStoreFns maps the first op of an ALU+store pair to its fused handler.
var sbAluStoreFns = map[isa.Op]sbFn{
	isa.Add: sbAddStore, isa.Sub: sbSubStore, isa.Mul: sbMulStore,
	isa.And: sbAndStore, isa.Or: sbOrStore, isa.Xor: sbXorStore,
	isa.AddI: sbAddIStore, isa.MulI: sbMulIStore, isa.AndI: sbAndIStore,
	isa.Mov: sbMovStore, isa.MovI: sbMovIStore,
}

// sbAluGuardFns maps the first op of an ALU+guard pair to its fused handler.
var sbAluGuardFns = map[isa.Op]sbFn{
	isa.AddI: sbAddIGuard, isa.Add: sbAddGuard, isa.Sub: sbSubGuard,
}

// Lowering classes per guest step.
const (
	clSkip = iota
	clStraight
	clGuardRR
	clGuardRI
	clCall
	clRet
	clJmpInd
	clCallInd
)

// sbWrites returns the register a spec step writes, if any (the guest-level
// write set used for guard hoisting and fact invalidation).
func sbWrites(in isa.Instr) (uint8, bool) {
	switch in.Op {
	case isa.MovI, isa.Mov, isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem,
		isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
		isa.AddI, isa.MulI, isa.AndI, isa.RemI, isa.Load:
		return in.A, true
	}
	return 0, false
}

// guardFact identifies a guard outcome that is known to hold at a program
// point: condition, operand form, and recorded direction.
type guardFact struct {
	a, b   uint8
	useImm bool
	want   bool
	cond   isa.Cond
	imm    int64
}

// CompileSuperblock lowers a recorded guest trace to a superblock. It is a
// pure function of the spec (no Machine state), so it can run on a
// background worker. progLen bounds the recorded addresses; a spec the
// compiler cannot prove it understands — malformed instructions, successors
// inconsistent with the opcode, a Halt — is refused with an error rather
// than compiled approximately, because an executed superblock must be
// architecturally indistinguishable from per-step execution.
//
//netpathvet:cold
func CompileSuperblock(spec []SBStep, progLen int) (*Superblock, SBStats, error) {
	return CompileSuperblockFacts(spec, progLen, SBFacts{})
}

// CompileSuperblockFacts is CompileSuperblock with statically proven facts:
// branches the analysis decided compile to nothing (a contradicting spec is
// refused), and memory ops proven in-bounds lower to check-free handlers.
//
//netpathvet:cold
func CompileSuperblockFacts(spec []SBStep, progLen int, facts SBFacts) (*Superblock, SBStats, error) {
	var stats SBStats
	n := len(spec)
	if n == 0 {
		return nil, stats, errors.New("vm: empty superblock spec")
	}

	// Validate and classify each guest step.
	cls := make([]uint8, n)
	for i := range spec {
		st := &spec[i]
		in := st.In
		pc, next := int(st.PC), int(st.Next)
		if pc < 0 || pc >= progLen || next < 0 || next >= progLen {
			return nil, stats, fmt.Errorf("vm: superblock step %d out of program range (pc %d, next %d)", i, pc, next)
		}
		if err := in.Validate(); err != nil {
			return nil, stats, fmt.Errorf("vm: superblock step %d: %w", i, err)
		}
		switch in.Op {
		case isa.Halt:
			return nil, stats, fmt.Errorf("vm: superblock step %d is halt", i)
		case isa.Nop:
			if next != pc+1 {
				return nil, stats, fmt.Errorf("vm: superblock step %d: nop successor %d != pc+1", i, next)
			}
			cls[i] = clSkip
		case isa.Jmp:
			if next != int(in.Target) {
				return nil, stats, fmt.Errorf("vm: superblock step %d: jmp successor %d != target %d", i, next, in.Target)
			}
			cls[i] = clSkip
		case isa.Br, isa.BrI:
			if next != int(in.Target) && next != pc+1 {
				return nil, stats, fmt.Errorf("vm: superblock step %d: branch successor %d matches neither target nor fallthrough", i, next)
			}
			if int(in.Target) == pc+1 {
				// Both outcomes share the successor: no divergence possible.
				cls[i] = clSkip
			} else if taken, ok := facts.decided(st.PC); ok {
				// Statically decided branch: every execution reaching this
				// pc resolves it one way, so no guard is needed. A recorded
				// direction disagreeing with the proof means the spec (or
				// the fact provider) is corrupt — refuse to compile.
				if taken != (next == int(in.Target)) {
					return nil, stats, fmt.Errorf("vm: superblock step %d: recorded direction contradicts statically decided branch at pc %d", i, pc)
				}
				cls[i] = clSkip
				stats.Implied++
			} else if in.Op == isa.Br {
				cls[i] = clGuardRR
			} else {
				cls[i] = clGuardRI
			}
		case isa.Call:
			if next != int(in.Target) {
				return nil, stats, fmt.Errorf("vm: superblock step %d: call successor %d != target %d", i, next, in.Target)
			}
			cls[i] = clCall
		case isa.Ret:
			cls[i] = clRet
		case isa.JmpInd:
			cls[i] = clJmpInd
		case isa.CallInd:
			cls[i] = clCallInd
		default:
			if next != pc+1 {
				return nil, stats, fmt.Errorf("vm: superblock step %d: straight-line successor %d != pc+1", i, next)
			}
			cls[i] = clStraight
		}
	}

	// Guard planning: hoist entry-invariant guards, eliminate guards exactly
	// implied by an earlier one. Facts die when a source register is written.
	var guards []sbGuard
	var written [isa.NumRegs]bool
	gfacts := map[guardFact]bool{}
	invalidate := func(r uint8) {
		for f := range gfacts {
			if f.a == r || (!f.useImm && f.b == r) {
				delete(gfacts, f)
			}
		}
	}
	for i := range spec {
		in := spec[i].In
		if cls[i] == clGuardRR || cls[i] == clGuardRI {
			f := guardFact{
				a:      in.A,
				useImm: cls[i] == clGuardRI,
				want:   spec[i].Next == in.Target,
				cond:   in.Cond,
			}
			if f.useImm {
				f.imm = in.Imm
			} else {
				f.b = in.B
			}
			switch {
			case gfacts[f]:
				cls[i] = clSkip
				stats.Redundant++
			case !written[in.A] && (f.useImm || !written[in.B]):
				guards = append(guards, sbGuard{
					a: f.a, b: f.b, useImm: f.useImm, want: f.want, cond: f.cond, imm: f.imm,
				})
				gfacts[f] = true
				cls[i] = clSkip
				stats.Hoisted++
			default:
				gfacts[f] = true
			}
		}
		if r, ok := sbWrites(in); ok {
			written[r] = true
			invalidate(r)
		}
	}

	// Drop entry guards implied by the kept entry guards before them: a
	// register state that passes the kept prefix cannot fail the dropped
	// guard, so the body's assumptions still hold.
	guards = pruneImpliedGuards(guards, &stats)

	// Lower to host ops, fusing adjacent executable pairs. Skipped steps
	// execute nothing, so fusion may reach across them. checkAt records the
	// runtime checks each guest index contributes, for the guards-executed
	// accounting exposed via BodyChecksAll/BodyChecksUpTo.
	code := make([]sbop, 0, n)
	checkAt := make([]int32, n)
	nextEmit := func(from int) int {
		for j := from; j < n; j++ {
			if cls[j] != clSkip {
				return j
			}
		}
		return -1
	}
	for i := 0; i < n; {
		if cls[i] == clSkip {
			stats.Skipped++
			i++
			continue
		}
		if j := nextEmit(i + 1); j >= 0 {
			if op, ok := fusePair(spec, cls, i, j, facts, &stats, checkAt); ok {
				code = append(code, op)
				stats.Fused++
				stats.Skipped += j - i - 1 // skips the fusion reached across
				i = j + 1
				continue
			}
		}
		code = append(code, lowerSingle(&spec[i], cls[i], i, facts, &stats, checkAt))
		i++
	}

	checkPfx := make([]int32, n+1)
	for i := 0; i < n; i++ {
		checkPfx[i+1] = checkPfx[i] + checkAt[i]
	}

	sb := &Superblock{
		code:     code,
		guards:   guards,
		nGuest:   int32(n),
		exitPC:   spec[n-1].Next,
		checkPfx: checkPfx,
	}
	return sb, stats, nil
}

// guardInterval returns the satisfied set of an immediate-form guard as an
// interval, when it has one (every effective condition except Ne).
func guardInterval(g sbGuard) (lo, hi int64, ok bool) {
	cond, want := g.cond, g.want
	if !want {
		switch cond {
		case isa.Eq:
			cond = isa.Ne
		case isa.Ne:
			cond = isa.Eq
		case isa.Lt:
			cond = isa.Ge
		case isa.Le:
			cond = isa.Gt
		case isa.Gt:
			cond = isa.Le
		case isa.Ge:
			cond = isa.Lt
		}
	}
	switch cond {
	case isa.Eq:
		return g.imm, g.imm, true
	case isa.Lt:
		if g.imm == minInt64 {
			return 0, 0, false // never satisfiable; keep the guard
		}
		return minInt64, g.imm - 1, true
	case isa.Le:
		return minInt64, g.imm, true
	case isa.Gt:
		if g.imm == maxInt64 {
			return 0, 0, false
		}
		return g.imm + 1, maxInt64, true
	case isa.Ge:
		return g.imm, maxInt64, true
	}
	return 0, 0, false // Ne: excluded-point form
}

// guardExcludes returns the single value an effective-Ne guard rules out.
func guardExcludes(g sbGuard) (int64, bool) {
	if (g.cond == isa.Ne && g.want) || (g.cond == isa.Eq && !g.want) {
		return g.imm, true
	}
	return 0, false
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// pruneImpliedGuards removes immediate-form entry guards implied by the
// kept entry guards preceding them on the same register. Register-form
// guards are kept untouched (their truth depends on two registers).
// Dropping a guard can only widen the set of states that enter the
// superblock up to the set the remaining guards admit — and implication
// means every such state satisfies the dropped guard too.
func pruneImpliedGuards(guards []sbGuard, stats *SBStats) []sbGuard {
	type bound struct {
		lo, hi int64
		has    bool
	}
	var cons [isa.NumRegs]bound
	kept := guards[:0]
	for _, g := range guards {
		if !g.useImm {
			kept = append(kept, g)
			continue
		}
		c := &cons[g.a]
		lo, hi, isIv := guardInterval(g)
		if c.has {
			if isIv && c.lo >= lo && c.hi <= hi {
				stats.Implied++
				continue
			}
			if excl, ok := guardExcludes(g); ok && (excl < c.lo || excl > c.hi) {
				stats.Implied++
				continue
			}
		}
		if isIv {
			if !c.has {
				*c = bound{lo: lo, hi: hi, has: true}
			} else {
				if lo > c.lo {
					c.lo = lo
				}
				if hi < c.hi {
					c.hi = hi
				}
			}
		}
		kept = append(kept, g)
	}
	return kept
}

// lowerSingle builds the host op for one unfused guest step, dropping the
// bounds check from memory ops the facts prove in-bounds.
func lowerSingle(st *SBStep, class uint8, guest int, facts SBFacts, stats *SBStats, checkAt []int32) sbop {
	in := st.In
	op := sbop{
		imm: in.Imm, pc: st.PC, next: st.Next, guest: int32(guest),
		a: in.A, b: in.B, c: in.C,
	}
	switch class {
	case clStraight:
		op.fn = sbStraight[in.Op]
		switch in.Op {
		case isa.Load, isa.Store:
			if facts.inBounds(st.PC) {
				if in.Op == isa.Load {
					op.fn = sbLoadNC
				} else {
					op.fn = sbStoreNC
				}
				stats.BoundsElided++
			} else {
				checkAt[guest]++
			}
		}
	case clGuardRR:
		op.fn = sbGuardRRFns[in.Cond]
		op.flag = st.Next == in.Target
		checkAt[guest]++
	case clGuardRI:
		op.fn = sbGuardRIFns[in.Cond]
		op.flag = st.Next == in.Target
		checkAt[guest]++
	case clCall:
		op.fn = sbCall
		checkAt[guest]++
	case clRet:
		op.fn = sbRet
		checkAt[guest]++
	case clJmpInd:
		op.fn = sbJmpInd
		checkAt[guest]++
	case clCallInd:
		op.fn = sbCallInd
		checkAt[guest]++
	}
	return op
}

// fusePair attempts to merge guest steps i and j (the next two executable
// steps) into one fused host op, with the memory sub-op's bounds check
// elided when the facts prove its address in-bounds.
func fusePair(spec []SBStep, cls []uint8, i, j int, facts SBFacts, stats *SBStats, checkAt []int32) (sbop, bool) {
	a, b := &spec[i], &spec[j]
	var fn sbFn
	elide := false
	switch {
	case cls[i] == clStraight && a.In.Op == isa.Load && cls[j] == clStraight:
		fn = sbLoadAluFns[b.In.Op]
		if fn != nil {
			if facts.inBounds(a.PC) {
				fn = sbLoadAluFnsNC[b.In.Op]
				elide = true
			} else {
				checkAt[i]++
			}
		}
	case cls[i] == clStraight && b.In.Op == isa.Store && cls[j] == clStraight:
		fn = sbAluStoreFns[a.In.Op]
		if fn != nil {
			if facts.inBounds(b.PC) {
				fn = sbAluStoreFnsNC[a.In.Op]
				elide = true
			} else {
				checkAt[j]++
			}
		}
	case cls[i] == clStraight && (cls[j] == clGuardRR || cls[j] == clGuardRI):
		fn = sbAluGuardFns[a.In.Op]
		if fn != nil {
			checkAt[j]++
		}
	}
	if fn == nil {
		return sbop{}, false
	}
	if elide {
		stats.BoundsElided++
	}
	op := sbop{
		fn:  fn,
		imm: a.In.Imm, imm2: b.In.Imm,
		pc: a.PC, pc2: b.PC, next: b.Next,
		guest: int32(i), guest2: int32(j),
		a: a.In.A, b: a.In.B, c: a.In.C,
		a2: b.In.A, b2: b.In.B, c2: b.In.C,
	}
	if cls[j] == clGuardRR || cls[j] == clGuardRI {
		op.cond = b.In.Cond
		op.flag = b.Next == b.In.Target
		if cls[j] == clGuardRI {
			op.c2 = 1 // immediate form marker for sbGuard2
		} else {
			op.c2 = 0
		}
	}
	return op, true
}
