package vm

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/randprog"
)

// recordTrace steps m, recording up to max guest steps with their observed
// successors. Recording stops before a Halt and discards a faulting step
// (which has no successor).
func recordTrace(t *testing.T, m *Machine, max int) []SBStep {
	t.Helper()
	var spec []SBStep
	for len(spec) < max && !m.Halted {
		pc := m.PC
		in := m.Prog.Instrs[pc]
		if in.Op == isa.Halt {
			break
		}
		if err := m.Step(); err != nil {
			break
		}
		spec = append(spec, SBStep{In: in, PC: int32(pc), Next: int32(m.PC)})
	}
	return spec
}

// stepTo advances m until it has executed exactly steps instructions,
// returning the first error.
func stepTo(m *Machine, steps int64) error {
	for m.Steps < steps && !m.Halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

func compareMachines(t *testing.T, got, want *Machine, label string) {
	t.Helper()
	if got.Steps != want.Steps {
		t.Errorf("%s: Steps = %d, want %d", label, got.Steps, want.Steps)
	}
	if got.PC != want.PC {
		t.Errorf("%s: PC = %d, want %d", label, got.PC, want.PC)
	}
	if got.Halted != want.Halted {
		t.Errorf("%s: Halted = %v, want %v", label, got.Halted, want.Halted)
	}
	if got.Reg != want.Reg {
		t.Errorf("%s: registers differ:\n got %v\nwant %v", label, got.Reg, want.Reg)
	}
	for i := range want.Mem {
		if got.Mem[i] != want.Mem[i] {
			t.Errorf("%s: Mem[%d] = %d, want %d", label, i, got.Mem[i], want.Mem[i])
			break
		}
	}
}

func buildLoop(t *testing.T, n int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("sbloop")
	b.SetMemSize(4)
	f := b.Func("main")
	f.MovI(0, 0)
	f.Label("loop")
	f.AddI(0, 0, 1)
	f.BrI(isa.Lt, 0, n, "loop")
	f.Store(0, 1, 0)
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// TestSuperblockLoop compiles one loop iteration and executes it to
// completion repeatedly, then through the final diverging iteration,
// comparing architectural state with a per-step reference at every exit.
func TestSuperblockLoop(t *testing.T) {
	const n = 1000
	p := buildLoop(t, n)

	rec := New(p)
	// Past MovI and the builder's fallthrough Jmp, at the loop head.
	if err := stepTo(rec, 2); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	spec := recordTrace(t, rec, 2) // AddI ; BrI (taken)
	if len(spec) != 2 {
		t.Fatalf("recorded %d steps, want 2", len(spec))
	}

	sb, stats, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}
	// AddI+BrI is the canonical cmp+branch fusion: one host op, no hoist
	// (the guard reads the register the AddI writes).
	if stats.Fused != 1 || sb.NumOps() != 1 || sb.NumGuards() != 0 {
		t.Fatalf("stats = %+v, ops = %d, guards = %d; want one fused op", stats, sb.NumOps(), sb.NumGuards())
	}
	if sb.NGuest() != 2 {
		t.Fatalf("NGuest = %d, want 2", sb.NGuest())
	}

	m := New(p)
	ref := New(p)
	if err := stepTo(m, 2); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	completions := 0
	for {
		if !sb.GuardsPass(m) {
			t.Fatal("entry guards failed; expected none")
		}
		x := m.RunSuperblock(sb)
		if x.Err != nil {
			t.Fatalf("unexpected fault: %v", x.Err)
		}
		if x.Completed {
			completions++
		} else {
			// The final iteration diverges at the fused guard sub-op: the
			// AddI completed on-trace, the branch replayed off-trace.
			if x.Guest != 1 {
				t.Errorf("diverging Guest = %d, want 1", x.Guest)
			}
			if err := stepTo(ref, m.Steps); err != nil {
				t.Fatalf("reference: %v", err)
			}
			compareMachines(t, m, ref, "at divergence")
			break
		}
	}
	if completions != n-1 {
		t.Errorf("completions = %d, want %d", completions, n-1)
	}

	// Finish both and compare the final state.
	if err := m.Run(0); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := ref.Run(0); err != nil {
		t.Fatalf("reference finish: %v", err)
	}
	compareMachines(t, m, ref, "final")
	if m.Mem[0] != n {
		t.Errorf("Mem[0] = %d, want %d", m.Mem[0], n)
	}
}

// TestSuperblockGuardHoisting verifies that a guard whose operands are not
// written earlier in the block moves to the entry check, and that the entry
// check is a pure read that correctly gates execution.
func TestSuperblockGuardHoisting(t *testing.T) {
	b := prog.NewBuilder("hoist")
	b.SetMemSize(4)
	f := b.Func("main")
	f.Label("top")
	f.BrI(isa.Ge, 1, 100, "done") // guard: r1 < 100 on the hot path
	f.AddI(0, 0, 1)
	f.BrI(isa.Ge, 1, 100, "done") // identical guard: redundant
	f.AddI(0, 0, 3)
	f.Jmp("top")
	f.Label("done")
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	rec := New(p)
	spec := recordTrace(t, rec, 5) // one full iteration incl. the back jump
	if len(spec) != 5 {
		t.Fatalf("recorded %d steps, want 5", len(spec))
	}
	sb, stats, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}
	if stats.Hoisted != 1 || stats.Redundant != 1 || sb.NumGuards() != 1 {
		t.Fatalf("stats = %+v, guards = %d; want 1 hoisted + 1 redundant", stats, sb.NumGuards())
	}
	// Both branches and the jump vanish; the two AddIs remain.
	if sb.NumOps() != 2 {
		t.Fatalf("NumOps = %d, want 2", sb.NumOps())
	}

	m := New(p)
	if !sb.GuardsPass(m) {
		t.Fatal("guards should pass with r1 = 0")
	}
	m.Reg[1] = 100
	save := *m
	saveReg := m.Reg
	if sb.GuardsPass(m) {
		t.Fatal("guards should fail with r1 = 100")
	}
	// The failed check must not have touched machine state.
	if m.Reg != saveReg || m.Steps != save.Steps || m.PC != save.PC {
		t.Error("GuardsPass mutated machine state")
	}

	// With guards passing, a completed run equals five reference steps.
	m.Reg[1] = 0
	ref := New(p)
	x := m.RunSuperblock(sb)
	if !x.Completed {
		t.Fatalf("exit = %+v, want completion", x)
	}
	if err := stepTo(ref, m.Steps); err != nil {
		t.Fatalf("reference: %v", err)
	}
	compareMachines(t, m, ref, "after completion")
}

// TestSuperblockFault drives a compiled block into a load fault and checks
// the fault message, pinned PC, step count, and register state match the
// per-step engine exactly.
func TestSuperblockFault(t *testing.T) {
	b := prog.NewBuilder("oob")
	b.SetMemSize(8)
	f := b.Func("main")
	f.Label("top")
	f.Load(2, 0, 0) // r2 = Mem[r0]
	f.AddI(0, 0, 1) // r0++
	f.Jmp("top")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	rec := New(p)
	spec := recordTrace(t, rec, 3)
	if len(spec) != 3 {
		t.Fatalf("recorded %d steps, want 3", len(spec))
	}
	sb, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}

	m := New(p)
	ref := New(p)
	var sbErr error
	for sbErr == nil {
		x := m.RunSuperblock(sb)
		sbErr = x.Err
		if x.Err == nil && !x.Completed {
			t.Fatalf("unexpected divergence: %+v", x)
		}
	}
	refErr := stepTo(ref, m.Steps)
	if refErr == nil || sbErr.Error() != refErr.Error() {
		t.Fatalf("fault mismatch:\n superblock: %v\n reference:  %v", sbErr, refErr)
	}
	compareMachines(t, m, ref, "at fault")
	if !m.Halted {
		t.Error("machine not halted after fault")
	}
}

// TestSuperblockIndirectDivergence records a JmpInd going one way, then
// re-runs the block with the register pointing elsewhere: the indirect jump
// must replay through the per-step engine (emitting its branch event) and
// exit with the actual target.
func TestSuperblockIndirectDivergence(t *testing.T) {
	b := prog.NewBuilder("ind")
	b.SetMemSize(4)
	b.SetMemLabel(0, "a")
	b.SetMemLabel(1, "b")
	f := b.Func("main")
	f.Load(5, 6, 0) // r5 = Mem[r6] (r6 selects the target)
	f.JmpInd(5)
	f.Label("a")
	f.MovI(1, 10)
	f.Halt()
	f.Label("b")
	f.MovI(1, 20)
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	rec := New(p)
	spec := recordTrace(t, rec, 2) // Load ; JmpInd -> "a"
	if len(spec) != 2 {
		t.Fatalf("recorded %d steps, want 2", len(spec))
	}
	sb, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}

	// On-trace: same machine state completes.
	m := New(p)
	if x := m.RunSuperblock(sb); !x.Completed {
		t.Fatalf("exit = %+v, want completion", x)
	}

	// Off-trace: select target "b"; the block diverges at the JmpInd.
	m = New(p)
	ref := New(p)
	m.Reg[6], ref.Reg[6] = 1, 1
	var events int
	m.SetListener(func(BranchEvent) { events++ })
	x := m.RunSuperblock(sb)
	if x.Completed || x.Err != nil {
		t.Fatalf("exit = %+v, want divergence", x)
	}
	if x.Guest != 1 {
		t.Errorf("Guest = %d, want 1", x.Guest)
	}
	if events != 1 {
		t.Errorf("branch events = %d, want 1 (the diverging transfer only)", events)
	}
	if err := stepTo(ref, m.Steps); err != nil {
		t.Fatalf("reference: %v", err)
	}
	compareMachines(t, m, ref, "at divergence")
}

// TestSuperblockCallRet covers the call/return fast paths: the recorded
// call pushes, the recorded ret pops when the stack top matches, and a
// mismatched return address diverges precisely.
func TestSuperblockCallRet(t *testing.T) {
	b := prog.NewBuilder("callret")
	b.SetMemSize(4)
	f := b.Func("main")
	f.Call("leaf")
	f.AddI(0, 0, 1)
	f.Halt()
	g := b.Func("leaf")
	g.AddI(1, 1, 1)
	g.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	rec := New(p)
	spec := recordTrace(t, rec, 4) // Call ; AddI ; Ret ; AddI
	if len(spec) != 4 {
		t.Fatalf("recorded %d steps, want 4", len(spec))
	}
	sb, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}

	m := New(p)
	ref := New(p)
	x := m.RunSuperblock(sb)
	if !x.Completed {
		t.Fatalf("exit = %+v, want completion", x)
	}
	if err := stepTo(ref, m.Steps); err != nil {
		t.Fatalf("reference: %v", err)
	}
	compareMachines(t, m, ref, "after completion")
	if len(m.stack) != 0 {
		t.Errorf("stack depth = %d, want 0", len(m.stack))
	}
}

// TestSuperblockCompileRefusals checks that specs the compiler cannot prove
// it understands are rejected, not approximated.
func TestSuperblockCompileRefusals(t *testing.T) {
	cases := []struct {
		name string
		spec []SBStep
	}{
		{"empty", nil},
		{"halt", []SBStep{{In: isa.Instr{Op: isa.Halt}, PC: 0, Next: 1}}},
		{"pc out of range", []SBStep{{In: isa.Instr{Op: isa.Nop}, PC: 99, Next: 1}}},
		{"next out of range", []SBStep{{In: isa.Instr{Op: isa.Nop}, PC: 0, Next: 99}}},
		{"straight bad next", []SBStep{{In: isa.Instr{Op: isa.AddI, A: 1, B: 1, Imm: 1}, PC: 0, Next: 2}}},
		{"jmp bad next", []SBStep{{In: isa.Instr{Op: isa.Jmp, Target: 3}, PC: 0, Next: 1}}},
		{"branch impossible next", []SBStep{{In: isa.Instr{Op: isa.BrI, Cond: isa.Lt, A: 1, Target: 3}, PC: 0, Next: 2}}},
		{"bad register", []SBStep{{In: isa.Instr{Op: isa.Mov, A: 40, B: 0}, PC: 0, Next: 1}}},
		{"invalid opcode", []SBStep{{In: isa.Instr{Op: isa.Op(200)}, PC: 0, Next: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := CompileSuperblock(tc.spec, 10); err == nil {
				t.Error("compile succeeded, want refusal")
			}
		})
	}
}

// TestSuperblockFusionLowering exercises the load+ALU and ALU+store fused
// forms end to end, including the skip-crossing case (fusing across a Nop).
func TestSuperblockFusionLowering(t *testing.T) {
	b := prog.NewBuilder("fuse")
	b.SetMemSize(16)
	b.SetMem(3, 7)
	f := b.Func("main")
	f.Load(2, 1, 3)         // r2 = Mem[r1+3]
	f.Nop()                 // fusion must reach across this
	f.Op3(isa.Add, 3, 2, 2) // r3 = r2 + r2
	f.AddI(4, 3, 5)         // r4 = r3 + 5
	f.Store(4, 1, 6)        // Mem[r1+6] = r4
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	rec := New(p)
	spec := recordTrace(t, rec, 5)
	if len(spec) != 5 {
		t.Fatalf("recorded %d steps, want 5", len(spec))
	}
	sb, stats, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}
	// Load+Add fuse across the Nop; AddI+Store fuse; 5 guest steps → 2 ops.
	if stats.Fused != 2 || stats.Skipped != 1 || sb.NumOps() != 2 {
		t.Fatalf("stats = %+v, ops = %d; want 2 fused, 1 skipped, 2 ops", stats, sb.NumOps())
	}

	m := New(p)
	ref := New(p)
	x := m.RunSuperblock(sb)
	if !x.Completed {
		t.Fatalf("exit = %+v, want completion", x)
	}
	if err := stepTo(ref, m.Steps); err != nil {
		t.Fatalf("reference: %v", err)
	}
	compareMachines(t, m, ref, "after completion")
	if m.Mem[6] != 19 { // (7+7)+5
		t.Errorf("Mem[6] = %d, want 19", m.Mem[6])
	}
}

// TestSuperblockRandomDifferential is the property test: for random guest
// programs, a superblock compiled from a recorded trace must reproduce the
// per-step engine's architectural state exactly — registers, memory, step
// count, PC, and faults — both on-trace and after a forced perturbation.
func TestSuperblockRandomDifferential(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p, err := randprog.Generate(seed, randprog.Options{})
		if err != nil {
			continue
		}
		rec := New(p)
		spec := recordTrace(t, rec, 64)
		if len(spec) < 2 {
			continue
		}
		sb, _, err := CompileSuperblock(spec, p.Len())
		if err != nil {
			continue // refusal is always safe
		}

		// On-trace: from the recorded start state the block must complete.
		m, ref := New(p), New(p)
		if !sb.GuardsPass(m) {
			t.Errorf("seed %d: entry guards fail on the recorded state", seed)
			continue
		}
		x := m.RunSuperblock(sb)
		if !x.Completed {
			t.Errorf("seed %d: exit = %+v, want completion", seed, x)
			continue
		}
		if serr := stepTo(ref, m.Steps); serr != nil {
			t.Errorf("seed %d: reference error on-trace: %v", seed, serr)
			continue
		}
		compareMachines(t, m, ref, "seed on-trace")

		// Perturbed: flip a register and compare the (possibly diverging or
		// faulting) run against the reference stepped the same distance.
		for r := uint8(0); r < 8; r++ {
			m, ref = New(p), New(p)
			m.Reg[r] += 1000003
			ref.Reg[r] += 1000003
			if !sb.GuardsPass(m) {
				continue // tier-1 fallback case; nothing to compare
			}
			x := m.RunSuperblock(sb)
			refErr := stepTo(ref, m.Steps)
			if (x.Err == nil) != (refErr == nil) {
				t.Errorf("seed %d r%d: fault mismatch: superblock %v, reference %v", seed, r, x.Err, refErr)
				continue
			}
			if x.Err != nil && x.Err.Error() != refErr.Error() {
				t.Errorf("seed %d r%d: fault text:\n superblock: %v\n reference:  %v", seed, r, x.Err, refErr)
			}
			compareMachines(t, m, ref, "seed perturbed")
		}
	}
}

// TestRunSuperblockAllocs pins the tier-2 dispatch path at zero allocations
// per executed superblock.
func TestRunSuperblockAllocs(t *testing.T) {
	p := buildLoop(t, 1<<40)
	rec := New(p)
	if err := stepTo(rec, 2); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	spec := recordTrace(t, rec, 2)
	sb, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("CompileSuperblock: %v", err)
	}
	m := New(p)
	if err := stepTo(m, 2); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if !sb.GuardsPass(m) {
			t.Fatal("guards failed")
		}
		if x := m.RunSuperblock(sb); !x.Completed {
			t.Fatal("did not complete")
		}
	}); n != 0 {
		t.Errorf("tier-2 dispatch allocates %v allocs/op, want 0", n)
	}
}
