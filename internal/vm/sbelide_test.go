package vm

import (
	"strings"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// TestNCTableParity: the check-free fused tables must cover exactly the ops
// the checked tables cover, or the compiler's table swap silently loses
// fusions (or worse, binds nil).
func TestNCTableParity(t *testing.T) {
	for op := range sbLoadAluFns {
		if sbLoadAluFnsNC[op] == nil {
			t.Errorf("sbLoadAluFnsNC missing %v", op)
		}
	}
	for op := range sbLoadAluFnsNC {
		if sbLoadAluFns[op] == nil {
			t.Errorf("sbLoadAluFnsNC has %v the checked table lacks", op)
		}
	}
	for op := range sbAluStoreFns {
		if sbAluStoreFnsNC[op] == nil {
			t.Errorf("sbAluStoreFnsNC missing %v", op)
		}
	}
	for op := range sbAluStoreFnsNC {
		if sbAluStoreFns[op] == nil {
			t.Errorf("sbAluStoreFnsNC has %v the checked table lacks", op)
		}
	}
}

// maskedLoopProgram: cursor masked into the window each iteration, then a
// load and a store — both provably in-bounds at the masked register.
func maskedLoopProgram(t testing.TB) (*prog.Program, int32, int32) {
	t.Helper()
	b := prog.NewBuilder("masked")
	b.SetMemSize(256)
	f := b.Func("main")
	f.MovI(1, 0)
	f.Label("loop")
	f.AndI(2, 1, 255)
	f.Load(3, 2, 0)
	f.AddI(3, 3, 1)
	f.Store(3, 2, 0)
	f.AddI(1, 1, 11)
	f.BrI(isa.Lt, 1, 4000, "loop")
	f.Halt()
	p := b.MustBuild()
	var loadPC, storePC int32 = -1, -1
	for pc, in := range p.Instrs {
		switch in.Op {
		case isa.Load:
			loadPC = int32(pc)
		case isa.Store:
			storePC = int32(pc)
		}
	}
	return p, loadPC, storePC
}

// TestSuperblockElisionLockstep: a superblock compiled with bounds facts
// (check-free handlers bound) must be architecturally identical to per-step
// execution, run to run, for many dispatches.
func TestSuperblockElisionLockstep(t *testing.T) {
	p, loadPC, storePC := maskedLoopProgram(t)
	ref := New(p)
	spec := recordTrace(t, ref, 14) // two full iterations
	ref.Reset()

	facts := SBFacts{InBounds: func(pc int32) bool { return pc == loadPC || pc == storePC }}
	sb, stats, err := CompileSuperblockFacts(spec, p.Len(), facts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	wantElided := 0
	for _, st := range spec {
		if st.PC == loadPC || st.PC == storePC {
			wantElided++
		}
	}
	if stats.BoundsElided != wantElided {
		t.Fatalf("BoundsElided = %d, want %d (every load+store occurrence)", stats.BoundsElided, wantElided)
	}
	for _, op := range sb.Ops() {
		if op.Kind == SBOpInvalid {
			t.Fatal("compiled superblock contains an unregistered handler")
		}
	}

	mSB := New(p)
	mStep := New(p)
	start := int(spec[0].PC)
	for dispatch := 0; dispatch < 50; dispatch++ {
		if mSB.PC != start || mSB.Halted {
			break
		}
		if !sb.GuardsPass(mSB) {
			break
		}
		exit := mSB.RunSuperblock(sb)
		if exit.Err != nil {
			t.Fatalf("dispatch %d: superblock fault: %v", dispatch, exit.Err)
		}
		for i := int32(0); i < exit.Guest; i++ {
			if err := mStep.Step(); err != nil {
				t.Fatalf("dispatch %d: reference step: %v", dispatch, err)
			}
		}
		if !exit.Completed {
			if err := mStep.Step(); err != nil {
				t.Fatalf("dispatch %d: reference diverge step: %v", dispatch, err)
			}
		}
		compareMachines(t, mSB, mStep, "elided superblock lockstep")
		if t.Failed() {
			t.Fatalf("state diverged on dispatch %d", dispatch)
		}
	}
	if mSB.Steps == 0 {
		t.Fatal("superblock never ran")
	}
}

// TestDecidedBranchContradictionRefused: a fact provider that decides a
// branch against the recorded direction marks either the spec or the facts
// corrupt; the compiler must refuse rather than emit something.
func TestDecidedBranchContradictionRefused(t *testing.T) {
	p, _, _ := maskedLoopProgram(t)
	m := New(p)
	spec := recordTrace(t, m, 14)
	var brPC int32 = -1
	for i := range spec {
		if spec[i].In.Op == isa.BrI {
			brPC = spec[i].PC
		}
	}
	facts := SBFacts{Decided: func(pc int32) (bool, bool) {
		if pc == brPC {
			// The recording took the branch (back edge); claim never-taken.
			return false, true
		}
		return false, false
	}}
	_, _, err := CompileSuperblockFacts(spec, p.Len(), facts)
	if err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("want contradiction refusal, got %v", err)
	}
}

// TestDecidedBranchSkipsGuard: deciding the recorded direction removes the
// guard, and the resulting superblock still completes and reduces checks.
func TestDecidedBranchSkipsGuard(t *testing.T) {
	p, _, _ := maskedLoopProgram(t)
	m := New(p)
	spec := recordTrace(t, m, 8) // one iteration, ends at the back edge
	m.Reset()
	var brPC int32 = -1
	for i := range spec {
		if spec[i].In.Op == isa.BrI {
			brPC = spec[i].PC
		}
	}
	if brPC < 0 {
		t.Fatal("recorded trace does not reach the back-edge branch")
	}
	plain, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("compile plain: %v", err)
	}
	facts := SBFacts{Decided: func(pc int32) (bool, bool) {
		if pc == brPC {
			return true, true // matches the recording: back edge taken
		}
		return false, false
	}}
	sb, stats, err := CompileSuperblockFacts(spec, p.Len(), facts)
	if err != nil {
		t.Fatalf("compile with facts: %v", err)
	}
	if stats.Implied == 0 {
		t.Fatal("decided branch did not drop a guard")
	}
	totalChecks := func(b *Superblock) int64 { return int64(b.NumGuards()) + b.BodyChecksAll() }
	if totalChecks(sb) >= totalChecks(plain) {
		t.Errorf("decided branch did not reduce checks: %d vs %d", totalChecks(sb), totalChecks(plain))
	}
	exit := sb.GuardsPass(m)
	if !exit {
		t.Fatal("entry guards fail on the recording's own state")
	}
	res := m.RunSuperblock(sb)
	if !res.Completed {
		t.Fatalf("superblock did not complete: %+v", res)
	}
}

// TestNopSuccessorRefused: a Nop whose recorded successor is not pc+1 is a
// corrupt spec, not something to compile around.
func TestNopSuccessorRefused(t *testing.T) {
	spec := []SBStep{{In: isa.Instr{Op: isa.Nop}, PC: 3, Next: 9}}
	_, _, err := CompileSuperblock(spec, 20)
	if err == nil {
		t.Fatal("nop with wild successor compiled")
	}
}

// TestPruneImpliedGuards exercises the entry-guard pruning lattice directly.
func TestPruneImpliedGuards(t *testing.T) {
	lt := func(a uint8, imm int64) sbGuard {
		return sbGuard{a: a, useImm: true, want: true, cond: isa.Lt, imm: imm}
	}
	ge := func(a uint8, imm int64) sbGuard {
		return sbGuard{a: a, useImm: true, want: true, cond: isa.Ge, imm: imm}
	}
	ne := func(a uint8, imm int64) sbGuard {
		return sbGuard{a: a, useImm: true, want: true, cond: isa.Ne, imm: imm}
	}
	rr := sbGuard{a: 1, b: 2, want: true, cond: isa.Lt}

	var stats SBStats
	in := []sbGuard{
		lt(1, 100), // keeps: first bound on r1
		lt(1, 200), // implied: [_,99] within [_,199]
		ge(1, 0),   // keeps: adds lower bound
		ne(1, 500), // implied: 500 outside [0,99]
		ne(1, 50),  // keeps: 50 inside [0,99]
		rr,         // keeps: register-form untouched
		lt(3, 10),  // keeps: different register
	}
	out := pruneImpliedGuards(in, &stats)
	if len(out) != 5 {
		t.Fatalf("kept %d guards, want 5: %+v", len(out), out)
	}
	if stats.Implied != 2 {
		t.Errorf("Implied = %d, want 2", stats.Implied)
	}
	// The kept set must still contain the RR guard and both r1 bounds.
	var haveRR, haveLt100, haveGe0 bool
	for _, g := range out {
		if !g.useImm {
			haveRR = true
		}
		if g.useImm && g.cond == isa.Lt && g.imm == 100 {
			haveLt100 = true
		}
		if g.useImm && g.cond == isa.Ge && g.imm == 0 {
			haveGe0 = true
		}
	}
	if !haveRR || !haveLt100 || !haveGe0 {
		t.Errorf("pruning dropped a load-bearing guard: %+v", out)
	}
}

// TestBodyChecksAccounting: checkPfx must total the in-body checks and be
// monotone; elision must reduce it by exactly the elided count.
func TestBodyChecksAccounting(t *testing.T) {
	p, loadPC, storePC := maskedLoopProgram(t)
	m := New(p)
	spec := recordTrace(t, m, 14)
	plain, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	elided, stats, err := CompileSuperblockFacts(spec, p.Len(),
		SBFacts{InBounds: func(pc int32) bool { return pc == loadPC || pc == storePC }})
	if err != nil {
		t.Fatalf("compile elided: %v", err)
	}
	if got, want := plain.BodyChecksAll()-elided.BodyChecksAll(), int64(stats.BoundsElided); got != want {
		t.Errorf("elision removed %d body checks, stats say %d", got, want)
	}
	for g := int32(0); g <= int32(plain.NGuest()); g++ {
		if plain.BodyChecksUpTo(g) > plain.BodyChecksAll() {
			t.Fatalf("BodyChecksUpTo(%d) exceeds total", g)
		}
		if g > 0 && plain.BodyChecksUpTo(g) < plain.BodyChecksUpTo(g-1) {
			t.Fatalf("BodyChecksUpTo not monotone at %d", g)
		}
	}
	if plain.BodyChecksUpTo(int32(plain.NGuest())) != plain.BodyChecksAll() {
		t.Error("BodyChecksUpTo(NGuest) != BodyChecksAll")
	}
}

// TestGuardsIntrospection: Guards() must reflect the hoisted entry guards.
func TestGuardsIntrospection(t *testing.T) {
	p, _, _ := maskedLoopProgram(t)
	m := New(p)
	spec := recordTrace(t, m, 14)
	sb, _, err := CompileSuperblock(spec, p.Len())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(sb.Guards()) != sb.NumGuards() {
		t.Fatalf("Guards() length %d != NumGuards %d", len(sb.Guards()), sb.NumGuards())
	}
	for _, op := range sb.Ops() {
		if op.Kind == SBOpInvalid {
			t.Fatal("unregistered handler in compiled block")
		}
	}
}
