// Context-aware execution for resident services. A server cannot afford a
// guest that never yields, so RunContext slices the batched run loop into
// bounded chunks and polls the context between them: the hot loop stays
// exactly Run's (no per-instruction check), and cancellation latency is
// bounded by one chunk of steps.
package vm

import (
	"context"
	"errors"
	"fmt"
)

// preemptChunk is the number of steps executed between context polls; at the
// engine's measured ~10 ns/step this bounds cancellation latency well under
// a millisecond.
const preemptChunk = 1 << 16

// ErrPreempted wraps the context error when RunContext stops a run early.
var ErrPreempted = errors.New("vm: run preempted")

// RunContext executes like Run(maxSteps) but additionally stops when ctx is
// done, returning an error wrapping both ErrPreempted and ctx's error (so
// errors.Is works against context.DeadlineExceeded and context.Canceled).
// The machine is left at a clean instruction boundary and may be resumed.
//
// The loop body runs once per 2^16 steps and the fmt path once per run, at
// preemption — cold relative to the step loop it wraps.
//
//netpathvet:cold
func (m *Machine) RunContext(ctx context.Context, maxSteps int64) error {
	if ctx.Done() == nil {
		return m.Run(maxSteps)
	}
	for !m.Halted {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w after %d steps: %w", ErrPreempted, m.Steps, err)
		}
		budget := m.Steps + preemptChunk
		chunked := true
		if maxSteps > 0 && maxSteps <= budget {
			budget, chunked = maxSteps, false
		}
		err := m.Run(budget)
		if err == nil {
			// Run returns nil both on halt and (for an already-halted
			// machine) immediately; the loop condition distinguishes.
			continue
		}
		if chunked && errors.Is(err, ErrStepLimit) {
			continue // chunk boundary, not the caller's budget
		}
		return err
	}
	return nil
}
