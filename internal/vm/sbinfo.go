// Superblock introspection for the translation validator.
//
// A compiled superblock's behavior is whatever its bound handler functions
// do, so a validator that trusted compiler-side metadata would re-check the
// compiler's intent rather than its output. Ops instead recovers each
// micro-op's semantics from the handler pointer itself through a registry
// built over the same tables the compiler lowers from: if the compiler ever
// binds the wrong handler, the descriptor says so.
package vm

import (
	"reflect"

	"netpath/internal/isa"
)

// SBOpKind classifies a superblock micro-op by its bound handler.
type SBOpKind uint8

const (
	// SBOpInvalid marks a handler the registry does not know; a validator
	// must reject it.
	SBOpInvalid SBOpKind = iota
	// SBOpStraight is a single straight-line guest op.
	SBOpStraight
	// SBOpGuard is a single conditional branch compiled to a guard.
	SBOpGuard
	// SBOpCall is a direct call (stack push + depth check).
	SBOpCall
	// SBOpRet is a return (stack top compare + pop).
	SBOpRet
	// SBOpJmpInd is an indirect jump (register compare).
	SBOpJmpInd
	// SBOpCallInd is an indirect call (register compare + push).
	SBOpCallInd
	// SBOpLoadAlu is a fused load+ALU pair.
	SBOpLoadAlu
	// SBOpAluStore is a fused ALU+store pair.
	SBOpAluStore
	// SBOpAluGuard is a fused ALU+guard pair.
	SBOpAluGuard
)

// SBOpInfo describes one compiled micro-op: the guest opcode(s) its bound
// handler implements plus every operand field the handler reads.
type SBOpInfo struct {
	Kind SBOpKind
	// Op is the first guest opcode; Op2 the second for fused kinds. For
	// guard kinds Op/Op2 is isa.Br or isa.BrI according to the compare form.
	Op, Op2 isa.Op
	// Cond and Flag describe guard kinds: the condition evaluated and the
	// outcome that stays on-trace.
	Cond isa.Cond
	Flag bool
	// UseImm reports the guard compares against Imm/Imm2 (BrI form).
	UseImm bool
	// NoCheck reports the memory bounds check was statically elided.
	NoCheck bool
	// Fused reports the op covers two guest steps.
	Fused bool

	Imm, Imm2     int64
	PC, PC2       int32
	Next          int32
	Guest, Guest2 int32
	A, B, C       uint8
	A2, B2, C2    uint8
}

// SBGuardInfo describes one hoisted entry guard.
type SBGuardInfo struct {
	A, B   uint8
	UseImm bool
	Want   bool
	Cond   isa.Cond
	Imm    int64
}

type sbSig struct {
	kind    SBOpKind
	op, op2 isa.Op
	cond    isa.Cond
	useImm  bool
	hasCond bool
	noCheck bool
	fused   bool
}

// sbSigs maps handler code pointers to their semantics. Populated at init
// from the same tables the compiler binds from, so it is total over every
// handler the compiler can emit.
var sbSigs = map[uintptr]sbSig{}

func sbRegister(fn sbFn, sig sbSig) {
	sbSigs[reflect.ValueOf(fn).Pointer()] = sig
}

func init() {
	for op, fn := range sbStraight {
		sbRegister(fn, sbSig{kind: SBOpStraight, op: op})
	}
	sbRegister(sbLoadNC, sbSig{kind: SBOpStraight, op: isa.Load, noCheck: true})
	sbRegister(sbStoreNC, sbSig{kind: SBOpStraight, op: isa.Store, noCheck: true})
	for i := range sbGuardRRFns {
		sbRegister(sbGuardRRFns[i], sbSig{kind: SBOpGuard, op: isa.Br, cond: isa.Cond(i), hasCond: true})
		sbRegister(sbGuardRIFns[i], sbSig{kind: SBOpGuard, op: isa.BrI, cond: isa.Cond(i), useImm: true, hasCond: true})
	}
	sbRegister(sbCall, sbSig{kind: SBOpCall, op: isa.Call})
	sbRegister(sbRet, sbSig{kind: SBOpRet, op: isa.Ret})
	sbRegister(sbJmpInd, sbSig{kind: SBOpJmpInd, op: isa.JmpInd})
	sbRegister(sbCallInd, sbSig{kind: SBOpCallInd, op: isa.CallInd})
	for op, fn := range sbLoadAluFns {
		sbRegister(fn, sbSig{kind: SBOpLoadAlu, op: isa.Load, op2: op, fused: true})
	}
	for op, fn := range sbLoadAluFnsNC {
		sbRegister(fn, sbSig{kind: SBOpLoadAlu, op: isa.Load, op2: op, fused: true, noCheck: true})
	}
	for op, fn := range sbAluStoreFns {
		sbRegister(fn, sbSig{kind: SBOpAluStore, op: op, op2: isa.Store, fused: true})
	}
	for op, fn := range sbAluStoreFnsNC {
		sbRegister(fn, sbSig{kind: SBOpAluStore, op: op, op2: isa.Store, fused: true, noCheck: true})
	}
	for op, fn := range sbAluGuardFns {
		sbRegister(fn, sbSig{kind: SBOpAluGuard, op: op, fused: true})
	}
}

// Ops returns a semantic descriptor per micro-op, derived from the bound
// handlers. Unknown handlers come back as SBOpInvalid.
func (sb *Superblock) Ops() []SBOpInfo {
	out := make([]SBOpInfo, len(sb.code))
	for i := range sb.code {
		op := &sb.code[i]
		sig := sbSigs[reflect.ValueOf(op.fn).Pointer()]
		info := SBOpInfo{
			Kind: sig.kind, Op: sig.op, Op2: sig.op2,
			NoCheck: sig.noCheck, Fused: sig.fused, Flag: op.flag,
			Imm: op.imm, Imm2: op.imm2,
			PC: op.pc, PC2: op.pc2, Next: op.next,
			Guest: op.guest, Guest2: op.guest2,
			A: op.a, B: op.b, C: op.c,
			A2: op.a2, B2: op.b2, C2: op.c2,
		}
		if sig.hasCond {
			info.Cond = sig.cond
			info.UseImm = sig.useImm
		}
		if sig.kind == SBOpAluGuard {
			// sbGuard2 evaluates op.cond generically; c2 is the form flag.
			info.Cond = op.cond
			info.UseImm = op.c2 == 1
			if info.UseImm {
				info.Op2 = isa.BrI
			} else {
				info.Op2 = isa.Br
			}
		}
		out[i] = info
	}
	return out
}

// Guards returns the hoisted entry guards.
func (sb *Superblock) Guards() []SBGuardInfo {
	out := make([]SBGuardInfo, len(sb.guards))
	for i, g := range sb.guards {
		out[i] = SBGuardInfo{A: g.a, B: g.b, UseImm: g.useImm, Want: g.want, Cond: g.cond, Imm: g.imm}
	}
	return out
}
