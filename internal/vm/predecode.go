// Predecoded direct-threaded execution engine.
//
// At construction the machine translates its program into a flat array of
// micro-ops: one handler func per instruction with the operand fields,
// immediates and successor links already unpacked. Checks that depend only
// on the instruction bytes — register operands, opcode validity, static
// branch targets — are hoisted to decode time: a structurally invalid
// instruction predecodes to a handler that raises the exact fault the
// legacy engine would, so it still faults only if it executes. Checks that
// depend on runtime values (memory bounds, div/rem by zero, indirect
// targets, stack depth) stay in the handlers.
//
// Dispatch is threaded through successor pointers: each handler returns the
// next micro-op to execute (nil to stop), so the hot loop is one indirect
// call plus a nil test per instruction — it carries no PC, no bounds check,
// and no per-step Halted/fault-hook/register re-validation. Handlers that
// halt or fault park the error in m.trap and return nil; SettleExec
// resolves that cold path identically to the legacy engine.
package vm

import (
	"fmt"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// stop is returned by ExecAt when the executed micro-op halted or faulted
// the machine instead of producing a next PC. It is negative so callers
// that bounds-check the next PC take their existing cold path.
const stop = -1

// uop is one predecoded micro-op. fn interprets the remaining fields; pc is
// the instruction's own address (fault messages, branch events, return
// addresses) and target is the numeric decode-resolved successor (direct
// branch/call target for control ops, pc+1 for straight-line ops), kept for
// events and fault messages.
//
// next and alt are the threaded successor links: next is the primary
// successor (fallthrough for straight-line ops, taken target for direct
// control), alt is the not-taken successor of conditional branches. A
// statically out-of-range successor predecodes to a nil link (direct
// control, which tests its link) or to a cold fall-off-the-end handler
// (straight-line ops, which don't), so valid instructions pay nothing.
type uop struct {
	fn      uopFn
	next    *uop
	alt     *uop
	imm     int64
	target  int32
	pc      int32
	a, b, c uint8
	op      isa.Op
}

// uopFn executes one micro-op and returns the next one, or nil when the
// machine halted, faulted, or left the program. Handlers do not touch m.PC
// or m.Steps — the dispatch loop owns both.
type uopFn func(m *Machine, u *uop) *uop

// trapf parks a fault raised inside a micro-op handler and halts the
// machine; SettleExec delivers it. Handlers return nil after calling it so
// the dispatch loop stops — it runs at most once per execution.
//
//netpathvet:cold
func (m *Machine) trapf(kind FaultKind, pc int32, format string, args ...any) *uop {
	m.Halted = true
	countFault(kind, int(pc), m.Steps)
	if m.faultObs != nil {
		m.faultObs(kind, int(pc), m.Steps)
	}
	m.trap = &Fault{Kind: kind, PC: int(pc), Msg: fmt.Sprintf(format, args...)}
	return nil
}

// predecode lowers a program to its micro-op array. It never fails:
// malformed instructions (hand-assembled or fuzzed images that bypass
// prog.Validate) decode to fault thunks carrying the legacy engine's
// messages, and branch events are still emitted before an out-of-range
// transfer faults, exactly as the legacy engine orders them.
func predecode(p *prog.Program) []uop {
	n := len(p.Instrs)
	ops := make([]uop, n)
	link := func(t int) *uop {
		if t >= 0 && t < n {
			return &ops[t]
		}
		return nil
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		u := &ops[pc]
		u.a, u.b, u.c = in.A, in.B, in.C
		u.op = in.Op
		u.imm = in.Imm
		u.pc = int32(pc)
		switch {
		// The legacy engine validates register operands before decoding the
		// opcode (and without counting the step), even for opcodes that read
		// no registers — keep that priority.
		case int(in.A|in.B|in.C) >= isa.NumRegs:
			u.fn = opBadRegister
		case !in.Op.Valid():
			u.fn = opBadOpcode
		case in.Op == isa.Br:
			u.target = in.Target
			u.next = link(int(in.Target))
			u.alt = link(pc + 1)
			u.fn = brFns[condIndex(in.Cond)]
		case in.Op == isa.BrI:
			u.target = in.Target
			u.next = link(int(in.Target))
			u.alt = link(pc + 1)
			u.fn = briFns[condIndex(in.Cond)]
		case in.Op == isa.Jmp || in.Op == isa.Call:
			u.target = in.Target
			u.next = link(int(in.Target))
			u.fn = dispatch[in.Op]
		case in.Op == isa.JmpInd || in.Op == isa.CallInd || in.Op == isa.Ret || in.Op == isa.Halt:
			u.target = int32(pc + 1)
			u.fn = dispatch[in.Op]
		default:
			// Straight-line op. A nil fallthrough can only happen at the
			// last instruction; the cold variant applies the op's effect and
			// then faults the transfer, so hot handlers skip the nil test.
			u.target = int32(pc + 1)
			u.next = link(pc + 1)
			u.fn = dispatch[in.Op]
			if u.next == nil {
				u.fn = opFallOffEnd
			}
		}
	}
	return ops
}

// condIndex maps a condition to its specialized-handler slot; invalid
// conditions share a never-taken slot, matching Cond.Eval's false result.
func condIndex(c isa.Cond) int {
	if c.Valid() {
		return int(c)
	}
	return int(isa.Ge) + 1
}

// dispatch maps opcodes to handlers; indexed only for valid opcodes.
// Br/BrI slots are nil — predecode resolves them per condition.
var dispatch [256]uopFn

func init() {
	dispatch[isa.Nop] = opNop
	dispatch[isa.MovI] = opMovI
	dispatch[isa.Mov] = opMov
	dispatch[isa.Add] = opAdd
	dispatch[isa.Sub] = opSub
	dispatch[isa.Mul] = opMul
	dispatch[isa.Div] = opDiv
	dispatch[isa.Rem] = opRem
	dispatch[isa.And] = opAnd
	dispatch[isa.Or] = opOr
	dispatch[isa.Xor] = opXor
	dispatch[isa.Shl] = opShl
	dispatch[isa.Shr] = opShr
	dispatch[isa.AddI] = opAddI
	dispatch[isa.MulI] = opMulI
	dispatch[isa.AndI] = opAndI
	dispatch[isa.RemI] = opRemI
	dispatch[isa.Load] = opLoad
	dispatch[isa.Store] = opStore
	dispatch[isa.Jmp] = opJmp
	dispatch[isa.JmpInd] = opJmpInd
	dispatch[isa.Call] = opCall
	dispatch[isa.CallInd] = opCallInd
	dispatch[isa.Ret] = opRet
	dispatch[isa.Halt] = opHalt
}

func opNop(m *Machine, u *uop) *uop  { return u.next }
func opMovI(m *Machine, u *uop) *uop { m.Reg[u.a] = u.imm; return u.next }
func opMov(m *Machine, u *uop) *uop  { m.Reg[u.a] = m.Reg[u.b]; return u.next }
func opAdd(m *Machine, u *uop) *uop  { m.Reg[u.a] = m.Reg[u.b] + m.Reg[u.c]; return u.next }
func opSub(m *Machine, u *uop) *uop  { m.Reg[u.a] = m.Reg[u.b] - m.Reg[u.c]; return u.next }
func opMul(m *Machine, u *uop) *uop  { m.Reg[u.a] = m.Reg[u.b] * m.Reg[u.c]; return u.next }

func opDiv(m *Machine, u *uop) *uop {
	if d := m.Reg[u.c]; d != 0 {
		m.Reg[u.a] = m.Reg[u.b] / d
	} else {
		m.Reg[u.a] = 0
	}
	return u.next
}

func opRem(m *Machine, u *uop) *uop {
	if d := m.Reg[u.c]; d != 0 {
		m.Reg[u.a] = m.Reg[u.b] % d
	} else {
		m.Reg[u.a] = 0
	}
	return u.next
}

func opAnd(m *Machine, u *uop) *uop { m.Reg[u.a] = m.Reg[u.b] & m.Reg[u.c]; return u.next }
func opOr(m *Machine, u *uop) *uop  { m.Reg[u.a] = m.Reg[u.b] | m.Reg[u.c]; return u.next }
func opXor(m *Machine, u *uop) *uop { m.Reg[u.a] = m.Reg[u.b] ^ m.Reg[u.c]; return u.next }

func opShl(m *Machine, u *uop) *uop {
	m.Reg[u.a] = m.Reg[u.b] << (uint(m.Reg[u.c]) & 63)
	return u.next
}

func opShr(m *Machine, u *uop) *uop {
	m.Reg[u.a] = m.Reg[u.b] >> (uint(m.Reg[u.c]) & 63)
	return u.next
}

func opAddI(m *Machine, u *uop) *uop { m.Reg[u.a] = m.Reg[u.b] + u.imm; return u.next }
func opMulI(m *Machine, u *uop) *uop { m.Reg[u.a] = m.Reg[u.b] * u.imm; return u.next }
func opAndI(m *Machine, u *uop) *uop { m.Reg[u.a] = m.Reg[u.b] & u.imm; return u.next }

func opRemI(m *Machine, u *uop) *uop {
	if u.imm != 0 {
		m.Reg[u.a] = m.Reg[u.b] % u.imm
	} else {
		m.Reg[u.a] = 0
	}
	return u.next
}

func opLoad(m *Machine, u *uop) *uop {
	a := m.Reg[u.b] + u.imm
	// One unsigned compare covers both negative and too-large addresses.
	if uint64(a) >= uint64(len(m.Mem)) {
		return m.trapf(FaultMemOOB, u.pc, "vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), u.pc)
	}
	m.Reg[u.a] = m.Mem[a]
	return u.next
}

func opStore(m *Machine, u *uop) *uop {
	a := m.Reg[u.b] + u.imm
	if uint64(a) >= uint64(len(m.Mem)) {
		return m.trapf(FaultMemOOB, u.pc, "vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), u.pc)
	}
	m.Mem[a] = m.Reg[u.a]
	return u.next
}

// badTransfer raises the out-of-range control transfer fault, after the
// branch event for the attempted transfer has already been emitted.
func (m *Machine) badTransfer(pc int32, target int) *uop {
	return m.trapf(FaultBadPC, pc, "vm: control transfer to %d out of range at pc %d", target, pc)
}

func opJmp(m *Machine, u *uop) *uop {
	m.branch(int(u.pc), int(u.target), true, isa.KindJump)
	if u.next == nil {
		return m.badTransfer(u.pc, int(u.target))
	}
	return u.next
}

// Conditional branch handlers are specialized per condition so the hot loop
// skips Cond.Eval's switch. brFns/briFns are indexed by condIndex; the
// final slot handles invalid conditions (never taken, like Eval).
var brFns = [7]uopFn{opBrEq, opBrNe, opBrLt, opBrLe, opBrGt, opBrGe, opBrNever}
var briFns = [7]uopFn{opBrIEq, opBrINe, opBrILt, opBrILe, opBrIGt, opBrIGe, opBrNever}

func brTaken(m *Machine, u *uop) *uop {
	m.branch(int(u.pc), int(u.target), true, isa.KindCond)
	if u.next == nil {
		return m.badTransfer(u.pc, int(u.target))
	}
	return u.next
}

func brNotTaken(m *Machine, u *uop) *uop {
	m.branch(int(u.pc), int(u.pc)+1, false, isa.KindCond)
	if u.alt == nil {
		return m.badTransfer(u.pc, int(u.pc)+1)
	}
	return u.alt
}

func opBrNever(m *Machine, u *uop) *uop { return brNotTaken(m, u) }

func opBrEq(m *Machine, u *uop) *uop {
	if m.Reg[u.a] == m.Reg[u.b] {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrNe(m *Machine, u *uop) *uop {
	if m.Reg[u.a] != m.Reg[u.b] {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrLt(m *Machine, u *uop) *uop {
	if m.Reg[u.a] < m.Reg[u.b] {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrLe(m *Machine, u *uop) *uop {
	if m.Reg[u.a] <= m.Reg[u.b] {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrGt(m *Machine, u *uop) *uop {
	if m.Reg[u.a] > m.Reg[u.b] {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrGe(m *Machine, u *uop) *uop {
	if m.Reg[u.a] >= m.Reg[u.b] {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrIEq(m *Machine, u *uop) *uop {
	if m.Reg[u.a] == u.imm {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrINe(m *Machine, u *uop) *uop {
	if m.Reg[u.a] != u.imm {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrILt(m *Machine, u *uop) *uop {
	if m.Reg[u.a] < u.imm {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrILe(m *Machine, u *uop) *uop {
	if m.Reg[u.a] <= u.imm {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrIGt(m *Machine, u *uop) *uop {
	if m.Reg[u.a] > u.imm {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opBrIGe(m *Machine, u *uop) *uop {
	if m.Reg[u.a] >= u.imm {
		return brTaken(m, u)
	}
	return brNotTaken(m, u)
}

func opJmpInd(m *Machine, u *uop) *uop {
	t := int(m.Reg[u.a])
	if !m.Prog.IsBlockStart(t) {
		return m.trapf(FaultBadIndirect, u.pc, "vm: indirect jump to %d (not a block start) at pc %d", t, u.pc)
	}
	m.branch(int(u.pc), t, true, isa.KindIndirect)
	// A block start is inside the program by construction, but hand-built
	// block tables may lie; guard before indexing.
	if t >= len(m.ops) {
		return m.badTransfer(u.pc, t)
	}
	return &m.ops[t]
}

func opCall(m *Machine, u *uop) *uop {
	if len(m.stack) >= MaxCallDepth {
		return m.trapf(FaultStackOverflow, u.pc, "vm: call stack overflow at pc %d", u.pc)
	}
	m.stack = append(m.stack, int64(u.pc)+1)
	m.branch(int(u.pc), int(u.target), true, isa.KindCall)
	if u.next == nil {
		return m.badTransfer(u.pc, int(u.target))
	}
	return u.next
}

func opCallInd(m *Machine, u *uop) *uop {
	t := int(m.Reg[u.a])
	fi := m.Prog.FuncOf(t)
	if fi < 0 || fi >= len(m.Prog.Funcs) || m.Prog.Funcs[fi].Entry != t {
		return m.trapf(FaultBadCallTarget, u.pc, "vm: indirect call to %d (not a function entry) at pc %d", t, u.pc)
	}
	if len(m.stack) >= MaxCallDepth {
		return m.trapf(FaultStackOverflow, u.pc, "vm: call stack overflow at pc %d", u.pc)
	}
	m.stack = append(m.stack, int64(u.pc)+1)
	m.branch(int(u.pc), t, true, isa.KindCallInd)
	if t < 0 || t >= len(m.ops) {
		return m.badTransfer(u.pc, t)
	}
	return &m.ops[t]
}

func opRet(m *Machine, u *uop) *uop {
	if len(m.stack) == 0 {
		return m.trapf(FaultReturnUnderflow, u.pc, "vm: return with empty call stack at pc %d", u.pc)
	}
	t := int(m.stack[len(m.stack)-1])
	m.stack = m.stack[:len(m.stack)-1]
	m.branch(int(u.pc), t, true, isa.KindReturn)
	// A pushed return address is pc+1 of some call, which lands past the
	// end when the call was the last instruction.
	if uint(t) >= uint(len(m.ops)) {
		return m.badTransfer(u.pc, t)
	}
	return &m.ops[t]
}

func opHalt(m *Machine, u *uop) *uop {
	m.Halted = true
	return nil
}

func opBadRegister(m *Machine, u *uop) *uop {
	return m.trapf(FaultBadRegister, u.pc, "vm: register operand out of range in %v at pc %d", u.op, u.pc)
}

func opBadOpcode(m *Machine, u *uop) *uop {
	return m.trapf(FaultBadOpcode, u.pc, "vm: unknown opcode %v at pc %d", u.op, u.pc)
}

// opFallOffEnd replaces the last instruction's handler when that
// instruction is straight-line: the op's effect applies (and its own
// faults, if any, take precedence), then the fallthrough off the program
// end faults, matching the legacy engine's execute-then-validate order.
// This keeps the nil-successor test out of every hot straight-line handler:
// the one instruction that can fall off the end is found at decode time.
func opFallOffEnd(m *Machine, u *uop) *uop {
	switch u.op {
	case isa.Nop:
	case isa.MovI:
		m.Reg[u.a] = u.imm
	case isa.Mov:
		m.Reg[u.a] = m.Reg[u.b]
	case isa.Add:
		m.Reg[u.a] = m.Reg[u.b] + m.Reg[u.c]
	case isa.Sub:
		m.Reg[u.a] = m.Reg[u.b] - m.Reg[u.c]
	case isa.Mul:
		m.Reg[u.a] = m.Reg[u.b] * m.Reg[u.c]
	case isa.Div:
		if d := m.Reg[u.c]; d != 0 {
			m.Reg[u.a] = m.Reg[u.b] / d
		} else {
			m.Reg[u.a] = 0
		}
	case isa.Rem:
		if d := m.Reg[u.c]; d != 0 {
			m.Reg[u.a] = m.Reg[u.b] % d
		} else {
			m.Reg[u.a] = 0
		}
	case isa.And:
		m.Reg[u.a] = m.Reg[u.b] & m.Reg[u.c]
	case isa.Or:
		m.Reg[u.a] = m.Reg[u.b] | m.Reg[u.c]
	case isa.Xor:
		m.Reg[u.a] = m.Reg[u.b] ^ m.Reg[u.c]
	case isa.Shl:
		m.Reg[u.a] = m.Reg[u.b] << (uint(m.Reg[u.c]) & 63)
	case isa.Shr:
		m.Reg[u.a] = m.Reg[u.b] >> (uint(m.Reg[u.c]) & 63)
	case isa.AddI:
		m.Reg[u.a] = m.Reg[u.b] + u.imm
	case isa.MulI:
		m.Reg[u.a] = m.Reg[u.b] * u.imm
	case isa.AndI:
		m.Reg[u.a] = m.Reg[u.b] & u.imm
	case isa.RemI:
		if u.imm != 0 {
			m.Reg[u.a] = m.Reg[u.b] % u.imm
		} else {
			m.Reg[u.a] = 0
		}
	case isa.Load:
		a := m.Reg[u.b] + u.imm
		if uint64(a) >= uint64(len(m.Mem)) {
			return m.trapf(FaultMemOOB, u.pc, "vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), u.pc)
		}
		m.Reg[u.a] = m.Mem[a]
	case isa.Store:
		a := m.Reg[u.b] + u.imm
		if uint64(a) >= uint64(len(m.Mem)) {
			return m.trapf(FaultMemOOB, u.pc, "vm: memory access %d out of range [0,%d) at pc %d", a, len(m.Mem), u.pc)
		}
		m.Mem[a] = m.Reg[u.a]
	}
	return m.badTransfer(u.pc, int(u.pc)+1)
}
