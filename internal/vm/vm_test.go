package vm

import (
	"errors"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

func buildCounting(t *testing.T, n int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("count")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Store(0, 1, 0) // Mem[0] = r0 (r1 is zero)
	m.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestCountingLoop(t *testing.T) {
	p := buildCounting(t, 10)
	m := New(p)
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Mem[0] != 10 {
		t.Errorf("Mem[0] = %d, want 10", m.Mem[0])
	}
	if !m.Halted {
		t.Error("machine not halted")
	}
}

func TestBranchEvents(t *testing.T) {
	p := buildCounting(t, 3)
	m := New(p)
	var evs []BranchEvent
	m.SetListener(func(e BranchEvent) { evs = append(evs, e) })
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The loop branch executes 3 times: taken, taken, not-taken. (A
	// builder-inserted fall-through jump also fires once; ignore it.)
	var taken, notTaken, backward int
	for _, e := range evs {
		if e.Kind != isa.KindCond {
			continue
		}
		if e.Taken {
			taken++
		} else {
			notTaken++
		}
		if e.Backward {
			backward++
			if !e.Taken || e.Target > e.PC {
				t.Errorf("backward event inconsistent: %+v", e)
			}
		}
	}
	if taken != 2 || notTaken != 1 || backward != 2 {
		t.Errorf("taken=%d notTaken=%d backward=%d, want 2/1/2", taken, notTaken, backward)
	}
}

func TestALUOps(t *testing.T) {
	b := prog.NewBuilder("alu")
	b.SetMemSize(32)
	f := b.Func("main")
	f.MovI(1, 20)
	f.MovI(2, 6)
	ops := []struct {
		op   isa.Op
		want int64
	}{
		{isa.Add, 26}, {isa.Sub, 14}, {isa.Mul, 120}, {isa.Div, 3}, {isa.Rem, 2},
		{isa.And, 4}, {isa.Or, 22}, {isa.Xor, 18},
	}
	for i, c := range ops {
		f.Op3(c.op, uint8(3+i), 1, 2)
		f.Store(uint8(3+i), 0, int64(i))
	}
	// Shifts: 20 << 2, 20 >> 2.
	f.MovI(2, 2)
	f.Op3(isa.Shl, 11, 1, 2)
	f.Store(11, 0, 8)
	f.Op3(isa.Shr, 12, 1, 2)
	f.Store(12, 0, 9)
	// Immediates.
	f.AddI(13, 1, -5)
	f.Store(13, 0, 10)
	f.MulI(14, 1, 3)
	f.Store(14, 0, 11)
	f.AndI(15, 1, 7)
	f.Store(15, 0, 12)
	f.RemI(16, 1, 7)
	f.Store(16, 0, 13)
	f.Mov(17, 1)
	f.Store(17, 0, 14)
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := New(p)
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, c := range ops {
		if m.Mem[i] != c.want {
			t.Errorf("%v: got %d, want %d", c.op, m.Mem[i], c.want)
		}
	}
	wantRest := map[int]int64{8: 80, 9: 5, 10: 15, 11: 60, 12: 4, 13: 6, 14: 20}
	for a, w := range wantRest {
		if m.Mem[a] != w {
			t.Errorf("Mem[%d] = %d, want %d", a, m.Mem[a], w)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	b := prog.NewBuilder("divz")
	b.SetMemSize(4)
	f := b.Func("main")
	f.MovI(1, 9)
	f.MovI(2, 0)
	f.Op3(isa.Div, 3, 1, 2)
	f.Store(3, 0, 0)
	f.Op3(isa.Rem, 4, 1, 2)
	f.Store(4, 0, 1)
	f.RemI(5, 1, 0)
	f.Store(5, 0, 2)
	f.Halt()
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Mem[0] != 0 || m.Mem[1] != 0 || m.Mem[2] != 0 {
		t.Errorf("div/rem by zero = %d,%d,%d, want 0,0,0", m.Mem[0], m.Mem[1], m.Mem[2])
	}
}

func TestCallRet(t *testing.T) {
	b := prog.NewBuilder("call")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(0, 5)
	m.Call("double")
	m.Store(0, 1, 0)
	m.Halt()
	f := b.Func("double")
	f.AddI(0, 0, 0)
	f.Op3(isa.Add, 0, 0, 0)
	f.Ret()
	vm := New(b.MustBuild())
	var kinds []isa.BranchKind
	vm.SetListener(func(e BranchEvent) { kinds = append(kinds, e.Kind) })
	if err := vm.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vm.Mem[0] != 10 {
		t.Errorf("Mem[0] = %d, want 10", vm.Mem[0])
	}
	var call, ret bool
	for _, k := range kinds {
		if k == isa.KindCall {
			call = true
		}
		if k == isa.KindReturn {
			ret = true
		}
	}
	if !call || !ret {
		t.Errorf("missing call/ret events: %v", kinds)
	}
	if vm.CallDepth() != 0 {
		t.Errorf("call depth = %d after return", vm.CallDepth())
	}
}

func TestIndirectJump(t *testing.T) {
	b := prog.NewBuilder("ind")
	b.SetMemSize(8)
	m := b.Func("main")
	m.Load(1, 0, 4) // r1 = jump table entry (r0 = 0)
	m.JmpInd(1)
	m.Label("a")
	m.MovI(2, 100)
	m.Jmp("done")
	m.Label("b")
	m.MovI(2, 200)
	m.Jmp("done")
	m.Label("done")
	m.Store(2, 0, 0)
	m.Halt()
	b.SetMemLabel(4, "b")
	vm := New(b.MustBuild())
	var ind int
	vm.SetListener(func(e BranchEvent) {
		if e.Kind == isa.KindIndirect {
			ind++
		}
	})
	if err := vm.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vm.Mem[0] != 200 {
		t.Errorf("Mem[0] = %d, want 200 (jump to b)", vm.Mem[0])
	}
	if ind != 1 {
		t.Errorf("indirect events = %d, want 1", ind)
	}
}

func TestIndirectCall(t *testing.T) {
	b := prog.NewBuilder("icall")
	b.SetMemSize(8)
	m := b.Func("main")
	m.Load(1, 0, 4)
	m.CallInd(1)
	m.Store(2, 0, 0)
	m.Halt()
	g := b.Func("g")
	g.MovI(2, 42)
	g.Ret()
	b.SetMemLabel(4, "g")
	vm := New(b.MustBuild())
	if err := vm.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vm.Mem[0] != 42 {
		t.Errorf("Mem[0] = %d, want 42", vm.Mem[0])
	}
}

func TestFaults(t *testing.T) {
	t.Run("badIndirect", func(t *testing.T) {
		b := prog.NewBuilder("f")
		b.SetMemSize(4)
		m := b.Func("main")
		m.MovI(1, 1) // address 1 is mid-block
		m.JmpInd(1)
		m.Halt()
		vm := New(b.MustBuild())
		if err := vm.Run(0); err == nil {
			t.Error("want fault for indirect jump mid-block")
		}
		if !vm.Halted {
			t.Error("fault must halt the machine")
		}
	})
	t.Run("badIndirectCall", func(t *testing.T) {
		b := prog.NewBuilder("f")
		b.SetMemSize(4)
		m := b.Func("main")
		m.MovI(1, 999)
		m.CallInd(1)
		m.Halt()
		if err := New(b.MustBuild()).Run(0); err == nil {
			t.Error("want fault for indirect call to bad entry")
		}
	})
	t.Run("retUnderflow", func(t *testing.T) {
		b := prog.NewBuilder("f")
		b.SetMemSize(4)
		m := b.Func("main")
		m.Ret()
		if err := New(b.MustBuild()).Run(0); err == nil {
			t.Error("want fault for return underflow")
		}
	})
	t.Run("memOutOfRange", func(t *testing.T) {
		b := prog.NewBuilder("f")
		b.SetMemSize(4)
		m := b.Func("main")
		m.MovI(1, 100)
		m.Load(2, 1, 0)
		m.Halt()
		if err := New(b.MustBuild()).Run(0); err == nil {
			t.Error("want fault for out-of-range load")
		}
	})
	t.Run("stackOverflow", func(t *testing.T) {
		b := prog.NewBuilder("f")
		b.SetMemSize(4)
		m := b.Func("main")
		m.Call("rec")
		m.Halt()
		r := b.Func("rec")
		r.Call("rec")
		r.Ret()
		if err := New(b.MustBuild()).Run(0); err == nil {
			t.Error("want fault for infinite recursion")
		}
	})
}

func TestStepLimit(t *testing.T) {
	b := prog.NewBuilder("inf")
	b.SetMemSize(4)
	m := b.Func("main")
	m.Label("top")
	m.Jmp("top")
	vm := New(b.MustBuild())
	err := vm.Run(100)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("Run = %v, want ErrStepLimit", err)
	}
	if vm.Steps != 100 {
		t.Errorf("Steps = %d, want 100", vm.Steps)
	}
}

func TestStepAfterHalt(t *testing.T) {
	b := prog.NewBuilder("h")
	b.SetMemSize(4)
	m := b.Func("main")
	m.Halt()
	vm := New(b.MustBuild())
	if err := vm.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := vm.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestResetDeterminism(t *testing.T) {
	p := buildCounting(t, 50)
	m := New(p)
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	steps1, mem1 := m.Steps, m.Mem[0]
	m.Reset()
	if m.Steps != 0 || m.Halted || m.PC != p.Entry {
		t.Fatal("Reset did not restore initial state")
	}
	if err := m.Run(0); err != nil {
		t.Fatalf("Run after reset: %v", err)
	}
	if m.Steps != steps1 || m.Mem[0] != mem1 {
		t.Errorf("non-deterministic re-run: steps %d vs %d, mem %d vs %d", m.Steps, steps1, m.Mem[0], mem1)
	}
}
