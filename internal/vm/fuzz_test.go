package vm

import (
	"encoding/binary"
	"errors"
	"testing"

	"netpath/internal/isa"
)

// FuzzStep decodes arbitrary bytes into an instruction stream and executes
// it. The machine must never panic — every malformed instruction (unknown
// opcode, out-of-range register, wild branch target, out-of-range memory
// access) must surface as a halting *Fault, exactly as Step documents.
// It is also a differential fuzzer: the same image runs on the legacy
// switch decoder, which must agree on the final architectural state, the
// error, and the branch event stream.
func FuzzStep(f *testing.F) {
	f.Add([]byte{})
	// movi r1, 100; load r2, [r1+0]  — classic OOB.
	f.Add([]byte{
		byte(isa.MovI), 0, 1, 0, 0, 100, 0, 0, 0,
		byte(isa.Load), 0, 2, 1, 0, 0, 0, 0, 0,
	})
	// Self-call until the stack overflows.
	f.Add([]byte{byte(isa.Call), 0, 0, 0, 0, 0, 0, 0, 0})
	// Unknown opcode, then garbage.
	f.Add([]byte{200, 9, 40, 80, 120, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		const chunk = 9
		n := len(data) / chunk
		if n == 0 {
			return
		}
		if n > 256 {
			n = 256
		}
		instrs := make([]isa.Instr, n)
		for i := range instrs {
			b := data[i*chunk : (i+1)*chunk]
			instrs[i] = isa.Instr{
				Op:     isa.Op(b[0]),
				Cond:   isa.Cond(b[1] % 8),
				A:      b[2],
				B:      b[3],
				C:      b[4],
				Imm:    int64(int16(binary.LittleEndian.Uint16(b[5:7]))),
				Target: int32(int16(binary.LittleEndian.Uint16(b[7:9]))),
			}
		}
		p := rawProgram(instrs, 8)
		m := New(p)
		fe := &recorder{}
		m.SetSink(fe)
		err := m.Run(10_000)
		switch {
		case err == nil:
			if !m.Halted {
				t.Fatal("Run returned nil on a machine that is not halted")
			}
		case errors.Is(err, ErrStepLimit):
			// Ran out of budget on a loop; fine.
		default:
			var fa *Fault
			if !errors.As(err, &fa) {
				t.Fatalf("Run error %v (%T) is neither ErrStepLimit nor *Fault", err, err)
			}
			if !m.Halted {
				t.Fatal("machine not halted after fault")
			}
			if err := m.Step(); !errors.Is(err, ErrHalted) {
				t.Fatalf("Step after fault = %v, want ErrHalted", err)
			}
		}

		// Differential: the legacy switch decoder over the same image must
		// end in the same state with the same error and event stream.
		ref := New(p)
		ref.SetEngine(EngineLegacy)
		le := &recorder{}
		ref.SetSink(le)
		refErr := ref.Run(10_000)
		if ok, why := sameStepErr(err, refErr); !ok {
			t.Fatalf("engines disagree on error (%s): fast=%v legacy=%v", why, err, refErr)
		}
		compareState(t, "fuzz", m, ref)
		compareEvents(t, "fuzz", fe.evs, le.evs)
	})
}
