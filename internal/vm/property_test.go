package vm

import (
	"testing"
	"testing/quick"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// TestALUSemanticsMatchGo checks, for random operand values, that every
// three-address ALU opcode computes exactly the corresponding Go expression
// when executed by the machine.
func TestALUSemanticsMatchGo(t *testing.T) {
	ops := []struct {
		op   isa.Op
		eval func(b, c int64) int64
	}{
		{isa.Add, func(b, c int64) int64 { return b + c }},
		{isa.Sub, func(b, c int64) int64 { return b - c }},
		{isa.Mul, func(b, c int64) int64 { return b * c }},
		{isa.Div, func(b, c int64) int64 {
			if c == 0 {
				return 0
			}
			return b / c
		}},
		{isa.Rem, func(b, c int64) int64 {
			if c == 0 {
				return 0
			}
			return b % c
		}},
		{isa.And, func(b, c int64) int64 { return b & c }},
		{isa.Or, func(b, c int64) int64 { return b | c }},
		{isa.Xor, func(b, c int64) int64 { return b ^ c }},
		{isa.Shl, func(b, c int64) int64 { return b << (uint(c) & 63) }},
		{isa.Shr, func(b, c int64) int64 { return b >> (uint(c) & 63) }},
	}
	for _, tc := range ops {
		tc := tc
		f := func(b, c int64) bool {
			bld := prog.NewBuilder("alu")
			bld.SetMemSize(1)
			fn := bld.Func("main")
			fn.Emit(isa.Instr{Op: tc.op, A: 3, B: 1, C: 2})
			fn.Halt()
			p, err := bld.Build()
			if err != nil {
				return false
			}
			m := New(p)
			m.Reg[1], m.Reg[2] = b, c
			if err := m.Run(0); err != nil {
				return false
			}
			return m.Reg[3] == tc.eval(b, c)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", tc.op, err)
		}
	}
}

// TestImmSemanticsMatchGo is the immediate-form analogue.
func TestImmSemanticsMatchGo(t *testing.T) {
	ops := []struct {
		op   isa.Op
		eval func(b, imm int64) int64
	}{
		{isa.AddI, func(b, imm int64) int64 { return b + imm }},
		{isa.MulI, func(b, imm int64) int64 { return b * imm }},
		{isa.AndI, func(b, imm int64) int64 { return b & imm }},
		{isa.RemI, func(b, imm int64) int64 {
			if imm == 0 {
				return 0
			}
			return b % imm
		}},
	}
	for _, tc := range ops {
		tc := tc
		f := func(b, imm int64) bool {
			bld := prog.NewBuilder("imm")
			bld.SetMemSize(1)
			fn := bld.Func("main")
			fn.Emit(isa.Instr{Op: tc.op, A: 3, B: 1, Imm: imm})
			fn.Halt()
			p, err := bld.Build()
			if err != nil {
				return false
			}
			m := New(p)
			m.Reg[1] = b
			if err := m.Run(0); err != nil {
				return false
			}
			return m.Reg[3] == tc.eval(b, imm)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", tc.op, err)
		}
	}
}

// TestBranchSemanticsMatchCond checks that Br's taken/not-taken decision
// agrees with Cond.Eval for random operands and all conditions.
func TestBranchSemanticsMatchCond(t *testing.T) {
	for c := isa.Eq; c <= isa.Ge; c++ {
		c := c
		f := func(a, b int64) bool {
			bld := prog.NewBuilder("br")
			bld.SetMemSize(1)
			fn := bld.Func("main")
			fn.Br(c, 1, 2, "taken")
			fn.MovI(5, 100) // not-taken arm
			fn.Jmp("done")
			fn.Label("taken")
			fn.MovI(5, 200)
			fn.Label("done")
			fn.Halt()
			p, err := bld.Build()
			if err != nil {
				return false
			}
			m := New(p)
			m.Reg[1], m.Reg[2] = a, b
			if err := m.Run(0); err != nil {
				return false
			}
			want := int64(100)
			if c.Eval(a, b) {
				want = 200
			}
			return m.Reg[5] == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("cond %v: %v", c, err)
		}
	}
}
