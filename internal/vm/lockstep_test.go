package vm

import (
	"errors"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/randprog"
)

// recorder collects the branch event stream of one machine.
type recorder struct{ evs []BranchEvent }

func (r *recorder) OnBranch(ev BranchEvent) { r.evs = append(r.evs, ev) }

// sameStepErr reports whether the two engines returned equivalent errors:
// both nil, the same sentinel, or faults with identical kind, PC, and
// message.
func sameStepErr(a, b error) (bool, string) {
	switch {
	case a == nil && b == nil:
		return true, ""
	case (a == nil) != (b == nil):
		return false, "nil-ness differs"
	case errors.Is(a, ErrHalted) || errors.Is(b, ErrHalted):
		if errors.Is(a, ErrHalted) && errors.Is(b, ErrHalted) {
			return true, ""
		}
		return false, "ErrHalted mismatch"
	case errors.Is(a, ErrStepLimit) || errors.Is(b, ErrStepLimit):
		if errors.Is(a, ErrStepLimit) && errors.Is(b, ErrStepLimit) {
			return true, ""
		}
		return false, "ErrStepLimit mismatch"
	}
	var fa, fb *Fault
	aIsFault, bIsFault := errors.As(a, &fa), errors.As(b, &fb)
	if !aIsFault || !bIsFault {
		return false, "fault-ness differs"
	}
	if fa.Kind != fb.Kind || fa.PC != fb.PC || fa.Msg != fb.Msg {
		return false, "fault fields differ"
	}
	return true, ""
}

// compareState checks the complete architectural state of the two machines.
func compareState(t *testing.T, tag string, fast, legacy *Machine) {
	t.Helper()
	compareCore(t, tag, fast, legacy)
	for a := range legacy.Mem {
		if fast.Mem[a] != legacy.Mem[a] {
			t.Fatalf("%s: Mem[%d] fast=%d legacy=%d", tag, a, fast.Mem[a], legacy.Mem[a])
		}
	}
}

// compareCore checks everything except memory — cheap enough to run at
// every lockstep boundary (memory is checked periodically and at the end;
// stores are a function of registers, which are compared every step).
func compareCore(t *testing.T, tag string, fast, legacy *Machine) {
	t.Helper()
	if fast.PC != legacy.PC {
		t.Fatalf("%s: PC fast=%d legacy=%d", tag, fast.PC, legacy.PC)
	}
	if fast.Steps != legacy.Steps {
		t.Fatalf("%s: Steps fast=%d legacy=%d", tag, fast.Steps, legacy.Steps)
	}
	if fast.Halted != legacy.Halted {
		t.Fatalf("%s: Halted fast=%v legacy=%v", tag, fast.Halted, legacy.Halted)
	}
	if fast.Reg != legacy.Reg {
		t.Fatalf("%s: registers diverge", tag)
	}
	if fast.CallDepth() != legacy.CallDepth() {
		t.Fatalf("%s: call depth fast=%d legacy=%d", tag, fast.CallDepth(), legacy.CallDepth())
	}
}

// compareEvents checks the two branch event streams are identical.
func compareEvents(t *testing.T, tag string, fe, le []BranchEvent) {
	t.Helper()
	if len(fe) != len(le) {
		t.Fatalf("%s: event count fast=%d legacy=%d", tag, len(fe), len(le))
	}
	for i := range le {
		if fe[i] != le[i] {
			t.Fatalf("%s: event %d fast=%+v legacy=%+v", tag, i, fe[i], le[i])
		}
	}
}

// lockstep executes p on the predecoded engine and the legacy switch decoder
// instruction by instruction, requiring identical registers, memory, PC,
// step counts, faults, and branch event streams at every step.
func lockstep(t *testing.T, tag string, p *prog.Program, budget int64) {
	t.Helper()
	fast, legacy := New(p), New(p)
	legacy.SetEngine(EngineLegacy)
	fe, le := &recorder{}, &recorder{}
	fast.SetSink(fe)
	legacy.SetSink(le)

	for step := int64(0); ; step++ {
		if step > budget {
			t.Fatalf("%s: no halt within %d steps", tag, budget)
		}
		ef, el := fast.Step(), legacy.Step()
		if ok, why := sameStepErr(ef, el); !ok {
			t.Fatalf("%s: step %d errors diverge (%s): fast=%v legacy=%v", tag, step, why, ef, el)
		}
		compareCore(t, tag, fast, legacy)
		if len(fe.evs) != len(le.evs) {
			t.Fatalf("%s: step %d event count fast=%d legacy=%d", tag, step, len(fe.evs), len(le.evs))
		}
		if step%1024 == 0 {
			compareState(t, tag, fast, legacy)
		}
		if fast.Halted {
			break
		}
	}
	compareState(t, tag, fast, legacy)
	compareEvents(t, tag, fe.evs, le.evs)

	// A halted machine must answer ErrHalted from both engines.
	if err := fast.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("%s: fast Step after halt = %v", tag, err)
	}
	if err := legacy.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("%s: legacy Step after halt = %v", tag, err)
	}
}

// runCompare executes p via Run on both engines (fresh machines) and
// requires equivalent errors and identical final state and event streams —
// covering the batched fast loop, not just the single-step seam.
func runCompare(t *testing.T, tag string, p *prog.Program, maxSteps int64) {
	t.Helper()
	fast, legacy := New(p), New(p)
	legacy.SetEngine(EngineLegacy)
	fe, le := &recorder{}, &recorder{}
	fast.SetSink(fe)
	legacy.SetSink(le)

	ef, el := fast.Run(maxSteps), legacy.Run(maxSteps)
	if ok, why := sameStepErr(ef, el); !ok {
		t.Fatalf("%s: Run errors diverge (%s): fast=%v legacy=%v", tag, why, ef, el)
	}
	compareState(t, tag, fast, legacy)
	compareEvents(t, tag, fe.evs, le.evs)
}

// TestLockstepRandprog cross-validates the two engines over the random
// program corpus, both step-by-step and through Run.
func TestLockstepRandprog(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		tag := p.Name
		lockstep(t, tag, p, 2_000_000)
		runCompare(t, tag, p, 0)
		// Step-limit behaviour must match too, including a limit that lands
		// mid-run.
		runCompare(t, tag+"/limit", p, 137)
	}
}

// TestLockstepFaults pins engine agreement on every fault class with
// hand-assembled programs (the builder would reject most of these).
func TestLockstepFaults(t *testing.T) {
	cases := []struct {
		name   string
		instrs []isa.Instr
	}{
		{"mem-oob-load", []isa.Instr{
			{Op: isa.MovI, A: 1, Imm: 99},
			{Op: isa.Load, A: 2, B: 1},
		}},
		{"mem-oob-store-negative", []isa.Instr{
			{Op: isa.MovI, A: 1, Imm: -3},
			{Op: isa.Store, A: 2, B: 1},
		}},
		{"bad-opcode", []isa.Instr{{Op: isa.Op(200)}}},
		{"bad-register", []isa.Instr{{Op: isa.Add, A: 40, B: 1, C: 2}}},
		{"bad-register-before-bad-opcode", []isa.Instr{{Op: isa.Op(200), A: 77}}},
		{"jmp-oob", []isa.Instr{{Op: isa.Jmp, Target: 55}}},
		{"br-taken-oob", []isa.Instr{{Op: isa.Br, Cond: isa.Eq, A: 1, B: 2, Target: -9}}},
		{"fall-off-end", []isa.Instr{{Op: isa.MovI, A: 1, Imm: 7}}},
		{"fall-off-end-load-oob", []isa.Instr{
			{Op: isa.MovI, A: 1, Imm: 88},
			{Op: isa.Load, A: 2, B: 1},
		}},
		{"jmp-ind-not-block-start", []isa.Instr{
			{Op: isa.MovI, A: 1, Imm: 1},
			{Op: isa.JmpInd, A: 1},
		}},
		{"call-ind-not-entry", []isa.Instr{
			{Op: isa.MovI, A: 1, Imm: 1},
			{Op: isa.CallInd, A: 1},
		}},
		{"ret-underflow", []isa.Instr{{Op: isa.Ret}}},
		{"stack-overflow", []isa.Instr{{Op: isa.Call, Target: 0}}},
		{"invalid-cond-never-taken", []isa.Instr{
			{Op: isa.Br, Cond: isa.Cond(7), A: 1, B: 2, Target: 0},
			{Op: isa.Halt},
		}},
		{"halt", []isa.Instr{{Op: isa.Halt}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := rawProgram(tc.instrs, 8)
			lockstep(t, tc.name, p, 200_000)
			runCompare(t, tc.name, p, 0)
			runCompare(t, tc.name+"/limit", p, 3)
		})
	}
}
