package vm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"netpath/internal/randprog"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

// TestRunContextBackground: a context with no deadline takes the plain Run
// path and produces identical results.
func TestRunContextBackground(t *testing.T) {
	p := randprog.MustGenerate(3, randprog.Options{})
	ref := vm.New(p)
	if err := ref.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := vm.New(p)
	if err := m.RunContext(context.Background(), 0); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if m.Steps != ref.Steps || m.Reg != ref.Reg {
		t.Errorf("RunContext diverges from Run: steps %d vs %d", m.Steps, ref.Steps)
	}
}

// TestRunContextCancel: a canceled context stops the run with a typed,
// resumable error, and the machine resumes to the exact reference state.
func TestRunContextCancel(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ref := vm.New(p)
	if err := ref.Run(0); err != nil {
		t.Fatalf("ref run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := vm.New(p)
	err = m.RunContext(ctx, 0)
	if !errors.Is(err, vm.ErrPreempted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrPreempted wrapping context.Canceled", err)
	}
	if m.Halted {
		t.Fatal("preempted machine must not be halted")
	}
	// Resume with a fresh context: final state must match the reference.
	if err := m.RunContext(context.Background(), 0); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if m.Steps != ref.Steps || m.Reg != ref.Reg {
		t.Errorf("resumed run diverges: steps %d vs %d", m.Steps, ref.Steps)
	}
}

// TestRunContextDeadline: an already-expired deadline preempts promptly and
// reports DeadlineExceeded; the step budget still binds underneath.
func TestRunContextDeadline(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	m := vm.New(p)
	if err := m.RunContext(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	m2 := vm.New(p)
	if err := m2.RunContext(context.Background(), 100); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if m2.Steps != 100 {
		t.Errorf("Steps = %d, want 100 (budget must bind exactly)", m2.Steps)
	}
}
