package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// rawProgram builds a single-function, single-block program directly,
// bypassing prog.Validate, so tests can reach fault paths the builder would
// reject at build time (unknown opcodes, out-of-range operands and targets).
func rawProgram(instrs []isa.Instr, memSize int) *prog.Program {
	p := &prog.Program{
		Name:    "raw",
		Instrs:  instrs,
		Funcs:   []prog.Func{{Name: "main", Entry: 0, End: len(instrs)}},
		Blocks:  []prog.Block{{Start: 0, End: len(instrs), Func: 0}},
		MemSize: memSize,
	}
	p.Freeze()
	return p
}

// TestFaultPaths drives every fault kind Step can raise and checks the full
// fault contract: a non-nil *Fault of the right kind, a message naming the
// faulting PC, a halted machine, and ErrHalted from then on.
func TestFaultPaths(t *testing.T) {
	tests := []struct {
		name     string
		prog     *prog.Program
		wantKind FaultKind
		wantPC   int
	}{
		{
			name: "load out of range",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: 100},
				{Op: isa.Load, A: 2, B: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultMemOOB,
			wantPC:   1,
		},
		{
			name: "load negative address",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: -7},
				{Op: isa.Load, A: 2, B: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultMemOOB,
			wantPC:   1,
		},
		{
			name: "store out of range",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: 4},
				{Op: isa.Store, A: 2, B: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultMemOOB,
			wantPC:   1,
		},
		{
			name: "indirect jump mid-block",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: 1}, // address 1 is not a block start
				{Op: isa.JmpInd, A: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultBadIndirect,
			wantPC:   1,
		},
		{
			name: "indirect jump outside program",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: 999},
				{Op: isa.JmpInd, A: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultBadIndirect,
			wantPC:   1,
		},
		{
			name: "indirect call to non-entry",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: 1}, // mid-function, not an entry
				{Op: isa.CallInd, A: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultBadCallTarget,
			wantPC:   1,
		},
		{
			name: "indirect call outside program",
			prog: rawProgram([]isa.Instr{
				{Op: isa.MovI, A: 1, Imm: -3},
				{Op: isa.CallInd, A: 1},
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultBadCallTarget,
			wantPC:   1,
		},
		{
			name: "return with empty stack",
			prog: rawProgram([]isa.Instr{
				{Op: isa.Ret},
			}, 4),
			wantKind: FaultReturnUnderflow,
			wantPC:   0,
		},
		{
			name: "call stack overflow",
			prog: rawProgram([]isa.Instr{
				{Op: isa.Call, Target: 0}, // unbounded self-recursion
				{Op: isa.Halt},
			}, 4),
			wantKind: FaultStackOverflow,
			wantPC:   0,
		},
		{
			name: "unknown opcode",
			prog: rawProgram([]isa.Instr{
				{Op: isa.Op(199)},
			}, 4),
			wantKind: FaultBadOpcode,
			wantPC:   0,
		},
		{
			name: "jump target outside program",
			prog: rawProgram([]isa.Instr{
				{Op: isa.Jmp, Target: -5},
			}, 4),
			wantKind: FaultBadPC,
			wantPC:   0,
		},
		{
			name: "fallthrough off program end",
			prog: rawProgram([]isa.Instr{
				{Op: isa.Nop},
			}, 4),
			wantKind: FaultBadPC,
			wantPC:   0,
		},
		{
			name: "register operand out of range",
			prog: rawProgram([]isa.Instr{
				{Op: isa.Add, A: 40, B: 1, C: 2},
			}, 4),
			wantKind: FaultBadRegister,
			wantPC:   0,
		},
		{
			name: "entry outside program",
			prog: func() *prog.Program {
				p := rawProgram([]isa.Instr{{Op: isa.Halt}}, 4)
				p.Entry = 99
				return p
			}(),
			wantKind: FaultBadPC,
			wantPC:   99,
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := New(tc.prog)
			err := m.Run(0)
			if err == nil {
				t.Fatal("Run succeeded, want fault")
			}
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("Run error %v (%T) is not a *Fault", err, err)
			}
			if f.Kind != tc.wantKind {
				t.Errorf("fault kind = %v, want %v", f.Kind, tc.wantKind)
			}
			if f.PC != tc.wantPC {
				t.Errorf("fault PC = %d, want %d", f.PC, tc.wantPC)
			}
			if want := fmt.Sprintf("pc %d", tc.wantPC); !strings.Contains(err.Error(), want) {
				t.Errorf("fault message %q does not name the faulting pc (%q)", err, want)
			}
			if !m.Halted {
				t.Error("machine not halted after fault")
			}
			// A faulted machine stays halted: every further Step is ErrHalted.
			for i := 0; i < 3; i++ {
				if err := m.Step(); !errors.Is(err, ErrHalted) {
					t.Fatalf("Step %d after fault = %v, want ErrHalted", i, err)
				}
			}
		})
	}
}

func TestFaultHookSeam(t *testing.T) {
	p := rawProgram([]isa.Instr{
		{Op: isa.MovI, A: 1, Imm: 7},
		{Op: isa.Jmp, Target: 0},
	}, 4)

	m := New(p)
	injected := &Fault{Kind: FaultInjected, Msg: "vm: injected trap"}
	m.SetFaultHook(func(m *Machine) error {
		if m.Steps == 3 {
			return injected
		}
		return nil
	})
	err := m.Run(0)
	if err != injected {
		t.Fatalf("Run = %v, want the injected fault", err)
	}
	if !m.Halted {
		t.Error("machine not halted after injected fault")
	}
	if m.Steps != 3 {
		t.Errorf("Steps = %d, want 3 (hook fires before the instruction executes)", m.Steps)
	}
	if err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after injected fault = %v, want ErrHalted", err)
	}

	// A nil hook disables injection; Reset alone does not clear it.
	m.Reset()
	m.SetFaultHook(nil)
	if err := m.Run(10); !errors.Is(err, ErrStepLimit) {
		t.Errorf("Run with hook removed = %v, want ErrStepLimit", err)
	}
}
