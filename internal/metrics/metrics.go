// Package metrics implements the paper's abstract evaluation of online path
// prediction schemes (Sections 3 and 5).
//
// A recorded path-execution stream is replayed through a predictor. Every
// execution is classified:
//
//   - profiled flow: the path was not yet predicted when it executed (the
//     execution was consumed by the prediction delay);
//   - hit: the path was already predicted and is in the oracle HotPath set;
//   - noise: the path was already predicted but is cold.
//
// Hit rate and noise rate are both expressed as percentages of the hot flow
// freq(HotPath), matching the paper's definitions:
//
//	HitRate(P)   = Hits(P)  / freq(HotPath) × 100
//	NoiseRate(P) = Noise(P) / freq(HotPath) × 100
//
// and the missed opportunity cost of the predictions is
//
//	MOC(P) = |P ∩ HotPath| × τ.
package metrics

import (
	"fmt"

	"netpath/internal/par"
	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
	"netpath/internal/staticpred"
)

// Point is the outcome of one (scheme, τ) evaluation.
type Point struct {
	Scheme string
	Tau    int64

	Flow    int64 // total path executions replayed
	HotFlow int64 // freq(HotPath)

	Profiled int64 // executions consumed before prediction
	Hits     int64 // post-prediction executions of hot predicted paths
	Noise    int64 // post-prediction executions of cold predicted paths

	PredictedHot  int // |P ∩ HotPath|
	PredictedCold int // |P − HotPath|
	CounterSpace  int // counters the scheme allocated
}

// HitRate returns the hit rate as a percentage of hot flow.
func (p Point) HitRate() float64 { return pct(p.Hits, p.HotFlow) }

// NoiseRate returns the noise rate as a percentage of hot flow.
func (p Point) NoiseRate() float64 { return pct(p.Noise, p.HotFlow) }

// ProfiledPct returns profiled flow as a percentage of total flow — the
// x-axis of Figures 2 and 3.
func (p Point) ProfiledPct() float64 { return pct(p.Profiled, p.Flow) }

// MOC returns the paper's nominal missed opportunity cost |P∩Hot| × τ.
func (p Point) MOC() int64 { return int64(p.PredictedHot) * p.Tau }

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// String renders the point compactly for logs and reports.
func (p Point) String() string {
	return fmt.Sprintf("%s τ=%d: profiled=%.2f%% hit=%.2f%% noise=%.2f%% (predicted %d hot + %d cold, %d counters)",
		p.Scheme, p.Tau, p.ProfiledPct(), p.HitRate(), p.NoiseRate(), p.PredictedHot, p.PredictedCold, p.CounterSpace)
}

// Evaluate replays the profile's path stream through pred and scores it
// against the hot set. tau is recorded in the result for reporting; the
// predictor itself carries its delay.
func Evaluate(pr *profile.Profile, hs *profile.HotSet, pred predict.Predictor, tau int64) Point {
	pt := Point{
		Scheme:  pred.Name(),
		Tau:     tau,
		Flow:    pr.Flow,
		HotFlow: hs.Flow,
	}
	// Ahead-of-time schemes (the static predictor) fix their predicted set
	// before the first execution; Observe never fires for them, so their
	// predictions are accounted here instead.
	if sp, ok := pred.(interface{ PrePredicted() []path.ID }); ok {
		for _, id := range sp.PrePredicted() {
			if int(id) < len(hs.IsHot) && hs.IsHot[id] {
				pt.PredictedHot++
			} else {
				pt.PredictedCold++
			}
		}
	}
	for _, id := range pr.Stream {
		if pred.IsPredicted(id) {
			if hs.IsHot[id] {
				pt.Hits++
			} else {
				pt.Noise++
			}
			continue
		}
		pt.Profiled++
		if pred.Observe(id) {
			if hs.IsHot[id] {
				pt.PredictedHot++
			} else {
				pt.PredictedCold++
			}
		}
	}
	pt.CounterSpace = pred.CounterSpace()
	return pt
}

// DefaultTaus is the paper's sweep of prediction delays, 10 to 1,000,000.
func DefaultTaus() []int64 {
	return []int64{10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
		100_000, 200_000, 500_000, 1_000_000}
}

// Factory builds a fresh predictor for a given delay.
type Factory func(tau int64) predict.Predictor

// NETFactory returns a Factory for NET prediction over the profile's paths.
func NETFactory(pr *profile.Profile) Factory {
	head := func(id path.ID) int { return pr.Paths.Head(id) }
	return func(tau int64) predict.Predictor { return predict.NewNET(tau, head) }
}

// NETSingleFactory returns a Factory for the primary-trace-only NET variant.
func NETSingleFactory(pr *profile.Profile) Factory {
	head := func(id path.ID) int { return pr.Paths.Head(id) }
	return func(tau int64) predict.Predictor { return predict.NewNETSingle(tau, head) }
}

// PathProfileFactory returns a Factory for path-profile-based prediction.
func PathProfileFactory() Factory {
	return func(tau int64) predict.Predictor { return predict.NewPathProfile(tau) }
}

// StaticFactory returns a Factory for the profile-free static scheme. The
// predicted set is computed once from the program text (it does not depend
// on τ, which the scheme fixes at zero) and the immutable predictor is
// shared across delays — every replay sees the same read-only set. A
// program malformed enough to defeat CFG construction yields an empty
// predictor; such a program cannot have produced a profile in the first
// place.
func StaticFactory(pr *profile.Profile) Factory {
	sp, err := staticpred.Predict(pr)
	if err != nil {
		sp = staticpred.NewPredictor(pr, nil)
	}
	return func(tau int64) predict.Predictor { return sp }
}

// Sweep evaluates the factory's scheme at every delay in taus. Each delay
// builds a fresh predictor and replays the shared read-only stream, so the
// points are computed concurrently on the par worker pool; the result keeps
// taus order and is identical to a serial sweep.
func Sweep(pr *profile.Profile, hs *profile.HotSet, f Factory, taus []int64) []Point {
	return par.Map(len(taus), func(i int) Point {
		return Evaluate(pr, hs, f(taus[i]), taus[i])
	})
}

// CounterSpaceRatio returns NET counter space normalized to path-profile
// counter space for a fully-observed profile (Figure 4): unique path heads
// divided by distinct paths.
func CounterSpaceRatio(pr *profile.Profile) float64 {
	paths := pr.NumPaths()
	if paths == 0 {
		return 0
	}
	return float64(pr.UniqueHeads()) / float64(paths)
}
