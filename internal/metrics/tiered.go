package metrics

import (
	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
	"netpath/internal/snapshot"
	"netpath/internal/staticpred"
)

// TieredPoint is one three-tier evaluation: the overall Point plus the
// per-tier split of hits and noise, so a report can say not just how well
// the blended predictor did, but which tier each prediction came from —
// static prior, persisted fleet profile, or the run's own live learning.
type TieredPoint struct {
	Point
	// Tiers indexes by predict.TierStatic/TierPersisted/TierLive. Flow and
	// HotFlow are shared (the stream is one stream); Profiled is only
	// meaningful on the live tier (the priors never profile).
	Tiers [3]Point
}

// PersistedIDs maps a profile snapshot onto the profile's path-ID space: the
// path IDs a restored System would have pre-armed (persisted path counters
// at or past the snapshot's τ) or pre-installed (a persisted trace at the
// path's head). Paths the profile never interned — code this run does not
// reach — resolve to nothing, exactly as a restored fragment nobody enters
// predicts nothing.
func PersistedIDs(pr *profile.Profile, snap *snapshot.Snapshot) []path.ID {
	seen := map[path.ID]bool{}
	var out []path.ID
	add := func(id path.ID) {
		if id >= 0 && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, p := range snap.Paths {
		if p.Count < snap.Tau {
			continue
		}
		add(pr.Paths.Lookup(string(p.Key)))
	}
	if len(snap.Traces) > 0 {
		byHead := map[int]bool{}
		for _, t := range snap.Traces {
			byHead[t.Start] = true
		}
		for id := 0; id < pr.Paths.NumPaths(); id++ {
			if byHead[pr.Paths.Head(path.ID(id))] {
				add(path.ID(id))
			}
		}
	}
	return out
}

// NewTieredPredictor assembles the three-tier static → persisted → live
// predictor for a profile: the static prior from program analysis, the
// persisted tier from snap (nil for none), and a live NET predictor with
// delay tau behind both.
func NewTieredPredictor(pr *profile.Profile, snap *snapshot.Snapshot, tau int64) *predict.Tiered {
	var static []path.ID
	if sp, err := staticpred.Predict(pr); err == nil {
		static = sp.PrePredicted()
	}
	var persisted []path.ID
	if snap != nil {
		persisted = PersistedIDs(pr, snap)
	}
	head := func(id path.ID) int { return pr.Paths.Head(id) }
	return predict.NewTiered(static, persisted, predict.NewNET(tau, head))
}

// TieredFactory returns a Factory building the three-tier predictor per
// delay; the static and persisted sets are resolved once and shared.
func TieredFactory(pr *profile.Profile, snap *snapshot.Snapshot) Factory {
	var static []path.ID
	if sp, err := staticpred.Predict(pr); err == nil {
		static = sp.PrePredicted()
	}
	var persisted []path.ID
	if snap != nil {
		persisted = PersistedIDs(pr, snap)
	}
	head := func(id path.ID) int { return pr.Paths.Head(id) }
	return func(tau int64) predict.Predictor {
		return predict.NewTiered(static, persisted, predict.NewNET(tau, head))
	}
}

// EvaluateTiered replays the stream through a tiered predictor, scoring the
// blend overall (identically to Evaluate) and attributing every hit, every
// noise event, and every prediction to the tier that made it.
func EvaluateTiered(pr *profile.Profile, hs *profile.HotSet, t *predict.Tiered, tau int64) TieredPoint {
	tp := TieredPoint{Point: Point{
		Scheme:  t.Name(),
		Tau:     tau,
		Flow:    pr.Flow,
		HotFlow: hs.Flow,
	}}
	for i := range tp.Tiers {
		tp.Tiers[i] = Point{Tau: tau, Flow: pr.Flow, HotFlow: hs.Flow}
	}
	tp.Tiers[predict.TierStatic].Scheme = "static"
	tp.Tiers[predict.TierPersisted].Scheme = "persisted"
	tp.Tiers[predict.TierLive].Scheme = "live"

	for _, id := range t.PrePredicted() {
		tier := t.TierOf(id)
		hot := int(id) < len(hs.IsHot) && hs.IsHot[id]
		if hot {
			tp.PredictedHot++
			tp.Tiers[tier].PredictedHot++
		} else {
			tp.PredictedCold++
			tp.Tiers[tier].PredictedCold++
		}
	}
	for _, id := range pr.Stream {
		if t.IsPredicted(id) {
			tier := t.TierOf(id)
			if hs.IsHot[id] {
				tp.Hits++
				tp.Tiers[tier].Hits++
			} else {
				tp.Noise++
				tp.Tiers[tier].Noise++
			}
			continue
		}
		tp.Profiled++
		tp.Tiers[predict.TierLive].Profiled++
		if t.Observe(id) {
			if hs.IsHot[id] {
				tp.PredictedHot++
				tp.Tiers[predict.TierLive].PredictedHot++
			} else {
				tp.PredictedCold++
				tp.Tiers[predict.TierLive].PredictedCold++
			}
		}
	}
	tp.CounterSpace = t.CounterSpace()
	tp.Tiers[predict.TierLive].CounterSpace = t.CounterSpace()
	return tp
}
