package metrics

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
)

// mkProfile builds a synthetic profile: paths[i] has head heads[i]; the
// stream is the given sequence of path indices.
func mkProfile(heads []int, stream []int) *profile.Profile {
	it := path.NewInterner()
	for i, h := range heads {
		it.Intern(fmt.Sprintf("p%d", i), h, 1)
	}
	pr := &profile.Profile{Paths: it}
	pr.Freq = make([]int64, len(heads))
	for _, idx := range stream {
		pr.Stream = append(pr.Stream, path.ID(idx))
		pr.Freq[idx]++
	}
	pr.Flow = int64(len(stream))
	return pr
}

func rep(idx, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = idx
	}
	return s
}

func TestEvaluatePathProfileMatchesPaperFormulas(t *testing.T) {
	// Three paths: 0 hot (100 execs), 1 hot (60), 2 cold (20).
	// τ=10: predicted set = {0,1,2}; Hits = (100-10)+(60-10) = 140;
	// Noise = 20-10 = 10; Profiled = 3*10 = 30.
	stream := append(append(rep(0, 100), rep(1, 60)...), rep(2, 20)...)
	pr := mkProfile([]int{1, 2, 3}, stream)
	hs := &profile.HotSet{IsHot: []bool{true, true, false}, Count: 2, Flow: 160}

	pt := Evaluate(pr, hs, predict.NewPathProfile(10), 10)
	if pt.Hits != 140 || pt.Noise != 10 || pt.Profiled != 30 {
		t.Errorf("hits/noise/profiled = %d/%d/%d, want 140/10/30", pt.Hits, pt.Noise, pt.Profiled)
	}
	if pt.PredictedHot != 2 || pt.PredictedCold != 1 {
		t.Errorf("predicted hot/cold = %d/%d, want 2/1", pt.PredictedHot, pt.PredictedCold)
	}
	if pt.MOC() != 20 {
		t.Errorf("MOC = %d, want 20", pt.MOC())
	}
	wantHit := 100 * 140.0 / 160.0
	if got := pt.HitRate(); got != wantHit {
		t.Errorf("HitRate = %v, want %v", got, wantHit)
	}
	wantNoise := 100 * 10.0 / 160.0
	if got := pt.NoiseRate(); got != wantNoise {
		t.Errorf("NoiseRate = %v, want %v", got, wantNoise)
	}
	if got := pt.ProfiledPct(); got != 100*30.0/180.0 {
		t.Errorf("ProfiledPct = %v", got)
	}
}

// TestPathProfileClosedForm checks the paper's closed form on random
// streams: under path-profile prediction, for every path p,
// post-prediction executions = max(0, freq(p) − τ).
func TestPathProfileClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nPaths := 2 + rng.Intn(8)
		heads := make([]int, nPaths)
		for i := range heads {
			heads[i] = rng.Intn(4) // heads shared across paths
		}
		var stream []int
		for i := 0; i < 500; i++ {
			stream = append(stream, rng.Intn(nPaths))
		}
		pr := mkProfile(heads, stream)
		hs := pr.Hot(0.05)
		tau := int64(1 + rng.Intn(40))
		pt := Evaluate(pr, hs, predict.NewPathProfile(tau), tau)

		var wantHits, wantNoise, wantProfiled int64
		for id, f := range pr.Freq {
			post := f - tau
			if post < 0 {
				post = 0
			}
			if hs.IsHot[id] {
				wantHits += post
			} else {
				wantNoise += post
			}
			wantProfiled += min(f, tau)
		}
		if pt.Hits != wantHits || pt.Noise != wantNoise || pt.Profiled != wantProfiled {
			t.Fatalf("trial %d τ=%d: got %d/%d/%d, want %d/%d/%d",
				trial, tau, pt.Hits, pt.Noise, pt.Profiled, wantHits, wantNoise, wantProfiled)
		}
	}
}

func TestFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	heads := []int{0, 0, 1, 1, 2}
	var stream []int
	for i := 0; i < 2000; i++ {
		stream = append(stream, rng.Intn(len(heads)))
	}
	pr := mkProfile(heads, stream)
	hs := pr.Hot(0.001)
	for _, f := range []Factory{NETFactory(pr), PathProfileFactory(), NETSingleFactory(pr)} {
		for _, tau := range []int64{1, 5, 50, 5000} {
			pt := Evaluate(pr, hs, f(tau), tau)
			if pt.Profiled+pt.Hits+pt.Noise != pr.Flow {
				t.Errorf("%s τ=%d: profiled+hits+noise = %d, want flow %d",
					pt.Scheme, tau, pt.Profiled+pt.Hits+pt.Noise, pr.Flow)
			}
		}
	}
}

func TestNETSelectsDominantTail(t *testing.T) {
	// One head, dominant path 0 (90%), minor path 1 (10%), interleaved.
	var stream []int
	for i := 0; i < 1000; i++ {
		if i%10 == 9 {
			stream = append(stream, 1)
		} else {
			stream = append(stream, 0)
		}
	}
	pr := mkProfile([]int{5, 5}, stream)
	hs := &profile.HotSet{IsHot: []bool{true, false}, Count: 1, Flow: 900}
	pt := Evaluate(pr, hs, predict.NewNET(10, func(id path.ID) int { return pr.Paths.Head(id) }), 10)
	// NET predicts the tail executing on the 10th head execution — with this
	// interleaving the dominant path is overwhelmingly likely; here it is
	// deterministic (position 10 is path 0).
	if pt.Hits == 0 {
		t.Fatal("NET failed to capture the dominant tail")
	}
	if pt.HitRate() < 95 {
		t.Errorf("HitRate = %.1f, want >= 95 (dominant path predicted early)", pt.HitRate())
	}
}

func TestSweepProfiledFlowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	heads := make([]int, 20)
	for i := range heads {
		heads[i] = rng.Intn(6)
	}
	var stream []int
	for i := 0; i < 5000; i++ {
		// Zipf-ish skew.
		idx := rng.Intn(len(heads))
		if rng.Intn(3) > 0 {
			idx = idx % 3
		}
		stream = append(stream, idx)
	}
	pr := mkProfile(heads, stream)
	hs := pr.Hot(0.001)
	taus := []int64{1, 10, 100, 1000, 10000}
	for _, f := range []Factory{NETFactory(pr), PathProfileFactory()} {
		pts := Sweep(pr, hs, f, taus)
		for i := 1; i < len(pts); i++ {
			if pts[i].Profiled < pts[i-1].Profiled {
				t.Errorf("%s: profiled flow decreased from τ=%d (%d) to τ=%d (%d)",
					pts[i].Scheme, taus[i-1], pts[i-1].Profiled, taus[i], pts[i].Profiled)
			}
			if pts[i].Hits > pts[i-1].Hits {
				t.Errorf("%s: hits increased with longer delay τ=%d", pts[i].Scheme, taus[i])
			}
		}
	}
}

func TestImmediateIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	heads := make([]int, 10)
	var stream []int
	for i := 0; i < 3000; i++ {
		stream = append(stream, rng.Intn(10))
	}
	pr := mkProfile(heads, stream)
	hs := pr.Hot(0.001)
	imm := Evaluate(pr, hs, predict.NewImmediate(), 0)
	net := Evaluate(pr, hs, predict.NewNET(10, func(id path.ID) int { return pr.Paths.Head(id) }), 10)
	pp := Evaluate(pr, hs, predict.NewPathProfile(10), 10)
	if net.Hits > imm.Hits || pp.Hits > imm.Hits {
		t.Error("immediate prediction must upper-bound hits")
	}
	if net.Noise > imm.Noise || pp.Noise > imm.Noise {
		t.Error("immediate prediction must upper-bound noise")
	}
}

func TestOracleHasZeroNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	heads := make([]int, 10)
	var stream []int
	for i := 0; i < 3000; i++ {
		stream = append(stream, rng.Intn(10)%4)
	}
	pr := mkProfile(heads, stream)
	hs := pr.Hot(0.001)
	pt := Evaluate(pr, hs, predict.NewOracle(hs.IsHot), 0)
	if pt.Noise != 0 {
		t.Errorf("oracle noise = %d, want 0", pt.Noise)
	}
	if pt.Hits != hs.Flow-int64(hs.Count) {
		t.Errorf("oracle hits = %d, want hot flow minus one first-execution per hot path = %d",
			pt.Hits, hs.Flow-int64(hs.Count))
	}
}

func TestCounterSpaceRatio(t *testing.T) {
	pr := mkProfile([]int{1, 1, 1, 2}, []int{0, 1, 2, 3})
	if got := CounterSpaceRatio(pr); got != 0.5 {
		t.Errorf("CounterSpaceRatio = %v, want 0.5 (2 heads / 4 paths)", got)
	}
	empty := mkProfile(nil, nil)
	if CounterSpaceRatio(empty) != 0 {
		t.Error("empty profile ratio must be 0")
	}
}

func TestDefaultTaus(t *testing.T) {
	taus := DefaultTaus()
	if taus[0] != 10 || taus[len(taus)-1] != 1_000_000 {
		t.Errorf("sweep range = [%d, %d], want [10, 1000000]", taus[0], taus[len(taus)-1])
	}
	for i := 1; i < len(taus); i++ {
		if taus[i] <= taus[i-1] {
			t.Error("taus must be strictly increasing")
		}
	}
}

func TestPointString(t *testing.T) {
	pt := Point{Scheme: "net", Tau: 50, Flow: 100, HotFlow: 50, Hits: 25, Noise: 5, Profiled: 70}
	s := pt.String()
	for _, want := range []string{"net", "τ=50", "hit=50.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Point.String() = %q missing %q", s, want)
		}
	}
}
