package metrics

import (
	"math/rand"
	"testing"
)

func TestBestDelayBalancesHitAndNoise(t *testing.T) {
	// A stream with a few hot paths and a swarm of lukewarm cold ones:
	// τ=1 predicts everything (max noise), τ=10^6 predicts nothing (zero
	// hits); the best delay must be interior or at least beat both ends.
	rng := rand.New(rand.NewSource(11))
	heads := make([]int, 60)
	for i := range heads {
		heads[i] = rng.Intn(8)
	}
	var stream []int
	for i := 0; i < 60_000; i++ {
		if rng.Intn(10) < 7 {
			stream = append(stream, rng.Intn(3)) // hot trio
		} else {
			stream = append(stream, 3+rng.Intn(57)) // lukewarm swarm
		}
	}
	pr := mkProfile(heads, stream)
	hs := pr.Hot(0.01)
	taus := []int64{1, 10, 50, 200, 1000, 100_000}
	best, pts := BestDelay(pr, hs, PathProfileFactory(), taus)
	if len(pts) != len(taus) {
		t.Fatalf("points = %d, want %d", len(pts), len(taus))
	}
	score := func(pt Point) float64 { return pt.HitRate() - pt.NoiseRate() }
	var bestPt, first, last Point
	for _, pt := range pts {
		if pt.Tau == best {
			bestPt = pt
		}
	}
	first, last = pts[0], pts[len(pts)-1]
	if score(bestPt) < score(first) || score(bestPt) < score(last) {
		t.Errorf("best τ=%d score %.2f must dominate the extremes (%.2f, %.2f)",
			best, score(bestPt), score(first), score(last))
	}
}

func TestBestDelayTieBreaksShort(t *testing.T) {
	// A single always-hot path: every delay achieves ~the same score, so
	// the shortest must win.
	pr := mkProfile([]int{0}, rep(0, 10_000))
	hs := pr.Hot(0.001)
	best, _ := BestDelay(pr, hs, PathProfileFactory(), []int64{10, 20, 50})
	if best != 10 {
		t.Errorf("best = %d, want 10 (tie toward the shorter delay)", best)
	}
}
