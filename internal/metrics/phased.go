package metrics

import (
	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
)

// This file implements the phase-sensitive extension of the hit/noise
// metrics sketched in Section 7 of the paper ("we plan to extend our path
// metrics to model path removal from the prediction set"). Accumulated
// profiles hide phase behaviour: a path can be hot within one phase yet
// cold in the accumulated profile, and a formerly hot path contributes
// phase-induced noise after its phase ends. The windowed evaluation below
// scores every predicted execution against the hot set of its *window*, and
// optionally retires predictions that stay unused, modelling cache flushes
// and path retiring schemes.

// PhasedConfig parameterizes the windowed evaluation.
type PhasedConfig struct {
	// Window is the number of path executions per window.
	Window int
	// HotFrac is the fractional hot threshold applied within each window
	// (a path is hot in a window iff its in-window frequency exceeds
	// HotFrac × Window).
	HotFrac float64
	// RetireAfter retires a predicted path after this many consecutive
	// windows without an execution; 0 disables retiring. A retired path
	// must re-earn its prediction with τ further executions (they count as
	// profiled flow), modelling re-selection after a cache flush.
	RetireAfter int
}

// PhasedPoint is the outcome of a windowed evaluation.
type PhasedPoint struct {
	Scheme  string
	Tau     int64
	Windows int

	Flow     int64
	HotFlow  int64 // sum over windows of per-window hot flow
	Profiled int64
	Hits     int64 // predicted executions hot in their own window
	Noise    int64 // predicted executions cold in their own window
	Retired  int   // retiring events (a path may retire more than once)
}

// HitRate returns windowed hits as a percentage of windowed hot flow.
func (p PhasedPoint) HitRate() float64 { return pct(p.Hits, p.HotFlow) }

// NoiseRate returns windowed noise as a percentage of windowed hot flow.
func (p PhasedPoint) NoiseRate() float64 { return pct(p.Noise, p.HotFlow) }

// EvaluatePhased replays the stream through pred, scoring each predicted
// execution against the hot set of the window it occurs in.
func EvaluatePhased(pr *profile.Profile, cfg PhasedConfig, pred predict.Predictor, tau int64) PhasedPoint {
	if cfg.Window <= 0 {
		cfg.Window = 1 << 16
	}
	if cfg.HotFrac <= 0 {
		cfg.HotFrac = 0.001
	}
	pt := PhasedPoint{Scheme: pred.Name(), Tau: tau, Flow: pr.Flow}

	stream := pr.Stream
	n := len(stream)
	hotThresh := int64(cfg.HotFrac * float64(cfg.Window))

	// Retiring state sits on top of the predictor (the veto models an
	// external mechanism such as a cache flush; the predictor itself is not
	// mutated). live tracks predictions currently in force; idle counts
	// consecutive windows without an execution; comeback counts profiled
	// re-executions a retired path has accumulated toward re-prediction.
	live := make(map[path.ID]bool)
	idle := make(map[path.ID]int)
	comeback := make(map[path.ID]int64)

	winFreq := make(map[path.ID]int64, 256)
	seen := make(map[path.ID]bool, 256) // predicted paths executed this window
	for lo := 0; lo < n; lo += cfg.Window {
		hi := min(lo+cfg.Window, n)
		pt.Windows++

		clear(winFreq)
		for _, id := range stream[lo:hi] {
			winFreq[id]++
		}
		for _, f := range winFreq {
			if f > hotThresh {
				pt.HotFlow += f
			}
		}

		clear(seen)
		for _, id := range stream[lo:hi] {
			if live[id] {
				seen[id] = true
				if winFreq[id] > hotThresh {
					pt.Hits++
				} else {
					pt.Noise++
				}
				continue
			}
			pt.Profiled++
			if pred.IsPredicted(id) {
				// Previously retired: re-earn the prediction.
				comeback[id]++
				if comeback[id] >= tau {
					live[id] = true
					delete(comeback, id)
					delete(idle, id)
				}
				continue
			}
			if pred.Observe(id) {
				live[id] = true
			}
		}

		if cfg.RetireAfter > 0 {
			for id := range live {
				if seen[id] {
					idle[id] = 0
					continue
				}
				idle[id]++
				if idle[id] >= cfg.RetireAfter {
					delete(live, id)
					delete(idle, id)
					pt.Retired++
				}
			}
		}
	}
	return pt
}
