package metrics

import (
	"testing"

	"netpath/internal/path"
	"netpath/internal/predict"
)

// phasedStream builds a two-phase stream: phase 1 executes paths {0,1},
// phase 2 executes paths {2,3}, each path uniformly within its phase.
func phasedStream(perPhase int) []int {
	var s []int
	for i := 0; i < perPhase; i++ {
		s = append(s, i%2)
	}
	for i := 0; i < perPhase; i++ {
		s = append(s, 2+i%2)
	}
	return s
}

func TestPhasedFlowConservation(t *testing.T) {
	pr := mkProfile([]int{0, 0, 1, 1}, phasedStream(4000))
	cfg := PhasedConfig{Window: 500, HotFrac: 0.01}
	for _, tau := range []int64{5, 50} {
		pt := EvaluatePhased(pr, cfg, predict.NewPathProfile(tau), tau)
		if pt.Profiled+pt.Hits+pt.Noise != pr.Flow {
			t.Errorf("τ=%d: profiled+hits+noise = %d, want %d", tau, pt.Profiled+pt.Hits+pt.Noise, pr.Flow)
		}
		if pt.Windows != 16 {
			t.Errorf("windows = %d, want 16", pt.Windows)
		}
	}
}

func TestPhasedDetectsPhaseInducedNoise(t *testing.T) {
	// Against the accumulated hot set, phase-1 paths stay "hot" forever; the
	// windowed metric must not credit hits for them in phase 2 — but since
	// they stop executing entirely, they contribute neither hits nor noise
	// there. Add a formerly-hot path that keeps executing rarely in phase 2:
	// its phase-2 executions are phase-induced noise.
	var stream []int
	for i := 0; i < 4000; i++ {
		stream = append(stream, i%2) // phase 1: paths 0,1 hot
	}
	for i := 0; i < 4000; i++ {
		if i%100 == 0 {
			stream = append(stream, 0) // path 0 lingers, now cold
		} else {
			stream = append(stream, 2+i%2) // phase 2: paths 2,3 hot
		}
	}
	pr := mkProfile([]int{0, 0, 1, 1}, stream)
	cfg := PhasedConfig{Window: 1000, HotFrac: 0.02}
	pt := EvaluatePhased(pr, cfg, predict.NewPathProfile(10), 10)
	if pt.Noise == 0 {
		t.Error("expected phase-induced noise from the lingering path")
	}
	if pt.Hits == 0 {
		t.Error("expected hits in both phases")
	}
}

func TestPhasedRetiringReducesStaleness(t *testing.T) {
	// A path hot in phase 1 and absent afterwards should retire.
	var stream []int
	for i := 0; i < 3000; i++ {
		stream = append(stream, 0)
	}
	for i := 0; i < 6000; i++ {
		stream = append(stream, 1)
	}
	pr := mkProfile([]int{0, 1}, stream)
	cfg := PhasedConfig{Window: 1000, HotFrac: 0.01, RetireAfter: 2}
	pt := EvaluatePhased(pr, cfg, predict.NewPathProfile(10), 10)
	if pt.Retired == 0 {
		t.Error("expected the phase-1 path to retire")
	}
}

func TestPhasedComebackRePredicts(t *testing.T) {
	// Path 0: hot, disappears long enough to retire, then returns hot. It
	// must re-earn prediction (τ profiled executions) and then hit again.
	var stream []int
	for i := 0; i < 2000; i++ {
		stream = append(stream, 0)
	}
	for i := 0; i < 4000; i++ {
		stream = append(stream, 1)
	}
	for i := 0; i < 2000; i++ {
		stream = append(stream, 0)
	}
	pr := mkProfile([]int{0, 1}, stream)
	cfg := PhasedConfig{Window: 500, HotFrac: 0.01, RetireAfter: 2}
	tau := int64(10)
	pt := EvaluatePhased(pr, cfg, predict.NewPathProfile(tau), tau)
	if pt.Retired == 0 {
		t.Fatal("path 0 did not retire during its absence")
	}
	// Hits in the comeback phase require re-prediction to have happened:
	// total hits must exceed what phase 1 alone could deliver (2000 - τ)
	// plus path 1's hits (4000 - τ).
	minWithoutComeback := int64(2000-10) + int64(4000-10)
	if pt.Hits <= minWithoutComeback {
		t.Errorf("hits = %d, want > %d (comeback must resume hitting)", pt.Hits, minWithoutComeback)
	}
}

func TestPhasedDefaultsApplied(t *testing.T) {
	pr := mkProfile([]int{0}, rep(0, 100))
	pt := EvaluatePhased(pr, PhasedConfig{}, predict.NewPathProfile(5), 5)
	if pt.Windows != 1 {
		t.Errorf("windows = %d, want 1 under default window size", pt.Windows)
	}
	if pt.Profiled+pt.Hits+pt.Noise != 100 {
		t.Error("flow not conserved under defaults")
	}
}

func TestPhasedWithNET(t *testing.T) {
	pr := mkProfile([]int{0, 0, 1, 1}, phasedStream(3000))
	head := func(id path.ID) int { return pr.Paths.Head(id) }
	cfg := PhasedConfig{Window: 500, HotFrac: 0.01}
	pt := EvaluatePhased(pr, cfg, predict.NewNET(10, head), 10)
	if pt.Profiled+pt.Hits+pt.Noise != pr.Flow {
		t.Error("flow not conserved for NET")
	}
	if pt.HitRate() < 90 {
		t.Errorf("NET phased hit rate = %.1f, want >= 90 on a clean two-phase stream", pt.HitRate())
	}
}
