package metrics

import (
	"testing"

	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
	"netpath/internal/snapshot"
)

// TestEvaluateTieredAttribution pins the per-tier split with hand-computable
// numbers: path 0 persisted+hot, path 1 live-learned+hot, path 2 cold and
// never predicted.
func TestEvaluateTieredAttribution(t *testing.T) {
	stream := append(append(rep(0, 100), rep(1, 60)...), rep(2, 3)...)
	pr := mkProfile([]int{1, 2, 3}, stream)
	hs := &profile.HotSet{IsHot: []bool{true, true, false}, Count: 2, Flow: 160}

	head := func(id path.ID) int { return pr.Paths.Head(id) }
	tiered := predict.NewTiered(nil, []path.ID{0}, predict.NewNET(10, head))
	tp := EvaluateTiered(pr, hs, tiered, 10)

	// Path 0: persisted before the stream → all 100 executions hit, tier
	// persisted; pre-predicted accounting: 1 hot.
	per := tp.Tiers[predict.TierPersisted]
	if per.Hits != 100 || per.Noise != 0 || per.PredictedHot != 1 {
		t.Errorf("persisted tier = %+v, want 100 hits, 1 predicted hot", per)
	}
	// Path 1: NET with τ=10 at head 2 → 10 profiled, 50 hits, tier live.
	// Path 2: 3 executions never reach τ → 3 profiled, no prediction.
	live := tp.Tiers[predict.TierLive]
	if live.Hits != 50 || live.Profiled != 13 || live.PredictedHot != 1 || live.PredictedCold != 0 {
		t.Errorf("live tier = %+v, want 50 hits / 13 profiled / 1 hot", live)
	}
	if st := tp.Tiers[predict.TierStatic]; st.Hits != 0 || st.Noise != 0 {
		t.Errorf("static tier = %+v, want empty", st)
	}
	// The overall point must equal the tier sums and match plain Evaluate on
	// an identical fresh predictor.
	if tp.Hits != per.Hits+live.Hits || tp.Profiled != live.Profiled {
		t.Errorf("overall %+v does not sum tiers", tp.Point)
	}
	fresh := predict.NewTiered(nil, []path.ID{0}, predict.NewNET(10, head))
	flat := Evaluate(pr, hs, fresh, 10)
	if flat.Hits != tp.Hits || flat.Noise != tp.Noise || flat.Profiled != tp.Profiled ||
		flat.PredictedHot != tp.PredictedHot || flat.PredictedCold != tp.PredictedCold {
		t.Errorf("EvaluateTiered overall %+v differs from Evaluate %+v", tp.Point, flat)
	}
}

// TestTierOfPriority: overlapping tiers attribute to the highest-priority
// one (static < persisted < live).
func TestTierOfPriority(t *testing.T) {
	head := func(id path.ID) int { return 1 }
	tiered := predict.NewTiered([]path.ID{0, 1}, []path.ID{1, 2}, predict.NewNET(1, head))
	if got := tiered.TierOf(0); got != predict.TierStatic {
		t.Errorf("TierOf(0) = %d, want static", got)
	}
	if got := tiered.TierOf(1); got != predict.TierStatic {
		t.Errorf("TierOf(1) = %d, want static (overlap resolves up)", got)
	}
	if got := tiered.TierOf(2); got != predict.TierPersisted {
		t.Errorf("TierOf(2) = %d, want persisted", got)
	}
	if got := tiered.TierOf(3); got != predict.TierNone {
		t.Errorf("TierOf(3) = %d, want none", got)
	}
	tiered.Observe(3) // τ=1: first observation predicts
	if got := tiered.TierOf(3); got != predict.TierLive {
		t.Errorf("TierOf(3) after observe = %d, want live", got)
	}
	if n := tiered.PredictedCount(); n != 4 {
		t.Errorf("PredictedCount = %d, want 4 (union, not sum)", n)
	}
}

// TestPersistedIDs: snapshot path counts past τ and trace heads both map
// into the profile's ID space; unknown keys resolve to nothing.
func TestPersistedIDs(t *testing.T) {
	pr := mkProfile([]int{1, 2, 3}, []int{0, 1, 2})
	snap := &snapshot.Snapshot{
		Tau: 10,
		Paths: []snapshot.PathCount{
			{Key: []byte("p0"), Start: 1, Branches: 1, Count: 50}, // past τ → in
			{Key: []byte("p1"), Start: 2, Branches: 1, Count: 3},  // below τ → out
			{Key: []byte("zz"), Start: 9, Branches: 1, Count: 99}, // unknown key → out
		},
		Traces: []snapshot.Trace{
			{Start: 3, Flow: 40, Steps: []snapshot.Step{{PC: 3, Next: 4}}}, // head of path 2
			{Start: 7, Flow: 10, Steps: []snapshot.Step{{PC: 7, Next: 8}}}, // head of nothing
		},
	}
	ids := PersistedIDs(pr, snap)
	want := map[path.ID]bool{0: true, 2: true}
	if len(ids) != len(want) {
		t.Fatalf("PersistedIDs = %v, want exactly %v", ids, want)
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected persisted id %d", id)
		}
	}
}
