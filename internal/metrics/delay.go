package metrics

import (
	"netpath/internal/profile"
)

// BestDelay sweeps the candidate delays and returns the one maximizing the
// net benefit hit rate − noise rate. The paper reports exactly this
// balancing act for Dynamo ("a prediction delay of 50 was for both schemes
// the most beneficial choice in balancing the amount of noise that results
// at lower thresholds and the rising profiling overhead and missed
// opportunity cost of longer prediction delays"); this helper makes the
// abstract-metric version of the trade-off queryable.
//
// Ties break toward the shorter delay (less profiling overhead, which the
// abstract metrics do not charge for).
func BestDelay(pr *profile.Profile, hs *profile.HotSet, f Factory, taus []int64) (best int64, points []Point) {
	points = Sweep(pr, hs, f, taus)
	bestScore := 0.0
	for i, pt := range points {
		score := pt.HitRate() - pt.NoiseRate()
		if i == 0 || score > bestScore {
			best = pt.Tau
			bestScore = score
		}
	}
	return best, points
}
