// Package chaos implements a deterministic, seeded, replayable fault
// injector for hardening the VM → Dynamo → predictor stack. An Injector
// produces a schedule of fault events — machine traps, trace-recording
// aborts, fragment-execution aborts, counter corruption, and selection
// spikes — and feeds them into the existing seams: the vm.Machine fault
// hook and the dynamo.Config Chaos field.
//
// Determinism is the point: an injector built from the same seed and rates
// (or the same explicit schedule) fires the identical events at the
// identical machine step counts on every run, so any failure it provokes
// replays exactly. Soft faults (recording/fragment aborts, corruption,
// spikes) perturb only the optimizer's bookkeeping, never the machine, so a
// chaos-ridden mini-Dynamo run must still compute the same final machine
// state as plain interpretation; the property tests assert exactly that.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"netpath/internal/vm"
)

// Kind enumerates injectable fault kinds.
type Kind uint8

// Fault kinds.
const (
	// TrapOOBLoad forces a machine fault styled as an out-of-range load.
	TrapOOBLoad Kind = iota
	// TrapOOBStore forces a machine fault styled as an out-of-range store.
	TrapOOBStore
	// TrapBadIndirect forces a machine fault styled as an indirect jump to a
	// non-block target.
	TrapBadIndirect
	// TrapStackOverflow forces a machine fault styled as call-stack overflow.
	TrapStackOverflow
	// AbortRecording aborts the trace recording (or path capture) in flight.
	AbortRecording
	// AbortFragment aborts the fragment execution in flight.
	AbortFragment
	// CorruptCounter adds Arg (possibly negative) to a live profiling
	// counter.
	CorruptCounter
	// SpikeSelect forces the next Arg trace selections regardless of
	// counter state, spiking the fragment-creation rate (phase-flush
	// exercise).
	SpikeSelect

	// NumKinds is the number of fault kinds.
	NumKinds
)

var kindNames = [...]string{
	"trap-oob-load", "trap-oob-store", "trap-bad-indirect", "trap-stack-overflow",
	"abort-recording", "abort-fragment", "corrupt-counter", "spike-select",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault: Kind fires at the first integration-point
// query at or after machine step Step. Arg is kind-specific (CorruptCounter:
// the delta; SpikeSelect: the burst length).
type Event struct {
	Step int64
	Kind Kind
	Arg  int64
}

// Rates parameterizes a randomly scheduled injector. All rates are expected
// events per million machine steps; zero disables that kind.
type Rates struct {
	TrapPerM        float64 // machine traps, split evenly over the 4 trap kinds
	RecordAbortPerM float64
	FragAbortPerM   float64
	CorruptPerM     float64
	SpikePerM       float64

	// SpikeLen is the forced-selection burst length per SpikeSelect event
	// (default 32).
	SpikeLen int64
	// CorruptMag is the corruption magnitude; each CorruptCounter event adds
	// ±CorruptMag, sign chosen by the seeded RNG (default 1<<30, i.e.
	// saturate the counter or wipe it out).
	CorruptMag int64
}

// Scaled returns r with every rate multiplied by f.
func (r Rates) Scaled(f float64) Rates {
	r.TrapPerM *= f
	r.RecordAbortPerM *= f
	r.FragAbortPerM *= f
	r.CorruptPerM *= f
	r.SpikePerM *= f
	return r
}

// stream produces the firing steps of one fault kind.
type stream struct {
	// Schedule mode.
	events []Event
	pos    int

	// Random mode.
	r      *rand.Rand
	seed   int64
	mean   float64 // mean steps between events; 0 = never fires
	next   int64
	newArg func(*rand.Rand) int64
}

// due pops at most one event due at or before step.
func (s *stream) due(step int64) (int64, bool) {
	if s.events != nil {
		if s.pos < len(s.events) && s.events[s.pos].Step <= step {
			a := s.events[s.pos].Arg
			s.pos++
			return a, true
		}
		return 0, false
	}
	if s.mean <= 0 || step < s.next {
		return 0, false
	}
	var arg int64
	if s.newArg != nil {
		arg = s.newArg(s.r)
	}
	s.next = step + s.gap()
	return arg, true
}

func (s *stream) gap() int64 {
	return 1 + int64(s.r.ExpFloat64()*s.mean)
}

func (s *stream) reset() {
	s.pos = 0
	if s.r != nil {
		s.r = rand.New(rand.NewSource(s.seed))
		s.next = s.gap()
	}
}

// Injector is a replayable fault event source. It implements the
// dynamo.Injector seam and provides a vm.FaultHook; the zero value is not
// usable — build one with NewSchedule or NewRandom.
type Injector struct {
	streams   [NumKinds]stream
	fired     [NumKinds]int64
	spikeLeft int64
}

// NewSchedule builds an injector over an explicit event schedule. Events
// are processed per kind in ascending Step order (the slice is copied and
// sorted; ties keep input order).
func NewSchedule(events []Event) *Injector {
	in := &Injector{}
	byKind := make([][]Event, NumKinds)
	for _, ev := range events {
		if ev.Kind < NumKinds {
			byKind[ev.Kind] = append(byKind[ev.Kind], ev)
		}
	}
	for k, evs := range byKind {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Step < evs[j].Step })
		in.streams[k].events = evs
	}
	// Kinds with no events get a non-nil empty slice so due() takes the
	// schedule path.
	for k := range in.streams {
		if in.streams[k].events == nil {
			in.streams[k].events = []Event{}
		}
	}
	return in
}

// NewRandom builds an injector whose schedule is drawn from seeded
// exponential inter-arrival times at the given rates. The same (seed,
// rates) pair always yields the identical schedule.
func NewRandom(seed int64, rates Rates) *Injector {
	if rates.SpikeLen <= 0 {
		rates.SpikeLen = 32
	}
	if rates.CorruptMag <= 0 {
		rates.CorruptMag = 1 << 30
	}
	in := &Injector{}
	perM := [NumKinds]float64{
		TrapOOBLoad:       rates.TrapPerM / 4,
		TrapOOBStore:      rates.TrapPerM / 4,
		TrapBadIndirect:   rates.TrapPerM / 4,
		TrapStackOverflow: rates.TrapPerM / 4,
		AbortRecording:    rates.RecordAbortPerM,
		AbortFragment:     rates.FragAbortPerM,
		CorruptCounter:    rates.CorruptPerM,
		SpikeSelect:       rates.SpikePerM,
	}
	for k := Kind(0); k < NumKinds; k++ {
		s := &in.streams[k]
		if perM[k] <= 0 {
			s.events = []Event{}
			continue
		}
		s.seed = seed*int64(NumKinds) + int64(k) + 1
		s.r = rand.New(rand.NewSource(s.seed))
		s.mean = 1e6 / perM[k]
		switch k {
		case CorruptCounter:
			mag := rates.CorruptMag
			s.newArg = func(r *rand.Rand) int64 {
				if r.Intn(2) == 0 {
					return mag
				}
				return -mag
			}
		case SpikeSelect:
			n := rates.SpikeLen
			s.newArg = func(*rand.Rand) int64 { return n }
		}
		s.next = s.gap()
	}
	return in
}

// Reset rewinds the injector to its initial state so the identical schedule
// replays.
func (in *Injector) Reset() {
	for k := range in.streams {
		in.streams[k].reset()
		in.fired[k] = 0
	}
	in.spikeLeft = 0
}

// Fired returns how many events of kind k have fired.
func (in *Injector) Fired(k Kind) int64 { return in.fired[k] }

// TotalFired returns the total number of fired events.
func (in *Injector) TotalFired() int64 {
	var n int64
	for _, f := range in.fired {
		n += f
	}
	return n
}

func (in *Injector) take(k Kind, step int64) (int64, bool) {
	arg, ok := in.streams[k].due(step)
	if ok {
		in.fired[k]++
	}
	return arg, ok
}

// VMFault implements the vm.FaultHook seam: it fires any due trap event as
// a machine fault at the current PC. Attach with m.SetFaultHook(in.VMFault)
// or via dynamo.Config.Chaos. The fault is deterministic in m.Steps, so the
// same injector schedule trips the plain VM and the mini-Dynamo at the same
// instruction.
func (in *Injector) VMFault(m *vm.Machine) error {
	step := m.Steps
	for _, k := range [...]Kind{TrapOOBLoad, TrapOOBStore, TrapBadIndirect, TrapStackOverflow} {
		if _, ok := in.take(k, step); ok {
			return &vm.Fault{
				Kind: vm.FaultInjected,
				PC:   m.PC,
				Msg:  fmt.Sprintf("vm: injected %v at pc %d (step %d)", k, m.PC, step),
			}
		}
	}
	return nil
}

// AbortRecording reports whether the trace recording in flight should abort
// at this step.
func (in *Injector) AbortRecording(step int64) bool {
	_, ok := in.take(AbortRecording, step)
	return ok
}

// AbortFragment reports whether the fragment execution in flight should
// abort at this step.
func (in *Injector) AbortFragment(step int64) bool {
	_, ok := in.take(AbortFragment, step)
	return ok
}

// CorruptCounter reports a counter-corruption delta due at this step.
func (in *Injector) CorruptCounter(step int64) (int64, bool) {
	return in.take(CorruptCounter, step)
}

// SpikeSelect reports whether a forced trace selection is due at this step.
// A SpikeSelect event with Arg=n makes the next n queries return true.
func (in *Injector) SpikeSelect(step int64) bool {
	if arg, ok := in.take(SpikeSelect, step); ok {
		in.spikeLeft += arg
	}
	if in.spikeLeft > 0 {
		in.spikeLeft--
		return true
	}
	return false
}
