package chaos

import (
	"reflect"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// trace walks an injector over steps [0, n) querying every integration point
// and records which (kind, step) pairs fire — the injector's full observable
// behavior.
func trace(in *Injector, n int64) []Event {
	var out []Event
	for step := int64(0); step < n; step++ {
		if in.AbortRecording(step) {
			out = append(out, Event{Step: step, Kind: AbortRecording})
		}
		if in.AbortFragment(step) {
			out = append(out, Event{Step: step, Kind: AbortFragment})
		}
		if d, ok := in.CorruptCounter(step); ok {
			out = append(out, Event{Step: step, Kind: CorruptCounter, Arg: d})
		}
		if in.SpikeSelect(step) {
			out = append(out, Event{Step: step, Kind: SpikeSelect})
		}
	}
	return out
}

var testRates = Rates{
	RecordAbortPerM: 40_000, // dense enough to fire many times in 10k steps
	FragAbortPerM:   25_000,
	CorruptPerM:     10_000,
	SpikePerM:       5_000,
	SpikeLen:        4,
	CorruptMag:      1000,
}

func TestRandomDeterminism(t *testing.T) {
	a := trace(NewRandom(7, testRates), 10_000)
	b := trace(NewRandom(7, testRates), 10_000)
	if len(a) == 0 {
		t.Fatal("no events fired; rates too low for the test to mean anything")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same (seed, rates) produced different schedules")
	}
	c := trace(NewRandom(8, testRates), 10_000)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the identical schedule")
	}
}

func TestResetReplays(t *testing.T) {
	in := NewRandom(3, testRates)
	first := trace(in, 10_000)
	firedFirst := in.TotalFired()
	in.Reset()
	if in.TotalFired() != 0 {
		t.Errorf("TotalFired after Reset = %d, want 0", in.TotalFired())
	}
	second := trace(in, 10_000)
	if !reflect.DeepEqual(first, second) {
		t.Error("Reset did not replay the identical schedule")
	}
	if in.TotalFired() != firedFirst {
		t.Errorf("TotalFired = %d on replay, want %d", in.TotalFired(), firedFirst)
	}
}

func TestScheduleFiresAtOrAfterStep(t *testing.T) {
	in := NewSchedule([]Event{
		{Step: 500, Kind: AbortRecording},
		{Step: 100, Kind: AbortRecording}, // out of order on purpose
		{Step: 200, Kind: CorruptCounter, Arg: -77},
	})
	// Nothing is due before its step.
	if in.AbortRecording(99) {
		t.Error("event fired before its scheduled step")
	}
	// An overdue event fires at the first query at or after its step — here
	// the step-100 event fires at step 150, and only one event per query.
	if !in.AbortRecording(150) {
		t.Error("overdue event did not fire")
	}
	if in.AbortRecording(150) {
		t.Error("event fired twice")
	}
	if d, ok := in.CorruptCounter(200); !ok || d != -77 {
		t.Errorf("CorruptCounter(200) = %d, %v; want -77, true", d, ok)
	}
	if !in.AbortRecording(1_000_000) {
		t.Error("second scheduled event did not fire")
	}
	if in.AbortRecording(2_000_000) {
		t.Error("exhausted schedule kept firing")
	}
	if got := in.Fired(AbortRecording); got != 2 {
		t.Errorf("Fired(AbortRecording) = %d, want 2", got)
	}
}

func TestSpikeBurst(t *testing.T) {
	in := NewSchedule([]Event{{Step: 10, Kind: SpikeSelect, Arg: 3}})
	if in.SpikeSelect(5) {
		t.Error("spike before its step")
	}
	// The event fires at step 10 and forces exactly Arg=3 selections.
	for i := 0; i < 3; i++ {
		if !in.SpikeSelect(int64(10 + i)) {
			t.Errorf("query %d of burst not forced", i)
		}
	}
	if in.SpikeSelect(20) {
		t.Error("burst exceeded its length")
	}
}

func TestVMFaultHook(t *testing.T) {
	p := func() *prog.Program {
		b := prog.NewBuilder("spin")
		b.SetMemSize(4)
		f := b.Func("main")
		f.Label("top")
		f.AddI(1, 1, 1)
		f.BrI(isa.Lt, 1, 1_000_000, "top")
		f.Halt()
		return b.MustBuild()
	}()

	run := func(in *Injector) (int64, error) {
		m := vm.New(p)
		m.SetFaultHook(in.VMFault)
		err := m.Run(0)
		return m.Steps, in.anyTrapCheck(t, m, err)
	}

	in := NewSchedule([]Event{{Step: 123, Kind: TrapBadIndirect}})
	steps, err := run(in)
	if err == nil {
		t.Fatal("scheduled trap did not surface from Run")
	}
	if steps != 123 {
		t.Errorf("trap fired at step %d, want 123", steps)
	}

	// Replay: the same schedule faults at the same step.
	in2 := NewSchedule([]Event{{Step: 123, Kind: TrapBadIndirect}})
	steps2, err2 := run(in2)
	if steps2 != steps || (err2 == nil) != (err == nil) || err2.Error() != err.Error() {
		t.Errorf("replay diverged: (%d, %v) vs (%d, %v)", steps, err, steps2, err2)
	}
}

// anyTrapCheck asserts err (if non-nil) is an injected vm.Fault and the
// machine halted, returning err for the caller's own checks.
func (in *Injector) anyTrapCheck(t *testing.T, m *vm.Machine, err error) error {
	t.Helper()
	if err == nil {
		return nil
	}
	f, ok := err.(*vm.Fault)
	if !ok {
		t.Fatalf("trap error %v (%T) is not a *vm.Fault", err, err)
	}
	if f.Kind != vm.FaultInjected {
		t.Errorf("fault kind = %v, want injected", f.Kind)
	}
	if !m.Halted {
		t.Error("machine not halted after injected trap")
	}
	return err
}
