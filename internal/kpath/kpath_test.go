package kpath

import (
	"reflect"
	"testing"
	"testing/quick"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

func pushSeq(p *Profiler, seq []Outcome) {
	for _, o := range seq {
		p.Push(o)
	}
}

func TestWindowCount(t *testing.T) {
	p := New(3, false)
	seq := []Outcome{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}}
	pushSeq(p, seq)
	// Windows counted: len(seq) - k + 1 = 3.
	if p.TotalFlow() != 3 {
		t.Errorf("TotalFlow = %d, want 3", p.TotalFlow())
	}
	if p.Updates != int64(len(seq)) {
		t.Errorf("Updates = %d, want %d", p.Updates, len(seq))
	}
}

func TestDistinctWindows(t *testing.T) {
	p := New(2, false)
	pushSeq(p, []Outcome{{1, 2}, {3, 4}, {1, 2}, {3, 4}})
	// Windows: [12,34], [34,12], [12,34] → 2 distinct.
	if p.NumPaths() != 2 {
		t.Errorf("NumPaths = %d, want 2", p.NumPaths())
	}
	ms := p.CountMultiset()
	if !reflect.DeepEqual(ms, []int64{1, 2}) {
		t.Errorf("count multiset = %v, want [1 2]", ms)
	}
}

func TestGeneralPathsIncludeBackwardEdges(t *testing.T) {
	// Unlike forward paths, a k-window spans backward branches: pushing a
	// backward outcome does not reset the window.
	p := New(3, false)
	pushSeq(p, []Outcome{{10, 20}, {30, 5}, {6, 7}}) // {30,5} is backward
	if p.TotalFlow() != 1 {
		t.Errorf("TotalFlow = %d, want 1 (window spans the backward branch)", p.TotalFlow())
	}
}

func TestLazyMatchesExact(t *testing.T) {
	f := func(words []uint32) bool {
		if len(words) < 4 {
			return true
		}
		k := 1 + int(words[0]%6)
		exact, lazy := New(k, false), New(k, true)
		for _, w := range words {
			o := Outcome{PC: int(w >> 16), Target: int(w & 0xffff)}
			exact.Push(o)
			lazy.Push(o)
		}
		return exact.TotalFlow() == lazy.TotalFlow() &&
			exact.NumPaths() == lazy.NumPaths() &&
			reflect.DeepEqual(exact.CountMultiset(), lazy.CountMultiset())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLazyRollingHashConsistency(t *testing.T) {
	// The same window reached via different prefixes must hash identically.
	a := New(2, true)
	pushSeq(a, []Outcome{{9, 9}, {1, 1}, {2, 2}})
	b := New(2, true)
	pushSeq(b, []Outcome{{7, 7}, {8, 8}, {1, 1}, {2, 2}})
	// Final window of both is [{1,1},{2,2}]; extract its hash by checking
	// that both profilers share a common key.
	common := 0
	for h := range a.lazy {
		if _, ok := b.lazy[h]; ok {
			common++
		}
	}
	if common == 0 {
		t.Error("identical windows produced disjoint hashes")
	}
}

func TestProfileOnVM(t *testing.T) {
	b := prog.NewBuilder("loop")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, 50, "loop")
	m.Halt()
	pg := b.MustBuild()

	p, err := Profile(pg, 4, false, 0)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	// Branch events: fall-through jmp once + 50 loop branches.
	var want int64
	mm := vm.New(pg)
	mm.SetListener(func(vm.BranchEvent) { want++ })
	if err := mm.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.Updates != want {
		t.Errorf("Updates = %d, want %d (all branch events)", p.Updates, want)
	}
	if p.TotalFlow() != want-4+1 {
		t.Errorf("TotalFlow = %d, want %d", p.TotalFlow(), want-4+1)
	}
	// The steady-state window (4 identical taken loop branches) dominates.
	ms := p.CountMultiset()
	if ms[len(ms)-1] < 40 {
		t.Errorf("dominant window count = %d, want >= 40", ms[len(ms)-1])
	}
}

func TestBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New(0, false)
}
