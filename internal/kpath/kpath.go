// Package kpath implements Young–Smith k-bounded general path profiling
// (TOPLAS 1999; Section 2 of the paper). A k-bounded general path is the
// sequence of the k most recently executed branches — unlike Ball–Larus
// forward paths, general paths may include backward edges. The profiler
// keeps a k-entry FIFO of branch outcomes and counts each full window.
//
// Two update strategies are provided:
//
//   - exact: the window is materialized into a byte key per branch (O(k)
//     per update), giving exact counts;
//   - lazy: a rolling polynomial hash updates in O(1) per branch, the fast
//     scheme Young and Smith's lazy algorithm targets; counts are keyed by
//     hash (collisions are theoretically possible, practically absent, and
//     the tests cross-check the two modes).
package kpath

import (
	"encoding/binary"
	"sort"

	"netpath/internal/prog"
	"netpath/internal/vm"
)

// Outcome encodes one executed branch as (pc, actual target).
type Outcome struct {
	PC     int
	Target int
}

func (o Outcome) word() uint64 { return uint64(uint32(o.PC))<<32 | uint64(uint32(o.Target)) }

// Profiler counts k-bounded general paths.
type Profiler struct {
	K    int
	Lazy bool

	// Updates counts per-branch profiling operations performed.
	Updates int64

	ring   []uint64
	pos    int
	filled int

	exact map[string]int64
	lazy  map[uint64]int64
	hash  uint64
	pow   uint64 // base^(K-1), for removing the oldest element
}

const hashBase = 1099511628211 // FNV prime as polynomial base

// New creates a k-bounded profiler. k must be positive: the window length
// is a compile-time property of the caller's profiling scheme, never
// runtime input, so a non-positive k is programmer error and panics rather
// than returning an error every caller would have to ignore.
func New(k int, lazyMode bool) *Profiler {
	if k <= 0 {
		panic("kpath: k must be positive")
	}
	p := &Profiler{K: k, Lazy: lazyMode, ring: make([]uint64, k)}
	if lazyMode {
		p.lazy = make(map[uint64]int64)
		p.pow = 1
		for i := 0; i < k-1; i++ {
			p.pow *= hashBase
		}
	} else {
		p.exact = make(map[string]int64)
	}
	return p
}

// OnBranch consumes one VM branch event.
func (p *Profiler) OnBranch(ev vm.BranchEvent) {
	p.Push(Outcome{PC: ev.PC, Target: ev.Target})
}

// Push appends one branch outcome to the FIFO and counts the window once it
// is full.
func (p *Profiler) Push(o Outcome) {
	p.Updates++
	w := o.word()
	if p.Lazy {
		if p.filled == p.K {
			oldest := p.ring[p.pos]
			p.hash -= oldest * p.pow
		}
		p.hash = p.hash*hashBase + w
	}
	p.ring[p.pos] = w
	p.pos = (p.pos + 1) % p.K
	if p.filled < p.K {
		p.filled++
	}
	if p.filled < p.K {
		return
	}
	if p.Lazy {
		p.lazy[p.hash]++
		return
	}
	key := make([]byte, 8*p.K)
	for i := 0; i < p.K; i++ {
		binary.LittleEndian.PutUint64(key[8*i:], p.ring[(p.pos+i)%p.K])
	}
	p.exact[string(key)]++
}

// NumPaths returns the number of distinct k-paths observed.
func (p *Profiler) NumPaths() int {
	if p.Lazy {
		return len(p.lazy)
	}
	return len(p.exact)
}

// TotalFlow returns the total number of counted windows.
func (p *Profiler) TotalFlow() int64 {
	var s int64
	if p.Lazy {
		for _, c := range p.lazy {
			s += c
		}
	} else {
		for _, c := range p.exact {
			s += c
		}
	}
	return s
}

// CountMultiset returns the sorted multiset of counts; the exact and lazy
// modes must agree on it (hash identity permutes keys, not counts).
func (p *Profiler) CountMultiset() []int64 {
	var out []int64
	if p.Lazy {
		for _, c := range p.lazy {
			out = append(out, c)
		}
	} else {
		for _, c := range p.exact {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Profile runs pr to completion under a fresh profiler.
func Profile(pr *prog.Program, k int, lazyMode bool, maxSteps int64) (*Profiler, error) {
	m := vm.New(pr)
	p := New(k, lazyMode)
	m.SetSink(p)
	if err := m.Run(maxSteps); err != nil && err != vm.ErrStepLimit {
		return nil, err
	}
	return p, nil
}
