package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardsSum(t *testing.T) {
	r := NewRegistry(16)
	c := r.Counter("test_total", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		s := r.NewSink()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Inc(c)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestRegistryIdempotentAndKindSafe(t *testing.T) {
	r := NewRegistry(16)
	a := r.Counter("x", "h")
	b := r.Counter("x", "different help ignored")
	if a != b {
		t.Fatal("re-registering a counter name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a name as a different kind must panic")
		}
	}()
	r.Gauge("x", "h")
}

func TestGauge(t *testing.T) {
	r := NewRegistry(16)
	g := r.Gauge("occ", "")
	g.Set(7)
	g.Max(3)
	if g.Value() != 7 {
		t.Fatalf("Max(3) lowered the gauge: %d", g.Value())
	}
	g.Max(10)
	if g.Value() != 10 {
		t.Fatalf("Max(10) = %d, want 10", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(16)
	h := r.Histogram("sizes", "")
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 1000, int64(1) << 40} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	wantSum := int64(0+1+2+3+4+5+1000) + int64(1)<<40
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), wantSum)
	}
	// Bucket invariants: v=2 lands in the le=2 bucket, v=3,4 in le=4.
	if got := h.buckets[1].Load(); got != 1 {
		t.Errorf("le=2 bucket = %d, want 1", got)
	}
	if got := h.buckets[2].Load(); got != 2 {
		t.Errorf("le=4 bucket = %d, want 2", got)
	}
	// The overflow bucket absorbs the huge value.
	if got := h.buckets[histBuckets-1].Load(); got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{-5: 0, 0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	if got := bucketOf(int64(1) << 62); got != histBuckets-1 {
		t.Errorf("bucketOf(2^62) = %d, want overflow bucket %d", got, histBuckets-1)
	}
}

// TestZeroAllocWritePath pins the tentpole claim: the enabled hot path —
// counter add, histogram observe, ring emit — allocates nothing.
func TestZeroAllocWritePath(t *testing.T) {
	r := NewRegistry(1 << 10)
	c := r.Counter("hot_total", "")
	h := r.Histogram("hot_sizes", "")
	g := r.Gauge("hot_occ", "")
	s := r.NewSink()
	i := int64(0)
	got := testing.AllocsPerRun(10000, func() {
		s.Add(c, 1)
		s.Observe(h, i%257)
		s.Set(g, i)
		s.Emit(EvFragEnter, i, int(i%1024), i)
		i++
	})
	if got != 0 {
		t.Fatalf("telemetry write path allocates %v allocs/op, want 0", got)
	}
}

func TestProgressReports(t *testing.T) {
	r := NewRegistry(16)
	done := r.Counter("done", "")
	planned := r.Counter("planned", "")
	planned.Add(10)
	done.Add(4)
	var buf syncBuffer
	p := StartProgress(&buf, "sweep", done, planned, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "sweep: 4/10 cells (40.0%)") {
		t.Fatalf("progress output missing cells/percent line:\n%s", out)
	}
	if !strings.Contains(out, "eta") {
		t.Fatalf("progress output missing ETA:\n%s", out)
	}
	if StartProgress(&buf, "off", done, planned, 0) != nil {
		t.Fatal("interval <= 0 must disable progress")
	}
	(*Progress)(nil).Stop() // must not panic
}

// syncBuffer is a mutex-guarded bytes.Buffer: the progress goroutine writes
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry(0).Histogram("q_test", "")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 1000 observations of 100: every quantile lands in the (64,128] bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v <= 64 || v > 128 {
			t.Errorf("Quantile(%v) = %d, want within (64,128]", q, v)
		}
	}
	// A bimodal distribution: 90% at ~10, 10% at ~1000. p50 must sit in the
	// low mode's bucket, p99 in the high mode's.
	h2 := NewRegistry(0).Histogram("q_test2", "")
	for i := 0; i < 900; i++ {
		h2.Observe(10)
	}
	for i := 0; i < 100; i++ {
		h2.Observe(1000)
	}
	if v := h2.Quantile(0.5); v <= 8 || v > 16 {
		t.Errorf("bimodal p50 = %d, want within (8,16]", v)
	}
	if v := h2.Quantile(0.99); v <= 512 || v > 1024 {
		t.Errorf("bimodal p99 = %d, want within (512,1024]", v)
	}
	// Quantiles are monotone in q.
	last := int64(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		v := h2.Quantile(q)
		if v < last {
			t.Errorf("Quantile not monotone at %v: %d < %d", q, v, last)
		}
		last = v
	}
	// Everything in the overflow bucket: the estimate is its lower bound.
	h3 := NewRegistry(0).Histogram("q_test3", "")
	h3.Observe(1 << 40)
	if v := h3.Quantile(0.9); v != UpperBound(histBuckets-2) {
		t.Errorf("overflow quantile = %d, want %d", v, UpperBound(histBuckets-2))
	}
}
