package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry(64)
	c := r.Counter("frag_enters_total", "fragment entries")
	r.Counter("flushes_total", "cache flushes").Add(2)
	g := r.Gauge("head_table_len", "live head counters")
	h := r.Histogram("fragment_size_instrs", "trace length at emit")
	s := r.NewSink()
	s.Add(c, 41)
	s.Inc(c)
	s.Set(g, 17)
	s.Observe(h, 3)
	s.Observe(h, 100)
	s.Emit(EvFlush, 1000, 0, 2)
	s.Emit(EvFragEnter, 1001, 64, 0)
	return r
}

func TestSnapshotJSON(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Schema != Schema {
		t.Fatalf("schema %q, want %q", snap.Schema, Schema)
	}
	if snap.UnixMillis == 0 {
		t.Error("snapshot missing timestamp")
	}
	byName := map[string]int64{}
	for _, c := range snap.Counters {
		byName[c.Name] = c.Value
	}
	if byName["frag_enters_total"] != 42 || byName["flushes_total"] != 2 {
		t.Fatalf("counter values wrong: %+v", snap.Counters)
	}
	// Counters are sorted by name for stable diffs.
	if snap.Counters[0].Name != "flushes_total" {
		t.Fatalf("counters not name-sorted: %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 17 {
		t.Fatalf("gauges wrong: %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms wrong: %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 2 || hs.Sum != 103 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if snap.EventsEmitted != 2 || snap.EventCap != 64 {
		t.Fatalf("event header wrong: emitted %d cap %d", snap.EventsEmitted, snap.EventCap)
	}
}

func TestEventsJSON(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	next, err := r.WriteEventsJSON(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Fatalf("cursor %d, want 2", next)
	}
	var out struct {
		Schema string      `json:"schema"`
		Events []EventSnap `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != Schema || len(out.Events) != 2 {
		t.Fatalf("events payload wrong: %+v", out)
	}
	if out.Events[0].Kind != "flush" || out.Events[1].Kind != "frag-enter" {
		t.Fatalf("event kinds wrong: %+v", out.Events)
	}
}

func TestPrometheusText(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE netpath_frag_enters_total counter",
		"netpath_frag_enters_total 42",
		"# TYPE netpath_head_table_len gauge",
		"netpath_head_table_len 17",
		"# TYPE netpath_fragment_size_instrs histogram",
		`netpath_fragment_size_instrs_bucket{le="+Inf"} 2`,
		"netpath_fragment_size_instrs_sum 103",
		"netpath_fragment_size_instrs_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the le=4 bucket includes the le=2 observation...
	// observation 3 lands in le=4; cumulative counts never decrease.
	if strings.Index(out, `le="4"} 1`) < 0 {
		t.Errorf("cumulative bucket missing:\n%s", out)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := populated()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !Active() {
		t.Error("Serve must mark telemetry active")
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if !strings.Contains(get("/metrics"), "netpath_frag_enters_total 42") {
		t.Error("/metrics missing counter")
	}
	if !strings.Contains(get("/snapshot"), Schema) {
		t.Error("/snapshot missing schema")
	}
	if !strings.Contains(get("/events"), "frag-enter") {
		t.Error("/events missing event")
	}
	if !strings.Contains(get("/debug/vars"), "netpath_telemetry") {
		t.Error("/debug/vars missing published snapshot")
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "telemetry") {
		t.Error("/debug/pprof/cmdline not served")
	}
}
