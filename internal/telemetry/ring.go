// The event ring: a fixed-size, lock-free, multi-producer buffer of typed
// telemetry events. Producers claim a global sequence number with one atomic
// add and store the event into the preallocated slot that sequence maps to;
// nothing is ever allocated after construction and writers never block.
// Readers drain lazily (exporters, the /events endpoint): a drain walks the
// sequence window still resident in the buffer and skips slots that a faster
// writer has reclaimed mid-read, so a slow reader loses old events — by
// design — but never tears one. Every slot field is an atomic word, which is
// what makes the skip detection sound and keeps the race detector satisfied
// under the parallel experiment pipeline.
package telemetry

import "sync/atomic"

// EventKind classifies ring events.
type EventKind uint8

// Event kinds emitted by the VM → Dynamo → predictor stack.
const (
	// EvHeadPromote: a path head's counter reached τ and trace recording (or
	// path-profile arming) began; Site is the head address, Arg the counter
	// value at promotion.
	EvHeadPromote EventKind = iota
	// EvFragEnter: control entered a cached fragment from the interpreter;
	// Site is the fragment start.
	EvFragEnter
	// EvFragExit: control left the fragment cache back to the interpreter;
	// Site is the exit target address.
	EvFragExit
	// EvFragLink: a fragment exit transferred directly into a successor
	// fragment (linked jump); Site is the successor's start.
	EvFragLink
	// EvFragEmit: an optimized trace was installed in the cache; Site is the
	// fragment start, Arg its length in instructions.
	EvFragEmit
	// EvFragDemote: a faulting fragment was evicted back to interpretation;
	// Site is the fragment start, Arg its abort count.
	EvFragDemote
	// EvFlush: the fragment cache was flushed; Arg is the number of resident
	// fragments discarded.
	EvFlush
	// EvBlacklist: a recording abort raised a head's backoff; Site is the
	// head, Arg the abort count.
	EvBlacklist
	// EvChaosInject: an injected soft fault was absorbed; Arg is the
	// chaos.Kind-compatible code of what was injected.
	EvChaosInject
	// EvBail: the system gave up on dynamic optimization; Arg encodes the
	// BailReason index.
	EvBail
	// EvPredict: an online predictor (replay evaluation) predicted a path
	// hot; Site is the path head, Arg the path ID.
	EvPredict
	// EvVMFault: the machine faulted; Arg is the vm.FaultKind code, Site the
	// faulting PC.
	EvVMFault

	// NumEventKinds is the number of event kinds.
	NumEventKinds
)

var eventKindNames = [...]string{
	"head-promote", "frag-enter", "frag-exit", "frag-link", "frag-emit",
	"frag-demote", "flush", "blacklist", "chaos-inject", "bail", "predict",
	"vm-fault",
}

// String names the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "kind-unknown"
}

// Event is one drained ring event.
type Event struct {
	// Seq is the global sequence number (1-based, gap-free across all
	// producers; gaps in a drain mean the reader lost the race to a writer).
	Seq uint64
	// Step is the machine step count at emission (0 when not applicable).
	Step int64
	// Kind classifies the event.
	Kind EventKind
	// Site is the kind-specific code address (head, fragment start, PC).
	Site int32
	// Arg is the kind-specific argument.
	Arg int64
}

// slot is one ring cell. All fields are atomics: a writer invalidates seq,
// stores the payload, then publishes seq, so a reader that sees the same
// valid seq before and after reading the payload read a complete event.
type slot struct {
	seq      atomic.Uint64 // 0 = being written; else the event's sequence
	step     atomic.Int64
	kindSite atomic.Uint64 // kind<<32 | uint32(site)
	arg      atomic.Int64
}

// Ring is the fixed-size lock-free event buffer.
type Ring struct {
	mask  uint64
	next  atomic.Uint64 // sequence ticket; the next event gets next.Add(1)
	slots []slot
}

// NewRing creates a ring with at least size slots (rounded up to a power of
// two; <= 0 uses DefaultRingSize).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Emitted returns the total number of events ever emitted.
func (r *Ring) Emitted() uint64 { return r.next.Load() }

// Emit appends one event: one atomic add to claim the sequence, then four
// word stores into the preallocated slot. Never blocks, never allocates.
func (r *Ring) Emit(kind EventKind, step int64, site int32, arg int64) {
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0) // invalidate while the payload is in flight
	s.step.Store(step)
	s.kindSite.Store(uint64(kind)<<32 | uint64(uint32(site)))
	s.arg.Store(arg)
	s.seq.Store(seq)
}

// Drain appends to buf every event with sequence in (after, Emitted()] that
// is still resident, in sequence order, and returns the extended buffer and
// the new cursor. Events older than the ring window, or overwritten between
// the cursor read and the slot read, are skipped (the sequence numbers make
// the loss visible to the caller). Pass after=0 and a reused buf for a lazy
// periodic drain.
func (r *Ring) Drain(after uint64, buf []Event) ([]Event, uint64) {
	head := r.next.Load()
	lo := after + 1
	if head > uint64(len(r.slots)) && lo < head-uint64(len(r.slots))+1 {
		// Older sequences have been reclaimed; start at the oldest that can
		// still be resident.
		lo = head - uint64(len(r.slots)) + 1
	}
	for seq := lo; seq <= head; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.seq.Load() != seq {
			continue // lost to a writer (overwritten or in flight)
		}
		ev := Event{
			Seq:  seq,
			Step: s.step.Load(),
			Arg:  s.arg.Load(),
		}
		ks := s.kindSite.Load()
		ev.Kind = EventKind(ks >> 32)
		ev.Site = int32(uint32(ks))
		if s.seq.Load() != seq {
			continue // overwritten while reading; drop the torn copy
		}
		buf = append(buf, ev)
	}
	return buf, head
}
