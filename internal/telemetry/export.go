// Exporters: the versioned JSON snapshot (netpath-telemetry/v1), the
// Prometheus text exposition, and expvar publication. Exporters only read
// atomics; they can run concurrently with the hottest writers and a snapshot
// is internally consistent per instrument (counters are summed shard by
// shard, so a snapshot races only at the granularity of single adds).
// Export formatting is cold by construction: it runs on scrape, not on the
// instrument write path.
//
//netpathvet:cold-file
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"time"
)

// Schema identifies the snapshot format; bump on incompatible changes
// (versioned like internal/benchjson's netpath-bench/v1).
const Schema = "netpath-telemetry/v1"

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// BucketSnap is one histogram bucket: Count observations at most UpperBound
// (UpperBound -1 = overflow bucket, unbounded).
type BucketSnap struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnap is one histogram in a snapshot. Buckets with zero counts are
// elided.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// EventSnap is one drained event.
type EventSnap struct {
	Seq  uint64 `json:"seq"`
	Step int64  `json:"step"`
	Kind string `json:"kind"`
	Site int32  `json:"site"`
	Arg  int64  `json:"arg"`
}

// Snapshot is the full exported state of a registry.
type Snapshot struct {
	Schema     string          `json:"schema"`
	UnixMillis int64           `json:"unix_millis"`
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	// EventsEmitted is the lifetime event count; EventCap the ring capacity.
	// Emitted-minus-cap events are no longer drainable (lazy readers lose
	// old events, never new ones).
	EventsEmitted uint64 `json:"events_emitted"`
	EventCap      int    `json:"event_cap"`
}

// Snapshot captures the registry's current state (without draining events).
func (r *Registry) Snapshot() Snapshot {
	cs, gs, hs := r.instruments()
	snap := Snapshot{
		Schema:        Schema,
		UnixMillis:    time.Now().UnixMilli(),
		Counters:      make([]CounterSnap, 0, len(cs)),
		EventsEmitted: r.ring.Emitted(),
		EventCap:      r.ring.Cap(),
	}
	for _, c := range cs {
		snap.Counters = append(snap.Counters, CounterSnap{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range gs {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, h := range hs {
		hsnap := HistogramSnap{Name: h.name, Help: h.help, Count: h.Count(), Sum: h.Sum()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hsnap.Buckets = append(hsnap.Buckets, BucketSnap{UpperBound: UpperBound(i), Count: n})
			}
		}
		snap.Histograms = append(snap.Histograms, hsnap)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteEventsJSON drains events newer than after and writes them as a JSON
// array, returning the new cursor.
func (r *Registry) WriteEventsJSON(w io.Writer, after uint64) (uint64, error) {
	evs, next := r.ring.Drain(after, nil)
	out := make([]EventSnap, len(evs))
	for i, ev := range evs {
		out[i] = EventSnap{Seq: ev.Seq, Step: ev.Step, Kind: ev.Kind.String(), Site: ev.Site, Arg: ev.Arg}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return next, enc.Encode(struct {
		Schema string      `json:"schema"`
		After  uint64      `json:"after"`
		Next   uint64      `json:"next"`
		Events []EventSnap `json:"events"`
	}{Schema: Schema, After: after, Next: next, Events: out})
}

// promPrefix namespaces every exported series.
const promPrefix = "netpath_"

// WritePrometheus writes the registry in the Prometheus text exposition
// format (counters, gauges, and histograms with cumulative buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs := r.instruments()
	for _, c := range cs {
		if c.help != "" {
			fmt.Fprintf(w, "# HELP %s%s %s\n", promPrefix, c.name, c.help)
		}
		fmt.Fprintf(w, "# TYPE %s%s counter\n%s%s %d\n", promPrefix, c.name, promPrefix, c.name, c.Value())
	}
	for _, g := range gs {
		if g.help != "" {
			fmt.Fprintf(w, "# HELP %s%s %s\n", promPrefix, g.name, g.help)
		}
		fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %d\n", promPrefix, g.name, promPrefix, g.name, g.Value())
	}
	for _, h := range hs {
		if h.help != "" {
			fmt.Fprintf(w, "# HELP %s%s %s\n", promPrefix, h.name, h.help)
		}
		fmt.Fprintf(w, "# TYPE %s%s histogram\n", promPrefix, h.name)
		cum := int64(0)
		for i := 0; i < histBuckets-1; i++ {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s%s_bucket{le=\"%d\"} %d\n", promPrefix, h.name, UpperBound(i), cum)
		}
		fmt.Fprintf(w, "%s%s_bucket{le=\"+Inf\"} %d\n", promPrefix, h.name, h.Count())
		fmt.Fprintf(w, "%s%s_sum %d\n", promPrefix, h.name, h.Sum())
		fmt.Fprintf(w, "%s%s_count %d\n", promPrefix, h.name, h.Count())
	}
	return nil
}

// publishOnce guards the process-global expvar name (expvar panics on
// duplicate Publish).
var publishOnce sync.Once

// PublishExpvar publishes the default registry's snapshot under the expvar
// name "netpath_telemetry" (visible on /debug/vars). Idempotent.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("netpath_telemetry", expvar.Func(func() any {
			return Def.Snapshot()
		}))
	})
}
