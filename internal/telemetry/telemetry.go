// Package telemetry is the zero-allocation observability layer of the
// VM → Dynamo → predictor stack. The paper's thesis — profiling overhead
// decides whether hot path prediction pays off — applies to the system's own
// introspection too: observability must itself obey "less is more", so every
// hot-path primitive here is a handful of atomic word operations on
// preallocated state, and the fully disabled path (no Sink installed) costs
// the caller exactly one nil check.
//
// The pieces:
//
//   - Counter: a sharded atomic counter. Each parallel worker (one Sink per
//     dynamo.System / pipeline cell) writes its own cache-line-padded shard,
//     so the experiment grid aggregates per-cell counts without bouncing a
//     shared line; Value sums the shards on read.
//   - Gauge: a single atomic last-write-wins value (table occupancy).
//   - Histogram: a bounded power-of-two-bucket distribution (path lengths,
//     fragment sizes, head-counter values at promotion).
//   - Ring: a fixed-size lock-free event buffer of typed events with global
//     sequence numbers, drained lazily by exporters (see ring.go).
//   - Registry: the named home of all of the above, exported as a versioned
//     JSON snapshot, Prometheus text, and expvar (see export.go, http.go).
//
// Instrumented packages declare their instruments at init against the
// process-wide Def registry and write through a *Sink. A nil *Sink disables
// every site; the write path never allocates.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// numShards is the counter shard count. Shards are assigned to Sinks
// round-robin; the experiment pool runs up to GOMAXPROCS workers, and 8
// padded shards keep simultaneous writers off each other's cache lines
// without bloating every counter (8 shards × 64 B = 512 B per counter).
const numShards = 8

// shardPad pads each shard to its own cache line.
type shardPad struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value is
// unusable; obtain one from a Registry (or the package-level NewCounter).
type Counter struct {
	name   string
	help   string
	shards [numShards]shardPad
}

// Name returns the counter's stable registered name.
func (c *Counter) Name() string { return c.name }

// Add adds d to the counter through shard 0. Use Sink.Add on hot paths so
// concurrent workers write distinct shards.
func (c *Counter) Add(d int64) { c.shards[0].v.Add(d) }

// Inc increments the counter by one through shard 0.
func (c *Counter) Inc() { c.shards[0].v.Add(1) }

// addShard adds d to one shard; the Sink write path.
func (c *Counter) addShard(shard uint32, d int64) {
	c.shards[shard&(numShards-1)].v.Add(d)
}

// Value returns the current total across shards.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is a last-write-wins instantaneous value (e.g. table occupancy).
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Name returns the gauge's stable registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Max raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every histogram: bucket i counts
// observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1), and the
// last bucket absorbs everything larger — a bounded distribution sketch that
// never grows and never allocates on observe.
const histBuckets = 24

// Histogram is a bounded power-of-two histogram. Observations are three
// atomic adds (bucket, count, sum); precision above 2^(histBuckets-1) folds
// into the overflow bucket.
type Histogram struct {
	name    string
	help    string
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Name returns the histogram's stable registered name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// UpperBound returns bucket i's inclusive upper bound (the last bucket is
// unbounded and reports -1).
func UpperBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return int64(1) << uint(i)
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution by linear interpolation within the power-of-two bucket that
// crosses the target rank. With at most 2x-wide buckets the estimate is
// within a factor of 2 of the true value — plenty for the p50/p95/p99 a
// status page reports. Returns 0 on an empty histogram. The read races
// concurrent observes benignly: each bucket load is atomic, and a torn
// cross-bucket view can only misplace the estimate by in-flight
// observations.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = UpperBound(i - 1)
			}
			hi := UpperBound(i)
			if hi < 0 { // overflow bucket: no upper bound to interpolate to
				return lo
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum += n
	}
	return UpperBound(histBuckets - 2)
}

// Registry owns named instruments and the event ring. Registration is
// mutex-guarded and idempotent by name; the read/write paths of the
// instruments themselves are lock-free.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any
	order  []string // registration order, for stable iteration before sort

	ring      *Ring
	nextShard atomic.Uint32
}

// DefaultRingSize is the event ring capacity of registries built by
// NewRegistry (a power of two).
const DefaultRingSize = 1 << 14

// NewRegistry creates an empty registry with an event ring of ringSize
// slots (rounded up to a power of two; <= 0 uses DefaultRingSize).
func NewRegistry(ringSize int) *Registry {
	return &Registry{
		byName: make(map[string]any),
		ring:   NewRing(ringSize),
	}
}

// Def is the process-wide default registry. Instrumented packages register
// their instruments here at init; an idle registry costs nothing until a
// Sink writes into it.
var Def = NewRegistry(DefaultRingSize)

// active reports whether the process opted into telemetry collection
// (serving -telemetry-addr, or a bench harness measuring the enabled path).
// Pipeline code uses it to decide whether to hand Sinks to the systems it
// spawns; instrument writes themselves are gated only by their Sink.
var active atomic.Bool

// SetActive records the process-wide opt-in.
func SetActive(on bool) { active.Store(on) }

// Active reports the process-wide opt-in.
func Active() bool { return active.Load() }

// Ring returns the registry's event ring.
func (r *Registry) Ring() *Ring { return r.ring }

// Counter returns the counter registered under name, creating it if needed.
// Re-registering a name as a different instrument kind panics: names are the
// stable exported identity and must not collide.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		c, ok := got.(*Counter)
		if !ok {
			panic("telemetry: " + name + " already registered as a different kind")
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		g, ok := got.(*Gauge)
		if !ok {
			panic("telemetry: " + name + " already registered as a different kind")
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		h, ok := got.(*Histogram)
		if !ok {
			panic("telemetry: " + name + " already registered as a different kind")
		}
		return h
	}
	h := &Histogram{name: name, help: help}
	r.byName[name] = h
	r.order = append(r.order, name)
	return h
}

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) *Counter { return Def.Counter(name, help) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge { return Def.Gauge(name, help) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string) *Histogram { return Def.Histogram(name, help) }

// instruments returns the registered instruments sorted by name, split by
// kind (the exporters' stable iteration order).
func (r *Registry) instruments() (cs []*Counter, gs []*Gauge, hs []*Histogram) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	byName := make(map[string]any, len(names))
	for _, n := range names {
		byName[n] = r.byName[n]
	}
	r.mu.Unlock()
	sortStrings(names)
	for _, n := range names {
		switch v := byName[n].(type) {
		case *Counter:
			cs = append(cs, v)
		case *Gauge:
			gs = append(gs, v)
		case *Histogram:
			hs = append(hs, v)
		}
	}
	return cs, gs, hs
}

// sortStrings is an insertion sort: instrument counts are tens, and keeping
// the package stdlib-lean beats pulling in sort for one call site.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Sink is a per-worker write handle: it pins a counter shard (assigned
// round-robin at creation) and carries the registry's event ring. One Sink
// per dynamo.System / pipeline cell keeps parallel workers on distinct
// cache lines. A nil *Sink is the disabled state; every method is safe to
// skip behind a single nil check and the write path never allocates.
type Sink struct {
	reg   *Registry
	ring  *Ring
	shard uint32
}

// NewSink returns a write handle on the registry. Returns a valid Sink from
// a nil registry too, bound to Def, so callers can unconditionally build one.
func (r *Registry) NewSink() *Sink {
	if r == nil {
		r = Def
	}
	return &Sink{reg: r, ring: r.ring, shard: r.nextShard.Add(1) & (numShards - 1)}
}

// Registry returns the sink's registry.
func (s *Sink) Registry() *Registry { return s.reg }

// Add adds d to c through the sink's shard.
func (s *Sink) Add(c *Counter, d int64) { c.addShard(s.shard, d) }

// Inc increments c through the sink's shard.
func (s *Sink) Inc(c *Counter) { c.addShard(s.shard, 1) }

// Observe records v into h.
func (s *Sink) Observe(h *Histogram, v int64) { h.Observe(v) }

// Set stores v into g.
func (s *Sink) Set(g *Gauge, v int64) { g.Set(v) }

// Emit appends a typed event to the registry's ring.
func (s *Sink) Emit(kind EventKind, step int64, site int, arg int64) {
	s.ring.Emit(kind, step, int32(site), arg)
}
