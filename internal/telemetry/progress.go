// The periodic stderr progress line for long experiment sweeps. The
// pipeline's workers already count finished cells into sharded telemetry
// counters; Progress just samples those counters on a ticker and prints one
// line — cells done, rate, ETA — so a multi-hour sweep is never a silent
// black box. Sampling is read-only and off the workers' path entirely.
//
//netpathvet:cold-file
package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress periodically reports done/planned counter pairs to a writer.
type Progress struct {
	w        io.Writer
	label    string
	done     *Counter
	planned  *Counter
	interval time.Duration

	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
}

// StartProgress begins a progress loop printing every interval to w, reading
// the done and planned counters. Returns nil (a no-op) when interval <= 0.
// Call Stop to end the loop; a final line is printed iff any work was done.
func StartProgress(w io.Writer, label string, done, planned *Counter, interval time.Duration) *Progress {
	if interval <= 0 {
		return nil
	}
	p := &Progress{
		w: w, label: label, done: done, planned: planned,
		interval: interval, start: time.Now(), stop: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.report(false)
		case <-p.stop:
			return
		}
	}
}

// report prints one progress line. final also prints when the tick would be
// silent (done == 0 is skipped on periodic ticks: nothing has started yet).
func (p *Progress) report(final bool) {
	done, planned := p.done.Value(), p.planned.Value()
	if done == 0 && !final {
		return
	}
	elapsed := time.Since(p.start)
	line := fmt.Sprintf("%s: %d", p.label, done)
	if planned > done {
		line += fmt.Sprintf("/%d cells (%.1f%%)", planned, 100*float64(done)/float64(planned))
	} else {
		line += " cells"
	}
	line += fmt.Sprintf(", elapsed %s", elapsed.Round(time.Second))
	if done > 0 && planned > done {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(planned-done))
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}

// Stop ends the loop and prints a final summary line. Safe on a nil
// Progress.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.report(true)
}
