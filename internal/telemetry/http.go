// The telemetry HTTP endpoint behind cmd/hotpath's and cmd/dynamo's
// -telemetry-addr flag:
//
//	/metrics        Prometheus text exposition
//	/snapshot       versioned JSON snapshot (netpath-telemetry/v1)
//	/events         lazy JSON drain of the event ring (?after=N resumes)
//	/debug/vars     expvar (includes the published snapshot)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// Request handling is cold: it serves scrapes, never instrument writes.
//
//netpathvet:cold-file
package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// RegisterOn mounts the registry's scrape routes on an external mux, so a
// host service (cmd/netpathd) serves telemetry and its own API from one
// listener. The routes are exactly the standalone server's; registering two
// registries on one mux is a caller error (duplicate patterns panic, as
// net/http always does).
func (r *Registry) RegisterOn(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		after, _ := strconv.ParseUint(req.URL.Query().Get("after"), 10, 64)
		w.Header().Set("Content-Type", "application/json")
		if _, err := r.WriteEventsJSON(w, after); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the registry's HTTP mux (the standalone-server form of
// RegisterOn).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	r.RegisterOn(mux)
	return mux
}

// Serve starts the telemetry HTTP server on addr in a background goroutine
// and returns once the listener is bound (so ":0" callers can read the
// resolved address). It marks the process telemetry-active and publishes the
// expvar snapshot. Close the returned server to stop.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	if r == nil {
		r = Def
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: %w", err)
	}
	SetActive(true)
	PublishExpvar()
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
