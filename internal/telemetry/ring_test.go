package telemetry

import (
	"sync"
	"testing"
)

func TestRingRoundUpAndCap(t *testing.T) {
	if got := NewRing(100).Cap(); got != 128 {
		t.Fatalf("Cap = %d, want 128", got)
	}
	if got := NewRing(0).Cap(); got != DefaultRingSize {
		t.Fatalf("Cap = %d, want default %d", got, DefaultRingSize)
	}
}

func TestRingDrainInOrder(t *testing.T) {
	r := NewRing(64)
	for i := int64(1); i <= 10; i++ {
		r.Emit(EvFlush, i*100, int32(i), i)
	}
	evs, next := r.Drain(0, nil)
	if next != 10 || len(evs) != 10 {
		t.Fatalf("Drain: %d events, cursor %d; want 10, 10", len(evs), next)
	}
	for i, ev := range evs {
		want := int64(i + 1)
		if ev.Seq != uint64(want) || ev.Step != want*100 || ev.Site != int32(want) || ev.Arg != want || ev.Kind != EvFlush {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	// Resuming from the cursor drains nothing new.
	evs, next2 := r.Drain(next, evs[:0])
	if len(evs) != 0 || next2 != next {
		t.Fatalf("resumed drain returned %d events", len(evs))
	}
}

func TestRingOverwriteLosesOldest(t *testing.T) {
	r := NewRing(8)
	for i := int64(1); i <= 20; i++ {
		r.Emit(EvFragEnter, i, 0, i)
	}
	evs, next := r.Drain(0, nil)
	if next != 20 {
		t.Fatalf("cursor %d, want 20", next)
	}
	if len(evs) == 0 || len(evs) > 8 {
		t.Fatalf("drained %d events from an 8-slot ring", len(evs))
	}
	// The survivors are the newest window, still in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("drain out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 20 {
		t.Fatalf("newest drained seq %d, want 20", evs[len(evs)-1].Seq)
	}
}

// TestRingConcurrent hammers the ring from parallel producers while a reader
// drains, mirroring the parallel experiment pipeline; the race detector (CI
// runs this with -race) proves drains never tear and every drained event is
// internally consistent (Arg mirrors Step, written by the same producer).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(256)
	const producers, perProducer = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		var cursor uint64
		var buf []Event
		for {
			buf, cursor = r.Drain(cursor, buf[:0])
			for _, ev := range buf {
				if ev.Arg != ev.Step {
					t.Errorf("torn event: step %d arg %d", ev.Step, ev.Arg)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				v := int64(p)*perProducer + i
				r.Emit(EvFragEnter, v, int32(p), v)
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()
	if got := r.Emitted(); got != producers*perProducer {
		t.Fatalf("Emitted = %d, want %d", got, producers*perProducer)
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EventKind(0); k < NumEventKinds; k++ {
		if k.String() == "kind-unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if NumEventKinds.String() != "kind-unknown" {
		t.Fatal("out-of-range kind must name itself unknown")
	}
}

// TestRingWraparoundLazyDrain exercises the seqlock torn-read path under
// real contention: 8 writers wrap a tiny ring hundreds of times while a
// deliberately lazy reader drains only occasionally, so almost every slot a
// drain visits is being overwritten. Three invariants must hold no matter
// how badly the reader loses the race: sequence numbers are strictly
// increasing across drains, every drained event is internally consistent
// (payload fields belong to one emission — no torn mixes), and a final
// quiescent drain returns the ring's full residual window gap-free.
// Meaningful primarily under -race, where a non-atomic slot field or a
// missing invalidate step turns into a report.
func TestRingWraparoundLazyDrain(t *testing.T) {
	const (
		writers   = 8
		perWriter = 10_000
	)
	r := NewRing(16) // tiny: forces thousands of wraparounds

	// Payload encoding: step uniquely identifies the emission; site and arg
	// are derived from it, so any torn read mixing two emissions breaks the
	// relation.
	site := func(step int64) int32 { return int32(step % int64(writers)) }
	arg := func(step int64) int64 { return step*3 + 7 }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				step := int64(w*perWriter + i + 1)
				r.Emit(EvFragEnter, step, site(step), arg(step))
			}
		}(w)
	}

	check := func(evs []Event, lastSeq uint64) uint64 {
		for _, ev := range evs {
			if ev.Seq <= lastSeq {
				t.Fatalf("sequence not increasing: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Site != site(ev.Step) || ev.Arg != arg(ev.Step) {
				t.Fatalf("torn event: %+v (want site %d arg %d)",
					ev, site(ev.Step), arg(ev.Step))
			}
		}
		return lastSeq
	}

	// The lazy reader: sparse drains while the writers are wrapping.
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		var cursor, lastSeq uint64
		var buf []Event
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf, cursor = r.Drain(cursor, buf[:0])
			lastSeq = check(buf, lastSeq)
		}
	}()

	wg.Wait()
	close(stop)
	rwg.Wait()

	const total = writers * perWriter
	if got := r.Emitted(); got != total {
		t.Fatalf("Emitted = %d, want %d", got, total)
	}
	// Quiescent drain: the residual window must be complete and gap-free —
	// exactly the last Cap() sequences, each consistent.
	evs, cursor := r.Drain(0, nil)
	if cursor != total {
		t.Fatalf("final cursor = %d, want %d", cursor, total)
	}
	if len(evs) != r.Cap() {
		t.Fatalf("final drain: %d events, want the full window of %d", len(evs), r.Cap())
	}
	wantSeq := uint64(total - r.Cap() + 1)
	for _, ev := range evs {
		if ev.Seq != wantSeq {
			t.Fatalf("final window gap: seq %d, want %d", ev.Seq, wantSeq)
		}
		wantSeq++
	}
	check(evs, uint64(total-r.Cap()))
}
