package asm_test

import (
	"fmt"
	"log"

	"netpath/internal/asm"
	"netpath/internal/vm"
)

// ExampleParse assembles a small program and runs it.
func ExampleParse() {
	src := `
.mem 4
func main:
    movi r1, 6
    movi r2, 7
    mul r3, r1, r2
    store [r0+0], r3
    halt
`
	p, err := asm.Parse("answer", src)
	if err != nil {
		log.Fatal(err)
	}
	m := vm.New(p)
	if err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Mem[0])
	// Output:
	// 42
}
