package asm

import (
	"testing"

	"netpath/internal/randprog"
	"netpath/internal/vm"
)

// TestRandomProgramsRoundTrip exercises the assembler on random programs:
// Format then Parse must reproduce the exact program image, and execution
// of the round-tripped program must be bit-identical.
func TestRandomProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		checkRoundTrip(t, p)
		if t.Failed() {
			t.Fatalf("seed %d: structural round-trip failed", seed)
		}
		p2, err := Parse(p.Name, Format(p))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m1, m2 := vm.New(p), vm.New(p2)
		if err := m1.Run(20_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m2.Run(20_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m1.Steps != m2.Steps || m1.Reg != m2.Reg {
			t.Fatalf("seed %d: round-tripped program diverged", seed)
		}
	}
}
