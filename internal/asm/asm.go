// Package asm provides a textual assembly format for the toy machine:
// a parser that assembles source text into a prog.Program (via the
// prog.Builder, so all structural invariants are enforced), and a formatter
// that renders a program back to parseable source. Format and Parse
// round-trip exactly for builder-produced programs.
//
// Syntax:
//
//	; line comment (also #)
//	.mem 64              ; memory size in words
//	.data 16 = 7         ; initial memory word
//	.dataptr 17 = loop   ; memory word holding a label's address
//	.entry main          ; entry function (default: first function)
//
//	func main:
//	    movi r0, 0
//	loop:
//	    addi r0, r0, 1
//	    bri.lt r0, 10, loop
//	    halt
//
// Instruction mnemonics and operand shapes match isa.Instr.String():
// three-address ALU ops ("add r1, r2, r3"), immediate forms
// ("addi r1, r2, 5"), memory via "load r4, [r5+8]" and "store [r5+8], r4",
// and control transfers naming labels ("jmp loop", "br.ge r1, r2, done",
// "call f", "jmpind r7").
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// Parse assembles source text into a program named name.
func Parse(name, src string) (*prog.Program, error) {
	p := &parser{b: prog.NewBuilder(name)}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexAny(line, ";#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("asm:%d: %w", i+1, err)
		}
	}
	return p.b.Build()
}

type parser struct {
	b *prog.Builder
	f *prog.FuncBuilder
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "."):
		return p.directive(line)
	case strings.HasPrefix(line, "func "):
		name := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "func ")), ":")
		if name == "" {
			return fmt.Errorf("empty function name")
		}
		p.f = p.b.Func(name)
		return nil
	case strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t"):
		if p.f == nil {
			return fmt.Errorf("label outside function")
		}
		p.f.Label(strings.TrimSuffix(line, ":"))
		return nil
	default:
		if p.f == nil {
			return fmt.Errorf("instruction outside function")
		}
		return p.instr(line)
	}
}

func (p *parser) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".mem":
		if len(fields) != 2 {
			return fmt.Errorf(".mem wants one argument")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad .mem size %q", fields[1])
		}
		p.b.SetMemSize(n)
		return nil
	case ".data", ".dataptr":
		// .data ADDR = VALUE | .dataptr ADDR = LABEL
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		parts := strings.SplitN(rest, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("%s wants ADDR = VALUE", fields[0])
		}
		addr, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("bad %s address %q", fields[0], parts[0])
		}
		val := strings.TrimSpace(parts[1])
		if fields[0] == ".data" {
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bad .data value %q", val)
			}
			p.b.SetMem(addr, v)
		} else {
			p.b.SetMemLabel(addr, val)
		}
		return nil
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry wants a function name")
		}
		p.b.SetEntry(fields[1])
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

// operand splitting: "movi r0, -3" -> mnemonic "movi", ops ["r0","-3"].
func splitOperands(line string) (string, []string) {
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return line, nil
	}
	mn := line[:sp]
	rest := strings.TrimSpace(line[sp:])
	if rest == "" {
		return mn, nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return mn, parts
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "[rB+off]" (off may be negative or omitted).
func parseMem(s string) (uint8, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	// Split at the first +/- after the register.
	cut := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			cut = i
			break
		}
	}
	regPart, offPart := inner, "0"
	if cut >= 0 {
		regPart = inner[:cut]
		offPart = inner[cut:]
		offPart = strings.TrimPrefix(offPart, "+")
	}
	b, err := parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	off, err := parseImm(strings.TrimSpace(offPart))
	if err != nil {
		return 0, 0, err
	}
	return b, off, nil
}

func parseCond(s string) (isa.Cond, error) {
	switch s {
	case "eq":
		return isa.Eq, nil
	case "ne":
		return isa.Ne, nil
	case "lt":
		return isa.Lt, nil
	case "le":
		return isa.Le, nil
	case "gt":
		return isa.Gt, nil
	case "ge":
		return isa.Ge, nil
	}
	return 0, fmt.Errorf("bad condition %q", s)
}

var op3ByName = map[string]isa.Op{
	"add": isa.Add, "sub": isa.Sub, "mul": isa.Mul, "div": isa.Div,
	"rem": isa.Rem, "and": isa.And, "or": isa.Or, "xor": isa.Xor,
	"shl": isa.Shl, "shr": isa.Shr,
}

var opImmByName = map[string]isa.Op{
	"addi": isa.AddI, "muli": isa.MulI, "andi": isa.AndI, "remi": isa.RemI,
}

func (p *parser) instr(line string) error {
	mn, ops := splitOperands(line)
	cond := isa.Cond(0)
	if dot := strings.IndexByte(mn, '.'); dot >= 0 {
		c, err := parseCond(mn[dot+1:])
		if err != nil {
			return err
		}
		cond = c
		mn = mn[:dot]
	}
	want := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	switch mn {
	case "nop":
		if err := want(0); err != nil {
			return err
		}
		p.f.Nop()
	case "halt":
		if err := want(0); err != nil {
			return err
		}
		p.f.Halt()
	case "ret":
		if err := want(0); err != nil {
			return err
		}
		p.f.Ret()
	case "movi":
		if err := want(2); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		p.f.MovI(a, imm)
	case "mov":
		if err := want(2); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		p.f.Mov(a, b)
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr":
		if err := want(3); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		c, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		p.f.Op3(op3ByName[mn], a, b, c)
	case "addi", "muli", "andi", "remi":
		if err := want(3); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		p.f.Emit(isa.Instr{Op: opImmByName[mn], A: a, B: b, Imm: imm})
	case "load":
		if err := want(2); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b, off, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		p.f.Load(a, b, off)
	case "store":
		if err := want(2); err != nil {
			return err
		}
		b, off, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		a, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		p.f.Store(a, b, off)
	case "jmp":
		if err := want(1); err != nil {
			return err
		}
		p.f.Jmp(ops[0])
	case "br":
		if err := want(3); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		p.f.Br(cond, a, b, ops[2])
	case "bri":
		if err := want(3); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		p.f.BrI(cond, a, imm, ops[2])
	case "jmpind":
		if err := want(1); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		p.f.JmpInd(a)
	case "call":
		if err := want(1); err != nil {
			return err
		}
		p.f.Call(ops[0])
	case "callind":
		if err := want(1); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		p.f.CallInd(a)
	default:
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return nil
}
