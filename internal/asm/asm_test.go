package asm

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"netpath/internal/prog"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

const fib = `
; iterative fibonacci: Mem[0] = fib(20)
.mem 8

func main:
    movi r1, 0      ; a
    movi r2, 1      ; b
    movi r3, 0      ; i
loop:
    add r4, r1, r2
    mov r1, r2
    mov r2, r4
    addi r3, r3, 1
    bri.lt r3, 19, loop
    store [r0+0], r2
    halt
`

func TestParseAndRunFib(t *testing.T) {
	p, err := Parse("fib", fib)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := vm.New(p)
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Mem[0] != 6765 { // fib(20)
		t.Errorf("Mem[0] = %d, want 6765", m.Mem[0])
	}
}

const callsAndTables = `
.mem 16
.data 4 = 99
.dataptr 5 = other
.entry main

func main:
    load r1, [r0+5]
    jmpind r1
other:
    call helper
    store [r0+1], r2
    halt

func helper:
    load r2, [r0+4]
    addi r2, r2, 1
    ret
`

func TestParseDirectivesAndIndirect(t *testing.T) {
	p, err := Parse("tbl", callsAndTables)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := vm.New(p)
	if err := m.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Mem[1] != 100 {
		t.Errorf("Mem[1] = %d, want 100", m.Mem[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"instrOutsideFunc": "movi r0, 1",
		"labelOutsideFunc": "x:",
		"badMnemonic":      "func f:\n floop r1\n halt",
		"badRegister":      "func f:\n movi r99, 1\n halt",
		"badImmediate":     "func f:\n movi r1, xyz\n halt",
		"badOperandCount":  "func f:\n movi r1\n halt",
		"badCond":          "func f:\n top:\n bri.zz r1, 1, top\n halt",
		"badDirective":     ".bogus 3",
		"badMemSize":       ".mem -1",
		"badData":          ".data 1 = zz",
		"badDataSyntax":    ".data 1",
		"undefinedLabel":   "func f:\n jmp nowhere\n halt",
		"badMemOperand":    "func f:\n load r1, r2\n halt",
		"emptyFuncName":    "func :",
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			if _, err := Parse("bad", src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse("bad", "func f:\n nop\n floop\n halt")
	if err == nil || !strings.Contains(err.Error(), "asm:3") {
		t.Errorf("error %v must carry line number 3", err)
	}
}

func sortedMem(m []prog.MemInit) []prog.MemInit {
	out := append([]prog.MemInit(nil), m...)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func checkRoundTrip(t *testing.T, p *prog.Program) {
	t.Helper()
	src := Format(p)
	p2, err := Parse(p.Name, src)
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, truncate(src, 2000))
	}
	if !reflect.DeepEqual(p.Instrs, p2.Instrs) {
		for i := range p.Instrs {
			if i < len(p2.Instrs) && p.Instrs[i] != p2.Instrs[i] {
				t.Fatalf("instruction %d differs: %v vs %v", i, p.Instrs[i], p2.Instrs[i])
			}
		}
		t.Fatalf("instruction count differs: %d vs %d", len(p.Instrs), len(p2.Instrs))
	}
	if !reflect.DeepEqual(p.Funcs, p2.Funcs) {
		t.Error("functions differ after round-trip")
	}
	if !reflect.DeepEqual(p.Blocks, p2.Blocks) {
		t.Error("blocks differ after round-trip")
	}
	if p.Entry != p2.Entry || p.MemSize != p2.MemSize {
		t.Error("entry or memory size differ after round-trip")
	}
	if !reflect.DeepEqual(sortedMem(p.InitMem), sortedMem(p2.InitMem)) {
		t.Error("memory initializers differ after round-trip")
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func TestRoundTripFib(t *testing.T) {
	p, err := Parse("fib", fib)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, p)
}

func TestRoundTripWorkloads(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := b.Build(0.01)
			if err != nil {
				t.Fatal(err)
			}
			checkRoundTrip(t, p)
		})
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.01)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.Name, Format(p))
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := vm.New(p), vm.New(p2)
	if err := m1.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(0); err != nil {
		t.Fatal(err)
	}
	if m1.Steps != m2.Steps || m1.Reg != m2.Reg {
		t.Error("round-tripped program diverged")
	}
	for i := range m1.Mem {
		if m1.Mem[i] != m2.Mem[i] {
			t.Fatalf("memory differs at %d", i)
		}
	}
}

func TestFormatReadable(t *testing.T) {
	p, err := Parse("fib", fib)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	for _, want := range []string{".mem 8", "func main:", "bri.lt", "store [r0+0], r2", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestNegativeOffsets(t *testing.T) {
	src := `
.mem 8
func main:
    movi r1, 4
    store [r1+-2], r1
    load r2, [r1-2]
    halt
`
	p, err := Parse("neg", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := vm.New(p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Mem[2] != 4 || m.Reg[2] != 4 {
		t.Errorf("negative offsets wrong: mem[2]=%d r2=%d", m.Mem[2], m.Reg[2])
	}
	checkRoundTrip(t, p)
}
