package asm

import (
	"testing"

	"netpath/internal/workload"
)

// FuzzParse feeds arbitrary source text to the assembler. The parser must
// never panic: it either rejects the input with an error or produces a
// program on which Format∘Parse is the identity — formatting the parsed
// program and parsing it again reproduces the same canonical text.
func FuzzParse(f *testing.F) {
	f.Add("func main:\n    halt\n")
	f.Add(".mem 8\nfunc main:\n    movi r1, 3\nloop:\n    addi r1, r1, -1\n    bri.gt r1, 0, loop\n    store [r0+0], r1\n    halt\n")
	f.Add("func f:\n    call g\n    halt\nfunc g:\n    ret\n")
	f.Add(".mem 16\n.init 3 = 7\n.initlabel 4 = main\nfunc main:\n    movi r5, 4\n    load r6, [r5+0]\n    jmpind r6\n")
	f.Add("; comment only\n")
	f.Add(".mem -1\nfunc main:\n    halt\n")
	f.Add("func main:\n    br.xx r1, r2, main\n")
	if b, err := workload.ByName("go"); err == nil {
		if p, err := b.Build(0.01); err == nil {
			f.Add(Format(p))
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		text := Format(p)
		// Reparse under the same name: Format embeds the program name in its
		// header comment, so identity only holds name-for-name.
		p2, err := Parse("fuzz", text)
		if err != nil {
			t.Fatalf("Format output does not reparse: %v\n--- formatted ---\n%s", err, text)
		}
		if text2 := Format(p2); text2 != text {
			t.Fatalf("Format∘Parse is not a fixed point\n--- first ---\n%s\n--- second ---\n%s", text, text2)
		}
	})
}
