package dynamo

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/snapshot"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

// buildNestedLoop is a deterministic two-level loop whose inner path is
// identical on every iteration — the shape where an interrupted-and-restored
// run must converge to exactly the fragment cache of an uninterrupted one,
// independent of where the interruption lands.
func buildNestedLoop(t *testing.T, outer, inner int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("nested")
	b.SetMemSize(8)
	f := b.Func("main")
	f.MovI(0, 0)
	f.Label("outer")
	f.MovI(1, 0)
	f.Label("inner")
	f.AddI(2, 2, 1)
	f.AddI(1, 1, 1)
	f.BrI(isa.Lt, 1, inner, "inner")
	f.AddI(0, 0, 1)
	f.BrI(isa.Lt, 0, outer, "outer")
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// replayConfig disables the cumulative heuristics (flush window, bail-out)
// whose arithmetic depends on absolute path-event counts, which a
// split-into-two-processes run cannot preserve; everything else is default.
func replayConfig(scheme Scheme, tau int64) Config {
	cfg := DefaultConfig(scheme, tau)
	cfg.FlushWindow = 0
	cfg.BailoutAfter = 0
	return cfg
}

// cacheImage flattens the fragment cache to a comparable form: sorted
// (start, steps) pairs.
type fragImage struct {
	Start int
	Steps []snapshot.Step
}

func cacheImage(s *System) []fragImage {
	var out []fragImage
	for start, fr := range s.cache {
		img := fragImage{Start: start}
		for _, st := range fr.Steps {
			img.Steps = append(img.Steps, snapshot.Step{PC: st.PC, Next: st.Next})
		}
		out = append(out, img)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TestSnapshotReplayEquivalence is the warm-start contract: interrupt a cold
// run at an arbitrary step, snapshot it, Restore into a fresh System, run to
// completion — and the final fragment cache must be exactly what one
// uninterrupted run produces, along with identical architectural state.
func TestSnapshotReplayEquivalence(t *testing.T) {
	p := buildNestedLoop(t, 400, 25)

	full := New(p, replayConfig(SchemeNET, 5))
	if _, err := full.Run(); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := cacheImage(full)
	if len(want) == 0 {
		t.Fatal("uninterrupted run cached nothing; test program too cold")
	}

	for _, cut := range []int64{97, 1003, 5000} {
		cold := New(p, replayConfig(SchemeNET, 5))
		cold.cfg.MaxSteps = cut
		if _, err := cold.Run(); !errors.Is(err, vm.ErrStepLimit) {
			t.Fatalf("cut %d: err = %v, want step limit", cut, err)
		}
		snap := cold.Snapshot("")

		warm := New(p, replayConfig(SchemeNET, 5))
		if err := warm.Restore(snap); err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if _, err := warm.Run(); err != nil {
			t.Fatalf("cut %d: warm run: %v", cut, err)
		}
		if got := cacheImage(warm); !reflect.DeepEqual(got, want) {
			t.Errorf("cut %d: warm fragment cache differs from uninterrupted run:\n got %+v\nwant %+v",
				cut, got, want)
		}
		if warm.Machine().Reg != full.Machine().Reg {
			t.Errorf("cut %d: architectural state differs after warm run", cut)
		}
	}
}

// TestRestoreWarmStart: a restored System must start hot — fragments
// installed before the first guest instruction, interpreted instructions
// collapsing versus the cold run, and persisted tier-2 decisions re-enqueued
// so superblock coverage arrives within the first flush window rather than
// after re-learning.
func TestRestoreWarmStart(t *testing.T) {
	p := buildHotLoop(t, 60_000)

	tc := NewTier2Compiler(1, 16)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 4
	cold := New(p, cfg)
	coldRes, err := cold.Run()
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	snap := cold.Snapshot("")
	if len(snap.Traces) == 0 {
		t.Fatal("cold run snapshot has no traces")
	}
	hasT2 := false
	for _, tr := range snap.Traces {
		hasT2 = hasT2 || tr.Tier2
	}
	if !hasT2 {
		t.Fatal("cold run promoted nothing; snapshot carries no tier-2 decision")
	}

	tc2 := NewTier2Compiler(1, 16)
	defer tc2.Close()
	cfg2 := cfg
	cfg2.Tier2 = tc2
	warm := New(p, cfg2)
	if err := warm.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if warm.res.RestoredFragments == 0 || warm.res.RestoredHeads == 0 {
		t.Fatalf("nothing restored: %+v", warm.res)
	}
	if warm.res.RestoredT2 == 0 {
		t.Fatal("persisted tier-2 decision was not re-enqueued at restore")
	}
	// The compile was enqueued before the first guest instruction; give the
	// background worker its publication window, then run.
	waitTier2(t, tc2, 1)
	warmRes, err := warm.Run()
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warmRes.T2Enters == 0 {
		t.Error("warm run never entered the pre-promoted superblock")
	}
	if warmRes.InterpInstrs*2 > coldRes.InterpInstrs {
		t.Errorf("warm run interpreted %d instrs, want ≤ half of cold %d",
			warmRes.InterpInstrs, coldRes.InterpInstrs)
	}
	if warm.Machine().Reg != cold.Machine().Reg {
		t.Error("warm run architectural state differs from cold run")
	}
}

// TestRestoreRejects pins the refusal cases: live system, wrong program,
// wrong scheme — each a typed error, each leaving the System cold but
// runnable.
func TestRestoreRejects(t *testing.T) {
	p := buildNestedLoop(t, 10, 10)
	good := New(p, replayConfig(SchemeNET, 5))
	if _, err := good.Run(); err != nil {
		t.Fatal(err)
	}
	snap := good.Snapshot("")

	live := New(p, replayConfig(SchemeNET, 5))
	if _, err := live.Run(); err != nil {
		t.Fatal(err)
	}
	if err := live.Restore(snap); !errors.Is(err, ErrRestoreLive) {
		t.Errorf("restore into live system: err = %v, want ErrRestoreLive", err)
	}

	other := buildHotLoop(t, 100)
	sys := New(other, replayConfig(SchemeNET, 5))
	if err := sys.Restore(snap); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("cross-program restore: err = %v, want ErrFingerprintMismatch", err)
	}

	pp := New(p, replayConfig(SchemePathProfile, 5))
	if err := pp.Restore(snap); !errors.Is(err, ErrSchemeMismatch) {
		t.Errorf("cross-scheme restore: err = %v, want ErrSchemeMismatch", err)
	}
	// A refused Restore must leave the System cold but fully runnable.
	if _, err := pp.Run(); err != nil {
		t.Errorf("run after refused restore: %v", err)
	}
}

// TestRestoreRespectsBlacklist: a head the collecting fleet permanently
// blacklisted must be neither counted nor re-installed by Restore.
func TestRestoreRespectsBlacklist(t *testing.T) {
	p := buildNestedLoop(t, 50, 20)
	cold := New(p, replayConfig(SchemeNET, 5))
	if _, err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	snap := cold.Snapshot("")
	if len(snap.Traces) == 0 {
		t.Fatal("no traces to poison")
	}
	victim := snap.Traces[0].Start
	snap.Blacklist = append(snap.Blacklist, snapshot.BlackEntry{Addr: victim, Aborts: 99})

	warm := New(p, replayConfig(SchemeNET, 5))
	if err := warm.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if warm.cache[victim] != nil {
		t.Error("blacklisted head's trace was installed anyway")
	}
	for i, k := range warm.heads.keys {
		if k == victim && warm.heads.vals[i] > 0 {
			t.Error("blacklisted head's counter was seeded anyway")
		}
	}
}

// TestRestorePathProfile: persisted path counters re-arm under the
// PathProfile scheme — counts survive, armed paths emit on first completion.
func TestRestorePathProfile(t *testing.T) {
	p := buildNestedLoop(t, 200, 25)
	cold := New(p, replayConfig(SchemePathProfile, 5))
	if _, err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	snap := cold.Snapshot("")
	if len(snap.Paths) == 0 {
		t.Fatal("PathProfile snapshot carries no path counts")
	}

	warm := New(p, replayConfig(SchemePathProfile, 5))
	if err := warm.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if warm.res.RestoredPaths == 0 {
		t.Fatal("no path counters restored")
	}
	warmRes, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	coldRes := cold.res
	if warmRes.InterpInstrs >= coldRes.InterpInstrs {
		t.Errorf("warm PathProfile run interpreted %d instrs, cold %d: no warm-up win",
			warmRes.InterpInstrs, coldRes.InterpInstrs)
	}
}

// TestSnapshotCodecRoundTrip drives a real benchmark's profile through the
// full pipeline: run → Snapshot → encode → decode under the System's own
// limits → Restore — the exact path cmd/dynamo takes across a restart.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cold := New(p, DefaultConfig(SchemeNET, 50))
	if _, err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	snap := cold.Snapshot("tenant-a")

	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, snapshot.NewFile(snap)); err != nil {
		t.Fatal(err)
	}
	warm := New(p, DefaultConfig(SchemeNET, 50))
	file, err := snapshot.Decode(&buf, warm.SnapshotLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Snapshots) != 1 || !reflect.DeepEqual(file.Snapshots[0], snap) {
		t.Fatal("snapshot did not survive the codec")
	}
	if err := warm.Restore(file.Snapshots[0]); err != nil {
		t.Fatal(err)
	}
	if warm.res.RestoredFragments == 0 {
		t.Fatal("nothing restored after codec round trip")
	}
	if _, err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	if warm.Machine().Reg != cold.Machine().Reg {
		t.Error("architectural state differs after snapshot round trip")
	}
}

// TestSnapshotMergeAcrossRuns: merging snapshots from two runs of the same
// program and restoring the merge must warm-start at least as well as either
// input alone (join semantics: the merge dominates both inputs).
func TestSnapshotMergeAcrossRuns(t *testing.T) {
	p := buildNestedLoop(t, 300, 25)
	s1 := New(p, replayConfig(SchemeNET, 5))
	s1.cfg.MaxSteps = 2000
	if _, err := s1.Run(); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatal(err)
	}
	s2 := New(p, replayConfig(SchemeNET, 5))
	if _, err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	merged, err := snapshot.Merge(s1.Snapshot(""), s2.Snapshot(""))
	if err != nil {
		t.Fatal(err)
	}
	warm := New(p, replayConfig(SchemeNET, 5))
	if err := warm.Restore(merged); err != nil {
		t.Fatal(err)
	}
	if warm.res.RestoredFragments < s2.res.Fragments {
		t.Errorf("merge restored %d fragments, full run had %d",
			warm.res.RestoredFragments, s2.res.Fragments)
	}
}
