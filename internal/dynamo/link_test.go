package dynamo

import (
	"fmt"
	"math"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// transIdentity checks that TransCycles decomposes exactly into its four
// sources — every fragment entry, linked jump, exit, and flush accounted at
// its configured cost, whichever stepper executed it.
func transIdentity(t *testing.T, tag string, res Result, c CostModel) {
	t.Helper()
	want := c.FragEnter*float64(res.FragEnters) +
		c.LinkedJump*float64(res.LinkedJumps) +
		c.FragExit*float64(res.FragExits) +
		c.FlushCost*float64(res.Flushes)
	if diff := math.Abs(res.TransCycles - want); diff > 1e-6*(1+math.Abs(want)) {
		t.Errorf("%s: TransCycles %.2f != %.2f (enters %d, links %d, exits %d, flushes %d)",
			tag, res.TransCycles, want, res.FragEnters, res.LinkedJumps, res.FragExits, res.Flushes)
	}
}

// multiPhase builds `loops` sequential counted loops, repeated `outer`
// times: each loop becomes its own fragment, and control hops between them.
func multiPhase(loops int, iters, outer int64) *prog.Program {
	b := prog.NewBuilder("multiphase")
	b.SetMemSize(8)
	m := b.Func("main")
	m.MovI(7, 0)
	m.Label("outer")
	for j := 0; j < loops; j++ {
		lbl := fmt.Sprintf("l%d", j)
		m.MovI(0, 0)
		m.Label(lbl)
		m.AddI(1, 1, 1)
		m.AddI(0, 0, 1)
		m.BrI(isa.Lt, 0, iters, lbl)
	}
	m.AddI(7, 7, 1)
	m.BrI(isa.Lt, 7, outer, "outer")
	m.Halt()
	return b.MustBuild()
}

// rareArmLoop builds a dominant loop with a branch arm taken once every 16
// iterations: the fragment records the common arm, so the rare iterations
// diverge mid-trace — a guaranteed source of early exits.
func rareArmLoop(n int64) *prog.Program {
	b := prog.NewBuilder("rarearm")
	b.SetMemSize(8)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.AndI(2, 0, 15)
	m.BrI(isa.Eq, 2, 0, "rare")
	m.AddI(1, 1, 1) // common arm
	m.Jmp("join")
	m.Label("rare")
	m.AddI(1, 1, 100)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Store(1, 5, 1)
	m.Halt()
	return b.MustBuild()
}

// TestLinkedTransferCompletionAndEarlyExit drives a dominant loop whose
// fragment links to itself: the common iterations are completion exits
// taken as linked jumps, and the rare branch arm diverges mid-trace as an
// early exit. Both boundaries must land with the accounting identity intact.
func TestLinkedTransferCompletionAndEarlyExit(t *testing.T) {
	cfg := DefaultConfig(SchemeNET, 50)
	p := rareArmLoop(50_000)
	sys := New(p, cfg)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkedJumps == 0 {
		t.Fatal("dominant loop must take linked jumps")
	}
	transIdentity(t, "hotloop", res, cfg.Costs)

	var completions, earlyExits, enters int64
	for _, fr := range sys.cache {
		completions += fr.Completions
		earlyExits += fr.EarlyExits
		enters += fr.Enters
	}
	if completions == 0 {
		t.Error("no fragment completion observed")
	}
	if earlyExits == 0 {
		t.Error("no fragment early exit observed (the rare arm must diverge mid-trace)")
	}
	// Every fragment entry is either an interpreter-side enter or a linked
	// jump; the per-fragment counters must agree with the run totals (no
	// flush happened, so the cache still holds every fragment).
	if res.Flushes == 0 && enters != res.FragEnters+res.LinkedJumps {
		t.Errorf("fragment Enters %d != FragEnters %d + LinkedJumps %d",
			enters, res.FragEnters, res.LinkedJumps)
	}
}

// TestLinkingAblationContrast pins the linked-vs-exit accounting: with
// linking disabled every inter-fragment transfer pays the exit stub, with
// it enabled the hot transfers become linked jumps — same program, same
// semantics, same identity.
func TestLinkingAblationContrast(t *testing.T) {
	p := multiPhase(3, 2_000, 20)
	on := DefaultConfig(SchemeNET, 20)
	off := DefaultConfig(SchemeNET, 20)
	off.DisableLinking = true

	resOn := checkSemantics(t, p, on)
	resOff := checkSemantics(t, p, off)
	transIdentity(t, "link-on", resOn, on.Costs)
	transIdentity(t, "link-off", resOff, off.Costs)
	if resOn.LinkedJumps == 0 {
		t.Error("linking on: no linked jumps on a loop nest")
	}
	if resOff.LinkedJumps != 0 {
		t.Error("linking off: linked jumps must be zero")
	}
	if resOff.FragExits <= resOn.FragExits {
		t.Errorf("linking off must exit more: off %d vs on %d", resOff.FragExits, resOn.FragExits)
	}
}

// TestDemotionAfterAbortLandsInterp injects a fragment abort on every
// fragment step: each entered fragment aborts immediately, is demoted after
// DemoteAfterAborts, and execution must land back in the interpreter with
// untouched program semantics and exact transfer accounting. This exercises
// the chaos slow-path stepper (the fast loop never sees an injector).
func TestDemotionAfterAbortLandsInterp(t *testing.T) {
	cfg := DefaultConfig(SchemeNET, 20)
	cfg.Chaos = alwaysAbortFragments{}
	p := hotLoop(30_000)

	res := checkSemantics(t, p, cfg)
	if res.FragAborts == 0 {
		t.Fatal("injector never fired")
	}
	if res.Demotions == 0 {
		t.Error("persistent aborts must demote the fragment")
	}
	if res.FragInstrs != 0 {
		t.Errorf("every fragment entry aborts before executing, yet FragInstrs = %d", res.FragInstrs)
	}
	transIdentity(t, "demotion", res, cfg.Costs)
}

// alwaysAbortFragments aborts every fragment execution and nothing else.
type alwaysAbortFragments struct{}

func (alwaysAbortFragments) AbortRecording(int64) bool          { return false }
func (alwaysAbortFragments) AbortFragment(int64) bool           { return true }
func (alwaysAbortFragments) CorruptCounter(int64) (int64, bool) { return 0, false }
func (alwaysAbortFragments) SpikeSelect(int64) bool             { return false }

// TestCacheEvictionFlushKeepsIdentity forces capacity flushes while linked
// fragments are executing: a flush empties the cache mid-run, so the next
// fragment boundary must take the exit stub (not a stale link) and the
// TransCycles identity must still hold flush costs included.
func TestCacheEvictionFlushKeepsIdentity(t *testing.T) {
	cfg := DefaultConfig(SchemeNET, 10)
	cfg.MaxFragments = 2
	cfg.FlushWindow = 0
	cfg.BailoutAfter = 0
	p := multiPhase(4, 2_000, 10)

	res := checkSemantics(t, p, cfg)
	if res.Flushes == 0 {
		t.Fatal("capacity 2 with 4 hot loops must flush")
	}
	if res.LinkedJumps == 0 {
		t.Error("linking must still occur between flushes")
	}
	transIdentity(t, "eviction", res, cfg.Costs)
}

// TestFragmentSteppersEquivalent runs the identical program and config on
// the fast whole-fragment executor and on the chaos slow-path stepper (a
// no-op fault hook forces the latter without perturbing execution): every
// counter and the final machine state must match exactly.
func TestFragmentSteppersEquivalent(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNET, SchemePathProfile} {
		p := multiPhase(3, 2_000, 20)
		cfg := DefaultConfig(scheme, 20)

		fast := New(p, cfg)
		resFast, err := fast.Run()
		if err != nil {
			t.Fatalf("%v fast: %v", scheme, err)
		}

		slow := New(p, cfg)
		slow.Machine().SetFaultHook(func(*vm.Machine) error { return nil })
		resSlow, err := slow.Run()
		if err != nil {
			t.Fatalf("%v slow: %v", scheme, err)
		}

		if resFast.Steps != resSlow.Steps ||
			resFast.FragInstrs != resSlow.FragInstrs ||
			resFast.ElimInstrs != resSlow.ElimInstrs ||
			resFast.InterpInstrs != resSlow.InterpInstrs ||
			resFast.FragEnters != resSlow.FragEnters ||
			resFast.LinkedJumps != resSlow.LinkedJumps ||
			resFast.FragExits != resSlow.FragExits ||
			resFast.PathEvents != resSlow.PathEvents ||
			resFast.Fragments != resSlow.Fragments ||
			resFast.Flushes != resSlow.Flushes ||
			resFast.Cycles != resSlow.Cycles {
			t.Errorf("%v: steppers diverge:\nfast %+v\nslow %+v", scheme, resFast, resSlow)
		}
		fm, sm := fast.Machine(), slow.Machine()
		if fm.Reg != sm.Reg || fm.PC != sm.PC || fm.Steps != sm.Steps {
			t.Errorf("%v: machine state diverges between steppers", scheme)
		}
		for a := range fm.Mem {
			if fm.Mem[a] != sm.Mem[a] {
				t.Fatalf("%v: Mem[%d] fast=%d slow=%d", scheme, a, fm.Mem[a], sm.Mem[a])
			}
		}
	}
}
