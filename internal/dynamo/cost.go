// Package dynamo implements a miniature of the Dynamo dynamic optimization
// system (Bala, Duesterwald, Banerjia; Section 6 of the paper), faithful in
// structure: a profiled interpreter observes the running program, a hot
// path selector (NET or path-profile-based) picks traces, selected traces
// are optimized and emitted into a fragment cache, fragments link to each
// other, and heuristics flush the cache on phase changes or bail out to
// native execution when the program defeats trace caching.
//
// Performance is modelled with an explicit cycle cost model rather than
// wall-clock time: the real system's speedups and slowdowns come from the
// relative weights of interpretation, per-branch profiling work, and
// optimized fragment execution, and those are exactly the model's terms.
package dynamo

// CostModel assigns cycle costs to the events of the simulation. All values
// are in units of one native instruction cycle.
type CostModel struct {
	// NativeInstr is the baseline cost of one instruction executed natively.
	NativeInstr float64
	// TakenPenalty is the extra native cost of a taken branch (pipeline
	// redirect). Fragments lay hot paths out straight, so recorded-taken
	// branches in cache cost no penalty — the classic trace-layout win.
	TakenPenalty float64

	// InterpInstr is the cost of interpreting one instruction (fetch,
	// decode, dispatch in software).
	InterpInstr float64

	// HeadCounter is NET's per-observation cost: one counter lookup and
	// increment at a path head (only at path starts — the entire profiling
	// cost of the scheme).
	HeadCounter float64

	// BitShift is path-profile-based prediction's per-conditional-branch
	// cost (shifting an outcome bit into the history register).
	BitShift float64
	// IndAppend is the per-indirect-branch signature append cost.
	IndAppend float64
	// PathTableUpdate is the per-path-completion cost (hash the signature,
	// look up the path table, increment).
	PathTableUpdate float64

	// RecordInstr is the per-instruction cost of recording a selected trace.
	RecordInstr float64
	// OptimizeInstr is the one-time per-instruction cost of optimizing and
	// emitting a recorded trace into the cache.
	OptimizeInstr float64

	// FragInstr is the cost of one non-eliminated fragment instruction.
	FragInstr float64
	// FragEnter is the interpreter-to-cache dispatch cost (context save,
	// counter table lookup).
	FragEnter float64
	// FragExit is the cache-to-interpreter exit cost (context restore
	// through an exit stub).
	FragExit float64
	// LinkedJump is the cost of a direct fragment-to-fragment transfer.
	LinkedJump float64

	// FlushCost is the one-time cost of flushing the fragment cache.
	FlushCost float64
}

// DefaultCosts returns the cost model used in the reported experiments.
// The interpreter is ~12x native — deliberately conservative; real
// instruction-set emulators run 20-100x slower than native, which would
// only widen the gap the experiments demonstrate.
func DefaultCosts() CostModel {
	return CostModel{
		NativeInstr:     1.0,
		TakenPenalty:    1.0,
		InterpInstr:     12.0,
		HeadCounter:     4.0,
		BitShift:        2.0,
		IndAppend:       4.0,
		PathTableUpdate: 24.0,
		RecordInstr:     10.0,
		OptimizeInstr:   30.0,
		FragInstr:       1.0,
		FragEnter:       8.0,
		FragExit:        20.0,
		LinkedJump:      1.0,
		FlushCost:       10_000.0,
	}
}
