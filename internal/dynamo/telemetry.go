// Telemetry wiring for the mini-Dynamo. Every instrument lives in the
// process-wide telemetry.Def registry under a stable name; a System only
// writes into them when Config.Telemetry hands it a *telemetry.Sink, so the
// disabled path costs exactly one nil check per site and the enabled path is
// a few atomic word operations — no allocation, no locks, pinned by the
// alloc gate (gate_test.go).
package dynamo

import (
	"netpath/internal/telemetry"
)

// Counters: lifetime totals aggregated across every System (the parallel
// experiment grid's cells write distinct shards through their own Sinks).
// The per-path-rate volume counters (path events, fragment enters/links/
// exits) are not bumped at their sites: syncTelemetry folds them in as
// deltas of the exact result counters at flush-window boundaries.
var (
	telPathEvents = telemetry.NewCounter("dynamo_path_events_total",
		"completed path executions (interpreter and fragment cache)")
	telHeadPromotions = telemetry.NewCounter("dynamo_head_promotions_total",
		"path heads whose counter reached tau (recording started or path armed)")
	telFragCreated = telemetry.NewCounter("dynamo_fragments_created_total",
		"optimized traces installed in the fragment cache")
	telFragEnters = telemetry.NewCounter("dynamo_frag_enters_total",
		"interpreter-to-fragment cache entries")
	telFragExits = telemetry.NewCounter("dynamo_frag_exits_total",
		"fragment cache exits back to the interpreter")
	telLinkedJumps = telemetry.NewCounter("dynamo_linked_jumps_total",
		"direct fragment-to-fragment transfers (linked exits)")
	telFlushes = telemetry.NewCounter("dynamo_flushes_total",
		"fragment cache flushes (capacity and phase-change)")
	telDemotions = telemetry.NewCounter("dynamo_demotions_total",
		"fragments evicted back to interpretation after repeated aborts")
	telRecordAborts = telemetry.NewCounter("dynamo_record_aborts_total",
		"trace recordings / path captures aborted by injected faults")
	telFragAborts = telemetry.NewCounter("dynamo_frag_aborts_total",
		"fragment executions aborted by injected faults")
	telCorruptions = telemetry.NewCounter("dynamo_corruptions_total",
		"injected profiling-counter corruptions absorbed")
	telForcedSelects = telemetry.NewCounter("dynamo_forced_selections_total",
		"injected spike selections honored")
	telBailouts = telemetry.NewCounter("dynamo_bailouts_total",
		"runs that gave up on dynamic optimization (any reason)")
	telVerifyRejects = telemetry.NewCounter("dynamo_static_verify_rejects_total",
		"programs refused at load time by the static CFG verifier")
	telStaticPrebuilt = telemetry.NewCounter("dynamo_static_fragments_prebuilt_total",
		"fragments pre-installed at load time from static walks (SchemeStatic)")
)

// Per-phase cycle split, in millicycles so the cost model's sub-cycle
// prices survive integer export. Synced lazily — every FlushWindow path
// events and at finish — not per instruction.
var (
	telCyclesInterp  = telemetry.NewCounter("dynamo_cycles_interp_milli", "interpreter cycles x1000")
	telCyclesFrag    = telemetry.NewCounter("dynamo_cycles_frag_milli", "fragment-cache cycles x1000")
	telCyclesProfile = telemetry.NewCounter("dynamo_cycles_profile_milli", "profiling cycles x1000")
	telCyclesBuild   = telemetry.NewCounter("dynamo_cycles_build_milli", "trace build/optimize cycles x1000")
	telCyclesTrans   = telemetry.NewCounter("dynamo_cycles_trans_milli", "fragment transition cycles x1000")
)

// Gauges: live table occupancy (last System to sync wins; under the
// parallel grid these read as a sample of one live cell, which is what a
// quick health check wants).
var (
	telHeadTableLen = telemetry.NewGauge("dynamo_head_table_len",
		"live NET head counters (CLOCK-bounded)")
	telPathTableLen = telemetry.NewGauge("dynamo_path_table_len",
		"paths interned (CLOCK-bounded)")
	telCacheResident = telemetry.NewGauge("dynamo_cache_resident",
		"fragments resident in the cache")
)

// Histograms: the distributions the paper's analysis cares about.
var (
	telPathLen = telemetry.NewHistogram("dynamo_path_len_branches",
		"control-transfer events per completed interpreted path (1/64 sampled)")
	telFragSize = telemetry.NewHistogram("dynamo_fragment_size_instrs",
		"trace length at fragment emission")
	telPromoteCounter = telemetry.NewHistogram("dynamo_head_counter_at_promotion",
		"head-counter value when a trace was selected (tau, unless spiked or corrupted)")
)

// telSampleMask decimates ring events for the three per-path-rate
// transitions (fragment enter, linked jump, exit): one event in 64 is
// recorded, keyed off the result counters that count them exactly. The
// counters stay exact — only the event stream is sampled — and the enabled
// path stays within the <= 5% overhead budget on fully-cached runs, where
// every one of the millions of path completions crosses one of these sites.
// All other kinds (promotions, emissions, demotions, flushes, blacklists,
// chaos, bails, faults) are rare and recorded unsampled.
const telSampleMask = 63

// Chaos-injection codes carried in EvChaosInject's Arg.
const (
	chaosArgRecordAbort = iota
	chaosArgFragAbort
	chaosArgCorrupt
	chaosArgSpike
)

// bailReasonCode maps BailReason strings to EvBail Arg codes.
func bailReasonCode(reason string) int64 {
	switch reason {
	case "low-reuse":
		return 0
	case "path-budget":
		return 1
	case "evict-thrash":
		return 2
	}
	return -1
}

// blacklistHead raises head's recording backoff and emits the blacklist
// event. chaosArg >= 0 additionally accounts the injected fault that caused
// the abort (chaosArg* codes above); pass -1 when the caller accounts the
// injection itself (the fragment-abort demotion path).
func (s *System) blacklistHead(head int, chaosArg int64) {
	aborts := s.black.abort(head)
	if s.tel == nil {
		return
	}
	if chaosArg >= 0 {
		s.tel.Inc(telRecordAborts)
		s.tel.Emit(telemetry.EvChaosInject, s.m.Steps, head, chaosArg)
	}
	s.tel.Emit(telemetry.EvBlacklist, s.m.Steps, head, int64(aborts))
}

// syncTelemetry folds the accounting accumulated since the last sync into
// the telemetry counters and refreshes the occupancy gauges. Called at
// flush-window boundaries and at finish, so the exported values trail the
// live run by at most one window. The per-path-rate volume counters (path
// events, fragment enters/links/exits) are synced here as deltas of the
// result counters rather than bumped atomically at each site: the sites run
// once per path completion, and a lazy delta keeps the enabled path free of
// per-path atomic traffic.
func (s *System) syncTelemetry() {
	if s.tel == nil {
		return
	}
	milli := func(c *telemetry.Counter, cur float64, last *int64) {
		m := int64(cur * 1000)
		s.tel.Add(c, m-*last)
		*last = m
	}
	milli(telCyclesInterp, s.res.InterpCycles, &s.telLast.interp)
	milli(telCyclesFrag, s.res.FragCycles, &s.telLast.frag)
	milli(telCyclesProfile, s.res.ProfileCycles, &s.telLast.profile)
	milli(telCyclesBuild, s.res.BuildCycles, &s.telLast.build)
	milli(telCyclesTrans, s.res.TransCycles, &s.telLast.trans)
	delta := func(c *telemetry.Counter, cur int64, last *int64) {
		s.tel.Add(c, cur-*last)
		*last = cur
	}
	delta(telPathEvents, s.res.PathEvents, &s.telLast.pathEvents)
	delta(telFragEnters, s.res.FragEnters, &s.telLast.fragEnters)
	delta(telLinkedJumps, s.res.LinkedJumps, &s.telLast.linkedJumps)
	delta(telFragExits, s.res.FragExits, &s.telLast.fragExits)
	s.tel.Set(telHeadTableLen, int64(s.heads.len()))
	s.tel.Set(telPathTableLen, int64(s.interner.NumPaths()))
	s.tel.Set(telCacheResident, int64(len(s.cache)))
}

// telCycleMarks remembers the totals already exported (millicycles and
// volume counts), so syncs add deltas instead of re-counting.
type telCycleMarks struct {
	interp, frag, profile, build, trans            int64
	pathEvents, fragEnters, linkedJumps, fragExits int64
}
