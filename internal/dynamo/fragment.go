package dynamo

import (
	"sync/atomic"

	"netpath/internal/isa"
)

// TraceStep is one recorded instruction of a selected trace, with the
// control successor observed during recording.
type TraceStep struct {
	PC int
	In isa.Instr
	// Next is the address the recording run continued at after this
	// instruction (PC+1 for straight-line code, the observed target for
	// control transfers).
	Next int
	// Eliminated marks instructions the trace optimizer removed; they still
	// execute semantically in the simulation but cost nothing, modelling
	// code the emitted fragment genuinely does not contain.
	Eliminated bool
	// Why records the optimization that removed the instruction.
	Why string
}

// codeStep is one step of a fragment lowered onto the VM's predecoded
// engine: the instruction address to execute and the control successor
// observed at trace-recording time. The execution loop compares the actual
// next PC against next to detect divergence (an early exit).
type codeStep struct {
	pc, next int32
}

// Fragment is an optimized trace resident in the fragment cache.
type Fragment struct {
	// Start is the path head address the fragment is keyed by.
	Start int
	Steps []TraceStep
	// Eliminated counts optimized-away instructions.
	Eliminated int

	// code is the compiled step array (built by Optimize): the fragment
	// lowered to (pc, expected-next) pairs over the predecoded micro-ops.
	// elimPrefix[i] counts eliminated instructions among Steps[:i], so the
	// executor settles cycle accounting for any straight run [from,to) with
	// two prefix-sum lookups instead of a per-step eliminated branch.
	code       []codeStep
	elimPrefix []int32
	// Enters and Completions are runtime statistics.
	Enters      int64
	Completions int64
	EarlyExits  int64
	// Aborts counts injected execution faults in this fragment; reaching
	// Config.DemoteAfterAborts demotes it back to interpretation.
	Aborts int64

	// Tier-2 state (see tier2.go). t2 is the published superblock — the ONLY
	// fragment field a background compile worker writes, and it is atomic;
	// everything below it is mutator-only, so publication is a single
	// release/acquire pair with no locks on the dispatch path.
	t2 atomic.Pointer[t2Block]
	// t2Queued marks a compile job in flight (set at enqueue, cleared only
	// by deopt, which requires a published block — so at most one job per
	// fragment is ever outstanding).
	t2Queued bool
	// t2Next is the completion count at which promotion is (re)attempted;
	// deopts push it out exponentially.
	t2Next int64
	// t2Deopts counts torn-down superblocks (drives the backoff shift).
	t2Deopts int64
	// t2Enters/t2Short drive the deopt heuristic: entries vs. unproductive
	// entries (entry-guard failures and first-half divergences).
	t2Enters int64
	t2Short  int64
	// t2Credited marks the published block's compile statistics as folded
	// into the run's counters (done by the mutator at first pickup; cleared
	// on deopt so a re-published block credits again).
	t2Credited bool
}

// Len returns the trace length in instructions.
func (f *Fragment) Len() int { return len(f.Steps) }

// EmittedLen returns the number of instructions actually emitted (not
// eliminated).
func (f *Fragment) EmittedLen() int { return len(f.Steps) - f.Eliminated }

// Optimizer applies Dynamo's lightweight trace optimizations to a recorded
// trace. Passes are deliberately conservative: an instruction is eliminated
// only when no on-trace use and no side exit could observe the difference
// in the modelled machine.
type Optimizer struct {
	// Passes toggles; all default to on via NewOptimizer.
	ConstantFolding bool
	RedundantLoads  bool
	DeadRegWrites   bool
	JumpStraighten  bool

	// Stats per pass, accumulated across all optimized traces.
	FoldedOps      int64
	FoldedBranches int64
	LoadsRemoved   int64
	DeadRemoved    int64
	JumpsRemoved   int64
}

// NewOptimizer returns an optimizer with every pass enabled.
func NewOptimizer() *Optimizer {
	return &Optimizer{ConstantFolding: true, RedundantLoads: true, DeadRegWrites: true, JumpStraighten: true}
}

// Optimize builds a fragment from a recorded trace.
func (o *Optimizer) Optimize(start int, steps []TraceStep) *Fragment {
	fr := &Fragment{Start: start, Steps: steps}
	if o.JumpStraighten {
		o.straightenJumps(fr)
	}
	if o.ConstantFolding {
		o.foldConstants(fr)
	}
	if o.RedundantLoads {
		o.removeRedundantLoads(fr)
	}
	if o.DeadRegWrites {
		o.removeDeadWrites(fr)
	}
	for i := range fr.Steps {
		if fr.Steps[i].Eliminated {
			fr.Eliminated++
		}
	}
	fr.compile()
	return fr
}

// compile lowers the optimized trace to the compiled step array the fast
// fragment executor runs: (pc, expected-next) pairs plus the eliminated-count
// prefix sums used to settle cycle accounting for whole straight runs.
func (f *Fragment) compile() {
	f.code = make([]codeStep, len(f.Steps))
	f.elimPrefix = make([]int32, len(f.Steps)+1)
	var elim int32
	for i := range f.Steps {
		s := &f.Steps[i]
		f.elimPrefix[i] = elim
		if s.Eliminated {
			elim++
		}
		f.code[i] = codeStep{pc: int32(s.PC), next: int32(s.Next)}
	}
	f.elimPrefix[len(f.Steps)] = elim
}

func eliminate(s *TraceStep, why string) {
	if !s.Eliminated {
		s.Eliminated = true
		s.Why = why
	}
}

// straightenJumps removes unconditional direct jumps: fragment layout makes
// the recorded successor the fall-through.
func (o *Optimizer) straightenJumps(fr *Fragment) {
	for i := range fr.Steps {
		s := &fr.Steps[i]
		if s.In.Op == isa.Jmp && !s.Eliminated {
			eliminate(s, "jump-straightened")
			o.JumpsRemoved++
		}
	}
}

// foldConstants tracks registers with compile-time-known values along the
// trace and eliminates pure ops whose result is known, plus conditional
// branches whose outcome is decided by known operands (the emitted fragment
// needs no guard for them).
func (o *Optimizer) foldConstants(fr *Fragment) {
	var known [isa.NumRegs]bool
	var val [isa.NumRegs]int64
	kill := func(r uint8) { known[r] = false }
	set := func(r uint8, v int64) { known[r] = true; val[r] = v }

	for i := range fr.Steps {
		s := &fr.Steps[i]
		in := s.In
		switch in.Op {
		case isa.MovI:
			// The constant seed itself stays (something must materialize
			// the value for side exits), but it enables downstream folds.
			set(in.A, in.Imm)
		case isa.Mov:
			if known[in.B] {
				set(in.A, val[in.B])
				eliminate(s, "const-folded")
				o.FoldedOps++
			} else {
				kill(in.A)
			}
		case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr:
			if known[in.B] && known[in.C] {
				set(in.A, alu3(in.Op, val[in.B], val[in.C]))
				eliminate(s, "const-folded")
				o.FoldedOps++
			} else {
				kill(in.A)
			}
		case isa.AddI, isa.MulI, isa.AndI, isa.RemI:
			if known[in.B] {
				set(in.A, aluImm(in.Op, val[in.B], in.Imm))
				eliminate(s, "const-folded")
				o.FoldedOps++
			} else {
				kill(in.A)
			}
		case isa.Load:
			kill(in.A)
		case isa.Store:
			// No register effect.
		case isa.Br:
			if known[in.A] && known[in.B] {
				eliminate(s, "branch-folded")
				o.FoldedBranches++
			}
		case isa.BrI:
			if known[in.A] {
				eliminate(s, "branch-folded")
				o.FoldedBranches++
			}
		case isa.Call, isa.CallInd, isa.Ret, isa.Jmp, isa.JmpInd, isa.Nop, isa.Halt:
			// No register effects tracked across these.
		}
	}
}

func alu3(op isa.Op, b, c int64) int64 {
	switch op {
	case isa.Add:
		return b + c
	case isa.Sub:
		return b - c
	case isa.Mul:
		return b * c
	case isa.Div:
		if c == 0 {
			return 0
		}
		return b / c
	case isa.Rem:
		if c == 0 {
			return 0
		}
		return b % c
	case isa.And:
		return b & c
	case isa.Or:
		return b | c
	case isa.Xor:
		return b ^ c
	case isa.Shl:
		return b << (uint(c) & 63)
	case isa.Shr:
		return b >> (uint(c) & 63)
	}
	return 0
}

func aluImm(op isa.Op, b, imm int64) int64 {
	switch op {
	case isa.AddI:
		return b + imm
	case isa.MulI:
		return b * imm
	case isa.AndI:
		return b & imm
	case isa.RemI:
		if imm == 0 {
			return 0
		}
		return b % imm
	}
	return 0
}

// removeRedundantLoads eliminates a load whose (base register version,
// offset) was loaded earlier on the trace with no intervening store or base
// redefinition; the fragment reuses the earlier register value.
func (o *Optimizer) removeRedundantLoads(fr *Fragment) {
	type key struct {
		baseVer int64
		off     int64
	}
	var regVer [isa.NumRegs]int64
	ver := int64(1)
	bump := func(r uint8) { ver++; regVer[r] = ver }
	avail := map[key]bool{}

	for i := range fr.Steps {
		s := &fr.Steps[i]
		in := s.In
		switch in.Op {
		case isa.Load:
			k := key{baseVer: regVer[in.B]<<8 | int64(in.B), off: in.Imm}
			if avail[k] && !s.Eliminated {
				eliminate(s, "redundant-load")
				o.LoadsRemoved++
			} else {
				avail[k] = true
			}
			bump(in.A)
		case isa.Store:
			// Conservative: any store invalidates all available loads.
			avail = map[key]bool{}
		case isa.Call, isa.CallInd, isa.Ret:
			// Callee code is not on this trace record boundary-wise only
			// when the trace crosses calls; memory may change → invalidate.
			avail = map[key]bool{}
		default:
			if d, ok := destReg(in); ok {
				bump(d)
			}
		}
	}
}

// removeDeadWrites eliminates pure register writes that are overwritten
// before any read, with no side exit (conditional branch, indirect branch,
// call, or return) in between — a side exit makes every register live.
func (o *Optimizer) removeDeadWrites(fr *Fragment) {
	// lastWrite[r] = index of a pending (unread) write to r, or -1.
	var lastWrite [isa.NumRegs]int
	for r := range lastWrite {
		lastWrite[r] = -1
	}
	clearAll := func() {
		for r := range lastWrite {
			lastWrite[r] = -1
		}
	}
	markRead := func(r uint8) { lastWrite[r] = -1 }

	for i := range fr.Steps {
		s := &fr.Steps[i]
		in := s.In
		// Reads first.
		for _, r := range srcRegs(in) {
			markRead(r)
		}
		// Side exits make all pending writes live.
		if in.Op.IsControl() {
			clearAll()
			continue
		}
		if d, ok := destReg(in); ok {
			if j := lastWrite[d]; j >= 0 && !fr.Steps[j].Eliminated && pureWrite(fr.Steps[j].In) {
				eliminate(&fr.Steps[j], "dead-write")
				o.DeadRemoved++
			}
			lastWrite[d] = i
		}
	}
}

// destReg returns the destination register of an instruction, if any.
func destReg(in isa.Instr) (uint8, bool) {
	switch in.Op {
	case isa.MovI, isa.Mov, isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem,
		isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
		isa.AddI, isa.MulI, isa.AndI, isa.RemI, isa.Load:
		return in.A, true
	}
	return 0, false
}

// srcRegs returns the registers an instruction reads.
func srcRegs(in isa.Instr) []uint8 {
	switch in.Op {
	case isa.Mov:
		return []uint8{in.B}
	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr:
		return []uint8{in.B, in.C}
	case isa.AddI, isa.MulI, isa.AndI, isa.RemI:
		return []uint8{in.B}
	case isa.Load:
		return []uint8{in.B}
	case isa.Store:
		return []uint8{in.A, in.B}
	case isa.Br:
		return []uint8{in.A, in.B}
	case isa.BrI:
		return []uint8{in.A}
	case isa.JmpInd, isa.CallInd:
		return []uint8{in.A}
	}
	return nil
}

// pureWrite reports whether an instruction's only effect is its register
// write (safe to eliminate when the write is dead).
func pureWrite(in isa.Instr) bool {
	switch in.Op {
	case isa.MovI, isa.Mov, isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem,
		isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
		isa.AddI, isa.MulI, isa.AndI, isa.RemI:
		return true
	case isa.Load:
		// Loads are pure in this machine (no I/O, no faults on recorded
		// traces — the recording run already executed them successfully).
		return true
	}
	return false
}
