package dynamo

import (
	"strings"
	"testing"
)

func TestCacheStatsAndDump(t *testing.T) {
	sys := New(hotLoop(30_000), DefaultConfig(SchemeNET, 20))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	stats := sys.CacheStats()
	if len(stats) == 0 {
		t.Fatal("no resident fragments after a hot loop")
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Enters < stats[i].Enters {
			t.Fatal("CacheStats not sorted by enters")
		}
	}
	top := stats[0]
	if top.Enters == 0 {
		t.Error("hottest fragment never entered")
	}
	if top.CompletionRate() < 0 || top.CompletionRate() > 1 {
		t.Errorf("completion rate %f out of range", top.CompletionRate())
	}
	if top.Emitted > top.Len {
		t.Error("emitted length exceeds trace length")
	}

	dump := sys.DumpCache(3)
	if !strings.Contains(dump, "fragment cache:") || !strings.Contains(dump, "enters=") {
		t.Errorf("DumpCache output malformed:\n%s", dump)
	}
	// n <= 0 dumps everything.
	all := sys.DumpCache(0)
	if strings.Count(all, "@") < strings.Count(dump, "@") {
		t.Error("DumpCache(0) must include at least as many fragments")
	}
}

func TestOptimizerStatsExposed(t *testing.T) {
	sys := New(hotLoop(30_000), DefaultConfig(SchemeNET, 20))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	opt := sys.OptimizerStats()
	if opt.FoldedOps == 0 && opt.DeadRemoved == 0 && opt.LoadsRemoved == 0 {
		t.Error("hotLoop is built to exercise the optimizer; no eliminations recorded")
	}
}

func TestEmptyCacheStats(t *testing.T) {
	// A program too short to trigger selection leaves the cache empty.
	sys := New(hotLoop(3), DefaultConfig(SchemeNET, 1000))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.CacheStats()) != 0 {
		t.Error("expected an empty cache")
	}
	if !strings.Contains(sys.DumpCache(5), "0 resident") {
		t.Error("DumpCache must report an empty cache")
	}
}
