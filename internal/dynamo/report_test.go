package dynamo

import (
	"strings"
	"testing"
)

func TestCacheStatsAndDump(t *testing.T) {
	sys := New(hotLoop(30_000), DefaultConfig(SchemeNET, 20))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	stats := sys.CacheStats()
	if len(stats) == 0 {
		t.Fatal("no resident fragments after a hot loop")
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Enters < stats[i].Enters {
			t.Fatal("CacheStats not sorted by enters")
		}
	}
	top := stats[0]
	if top.Enters == 0 {
		t.Error("hottest fragment never entered")
	}
	if top.CompletionRate() < 0 || top.CompletionRate() > 1 {
		t.Errorf("completion rate %f out of range", top.CompletionRate())
	}
	if top.Emitted > top.Len {
		t.Error("emitted length exceeds trace length")
	}

	dump := sys.DumpCache(3)
	if !strings.Contains(dump, "fragment cache:") || !strings.Contains(dump, "enters=") {
		t.Errorf("DumpCache output malformed:\n%s", dump)
	}
	// n <= 0 dumps everything.
	all := sys.DumpCache(0)
	if strings.Count(all, "@") < strings.Count(dump, "@") {
		t.Error("DumpCache(0) must include at least as many fragments")
	}
}

func TestOptimizerStatsExposed(t *testing.T) {
	sys := New(hotLoop(30_000), DefaultConfig(SchemeNET, 20))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	opt := sys.OptimizerStats()
	if opt.FoldedOps == 0 && opt.DeadRemoved == 0 && opt.LoadsRemoved == 0 {
		t.Error("hotLoop is built to exercise the optimizer; no eliminations recorded")
	}
}

func TestCacheStatsTieOrdering(t *testing.T) {
	// Equal-enter fragments must sort by start address ascending so the
	// report order (and DumpCache output) is deterministic run to run.
	sys := New(hotLoop(3), DefaultConfig(SchemeNET, 1000))
	for _, f := range []*Fragment{
		{Start: 90, Enters: 5},
		{Start: 10, Enters: 5},
		{Start: 50, Enters: 5},
		{Start: 70, Enters: 9},
	} {
		sys.cache[f.Start] = f
	}
	stats := sys.CacheStats()
	wantStarts := []int{70, 10, 50, 90}
	if len(stats) != len(wantStarts) {
		t.Fatalf("got %d stats, want %d", len(stats), len(wantStarts))
	}
	for i, want := range wantStarts {
		if stats[i].Start != want {
			t.Errorf("stats[%d].Start = %d, want %d (enters=%d)",
				i, stats[i].Start, want, stats[i].Enters)
		}
	}
}

func TestOptimizerStatsSurviveFlush(t *testing.T) {
	// A tiny fragment cache forces capacity flushes; the optimizer's
	// elimination counters are per-System and must accumulate across them.
	cfg := DefaultConfig(SchemeNET, 10)
	cfg.MaxFragments = 2
	cfg.FlushWindow = 0
	cfg.BailoutAfter = 0
	sys := New(multiPhase(4, 2_000, 10), cfg)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushes == 0 {
		t.Fatal("capacity 2 with 4 hot loops must force at least one flush")
	}
	opt := sys.OptimizerStats()
	if opt.FoldedOps == 0 && opt.DeadRemoved == 0 && opt.LoadsRemoved == 0 {
		t.Error("optimizer counters reset by cache flush; they must persist")
	}
	if len(sys.CacheStats()) > cfg.MaxFragments {
		t.Errorf("%d resident fragments exceed MaxFragments=%d after flush",
			len(sys.CacheStats()), cfg.MaxFragments)
	}
}

func TestEmptyCacheStats(t *testing.T) {
	// A program too short to trigger selection leaves the cache empty.
	sys := New(hotLoop(3), DefaultConfig(SchemeNET, 1000))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.CacheStats()) != 0 {
		t.Error("expected an empty cache")
	}
	if !strings.Contains(sys.DumpCache(5), "0 resident") {
		t.Error("DumpCache must report an empty cache")
	}
}
