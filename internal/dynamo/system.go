package dynamo

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/prog"
	"netpath/internal/telemetry"
	"netpath/internal/trace"
	"netpath/internal/vm"
)

// Scheme selects the hot path prediction scheme driving trace selection.
type Scheme int

// Prediction schemes.
const (
	// SchemeNET: counters at path heads only; when a head gets hot the next
	// executing tail is recorded. Fragment exits count as heads too
	// (Dynamo's exit-stub counters), forming secondary traces.
	SchemeNET Scheme = iota
	// SchemePathProfile: full bit-tracing path profiling in the
	// interpreter; a path is emitted once its own counter reaches τ.
	// Divergent fragment exits resume profiling only at the next genuine
	// path head (mid-path suffixes are not profilable units).
	SchemePathProfile
	// SchemeStatic: no runtime profiling at all. The fragment cache is
	// pre-populated at load time from the static predictor's
	// maximum-likelihood walks (internal/staticpred); τ is fixed at zero
	// and the interpreter carries no counters, bit shifts, or recording.
	// Mispredicted fragments simply exit early; the flush and bail-out
	// heuristics still apply.
	SchemeStatic
)

// String names the scheme as in Figure 5.
func (s Scheme) String() string {
	switch s {
	case SchemeNET:
		return "NET"
	case SchemeStatic:
		return "Static"
	}
	return "PathProfile"
}

// Config parameterizes a mini-Dynamo run.
type Config struct {
	Scheme Scheme
	// Tau is the prediction delay (10/50/100 in Figure 5).
	Tau int64
	// Costs is the cycle model; zero value means DefaultCosts.
	Costs CostModel

	// MaxFragments is the fragment-cache capacity; filling it triggers a
	// full cache flush (Dynamo flushes rather than evicts).
	MaxFragments int
	// MaxTraceBranches caps recorded trace length in control transfers.
	MaxTraceBranches int

	// FlushWindow is the phase-detection window in path completions; a
	// window whose fragment-creation count exceeds FlushSpike times the
	// average of the preceding windows triggers a preemptive flush.
	FlushWindow int
	FlushSpike  float64

	// BailoutAfter is the period, in path completions, of the bail-out
	// check: if less than BailoutMinCached of executed instructions ran
	// from the fragment cache, or more than BailoutFragBudget fragments
	// have been created (a program with excessively many dynamic paths and
	// no dominant reuse), Dynamo gives up and the rest of the program runs
	// native (Section 6: gcc, go et al. bail out).
	BailoutAfter      int64
	BailoutMinCached  float64
	BailoutFragBudget int

	// MaxSteps bounds the run (0 = unlimited); exceeding it ends the run
	// with an error wrapping vm.ErrStepLimit.
	MaxSteps int64

	// DisableOptimizer turns off trace optimization (ablation).
	DisableOptimizer bool
	// DisableLinking makes every fragment transition go through the
	// interpreter exit path (ablation).
	DisableLinking bool

	// Chaos is an optional fault injector (see internal/chaos). Soft faults
	// (recording/fragment aborts, counter corruption, selection spikes)
	// never change what the program computes — only how Dynamo executes it.
	Chaos Injector

	// Telemetry is an optional observability sink (see internal/telemetry).
	// All instruments live in the process-wide registry under stable names;
	// the sink only decides whether this System writes into them (and which
	// counter shard it writes through). nil disables every emission site at
	// the cost of one predictable branch.
	Telemetry *telemetry.Sink

	// MaxHeadCounters caps the NET head-counter table; the least recently
	// hit head is CLOCK-evicted when it fills (0 = default, <0 = unbounded).
	MaxHeadCounters int
	// MaxPaths caps the path interner the same way (0 = default,
	// <0 = unbounded).
	MaxPaths int

	// BlacklistBackoff is the base backoff after a recording abort: the
	// head's next BlacklistBackoff·2^(aborts-1) selections are suppressed
	// before recording is retried (0 = default).
	BlacklistBackoff int64
	// BlacklistMaxAborts permanently demotes a head to interpretation after
	// that many recording aborts (0 = default, <0 = never).
	BlacklistMaxAborts int
	// DemoteAfterAborts evicts a fragment back to interpretation after that
	// many aborted executions (0 = default, <0 = never).
	DemoteAfterAborts int
	// GovernorEvictLimit trips the resource governor — a generalized
	// bail-out to native execution — when the two bounded tables evict more
	// than this many entries within one FlushWindow of path events
	// (0 = default, <0 = disabled). Eviction thrash means the working set
	// no longer fits the tables, so profiling is wasted work.
	GovernorEvictLimit int

	// Tier2 enables background superblock compilation when non-nil: hot
	// fragments are lowered off-thread on this compiler (typically shared
	// across many Systems) and swapped in by atomic publication. See
	// tier2.go. nil (the default) disables tier 2 entirely.
	Tier2 *Tier2Compiler
	// Tier2Threshold is the completion count that promotes a fragment to
	// tier 2 (0 = default 16).
	Tier2Threshold int64
	// Tier2MaxGuest caps a superblock's guest length across linked
	// fragments (0 = default 4096).
	Tier2MaxGuest int
	// Tier2MinFlow gates promotion on path-flow dominance: a fragment is
	// compiled only once it carries at least 1/Tier2MinFlow of the run's
	// path events. Lukewarm fragments are never worth a compile — on a
	// single-core host the background compiler time-slices against the
	// guest, so every wasted compile is stolen mutator time (the paper's
	// thesis applied to tiering: optimize less, gain more). 0 = default
	// 64; 1 disables the gate (any fragment past Tier2Threshold compiles).
	Tier2MinFlow int64
	// Tier2Tenant keys this System's jobs in the compiler's tenant-fair
	// queue ("" is a valid shared key).
	Tier2Tenant string

	// Trace, when non-nil, is the request-scoped span arena this run writes
	// pipeline phase spans into: trace selection, fragment emission, tier-2
	// enqueue/compile/promotion, deopts, guest faults, and bail-outs. nil —
	// the sampled-out state — disables every site at the cost of one nil
	// check and zero allocations (gated at the repo root). TraceParent is
	// the span ID the engine's spans nest under (trace.NoSpan = roots).
	Trace       *trace.Trace
	TraceParent int32

	// ValidateEmits runs the translation validator (internal/dataflow) over
	// every tier-1 fragment at emit time and every tier-2 superblock at
	// compile time. A rejected translation is not installed — execution
	// stays on the next tier down — and the rejection is counted in the
	// Result and telemetry. On in tests and CI; off by default in
	// production, where the counters alone are the tripwire.
	ValidateEmits bool
	// Tier2Elide feeds statically proven dataflow facts into the superblock
	// compiler: loads and stores proven in-bounds lower to check-free
	// handlers, and branches the analysis decided compile to nothing (with
	// their entry guards pruned). No effect unless Tier2 is set.
	Tier2Elide bool

	// Probe, when non-nil and ProbeEvery > 0, is called synchronously every
	// ProbeEvery path events with the live System. It runs inline with the
	// guest (including inside fragment dispatch, at fragment boundaries), so
	// probes must be cheap and must not re-enter Run. Used by the
	// time-to-peak experiment to sample coverage curves and by the CLIs for
	// periodic snapshot saves. nil costs one predictable branch per path
	// event.
	Probe      func(*System)
	ProbeEvery int
}

// DefaultConfig returns the configuration used for Figure 5.
func DefaultConfig(scheme Scheme, tau int64) Config {
	return Config{
		Scheme:            scheme,
		Tau:               tau,
		Costs:             DefaultCosts(),
		MaxFragments:      8192,
		MaxTraceBranches:  path.DefaultMaxBranches,
		FlushWindow:       20_000,
		FlushSpike:        6.0,
		BailoutAfter:      60_000,
		BailoutMinCached:  0.80,
		BailoutFragBudget: 200,

		MaxHeadCounters:    1 << 16,
		MaxPaths:           1 << 18,
		BlacklistBackoff:   2,
		BlacklistMaxAborts: 5,
		DemoteAfterAborts:  3,
		GovernorEvictLimit: 4096,
	}
}

// Result reports one mini-Dynamo run.
type Result struct {
	Program string
	Scheme  Scheme
	Tau     int64

	// Steps and Redirects describe the program run itself (identical under
	// any execution mode); they define the native baseline.
	Steps     int64
	Redirects int64 // control transfers that did not fall through

	// Cycle accounting.
	NativeCycles  float64 // Steps*NativeInstr + Redirects*TakenPenalty
	Cycles        float64 // total simulated Dynamo cycles
	InterpCycles  float64
	FragCycles    float64
	ProfileCycles float64 // counters, bit shifts, path table
	BuildCycles   float64 // trace recording + optimization
	TransCycles   float64 // fragment enter/exit/link + flushes

	// Volume counters.
	InterpInstrs int64
	NativeInstrs int64 // instructions run native after bail-out
	FragInstrs   int64
	ElimInstrs   int64 // fragment instructions optimized away
	PathEvents   int64
	CacheEvents  int64 // path events completed inside the fragment cache

	Fragments   int // fragments created (across flushes)
	Flushes     int
	FragEnters  int64
	LinkedJumps int64
	FragExits   int64

	BailedOut bool
	BailStep  int64
	// BailReason names the heuristic that gave up ("" if none):
	// "low-reuse", "path-budget", or "evict-thrash" (resource governor).
	BailReason string

	// Tier-2 counters (all zero unless Config.Tier2 is set).
	T2Promotions int64 // fragments enqueued for background compilation
	T2Enters     int64 // superblock executions started (guards passed)
	T2Instrs     int64 // guest instructions executed inside superblocks
	T2GuardFails int64 // dispatches bounced by the hoisted entry guards
	T2Deopts     int64 // published superblocks torn down (shortfall storms)

	// Translation-validation counters (all zero unless Config.ValidateEmits).
	ValidatorChecked   int64 // tier-1 fragments validated at emit
	ValidatorRejects   int64 // tier-1 emits refused installation
	T2ValidatorChecked int64 // superblocks validated after compile (counted at pickup)
	T2ValidatorRejects int64 // superblocks refused publication (tombstoned)

	// Static guard-elision counters (all zero unless Config.Tier2Elide).
	T2BoundsElided  int64 // bounds checks dropped by static proof, per published block
	T2GuardsImplied int64 // entry guards pruned as statically implied, per published block
	// T2GuardChecks counts runtime checks actually executed inside tier 2:
	// entry-guard evaluations plus in-body successor/bounds checks. The
	// guards-executed-per-step metric is T2GuardChecks / T2Instrs; elision
	// lowers it at identical architectural behavior.
	T2GuardChecks int64

	// Warm-start counters (all zero unless Restore ran; see snapshot.go).
	RestoredHeads     int // head counters pre-seeded from a snapshot
	RestoredFragments int // fragments pre-installed from persisted traces
	RestoredPaths     int // path-profile counters pre-seeded
	RestoredT2        int // persisted tier-2 decisions re-enqueued at restore
	RestoredBlacklist int // blacklist entries imported

	// Robustness counters (all zero without fault injection).
	RecordAborts     int64  // trace recordings / path captures aborted
	FragAborts       int64  // fragment executions aborted
	Demotions        int    // fragments demoted back to interpretation
	BlacklistSkips   int64  // selections suppressed by head backoff
	BlacklistedHeads int    // heads permanently demoted to interpretation
	HeadEvictions    int64  // head-counter CLOCK evictions
	PathEvictions    int64  // path-interner slot recyclings
	Corruptions      int64  // injected counter corruptions absorbed
	ForcedSelections int64  // injected spike selections honored
	VMFault          string // machine fault that ended the run ("" = clean)
}

// Speedup returns the speedup over native execution as a fraction
// (0.15 = 15% faster; negative = slowdown), the y-axis of Figure 5.
func (r Result) Speedup() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.NativeCycles/r.Cycles - 1
}

// CachedFraction returns the fraction of instructions executed from the
// fragment cache.
func (r Result) CachedFraction() float64 {
	total := r.InterpInstrs + r.FragInstrs + r.NativeInstrs
	if total == 0 {
		return 0
	}
	return float64(r.FragInstrs) / float64(total)
}

// String renders a one-line summary.
func (r Result) String() string {
	status := ""
	if r.BailedOut {
		status = " [bail-out]"
	}
	return fmt.Sprintf("%s %s τ=%d: speedup %+.1f%% (cached %.1f%%, %d fragments, %d flushes)%s",
		r.Program, r.Scheme, r.Tau, 100*r.Speedup(), 100*r.CachedFraction(), r.Fragments, r.Flushes, status)
}

type mode int

const (
	modeInterp mode = iota
	modeFragment
	modeNative // after bail-out
)

// System is one mini-Dynamo instance bound to a program.
type System struct {
	cfg Config
	m   *vm.Machine
	res Result

	mode mode

	// Interpreter-side state.
	tracker  *path.Tracker
	interner *path.Interner
	skipping bool // PP: interpreting an unprofilable suffix
	skipEnd  int  // resume address once a backward branch ends the skip

	// Path completion relay from the tracker callback.
	completed   bool
	completedID path.ID

	// Trace recording (NET).
	recording bool
	recStart  int
	recBuf    []TraceStep

	// Per-path capture (PathProfile).
	capStart int
	capBuf   []TraceStep

	// Selector state.
	heads      *headTable // NET head counters (bounded, CLOCK-evicted)
	pathCounts []int64    // PathProfile, by path ID
	armed      map[path.ID]bool

	// Degradation state.
	inj         Injector // cfg.Chaos (nil = no injection)
	black       *blacklist
	capAborted  bool  // PP: the capture in flight was aborted by a fault
	evictsAtWin int64 // table evictions seen at the last governor window

	// Telemetry (nil = disabled; see telemetry.go).
	tel     *telemetry.Sink
	telLast telCycleMarks

	// Request-scoped tracing (nil = sampled out; see internal/trace).
	// selSpan is the open trace-select span while a recording or armed
	// capture is in flight, trace.NoSpan otherwise.
	tr       *trace.Trace
	trParent int32
	selSpan  int32

	// verifyErr is the static verifier's load-time verdict (verify.go);
	// a non-nil value makes Run refuse the program.
	verifyErr error

	// Cooperative preemption (RunContext). hasDeadline is set only while a
	// cancellable context drives the run, so Run() pays one dead branch per
	// dispatcher iteration and nothing per instruction; preempt is armed
	// asynchronously by context.AfterFunc and polled at dispatch boundaries
	// and fragment links.
	hasDeadline bool
	preempt     atomic.Bool

	// Cache.
	cache map[int]*Fragment
	frag  *Fragment
	fpos  int
	opt   *Optimizer

	// Tier-2 (nil t2c disables; see tier2.go). Cached off cfg so the
	// dispatch-loop checks are single field loads.
	t2c         *Tier2Compiler
	t2Threshold int64
	t2MaxGuest  int
	t2MinFlow   int64

	// Flush heuristic. Only fragments at addresses never cached before
	// count toward the spike window: a genuine phase change brings new
	// code, while post-flush re-recording of known addresses must not
	// re-trigger the heuristic (flush thrash).
	windowEvents    int
	windowCreations int
	prevCreations   []int
	everCached      map[int]bool

	// nativeRedirectCycles accumulates taken-branch penalties for
	// instructions executed natively after bail-out.
	nativeRedirectCycles float64
}

// New creates a mini-Dynamo for program p.
func New(p *prog.Program, cfg Config) *System {
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.MaxFragments <= 0 {
		cfg.MaxFragments = 8192
	}
	if cfg.MaxTraceBranches <= 0 {
		cfg.MaxTraceBranches = path.DefaultMaxBranches
	}
	if cfg.MaxHeadCounters == 0 {
		cfg.MaxHeadCounters = 1 << 16
	}
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 1 << 18
	}
	if cfg.BlacklistBackoff <= 0 {
		cfg.BlacklistBackoff = 2
	}
	if cfg.BlacklistMaxAborts == 0 {
		cfg.BlacklistMaxAborts = 5
	}
	if cfg.DemoteAfterAborts == 0 {
		cfg.DemoteAfterAborts = 3
	}
	if cfg.GovernorEvictLimit == 0 {
		cfg.GovernorEvictLimit = 4096
	}
	if cfg.Tier2Threshold <= 0 {
		cfg.Tier2Threshold = 16
	}
	if cfg.Tier2MaxGuest <= 0 {
		cfg.Tier2MaxGuest = 4096
	}
	if cfg.Tier2MinFlow <= 0 {
		cfg.Tier2MinFlow = 64
	}
	s := &System{
		cfg:         cfg,
		m:           vm.New(p),
		opt:         NewOptimizer(),
		inj:         cfg.Chaos,
		tel:         cfg.Telemetry,
		tr:          cfg.Trace,
		trParent:    cfg.TraceParent,
		t2c:         cfg.Tier2,
		t2Threshold: cfg.Tier2Threshold,
		t2MaxGuest:  cfg.Tier2MaxGuest,
		t2MinFlow:   cfg.Tier2MinFlow,
	}
	if cfg.DisableOptimizer {
		s.opt = &Optimizer{} // all passes off
	}
	// The recording and capture buffers are reused across traces ([:0]
	// truncation); seed them with enough capacity for a full-length trace so
	// the steady state never grows them.
	s.recBuf = make([]TraceStep, 0, 4*cfg.MaxTraceBranches)
	if cfg.Scheme == SchemePathProfile {
		s.capBuf = make([]TraceStep, 0, 4*cfg.MaxTraceBranches)
	}
	s.m.SetSink(s)
	if h, ok := cfg.Chaos.(interface{ VMFault(*vm.Machine) error }); ok {
		s.m.SetFaultHook(h.VMFault)
	}
	if s.tr != nil {
		// Attach an instant fault span at delivery; the observer runs on the
		// failure path only, never per instruction.
		tr, parent := s.tr, s.trParent
		s.m.SetFaultObserver(func(kind vm.FaultKind, pc int, step int64) {
			now := tr.Now()
			tr.Add(trace.SpanFault, parent, now, now, int32(pc), int64(kind))
		})
	}
	// Load-time gate: the static verifier (internal/cfg) must accept the
	// program before Dynamo will execute it. The verdict is memoized per
	// program, so the many Systems of an experiment grid verify each
	// program once.
	s.verifyErr = verifyGate(p)
	s.resetRunState()
	return s
}

// resetRunState (re)initializes every piece of per-run state; New and Reset
// share it so the two paths cannot drift. The machine itself, the verifier
// verdict, and the reusable trace buffers are owned by the caller.
func (s *System) resetRunState() {
	cfg := &s.cfg
	s.res = Result{Program: s.m.Prog.Name, Scheme: cfg.Scheme, Tau: cfg.Tau}
	s.mode = modeInterp
	s.heads = newHeadTable(cfg.MaxHeadCounters)
	s.pathCounts = s.pathCounts[:0]
	s.armed = make(map[path.ID]bool)
	s.cache = make(map[int]*Fragment)
	s.everCached = make(map[int]bool)
	s.interner = path.NewInterner()
	if cfg.MaxPaths > 0 {
		// A recycled path slot belongs to a new path: forget the old
		// path's count and arming so they are not inherited.
		s.interner.SetCapacity(cfg.MaxPaths, func(id path.ID) {
			if int(id) < len(s.pathCounts) {
				s.pathCounts[id] = 0
			}
			delete(s.armed, id)
		})
	}
	s.black = newBlacklist(cfg.BlacklistBackoff, cfg.BlacklistMaxAborts)
	s.skipping = false
	s.skipEnd = -1
	s.completed = false
	s.recording = false
	s.recBuf = s.recBuf[:0]
	s.capBuf = s.capBuf[:0]
	s.capAborted = false
	s.evictsAtWin = 0
	s.frag = nil
	s.fpos = 0
	s.windowEvents = 0
	s.windowCreations = 0
	s.prevCreations = s.prevCreations[:0]
	s.nativeRedirectCycles = 0
	s.telLast = telCycleMarks{}
	s.selSpan = trace.NoSpan
	s.hasDeadline = false
	s.preempt.Store(false)
	s.tracker = path.NewTracker(s.interner, s.m.PC, s.onComplete)
	s.tracker.MaxBranches = cfg.MaxTraceBranches
	if s.verifyErr != nil {
		if s.tel != nil {
			s.tel.Inc(telVerifyRejects)
		}
		return
	}
	if cfg.Scheme == SchemeStatic {
		s.prebuildStatic(s.m.Prog)
	}
}

// Reset returns the System to its just-constructed state so it can run the
// same program again: machine registers/memory/PC restored, all profiling
// tables, caches, heuristics, and result counters cleared, and — when the
// configured chaos injector is resettable — the fault schedule rewound, so
// a reset run replays byte-identically to a fresh New. The predecoded
// micro-op image and the memoized verifier verdict are retained, which is
// the point: a resident server reuses Systems without re-paying load-time
// translation.
func (s *System) Reset() {
	s.m.Reset()
	if r, ok := s.inj.(interface{ Reset() }); ok {
		r.Reset()
	}
	s.resetRunState()
}

// Machine exposes the underlying machine (read-only use).
func (s *System) Machine() *vm.Machine { return s.m }

func (s *System) onComplete(c path.Completed) {
	s.completed = true
	s.completedID = c.ID
}

// OnBranch implements vm.Sink; it is the machine's event callback, not part
// of the System API.
func (s *System) OnBranch(ev vm.BranchEvent) {
	if ev.Target != ev.PC+1 {
		s.res.Redirects++
	}
	switch s.mode {
	case modeNative:
		return
	case modeInterp:
		if s.skipping {
			if ev.Backward {
				s.skipping = false
				s.skipEnd = ev.Target
			}
			return
		}
		s.tracker.OnBranch(ev)
	}
}

// DeadlineError reports a run stopped by its context: the wall-clock
// deadline expired (or the caller canceled) before the guest halted. The
// Result accompanying it is fully accounted up to the preemption point.
// Unwrap exposes the context's error, so errors.Is matches
// context.DeadlineExceeded and context.Canceled.
type DeadlineError struct {
	Steps int64 // machine steps executed when the run was stopped
	Cause error // the context's error
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("dynamo: deadline exceeded after %d steps: %v", e.Steps, e.Cause)
}

// Unwrap exposes the context error for errors.Is.
func (e *DeadlineError) Unwrap() error { return e.Cause }

// Run executes the program under Dynamo and returns the result. A machine
// fault (including injected traps) or the step limit ends the run with a
// non-nil error, but the Result is fully accounted either way and the
// machine state is exactly what plain interpretation of the same program
// (under the same fault schedule) would have produced: Dynamo never
// diverges semantically and never panics.
func (s *System) Run() (Result, error) { return s.RunContext(context.Background()) }

// RunContext is Run under a context: when ctx carries a deadline or is
// cancellable, the run additionally stops — with a *DeadlineError and a
// fully accounted Result — once ctx is done. Preemption is cooperative,
// checked at every dispatcher iteration (at most one interpreted
// instruction apart) and at fragment-link boundaries (at most one fragment
// body apart), so a hostile guest cannot outrun its wall-clock budget by
// staying resident in the fragment cache. A background context makes
// RunContext exactly Run: no timer, no atomic traffic on the step path.
func (s *System) RunContext(ctx context.Context) (Result, error) {
	if s.verifyErr != nil {
		return s.res, fmt.Errorf("dynamo: refusing unverified program: %w", s.verifyErr)
	}
	if s.hasDeadline = ctx.Done() != nil; s.hasDeadline {
		s.preempt.Store(false)
		stop := context.AfterFunc(ctx, func() { s.preempt.Store(true) })
		defer stop()
	}
	s.atPathStart(s.m.PC)
	for !s.m.Halted {
		if s.cfg.MaxSteps > 0 && s.m.Steps >= s.cfg.MaxSteps {
			s.finish()
			return s.res, fmt.Errorf("dynamo: %w after %d steps", vm.ErrStepLimit, s.m.Steps)
		}
		if s.hasDeadline && s.preempt.Load() {
			s.finish()
			return s.res, &DeadlineError{Steps: s.m.Steps, Cause: context.Cause(ctx)}
		}
		var err error
		if s.mode == modeFragment {
			// Two-tier dispatch: the fault-free path runs whole fragments
			// (and linked successors) on the compiled step arrays without
			// per-instruction injector or hook checks; chaos injection or an
			// installed fault hook selects the slow per-step stepper.
			if s.inj == nil && !s.m.HasFaultHook() {
				err = s.runFragment()
			} else {
				err = s.stepFragmentSlow()
			}
		} else {
			err = s.stepInterp()
		}
		if err != nil {
			var f *vm.Fault
			if errors.As(err, &f) {
				s.res.VMFault = f.Msg
			}
			s.finish()
			return s.res, fmt.Errorf("dynamo: %w", err)
		}
	}
	s.finish()
	return s.res, nil
}

// finish folds the cycle accounting into the result.
func (s *System) finish() {
	s.res.Steps = s.m.Steps
	c := s.cfg.Costs
	s.res.NativeCycles = float64(s.res.Steps)*c.NativeInstr + float64(s.res.Redirects)*c.TakenPenalty
	s.res.Cycles = s.res.InterpCycles + s.res.FragCycles + s.res.ProfileCycles +
		s.res.BuildCycles + s.res.TransCycles +
		float64(s.res.NativeInstrs)*c.NativeInstr + s.nativeRedirectCycles
	s.res.HeadEvictions = s.heads.evictions
	s.res.PathEvictions = s.interner.Evictions()
	s.res.BlacklistSkips = s.black.skips
	s.res.BlacklistedHeads = s.black.permanent()
	s.syncTelemetry()
}

func (s *System) stepInterp() error {
	c := &s.cfg.Costs
	pc := s.m.PC
	in := s.m.InstrAt(pc)

	if s.mode == modeNative {
		if err := s.m.Step(); err != nil {
			return err
		}
		s.res.NativeInstrs++
		if s.m.PC != pc+1 && !s.m.Halted {
			s.nativeRedirectCycles += c.TakenPenalty
		}
		return nil
	}

	// Interpreter dispatch cost, plus the scheme's per-branch profiling
	// work (only while profiling is active).
	s.res.InterpCycles += c.InterpInstr
	s.res.InterpInstrs++
	if s.cfg.Scheme == SchemePathProfile && !s.skipping {
		switch in.Op {
		case isa.Br, isa.BrI:
			s.res.ProfileCycles += c.BitShift
		case isa.JmpInd, isa.CallInd:
			s.res.ProfileCycles += c.IndAppend
		}
	}
	if s.recording {
		s.res.BuildCycles += c.RecordInstr
	}

	if err := s.m.Step(); err != nil {
		return err
	}
	next := s.m.PC

	if s.recording {
		s.recBuf = append(s.recBuf, TraceStep{PC: pc, In: in, Next: next})
	}
	if s.cfg.Scheme == SchemePathProfile && !s.skipping {
		s.capBuf = append(s.capBuf, TraceStep{PC: pc, In: in, Next: next})
	}

	// Injected faults land at their machine step and damage only what is in
	// flight then: a recording abort with no recording under way hits
	// nothing, and a fragment abort while interpreting hits nothing. Both
	// streams are polled every step so events never pile up and ambush the
	// next recording.
	if s.inj != nil {
		abort := s.inj.AbortRecording(s.m.Steps)
		s.inj.AbortFragment(s.m.Steps) // no fragment in flight; discard
		if abort {
			switch {
			case s.recording:
				s.recording = false
				s.recBuf = s.recBuf[:0]
				s.res.RecordAborts++
				s.tr.End(s.selSpan)
				s.selSpan = trace.NoSpan
				s.blacklistHead(s.recStart, chaosArgRecordAbort)
			case s.cfg.Scheme == SchemePathProfile && !s.skipping && !s.capAborted:
				s.capAborted = true
				s.capBuf = s.capBuf[:0]
				s.res.RecordAborts++
				s.blacklistHead(s.capStart, chaosArgRecordAbort)
			}
		}
	}

	if s.skipEnd >= 0 {
		// A backward branch ended an unprofilable suffix: resume profiling.
		target := s.skipEnd
		s.skipEnd = -1
		s.tracker.Restart(target)
		s.atPathStart(target)
		return nil
	}

	if s.completed {
		s.completed = false
		id := s.completedID
		s.res.PathEvents++
		if s.tel != nil && s.res.PathEvents&telSampleMask == 0 {
			s.tel.Observe(telPathLen, int64(s.interner.Info(id).Branches))
		}
		s.onPathEvent()

		if s.cfg.Scheme == SchemePathProfile {
			s.res.ProfileCycles += c.PathTableUpdate
			if s.inj != nil {
				if d, ok := s.inj.CorruptCounter(s.m.Steps); ok {
					s.corruptPathCount(id, d)
					s.res.Corruptions++
					if s.tel != nil {
						s.tel.Inc(telCorruptions)
						s.tel.Emit(telemetry.EvChaosInject, s.m.Steps, s.capStart, chaosArgCorrupt)
					}
				}
			}
			if s.pathCount(id) && s.tel != nil {
				// The path's own counter reached τ: the PathProfile analogue
				// of a head promotion.
				s.tel.Inc(telHeadPromotions)
				s.tel.Observe(telPromoteCounter, s.cfg.Tau)
				s.tel.Emit(telemetry.EvHeadPromote, s.m.Steps, s.capStart, s.cfg.Tau)
			}
			if s.armed[id] && s.cache[s.capStart] == nil && !s.capAborted && s.black.allow(s.capStart) {
				delete(s.armed, id)
				// Retroactive recording charge for the captured trace.
				s.res.BuildCycles += c.RecordInstr * float64(len(s.capBuf))
				s.emit(s.capStart, s.capBuf)
			}
		}
		if s.recording {
			s.recording = false
			s.emit(s.recStart, s.recBuf)
		}
		if !s.m.Halted {
			s.atPathStart(s.m.PC)
		}
	}
	return nil
}

// pathCount counts one execution of path id and reports whether this count
// armed it (reached τ exactly).
func (s *System) pathCount(id path.ID) bool {
	for int(id) >= len(s.pathCounts) {
		s.pathCounts = append(s.pathCounts, 0)
	}
	if s.pathCounts[id] < headCounterMax {
		s.pathCounts[id]++
	}
	if s.pathCounts[id] == s.cfg.Tau {
		s.armed[id] = true
		return true
	}
	return false
}

// corruptPathCount absorbs an injected corruption of path id's counter:
// the value saturates rather than wrapping, and a count pushed past τ arms
// the path (prediction noise the system must tolerate, never a crash).
func (s *System) corruptPathCount(id path.ID, delta int64) {
	for int(id) >= len(s.pathCounts) {
		s.pathCounts = append(s.pathCounts, 0)
	}
	v := s.pathCounts[id] + delta
	if v < 0 {
		v = 0
	}
	if v > headCounterMax {
		v = headCounterMax
	}
	s.pathCounts[id] = v
	if v >= s.cfg.Tau {
		s.armed[id] = true
	}
}

// atPathStart handles the boundary where a new path begins at addr while in
// the interpreter: enter the cache if a fragment exists, otherwise run the
// scheme's head logic. (Fragment-side transitions go through leaveFragment.)
func (s *System) atPathStart(addr int) {
	c := &s.cfg.Costs
	if fr := s.cache[addr]; fr != nil {
		s.res.TransCycles += c.FragEnter
		s.res.FragEnters++
		fr.Enters++
		s.mode = modeFragment
		s.frag = fr
		s.fpos = 0
		if s.tel != nil && s.res.FragEnters&telSampleMask == 0 {
			s.tel.Emit(telemetry.EvFragEnter, s.m.Steps, addr, 0)
		}
		return
	}
	// Interpreting from addr: reset the scheme's per-path state.
	switch s.cfg.Scheme {
	case SchemeNET:
		s.res.ProfileCycles += c.HeadCounter
		if s.inj != nil {
			if d, ok := s.inj.CorruptCounter(s.m.Steps); ok {
				s.heads.add(addr, d)
				s.res.Corruptions++
				if s.tel != nil {
					s.tel.Inc(telCorruptions)
					s.tel.Emit(telemetry.EvChaosInject, s.m.Steps, addr, chaosArgCorrupt)
				}
			}
		}
		n := s.heads.add(addr, 1)
		force := s.inj != nil && s.inj.SpikeSelect(s.m.Steps)
		if (n >= s.cfg.Tau || force) && !s.recording {
			s.heads.zero(addr)
			if s.black.allow(addr) {
				s.recording = true
				s.recStart = addr
				s.recBuf = s.recBuf[:0]
				s.selSpan = s.tr.Begin(trace.SpanTraceSelect, s.trParent, int32(addr), n)
				if force && n < s.cfg.Tau {
					s.res.ForcedSelections++
					if s.tel != nil {
						s.tel.Inc(telForcedSelects)
						s.tel.Emit(telemetry.EvChaosInject, s.m.Steps, addr, chaosArgSpike)
					}
				}
				if s.tel != nil {
					s.tel.Inc(telHeadPromotions)
					s.tel.Observe(telPromoteCounter, n)
					s.tel.Emit(telemetry.EvHeadPromote, s.m.Steps, addr, n)
				}
			}
		}
	case SchemePathProfile:
		s.capStart = addr
		s.capBuf = s.capBuf[:0]
		s.capAborted = false
	}
}

// emit optimizes a recorded trace and installs it in the cache.
func (s *System) emit(start int, steps []TraceStep) {
	// Selection ends here whether or not anything installs; close the open
	// trace-select span (a no-op for sampled-out runs and armed PP captures,
	// which never opened one).
	s.tr.End(s.selSpan)
	s.selSpan = trace.NoSpan
	if len(steps) == 0 || s.mode == modeNative {
		return
	}
	c := &s.cfg.Costs
	s.res.BuildCycles += c.OptimizeInstr * float64(len(steps))
	cp := make([]TraceStep, len(steps))
	copy(cp, steps)
	fr := s.opt.Optimize(start, cp)
	if s.cfg.ValidateEmits && !s.validateEmit(fr) {
		// The optimizer produced a fragment the validator cannot prove
		// faithful (an optimizer bug, or a trace corrupted between recording
		// and emit — a bad snapshot restore, a hand-edited profile). The
		// head keeps interpreting; re-selection will retry with a fresh
		// recording, and a persistent rejection shows up in the counters.
		return
	}
	if len(s.cache) >= s.cfg.MaxFragments {
		s.flush()
	}
	s.cache[start] = fr
	s.res.Fragments++
	if s.tel != nil {
		s.tel.Inc(telFragCreated)
		s.tel.Observe(telFragSize, int64(len(steps)))
		s.tel.Emit(telemetry.EvFragEmit, s.m.Steps, start, int64(len(steps)))
	}
	if s.tr != nil {
		now := s.tr.Now()
		s.tr.Add(trace.SpanFragEmit, s.trParent, now, now, int32(start), int64(len(steps)))
	}
	if !s.everCached[start] {
		s.everCached[start] = true
		s.windowCreations++
	}
}

func (s *System) flush() {
	resident := len(s.cache)
	s.cache = make(map[int]*Fragment)
	s.res.Flushes++
	s.res.TransCycles += s.cfg.Costs.FlushCost
	if s.tel != nil {
		s.tel.Inc(telFlushes)
		s.tel.Emit(telemetry.EvFlush, s.m.Steps, 0, int64(resident))
	}
}

// onPathEvent drives the flush and bail-out heuristics (and the optional
// coverage probe).
func (s *System) onPathEvent() {
	if s.cfg.ProbeEvery > 0 && s.cfg.Probe != nil && s.res.PathEvents%int64(s.cfg.ProbeEvery) == 0 {
		s.cfg.Probe(s)
	}
	if s.cfg.FlushWindow > 0 {
		s.windowEvents++
		if s.windowEvents >= s.cfg.FlushWindow {
			s.windowEvents = 0
			if len(s.prevCreations) >= 2 {
				avg := 0.0
				for _, v := range s.prevCreations {
					avg += float64(v)
				}
				avg /= float64(len(s.prevCreations))
				// Sudden, sharp rise in the prediction rate after a stable
				// stretch: a phase change is starting; flush phase-stale
				// fragments (Section 6.1's heuristic flushing scheme).
				if s.windowCreations >= 25 && float64(s.windowCreations) > s.cfg.FlushSpike*(avg+0.5) {
					s.flush()
					s.prevCreations = s.prevCreations[:0]
				}
			}
			s.prevCreations = append(s.prevCreations, s.windowCreations)
			if len(s.prevCreations) > 4 {
				s.prevCreations = s.prevCreations[1:]
			}
			s.windowCreations = 0
			// Lazy telemetry sync: the exported cycle split and occupancy
			// gauges trail the live run by at most one flush window.
			s.syncTelemetry()

			// Resource governor: heavy CLOCK eviction in the bounded
			// head/path tables means the working set no longer fits and
			// profiling effort is being wasted on churn — a generalized
			// bail-out condition.
			if s.cfg.GovernorEvictLimit > 0 && !s.res.BailedOut {
				ev := s.heads.evictions + s.interner.Evictions()
				if ev-s.evictsAtWin > int64(s.cfg.GovernorEvictLimit) {
					s.bail("evict-thrash")
				}
				s.evictsAtWin = ev
			}
		}
	}
	if s.cfg.BailoutAfter > 0 && !s.res.BailedOut && s.res.PathEvents%s.cfg.BailoutAfter == 0 {
		lowReuse := s.res.CachedFraction() < s.cfg.BailoutMinCached
		tooManyPaths := s.cfg.BailoutFragBudget > 0 && s.res.Fragments > s.cfg.BailoutFragBudget
		switch {
		case lowReuse:
			s.bail("low-reuse")
		case tooManyPaths:
			s.bail("path-budget")
		}
	}
}

// bail gives up on dynamic optimization: the rest of the program runs
// native (Section 6's bail-out, generalized to resource exhaustion).
func (s *System) bail(reason string) {
	s.res.BailedOut = true
	s.res.BailStep = s.m.Steps
	s.res.BailReason = reason
	s.mode = modeNative
	s.cache = make(map[int]*Fragment)
	s.recording = false
	s.skipping = false
	s.tr.End(s.selSpan)
	s.selSpan = trace.NoSpan
	if s.tel != nil {
		s.tel.Inc(telBailouts)
		s.tel.Emit(telemetry.EvBail, s.m.Steps, 0, bailReasonCode(reason))
	}
	if s.tr != nil {
		now := s.tr.Now()
		s.tr.Add(trace.SpanBail, s.trParent, now, now, 0, bailReasonCode(reason))
	}
}

// runFragment executes fragments on their compiled step arrays until control
// leaves the fragment cache (or the machine halts, faults, or hits the step
// budget). Linked exits transfer directly into the successor fragment's
// compiled array — the loop keeps going without returning to Run's
// dispatcher, the software analogue of Dynamo's fragment linking. Only
// reached when no injector and no fault hook are installed, so the hot loop
// is: budget compare, ExecAt, successor compare.
//
//netpathvet:dispatch
func (s *System) runFragment() error {
	m := s.m
	limit := s.cfg.MaxSteps
	pc := m.PC
	for {
		fr := s.frag
		if s.t2c != nil && s.fpos == 0 {
			// A published superblock supersedes the step array when entering
			// at the head. The atomic load is the entire publication
			// protocol: the background compiler stores, dispatch loads.
			if blk := fr.t2.Load(); blk != nil {
				if !fr.t2Credited {
					fr.t2Credited = true
					s.creditT2Block(blk)
				}
				if blk.sb != nil {
					ran, err := s.runTier2(fr, blk)
					if err != nil {
						return err
					}
					if ran {
						if s.mode != modeFragment {
							return nil
						}
						if s.hasDeadline && s.preempt.Load() {
							return nil
						}
						pc = m.PC
						continue
					}
					// Budget-gated or guard-bounced: run this entry on tier 1.
				}
			}
		}
		code := fr.code
		last := len(code) - 1
		fpos := s.fpos
		base := fpos
		for {
			if limit > 0 && m.Steps >= limit {
				// Out of budget before this step executed: sync state and
				// let Run's loop raise the step-limit error.
				s.accountFrag(fr, base, fpos)
				s.fpos = fpos
				m.PC = pc
				return nil
			}
			npc := m.ExecAt(pc)
			if npc < 0 {
				// Halt or fault. SettleExec pins m.PC and delivers the
				// fault; a halting step is accounted (it executed), a
				// faulting one is not — matching the per-step stepper,
				// which returns before accounting on error.
				err := m.SettleExec(pc, npc)
				if err == nil {
					s.accountFrag(fr, base, fpos+1)
				} else {
					s.accountFrag(fr, base, fpos)
				}
				s.fpos = fpos
				return err
			}
			if fpos == last {
				// Fragment completed: its end is a path boundary.
				s.accountFrag(fr, base, last+1)
				m.PC = npc
				fr.Completions++
				s.res.PathEvents++
				s.res.CacheEvents++
				s.onPathEvent()
				if s.t2c != nil {
					s.maybePromote(fr)
				}
				s.leaveFragment(npc, true)
				break
			}
			if npc != int(code[fpos].next) {
				s.accountFrag(fr, base, fpos+1)
				m.PC = npc
				fr.EarlyExits++
				s.leaveFragment(npc, false)
				break
			}
			fpos++
			pc = npc
		}
		if s.mode != modeFragment {
			return nil
		}
		if s.hasDeadline && s.preempt.Load() {
			// Preempted at a link boundary: surface to the dispatcher, which
			// raises the deadline error. Without this check a guest spinning
			// inside linked fragments would never reach a dispatch point.
			return nil
		}
		// Linked transfer: continue in the successor fragment set by
		// leaveFragment without surfacing to the dispatcher.
		pc = m.PC
	}
}

// accountFrag settles cycle accounting for the straight run Steps[from:to)
// of fr in one shot: eliminated instructions were skipped at fragment
// compile time, so their count comes from the prefix sums rather than a
// per-step branch.
func (s *System) accountFrag(fr *Fragment, from, to int) {
	if to <= from {
		return
	}
	n := int64(to - from)
	elim := int64(fr.elimPrefix[to] - fr.elimPrefix[from])
	s.res.FragInstrs += n
	s.res.ElimInstrs += elim
	s.res.FragCycles += float64(n-elim) * s.cfg.Costs.FragInstr
}

// stepFragmentSlow is the chaos slow path: one fragment step per call, with
// injected-fault polling. Installed only when an injector or fault hook is
// active — the fast loop above carries none of these branches.
func (s *System) stepFragmentSlow() error {
	c := &s.cfg.Costs

	// Injected fragment fault: fall back to the interpreter at the current
	// PC (the machine state is untouched, so execution stays semantically
	// identical); a fragment that keeps faulting is demoted — evicted from
	// the cache and its head blacklisted — back to interpretation. The
	// recording stream is drained too (no recording is in flight while a
	// fragment runs) so events land at their step, not at the next recording.
	if inj := s.inj; inj != nil {
		inj.AbortRecording(s.m.Steps) // no recording in flight; discard
		if inj.AbortFragment(s.m.Steps) {
			s.res.FragAborts++
			s.frag.Aborts++
			head := s.frag.Start
			if s.tel != nil {
				s.tel.Inc(telFragAborts)
				s.tel.Emit(telemetry.EvChaosInject, s.m.Steps, head, chaosArgFragAbort)
			}
			if s.cfg.DemoteAfterAborts > 0 && s.frag.Aborts >= int64(s.cfg.DemoteAfterAborts) {
				if s.cache[head] == s.frag {
					delete(s.cache, head)
				}
				s.res.Demotions++
				s.blacklistHead(head, -1)
				if s.tel != nil {
					s.tel.Inc(telDemotions)
					s.tel.Emit(telemetry.EvFragDemote, s.m.Steps, head, s.frag.Aborts)
				}
			}
			s.res.TransCycles += c.FragExit
			s.res.FragExits++
			s.mode = modeInterp
			if s.tel != nil && s.res.FragExits&telSampleMask == 0 {
				s.tel.Emit(telemetry.EvFragExit, s.m.Steps, s.m.PC, 0)
			}
			s.tracker.Restart(s.m.PC)
			if s.cfg.Scheme != SchemePathProfile || s.fpos == 0 {
				// The abort point is a (potential) trace head: NET and the
				// static scheme treat any exit as one, and at fpos 0 it is
				// the fragment's own head.
				s.atPathStart(s.m.PC)
			} else {
				// PathProfile: a mid-path suffix is not a profilable unit.
				s.skipping = true
			}
			return nil
		}
	}

	st := &s.frag.Steps[s.fpos]
	if err := s.m.Step(); err != nil {
		return err
	}
	if !st.Eliminated {
		s.res.FragCycles += c.FragInstr
	} else {
		s.res.ElimInstrs++
	}
	s.res.FragInstrs++
	if s.m.Halted {
		return nil
	}
	actual := s.m.PC
	if s.fpos == len(s.frag.Steps)-1 {
		// Fragment completed: its end is a path boundary. Promotion still
		// runs under chaos — background compilation and publication proceed
		// while this System stays on the precise slow path, which never
		// dispatches through a published block (see RunContext).
		s.frag.Completions++
		s.res.PathEvents++
		s.res.CacheEvents++
		s.onPathEvent()
		if s.t2c != nil {
			s.maybePromote(s.frag)
		}
		s.leaveFragment(actual, true)
		return nil
	}
	if actual == st.Next {
		s.fpos++
		return nil
	}
	s.frag.EarlyExits++
	s.leaveFragment(actual, false)
	return nil
}

// leaveFragment transfers control out of the current fragment to target.
func (s *System) leaveFragment(target int, completedPath bool) {
	c := &s.cfg.Costs
	if s.mode == modeNative {
		return
	}
	if fr := s.cache[target]; fr != nil && !s.cfg.DisableLinking {
		s.res.TransCycles += c.LinkedJump
		s.res.LinkedJumps++
		fr.Enters++
		s.frag = fr
		s.fpos = 0
		if s.tel != nil && s.res.LinkedJumps&telSampleMask == 0 {
			s.tel.Emit(telemetry.EvFragLink, s.m.Steps, target, 0)
		}
		return
	}
	s.res.TransCycles += c.FragExit
	s.res.FragExits++
	s.mode = modeInterp
	if s.tel != nil && s.res.FragExits&telSampleMask == 0 {
		s.tel.Emit(telemetry.EvFragExit, s.m.Steps, target, 0)
	}
	if completedPath {
		// The target is a genuine path head under either scheme.
		s.tracker.Restart(target)
		s.atPathStart(target)
		return
	}
	switch s.cfg.Scheme {
	case SchemeNET, SchemeStatic:
		// Exit-stub counter: the exit target becomes a potential trace
		// head (secondary trace formation). Under the static scheme there
		// is nothing to count, but the exit target may hold a prebuilt
		// fragment, which atPathStart enters.
		s.tracker.Restart(target)
		s.atPathStart(target)
	case SchemePathProfile:
		// A mid-path suffix is not a profilable unit; interpret without
		// profiling until the next backward taken branch.
		s.skipping = true
	}
}

// nativeRedirectCycles is accumulated separately so Run can fold it in once.
