package dynamo

import (
	"testing"
	"time"

	"netpath/internal/trace"
)

// kindSet collects the span kinds present in a trace document.
func kindSet(d *trace.Doc) map[string]int {
	m := make(map[string]int)
	for _, s := range d.Spans {
		m[s.Kind]++
	}
	return m
}

// TestTraceSpansTier1 runs a hot loop with a trace attached and checks the
// engine writes trace-select and fragment-emit spans nested under the
// configured parent, with monotonic offsets.
func TestTraceSpansTier1(t *testing.T) {
	p := buildHotLoop(t, 50_000)
	tr := trace.New(trace.NewID(), "test", 256, time.Now())
	root := tr.Begin(trace.SpanRequest, trace.NoSpan, 0, 0)
	exec := tr.Begin(trace.SpanExecute, root, 0, 0)

	cfg := DefaultConfig(SchemeNET, 50)
	cfg.Trace = tr
	cfg.TraceParent = exec
	if _, err := New(p, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	tr.End(exec)
	tr.End(root)

	d := tr.Doc()
	ks := kindSet(d)
	if ks["trace-select"] == 0 || ks["fragment-emit"] == 0 {
		t.Fatalf("missing engine spans: %v", ks)
	}
	byID := make(map[int32]trace.SpanDoc)
	for _, s := range d.Spans {
		byID[s.ID] = s
	}
	for _, s := range d.Spans {
		if s.EndNS < s.StartNS {
			t.Fatalf("span %d non-monotonic: %+v", s.ID, s)
		}
		if s.Kind == "trace-select" || s.Kind == "fragment-emit" {
			if s.Parent != exec {
				t.Fatalf("engine span %d parented to %d, want execute span %d", s.ID, s.Parent, exec)
			}
			p := byID[s.Parent]
			if s.StartNS < p.StartNS {
				t.Fatalf("child %d starts before parent: %+v vs %+v", s.ID, s, p)
			}
		}
	}
}

// TestTraceSpansTier2 checks the background compiler writes tier2-enqueue,
// tier2-compile, and tier2-promote spans into the submitting run's trace —
// including when the compile finishes after the run returned.
func TestTraceSpansTier2(t *testing.T) {
	p := buildHotLoop(t, 200_000)
	tr := trace.New(trace.NewID(), "test", 256, time.Now())
	root := tr.Begin(trace.SpanRequest, trace.NoSpan, 0, 0)
	exec := tr.Begin(trace.SpanExecute, root, 0, 0)

	tc := NewTier2Compiler(1, 64)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 50)
	cfg.Trace = tr
	cfg.TraceParent = exec
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 4
	cfg.Tier2MinFlow = 1
	if _, err := New(p, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for tc.Compiled() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tc.Compiled() == 0 {
		t.Fatal("compiler never published")
	}
	tr.End(exec)
	tr.End(root)

	ks := kindSet(tr.Doc())
	if ks["tier2-enqueue"] == 0 || ks["tier2-compile"] == 0 || ks["tier2-promote"] == 0 {
		t.Fatalf("missing tier-2 spans: %v", ks)
	}
	// The promote span nests under its compile span.
	d := tr.Doc()
	var compileID int32 = trace.NoSpan
	for _, s := range d.Spans {
		if s.Kind == "tier2-compile" {
			compileID = s.ID
		}
	}
	found := false
	for _, s := range d.Spans {
		if s.Kind == "tier2-promote" && s.Parent == compileID {
			found = true
		}
	}
	if !found {
		t.Fatalf("tier2-promote not parented to tier2-compile: %+v", d.Spans)
	}
}

// TestTraceNilConfigUnchanged pins the sampled-out contract inside the
// engine: a run with no trace attached behaves identically (the nil checks
// are the whole cost — results must match a traced run's).
func TestTraceNilConfigUnchanged(t *testing.T) {
	p := buildHotLoop(t, 20_000)
	base, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeNET, 50)
	cfg.Trace = trace.New(trace.NewID(), "test", 256, time.Now())
	traced, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if base.Steps != traced.Steps || base.Fragments != traced.Fragments ||
		base.PathEvents != traced.PathEvents || base.Cycles != traced.Cycles {
		t.Fatalf("tracing changed execution: base %+v traced %+v", base, traced)
	}
}
