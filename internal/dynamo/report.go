package dynamo

import (
	"fmt"
	"sort"
	"strings"
)

// FragmentStat summarizes one resident fragment for inspection.
type FragmentStat struct {
	Start       int
	Len         int
	Emitted     int
	Enters      int64
	Completions int64
	EarlyExits  int64
}

// CompletionRate returns the fraction of entries that ran the fragment to
// its end (the trace-selection quality signal: a well-chosen trace is
// followed to completion most of the time).
func (f FragmentStat) CompletionRate() float64 {
	if f.Enters == 0 {
		return 0
	}
	return float64(f.Completions) / float64(f.Enters)
}

// CacheStats returns statistics for the fragments currently resident in the
// cache, sorted by entry count (hottest first, ties by address).
func (s *System) CacheStats() []FragmentStat {
	out := make([]FragmentStat, 0, len(s.cache))
	for _, fr := range s.cache {
		out = append(out, FragmentStat{
			Start:       fr.Start,
			Len:         fr.Len(),
			Emitted:     fr.EmittedLen(),
			Enters:      fr.Enters,
			Completions: fr.Completions,
			EarlyExits:  fr.EarlyExits,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Enters != out[j].Enters {
			return out[i].Enters > out[j].Enters
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// DumpCache renders the top n resident fragments (n <= 0: all).
func (s *System) DumpCache(n int) string {
	stats := s.CacheStats()
	if n > 0 && n < len(stats) {
		stats = stats[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fragment cache: %d resident\n", len(s.cache))
	for _, st := range stats {
		fmt.Fprintf(&b, "  @%-6d len=%-3d emitted=%-3d enters=%-9d completed=%.0f%% early-exits=%d\n",
			st.Start, st.Len, st.Emitted, st.Enters, 100*st.CompletionRate(), st.EarlyExits)
	}
	return b.String()
}

// OptimizerStats exposes the per-pass elimination counters accumulated over
// every trace this system optimized.
func (s *System) OptimizerStats() Optimizer { return *s.opt }
