// Robustness machinery: the fault-injection seam, the capacity-bounded
// head-counter table, and the trace-head blacklist with exponential
// backoff. Real Dynamo is defined as much by its bail-out and guard
// behavior as by its speedups; this file is where the mini-Dynamo learns to
// survive adversity (injected faults, counter corruption, pathological
// table growth) instead of aborting or growing without bound.
package dynamo

// Injector is the fault-injection seam of Config.Chaos, implemented by
// chaos.Injector. All methods must be deterministic in their arguments so
// runs stay replayable. VMFault is installed separately as the machine's
// fault hook (see vm.FaultHook); the step-indexed methods below are polled
// by the system at its integration points.
type Injector interface {
	// AbortRecording reports whether the trace recording (NET) or path
	// capture (PathProfile) in flight should abort at this machine step.
	AbortRecording(step int64) bool
	// AbortFragment reports whether the fragment execution in flight should
	// abort at this machine step.
	AbortFragment(step int64) bool
	// CorruptCounter reports a profiling-counter corruption delta due at
	// this machine step.
	CorruptCounter(step int64) (delta int64, ok bool)
	// SpikeSelect reports whether a trace selection should be forced at
	// this machine step regardless of counter state.
	SpikeSelect(step int64) bool
}

// headCounterMax is the saturation point of head counters: corruption may
// pin a counter here but can never overflow it.
const headCounterMax = int64(1) << 50

// headTable is a capacity-bounded counter map with CLOCK eviction. NET's
// whole pitch is its tiny counter space, but on a pathological workload
// (every backward-branch target cold and distinct) even a head-counter map
// grows without bound; the cap makes the memory ceiling hard and the
// governor watches the eviction rate for thrash. max <= 0 means unbounded.
type headTable struct {
	max       int
	index     map[int]int
	keys      []int
	vals      []int64
	ref       []bool
	hand      int
	evictions int64
}

func newHeadTable(max int) *headTable {
	return &headTable{max: max, index: make(map[int]int)}
}

// add adds delta to key's counter (allocating it if new, evicting if full)
// and returns the new value. Counters saturate at [0, headCounterMax].
func (t *headTable) add(key int, delta int64) int64 {
	i, ok := t.index[key]
	if !ok {
		if t.max > 0 && len(t.keys) >= t.max {
			i = t.evict()
			delete(t.index, t.keys[i])
			t.keys[i] = key
			t.vals[i] = 0
		} else {
			i = len(t.keys)
			t.keys = append(t.keys, key)
			t.vals = append(t.vals, 0)
			t.ref = append(t.ref, false)
		}
		t.index[key] = i
	}
	t.ref[i] = true
	v := t.vals[i] + delta
	if v < 0 {
		v = 0
	}
	if v > headCounterMax {
		v = headCounterMax
	}
	t.vals[i] = v
	return v
}

// evict picks a victim slot by the CLOCK rule (slots referenced since the
// hand last passed are spared once).
func (t *headTable) evict() int {
	for t.ref[t.hand] {
		t.ref[t.hand] = false
		t.hand = (t.hand + 1) % len(t.keys)
	}
	i := t.hand
	t.hand = (t.hand + 1) % len(t.keys)
	t.evictions++
	return i
}

// zero resets key's counter without deallocating it.
func (t *headTable) zero(key int) {
	if i, ok := t.index[key]; ok {
		t.vals[i] = 0
	}
}

// len returns the number of live counters.
func (t *headTable) len() int { return len(t.keys) }

// blacklistEntry tracks recording aborts at one trace head.
type blacklistEntry struct {
	aborts int   // faults observed recording from this head
	wait   int64 // selection attempts to suppress before the next retry
}

// blacklist maps trace heads to their abort/backoff state. A head whose
// recording aborted is not retried immediately: each abort doubles the
// number of would-be selections that are skipped first (exponential
// backoff), and after maxAborts the head is demoted to interpretation for
// good. Entries are only created on aborts, so the table is bounded by the
// fault count.
type blacklist struct {
	entries   map[int]*blacklistEntry
	backoff   int64 // base backoff in suppressed selections (≥1)
	maxAborts int   // aborts before a head is permanently blacklisted
	skips     int64 // selections suppressed so far
}

func newBlacklist(backoff int64, maxAborts int) *blacklist {
	if backoff < 1 {
		backoff = 1
	}
	return &blacklist{entries: make(map[int]*blacklistEntry), backoff: backoff, maxAborts: maxAborts}
}

// abort records a recording abort at head, raising its backoff, and returns
// the head's total abort count (telemetry reports it in the blacklist event).
func (b *blacklist) abort(head int) int {
	e := b.entries[head]
	if e == nil {
		e = &blacklistEntry{}
		b.entries[head] = e
	}
	e.aborts++
	shift := uint(e.aborts - 1)
	if shift > 16 {
		shift = 16
	}
	e.wait = b.backoff << shift
	return e.aborts
}

// allow reports whether a selection at head may proceed, consuming one
// backoff credit when it may not.
func (b *blacklist) allow(head int) bool {
	e := b.entries[head]
	if e == nil {
		return true
	}
	if b.maxAborts > 0 && e.aborts >= b.maxAborts {
		b.skips++
		return false
	}
	if e.wait > 0 {
		e.wait--
		b.skips++
		return false
	}
	return true
}

// seed imports persisted abort state for head (snapshot restore): the entry
// jumps straight to the given abort count with the backoff abort() would
// have left after the last one. Imports never lower an existing count.
func (b *blacklist) seed(head int, aborts int) {
	if aborts <= 0 {
		return
	}
	e := b.entries[head]
	if e == nil {
		e = &blacklistEntry{}
		b.entries[head] = e
	}
	if aborts <= e.aborts {
		return
	}
	e.aborts = aborts
	shift := uint(aborts - 1)
	if shift > 16 {
		shift = 16
	}
	e.wait = b.backoff << shift
}

// barred reports whether head is permanently blacklisted, without consuming
// a backoff credit the way allow does. Restore uses it to decide which
// persisted traces may be installed.
func (b *blacklist) barred(head int) bool {
	e := b.entries[head]
	return e != nil && b.maxAborts > 0 && e.aborts >= b.maxAborts
}

// permanent returns the number of permanently blacklisted heads.
func (b *blacklist) permanent() int {
	n := 0
	for _, e := range b.entries {
		if b.maxAborts > 0 && e.aborts >= b.maxAborts {
			n++
		}
	}
	return n
}
