package dynamo

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"netpath/internal/chaos"
	"netpath/internal/randprog"
	"netpath/internal/telemetry"
	"netpath/internal/vm"
)

// softRates injects every non-trap fault kind densely enough that short
// random programs hit all of them: aborted recordings, aborted fragment
// executions, corrupted counters, and forced selection spikes.
var softRates = chaos.Rates{
	RecordAbortPerM: 50_000,
	FragAbortPerM:   30_000,
	CorruptPerM:     20_000,
	SpikePerM:       10_000,
	SpikeLen:        8,
	CorruptMag:      1000,
}

// TestChaosSemanticEquivalence is the core robustness property: soft faults
// (recording aborts, fragment aborts, counter corruption, selection spikes)
// perturb only the optimizer's bookkeeping, so a chaos-ridden mini-Dynamo
// run must finish cleanly with exactly the machine state plain
// interpretation produces — same step count, same registers, same memory.
func TestChaosSemanticEquivalence(t *testing.T) {
	var aborts, fragAborts, corruptions, forced int64
	for seed := int64(1); seed <= 12; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})

		ref := vm.New(p)
		if err := ref.Run(0); err != nil {
			t.Fatalf("seed %d: plain run: %v", seed, err)
		}

		for _, scheme := range []Scheme{SchemeNET, SchemePathProfile} {
			cfg := DefaultConfig(scheme, 5)
			cfg.Chaos = chaos.NewRandom(seed, softRates)
			sys := New(p, cfg)
			res, err := sys.Run()
			if err != nil {
				t.Fatalf("seed %d %v: Run under soft chaos: %v", seed, scheme, err)
			}
			if res.Steps != ref.Steps {
				t.Errorf("seed %d %v: steps %d, plain VM %d", seed, scheme, res.Steps, ref.Steps)
			}
			m := sys.Machine()
			if m.Reg != ref.Reg {
				t.Errorf("seed %d %v: final registers diverge from plain VM", seed, scheme)
			}
			for a := range ref.Mem {
				if m.Mem[a] != ref.Mem[a] {
					t.Errorf("seed %d %v: Mem[%d] = %d, plain VM %d", seed, scheme, a, m.Mem[a], ref.Mem[a])
					break
				}
			}
			aborts += res.RecordAborts
			fragAborts += res.FragAborts
			corruptions += res.Corruptions
			forced += res.ForcedSelections
		}
	}
	// The property is vacuous if no faults actually fired.
	if aborts == 0 || fragAborts == 0 || corruptions == 0 || forced == 0 {
		t.Errorf("chaos under-exercised: recordAborts=%d fragAborts=%d corruptions=%d forced=%d (all must be > 0)",
			aborts, fragAborts, corruptions, forced)
	}
}

// TestChaosTrapEquivalence checks hard faults: an injected machine trap ends
// a Dynamo run with the same fault, at the same step, with the same machine
// state as the plain VM under the identical schedule — and never a panic.
func TestChaosTrapEquivalence(t *testing.T) {
	rates := chaos.Rates{TrapPerM: 2_000}
	for seed := int64(1); seed <= 8; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})

		ref := vm.New(p)
		ref.SetFaultHook(chaos.NewRandom(seed, rates).VMFault)
		refErr := ref.Run(0)

		for _, scheme := range []Scheme{SchemeNET, SchemePathProfile} {
			cfg := DefaultConfig(scheme, 5)
			cfg.Chaos = chaos.NewRandom(seed, rates)
			sys := New(p, cfg)
			res, err := sys.Run()
			if (refErr == nil) != (err == nil) {
				t.Fatalf("seed %d %v: dynamo err %v, plain VM err %v", seed, scheme, err, refErr)
			}
			if refErr != nil {
				if !strings.Contains(err.Error(), refErr.Error()) {
					t.Errorf("seed %d %v: fault %q, plain VM %q", seed, scheme, err, refErr)
				}
				if res.VMFault != refErr.Error() {
					t.Errorf("seed %d %v: Result.VMFault = %q, want %q", seed, scheme, res.VMFault, refErr.Error())
				}
			}
			m := sys.Machine()
			if m.Steps != ref.Steps {
				t.Errorf("seed %d %v: steps %d, plain VM %d", seed, scheme, m.Steps, ref.Steps)
			}
			if m.Reg != ref.Reg {
				t.Errorf("seed %d %v: final registers diverge from plain VM", seed, scheme)
			}
		}
	}
}

// TestChaosConcurrentSharded is the multi-tenant variant of the equivalence
// property, run under -race in CI: many chaos-seeded Systems execute in
// parallel, drawing their table capacities from one shared ShardSet and
// writing one shared telemetry registry, and every one of them must still
// produce exactly the machine state plain interpretation produces — no
// cross-tenant interference, no data races, no panics.
func TestChaosConcurrentSharded(t *testing.T) {
	const tenants = 8
	ss := NewShardSet(TableBudget{HeadCounters: 1 << 12, Paths: 1 << 14, Fragments: 512}, false)
	var wg sync.WaitGroup
	errs := make(chan error, tenants*3)
	for ten := 0; ten < tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", ten)
			for seed := int64(1); seed <= 3; seed++ {
				p := randprog.MustGenerate(int64(ten)*7+seed, randprog.Options{})
				ref := vm.New(p)
				if err := ref.Run(0); err != nil {
					errs <- fmt.Errorf("%s seed %d: plain run: %w", tenant, seed, err)
					return
				}
				cfg := DefaultConfig(SchemeNET, 5)
				ss.Alloc(tenant).Apply(&cfg)
				cfg.Chaos = chaos.NewRandom(seed, softRates)
				cfg.Telemetry = telemetry.Def.NewSink()
				sys := New(p, cfg)
				res, err := sys.Run()
				ss.Release(tenant, res)
				if err != nil {
					errs <- fmt.Errorf("%s seed %d: chaos run: %w", tenant, seed, err)
					return
				}
				m := sys.Machine()
				if res.Steps != ref.Steps || m.Reg != ref.Reg {
					errs <- fmt.Errorf("%s seed %d: state diverges from plain VM (steps %d vs %d)",
						tenant, seed, res.Steps, ref.Steps)
					return
				}
			}
		}(ten)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := ss.Tenants(); got != tenants {
		t.Errorf("ShardSet tracks %d tenants, want %d", got, tenants)
	}
}

// TestFragmentDemotion drives a fragment's abort count past the demotion
// threshold and checks it is evicted back to interpretation.
func TestFragmentDemotion(t *testing.T) {
	// Seed 2 gives a long run with real fragment residency; the dense rate
	// (mean gap 2 steps) aborts nearly every fragment entry.
	p := randprog.MustGenerate(2, randprog.Options{})
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.DemoteAfterAborts = 2
	cfg.Chaos = chaos.NewRandom(9, chaos.Rates{FragAbortPerM: 500_000})
	res, err := New(p, cfg).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FragAborts == 0 {
		t.Fatal("no fragment aborts fired; injector rate too low for this program")
	}
	if res.Demotions == 0 {
		t.Errorf("FragAborts = %d with DemoteAfterAborts = 2, but no demotions", res.FragAborts)
	}
}

// TestGovernorTrips starves the head and path tables so CLOCK eviction
// thrashes, and checks the resource governor bails out to native execution.
func TestGovernorTrips(t *testing.T) {
	// Seed 2 yields a long-enough run (~9k steps, ~20 path windows) for
	// the tiny tables below to thrash.
	p := randprog.MustGenerate(2, randprog.Options{})
	cfg := DefaultConfig(SchemeNET, 10)
	cfg.MaxHeadCounters = 2
	cfg.MaxPaths = 4
	cfg.FlushWindow = 20
	cfg.GovernorEvictLimit = 2
	cfg.BailoutAfter = -1 // isolate the governor from the paper's bail-out
	res, err := New(p, cfg).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.HeadEvictions+res.PathEvictions == 0 {
		t.Fatal("tiny tables produced no evictions; test program too small")
	}
	if !res.BailedOut || res.BailReason != "evict-thrash" {
		t.Errorf("BailedOut = %v, BailReason = %q; want governor trip (evict-thrash)", res.BailedOut, res.BailReason)
	}
}

func TestHeadTable(t *testing.T) {
	ht := newHeadTable(2)
	ht.add(10, 1)
	ht.add(20, 1)
	if ht.len() != 2 {
		t.Fatalf("len = %d, want 2", ht.len())
	}
	ht.add(30, 1) // forces a CLOCK eviction
	if ht.len() != 2 {
		t.Errorf("len after eviction = %d, want 2 (capacity held)", ht.len())
	}
	if ht.evictions != 1 {
		t.Errorf("evictions = %d, want 1", ht.evictions)
	}
	// Counters saturate, never wrap, and never go negative.
	if v := ht.add(30, headCounterMax*2); v != headCounterMax {
		t.Errorf("saturating add = %d, want %d", v, headCounterMax)
	}
	if v := ht.add(30, -headCounterMax*3); v != 0 {
		t.Errorf("negative add = %d, want 0", v)
	}
	ht.zero(30)
	if v := ht.add(30, 1); v != 1 {
		t.Errorf("counter after zero = %d, want 1", v)
	}
}

func TestBlacklistBackoff(t *testing.T) {
	b := newBlacklist(2, 3)
	if !b.allow(5) {
		t.Fatal("unknown head must be allowed")
	}
	b.abort(5)
	// First abort: backoff<<0 = 2 suppressed selections, then a retry.
	for i := 0; i < 2; i++ {
		if b.allow(5) {
			t.Fatalf("selection %d allowed during backoff", i)
		}
	}
	if !b.allow(5) {
		t.Fatal("head not allowed after backoff drained")
	}
	b.abort(5)
	// Second abort: backoff<<1 = 4 suppressed selections.
	for i := 0; i < 4; i++ {
		if b.allow(5) {
			t.Fatalf("selection %d allowed during doubled backoff", i)
		}
	}
	if !b.allow(5) {
		t.Fatal("head not allowed after doubled backoff drained")
	}
	b.abort(5)
	// Third abort reaches maxAborts: permanently blacklisted.
	for i := 0; i < 100; i++ {
		if b.allow(5) {
			t.Fatal("permanently blacklisted head was allowed")
		}
	}
	if b.permanent() != 1 {
		t.Errorf("permanent = %d, want 1", b.permanent())
	}
	if b.skips != 2+4+100 {
		t.Errorf("skips = %d, want %d", b.skips, 2+4+100)
	}
}
