// Tier-2 execution: background superblock compilation with atomic fragment
// promotion.
//
// The tier-1 fragment executor (runFragment) pays a per-micro-op handler
// call, a successor compare, and a budget check per guest step. Tier 2
// removes all three for the dominant path: when a fragment's completion
// counter crosses a threshold, the mutator snapshots the fragment chain
// reachable through completion links and enqueues it on a bounded compile
// queue served by background workers (internal/par's resident pool). A
// worker lowers the chain with vm.CompileSuperblock — guard hoisting,
// redundant-guard elimination, fused micro-ops — and publishes the result
// with a single atomic pointer store into the fragment. The mutator picks it
// up at its next dispatch of that fragment. The mutator never waits on the
// compiler: a full queue drops the promotion (retried after another
// threshold's worth of completions), and a refused compile publishes a
// tombstone so the fragment is never re-enqueued.
//
// Ownership discipline (what makes this -race clean): a Fragment's t2 field
// is the ONLY field a compile worker writes, and it is atomic; every other
// tier-2 field (t2Queued, t2Next, counters) is mutator-only. The job carries
// snapshot copies of the trace — the worker never reads live fragment state.
//
// Accounting: a completed superblock is architecturally identical to
// running its guest steps through tier 1, so the run's counters are settled
// arithmetically at the exit from prefix sums recorded at compile time
// (redirects = recorded successors that don't fall through; this matches
// OnBranch, which counts a redirect for every executed transfer with
// Target != PC+1). On-trace execution emits no branch events; a diverging
// op replays through the per-step engine and accounts itself. The flush,
// bail-out, and promotion heuristics run at fragment boundaries within the
// block — the tiered-JIT granularity trade: heuristics fire at block exits
// rather than per guest step.
package dynamo

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netpath/internal/dataflow"
	"netpath/internal/par"
	"netpath/internal/prog"
	"netpath/internal/telemetry"
	"netpath/internal/trace"
	"netpath/internal/vm"
)

// Tier-2 telemetry. Promotions and deopts are rare and bumped unsampled at
// their sites through the System's sink; the compiler-side instruments
// (compiled/rejects/queue) are written directly by the background workers,
// which are off the guest's dispatch path.
var (
	telT2Promotions = telemetry.NewCounter("dynamo_tier2_promotions_total",
		"fragments enqueued for background superblock compilation")
	telT2Compiled = telemetry.NewCounter("dynamo_tier2_compiled_total",
		"superblocks compiled and atomically published")
	telT2Rejects = telemetry.NewCounter("dynamo_tier2_compile_rejects_total",
		"compiles refused by the superblock compiler (fragment tombstoned)")
	telT2Deopts = telemetry.NewCounter("dynamo_tier2_deopts_total",
		"published superblocks torn down after entry-guard/short-run storms")
	telT2Dropped = telemetry.NewCounter("dynamo_tier2_queue_dropped_total",
		"promotions dropped on a full or closed compile queue")
	telT2QueueDepth = telemetry.NewGauge("dynamo_tier2_queue_depth",
		"tier-2 compile jobs queued and not yet picked up")
	telT2CompileUs = telemetry.NewHistogram("dynamo_tier2_compile_us",
		"background superblock compile latency, microseconds")
)

// t2Block is a published tier-2 compilation of a fragment chain. Immutable
// after publication. A tombstone (sb == nil) records a refused compile:
// dispatch skips it and promotion never re-enqueues the fragment.
type t2Block struct {
	sb     *vm.Superblock
	nGuest int32
	// stats is the compiler's report for this block (guards hoisted,
	// statically elided checks); folded into the run's counters by the
	// mutator at first pickup (creditT2Block).
	stats vm.SBStats
	// validated/rejected record the translation validator's verdict; a
	// rejected block is a tombstone (sb == nil) that also explains itself.
	validated bool
	rejected  bool
	// redirPfx[i] counts recorded successors among the first i guest steps
	// that do not fall through — the redirects OnBranch would have counted.
	redirPfx []int32
	// elimPfx[i] counts optimizer-eliminated guest steps among the first i,
	// for the cycle model's free-instruction accounting.
	elimPfx []int32
	// bounds maps guest indices back to the chained fragments for
	// completion/linking credit; bounds[i] covers [bounds[i-1].end, end).
	bounds []t2Bound
}

// t2Bound is one chained fragment's extent within a superblock.
type t2Bound struct {
	fr  *Fragment
	end int32 // one past this fragment's last guest step
}

// t2Job is a snapshot handed to a compile worker. The mutator builds it from
// live fragments; after enqueue the worker owns it exclusively.
type t2Job struct {
	fr      *Fragment // promotion target; receives the published block
	spec    []vm.SBStep
	elim    []bool
	bounds  []t2Bound
	prog    *prog.Program // immutable; safe to share with the worker
	progLen int
	// elide lowers the block against the program's dataflow facts;
	// validate runs the translation validator before publication. Both are
	// resolved on the worker (the analysis is memoized per program), so the
	// mutator never pays for either.
	elide    bool
	validate bool

	// Request-scoped tracing (nil = sampled out). The worker writes the
	// tier2-compile and tier2-promote spans into the submitting run's trace;
	// the arena is mutex-guarded, so a compile finishing after the response
	// still lands in the published tree.
	tr       *trace.Trace
	trParent int32
}

// Tier2Compiler is the shared background compile service: a bounded
// multi-tenant job queue drained round-robin by resident workers. One
// compiler is typically shared by many Systems (the server shares one across
// all tenants); it may also be nil everywhere, which disables tier 2.
type Tier2Compiler struct {
	mu     sync.Mutex
	queues map[string][]*t2Job
	order  []string // round-robin tenant order
	rr     int
	depth  int
	qcap   int
	closed bool

	// wake carries one token per queued job; capacity qcap bounds
	// outstanding tokens, so an admitted enqueue never blocks on the send.
	wake chan struct{}
	done chan struct{}
	pool *par.Resident

	compiled  atomic.Int64
	rejected  atomic.Int64
	vrejected atomic.Int64
	dropped   atomic.Int64
}

// NewTier2Compiler starts workers resident compile workers over a queue of
// at most queueCap jobs (defaults: 1 worker, 64 jobs). Close must be called
// to retire the workers.
func NewTier2Compiler(workers, queueCap int) *Tier2Compiler {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	c := &Tier2Compiler{
		queues: make(map[string][]*t2Job),
		qcap:   queueCap,
		wake:   make(chan struct{}, queueCap),
		done:   make(chan struct{}),
	}
	c.pool = par.StartResident(workers, c.next)
	return c
}

// enqueue admits a job to tenant's queue, or drops it (returning false) if
// the queue is at capacity or the compiler is closed. Called by the mutator
// on its promotion slow path: one short lock, one buffered send, no waiting.
func (c *Tier2Compiler) enqueue(tenant string, j *t2Job) bool {
	c.mu.Lock()
	if c.closed || c.depth >= c.qcap {
		c.mu.Unlock()
		c.dropped.Add(1)
		telT2Dropped.Inc()
		return false
	}
	if _, ok := c.queues[tenant]; !ok {
		c.order = append(c.order, tenant)
	}
	c.queues[tenant] = append(c.queues[tenant], j)
	c.depth++
	telT2QueueDepth.Set(int64(c.depth))
	c.mu.Unlock()
	c.wake <- struct{}{}
	return true
}

// dequeue pops the next job, rotating across tenants so one tenant's hot
// loop cannot monopolize the compile budget.
func (c *Tier2Compiler) dequeue() *t2Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range c.order {
		t := c.order[c.rr%len(c.order)]
		c.rr++
		q := c.queues[t]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		q[0] = nil
		c.queues[t] = q[1:]
		c.depth--
		telT2QueueDepth.Set(int64(c.depth))
		return j
	}
	return nil
}

// next is the resident pool's task source: block until a job token or
// shutdown.
func (c *Tier2Compiler) next() (func(), bool) {
	select {
	case <-c.done:
		return nil, false
	case <-c.wake:
		j := c.dequeue()
		if j == nil {
			return func() {}, true
		}
		return func() { c.compile(j) }, true
	}
}

// compile lowers one job and publishes the result into the fragment with a
// single atomic store — the only write a worker ever makes to a Fragment. A
// refused compile publishes a tombstone so the mutator never re-promotes.
func (c *Tier2Compiler) compile(j *t2Job) {
	start := time.Now()
	traceStart := j.tr.Now()
	var facts *dataflow.Facts
	if j.elide || j.validate {
		facts = programFacts(j.prog) // memoized; nil only on analysis failure
	}
	var sb *vm.Superblock
	var stats vm.SBStats
	var err error
	if j.elide && facts != nil {
		sb, stats, err = vm.CompileSuperblockFacts(j.spec, j.progLen, sbFactsFor(facts))
	} else {
		sb, stats, err = vm.CompileSuperblock(j.spec, j.progLen)
	}
	if err != nil {
		j.fr.t2.Store(&t2Block{})
		c.rejected.Add(1)
		telT2Rejects.Inc()
		j.tr.Add(trace.SpanTier2Compile, j.trParent, traceStart, j.tr.Now(), int32(j.fr.Start), -1)
		return
	}
	if j.validate {
		f := facts
		if f == nil {
			f = &dataflow.Facts{Prog: j.prog}
		}
		if verr := dataflow.ValidateSuperblock(f, j.spec, sb); verr != nil {
			// The compiler produced a block the validator cannot prove
			// equivalent to the recorded trace. Publish a self-describing
			// tombstone: the fragment keeps running tier 1 forever, and the
			// mutator counts the rejection at pickup.
			j.fr.t2.Store(&t2Block{validated: true, rejected: true})
			c.rejected.Add(1)
			c.vrejected.Add(1)
			telT2Rejects.Inc()
			telT2ValidateRejects.Inc()
			j.tr.Add(trace.SpanTier2Compile, j.trParent, traceStart, j.tr.Now(), int32(j.fr.Start), -1)
			return
		}
	}
	n := len(j.spec)
	blk := &t2Block{
		sb:        sb,
		nGuest:    int32(n),
		stats:     stats,
		validated: j.validate,
		redirPfx:  make([]int32, n+1),
		elimPfx:   make([]int32, n+1),
		bounds:    j.bounds,
	}
	var rp, ep int32
	for i := 0; i < n; i++ {
		blk.redirPfx[i] = rp
		blk.elimPfx[i] = ep
		if j.spec[i].Next != j.spec[i].PC+1 {
			rp++
		}
		if j.elim[i] {
			ep++
		}
	}
	blk.redirPfx[n] = rp
	blk.elimPfx[n] = ep
	j.fr.t2.Store(blk)
	c.compiled.Add(1)
	telT2Compiled.Inc()
	telT2CompileUs.Observe(time.Since(start).Microseconds())
	if j.tr != nil {
		cs := j.tr.Add(trace.SpanTier2Compile, j.trParent, traceStart, j.tr.Now(), int32(j.fr.Start), int64(n))
		now := j.tr.Now()
		j.tr.Add(trace.SpanPromote, cs, now, now, int32(j.fr.Start), int64(n))
	}
}

// Close retires the workers. Jobs still queued are abandoned; their
// fragments simply keep running tier 1.
func (c *Tier2Compiler) Close() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if already {
		return
	}
	close(c.done)
	c.pool.Wait()
}

// Compiled returns the number of superblocks compiled and published.
func (c *Tier2Compiler) Compiled() int64 { return c.compiled.Load() }

// Rejected returns the number of compiles refused (tombstoned fragments).
func (c *Tier2Compiler) Rejected() int64 { return c.rejected.Load() }

// ValidatorRejected returns how many of the rejections came from the
// translation validator (ValidateEmits) rather than compile refusals. Unlike
// Result.T2ValidatorRejects, which is credited when the mutator next
// dispatches the fragment, this count is final as soon as the compile queue
// drains — CI gates read it after the run.
func (c *Tier2Compiler) ValidatorRejected() int64 { return c.vrejected.Load() }

// Dropped returns the number of promotions dropped on a full queue.
func (c *Tier2Compiler) Dropped() int64 { return c.dropped.Load() }

// Depth returns the current queue depth.
func (c *Tier2Compiler) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.depth
}

// maybePromote enqueues fr for background compilation once its completion
// count crosses the threshold. Mutator-only; the only allocation-bearing
// path of tier 2 on the mutator (the snapshot), entered at most once per
// threshold crossing per fragment.
func (s *System) maybePromote(fr *Fragment) {
	if fr.t2Queued || fr.t2.Load() != nil {
		return
	}
	if fr.t2Next == 0 {
		fr.t2Next = s.t2Threshold
	}
	if fr.Completions < fr.t2Next {
		return
	}
	if s.t2MinFlow > 1 && fr.Completions*s.t2MinFlow < s.res.PathEvents {
		// Past the threshold but not dominant: the fragment carries less
		// than 1/Tier2MinFlow of the run's path flow. Lukewarm fragments
		// never repay their compile — on a single-core host the compile
		// worker time-slices against the guest, so a wasted compile is
		// stolen mutator time. Keep checking: dominance can arrive later.
		return
	}
	if s.cache[fr.Start] != fr {
		return // flushed or superseded since entry; let it die
	}
	job := s.snapshotChain(fr)
	if job != nil {
		job.tr, job.trParent = s.tr, s.trParent
	}
	if job == nil {
		// Not worth compiling (too short, too long, or malformed): tombstone
		// so the threshold check never fires again for this fragment.
		fr.t2.Store(&t2Block{})
		return
	}
	if !s.t2c.enqueue(s.cfg.Tier2Tenant, job) {
		// Queue full: back off one threshold's worth of completions.
		fr.t2Next = fr.Completions + s.t2Threshold
		return
	}
	fr.t2Queued = true
	s.res.T2Promotions++
	if s.tel != nil {
		s.tel.Inc(telT2Promotions)
	}
	if s.tr != nil {
		now := s.tr.Now()
		s.tr.Add(trace.SpanTier2Enqueue, s.trParent, now, now, int32(fr.Start), fr.Completions)
	}
	// Donate the rest of this quantum to the compile worker. The enqueue
	// above never blocks, but on GOMAXPROCS=1 the worker otherwise waits
	// for the next involuntary preemption (~10ms) — most of a short run —
	// before it can publish. Promotions are rare (dominance-gated), so the
	// yield costs one scheduler round-trip and buys immediate coverage.
	runtime.Gosched()
}

// t2UnrollCap bounds a superblock's guest length when the completion chain
// revisits fragments (a loop): enough iterations to amortize the per-entry
// fixed costs (entry guards, accounting, the cache-map hop back to the head)
// without making early exits from long blocks dominate.
const t2UnrollCap = 256

// snapshotChain copies fr and the fragments reachable through completion
// links into a compile job: the superblock spans the dominant path across
// linked fragments, which is where guard hoisting and cross-fragment
// redundancy elimination pay. A chain that closes a cycle keeps going —
// unrolling the loop into the block — so one entry covers many iterations
// and the per-entry overhead amortizes; t2UnrollCap bounds the walk.
// Returns nil if the chain is not worth a superblock.
func (s *System) snapshotChain(fr *Fragment) *t2Job {
	var (
		spec   []vm.SBStep
		elim   []bool
		bounds []t2Bound
	)
	cap := s.t2MaxGuest
	if cap > t2UnrollCap {
		cap = t2UnrollCap
	}
	cur := fr
	for {
		if len(cur.Steps) == 0 {
			break
		}
		if len(spec)+len(cur.Steps) > cap {
			break
		}
		for i := range cur.Steps {
			st := &cur.Steps[i]
			spec = append(spec, vm.SBStep{In: st.In, PC: int32(st.PC), Next: int32(st.Next)})
			elim = append(elim, st.Eliminated)
		}
		bounds = append(bounds, t2Bound{fr: cur, end: int32(len(spec))})
		if s.cfg.DisableLinking {
			break
		}
		next := s.cache[cur.Steps[len(cur.Steps)-1].Next]
		if next == nil {
			break
		}
		cur = next
	}
	if len(spec) < 2 {
		return nil
	}
	return &t2Job{
		fr: fr, spec: spec, elim: elim, bounds: bounds,
		prog: s.m.Prog, progLen: s.m.Prog.Len(),
		elide: s.cfg.Tier2Elide, validate: s.cfg.ValidateEmits,
	}
}

// runTier2 executes fr's published superblock. Returns ran = false when the
// block must not run this dispatch (step budget too tight for the whole
// block, or entry guards fail) — the caller falls through to the precise
// tier-1 loop. The error, if any, is the machine fault that ended the run.
//
//netpathvet:dispatch
func (s *System) runTier2(fr *Fragment, blk *t2Block) (bool, error) {
	m := s.m
	if limit := s.cfg.MaxSteps; limit > 0 && m.Steps+int64(blk.nGuest) > limit {
		// Not enough budget for a full block: tier 1 stops on the exact step.
		return false, nil
	}
	s.res.T2GuardChecks += int64(blk.sb.NumGuards())
	if !blk.sb.GuardsPass(m) {
		fr.t2Enters++
		s.res.T2GuardFails++
		s.t2Shortfall(fr)
		return false, nil
	}
	fr.t2Enters++
	s.res.T2Enters++
	x := m.RunSuperblock(blk.sb)
	// In-body checks attributed to the guest steps that completed on-trace
	// (the check that stopped an early exit is charged to the diverging
	// op's generic replay, not the block).
	s.res.T2GuardChecks += blk.sb.BodyChecksUpTo(x.Guest)
	if x.Completed {
		s.t2Account(blk, int64(blk.nGuest), int64(blk.nGuest))
		s.t2Boundaries(blk, len(blk.bounds), x.NextPC, true)
		return true, nil
	}

	g := int64(x.Guest)
	bi := s.t2BoundIndex(blk, g)
	if bi == 0 && g*2 < int64(blk.bounds[0].end) {
		// Unproductive entry: the run died in the first half of the HEAD
		// fragment. Divergence in a later bound is normal side-exit traffic
		// — the head already did a full fragment's work — and must not
		// count against a long chain, or chained blocks deopt themselves.
		s.t2Shortfall(fr)
	}
	if x.Err != nil {
		// Fault at guest index g: the trap step is not cycle-accounted,
		// matching the per-step engines. Bounds fully behind the fault still
		// completed their paths (bi counts exactly those).
		s.t2Account(blk, g, g)
		s.t2Boundaries(blk, bi, -1, false)
		return true, x.Err
	}
	// Divergence: the op at guest index g executed off-trace (event and step
	// already live-accounted by its ExecAt replay); on-trace redirects cover
	// only the prefix. Divergence at a fragment's last step is a completion
	// of that fragment, matching tier 1's boundary-first check.
	s.t2Account(blk, g+1, g)
	b := &blk.bounds[bi]
	if g == int64(b.end)-1 {
		s.t2Boundaries(blk, bi+1, x.NextPC, true)
	} else {
		s.t2Boundaries(blk, bi, -1, false)
		if s.mode == modeFragment {
			b.fr.EarlyExits++
			s.frag = b.fr
			s.fpos = 0
			s.leaveFragment(x.NextPC, false)
		}
	}
	return true, nil
}

// t2Account settles the arithmetic counters for nInstr executed guest steps,
// of which the first nTrace ran on-trace (redirects beyond nTrace were
// live-counted by the diverging op's replay).
func (s *System) t2Account(blk *t2Block, nInstr, nTrace int64) {
	if nInstr <= 0 {
		return
	}
	elim := int64(blk.elimPfx[nInstr])
	s.res.FragInstrs += nInstr
	s.res.ElimInstrs += elim
	s.res.FragCycles += float64(nInstr-elim) * s.cfg.Costs.FragInstr
	s.res.Redirects += int64(blk.redirPfx[nTrace])
	s.res.T2Instrs += nInstr
}

// t2BoundIndex returns the index of the bound containing guest step g.
func (s *System) t2BoundIndex(blk *t2Block, g int64) int {
	for i := range blk.bounds {
		if g < int64(blk.bounds[i].end) {
			return i
		}
	}
	return len(blk.bounds) - 1
}

// t2Boundaries credits the first n fully-completed chained fragments —
// completion, path event, linked transfer between consecutive bounds — and,
// when exit is true, performs the block's final completed-path exit to
// exitPC. The heuristics run per boundary exactly as tier 1 runs them per
// fragment completion; a bail-out mid-walk stops further credit, like tier
// 1 going native mid-chain.
func (s *System) t2Boundaries(blk *t2Block, n int, exitPC int, exit bool) {
	for i := 0; i < n; i++ {
		if s.mode != modeFragment {
			return
		}
		b := &blk.bounds[i]
		if i > 0 {
			s.res.TransCycles += s.cfg.Costs.LinkedJump
			s.res.LinkedJumps++
			b.fr.Enters++
			if s.tel != nil && s.res.LinkedJumps&telSampleMask == 0 {
				s.tel.Emit(telemetry.EvFragLink, s.m.Steps, b.fr.Start, 0)
			}
		}
		b.fr.Completions++
		s.res.PathEvents++
		s.res.CacheEvents++
		s.onPathEvent()
		s.maybePromote(b.fr)
	}
	if exit && s.mode == modeFragment {
		last := &blk.bounds[n-1]
		s.frag = last.fr
		s.fpos = 0
		s.leaveFragment(exitPC, true)
	}
}

// t2Shortfall records an unproductive tier-2 entry (entry guards failed, or
// the block diverged in its first half). A fragment whose published block
// keeps failing is deoptimized: the block is torn down and the promotion
// threshold backs off exponentially, so a phase change flips the fragment
// back to tier 1 quickly instead of burning guard checks forever.
func (s *System) t2Shortfall(fr *Fragment) {
	fr.t2Short++
	if fr.t2Enters >= 16 && fr.t2Short*2 > fr.t2Enters {
		s.t2Deopt(fr)
	}
}

// t2Deopt tears down fr's published superblock and re-arms promotion with
// exponential backoff. Mutator-only: the worker never writes t2 after
// publication, so a plain atomic store cannot race with it.
func (s *System) t2Deopt(fr *Fragment) {
	fr.t2.Store(nil)
	fr.t2Queued = false
	fr.t2Credited = false
	fr.t2Deopts++
	fr.t2Enters = 0
	fr.t2Short = 0
	shift := fr.t2Deopts
	if shift > 10 {
		shift = 10
	}
	fr.t2Next = fr.Completions + s.t2Threshold<<shift
	s.res.T2Deopts++
	if s.tel != nil {
		s.tel.Inc(telT2Deopts)
		s.tel.Emit(telemetry.EvFragDemote, s.m.Steps, fr.Start, int64(fr.t2Deopts))
	}
	if s.tr != nil {
		now := s.tr.Now()
		s.tr.Add(trace.SpanTier2Deopt, s.trParent, now, now, int32(fr.Start), int64(fr.t2Deopts))
	}
}
