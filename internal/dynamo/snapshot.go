// Persistent profile snapshots: System.Snapshot serializes the profiling
// state a run has paid for — NET head counters, selected traces with their
// completion flow and tier-2 decisions, path-profile counters, and the
// recording blacklist — and System.Restore replays that state into a fresh
// System before the first guest instruction, so a warmed process starts in
// the fragment cache instead of re-learning the hot set through the
// interpreter. The wire format, merge algebra, and capacity rules live in
// internal/snapshot; this file is the bridge to live dynamo state.
package dynamo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/snapshot"
	"netpath/internal/telemetry"
)

var (
	telSnapRestores = telemetry.NewCounter("dynamo_snapshot_restores_total",
		"successful warm-starts from a profile snapshot")
	telSnapRestoredFrags = telemetry.NewCounter("dynamo_snapshot_restored_fragments_total",
		"fragments pre-installed from persisted traces at restore")
	telSnapRestoredHeads = telemetry.NewCounter("dynamo_snapshot_restored_heads_total",
		"head counters pre-seeded from a profile snapshot")
	telSnapRestoredT2 = telemetry.NewCounter("dynamo_snapshot_restored_tier2_total",
		"persisted tier-2 promotions re-enqueued at restore")
	telSnapCaptures = telemetry.NewCounter("dynamo_snapshot_captures_total",
		"profile snapshots captured from live systems")
)

// Restore errors. RunContext is unaffected by a failed Restore: the System
// simply starts cold.
var (
	// ErrRestoreLive: Restore was called after the run started. Warm-start
	// state must be seeded before the first guest instruction — retrofitting
	// counters into a live run would corrupt the heuristics' arithmetic.
	ErrRestoreLive = errors.New("dynamo: Restore after run started")
	// ErrFingerprintMismatch: the snapshot was collected from a different
	// program image than the one this System is bound to.
	ErrFingerprintMismatch = errors.New("dynamo: snapshot fingerprint does not match program")
	// ErrSchemeMismatch: the snapshot was collected under a different
	// prediction scheme; its counters are not comparable.
	ErrSchemeMismatch = errors.New("dynamo: snapshot scheme does not match config")
)

// SnapshotLimits derives the import budget from this System's table
// configuration: a restored or merged-in snapshot is clamped to these before
// any of it touches the CLOCK-bounded tables, so a fleet-sized profile can
// never outsize a small shard.
func (s *System) SnapshotLimits() snapshot.Limits {
	lim := snapshot.DefaultLimits()
	if s.cfg.MaxHeadCounters > 0 {
		lim.MaxHeads = s.cfg.MaxHeadCounters
	}
	if s.cfg.MaxFragments > 0 {
		lim.MaxTraces = s.cfg.MaxFragments
	}
	if s.cfg.MaxPaths > 0 {
		lim.MaxPaths = s.cfg.MaxPaths
	}
	return lim
}

// Snapshot captures the System's current profiling state as a persistent
// snapshot (tenant scopes it for multi-tenant stores; "" for the CLI). It
// can be taken at any point — mid-run from a Probe, or after Run returns —
// and never perturbs the run. The result is canonical and self-contained:
// instruction words are re-derived from the program at restore, so the
// snapshot carries only addresses and counters.
func (s *System) Snapshot(tenant string) *snapshot.Snapshot {
	snap := &snapshot.Snapshot{
		Tenant:         tenant,
		Program:        s.m.Prog.Name,
		Fingerprint:    s.m.Prog.Fingerprint(),
		Scheme:         s.cfg.Scheme.String(),
		Tau:            s.cfg.Tau,
		Flow:           s.res.PathEvents,
		Steps:          s.m.Steps,
		CapturedUnixNS: time.Now().UnixNano(),
	}
	if s.tr != nil {
		snap.TraceID = s.tr.TraceID().String()
	}
	for i, k := range s.heads.keys {
		if v := s.heads.vals[i]; v > 0 {
			snap.Heads = append(snap.Heads, snapshot.HeadCount{Addr: k, Count: v})
		}
	}
	for start, fr := range s.cache {
		if len(fr.Steps) == 0 {
			continue
		}
		t := snapshot.Trace{Start: start, Flow: fr.Completions, Tier2: s.t2Decided(fr)}
		t.Steps = make([]snapshot.Step, len(fr.Steps))
		for i, st := range fr.Steps {
			t.Steps[i] = snapshot.Step{PC: st.PC, Next: st.Next}
		}
		snap.Traces = append(snap.Traces, t)
	}
	if s.cfg.Scheme == SchemePathProfile {
		for id, v := range s.pathCounts {
			if v <= 0 {
				continue
			}
			info := s.interner.Info(path.ID(id))
			snap.Paths = append(snap.Paths, snapshot.PathCount{
				Key:      []byte(info.Key),
				Start:    info.Start,
				Branches: info.Branches,
				Count:    v,
			})
		}
	}
	for head, e := range s.black.entries {
		if e.aborts > 0 {
			snap.Blacklist = append(snap.Blacklist, snapshot.BlackEntry{Addr: head, Aborts: e.aborts})
		}
	}
	snap.Canonicalize()
	if s.tel != nil {
		s.tel.Inc(telSnapCaptures)
	}
	return snap
}

// t2Decided reports whether the run decided fr belongs in tier 2: either it
// is queued for compilation or a real (non-tombstone) superblock is
// published. Rejected shapes (tombstones) are not persisted as decisions.
func (s *System) t2Decided(fr *Fragment) bool {
	if fr.t2Queued {
		return true
	}
	blk := fr.t2.Load()
	return blk != nil && blk.sb != nil
}

// Restore warm-starts the System from a persisted profile, before the first
// guest instruction: it seeds the blacklist, pre-seeds head counters,
// re-installs persisted traces as compiled fragments through the ordinary
// emit path (charging the same one-time translation cost prebuildStatic
// charges), re-arms path-profile counters, and re-enqueues persisted tier-2
// decisions on the background compiler — so the first execution of a hot
// address enters the cache instead of the interpreter.
//
// The snapshot must match this System's program fingerprint and scheme, and
// is validated and clamped against SnapshotLimits first; a failed Restore
// leaves the System exactly as cold as it was. Addresses are bounds-checked
// against the (already verifier-gated) program, so a forged snapshot can
// at worst install traces the run would abandon, never break memory safety.
func (s *System) Restore(snap *snapshot.Snapshot) error {
	if s.verifyErr != nil {
		return fmt.Errorf("dynamo: refusing to restore into unverified program: %w", s.verifyErr)
	}
	if s.m.Steps != 0 || s.res.PathEvents != 0 {
		return ErrRestoreLive
	}
	if snap.Fingerprint != s.m.Prog.Fingerprint() {
		return fmt.Errorf("%w: snapshot %#x, program %q %#x",
			ErrFingerprintMismatch, snap.Fingerprint, s.m.Prog.Name, s.m.Prog.Fingerprint())
	}
	if snap.Scheme != s.cfg.Scheme.String() {
		return fmt.Errorf("%w: snapshot %q, config %q", ErrSchemeMismatch, snap.Scheme, s.cfg.Scheme)
	}
	lim := s.SnapshotLimits()
	if err := snap.Validate(snapshot.Limits{MaxBytes: lim.MaxBytes}); err != nil {
		return err
	}
	// Clamp a copy to this System's table budget: the caller's snapshot may
	// be fleet-sized; ours must fit the shard.
	cl := *snap
	cl.Heads = append([]snapshot.HeadCount(nil), snap.Heads...)
	cl.Traces = append([]snapshot.Trace(nil), snap.Traces...)
	cl.Paths = append([]snapshot.PathCount(nil), snap.Paths...)
	cl.Blacklist = append([]snapshot.BlackEntry(nil), snap.Blacklist...)
	cl.Clamp(lim)

	// Blacklist first: a head the fleet burned out must not be re-installed
	// or re-counted by the seeding below.
	for _, e := range cl.Blacklist {
		s.black.seed(e.Addr, e.Aborts)
		s.res.RestoredBlacklist++
	}

	// Head counters, heaviest first, so if the table is somehow tighter than
	// the clamp (unbounded-config edge cases) the hot heads win the slots.
	heads := append([]snapshot.HeadCount(nil), cl.Heads...)
	sort.Slice(heads, func(i, j int) bool {
		if heads[i].Count != heads[j].Count {
			return heads[i].Count > heads[j].Count
		}
		return heads[i].Addr < heads[j].Addr
	})
	nInstr := s.m.Prog.Len()
	for _, h := range heads {
		if h.Addr >= nInstr || s.black.barred(h.Addr) {
			continue
		}
		s.heads.add(h.Addr, h.Count)
		s.res.RestoredHeads++
	}

	// Traces, heaviest flow first: if the fragment budget is tight the
	// dominant paths get the cache slots, and installation stops before the
	// cache would flush (a warm-start must never begin life by flushing what
	// it just installed).
	traces := append([]snapshot.Trace(nil), cl.Traces...)
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].Flow != traces[j].Flow {
			return traces[i].Flow > traces[j].Flow
		}
		return traces[i].Start < traces[j].Start
	})
	for _, t := range traces {
		if len(s.cache) >= s.cfg.MaxFragments {
			break
		}
		if t.Start >= nInstr || s.cache[t.Start] != nil || s.black.barred(t.Start) {
			continue
		}
		steps := make([]TraceStep, 0, len(t.Steps))
		ok := true
		for _, st := range t.Steps {
			if st.PC >= nInstr || st.Next > nInstr {
				ok = false
				break
			}
			in := s.m.Prog.Instrs[st.PC]
			if in.Op == isa.Halt {
				break
			}
			steps = append(steps, TraceStep{PC: st.PC, In: in, Next: st.Next})
		}
		if !ok || len(steps) == 0 {
			continue
		}
		s.emit(t.Start, steps)
		fr := s.cache[t.Start]
		if fr == nil {
			continue
		}
		fr.Completions = t.Flow
		s.res.RestoredFragments++
	}

	// Persisted tier-2 decisions: re-enqueue on the background compiler now,
	// before the first guest instruction, so compilation overlaps the run's
	// cold start. With zero path events the flow-dominance gate passes
	// trivially — the collecting run already proved dominance.
	if s.t2c != nil {
		for _, t := range traces {
			if !t.Tier2 {
				continue
			}
			if fr := s.cache[t.Start]; fr != nil {
				s.maybePromote(fr)
				if fr.t2Queued {
					s.res.RestoredT2++
				}
			}
		}
	}

	if s.cfg.Scheme == SchemePathProfile {
		for _, p := range cl.Paths {
			if p.Start >= nInstr {
				continue
			}
			id := s.interner.Intern(string(p.Key), p.Start, p.Branches)
			for int(id) >= len(s.pathCounts) {
				s.pathCounts = append(s.pathCounts, 0)
			}
			if p.Count > s.pathCounts[id] {
				s.pathCounts[id] = p.Count
			}
			if s.pathCounts[id] >= s.cfg.Tau {
				s.armed[id] = true
			}
			s.res.RestoredPaths++
		}
	}

	if s.tel != nil {
		s.tel.Inc(telSnapRestores)
		s.tel.Add(telSnapRestoredFrags, int64(s.res.RestoredFragments))
		s.tel.Add(telSnapRestoredHeads, int64(s.res.RestoredHeads))
		s.tel.Add(telSnapRestoredT2, int64(s.res.RestoredT2))
	}
	return nil
}

// LiveStats reports mid-run execution progress for Probe callbacks: guest
// steps executed, guest instructions run from the fragment cache (tier 1
// and tier 2 both), and total guest instructions executed so far.
func (s *System) LiveStats() (steps, fragInstrs, totalInstrs int64) {
	total := s.res.InterpInstrs + s.res.FragInstrs + s.res.NativeInstrs
	return s.m.Steps, s.res.FragInstrs, total
}

// LiveEvents reports mid-run path-event progress for Probe callbacks: path
// events observed so far and how many of them completed inside the fragment
// cache (tier 1 and tier 2 both). Their windowed ratio is the cache's hit
// rate on hot-path opportunities — the coverage a warm-start exists to
// raise.
func (s *System) LiveEvents() (pathEvents, cacheEvents int64) {
	return s.res.PathEvents, s.res.CacheEvents
}
