// Sharded table budgets for multi-tenant residency. The CLOCK-capped
// head-counter and path tables and the flush-bounded fragment cache are
// per-System, so tenants cannot corrupt each other's state by construction —
// but they can starve each other of memory. A ShardSet carves one global
// table budget into per-tenant shards: every tenant's Systems run under
// capacities that shrink as more tenants become active, so the sum of all
// resident table space stays under the budget no matter how many tenants
// pile on. Eviction counts reported back after each run become the
// eviction-pressure signal the server's degradation ladder (and operators,
// via telemetry) watch: sustained pressure means the per-tenant shards are
// too small for the working sets, i.e. the service is memory-overloaded
// even if CPU is not.
package dynamo

import (
	"sync"

	"netpath/internal/telemetry"
)

// TableBudget is the global capacity split across tenants: head-counter
// slots, path-interner slots, and fragment-cache entries.
type TableBudget struct {
	HeadCounters int
	Paths        int
	Fragments    int
}

// DefaultTableBudget matches four tenants at DefaultConfig capacities.
func DefaultTableBudget() TableBudget {
	return TableBudget{HeadCounters: 4 << 16, Paths: 4 << 18, Fragments: 4 * 8192}
}

// Shard floors: a tenant's shard never shrinks below these, so a flood of
// tenants degrades everyone gradually instead of zeroing the tables (the
// budget is then a soft bound, which the pressure telemetry makes visible).
const (
	minShardHeads = 64
	minShardPaths = 256
	minShardFrags = 16
)

// ShardAlloc is one tenant's current table capacities, plus its handle on
// the shared tier-2 compile service (nil when tier 2 is disabled).
type ShardAlloc struct {
	MaxHeadCounters int
	MaxPaths        int
	MaxFragments    int

	// Tier2 is the set-wide background compiler; Tenant keys the tenant's
	// jobs in its round-robin queue, so one tenant's hot loop cannot
	// monopolize the compile budget.
	Tier2  *Tier2Compiler
	Tenant string
}

// Apply installs the shard capacities into a run configuration.
func (a ShardAlloc) Apply(cfg *Config) {
	cfg.MaxHeadCounters = a.MaxHeadCounters
	cfg.MaxPaths = a.MaxPaths
	cfg.MaxFragments = a.MaxFragments
	cfg.Tier2 = a.Tier2
	cfg.Tier2Tenant = a.Tenant
}

// shardStats accumulates one tenant's pressure history.
type shardStats struct {
	runs      int64
	evictions int64
}

// ShardSet divides a TableBudget among active tenants. Shared mode hands
// every tenant the full budget (tables are still per-System, so this is the
// "shared" configuration of the per-tenant-vs-shared tradeoff: maximum
// capacity per guest, no cross-tenant isolation of memory pressure).
type ShardSet struct {
	mu      sync.Mutex
	budget  TableBudget
	shared  bool
	tenants map[string]*shardStats
	tier2   *Tier2Compiler

	runs      int64
	evictions int64
}

// Shard-pressure telemetry (see internal/telemetry).
var (
	telTableEvictions = telemetry.NewCounter("dynamo_table_evictions_total",
		"CLOCK evictions across all tenants' head/path table shards")
	telTableTenants = telemetry.NewGauge("dynamo_table_tenants",
		"tenants currently holding a table shard")
	telTablePressure = telemetry.NewGauge("dynamo_table_pressure_milli",
		"evictions per run x1000 across all shards (lifetime)")
)

// NewShardSet creates a shard set over budget. A zero-valued field of
// budget falls back to the default. shared disables division: every tenant
// sees the full budget.
func NewShardSet(budget TableBudget, shared bool) *ShardSet {
	def := DefaultTableBudget()
	if budget.HeadCounters <= 0 {
		budget.HeadCounters = def.HeadCounters
	}
	if budget.Paths <= 0 {
		budget.Paths = def.Paths
	}
	if budget.Fragments <= 0 {
		budget.Fragments = def.Fragments
	}
	return &ShardSet{budget: budget, shared: shared, tenants: make(map[string]*shardStats)}
}

// Alloc returns tenant's current shard capacities, registering the tenant
// if it is new. Capacities are the budget divided by the active tenant
// count (floored; see the minShard constants), so an Alloc can shrink what
// an earlier tenant got — by design: allocations are read per run, so the
// fleet converges to the fair split within one run per tenant.
func (ss *ShardSet) Alloc(tenant string) ShardAlloc {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, ok := ss.tenants[tenant]; !ok {
		ss.tenants[tenant] = &shardStats{}
		telTableTenants.Set(int64(len(ss.tenants)))
	}
	n := len(ss.tenants)
	if ss.shared || n < 1 {
		n = 1
	}
	return ShardAlloc{
		MaxHeadCounters: maxInt(minShardHeads, ss.budget.HeadCounters/n),
		MaxPaths:        maxInt(minShardPaths, ss.budget.Paths/n),
		MaxFragments:    maxInt(minShardFrags, ss.budget.Fragments/n),
		Tier2:           ss.tier2,
		Tenant:          tenant,
	}
}

// SetTier2 attaches a background superblock compiler to the set: every
// subsequent Alloc hands it out with the tenant's key, so all tenants share
// the compile workers under round-robin fairness. Call before serving; the
// caller owns the compiler's lifecycle (Close after the Systems drain).
func (ss *ShardSet) SetTier2(c *Tier2Compiler) {
	ss.mu.Lock()
	ss.tier2 = c
	ss.mu.Unlock()
}

// Release reports a finished run's table behaviour back to the set: CLOCK
// evictions from the run feed the pressure signal.
func (ss *ShardSet) Release(tenant string, r Result) {
	ev := r.HeadEvictions + r.PathEvictions
	ss.mu.Lock()
	if st, ok := ss.tenants[tenant]; ok {
		st.runs++
		st.evictions += ev
	}
	ss.runs++
	ss.evictions += ev
	runs, evs := ss.runs, ss.evictions
	ss.mu.Unlock()
	if ev > 0 {
		telTableEvictions.Add(ev)
	}
	if runs > 0 {
		telTablePressure.Set(evs * 1000 / runs)
	}
}

// Retire forgets an idle tenant, returning its shard capacity to the pool.
func (ss *ShardSet) Retire(tenant string) {
	ss.mu.Lock()
	delete(ss.tenants, tenant)
	telTableTenants.Set(int64(len(ss.tenants)))
	ss.mu.Unlock()
}

// Tenants returns the number of tenants holding shards.
func (ss *ShardSet) Tenants() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.tenants)
}

// Evictions returns the lifetime eviction count across all shards.
func (ss *ShardSet) Evictions() int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.evictions
}

// PressureMilli returns lifetime evictions per run, x1000 (0 when no run
// has completed). Sustained growth means the per-tenant shards no longer
// hold the working sets — the memory-overload input to degradation.
func (ss *ShardSet) PressureMilli() int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.runs == 0 {
		return 0
	}
	return ss.evictions * 1000 / ss.runs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
