package dynamo

import (
	"errors"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// buildMaskedHotLoop is a hot loop whose memory accesses go through a
// masked cursor: every load and store is statically provably in-bounds, so
// tier-2 elision has something to prove and drop.
func buildMaskedHotLoop(t *testing.T, n int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("maskedhot")
	b.SetMemSize(256)
	f := b.Func("main")
	f.MovI(0, 0)
	f.Label("loop")
	f.AndI(2, 0, 255)
	f.Load(3, 2, 0)
	f.AddI(3, 3, 1)
	f.Store(3, 2, 0)
	f.AddI(0, 0, 7)
	f.BrI(isa.Lt, 0, n, "loop")
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// TestValidateEmitsCleanRun: with the validator on, an ordinary run checks
// every emitted fragment, rejects none, and finishes architecturally
// identical to plain interpretation.
func TestValidateEmitsCleanRun(t *testing.T) {
	p := buildMaskedHotLoop(t, 50_000)
	ref, refErr := runPlain(t, p)
	if refErr != nil {
		t.Fatalf("plain run: %v", refErr)
	}
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.ValidateEmits = true
	sys := New(p, cfg)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ValidatorChecked == 0 {
		t.Error("ValidatorChecked = 0: validator never ran")
	}
	if res.ValidatorRejects != 0 {
		t.Errorf("ValidatorRejects = %d on an honest optimizer", res.ValidatorRejects)
	}
	checkParity(t, "validated run", sys, ref)
}

// TestValidateEmitRejectsCorruptFragment: a fragment carrying an elimination
// claim the optimizer's rules cannot justify — the seeded-miscompile case —
// must be refused installation and counted.
func TestValidateEmitRejectsCorruptFragment(t *testing.T) {
	p := buildMaskedHotLoop(t, 100)
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.ValidateEmits = true
	sys := New(p, cfg)

	// pc1 is the AndI on a non-constant cursor: claiming it const-folded is
	// a lie no replay of the rules can re-derive.
	fr := &Fragment{Start: 1, Steps: []TraceStep{
		{PC: 1, In: p.Instrs[1], Next: 2, Eliminated: true, Why: "const-folded"},
		{PC: 2, In: p.Instrs[2], Next: 3},
	}}
	if sys.validateEmit(fr) {
		t.Fatal("validator accepted a fabricated const-folded claim")
	}
	if sys.res.ValidatorRejects != 1 || sys.res.ValidatorChecked != 1 {
		t.Errorf("counters: checked=%d rejects=%d, want 1/1",
			sys.res.ValidatorChecked, sys.res.ValidatorRejects)
	}

	// The honest version of the same fragment passes.
	ok := &Fragment{Start: 1, Steps: []TraceStep{
		{PC: 1, In: p.Instrs[1], Next: 2},
		{PC: 2, In: p.Instrs[2], Next: 3},
	}}
	if !sys.validateEmit(ok) {
		t.Fatal("validator rejected an honest fragment")
	}
}

// runTier2Deterministic does the warm-up / wait / continuation dance so the
// continuation run dispatches a published superblock deterministically.
func runTier2Deterministic(t *testing.T, p *prog.Program, elide bool) (Result, *System) {
	t.Helper()
	tc := NewTier2Compiler(1, 16)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 1
	cfg.Tier2Elide = elide
	cfg.ValidateEmits = true
	cfg.MaxSteps = 2000
	sys := New(p, cfg)
	if _, err := sys.Run(); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("warm-up run: err = %v, want step limit", err)
	}
	waitTier2(t, tc, 1)
	if tc.Compiled() == 0 {
		t.Fatalf("nothing compiled (rejected=%d)", tc.Rejected())
	}
	sys.cfg.MaxSteps = 0
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("continuation run: %v", err)
	}
	return res, sys
}

// TestTier2ElideValidatedParity: with elision and validation both on, the
// superblock drops statically proven checks, the validator confirms the
// block, and the guest-visible result is byte-identical to plain execution.
func TestTier2ElideValidatedParity(t *testing.T) {
	p := buildMaskedHotLoop(t, 50_000)
	ref, refErr := runPlain(t, p)
	if refErr != nil {
		t.Fatalf("plain run: %v", refErr)
	}
	res, sys := runTier2Deterministic(t, p, true)
	if res.T2Enters == 0 {
		t.Fatal("published superblock never dispatched")
	}
	if res.T2BoundsElided == 0 {
		t.Error("T2BoundsElided = 0: masked accesses were not statically elided")
	}
	if res.T2ValidatorChecked == 0 {
		t.Error("T2ValidatorChecked = 0: superblock was never validated")
	}
	if res.T2ValidatorRejects != 0 {
		t.Errorf("T2ValidatorRejects = %d on an honest compiler", res.T2ValidatorRejects)
	}
	checkParity(t, "elided tier-2 run", sys, ref)
}

// TestTier2ElisionReducesGuardChecks: the guards-executed-per-step metric
// must strictly drop when statically proven checks are elided, at identical
// guest work.
func TestTier2ElisionReducesGuardChecks(t *testing.T) {
	p := buildMaskedHotLoop(t, 50_000)
	plain, _ := runTier2Deterministic(t, p, false)
	elided, _ := runTier2Deterministic(t, p, true)
	if plain.T2Instrs == 0 || elided.T2Instrs == 0 {
		t.Fatalf("tier-2 never ran: plain=%d elided=%d", plain.T2Instrs, elided.T2Instrs)
	}
	plainRate := float64(plain.T2GuardChecks) / float64(plain.T2Instrs)
	elidedRate := float64(elided.T2GuardChecks) / float64(elided.T2Instrs)
	if elidedRate >= plainRate {
		t.Errorf("guards per tier-2 step did not drop: %.4f (elided) vs %.4f (plain)",
			elidedRate, plainRate)
	}
}
