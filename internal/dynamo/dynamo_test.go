package dynamo

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

// hotLoop builds a single dominant loop: the simplest program Dynamo must
// accelerate.
func hotLoop(n int64) *prog.Program {
	b := prog.NewBuilder("hotloop")
	b.SetMemSize(8)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.MovI(1, 7) // constant seed: fodder for the trace optimizer
	m.AddI(2, 1, 3)
	m.Op3(isa.Add, 3, 3, 2)
	m.Load(4, 5, 0)
	m.Load(6, 5, 0) // redundant load
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Store(3, 5, 1)
	m.Halt()
	return b.MustBuild()
}

// stateEqual compares the machine end state of a Dynamo run with a plain run.
func checkSemantics(t *testing.T, p *prog.Program, cfg Config) Result {
	t.Helper()
	plain := vm.New(p)
	if err := plain.Run(0); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	sys := New(p, cfg)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("dynamo run: %v", err)
	}
	dm := sys.Machine()
	if !dm.Halted {
		t.Fatal("dynamo run did not halt")
	}
	if dm.Steps != plain.Steps {
		t.Errorf("steps differ: dynamo %d vs plain %d", dm.Steps, plain.Steps)
	}
	if dm.Reg != plain.Reg {
		t.Errorf("final registers differ")
	}
	for i := range plain.Mem {
		if dm.Mem[i] != plain.Mem[i] {
			t.Fatalf("memory differs at %d: %d vs %d", i, dm.Mem[i], plain.Mem[i])
		}
	}
	return res
}

func TestSemanticsPreservedNET(t *testing.T) {
	res := checkSemantics(t, hotLoop(50_000), DefaultConfig(SchemeNET, 50))
	if res.Fragments == 0 {
		t.Error("expected at least one fragment")
	}
	if res.Speedup() <= 0 {
		t.Errorf("speedup = %.1f%%, want positive on a dominant loop", 100*res.Speedup())
	}
}

func TestSemanticsPreservedPathProfile(t *testing.T) {
	res := checkSemantics(t, hotLoop(50_000), DefaultConfig(SchemePathProfile, 50))
	if res.Fragments == 0 {
		t.Error("expected at least one fragment")
	}
}

func TestSemanticsPreservedOnWorkloads(t *testing.T) {
	for _, name := range []string{"compress", "m88ksim", "deltablue"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := b.Build(0.01)
			if err != nil {
				t.Fatal(err)
			}
			checkSemantics(t, p, DefaultConfig(SchemeNET, 20))
			checkSemantics(t, p, DefaultConfig(SchemePathProfile, 20))
		})
	}
}

func TestCycleAccountingConsistent(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNET, SchemePathProfile} {
		res, err := New(hotLoop(20_000), DefaultConfig(scheme, 50)).Run()
		if err != nil {
			t.Fatal(err)
		}
		sum := res.InterpCycles + res.FragCycles + res.ProfileCycles + res.BuildCycles + res.TransCycles
		if res.Cycles < sum-0.5 || res.NativeInstrs == 0 && res.Cycles > sum+0.5 {
			t.Errorf("%v: Cycles %.0f != component sum %.0f", scheme, res.Cycles, sum)
		}
		if got := res.InterpInstrs + res.FragInstrs + res.NativeInstrs; got != res.Steps {
			t.Errorf("%v: instruction modes sum %d != steps %d", scheme, got, res.Steps)
		}
		if res.NativeCycles <= 0 {
			t.Error("native baseline not computed")
		}
	}
}

func TestNETBeatsPathProfile(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := New(p, DefaultConfig(SchemePathProfile, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if net.Speedup() <= pp.Speedup() {
		t.Errorf("NET %.1f%% must beat PathProfile %.1f%% (the paper's headline)",
			100*net.Speedup(), 100*pp.Speedup())
	}
}

func TestBailoutOnFlatProgram(t *testing.T) {
	// A program with enormous path diversity and no reuse must bail out.
	b, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeNET, 50)
	cfg.BailoutAfter = 20_000
	res, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.BailedOut {
		t.Error("gcc-like workload must bail out")
	}
	if res.NativeInstrs == 0 {
		t.Error("post-bail execution must be native")
	}
}

func TestNoBailoutOnDominantProgram(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeNET, 50)
	cfg.BailoutAfter = 20_000
	res, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BailedOut {
		t.Error("compress-like workload must not bail out")
	}
}

func TestFlushOnPhaseChange(t *testing.T) {
	// Two long phases with disjoint hot code; the spike heuristic should
	// flush at the transition.
	b := prog.NewBuilder("phased")
	b.SetMemSize(8)
	m := b.Func("main")
	for ph := 0; ph < 2; ph++ {
		// Each phase: an outer loop over 40 distinct inner loops.
		for j := 0; j < 40; j++ {
			lbl := "p" + string(rune('a'+ph)) + "_" + string(rune('a'+j/26)) + string(rune('a'+j%26))
			m.MovI(0, 0)
			m.Label(lbl)
			m.AddI(1, 1, 1)
			m.AddI(0, 0, 1)
			m.BrI(isa.Lt, 0, 3000, lbl)
		}
	}
	m.Halt()
	p := b.MustBuild()
	cfg := DefaultConfig(SchemeNET, 10)
	cfg.FlushWindow = 5_000
	cfg.FlushSpike = 3.0
	cfg.BailoutAfter = 0
	res, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments < 40 {
		t.Errorf("fragments = %d, want >= 40", res.Fragments)
	}
	// The flush heuristic is best-effort; at minimum the run must stay
	// correct and cached.
	if res.CachedFraction() < 0.9 {
		t.Errorf("cached fraction = %.2f, want >= 0.9", res.CachedFraction())
	}
}

func TestCacheCapacityFlush(t *testing.T) {
	cfg := DefaultConfig(SchemeNET, 10)
	cfg.MaxFragments = 4
	cfg.FlushWindow = 0
	cfg.BailoutAfter = 0
	b, err := workload.ByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.02)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushes == 0 {
		t.Error("tiny cache must trigger capacity flushes")
	}
}

func TestAblationOptimizerOff(t *testing.T) {
	p := hotLoop(50_000)
	on, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeNET, 50)
	cfg.DisableOptimizer = true
	off, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if off.ElimInstrs != 0 {
		t.Error("disabled optimizer must eliminate nothing")
	}
	if on.ElimInstrs == 0 {
		t.Error("optimizer must eliminate something on this loop")
	}
	if on.Cycles >= off.Cycles {
		t.Errorf("optimizer must reduce cycles: %.0f vs %.0f", on.Cycles, off.Cycles)
	}
}

func TestAblationLinkingOff(t *testing.T) {
	p := hotLoop(50_000)
	on, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeNET, 50)
	cfg.DisableLinking = true
	off, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if off.LinkedJumps != 0 {
		t.Error("disabled linking must produce no linked jumps")
	}
	if on.LinkedJumps == 0 {
		t.Error("linking must occur on a hot loop")
	}
	if on.Cycles >= off.Cycles {
		t.Errorf("linking must reduce cycles: %.0f vs %.0f", on.Cycles, off.Cycles)
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := hotLoop(30_000)
	r1, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Fragments != r2.Fragments || r1.Steps != r2.Steps {
		t.Error("runs must be deterministic")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeNET.String() != "NET" || SchemePathProfile.String() != "PathProfile" {
		t.Error("scheme names wrong")
	}
}

func TestResultString(t *testing.T) {
	res, err := New(hotLoop(10_000), DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); s == "" {
		t.Error("empty result string")
	}
}
