package dynamo

import (
	"errors"
	"testing"

	"netpath/internal/cfg"
	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/workload"
)

// TestVerifyGateRefusesMalformed pins the load gate: a program the static
// verifier rejects never executes — Run returns the structured
// *cfg.VerifyError without panicking, and the machine stays at step zero.
func TestVerifyGateRefusesMalformed(t *testing.T) {
	// An unconditional self-loop with no counter: the verifier's
	// infinite-loop class.
	p := &prog.Program{
		Name:    "spin",
		Instrs:  []isa.Instr{{Op: isa.Jmp, Target: 0}},
		Funcs:   []prog.Func{{Name: "main", Entry: 0, End: 1}},
		Blocks:  []prog.Block{{Start: 0, End: 1, Func: 0}},
		MemSize: 4,
		Entry:   0,
	}
	p.Freeze()

	for _, scheme := range []Scheme{SchemeNET, SchemePathProfile, SchemeStatic} {
		s := New(p, DefaultConfig(scheme, 50))
		res, err := s.Run()
		if err == nil {
			t.Fatalf("%v: Run accepted a malformed program", scheme)
		}
		var ve *cfg.VerifyError
		if !errors.As(err, &ve) {
			t.Fatalf("%v: error %v is not a *cfg.VerifyError", scheme, err)
		}
		if ve.Program != "spin" || len(ve.Issues) == 0 {
			t.Errorf("%v: verify error lacks structure: %+v", scheme, ve)
		}
		if s.Machine().Steps != 0 {
			t.Errorf("%v: refused program executed %d steps", scheme, s.Machine().Steps)
		}
		if res.Steps != 0 {
			t.Errorf("%v: result reports %d steps for a refused program", scheme, res.Steps)
		}
	}
}

// TestVerifyGateMemoized runs many Systems over one program and checks the
// verdict is consistent (the memoized path returns the same answer as the
// first computation).
func TestVerifyGateMemoized(t *testing.T) {
	bm, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm.Build(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeNET, SchemePathProfile, SchemeStatic} {
		if _, err := New(p, DefaultConfig(scheme, 50)).Run(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

// TestStaticSchemeRuns exercises SchemeStatic end-to-end on a loop-heavy
// workload: fragments exist before the first instruction runs, the run
// completes with the same machine state as plain interpretation, no
// profiling cycles are charged, and real fragment-cache execution happens.
func TestStaticSchemeRuns(t *testing.T) {
	bm, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm.Build(0.02)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, DefaultConfig(SchemeStatic, 0))
	if s.res.Fragments == 0 {
		t.Fatal("static scheme prebuilt no fragments")
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Scheme != SchemeStatic || res.Scheme.String() != "Static" {
		t.Errorf("scheme = %v (%q)", res.Scheme, res.Scheme)
	}
	if res.ProfileCycles != 0 {
		t.Errorf("static scheme charged %v profiling cycles, want 0 (the scheme's defining property)", res.ProfileCycles)
	}
	if res.FragInstrs == 0 {
		t.Error("no instructions ran from the prebuilt fragment cache")
	}

	// Semantic equivalence with plain NET execution of the same program.
	ref, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != ref.Steps || res.Redirects != ref.Redirects {
		t.Errorf("static run diverged: steps %d/%d redirects %d/%d",
			res.Steps, ref.Steps, res.Redirects, ref.Redirects)
	}
}

// TestStaticSchemeAllWorkloads checks the static scheme completes on every
// benchmark without error and never diverges from the native step count.
func TestStaticSchemeAllWorkloads(t *testing.T) {
	for _, bm := range workload.All() {
		p, err := bm.Build(0.01)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		res, err := New(p, DefaultConfig(SchemeStatic, 0)).Run()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		ref, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if res.Steps != ref.Steps {
			t.Errorf("%s: static steps %d != reference %d", bm.Name, res.Steps, ref.Steps)
		}
	}
}
