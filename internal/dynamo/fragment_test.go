package dynamo

import (
	"testing"

	"netpath/internal/isa"
)

// mkTrace builds trace steps with sequential PCs; Next defaults to PC+1.
func mkTrace(ins ...isa.Instr) []TraceStep {
	steps := make([]TraceStep, len(ins))
	for i, in := range ins {
		steps[i] = TraceStep{PC: 100 + i, In: in, Next: 100 + i + 1}
	}
	return steps
}

func eliminatedWhys(fr *Fragment) map[int]string {
	out := map[int]string{}
	for i, s := range fr.Steps {
		if s.Eliminated {
			out[i] = s.Why
		}
	}
	return out
}

func TestJumpStraightening(t *testing.T) {
	fr := NewOptimizer().Optimize(100, mkTrace(
		isa.Instr{Op: isa.AddI, A: 1, B: 1, Imm: 1},
		isa.Instr{Op: isa.Jmp, Target: 200},
		isa.Instr{Op: isa.AddI, A: 2, B: 2, Imm: 1},
	))
	whys := eliminatedWhys(fr)
	if whys[1] != "jump-straightened" {
		t.Errorf("jump not straightened: %v", whys)
	}
	if fr.Eliminated != 1 {
		t.Errorf("eliminated = %d, want 1", fr.Eliminated)
	}
	if fr.EmittedLen() != 2 {
		t.Errorf("emitted = %d, want 2", fr.EmittedLen())
	}
}

func TestConstantFolding(t *testing.T) {
	fr := NewOptimizer().Optimize(100, mkTrace(
		isa.Instr{Op: isa.MovI, A: 1, Imm: 7},                             // seeds r1=7 (kept)
		isa.Instr{Op: isa.AddI, A: 2, B: 1, Imm: 3},                       // r2=10 folded
		isa.Instr{Op: isa.Add, A: 3, B: 2, C: 1},                          // r3=17 folded
		isa.Instr{Op: isa.Mov, A: 4, B: 3},                                // folded
		isa.Instr{Op: isa.Load, A: 5, B: 0, Imm: 0},                       // kills r5
		isa.Instr{Op: isa.Add, A: 6, B: 5, C: 1},                          // not folded (r5 unknown)
		isa.Instr{Op: isa.BrI, Cond: isa.Lt, A: 3, Imm: 100, Target: 300}, // folded: r3 known
		isa.Instr{Op: isa.Br, Cond: isa.Lt, A: 5, B: 6, Target: 300},      // kept: unknown
	))
	whys := eliminatedWhys(fr)
	for _, want := range []int{1, 2, 3} {
		if whys[want] != "const-folded" {
			t.Errorf("step %d: %q, want const-folded (all: %v)", want, whys[want], whys)
		}
	}
	if whys[6] != "branch-folded" {
		t.Errorf("known-operand branch not folded: %v", whys)
	}
	if _, bad := whys[0]; bad {
		t.Error("constant seed must be kept")
	}
	if _, bad := whys[5]; bad {
		t.Error("op with unknown operand must be kept")
	}
	if _, bad := whys[7]; bad {
		t.Error("branch with unknown operands must be kept")
	}
}

func TestRedundantLoadElimination(t *testing.T) {
	fr := NewOptimizer().Optimize(100, mkTrace(
		isa.Instr{Op: isa.Load, A: 1, B: 10, Imm: 4},
		isa.Instr{Op: isa.Load, A: 2, B: 10, Imm: 4}, // redundant
		isa.Instr{Op: isa.Load, A: 3, B: 10, Imm: 8}, // different offset: kept
		isa.Instr{Op: isa.Store, A: 1, B: 10, Imm: 0},
		isa.Instr{Op: isa.Load, A: 4, B: 10, Imm: 4}, // after store: kept
	))
	whys := eliminatedWhys(fr)
	if whys[1] != "redundant-load" {
		t.Errorf("redundant load not removed: %v", whys)
	}
	for _, kept := range []int{0, 2, 4} {
		if _, bad := whys[kept]; bad {
			t.Errorf("step %d must be kept: %v", kept, whys)
		}
	}
}

func TestRedundantLoadBaseRedefinition(t *testing.T) {
	fr := NewOptimizer().Optimize(100, mkTrace(
		isa.Instr{Op: isa.Load, A: 1, B: 10, Imm: 4},
		isa.Instr{Op: isa.AddI, A: 10, B: 10, Imm: 1}, // base changes
		isa.Instr{Op: isa.Load, A: 2, B: 10, Imm: 4},  // NOT redundant
	))
	if fr.Steps[2].Eliminated {
		t.Error("load after base redefinition must be kept")
	}
}

func TestDeadWriteElimination(t *testing.T) {
	fr := NewOptimizer().Optimize(100, mkTrace(
		isa.Instr{Op: isa.Load, A: 1, B: 9, Imm: 0}, // dead: r1 overwritten below, never read
		isa.Instr{Op: isa.Load, A: 1, B: 9, Imm: 1}, // live: r1 read by the addi
		isa.Instr{Op: isa.AddI, A: 2, B: 1, Imm: 1}, // dead: r2 overwritten below, never read
		isa.Instr{Op: isa.AddI, A: 2, B: 3, Imm: 2}, // live: final write survives the trace
	))
	// Step 0 writes r1, step 1 overwrites r1 without an intervening read or
	// side exit: step 0 is dead. Step 2 writes r2 and step 3 overwrites r2
	// without a read: step 2 is dead.
	whys := eliminatedWhys(fr)
	if whys[0] != "dead-write" {
		t.Errorf("step 0 should be dead: %v", whys)
	}
	if whys[2] != "dead-write" {
		t.Errorf("step 2 should be dead: %v", whys)
	}
	if _, bad := whys[1]; bad {
		t.Error("read value must be live")
	}
}

func TestDeadWriteBlockedBySideExit(t *testing.T) {
	fr := NewOptimizer().Optimize(100, []TraceStep{
		{PC: 100, In: isa.Instr{Op: isa.MovI, A: 1, Imm: 5}, Next: 101},
		{PC: 101, In: isa.Instr{Op: isa.Br, Cond: isa.Lt, A: 2, B: 3, Target: 500}, Next: 102},
		{PC: 102, In: isa.Instr{Op: isa.MovI, A: 1, Imm: 6}, Next: 103},
	})
	if fr.Steps[0].Eliminated {
		t.Error("write before a side exit must stay live (the exit may read it)")
	}
}

func TestOptimizerStatsAccumulate(t *testing.T) {
	o := NewOptimizer()
	o.Optimize(100, mkTrace(
		isa.Instr{Op: isa.Jmp, Target: 1},
		isa.Instr{Op: isa.MovI, A: 1, Imm: 1},
		isa.Instr{Op: isa.AddI, A: 2, B: 1, Imm: 1},
	))
	o.Optimize(200, mkTrace(
		isa.Instr{Op: isa.Jmp, Target: 2},
	))
	if o.JumpsRemoved != 2 {
		t.Errorf("JumpsRemoved = %d, want 2", o.JumpsRemoved)
	}
	if o.FoldedOps != 1 {
		t.Errorf("FoldedOps = %d, want 1", o.FoldedOps)
	}
}

func TestDisabledPassesDoNothing(t *testing.T) {
	o := &Optimizer{}
	fr := o.Optimize(100, mkTrace(
		isa.Instr{Op: isa.Jmp, Target: 1},
		isa.Instr{Op: isa.MovI, A: 1, Imm: 1},
		isa.Instr{Op: isa.Mov, A: 2, B: 1},
		isa.Instr{Op: isa.Load, A: 3, B: 0, Imm: 0},
		isa.Instr{Op: isa.Load, A: 4, B: 0, Imm: 0},
	))
	if fr.Eliminated != 0 {
		t.Errorf("eliminated = %d, want 0 with all passes off", fr.Eliminated)
	}
}

func TestAlu3AndAluImm(t *testing.T) {
	cases := []struct {
		op   isa.Op
		b, c int64
		want int64
	}{
		{isa.Add, 2, 3, 5}, {isa.Sub, 2, 3, -1}, {isa.Mul, 2, 3, 6},
		{isa.Div, 7, 2, 3}, {isa.Div, 7, 0, 0},
		{isa.Rem, 7, 2, 1}, {isa.Rem, 7, 0, 0},
		{isa.And, 6, 3, 2}, {isa.Or, 6, 3, 7}, {isa.Xor, 6, 3, 5},
		{isa.Shl, 1, 4, 16}, {isa.Shr, 16, 4, 1},
	}
	for _, cse := range cases {
		if got := alu3(cse.op, cse.b, cse.c); got != cse.want {
			t.Errorf("alu3(%v, %d, %d) = %d, want %d", cse.op, cse.b, cse.c, got, cse.want)
		}
	}
	immCases := []struct {
		op     isa.Op
		b, imm int64
		want   int64
	}{
		{isa.AddI, 2, 3, 5}, {isa.MulI, 2, 3, 6}, {isa.AndI, 6, 3, 2},
		{isa.RemI, 7, 2, 1}, {isa.RemI, 7, 0, 0},
	}
	for _, cse := range immCases {
		if got := aluImm(cse.op, cse.b, cse.imm); got != cse.want {
			t.Errorf("aluImm(%v, %d, %d) = %d, want %d", cse.op, cse.b, cse.imm, got, cse.want)
		}
	}
}

func TestSrcDestRegs(t *testing.T) {
	if d, ok := destReg(isa.Instr{Op: isa.Load, A: 7}); !ok || d != 7 {
		t.Error("Load dest wrong")
	}
	if _, ok := destReg(isa.Instr{Op: isa.Store}); ok {
		t.Error("Store has no dest")
	}
	if _, ok := destReg(isa.Instr{Op: isa.Br}); ok {
		t.Error("Br has no dest")
	}
	srcs := srcRegs(isa.Instr{Op: isa.Store, A: 1, B: 2})
	if len(srcs) != 2 {
		t.Errorf("Store srcs = %v", srcs)
	}
	if len(srcRegs(isa.Instr{Op: isa.MovI})) != 0 {
		t.Error("MovI reads nothing")
	}
	if !pureWrite(isa.Instr{Op: isa.AddI}) || pureWrite(isa.Instr{Op: isa.Store}) {
		t.Error("pureWrite classification wrong")
	}
}
