// Translation validation and static-fact plumbing.
//
// When Config.ValidateEmits is set, every translation the engine is about to
// trust is first checked against the guest instruction sequence it claims to
// implement: tier-1 fragments at emit time (internal/dataflow's fragment
// validator re-derives each elimination claim), and tier-2 superblocks at
// compile time (the superblock validator symbolically executes the micro-op
// stream against the recorded trace). A rejected translation is simply not
// installed — the code path stays on the next tier down — and the rejection
// is counted, so a rejecting run is loud in results and telemetry without
// ever being wrong. Validation is on in tests and CI and off by default in
// production, where the counters alone are the tripwire.
//
// When Config.Tier2Elide is set, the whole-program dataflow analysis
// (internal/dataflow.Analyze) feeds the superblock compiler: memory accesses
// proven in-bounds lower to check-free fused handlers and branches the
// analysis decided compile to nothing. The analysis runs at most once per
// resident program — on a background compile worker, never the mutator —
// and is memoized exactly like the CFG verifier's verdicts.
package dynamo

import (
	"sync"

	"netpath/internal/dataflow"
	"netpath/internal/prog"
	"netpath/internal/telemetry"
	"netpath/internal/vm"
)

var (
	telValidateRejects = telemetry.NewCounter("dynamo_validator_rejects_total",
		"tier-1 fragment emits refused by the translation validator")
	telT2ValidateRejects = telemetry.NewCounter("dynamo_tier2_validator_rejects_total",
		"tier-2 superblocks refused publication by the translation validator")
)

// factsCache memoizes dataflow.Analyze by program identity, with the same
// bounded full-drop policy as verifyCache (programs are immutable after
// Freeze; analysis is cheap relative to a run; staleness is impossible).
// A program whose analysis fails is cached as nil: callers degrade to
// fact-free compilation and validation.
var (
	factsMu    sync.Mutex
	factsCache = make(map[*prog.Program]*dataflow.Facts)
)

// programFacts returns the memoized whole-program dataflow facts for p, or
// nil if the analysis failed (a verified program always analyzes; nil is
// pure defense).
func programFacts(p *prog.Program) *dataflow.Facts {
	factsMu.Lock()
	if f, ok := factsCache[p]; ok {
		factsMu.Unlock()
		return f
	}
	factsMu.Unlock()
	f, err := dataflow.Analyze(p)
	if err != nil {
		f = nil
	}
	factsMu.Lock()
	if len(factsCache) >= verifyCacheCap {
		clear(factsCache)
	}
	factsCache[p] = f
	factsMu.Unlock()
	return f
}

// sbFactsFor adapts dataflow facts to the superblock compiler's narrow
// interface.
func sbFactsFor(f *dataflow.Facts) vm.SBFacts {
	return vm.SBFacts{
		InBounds: f.InBounds,
		Decided: func(pc int32) (taken, ok bool) {
			switch f.Branch(pc) {
			case dataflow.BranchAlwaysTaken:
				return true, true
			case dataflow.BranchNeverTaken:
				return false, true
			}
			return false, false
		},
	}
}

// toGuestSteps converts an optimized tier-1 trace to the validator's neutral
// form.
func toGuestSteps(steps []TraceStep) []dataflow.GuestStep {
	out := make([]dataflow.GuestStep, len(steps))
	for i := range steps {
		st := &steps[i]
		out[i] = dataflow.GuestStep{
			PC: st.PC, In: st.In, Next: st.Next,
			Eliminated: st.Eliminated, Why: st.Why,
		}
	}
	return out
}

// validateEmit checks an optimized fragment against the program before it
// enters the cache. Mutator-side, but only on the emit slow path and only
// under Config.ValidateEmits.
func (s *System) validateEmit(fr *Fragment) bool {
	err := dataflow.ValidateFragment(s.m.Prog, fr.Start, toGuestSteps(fr.Steps))
	s.res.ValidatorChecked++
	if err == nil {
		return true
	}
	s.res.ValidatorRejects++
	if s.tel != nil {
		s.tel.Inc(telValidateRejects)
	}
	return false
}

// creditT2Block folds a freshly published block's compile-time statistics
// into the run's counters. Called by the mutator the first time it loads the
// block (publication is the only cross-thread edge, so the worker cannot
// write results into s.res directly).
func (s *System) creditT2Block(blk *t2Block) {
	s.res.T2BoundsElided += int64(blk.stats.BoundsElided)
	s.res.T2GuardsImplied += int64(blk.stats.Implied)
	if blk.validated {
		s.res.T2ValidatorChecked++
		if blk.rejected {
			s.res.T2ValidatorRejects++
		}
	}
}
