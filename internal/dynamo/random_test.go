package dynamo

import (
	"testing"

	"netpath/internal/randprog"
	"netpath/internal/vm"
)

// TestRandomProgramSemantics is the strongest correctness property in the
// repository: on randomly generated programs, execution under the
// mini-Dynamo (fragment caching, trace optimization, linking, flushes) must
// be bit-identical to plain interpretation — same step count, same final
// registers, same final memory.
func TestRandomProgramSemantics(t *testing.T) {
	const seeds = 40
	for seed := int64(0); seed < seeds; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})

		plain := vm.New(p)
		if err := plain.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: plain run: %v", seed, err)
		}

		for _, scheme := range []Scheme{SchemeNET, SchemePathProfile} {
			for _, tau := range []int64{3, 17} {
				cfg := DefaultConfig(scheme, tau)
				cfg.BailoutAfter = 0 // exercise caching on every program
				cfg.FlushWindow = 500
				cfg.FlushSpike = 3.0
				cfg.MaxFragments = 32 // force capacity flushes too
				sys := New(p, cfg)
				if _, err := sys.Run(); err != nil {
					t.Fatalf("seed %d %v τ=%d: dynamo run: %v", seed, scheme, tau, err)
				}
				dm := sys.Machine()
				if dm.Steps != plain.Steps {
					t.Fatalf("seed %d %v τ=%d: steps %d != plain %d",
						seed, scheme, tau, dm.Steps, plain.Steps)
				}
				if dm.Reg != plain.Reg {
					t.Fatalf("seed %d %v τ=%d: final registers differ", seed, scheme, tau)
				}
				for a := range plain.Mem {
					if dm.Mem[a] != plain.Mem[a] {
						t.Fatalf("seed %d %v τ=%d: memory differs at %d: %d vs %d",
							seed, scheme, tau, a, dm.Mem[a], plain.Mem[a])
					}
				}
			}
		}
	}
}

// TestRandomProgramAccounting checks the cycle and instruction bookkeeping
// invariants on random programs.
func TestRandomProgramAccounting(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		cfg := DefaultConfig(SchemeNET, 5)
		cfg.BailoutAfter = 0
		res, err := New(p, cfg).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.InterpInstrs+res.FragInstrs+res.NativeInstrs != res.Steps {
			t.Errorf("seed %d: instruction modes %d+%d+%d != steps %d",
				seed, res.InterpInstrs, res.FragInstrs, res.NativeInstrs, res.Steps)
		}
		if res.Cycles <= 0 || res.NativeCycles <= 0 {
			t.Errorf("seed %d: non-positive cycles", seed)
		}
		if res.ElimInstrs > res.FragInstrs {
			t.Errorf("seed %d: eliminated %d > fragment instructions %d",
				seed, res.ElimInstrs, res.FragInstrs)
		}
	}
}
