package dynamo

import "testing"

func TestShardSetDivision(t *testing.T) {
	ss := NewShardSet(TableBudget{HeadCounters: 4000, Paths: 8000, Fragments: 400}, false)
	a := ss.Alloc("alice")
	if a.MaxHeadCounters != 4000 || a.MaxPaths != 8000 || a.MaxFragments != 400 {
		t.Fatalf("single tenant gets the full budget, got %+v", a)
	}
	ss.Alloc("bob")
	ss.Alloc("carol")
	ss.Alloc("dave")
	a = ss.Alloc("alice")
	if a.MaxHeadCounters != 1000 || a.MaxPaths != 2000 || a.MaxFragments != 100 {
		t.Fatalf("four tenants split the budget evenly, got %+v", a)
	}
	if ss.Tenants() != 4 {
		t.Fatalf("Tenants = %d, want 4", ss.Tenants())
	}
	ss.Retire("dave")
	ss.Retire("carol")
	a = ss.Alloc("alice")
	if a.MaxHeadCounters != 2000 {
		t.Fatalf("retired tenants return capacity, got %+v", a)
	}
}

func TestShardSetFloors(t *testing.T) {
	ss := NewShardSet(TableBudget{HeadCounters: 128, Paths: 512, Fragments: 32}, false)
	for _, tn := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		ss.Alloc(tn)
	}
	a := ss.Alloc("a")
	if a.MaxHeadCounters < minShardHeads || a.MaxPaths < minShardPaths || a.MaxFragments < minShardFrags {
		t.Fatalf("shard below floor: %+v", a)
	}
}

func TestShardSetShared(t *testing.T) {
	ss := NewShardSet(TableBudget{HeadCounters: 4000, Paths: 8000, Fragments: 400}, true)
	ss.Alloc("alice")
	ss.Alloc("bob")
	a := ss.Alloc("alice")
	if a.MaxHeadCounters != 4000 || a.MaxPaths != 8000 || a.MaxFragments != 400 {
		t.Fatalf("shared mode must not divide the budget, got %+v", a)
	}
}

func TestShardSetPressure(t *testing.T) {
	ss := NewShardSet(TableBudget{}, false)
	ss.Alloc("t")
	if ss.PressureMilli() != 0 {
		t.Fatalf("pressure before any run = %d, want 0", ss.PressureMilli())
	}
	ss.Release("t", Result{HeadEvictions: 3, PathEvictions: 1})
	ss.Release("t", Result{})
	if ss.Evictions() != 4 {
		t.Fatalf("Evictions = %d, want 4", ss.Evictions())
	}
	if ss.PressureMilli() != 2000 {
		t.Fatalf("PressureMilli = %d, want 2000 (4 evictions / 2 runs)", ss.PressureMilli())
	}
}

func TestShardAllocApply(t *testing.T) {
	cfg := DefaultConfig(SchemeNET, 50)
	ShardAlloc{MaxHeadCounters: 11, MaxPaths: 22, MaxFragments: 33}.Apply(&cfg)
	if cfg.MaxHeadCounters != 11 || cfg.MaxPaths != 22 || cfg.MaxFragments != 33 {
		t.Fatalf("Apply did not install capacities: %+v", cfg)
	}
}
