package dynamo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"netpath/internal/chaos"
	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/randprog"
	"netpath/internal/telemetry"
	"netpath/internal/vm"
)

// waitTier2 blocks until the compiler has settled at least want jobs
// (compiled or rejected) and its queue is empty. Tests use it between a
// warm-up run and a continuation run to make asynchronous publication
// deterministic.
func waitTier2(t *testing.T, tc *Tier2Compiler, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tc.Compiled()+tc.Rejected() < want || tc.Depth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tier-2 compiler did not settle: compiled=%d rejected=%d depth=%d want>=%d",
				tc.Compiled(), tc.Rejected(), tc.Depth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkParity compares a System's final architectural state against a plain
// VM reference. This is the tier-2 contract: no matter what the background
// compiler published or when, the guest-visible state is byte-identical.
func checkParity(t *testing.T, label string, sys *System, ref *vm.Machine) {
	t.Helper()
	m := sys.Machine()
	if m.Steps != ref.Steps {
		t.Errorf("%s: steps %d, plain VM %d", label, m.Steps, ref.Steps)
	}
	if m.PC != ref.PC || m.Halted != ref.Halted {
		t.Errorf("%s: PC/Halted (%d,%v), plain VM (%d,%v)", label, m.PC, m.Halted, ref.PC, ref.Halted)
	}
	if m.Reg != ref.Reg {
		t.Errorf("%s: final registers diverge from plain VM", label)
	}
	for a := range ref.Mem {
		if m.Mem[a] != ref.Mem[a] {
			t.Errorf("%s: Mem[%d] = %d, plain VM %d", label, a, m.Mem[a], ref.Mem[a])
			break
		}
	}
}

// buildHotLoop is a tight counting loop with a store per iteration: the
// canonical tier-2 target (one fragment, immediately promoted, superblock
// entered on nearly every iteration once published).
func buildHotLoop(t *testing.T, n int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("t2loop")
	b.SetMemSize(8)
	f := b.Func("main")
	f.MovI(0, 0)
	f.MovI(2, 0)
	f.Label("loop")
	f.AddI(0, 0, 1)
	f.AddI(2, 2, 3)
	f.Store(2, 1, 4)
	f.BrI(isa.Lt, 0, n, "loop")
	f.Store(2, 1, 0)
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// buildPhaseGuard nests a hot inner loop inside an outer loop that flips a
// phase register the inner body only reads. The inner trace's phase branch
// is therefore hoistable to a superblock entry guard — and during opposite
// outer iterations that entry guard fails on every single inner iteration,
// which is exactly the storm the deoptimizer must tear down rather than
// burning entry checks forever.
func buildPhaseGuard(t *testing.T, outer, inner int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("t2phase")
	b.SetMemSize(8)
	f := b.Func("main")
	f.MovI(0, 0)
	f.MovI(3, 0)
	f.Label("outer")
	f.AndI(5, 0, 1) // phase = outer parity; never written by the inner body
	f.MovI(6, 0)
	f.Label("inner")
	f.BrI(isa.Eq, 5, 0, "skip")
	f.AddI(3, 3, 3) // odd-phase arm
	f.Label("skip")
	f.AddI(6, 6, 1)
	f.BrI(isa.Lt, 6, inner, "inner")
	f.AddI(0, 0, 1)
	f.BrI(isa.Lt, 0, outer, "outer")
	f.Store(3, 4, 0) // r4 is never written: address 0
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// runPlain executes p on a plain VM to completion (or fault) and returns it.
func runPlain(t *testing.T, p *prog.Program) (*vm.Machine, error) {
	t.Helper()
	ref := vm.New(p)
	err := ref.Run(0)
	return ref, err
}

// TestTier2DeterministicDispatch pins the publication protocol end to end
// with no timing dependence: a warm-up run (bounded by MaxSteps) promotes
// the hot loop's fragment, the test waits for the background worker to
// publish, and the continuation run must pick the superblock up at its next
// dispatch — T2Enters strictly positive — while finishing with exactly the
// plain VM's architectural state.
func TestTier2DeterministicDispatch(t *testing.T) {
	p := buildHotLoop(t, 50_000)
	ref, refErr := runPlain(t, p)
	if refErr != nil {
		t.Fatalf("plain run: %v", refErr)
	}

	tc := NewTier2Compiler(1, 16)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 1
	cfg.MaxSteps = 2000
	sys := New(p, cfg)

	if _, err := sys.Run(); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("warm-up run: err = %v, want step limit", err)
	}
	waitTier2(t, tc, 1)
	if tc.Compiled() == 0 {
		t.Fatalf("warm-up promoted but nothing compiled (rejected=%d)", tc.Rejected())
	}

	sys.cfg.MaxSteps = 0
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("continuation run: %v", err)
	}
	if res.T2Promotions == 0 {
		t.Error("T2Promotions = 0, want > 0")
	}
	if res.T2Enters == 0 {
		t.Error("T2Enters = 0: published superblock never dispatched")
	}
	if res.T2Instrs == 0 {
		t.Error("T2Instrs = 0, want > 0")
	}
	checkParity(t, "hot loop", sys, ref)
	if got := res.InterpInstrs + res.FragInstrs + res.NativeInstrs; got != res.Steps {
		t.Errorf("instruction modes %d+%d+%d != steps %d",
			res.InterpInstrs, res.FragInstrs, res.NativeInstrs, res.Steps)
	}
}

// TestTier2FaultEquivalence: a guest that eventually faults inside a
// published superblock must end the run with the same fault text, at the
// same step, with the same machine state as plain interpretation — the
// superblock's divergence replay is responsible for delivering exact traps.
func TestTier2FaultEquivalence(t *testing.T) {
	b := prog.NewBuilder("t2fault")
	b.SetMemSize(600)
	f := b.Func("main")
	f.MovI(0, 0)
	f.Label("loop")
	f.Load(1, 0, 0) // faults once r0 reaches the memory size
	f.AddI(2, 2, 1)
	f.AddI(0, 0, 1)
	f.BrI(isa.Lt, 0, 1_000_000, "loop")
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	ref, refErr := runPlain(t, p)
	if refErr == nil {
		t.Fatal("reference run did not fault")
	}

	tc := NewTier2Compiler(1, 16)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 1
	cfg.MaxSteps = 1500
	sys := New(p, cfg)
	if _, err := sys.Run(); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("warm-up run: err = %v, want step limit", err)
	}
	waitTier2(t, tc, 1)

	sys.cfg.MaxSteps = 0
	res, err := sys.Run()
	if err == nil {
		t.Fatal("tier-2 run did not fault")
	}
	if !strings.Contains(err.Error(), refErr.Error()) {
		t.Errorf("fault %q, plain VM %q", err, refErr)
	}
	if res.VMFault != refErr.Error() {
		t.Errorf("Result.VMFault = %q, want %q", res.VMFault, refErr.Error())
	}
	if res.T2Enters == 0 {
		t.Error("T2Enters = 0: fault path never went through tier 2")
	}
	checkParity(t, "fault", sys, ref)
}

// TestTier2DeoptStorm drives promote → publish → storm → deopt cycles: the
// phase register flips every outer iteration, so the inner loop's published
// superblock — whose phase branch was hoisted to an entry guard — fails its
// entry check on every inner iteration of the wrong phase. The shortfall
// heuristic must tear such blocks down (T2Deopts > 0), the queue must stay
// bounded, nothing may panic, and the final state must still match plain
// interpretation exactly.
func TestTier2DeoptStorm(t *testing.T) {
	p := buildPhaseGuard(t, 400, 500)
	ref, refErr := runPlain(t, p)
	if refErr != nil {
		t.Fatalf("plain run: %v", refErr)
	}

	const qcap = 8
	tc := NewTier2Compiler(1, qcap)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 1
	cfg.MaxSteps = 1500 // stop inside the first (even-phase) outer iteration
	sys := New(p, cfg)
	if _, err := sys.Run(); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("warm-up run: err = %v, want step limit", err)
	}
	waitTier2(t, tc, 1)

	sys.cfg.MaxSteps = 0
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("storm run: %v", err)
	}
	if res.T2Enters == 0 {
		t.Fatal("T2Enters = 0: storm never exercised tier 2")
	}
	if res.T2GuardFails == 0 {
		t.Error("T2GuardFails = 0: hoisted entry guard never bounced")
	}
	if res.T2Deopts == 0 {
		t.Error("T2Deopts = 0: shortfall storm never deoptimized")
	}
	if d := tc.Depth(); d < 0 || d > qcap {
		t.Errorf("queue depth %d outside [0,%d]", d, qcap)
	}
	checkParity(t, "deopt storm", sys, ref)
	if got := res.InterpInstrs + res.FragInstrs + res.NativeInstrs; got != res.Steps {
		t.Errorf("instruction modes %d+%d+%d != steps %d",
			res.InterpInstrs, res.FragInstrs, res.NativeInstrs, res.Steps)
	}
}

// TestTier2RandomDifferential is the tier-2 extension of the lockstep
// differential suite: on random programs, a System with an aggressive
// background compiler racing the running guest (threshold 1, publication at
// arbitrary points mid-run) must produce exactly the architectural state of
// both plain interpretation and a tier-1-only System. Each seed runs the
// first half under a step limit and then continues after the compile queue
// settles, so published superblocks demonstrably execute; accounting must
// keep partitioning every step into exactly one execution mode.
func TestTier2RandomDifferential(t *testing.T) {
	tc := NewTier2Compiler(2, 64)
	defer tc.Close()
	var enters, promotions, settled int64
	for seed := int64(0); seed < 40; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		ref, refErr := runPlain(t, p)
		if refErr != nil {
			t.Fatalf("seed %d: plain run: %v", seed, refErr)
		}

		t1cfg := DefaultConfig(SchemeNET, 3)
		t1cfg.BailoutAfter = 0
		t1 := New(p, t1cfg)
		if _, err := t1.Run(); err != nil {
			t.Fatalf("seed %d: tier-1 run: %v", seed, err)
		}

		cfg := DefaultConfig(SchemeNET, 3)
		cfg.BailoutAfter = 0
		cfg.Tier2 = tc
		cfg.Tier2Threshold = 1
		cfg.MaxSteps = ref.Steps / 2
		sys := New(p, cfg)
		res, err := sys.Run()
		if errors.Is(err, vm.ErrStepLimit) {
			// Drain the queue so the continuation deterministically sees
			// whatever the warm half promoted.
			waitTier2(t, tc, settled+res.T2Promotions)
			sys.cfg.MaxSteps = 0
			res, err = sys.Run()
		}
		if err != nil {
			t.Fatalf("seed %d: tier-2 run: %v", seed, err)
		}
		settled += res.T2Promotions
		checkParity(t, fmt.Sprintf("seed %d", seed), sys, ref)
		if m1 := t1.Machine(); m1.Steps != sys.Machine().Steps || m1.Reg != sys.Machine().Reg {
			t.Errorf("seed %d: tier-2 state diverges from tier-1", seed)
		}
		if got := res.InterpInstrs + res.FragInstrs + res.NativeInstrs; got != res.Steps {
			t.Errorf("seed %d: instruction modes %d+%d+%d != steps %d",
				seed, res.InterpInstrs, res.FragInstrs, res.NativeInstrs, res.Steps)
		}
		enters += res.T2Enters
		promotions += res.T2Promotions
	}
	// The differential property is vacuous if tier 2 never engaged.
	if promotions == 0 {
		t.Error("no fragment was ever promoted across 40 seeds")
	}
	if enters == 0 {
		t.Error("no published superblock was ever dispatched across 40 seeds")
	}
}

// FuzzTier2Differential fuzzes the same property: any generator seed must
// yield identical architectural state with and without a racing background
// compiler.
func FuzzTier2Differential(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p, err := randprog.Generate(seed, randprog.Options{})
		if err != nil {
			t.Skip()
		}
		ref, refErr := runPlain(t, p)
		if refErr != nil {
			t.Skip() // generator contract: clean halt; nothing to compare
		}
		tc := NewTier2Compiler(1, 16)
		defer tc.Close()
		cfg := DefaultConfig(SchemeNET, 3)
		cfg.BailoutAfter = 0
		cfg.Tier2 = tc
		cfg.Tier2Threshold = 1
		sys := New(p, cfg)
		if _, err := sys.Run(); err != nil {
			t.Fatalf("seed %d: tier-2 run: %v", seed, err)
		}
		checkParity(t, fmt.Sprintf("seed %d", seed), sys, ref)
	})
}

// TestTier2ConcurrentSoak is the -race soak: many tenants share one
// compiler through a ShardSet, half of them under chaos injection (which
// promotes and publishes but never dispatches tier 2 — the slow stepper
// owns faulty runs), half clean and aggressively tiering up. Every run must
// match plain interpretation; the queue must stay bounded.
func TestTier2ConcurrentSoak(t *testing.T) {
	const (
		tenants = 8
		qcap    = 32
	)
	tc := NewTier2Compiler(2, qcap)
	defer tc.Close()
	ss := NewShardSet(TableBudget{HeadCounters: 1 << 12, Paths: 1 << 14, Fragments: 512}, false)
	ss.SetTier2(tc)

	var wg sync.WaitGroup
	errs := make(chan error, tenants*4)
	for ten := 0; ten < tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", ten)
			for seed := int64(1); seed <= 3; seed++ {
				p := randprog.MustGenerate(int64(ten)*11+seed, randprog.Options{})
				ref := vm.New(p)
				if err := ref.Run(0); err != nil {
					errs <- fmt.Errorf("%s seed %d: plain run: %w", tenant, seed, err)
					return
				}
				cfg := DefaultConfig(SchemeNET, 3)
				cfg.BailoutAfter = 0
				cfg.Tier2Threshold = 1
				ss.Alloc(tenant).Apply(&cfg)
				if ten%2 == 1 {
					cfg.Chaos = chaos.NewRandom(seed, softRates)
				}
				cfg.Telemetry = telemetry.Def.NewSink()
				sys := New(p, cfg)
				res, err := sys.Run()
				ss.Release(tenant, res)
				if err != nil {
					errs <- fmt.Errorf("%s seed %d: run: %w", tenant, seed, err)
					return
				}
				m := sys.Machine()
				if res.Steps != ref.Steps || m.Reg != ref.Reg {
					errs <- fmt.Errorf("%s seed %d: state diverges from plain VM (steps %d vs %d)",
						tenant, seed, res.Steps, ref.Steps)
					return
				}
			}
		}(ten)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if d := tc.Depth(); d < 0 || d > qcap {
		t.Errorf("queue depth %d outside [0,%d]", d, qcap)
	}
}

// TestTier2PromotionAllocs bounds the promotion slow path: snapshotting a
// fragment chain and attempting the enqueue — the only allocation-bearing
// tier-2 work the mutator ever does — must stay within a small fixed
// budget, entered at most once per threshold crossing per fragment. A
// closed compiler makes the enqueue a deterministic drop so the measurement
// has no background half.
func TestTier2PromotionAllocs(t *testing.T) {
	p := buildHotLoop(t, 2_000)
	cfg := DefaultConfig(SchemeNET, 5)
	sys := New(p, cfg)
	if _, err := sys.Run(); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	var fr *Fragment
	for _, cand := range sys.cache {
		if cand.Completions > 0 && len(cand.Steps) > 0 {
			fr = cand
			break
		}
	}
	if fr == nil {
		t.Fatal("warm run cached no completed fragment")
	}

	tc := NewTier2Compiler(1, 4)
	tc.Close()
	sys.t2c = tc
	sys.t2Threshold = 1

	allocs := testing.AllocsPerRun(100, func() {
		fr.t2.Store(nil)
		fr.t2Queued = false
		fr.t2Next = 1
		sys.maybePromote(fr)
	})
	// Snapshot slices (grown across the unrolled chain, up to t2UnrollCap
	// guest steps) and the job header; the budget has headroom but catches
	// anything per-step or accidental.
	if allocs > 32 {
		t.Errorf("promotion slow path allocates %.1f objects, budget 32", allocs)
	}

	// The fast rejection paths (already queued / already published) must be
	// allocation-free: they sit on the per-dispatch promotion check.
	fr.t2Queued = true
	if a := testing.AllocsPerRun(100, func() { sys.maybePromote(fr) }); a != 0 {
		t.Errorf("queued fast path allocates %.1f objects, want 0", a)
	}
	fr.t2Queued = false
	fr.t2.Store(&t2Block{})
	if a := testing.AllocsPerRun(100, func() { sys.maybePromote(fr) }); a != 0 {
		t.Errorf("tombstoned fast path allocates %.1f objects, want 0", a)
	}
}

// TestTier2DispatchAllocs: the dispatch fast path — loading the published
// block, checking entry guards, and running the superblock to completion
// with its boundary bookkeeping — must not allocate. This is the in-package
// twin of the bench gate's tier-2 alloc entry.
func TestTier2DispatchAllocs(t *testing.T) {
	p := buildHotLoop(t, 2_000_000_000) // never finishes; we dispatch manually
	tc := NewTier2Compiler(1, 16)
	defer tc.Close()
	cfg := DefaultConfig(SchemeNET, 5)
	cfg.Tier2 = tc
	cfg.Tier2Threshold = 1
	cfg.MaxSteps = 2000
	sys := New(p, cfg)
	if _, err := sys.Run(); !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("warm-up run: err = %v, want step limit", err)
	}
	waitTier2(t, tc, 1)

	var blk *t2Block
	var fr *Fragment
	for _, cand := range sys.cache {
		if b := cand.t2.Load(); b != nil && b.sb != nil {
			fr, blk = cand, b
			break
		}
	}
	if blk == nil {
		t.Fatal("no published superblock after warm-up")
	}
	sys.cfg.MaxSteps = 0
	sys.mode = modeFragment
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := sys.runTier2(fr, blk); err != nil {
			t.Fatalf("runTier2: %v", err)
		}
		sys.mode = modeFragment
	})
	if allocs != 0 {
		t.Errorf("tier-2 dispatch allocates %.2f objects per entry, want 0", allocs)
	}
}
