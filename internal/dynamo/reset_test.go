package dynamo

import (
	"context"
	"errors"
	"testing"
	"time"

	"netpath/internal/chaos"
	"netpath/internal/randprog"
	"netpath/internal/workload"
)

// TestSystemResetReplays is the reuse contract a resident server relies on:
// Run → Reset → Run must reproduce byte-identical results — including every
// robustness counter — to a freshly constructed System, under every scheme
// and with a chaos injector attached.
func TestSystemResetReplays(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		for _, scheme := range []Scheme{SchemeNET, SchemePathProfile, SchemeStatic} {
			cfg := DefaultConfig(scheme, 5)
			cfg.Chaos = chaos.NewRandom(seed, softRates)

			fresh := New(p, cfg)
			want, wantErr := fresh.Run()

			sys := New(p, cfg)
			if _, err := sys.Run(); (err == nil) != (wantErr == nil) {
				t.Fatalf("seed %d %v: first run err %v, fresh err %v", seed, scheme, err, wantErr)
			}
			sys.Reset()
			got, gotErr := sys.Run()
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d %v: reset run err %v, fresh err %v", seed, scheme, gotErr, wantErr)
			}
			if got != want {
				t.Errorf("seed %d %v: reset run Result differs from fresh run:\n reset: %+v\n fresh: %+v",
					seed, scheme, got, want)
			}
			if sys.Machine().Steps != fresh.Machine().Steps || sys.Machine().Reg != fresh.Machine().Reg {
				t.Errorf("seed %d %v: reset run machine state differs from fresh run", seed, scheme)
			}
		}
	}
}

// TestRunContextDeadline: a guest that outlives its wall-clock budget is
// stopped with a typed *DeadlineError — never a hang — and the partial
// Result is accounted. A background context changes nothing.
func TestRunContextDeadline(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(1.0)
	if err != nil {
		t.Fatal(err)
	}

	// Expired before the first step: preemption must fire almost at once.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sys := New(p, DefaultConfig(SchemeNET, 50))
	res, err := sys.RunContext(ctx)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must unwrap to context.DeadlineExceeded", err)
	}
	if de.Steps != res.Steps {
		t.Errorf("DeadlineError.Steps = %d, Result.Steps = %d", de.Steps, res.Steps)
	}

	// Background context: identical to Run.
	want, err := New(p, DefaultConfig(SchemeNET, 50)).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := New(p, DefaultConfig(SchemeNET, 50)).RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext(Background): %v", err)
	}
	if got != want {
		t.Errorf("RunContext(Background) differs from Run")
	}
}

// TestRunContextCancelMidRun cancels from another goroutine while the guest
// executes and checks the run stops promptly with the typed error.
func TestRunContextCancelMidRun(t *testing.T) {
	b, err := workload.ByName("go")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = New(p, DefaultConfig(SchemeNET, 50)).RunContext(ctx)
	var de *DeadlineError
	if err != nil && !errors.As(err, &de) {
		// The guest may legitimately finish before the deadline on a fast
		// machine; any other error is a failure.
		t.Fatalf("err = %v, want nil or *DeadlineError", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v after a 5ms deadline: preemption not cooperative", elapsed)
	}
}
