// Static program admission and the static scheme's load-time translation.
//
// Every System runs the CFG verifier (internal/cfg) over its program before
// executing a single instruction: a program with error-class malformations
// (wild jump targets, fall-through off the end, counterless infinite loops,
// ...) is refused with a structured *cfg.VerifyError rather than risking an
// interpreter fault mid-run. Verdicts are memoized per program pointer — an
// experiment grid spawns many Systems over the same read-only program, and
// the verifier only needs to run once.
package dynamo

import (
	"sync"

	"netpath/internal/cfg"
	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/staticpred"
)

// verifyCache memoizes verifyGate verdicts by program identity. Programs
// are immutable after Freeze, so pointer identity is a sound key. The cache
// is bounded: a resident server verifies an endless stream of fresh
// programs, and an unbounded map would both leak and pin every submitted
// program against garbage collection. Experiment grids (the memoization's
// beneficiary) hold tens of programs, so a full-drop at the cap never hits
// them.
var (
	verifyMu    sync.Mutex
	verifyCache = make(map[*prog.Program]error)
)

// verifyCacheCap bounds verifyCache; crossing it drops the whole cache
// (verification is cheap relative to a run, staleness is impossible, and a
// full drop keeps the steady state allocation-free).
const verifyCacheCap = 4096

// verifyGate returns the static verifier's verdict for p, computing it at
// most once per resident program.
func verifyGate(p *prog.Program) error {
	verifyMu.Lock()
	if err, ok := verifyCache[p]; ok {
		verifyMu.Unlock()
		return err
	}
	verifyMu.Unlock()
	err := cfg.VerifyProgram(p)
	verifyMu.Lock()
	if len(verifyCache) >= verifyCacheCap {
		clear(verifyCache)
	}
	verifyCache[p] = err
	verifyMu.Unlock()
	return err
}

// prebuildStatic populates the fragment cache from the static predictor's
// maximum-likelihood walks — the static scheme's whole "profiling" phase,
// run at load time with zero runtime counters. Each completed walk becomes
// a trace recorded exactly as the online recorder would have recorded it
// (one TraceStep per predicted instruction), then optimized and installed
// through the ordinary emit path so cycle accounting charges the one-time
// translation cost. Walks that abort on indirect control carry no steps and
// are skipped; a trailing halt is trimmed because online recordings end at
// path boundaries, never at the halt itself.
func (s *System) prebuildStatic(p *prog.Program) {
	a, err := staticpred.Analyze(p)
	if err != nil {
		// Analyze only fails where the verifier would have failed first;
		// a verified program always analyzes. Degrade to an empty cache.
		return
	}
	built := 0
	for _, w := range a.Walks() {
		if w.Aborted || len(w.Steps) == 0 {
			continue
		}
		steps := make([]TraceStep, 0, len(w.Steps))
		for _, st := range w.Steps {
			in := p.Instrs[st.PC]
			if in.Op == isa.Halt {
				break
			}
			steps = append(steps, TraceStep{PC: st.PC, In: in, Next: st.Next})
		}
		if len(steps) == 0 || s.cache[w.Head] != nil {
			continue
		}
		s.emit(w.Head, steps)
		built++
	}
	if s.tel != nil {
		s.tel.Add(telStaticPrebuilt, int64(built))
	}
}
