package dynamo

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// multiTailLoop builds a loop head with two roughly equal tails: the
// structural situation where the two schemes' fragment-exit handling
// diverges (NET treats exit targets as new heads and caches secondary
// fragments; path-profile-based selection cannot profile mid-path
// suffixes).
func multiTailLoop(n int64) *prog.Program {
	b := prog.NewBuilder("multitail")
	b.SetMemSize(64)
	b.SetMem(16, 0)
	b.SetMem(17, 10)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.RemI(1, 0, 2)
	m.AddI(1, 1, 16)
	m.Load(2, 1, 0) // alternates 0, 10
	m.BrI(isa.Lt, 2, 5, "even")
	m.AddI(3, 3, 1)
	m.AddI(3, 3, 2)
	m.Jmp("join")
	m.Label("even")
	m.AddI(4, 4, 1)
	m.AddI(4, 4, 2)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Halt()
	return b.MustBuild()
}

// TestNETCoversBothTails: with two alternating tails, NET's exit-stub
// secondary selection caches both sides and nearly all instructions run
// from the fragment cache.
func TestNETCoversBothTails(t *testing.T) {
	res, err := New(multiTailLoop(50_000), DefaultConfig(SchemeNET, 20)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedFraction() < 0.95 {
		t.Errorf("NET cached fraction = %.3f, want >= 0.95 (secondary traces cover the other tail)", res.CachedFraction())
	}
	if res.Fragments < 2 {
		t.Errorf("fragments = %d, want >= 2 (one per tail region)", res.Fragments)
	}
}

// TestPPSuffixStaysInterpreted: path-profile-based selection caches one
// tail per head address; the alternating other tail diverges out of the
// fragment every second iteration and its suffix stays in the interpreter,
// uncacheable — the structural half of the paper's Figure 5 result.
func TestPPSuffixStaysInterpreted(t *testing.T) {
	cfg := DefaultConfig(SchemePathProfile, 20)
	cfg.BailoutAfter = 0
	res, err := New(multiTailLoop(50_000), cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(multiTailLoop(50_000), DefaultConfig(SchemeNET, 20)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedFraction() >= net.CachedFraction() {
		t.Errorf("PP cached %.3f must trail NET's %.3f on a multi-tail loop",
			res.CachedFraction(), net.CachedFraction())
	}
	// Roughly half the iterations diverge; a material share of instructions
	// must remain interpreted under PP.
	if res.CachedFraction() > 0.85 {
		t.Errorf("PP cached fraction = %.3f, expected a visible interpreter residue", res.CachedFraction())
	}
	if res.Speedup() >= net.Speedup() {
		t.Errorf("PP speedup %.3f must trail NET %.3f", res.Speedup(), net.Speedup())
	}
}

// TestPPChargesProfilingWork: the path-profile scheme must charge
// per-branch and per-path profiling cycles while interpreting; NET charges
// only head counters.
func TestPPChargesProfilingWork(t *testing.T) {
	cfgPP := DefaultConfig(SchemePathProfile, 1_000_000) // never predicts: pure profiling
	cfgPP.BailoutAfter = 0
	pp, err := New(multiTailLoop(20_000), cfgPP).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfgNET := DefaultConfig(SchemeNET, 1_000_000)
	cfgNET.BailoutAfter = 0
	net, err := New(multiTailLoop(20_000), cfgNET).Run()
	if err != nil {
		t.Fatal(err)
	}
	if pp.Fragments != 0 || net.Fragments != 0 {
		t.Fatal("an astronomically long delay must prevent any selection")
	}
	if pp.ProfileCycles <= net.ProfileCycles {
		t.Errorf("PP profiling cycles %.0f must exceed NET's %.0f (per-branch + per-path vs per-head)",
			pp.ProfileCycles, net.ProfileCycles)
	}
	// Both interpret everything.
	if pp.InterpInstrs != pp.Steps || net.InterpInstrs != net.Steps {
		t.Error("with no fragments, every instruction is interpreted")
	}
}
