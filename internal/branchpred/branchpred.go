// Package branchpred implements the hardware branch prediction schemes the
// paper's related-work section situates NET against: bimodal two-bit
// counters (McFarling/Hennessy), gshare and two-level local-history
// predictors (Yeh/Patt), and an always-taken strawman.
//
// The paper's argument (Sections 1 and 7): hardware predictors capture
// branch correlation well, but they are not architecturally visible — a
// dynamic optimizer cannot read them — and their notion of a branch may
// not match the software's virtual branches. This package lets the
// repository *measure* the first half of that story: how predictable the
// workloads' branches are for classic hardware schemes, and (together with
// the tracecache package) how hardware-built traces compare with NET's
// software-selected paths.
package branchpred

import (
	"fmt"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// Predictor is a dynamic direction predictor for conditional branches.
type Predictor interface {
	// Name identifies the scheme.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc int) bool
	// Update trains the predictor with the actual outcome.
	Update(pc int, taken bool)
	// Reset clears all state.
	Reset()
}

// counter2 is a saturating two-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// AlwaysTaken is the static strawman (backward-taken/forward-not-taken
// variants need target knowledge; plain always-taken suffices as a floor).
type AlwaysTaken struct{}

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// Predict implements Predictor.
func (AlwaysTaken) Predict(int) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(int, bool) {}

// Reset implements Predictor.
func (AlwaysTaken) Reset() {}

// Bimodal is a table of two-bit counters indexed by branch address.
type Bimodal struct {
	mask  uint32
	table []counter2
}

// NewBimodal creates a bimodal predictor with 2^bits entries, initialized
// weakly taken.
func NewBimodal(bits int) *Bimodal {
	b := &Bimodal{mask: uint32(1)<<bits - 1, table: make([]counter2, 1<<bits)}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

func (b *Bimodal) idx(pc int) uint32 { return uint32(pc) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc int) bool { return b.table[b.idx(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc int, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2 // weakly taken
	}
}

// GShare is the global-history scheme: the pattern table is indexed by the
// branch address XORed with a global outcome history register.
type GShare struct {
	bits    int
	mask    uint32
	history uint32
	table   []counter2
}

// NewGShare creates a gshare predictor with 2^bits entries and a bits-wide
// global history register.
func NewGShare(bits int) *GShare {
	g := &GShare{bits: bits, mask: uint32(1)<<bits - 1, table: make([]counter2, 1<<bits)}
	g.Reset()
	return g
}

// Name implements Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare-%d", len(g.table)) }

func (g *GShare) idx(pc int) uint32 { return (uint32(pc) ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *GShare) Predict(pc int) bool { return g.table[g.idx(pc)].taken() }

// Update implements Predictor.
func (g *GShare) Update(pc int, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= g.mask
}

// Reset implements Predictor.
func (g *GShare) Reset() {
	g.history = 0
	for i := range g.table {
		g.table[i] = 2
	}
}

// TwoLevel is the Yeh/Patt PAg-style two-level adaptive predictor: a
// per-branch history register selects an entry in a shared pattern table.
type TwoLevel struct {
	histBits  int
	histMask  uint32
	tableMask uint32
	histories map[int]uint32
	table     []counter2
}

// NewTwoLevel creates a two-level predictor with histBits of per-branch
// history and a 2^histBits-entry pattern table.
func NewTwoLevel(histBits int) *TwoLevel {
	t := &TwoLevel{
		histBits:  histBits,
		histMask:  uint32(1)<<histBits - 1,
		tableMask: uint32(1)<<histBits - 1,
		histories: make(map[int]uint32),
		table:     make([]counter2, 1<<histBits),
	}
	t.Reset()
	return t
}

// Name implements Predictor.
func (t *TwoLevel) Name() string { return fmt.Sprintf("twolevel-%d", t.histBits) }

// Predict implements Predictor.
func (t *TwoLevel) Predict(pc int) bool {
	return t.table[t.histories[pc]&t.tableMask].taken()
}

// Update implements Predictor.
func (t *TwoLevel) Update(pc int, taken bool) {
	h := t.histories[pc]
	i := h & t.tableMask
	t.table[i] = t.table[i].update(taken)
	h <<= 1
	if taken {
		h |= 1
	}
	t.histories[pc] = h & t.histMask
}

// Reset implements Predictor.
func (t *TwoLevel) Reset() {
	t.histories = make(map[int]uint32)
	for i := range t.table {
		t.table[i] = 2
	}
}

// Result reports a predictor's accuracy over one run.
type Result struct {
	Scheme   string
	Branches int64 // conditional branch executions
	Mispred  int64
}

// Accuracy returns the correct-prediction rate in percent.
func (r Result) Accuracy() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 100 * (1 - float64(r.Mispred)/float64(r.Branches))
}

// Measure runs the program and measures the predictor on every conditional
// branch execution.
func Measure(p *prog.Program, pred Predictor, maxSteps int64) (Result, error) {
	res := Result{Scheme: pred.Name()}
	m := vm.New(p)
	m.SetListener(func(ev vm.BranchEvent) {
		if ev.Kind != isa.KindCond {
			return
		}
		res.Branches++
		if pred.Predict(ev.PC) != ev.Taken {
			res.Mispred++
		}
		pred.Update(ev.PC, ev.Taken)
	})
	if err := m.Run(maxSteps); err != nil && err != vm.ErrStepLimit {
		return res, err
	}
	return res, nil
}

// Compile-time interface checks.
var (
	_ Predictor = AlwaysTaken{}
	_ Predictor = (*Bimodal)(nil)
	_ Predictor = (*GShare)(nil)
	_ Predictor = (*TwoLevel)(nil)
)
