package branchpred

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/randprog"
	"netpath/internal/workload"
)

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 5; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter underflowed to %d", c)
	}
	for i := 0; i < 5; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d after saturating taken, want 3", c)
	}
	if !c.taken() {
		t.Error("saturated counter must predict taken")
	}
	c = c.update(false)
	if !c.taken() {
		t.Error("3→2 must still predict taken (hysteresis)")
	}
	c = c.update(false)
	if c.taken() {
		t.Error("2→1 must predict not-taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	// Train one branch 100% taken; must converge immediately.
	for i := 0; i < 10; i++ {
		b.Update(100, true)
	}
	if !b.Predict(100) {
		t.Error("bimodal failed to learn an always-taken branch")
	}
	for i := 0; i < 10; i++ {
		b.Update(100, false)
	}
	if b.Predict(100) {
		t.Error("bimodal failed to relearn an always-not-taken branch")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(2) // 4 entries: addresses 4 apart alias
	for i := 0; i < 8; i++ {
		b.Update(0, true)
	}
	if !b.Predict(4) {
		t.Error("aliased addresses must share counters in a tiny table")
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	// A strictly alternating branch defeats bimodal but is perfectly
	// predictable from one bit of history.
	g := NewGShare(12)
	b := NewBimodal(12)
	var gm, bm int
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken
		if g.Predict(77) != taken {
			gm++
		}
		g.Update(77, taken)
		if b.Predict(77) != taken {
			bm++
		}
		b.Update(77, taken)
	}
	if gm > 100 {
		t.Errorf("gshare mispredictions on alternation = %d, want < 100 after warmup", gm)
	}
	if bm < 900 {
		t.Errorf("bimodal mispredictions on alternation = %d, want ~half", bm)
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	// Period-3 pattern TTN: per-branch history captures it exactly.
	tl := NewTwoLevel(8)
	var miss int
	for i := 0; i < 3000; i++ {
		taken := i%3 != 2
		if tl.Predict(55) != taken {
			miss++
		}
		tl.Update(55, taken)
	}
	if miss > 150 {
		t.Errorf("two-level mispredictions on TTN pattern = %d, want < 150", miss)
	}
}

func TestResetClearsState(t *testing.T) {
	preds := []Predictor{NewBimodal(8), NewGShare(8), NewTwoLevel(8)}
	for _, p := range preds {
		for i := 0; i < 50; i++ {
			p.Update(9, false)
		}
		if p.Predict(9) {
			t.Fatalf("%s: training failed", p.Name())
		}
		p.Reset()
		if !p.Predict(9) {
			t.Errorf("%s: Reset must restore the weakly-taken initial state", p.Name())
		}
	}
}

func biasedLoop(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("bp")
	b.SetMemSize(32)
	// The body branch is 90% NOT-taken, so the always-taken strawman
	// (which nails the latch) loses visibly to learned predictors.
	for i := 0; i < 10; i++ {
		v := int64(10)
		if i >= 9 {
			v = 0
		}
		b.SetMem(16+i, v)
	}
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.RemI(1, 0, 10)
	m.AddI(1, 1, 16)
	m.Load(2, 1, 0)
	m.BrI(isa.Lt, 2, 5, "hot")
	m.AddI(3, 3, 1)
	m.Jmp("join")
	m.Label("hot")
	m.AddI(4, 4, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, 20_000, "loop")
	m.Halt()
	return b.MustBuild()
}

func TestMeasureOnProgram(t *testing.T) {
	p := biasedLoop(t)
	res, err := Measure(p, NewBimodal(12), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two conditional branches per iteration.
	if res.Branches != 40_000 {
		t.Errorf("branches = %d, want 40000", res.Branches)
	}
	// The body branch is 90% taken and the latch nearly always taken:
	// bimodal should exceed 90% overall.
	if res.Accuracy() < 90 {
		t.Errorf("bimodal accuracy = %.1f, want >= 90", res.Accuracy())
	}
	// The strawman floor: always-taken gets the latch plus the hot arm.
	at, err := Measure(p, AlwaysTaken{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if at.Accuracy() >= res.Accuracy() {
		t.Errorf("always-taken (%.1f) must not beat bimodal (%.1f)", at.Accuracy(), res.Accuracy())
	}
}

func TestMeasureOnWorkload(t *testing.T) {
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() Predictor{
		func() Predictor { return NewBimodal(14) },
		func() Predictor { return NewGShare(14) },
		func() Predictor { return NewTwoLevel(12) },
	} {
		res, err := Measure(p, mk(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Branches == 0 {
			t.Fatal("no branches measured")
		}
		// compress branches are heavily biased: any real predictor should
		// be well above coin-flip.
		if res.Accuracy() < 75 {
			t.Errorf("%s accuracy = %.1f on compress, want >= 75", res.Scheme, res.Accuracy())
		}
	}
}

func TestMeasureDeterministic(t *testing.T) {
	p := randprog.MustGenerate(3, randprog.Options{})
	r1, err := Measure(p, NewGShare(12), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Measure(p, NewGShare(12), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("measurement not deterministic")
	}
}
