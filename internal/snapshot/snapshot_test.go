package snapshot

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// genSnapshot builds a random snapshot in a fixed merge group so any pair is
// mergeable. Overlapping address/key spaces are deliberate: merges must
// exercise the join rules, not just concatenate disjoint sets.
func genSnapshot(rng *rand.Rand) *Snapshot {
	s := &Snapshot{
		Program:     "prog",
		Fingerprint: 0xfeedface,
		Scheme:      "net",
		Tau:         int64(rng.Intn(100)),
		Flow:        int64(rng.Intn(10000)),
		Steps:       int64(rng.Intn(100000)),
		// Small value ranges force provenance ties so the lexicographic
		// tie-break is exercised by the property tests too.
		CapturedUnixNS: int64(rng.Intn(3)),
		TraceID:        [3]string{"", "aa", "bb"}[rng.Intn(3)],
	}
	for i, n := 0, rng.Intn(20); i < n; i++ {
		s.Heads = append(s.Heads, HeadCount{Addr: rng.Intn(16), Count: int64(rng.Intn(1000))})
	}
	for i, n := 0, rng.Intn(10); i < n; i++ {
		t := Trace{Start: rng.Intn(8), Flow: int64(rng.Intn(500)), Tier2: rng.Intn(2) == 0}
		for j, m := 0, 1+rng.Intn(5); j < m; j++ {
			t.Steps = append(t.Steps, Step{PC: rng.Intn(64), Next: rng.Intn(64)})
		}
		s.Traces = append(s.Traces, t)
	}
	for i, n := 0, rng.Intn(12); i < n; i++ {
		key := make([]byte, 1+rng.Intn(4))
		for j := range key {
			key[j] = byte(rng.Intn(4))
		}
		s.Paths = append(s.Paths, PathCount{Key: key, Start: rng.Intn(8), Branches: rng.Intn(8), Count: int64(rng.Intn(1000))})
	}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		s.Blacklist = append(s.Blacklist, BlackEntry{Addr: rng.Intn(8), Aborts: 1 + rng.Intn(10)})
	}
	return s
}

func mustMerge(t *testing.T, a, b *Snapshot) *Snapshot {
	t.Helper()
	out, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return out
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := genSnapshot(rng), genSnapshot(rng)
		ab, ba := mustMerge(t, a, b), mustMerge(t, b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("iter %d: merge not commutative:\nab=%+v\nba=%+v", i, ab, ba)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b, c := genSnapshot(rng), genSnapshot(rng), genSnapshot(rng)
		left := mustMerge(t, mustMerge(t, a, b), c)
		right := mustMerge(t, a, mustMerge(t, b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("iter %d: merge not associative:\n(ab)c=%+v\na(bc)=%+v", i, left, right)
		}
	}
}

func TestMergeIdempotentSelfMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := genSnapshot(rng)
		aa := mustMerge(t, a, a)
		// Self-merge must equal the canonical form of a: re-uploading the
		// same snapshot is a no-op, not a double count.
		want := mustMerge(t, a, &Snapshot{Program: a.Program, Fingerprint: a.Fingerprint, Scheme: a.Scheme})
		if !reflect.DeepEqual(aa, want) {
			t.Fatalf("iter %d: self-merge changed the snapshot:\na+a=%+v\nwant=%+v", i, aa, want)
		}
		// And merging the merge back in is also a no-op.
		aaa := mustMerge(t, aa, a)
		if !reflect.DeepEqual(aa, aaa) {
			t.Fatalf("iter %d: (a+a)+a != a+a", i)
		}
	}
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := genSnapshot(rng), genSnapshot(rng)
	ac, bc := *a, *b
	ac.Heads = append([]HeadCount(nil), a.Heads...)
	ac.Traces = append([]Trace(nil), a.Traces...)
	ac.Paths = append([]PathCount(nil), a.Paths...)
	ac.Blacklist = append([]BlackEntry(nil), a.Blacklist...)
	bc.Heads = append([]HeadCount(nil), b.Heads...)
	bc.Traces = append([]Trace(nil), b.Traces...)
	bc.Paths = append([]PathCount(nil), b.Paths...)
	bc.Blacklist = append([]BlackEntry(nil), b.Blacklist...)
	mustMerge(t, a, b)
	if !reflect.DeepEqual(a.Heads, ac.Heads) || !reflect.DeepEqual(a.Traces, ac.Traces) ||
		!reflect.DeepEqual(a.Paths, ac.Paths) || !reflect.DeepEqual(a.Blacklist, ac.Blacklist) {
		t.Fatal("Merge mutated its first argument")
	}
	if !reflect.DeepEqual(b.Heads, bc.Heads) || !reflect.DeepEqual(b.Traces, bc.Traces) {
		t.Fatal("Merge mutated its second argument")
	}
}

func TestMergeGroupMismatch(t *testing.T) {
	a := &Snapshot{Program: "p", Fingerprint: 1, Scheme: "net"}
	b := &Snapshot{Program: "p", Fingerprint: 2, Scheme: "net"}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merge across fingerprints should fail")
	} else {
		var me *MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("want MismatchError, got %T: %v", err, err)
		}
	}
	c := &Snapshot{Program: "p", Fingerprint: 1, Scheme: "net", Tenant: "other"}
	if _, err := Merge(a, c); err == nil {
		t.Fatal("merge across tenants should fail")
	}
}

func TestMergeTraceSurvivor(t *testing.T) {
	base := Snapshot{Program: "p", Fingerprint: 1, Scheme: "net"}
	a, b := base, base
	a.Traces = []Trace{{Start: 4, Flow: 10, Steps: []Step{{PC: 4, Next: 5}}}}
	b.Traces = []Trace{{Start: 4, Flow: 90, Tier2: true, Steps: []Step{{PC: 4, Next: 6}}}}
	out := mustMerge(t, &a, &b)
	if len(out.Traces) != 1 || out.Traces[0].Flow != 90 || !out.Traces[0].Tier2 {
		t.Fatalf("higher-flow trace should survive: %+v", out.Traces)
	}
	if out.Traces[0].Steps[0].Next != 6 {
		t.Fatalf("survivor kept loser's steps: %+v", out.Traces[0])
	}
	// Identical steps join flow by MAX and OR the tier-2 bit.
	b.Traces[0].Steps = []Step{{PC: 4, Next: 5}}
	out = mustMerge(t, &a, &b)
	if len(out.Traces) != 1 || out.Traces[0].Flow != 90 || !out.Traces[0].Tier2 {
		t.Fatalf("identical-trace join wrong: %+v", out.Traces)
	}
}

func TestClamp(t *testing.T) {
	s := &Snapshot{Program: "p", Fingerprint: 1, Scheme: "net"}
	for i := 0; i < 10; i++ {
		s.Heads = append(s.Heads, HeadCount{Addr: i, Count: int64(i)})
		s.Traces = append(s.Traces, Trace{Start: i, Flow: int64(i), Steps: []Step{{PC: i, Next: i + 1}, {PC: i + 1, Next: i}}})
		s.Paths = append(s.Paths, PathCount{Key: []byte{byte(i)}, Start: i, Count: int64(i)})
		s.Blacklist = append(s.Blacklist, BlackEntry{Addr: i, Aborts: i + 1})
	}
	s.Traces = append(s.Traces, Trace{Start: 99, Flow: 1000, Steps: make([]Step, 3)}) // over MaxTraceSteps below
	s.Clamp(Limits{MaxHeads: 3, MaxTraces: 4, MaxTraceSteps: 2, MaxPaths: 5, MaxPathKey: 1, MaxBlacklist: 2})
	if len(s.Heads) != 3 || s.Heads[0].Addr != 7 {
		t.Fatalf("heads clamp wrong: %+v", s.Heads)
	}
	if len(s.Traces) != 4 {
		t.Fatalf("traces clamp wrong: %+v", s.Traces)
	}
	for _, tr := range s.Traces {
		if tr.Start == 99 {
			t.Fatal("over-length trace survived clamp")
		}
		if tr.Flow < 6 {
			t.Fatalf("clamp kept a light trace over a heavy one: %+v", s.Traces)
		}
	}
	if len(s.Paths) != 5 || len(s.Blacklist) != 2 {
		t.Fatalf("paths/blacklist clamp wrong: %d %d", len(s.Paths), len(s.Blacklist))
	}
	// Canonical order after clamping.
	for i := 1; i < len(s.Heads); i++ {
		if s.Heads[i-1].Addr > s.Heads[i].Addr {
			t.Fatal("heads not canonical after clamp")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFile(genSnapshot(rng), genSnapshot(rng))
	f.Snapshots[1].Tenant = "" // same group is fine in one file
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\nin=%+v\nout=%+v", f, got)
	}
}

func TestDecodeRejects(t *testing.T) {
	lim := Limits{MaxHeads: 2, MaxTraces: 2, MaxTraceSteps: 2, MaxPaths: 2, MaxPathKey: 2, MaxBlacklist: 2, MaxSnapshots: 1, MaxBytes: 1 << 20}
	cases := []struct {
		name string
		in   string
		want any // *FormatError, *LimitError, or ErrTooLarge
	}{
		{"bad schema", `{"schema":"netpath-snap/v0","snapshots":[]}`, &FormatError{}},
		{"not json", `{{{`, &FormatError{}},
		{"null snapshot", `{"schema":"netpath-snap/v1","snapshots":[null]}`, &FormatError{}},
		{"too many snapshots", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net"},{"program":"p","scheme":"net"}]}`, &LimitError{}},
		{"empty program", `{"schema":"netpath-snap/v1","snapshots":[{"program":"","scheme":"net"}]}`, &FormatError{}},
		{"negative head", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","heads":[{"addr":-1,"count":1}]}]}`, &FormatError{}},
		{"head count overflow", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","heads":[{"addr":1,"count":9007199254740993000}]}]}`, &FormatError{}},
		{"too many heads", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","heads":[{"addr":1,"count":1},{"addr":2,"count":1},{"addr":3,"count":1}]}]}`, &LimitError{}},
		{"empty trace", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","traces":[{"start":1,"flow":1,"steps":[]}]}]}`, &FormatError{}},
		{"trace too long", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","traces":[{"start":1,"flow":1,"steps":[{"pc":1,"next":2},{"pc":2,"next":3},{"pc":3,"next":1}]}]}]}`, &LimitError{}},
		{"empty path key", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","paths":[{"key":"","start":1,"branches":1,"count":1}]}]}`, &FormatError{}},
		{"oversized path key", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","paths":[{"key":"AAAAAA==","start":1,"branches":1,"count":1}]}]}`, &LimitError{}},
		{"negative blacklist aborts", `{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","blacklist":[{"addr":1,"aborts":-2}]}]}`, &FormatError{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.in), lim)
			if err == nil {
				t.Fatal("decode should have failed")
			}
			switch tc.want.(type) {
			case *FormatError:
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("want FormatError, got %T: %v", err, err)
				}
			case *LimitError:
				var le *LimitError
				if !errors.As(err, &le) {
					t.Fatalf("want LimitError, got %T: %v", err, err)
				}
			}
		})
	}
}

func TestDecodeTooLarge(t *testing.T) {
	big := `{"schema":"netpath-snap/v1","snapshots":[{"program":"` + strings.Repeat("x", 4096) + `","scheme":"net"}]}`
	_, err := Decode(strings.NewReader(big), Limits{MaxBytes: 128})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := NewFile(genSnapshot(rng))
	path := t.TempDir() + "/snap.json"
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatal("file round trip mismatch")
	}
}

// FuzzSnapshotDecode asserts the decoder never panics and never allocates
// beyond its byte budget, whatever the input. Runs in CI's fuzz smoke.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte(`{"schema":"netpath-snap/v1","snapshots":[]}`))
	f.Add([]byte(`{"schema":"netpath-snap/v1","snapshots":[{"program":"p","scheme":"net","heads":[{"addr":1,"count":5}]}]}`))
	f.Add([]byte(`{"schema":"netpath-snap/v0"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	lim := Limits{MaxHeads: 64, MaxTraces: 16, MaxTraceSteps: 8, MaxPaths: 64, MaxPathKey: 32, MaxBlacklist: 16, MaxSnapshots: 4, MaxBytes: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		// Anything that decodes must satisfy the limits it was decoded
		// under, re-encode cleanly, and merge with itself without error.
		for _, s := range file.Snapshots {
			if err := s.Validate(lim); err != nil {
				t.Fatalf("decoded snapshot fails its own limits: %v", err)
			}
			if _, err := Merge(s, s); err != nil {
				t.Fatalf("self-merge of valid snapshot failed: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, file); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// TestMergeProvenance pins the provenance join: the newest capture wins and
// equal timestamps break lexicographically on trace ID, so a fleet merge
// reports the newest contributing capture regardless of fold order.
func TestMergeProvenance(t *testing.T) {
	base := Snapshot{Program: "p", Fingerprint: 1, Scheme: "net"}
	old, newer := base, base
	old.CapturedUnixNS, old.TraceID = 100, "ffffffffffffffffffffffffffffffff"
	newer.CapturedUnixNS, newer.TraceID = 200, "00000000000000000000000000000001"
	out := mustMerge(t, &old, &newer)
	if out.CapturedUnixNS != 200 || out.TraceID != newer.TraceID {
		t.Fatalf("newest capture should win: %+v", out)
	}
	tied := base
	tied.CapturedUnixNS, tied.TraceID = 100, "00000000000000000000000000000002"
	out = mustMerge(t, &old, &tied)
	if out.TraceID != old.TraceID {
		t.Fatalf("tie should break to the larger trace ID: %+v", out)
	}
}
