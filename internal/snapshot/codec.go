package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// FormatError reports a structurally invalid snapshot document.
type FormatError struct {
	Field  string // which part of the document ("schema", "traces[3].steps", ...)
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("snapshot: invalid %s: %s", e.Field, e.Reason)
}

// LimitError reports a document that is well-formed but exceeds the decode
// Limits — the defense against a snapshot sized to blow out the restoring
// process's tables.
type LimitError struct {
	Field string
	N     int
	Max   int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("snapshot: %s count %d exceeds limit %d", e.Field, e.N, e.Max)
}

// MismatchError reports an attempt to merge snapshots from different merge
// groups (tenant, program fingerprint, scheme).
type MismatchError struct {
	A, B Key
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("snapshot: merge group mismatch: %v vs %v", e.A, e.B)
}

// ErrTooLarge is returned when the encoded document exceeds Limits.MaxBytes.
var ErrTooLarge = errors.New("snapshot: encoded file exceeds size limit")

// Encode writes f as canonical indented JSON. Sections are canonicalized
// first so equal states produce byte-identical files.
func Encode(w io.Writer, f *File) error {
	if f.Schema == "" {
		f.Schema = Schema
	}
	for _, s := range f.Snapshots {
		s.Canonicalize()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a netpath-snap/v1 document, enforcing lim strictly: wrong
// schema, malformed sections, negative or saturating-overflow counters, and
// any table larger than the limit all fail with typed errors. The reader is
// size-capped before JSON ever sees it, so a hostile input cannot OOM the
// decoder.
func Decode(r io.Reader, lim Limits) (*File, error) {
	lim = lim.withDefaults()
	// +1 so we can distinguish "exactly MaxBytes" from "truncated by us".
	lr := &io.LimitedReader{R: r, N: lim.MaxBytes + 1}
	var f File
	dec := json.NewDecoder(lr)
	if err := dec.Decode(&f); err != nil {
		if lr.N <= 0 {
			return nil, ErrTooLarge
		}
		return nil, &FormatError{Field: "json", Reason: err.Error()}
	}
	if lr.N <= 0 {
		return nil, ErrTooLarge
	}
	if f.Schema != Schema {
		return nil, &FormatError{Field: "schema", Reason: "want " + Schema + ", got " + f.Schema}
	}
	if len(f.Snapshots) > lim.MaxSnapshots {
		return nil, &LimitError{Field: "snapshots", N: len(f.Snapshots), Max: lim.MaxSnapshots}
	}
	for i, s := range f.Snapshots {
		if s == nil {
			return nil, &FormatError{Field: "snapshots", Reason: "null snapshot entry"}
		}
		if err := s.Validate(lim); err != nil {
			_ = i
			return nil, err
		}
	}
	return &f, nil
}

// Validate checks one snapshot against lim. It is called by Decode and by
// import paths that receive snapshots from memory rather than the wire.
func (s *Snapshot) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if s.Program == "" {
		return &FormatError{Field: "program", Reason: "empty"}
	}
	if s.Scheme == "" {
		return &FormatError{Field: "scheme", Reason: "empty"}
	}
	if s.Tau < 0 || s.Tau > counterMax {
		return &FormatError{Field: "tau", Reason: "out of range"}
	}
	if s.Flow < 0 || s.Flow > counterMax {
		return &FormatError{Field: "flow", Reason: "out of range"}
	}
	if s.Steps < 0 || s.Steps > counterMax {
		return &FormatError{Field: "steps", Reason: "out of range"}
	}
	if len(s.Heads) > lim.MaxHeads {
		return &LimitError{Field: "heads", N: len(s.Heads), Max: lim.MaxHeads}
	}
	for _, h := range s.Heads {
		if h.Addr < 0 {
			return &FormatError{Field: "heads", Reason: "negative address"}
		}
		if h.Count < 0 || h.Count > counterMax {
			return &FormatError{Field: "heads", Reason: "count out of range"}
		}
	}
	if len(s.Traces) > lim.MaxTraces {
		return &LimitError{Field: "traces", N: len(s.Traces), Max: lim.MaxTraces}
	}
	for _, t := range s.Traces {
		if t.Start < 0 {
			return &FormatError{Field: "traces", Reason: "negative start"}
		}
		if t.Flow < 0 || t.Flow > counterMax {
			return &FormatError{Field: "traces", Reason: "flow out of range"}
		}
		if len(t.Steps) == 0 {
			return &FormatError{Field: "traces", Reason: "empty trace"}
		}
		if len(t.Steps) > lim.MaxTraceSteps {
			return &LimitError{Field: "trace steps", N: len(t.Steps), Max: lim.MaxTraceSteps}
		}
		for _, st := range t.Steps {
			if st.PC < 0 || st.Next < 0 {
				return &FormatError{Field: "traces", Reason: "negative step address"}
			}
		}
	}
	if len(s.Paths) > lim.MaxPaths {
		return &LimitError{Field: "paths", N: len(s.Paths), Max: lim.MaxPaths}
	}
	for _, p := range s.Paths {
		if len(p.Key) == 0 {
			return &FormatError{Field: "paths", Reason: "empty key"}
		}
		if len(p.Key) > lim.MaxPathKey {
			return &LimitError{Field: "path key", N: len(p.Key), Max: lim.MaxPathKey}
		}
		if p.Start < 0 || p.Branches < 0 {
			return &FormatError{Field: "paths", Reason: "negative field"}
		}
		if p.Count < 0 || p.Count > counterMax {
			return &FormatError{Field: "paths", Reason: "count out of range"}
		}
	}
	if len(s.Blacklist) > lim.MaxBlacklist {
		return &LimitError{Field: "blacklist", N: len(s.Blacklist), Max: lim.MaxBlacklist}
	}
	for _, e := range s.Blacklist {
		if e.Addr < 0 {
			return &FormatError{Field: "blacklist", Reason: "negative address"}
		}
		if e.Aborts < 0 || e.Aborts > 1<<30 {
			return &FormatError{Field: "blacklist", Reason: "aborts out of range"}
		}
	}
	return nil
}

// WriteFile encodes f to path atomically (temp file + rename) so a crash
// mid-save never leaves a torn snapshot for the next boot to trip over.
func WriteFile(path string, f *File) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, f); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile decodes the snapshot file at path under lim.
func ReadFile(path string, lim Limits) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Decode(fh, lim)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}
