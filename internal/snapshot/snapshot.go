// Package snapshot defines the persistent profile format (netpath-snap/v1):
// NET head counters, selected traces, path-profile counts, blacklist state,
// and tier-2 promotion decisions serialized from a live dynamo.System so a
// later process — or a whole fleet of them — can warm-start prediction
// instead of re-paying the interpret-and-profile phase.
//
// Merging is a join, not a sum: every counter merges by MAX, every head
// keeps its highest-flow trace, and blacklists union with MAX aborts. Join
// semantics make Merge commutative, associative, and idempotent under
// self-merge, which is what fleet aggregation needs — re-uploading the same
// snapshot (retries, overlapping collection windows, fan-in trees that see a
// leaf twice) is a no-op rather than double-counting. Flow weighting lives
// in the survivor rules: when two runs disagree about a head's trace, the
// one that carried more completions wins.
//
// Capacity is enforced separately from merging: Clamp deterministically
// trims a snapshot to a Limits budget (top-N by weight), so imports respect
// the CLOCK table bounds of the restoring System without breaking the merge
// algebra (a capacity-aware merge would not be associative).
package snapshot

import "sort"

// Schema identifies the wire format; bump on incompatible changes.
const Schema = "netpath-snap/v1"

// counterMax mirrors the dynamo head-counter saturation point: no count in a
// snapshot may exceed it, so merged counters can never overflow.
const counterMax = int64(1) << 50

// File is the on-disk document: one or more snapshots under a single schema
// header. cmd/dynamo writes one; netpathd writes one per (tenant, program).
type File struct {
	Schema    string      `json:"schema"`
	Snapshots []*Snapshot `json:"snapshots"`
}

// NewFile wraps snapshots in a schema-stamped document.
func NewFile(snaps ...*Snapshot) *File {
	return &File{Schema: Schema, Snapshots: snaps}
}

// Snapshot is one program's persisted profile.
type Snapshot struct {
	// Tenant scopes the profile in multi-tenant deployments ("" for the
	// single-tenant CLI). A restoring server must only apply a snapshot to
	// the tenant it was collected from.
	Tenant string `json:"tenant,omitempty"`
	// Program and Fingerprint identify the guest; Restore refuses a
	// snapshot whose fingerprint does not match the loaded program, so a
	// stale profile can never seed traces into the wrong binary.
	Program     string `json:"program"`
	Fingerprint uint64 `json:"fingerprint"`
	// Scheme is the prediction scheme the profile was collected under
	// (dynamo.Scheme.String()).
	Scheme string `json:"scheme"`
	// Tau is the prediction delay in force during collection.
	Tau int64 `json:"tau"`
	// Flow is the number of path events observed; Steps the guest steps.
	// Both merge by MAX (join semantics), so they read as "the deepest
	// single run folded in", not a fleet total.
	Flow  int64 `json:"flow"`
	Steps int64 `json:"steps"`

	// CapturedUnixNS and TraceID are provenance: when the profile was
	// captured and, when the collecting run was traced, the request trace it
	// belongs to — so a warm-start anomaly can be chased back through
	// /v1/trace/{id} to the run that produced the profile. They merge as a
	// single lexicographic MAX on (CapturedUnixNS, TraceID), which keeps the
	// merge algebra commutative, associative, and idempotent: a fleet merge
	// reports the newest contributing capture.
	CapturedUnixNS int64  `json:"captured_unix_ns,omitempty"`
	TraceID        string `json:"trace_id,omitempty"`

	Heads     []HeadCount  `json:"heads,omitempty"`
	Traces    []Trace      `json:"traces,omitempty"`
	Paths     []PathCount  `json:"paths,omitempty"`
	Blacklist []BlackEntry `json:"blacklist,omitempty"`
}

// HeadCount is one NET head counter.
type HeadCount struct {
	Addr  int   `json:"addr"`
	Count int64 `json:"count"`
}

// Trace is one selected trace: the instruction sequence recorded from a hot
// head, its observed completion flow, and whether the collecting run had
// promoted it to tier 2. Instruction words are not persisted — the restoring
// side re-derives them from the (fingerprint-verified) program text, so a
// snapshot cannot smuggle code.
type Trace struct {
	Start int    `json:"start"`
	Flow  int64  `json:"flow"`
	Tier2 bool   `json:"tier2,omitempty"`
	Steps []Step `json:"steps"`
}

// Step is one recorded trace step: the instruction address and its observed
// successor.
type Step struct {
	PC   int `json:"pc"`
	Next int `json:"next"`
}

// PathCount is one path-profile counter, keyed by the path's bit-tracing
// signature (binary; base64 on the wire).
type PathCount struct {
	Key      []byte `json:"key"`
	Start    int    `json:"start"`
	Branches int    `json:"branches"`
	Count    int64  `json:"count"`
}

// BlackEntry is one blacklisted head: a head whose recordings kept aborting.
// Persisting it keeps a fleet from re-learning a poisonous head in every
// process.
type BlackEntry struct {
	Addr   int `json:"addr"`
	Aborts int `json:"aborts"`
}

// Limits bounds what a decoded or imported snapshot may hold. The decode
// path enforces them strictly (typed errors); Clamp trims to them. The
// dynamo side derives a Limits from its table configuration so imports can
// never outsize the CLOCK tables.
type Limits struct {
	MaxHeads      int   // head-counter entries per snapshot
	MaxTraces     int   // traces per snapshot
	MaxTraceSteps int   // steps per trace
	MaxPaths      int   // path counters per snapshot
	MaxPathKey    int   // bytes per path signature key
	MaxBlacklist  int   // blacklist entries per snapshot
	MaxSnapshots  int   // snapshots per file
	MaxBytes      int64 // encoded file size
}

// DefaultLimits matches the dynamo DefaultConfig table capacities.
func DefaultLimits() Limits {
	return Limits{
		MaxHeads:      1 << 16,
		MaxTraces:     8192,
		MaxTraceSteps: 4096,
		MaxPaths:      1 << 18,
		MaxPathKey:    1024,
		MaxBlacklist:  4096,
		MaxSnapshots:  1024,
		MaxBytes:      64 << 20,
	}
}

// withDefaults fills zero fields so a partially-specified Limits stays safe.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxHeads <= 0 {
		l.MaxHeads = d.MaxHeads
	}
	if l.MaxTraces <= 0 {
		l.MaxTraces = d.MaxTraces
	}
	if l.MaxTraceSteps <= 0 {
		l.MaxTraceSteps = d.MaxTraceSteps
	}
	if l.MaxPaths <= 0 {
		l.MaxPaths = d.MaxPaths
	}
	if l.MaxPathKey <= 0 {
		l.MaxPathKey = d.MaxPathKey
	}
	if l.MaxBlacklist <= 0 {
		l.MaxBlacklist = d.MaxBlacklist
	}
	if l.MaxSnapshots <= 0 {
		l.MaxSnapshots = d.MaxSnapshots
	}
	if l.MaxBytes <= 0 {
		l.MaxBytes = d.MaxBytes
	}
	return l
}

// Key identifies the merge group a snapshot belongs to: merging across
// different tenants, programs, or schemes is a caller bug and Merge refuses
// it.
type Key struct {
	Tenant      string
	Fingerprint uint64
	Scheme      string
}

// GroupKey returns s's merge group.
func (s *Snapshot) GroupKey() Key {
	return Key{Tenant: s.Tenant, Fingerprint: s.Fingerprint, Scheme: s.Scheme}
}

// Canonicalize sorts every section into its canonical order (heads and
// blacklist by address, traces by start, paths by key) so equal snapshots
// compare equal byte-for-byte and encoded files diff cleanly.
func (s *Snapshot) Canonicalize() {
	sort.Slice(s.Heads, func(i, j int) bool { return s.Heads[i].Addr < s.Heads[j].Addr })
	sort.Slice(s.Traces, func(i, j int) bool { return s.Traces[i].Start < s.Traces[j].Start })
	sort.Slice(s.Paths, func(i, j int) bool { return compareKeys(s.Paths[i].Key, s.Paths[j].Key) < 0 })
	sort.Slice(s.Blacklist, func(i, j int) bool { return s.Blacklist[i].Addr < s.Blacklist[j].Addr })
}

func compareKeys(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func satAdd(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > counterMax {
		return counterMax
	}
	return v
}

// Merge joins a and b into a fresh snapshot (neither input is modified).
// Per-head counters, per-path counts, and blacklist aborts merge by MAX;
// each head keeps the trace with the greater flow (ties broken by longer
// trace, then byte order, so the survivor is deterministic); Flow, Steps,
// and Tau merge by MAX. The result is canonical. See the package comment
// for why join, not sum.
func Merge(a, b *Snapshot) (*Snapshot, error) {
	if a.GroupKey() != b.GroupKey() {
		return nil, &MismatchError{A: a.GroupKey(), B: b.GroupKey()}
	}
	out := &Snapshot{
		Tenant:         a.Tenant,
		Program:        a.Program,
		Fingerprint:    a.Fingerprint,
		Scheme:         a.Scheme,
		Tau:            maxI64(a.Tau, b.Tau),
		Flow:           maxI64(a.Flow, b.Flow),
		Steps:          maxI64(a.Steps, b.Steps),
		CapturedUnixNS: a.CapturedUnixNS,
		TraceID:        a.TraceID,
	}
	if b.CapturedUnixNS > out.CapturedUnixNS ||
		(b.CapturedUnixNS == out.CapturedUnixNS && b.TraceID > out.TraceID) {
		out.CapturedUnixNS, out.TraceID = b.CapturedUnixNS, b.TraceID
	}

	heads := map[int]int64{}
	for _, h := range a.Heads {
		heads[h.Addr] = maxI64(heads[h.Addr], satAdd(h.Count))
	}
	for _, h := range b.Heads {
		heads[h.Addr] = maxI64(heads[h.Addr], satAdd(h.Count))
	}
	for addr, n := range heads {
		out.Heads = append(out.Heads, HeadCount{Addr: addr, Count: n})
	}

	traces := map[int]Trace{}
	for _, t := range a.Traces {
		mergeTrace(traces, t)
	}
	for _, t := range b.Traces {
		mergeTrace(traces, t)
	}
	for _, t := range traces {
		out.Traces = append(out.Traces, t)
	}

	paths := map[string]PathCount{}
	for _, p := range a.Paths {
		mergePath(paths, p)
	}
	for _, p := range b.Paths {
		mergePath(paths, p)
	}
	for _, p := range paths {
		out.Paths = append(out.Paths, p)
	}

	black := map[int]int{}
	for _, e := range a.Blacklist {
		if e.Aborts > black[e.Addr] {
			black[e.Addr] = e.Aborts
		}
	}
	for _, e := range b.Blacklist {
		if e.Aborts > black[e.Addr] {
			black[e.Addr] = e.Aborts
		}
	}
	for addr, n := range black {
		out.Blacklist = append(out.Blacklist, BlackEntry{Addr: addr, Aborts: n})
	}

	out.Canonicalize()
	return out, nil
}

// MergeAll folds snaps left to right (associativity makes the order
// irrelevant to the result). At least one snapshot is required.
func MergeAll(snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, &FormatError{Field: "snapshots", Reason: "nothing to merge"}
	}
	acc := snaps[0]
	for _, s := range snaps[1:] {
		var err error
		if acc, err = Merge(acc, s); err != nil {
			return nil, err
		}
	}
	if acc == snaps[0] {
		// Single input: return a canonical copy so MergeAll never aliases
		// its argument.
		cp := *acc
		acc = &cp
		acc.Canonicalize()
	}
	return acc, nil
}

// mergeTrace joins t into the per-head survivor map. The survivor is the
// MAX under a total order on (flow, length, step bytes, tier-2 bit) — a pure
// max over a total order, which is exactly what makes Merge associative: the
// survivor of any merge tree is the argmax over all traces ever seen for the
// head, independent of grouping. The whole tuple survives, so the tier-2
// decision always rides the trace that earned it; between byte-identical
// traces with equal flow, the promoted one wins the tie-break.
func mergeTrace(m map[int]Trace, t Trace) {
	t.Flow = satAdd(t.Flow)
	cur, ok := m[t.Start]
	if !ok || traceLess(cur, t) {
		t.Steps = append([]Step(nil), t.Steps...)
		m[t.Start] = t
	}
}

// traceLess reports whether b beats a as the surviving trace for a head.
// It is a strict weak ordering over the full trace tuple; Tier2 last so two
// observations of the same trace resolve toward the one that was promoted.
func traceLess(a, b Trace) bool {
	if a.Flow != b.Flow {
		return a.Flow < b.Flow
	}
	if len(a.Steps) != len(b.Steps) {
		return len(a.Steps) < len(b.Steps)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			if a.Steps[i].PC != b.Steps[i].PC {
				return a.Steps[i].PC < b.Steps[i].PC
			}
			return a.Steps[i].Next < b.Steps[i].Next
		}
	}
	return !a.Tier2 && b.Tier2
}

// mergePath joins p into the per-key survivor map — same pure-max-under-
// total-order construction as mergeTrace. In well-formed data a key fully
// determines Start and Branches, but the order makes merging robust (and
// associative) even when inputs disagree.
func mergePath(m map[string]PathCount, p PathCount) {
	p.Count = satAdd(p.Count)
	k := string(p.Key)
	cur, ok := m[k]
	if !ok || pathLess(cur, p) {
		p.Key = append([]byte(nil), p.Key...)
		m[k] = p
	}
}

func pathLess(a, b PathCount) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Branches < b.Branches
}

// Clamp trims s in place to fit lim, keeping the heaviest entries: heads and
// paths by count, traces by flow, blacklist by aborts (ties broken by
// address or key, so the trim is deterministic). Traces longer than
// MaxTraceSteps are dropped whole — truncating a trace would fabricate a
// path boundary that was never observed. The result is canonical. Clamp is
// applied at import time, after merging, so the merge algebra stays exact.
func (s *Snapshot) Clamp(lim Limits) {
	lim = lim.withDefaults()
	if len(s.Heads) > lim.MaxHeads {
		sort.Slice(s.Heads, func(i, j int) bool {
			if s.Heads[i].Count != s.Heads[j].Count {
				return s.Heads[i].Count > s.Heads[j].Count
			}
			return s.Heads[i].Addr < s.Heads[j].Addr
		})
		s.Heads = s.Heads[:lim.MaxHeads]
	}
	kept := s.Traces[:0]
	for _, t := range s.Traces {
		if n := len(t.Steps); n > 0 && n <= lim.MaxTraceSteps {
			kept = append(kept, t)
		}
	}
	s.Traces = kept
	if len(s.Traces) > lim.MaxTraces {
		sort.Slice(s.Traces, func(i, j int) bool {
			if s.Traces[i].Flow != s.Traces[j].Flow {
				return s.Traces[i].Flow > s.Traces[j].Flow
			}
			return s.Traces[i].Start < s.Traces[j].Start
		})
		s.Traces = s.Traces[:lim.MaxTraces]
	}
	keptP := s.Paths[:0]
	for _, p := range s.Paths {
		if len(p.Key) <= lim.MaxPathKey {
			keptP = append(keptP, p)
		}
	}
	s.Paths = keptP
	if len(s.Paths) > lim.MaxPaths {
		sort.Slice(s.Paths, func(i, j int) bool {
			if s.Paths[i].Count != s.Paths[j].Count {
				return s.Paths[i].Count > s.Paths[j].Count
			}
			return compareKeys(s.Paths[i].Key, s.Paths[j].Key) < 0
		})
		s.Paths = s.Paths[:lim.MaxPaths]
	}
	if len(s.Blacklist) > lim.MaxBlacklist {
		sort.Slice(s.Blacklist, func(i, j int) bool {
			if s.Blacklist[i].Aborts != s.Blacklist[j].Aborts {
				return s.Blacklist[i].Aborts > s.Blacklist[j].Aborts
			}
			return s.Blacklist[i].Addr < s.Blacklist[j].Addr
		})
		s.Blacklist = s.Blacklist[:lim.MaxBlacklist]
	}
	s.Canonicalize()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
