package tables

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Name", "Value")
	tb.Row("a", 1)
	tb.Row("longer", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4\n%s", len(lines), out)
	}
	// All lines same width family: header, separator, rows.
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "123456") {
		t.Errorf("row wrong: %q", lines[3])
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := New("x")
	tb.Row(3.14159)
	if !strings.Contains(tb.String(), "3.1") {
		t.Errorf("float not formatted: %s", tb.String())
	}
}

func TestPctAndSignedPct(t *testing.T) {
	if Pct(12.34) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.34))
	}
	if SignedPct(5.0) != "+5.0%" {
		t.Errorf("SignedPct = %q", SignedPct(5.0))
	}
	if SignedPct(-5.0) != "-5.0%" {
		t.Errorf("SignedPct = %q", SignedPct(-5.0))
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"}, {999, "999"}, {1000, "1,000"}, {1234567, "1,234,567"},
		{-1234, "-1,234"},
	}
	for _, c := range cases {
		if got := Count(c.n); got != c.want {
			t.Errorf("Count(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
