// Package tables renders aligned plain-text tables for the experiment
// reports (cmd/hotpath, EXPERIMENTS.md).
package tables

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends a row; cells are stringified with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numeric-looking cells, left-align the first column.
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// SignedPct formats a signed percentage (Figure 5 style).
func SignedPct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// Count formats a large count with thousands separators.
func Count(n int64) string {
	s := fmt.Sprint(n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
