package staticpred

import (
	"fmt"
	"math"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/workload"
)

func analyze(t *testing.T, p *prog.Program) *Analysis {
	t.Helper()
	a, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

// loopProg: a counted loop with a biased forward diamond inside, driven by
// data loads (the workload idiom), followed by a halt.
func loopProg(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("loop")
	b.SetMemSize(64)
	for i := 0; i < 32; i++ {
		b.SetMem(i, int64(i*100)) // values 0..3100, uniform-ish
	}
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("top")
	m.Load(1, 2, 0)
	m.BrI(isa.Lt, 1, 3000, "hot") // nearly always true of the data
	m.AddI(3, 3, 1)               // cold arm
	m.Jmp("join")
	m.Label("hot")
	m.AddI(4, 4, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, 10, "top")
	m.Halt()
	return b.MustBuild()
}

func TestCombine(t *testing.T) {
	if got := combine(0.5, 0.7); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("combine(0.5, x) = %v, want x", got)
	}
	if got := combine(0.7, 0.5); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("combine(x, 0.5) = %v, want x", got)
	}
	if a, b := combine(0.6, 0.7), combine(0.7, 0.6); math.Abs(a-b) > 1e-9 {
		t.Error("combine must be symmetric")
	}
	if got := combine(0.8, 0.8); got <= 0.8 {
		t.Errorf("agreeing evidence must reinforce: combine(0.8,0.8)=%v", got)
	}
	if got := combine(0.9, 0.1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("perfectly conflicting evidence must cancel: %v", got)
	}
}

func TestLoopBranchHeuristic(t *testing.T) {
	p := loopProg(t)
	a := analyze(t, p)
	// Find the backward latch (BrI targeting a lower address).
	latch := -1
	for pc, in := range p.Instrs {
		if in.Op == isa.BrI && int(in.Target) <= pc {
			latch = pc
		}
	}
	if latch < 0 {
		t.Fatal("no backward conditional found")
	}
	if got := a.TakenProb(latch); got != probLoopBack {
		t.Errorf("backward conditional TakenProb = %v, want %v", got, probLoopBack)
	}
}

func TestImmediateHeuristic(t *testing.T) {
	p := loopProg(t)
	a := analyze(t, p)
	// The forward diamond branch: Lt against 3000 where ~94% of the data is
	// below it. The static model must prefer taken, despite Lt's neutral
	// prior.
	fwd := -1
	for pc, in := range p.Instrs {
		if in.Op == isa.BrI && int(in.Target) > pc && in.Imm == 3000 {
			fwd = pc
		}
	}
	if fwd < 0 {
		t.Fatal("forward diamond branch not found")
	}
	if got := a.TakenProb(fwd); got <= 0.7 {
		t.Errorf("data-biased forward branch TakenProb = %v, want > 0.7", got)
	}
	// And the raw estimator endpoints.
	if pLow, ok := a.immProb(isa.Lt, -5); !ok || pLow != immClamp {
		t.Errorf("immProb(Lt, below-all) = %v,%v; want clamp %v", pLow, ok, immClamp)
	}
	if pHigh, ok := a.immProb(isa.Ge, -5); !ok || pHigh != 1-immClamp {
		t.Errorf("immProb(Ge, below-all) = %v,%v; want %v", pHigh, ok, 1-immClamp)
	}
}

func TestReturnHeuristic(t *testing.T) {
	// A forward branch whose taken side immediately returns; no data in the
	// program, so only opcode+return heuristics apply.
	b := prog.NewBuilder("ret-h")
	b.SetMemSize(4)
	m := b.Func("main")
	m.Call("f")
	m.Halt()
	f := b.Func("f")
	f.Op3(isa.Add, 1, 1, 2)
	f.Br(isa.Ge, 1, 2, "out") // Ge prior is 0.55 taken...
	f.AddI(3, 3, 1)
	f.Ret()
	f.Label("out")
	f.Ret()
	p := b.MustBuild()
	a := analyze(t, p)
	brPC := -1
	for pc, in := range p.Instrs {
		if in.Op == isa.Br {
			brPC = pc
		}
	}
	if brPC < 0 {
		t.Fatal("branch not found")
	}
	// ...but BOTH sides return here, so the return heuristic must stay out
	// of it: probability equals the bare prior.
	if got := a.TakenProb(brPC); got != condProb(isa.Ge) {
		t.Errorf("both-sides-return branch = %v, want bare prior %v", got, condProb(isa.Ge))
	}
}

func TestDecidedBranchIsCertain(t *testing.T) {
	// The range analysis proves both branches: r1 = 5 makes the first test
	// always true and the second always false. Certainties override every
	// heuristic, including the opcode prior.
	b := prog.NewBuilder("decided")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(1, 5)
	m.BrI(isa.Lt, 1, 10, "a")
	m.AddI(2, 2, 1)
	m.Label("a")
	m.BrI(isa.Gt, 1, 10, "b")
	m.AddI(3, 3, 1)
	m.Label("b")
	m.Halt()
	p := b.MustBuild()
	a := analyze(t, p)
	var always, never = -1, -1
	for pc, in := range p.Instrs {
		if in.Op == isa.BrI && in.Cond == isa.Lt {
			always = pc
		}
		if in.Op == isa.BrI && in.Cond == isa.Gt {
			never = pc
		}
	}
	if always < 0 || never < 0 {
		t.Fatal("branches not found")
	}
	if got := a.TakenProb(always); got != 1 {
		t.Errorf("always-taken branch TakenProb = %v, want 1", got)
	}
	if got := a.TakenProb(never); got != 0 {
		t.Errorf("never-taken branch TakenProb = %v, want 0", got)
	}
}

func TestWalkTerminatesBackward(t *testing.T) {
	p := loopProg(t)
	a := analyze(t, p)
	heads := Heads(p)
	// The loop head (the latch target) must be a static head.
	latchTarget := -1
	for pc, in := range p.Instrs {
		if in.Op == isa.BrI && int(in.Target) <= pc {
			latchTarget = int(in.Target)
		}
	}
	found := false
	for _, h := range heads {
		if h == latchTarget {
			found = true
		}
	}
	if !found {
		t.Fatalf("heads %v missing loop head %d", heads, latchTarget)
	}
	w := a.WalkFrom(latchTarget)
	if w.Aborted {
		t.Fatal("loop-head walk aborted")
	}
	last := w.Steps[len(w.Steps)-1]
	if !isa.IsBackward(last.PC, last.Next, true) {
		t.Errorf("walk must end on the backward latch, ended %+v", last)
	}
	if w.Confidence <= 0 || w.Confidence > 1 {
		t.Errorf("confidence %v out of range", w.Confidence)
	}
	if w.Key == "" {
		t.Error("completed walk must carry a signature key")
	}
}

func TestWalkAbortsOnIndirect(t *testing.T) {
	b := prog.NewBuilder("ind")
	b.SetMemSize(8)
	m := b.Func("main")
	m.Load(1, 0, 4)
	m.JmpInd(1)
	m.Label("a")
	m.Halt()
	b.SetMemLabel(4, "a")
	p := b.MustBuild()
	a := analyze(t, p)
	if w := a.WalkFrom(p.Entry); !w.Aborted {
		t.Errorf("walk through jmpind must abort, got %+v", w)
	}
}

func TestWalkCapsLikeTracker(t *testing.T) {
	// More forward branches than the tracker cap: the walk must stop at
	// maxWalk control events, like the online cap.
	b := prog.NewBuilder("cap")
	b.SetMemSize(4)
	m := b.Func("main")
	for i := 0; i < maxWalk+8; i++ {
		l := fmt.Sprintf("n%d", i)
		m.Br(isa.Ge, 1, 2, l)
		m.Label(l)
	}
	m.Halt()
	p := b.MustBuild()
	a := analyze(t, p)
	w := a.WalkFrom(p.Entry)
	if w.Aborted {
		t.Fatal("capped walk must complete, not abort")
	}
	controls := 0
	for _, s := range w.Steps {
		if p.Instrs[s.PC].Op.IsControl() {
			controls++
		}
	}
	if controls != maxWalk {
		t.Errorf("walk recorded %d control events, want cap %d", controls, maxWalk)
	}
}

func TestPredictorContract(t *testing.T) {
	bm, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm.Build(0.02)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Predict(pr)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "static" {
		t.Errorf("Name = %q", sp.Name())
	}
	if sp.CounterSpace() != 0 {
		t.Errorf("CounterSpace = %d, want 0 (the scheme's defining property)", sp.CounterSpace())
	}
	if sp.PredictedCount() == 0 {
		t.Fatal("static scheme predicted nothing on compress")
	}
	if len(sp.PrePredicted()) != sp.PredictedCount() {
		t.Errorf("PrePredicted len %d != count %d", len(sp.PrePredicted()), sp.PredictedCount())
	}
	for _, id := range sp.PrePredicted() {
		if !sp.IsPredicted(id) {
			t.Errorf("pre-predicted id %v not IsPredicted", id)
		}
	}
	// Observe never learns.
	if sp.Observe(sp.PrePredicted()[0]) {
		t.Error("Observe must never predict")
	}
	if sp.IsPredicted(path.None) {
		t.Error("None must not be predicted")
	}
	// On the loop-dominated compress, the static walks must capture real
	// hot flow: at least one predicted path is hot.
	hs := pr.Hot(0.001)
	hot := 0
	for _, id := range sp.PrePredicted() {
		if int(id) < len(hs.IsHot) && hs.IsHot[id] {
			hot++
		}
	}
	if hot == 0 {
		t.Errorf("no predicted path is hot (predicted %d, phantoms %d, aborts %d)",
			sp.PredictedCount(), sp.Phantoms, sp.Aborts)
	}
}
