// Package staticpred predicts hot paths with no profile at all: a
// Ball–Larus-style heuristic model assigns every conditional branch a taken
// probability from the program text, its CFG, and its initialized data
// image, and from each statically identified path head the
// maximum-likelihood forward path is emitted as the predicted hot path. The scheme's prediction delay is zero and its
// counter space is zero — the "less is more" endpoint where even NET's
// head counters are dropped, at the price of heuristic (sometimes phantom)
// predictions. Scored through the same metrics machinery as NET and
// path-profile prediction, it anchors the other end of the paper's
// accuracy-versus-overhead trade-off.
package staticpred

import (
	"sort"

	"netpath/internal/cfg"
	"netpath/internal/dataflow"
	"netpath/internal/isa"
	"netpath/internal/prog"
)

// Branch heuristic probabilities (Ball & Larus, "Branch prediction for
// free", adapted to this ISA). Values are P(taken) contributions; several
// applicable heuristics are fused with the Wu–Larus evidence combination.
const (
	// probLoopBack: a taken-backward conditional is a loop latch; loops
	// iterate, so the back edge is strongly preferred.
	probLoopBack = 0.88
	// probStayInLoop: at a branch where one side leaves a natural loop and
	// the other stays, prefer staying (the loop-exit heuristic).
	probStayInLoop = 0.80
	// probGuardTaken: an equality test against an immediate is a guard for
	// an uncommon case; rarely taken.
	probGuardTaken = 0.30
	// probRetTaken: a side whose block immediately returns is an early-out;
	// prefer the other side (the return heuristic).
	probRetTaken = 0.28
)

// condProb is the opcode heuristic: the prior P(taken) for each comparison,
// before structural evidence. Equality rarely holds between arbitrary
// values; inequality usually does; ordered comparisons carry little signal.
func condProb(c isa.Cond) float64 {
	switch c {
	case isa.Eq:
		return 0.34
	case isa.Ne:
		return 0.66
	case isa.Lt, isa.Le:
		return 0.45
	case isa.Gt, isa.Ge:
		return 0.55
	}
	return 0.5
}

// combine fuses two independent taken-probability estimates (Wu & Larus,
// "Static branch frequency and program profile analysis"): treat each as
// evidence and renormalize the joint.
func combine(p1, p2 float64) float64 {
	num := p1 * p2
	den := num + (1-p1)*(1-p2)
	if den == 0 {
		return 0.5
	}
	return num / den
}

// Analysis holds the per-function CFGs and loop structure the heuristics
// consult. Build one per program and reuse it across walks.
type Analysis struct {
	Prog   *prog.Program
	Graphs []*cfg.Graph

	// inner[fi][node] is the innermost natural-loop body containing node
	// (nil when the node is in no loop).
	inner [][]map[cfg.Node]bool

	// data holds the program's initial memory values, sorted — the operand
	// distribution the immediate heuristic estimates against.
	data []int64

	// facts is the whole-program dataflow analysis (nil when it failed):
	// branches it decides are certainties, not heuristics, and override
	// every probabilistic estimate below.
	facts *dataflow.Facts
}

// Analyze builds the CFGs and loop maps for p.
func Analyze(p *prog.Program) (*Analysis, error) {
	gs, err := cfg.BuildAll(p)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Prog: p, Graphs: gs, inner: make([][]map[cfg.Node]bool, len(gs))}
	for fi, g := range gs {
		in := make([]map[cfg.Node]bool, g.NumNodes())
		loops := g.NaturalLoops()
		// Largest bodies first, so the smallest enclosing loop wins.
		for i := 0; i < len(loops); i++ {
			for j := i + 1; j < len(loops); j++ {
				if len(loops[j].Body) > len(loops[i].Body) {
					loops[i], loops[j] = loops[j], loops[i]
				}
			}
		}
		for _, l := range loops {
			body := make(map[cfg.Node]bool, len(l.Body))
			for _, u := range l.Body {
				body[u] = true
			}
			for _, u := range l.Body {
				in[u] = body
			}
		}
		a.inner[fi] = in
	}
	a.data = make([]int64, 0, len(p.InitMem))
	for _, mi := range p.InitMem {
		a.data = append(a.data, mi.Value)
	}
	sort.Slice(a.data, func(i, j int) bool { return a.data[i] < a.data[j] })
	// Dataflow facts upgrade heuristics to proofs where the ranges decide a
	// branch. A failed analysis (impossible on a verified program) just
	// leaves the model purely heuristic.
	if facts, err := dataflow.Analyze(p); err == nil {
		a.facts = facts
	}
	return a, nil
}

// immClamp keeps the immediate heuristic's estimates away from the 0/1
// absolutes: the data distribution is an approximation, never certainty.
const immClamp = 0.02

// immProb estimates P(cond(v, imm)) for an operand v drawn from the
// program's initialized data region. The data region is part of the static
// program image — no execution is consulted — and in this ISA branch
// operands are overwhelmingly data loads, so its value distribution is a
// strong prior for immediate comparisons. Returns (0.5, false) when the
// program carries no initial data to estimate from.
func (a *Analysis) immProb(c isa.Cond, imm int64) (float64, bool) {
	n := len(a.data)
	if n == 0 {
		return 0.5, false
	}
	// lt = #(v < imm), le = #(v <= imm).
	lt := sort.Search(n, func(i int) bool { return a.data[i] >= imm })
	le := sort.Search(n, func(i int) bool { return a.data[i] > imm })
	var p float64
	switch c {
	case isa.Lt:
		p = float64(lt) / float64(n)
	case isa.Le:
		p = float64(le) / float64(n)
	case isa.Gt:
		p = 1 - float64(le)/float64(n)
	case isa.Ge:
		p = 1 - float64(lt)/float64(n)
	case isa.Eq:
		p = float64(le-lt) / float64(n)
	case isa.Ne:
		p = 1 - float64(le-lt)/float64(n)
	default:
		return 0.5, false
	}
	if p < immClamp {
		p = immClamp
	} else if p > 1-immClamp {
		p = 1 - immClamp
	}
	return p, true
}

// nodeAt returns the CFG node of the block starting (or containing) addr in
// function fi, or -1 when addr lies outside fi.
func (a *Analysis) nodeAt(fi, addr int) cfg.Node {
	bi := a.Prog.BlockAt(addr)
	if bi < 0 || a.Prog.Blocks[bi].Func != fi {
		return -1
	}
	if n, ok := a.Graphs[fi].NodeOf[bi]; ok {
		return n
	}
	return -1
}

// returnsImmediately reports whether the block containing addr terminates
// in a return.
func (a *Analysis) returnsImmediately(addr int) bool {
	bi := a.Prog.BlockAt(addr)
	return bi >= 0 && a.Prog.Instrs[a.Prog.Blocks[bi].End-1].Op == isa.Ret
}

// TakenProb returns the heuristic probability that the conditional branch
// at pc is taken.
func (a *Analysis) TakenProb(pc int) float64 {
	in := a.Prog.Instrs[pc]
	t := int(in.Target)
	// Decided branches are certainties: the range analysis proved every
	// execution reaching pc resolves the same way, so no heuristic evidence
	// can move the estimate.
	if a.facts != nil {
		switch a.facts.Branch(int32(pc)) {
		case dataflow.BranchAlwaysTaken:
			return 1
		case dataflow.BranchNeverTaken:
			return 0
		}
	}
	// Loop branch heuristic: a taken-backward conditional is a latch, and
	// loops iterate. This dominates all other evidence.
	if t <= pc {
		return probLoopBack
	}

	p := condProb(in.Cond)
	if in.Op == isa.BrI {
		// Immediate heuristic: estimate the comparison outcome against the
		// static data distribution. Far stronger evidence than the opcode
		// prior when the program ships initial data.
		if pi, ok := a.immProb(in.Cond, in.Imm); ok {
			p = combine(p, pi)
		}
		if in.Cond == isa.Eq {
			p = combine(p, probGuardTaken)
		}
	}

	// Return heuristic: prefer the side that does not immediately return.
	tRet, fRet := a.returnsImmediately(t), a.returnsImmediately(pc+1)
	if tRet && !fRet {
		p = combine(p, probRetTaken)
	} else if fRet && !tRet {
		p = combine(p, 1-probRetTaken)
	}

	// Loop-exit heuristic: when exactly one side leaves the innermost loop,
	// prefer the side that stays.
	fi := a.Prog.FuncOf(pc)
	if fi >= 0 {
		if node := a.nodeAt(fi, pc); node >= 0 {
			if body := a.inner[fi][node]; body != nil {
				tn, fn := a.nodeAt(fi, t), a.nodeAt(fi, pc+1)
				tIn := tn >= 0 && body[tn]
				fIn := fn >= 0 && body[fn]
				if tIn != fIn {
					if tIn {
						p = combine(p, probStayInLoop)
					} else {
						p = combine(p, 1-probStayInLoop)
					}
				}
			}
		}
	}
	return p
}
