package staticpred

import (
	"sort"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/prog"
)

// maxWalk bounds the walked path length, mirroring the online tracker cap
// so static signatures stay comparable with dynamic ones.
const maxWalk = path.DefaultMaxBranches

// Step is one instruction of a walked path with its chosen successor —
// the static analogue of a recorded trace step.
type Step struct {
	PC, Next int
}

// Walk is one maximum-likelihood forward path from a static head.
type Walk struct {
	Head int
	// Key is the path signature, built with the exact rules the online
	// tracker applies ("" when the walk aborted).
	Key string
	// Confidence is the product of the chosen branch probabilities: the
	// model's estimate that this exact path executes from the head.
	Confidence float64
	// Steps lists every instruction on the path in execution order.
	Steps []Step
	// Aborted marks walks that hit statically unpredictable control (an
	// indirect transfer, or a return whose call is outside the path).
	Aborted bool
}

// Heads returns the statically identifiable path heads of p, sorted: the
// program entry, every target of a potentially backward direct transfer
// (the address rule shared with isa.IsBackward), and every call
// continuation (where a matched-return path boundary resumes). Backward
// indirect transfers also start paths dynamically, but their targets are
// not static — those heads are simply not covered, part of the scheme's
// accuracy price.
func Heads(p *prog.Program) []int {
	set := map[int]bool{p.Entry: true}
	for pc, in := range p.Instrs {
		switch in.Op {
		case isa.Jmp, isa.Br, isa.BrI, isa.Call:
			if t := int(in.Target); t <= pc {
				set[t] = true
			}
		}
		switch in.Op {
		case isa.Call, isa.CallInd:
			if pc+1 < p.Len() {
				set[pc+1] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// WalkFrom walks the maximum-likelihood forward path from head. The walk
// applies the online tracker's termination rules exactly — backward taken
// transfer, matched return, halt, or the branch cap — so a completed walk's
// Key is directly comparable against dynamically interned signatures.
func (a *Analysis) WalkFrom(head int) Walk {
	p := a.Prog
	var sig path.SigBuilder
	sig.Reset(head)
	w := Walk{Head: head, Confidence: 1}
	pc := head
	depth := 0
	var stack []int
	complete := func() Walk {
		w.Key = sig.Key()
		return w
	}
	abort := func() Walk {
		w.Aborted = true
		w.Steps = nil
		return w
	}
	for branches := 0; branches < maxWalk; {
		if pc < 0 || pc >= p.Len() {
			return abort()
		}
		in := p.Instrs[pc]
		if !in.Op.IsControl() {
			w.Steps = append(w.Steps, Step{pc, pc + 1})
			pc++
			continue
		}
		branches++
		var next int
		taken := true
		switch in.Op {
		case isa.Jmp:
			next = int(in.Target)
		case isa.Br, isa.BrI:
			pt := a.TakenProb(pc)
			// Strict inequality makes the p == 0.5 tie fall through:
			// deterministic, and biased the same way the hardware-style
			// static predictors break ties (not-taken is free).
			tk := pt > 0.5
			sig.CondBit(tk)
			taken = tk
			if tk {
				next = int(in.Target)
				w.Confidence *= pt
			} else {
				next = pc + 1
				w.Confidence *= 1 - pt
			}
		case isa.JmpInd, isa.CallInd:
			// Statically unpredictable target.
			return abort()
		case isa.Call:
			next = int(in.Target)
			stack = append(stack, pc+1)
		case isa.Ret:
			if len(stack) == 0 {
				// The dynamic return address belongs to a caller outside
				// this path; unknowable statically.
				return abort()
			}
			next = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case isa.Halt:
			w.Steps = append(w.Steps, Step{pc, pc})
			return complete()
		}
		w.Steps = append(w.Steps, Step{pc, next})
		if isa.IsBackward(pc, next, taken) {
			return complete()
		}
		switch in.Op {
		case isa.Call:
			depth++
		case isa.Ret:
			if depth > 0 {
				return complete()
			}
		}
		pc = next
	}
	return complete()
}

// Walks walks every static head of the analyzed program.
func (a *Analysis) Walks() []Walk {
	heads := Heads(a.Prog)
	out := make([]Walk, 0, len(heads))
	for _, h := range heads {
		out = append(out, a.WalkFrom(h))
	}
	return out
}
