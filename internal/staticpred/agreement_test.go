package staticpred

import (
	"testing"

	"netpath/internal/cfg"
	"netpath/internal/isa"
	"netpath/internal/workload"
)

// TestBackEdgeAgreement is the differential proof the issue requires: on
// every branch in every workload program, the CFG's dominator-based
// back-edge classification agrees with the dynamic address rule
// isa.IsBackward. The two definitions come from independent theories —
// dominators from graph structure, IsBackward from address comparison —
// and coincide exactly on the address-ordered reducible CFGs the builder
// emits. Scope: intraprocedural direct transfers (jmp/br/bri edges); calls
// and returns cross functions and indirect edges have no static targets.
func TestBackEdgeAgreement(t *testing.T) {
	for _, bm := range workload.All() {
		p, err := bm.Build(0.02)
		if err != nil {
			t.Fatalf("%s: build: %v", bm.Name, err)
		}
		branches, backs := 0, 0
		for fi := range p.Funcs {
			g, err := cfg.Build(p, fi)
			if err != nil {
				t.Fatalf("%s: func %d: %v", bm.Name, fi, err)
			}
			isBack := map[cfg.Edge]bool{}
			for _, e := range g.BackEdges() {
				isBack[e] = true
			}
			for _, e := range g.Edges() {
				if e.From < 2 || e.To < 2 {
					continue // virtual entry/exit edges have no instruction
				}
				if !g.Reachable(e.From) {
					continue // dominator classification is defined on reachable nodes
				}
				fromBlk := p.Blocks[g.BlockOf[e.From]]
				toBlk := p.Blocks[g.BlockOf[e.To]]
				branchPC := fromBlk.End - 1
				in := p.Instrs[branchPC]
				var target int
				switch in.Op {
				case isa.Jmp, isa.Br, isa.BrI:
					// Does this edge realize the taken target or the
					// fall-through? Compare block starts; when the taken
					// target IS the fall-through the two coincide and either
					// reading gives the same address.
					if int(in.Target) == toBlk.Start {
						target = int(in.Target)
					} else if toBlk.Start == branchPC+1 {
						target = branchPC + 1
					} else {
						t.Fatalf("%s: edge %v matches neither target nor fall-through", bm.Name, e)
					}
				default:
					continue // call continuations etc.
				}
				branches++
				dynamic := isa.IsBackward(branchPC, target, true)
				static := isBack[e]
				if dynamic != static {
					t.Errorf("%s: func %d edge %v (pc %d → %d): IsBackward=%v but dominator back-edge=%v",
						bm.Name, fi, e, branchPC, target, dynamic, static)
				}
				if static {
					backs++
				}
			}
		}
		if branches == 0 || backs == 0 {
			t.Errorf("%s: vacuous agreement (%d branch edges, %d back edges)", bm.Name, branches, backs)
		}
	}
}
