package staticpred

import (
	"encoding/binary"
	"fmt"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/workload"
)

// replayOutcome classifies one static replay of a dynamic signature.
type replayOutcome int

const (
	replayOK replayOutcome = iota
	// replayIndeterminate: the path crosses a return whose call lies before
	// the path head; the dynamic return address is not in the signature, so
	// the replay can neither confirm nor refute.
	replayIndeterminate
)

// replaySignature re-executes an interned path signature against the
// program text alone: the start address and the recorded branch tokens
// fully determine every transfer except unmatched returns. It verifies
// that each token's kind matches the control instruction actually at that
// point of the walk, that no terminating event (backward taken transfer,
// matched return) occurs before the path's last event, and that the token
// stream is exhausted exactly at the end.
func replaySignature(p *prog.Program, info path.Info) (replayOutcome, error) {
	key := []byte(info.Key)
	if len(key) < 4 {
		return replayOK, fmt.Errorf("short key")
	}
	start := int(binary.LittleEndian.Uint32(key[:4]))
	if start != info.Start {
		return replayOK, fmt.Errorf("key start %d != info start %d", start, info.Start)
	}
	toks := key[4:]
	ti := 0
	pc := start
	depth := 0
	var stack []int
	for branches := 0; branches < info.Branches; {
		if pc < 0 || pc >= p.Len() {
			return replayOK, fmt.Errorf("pc %d out of range at branch %d", pc, branches)
		}
		in := p.Instrs[pc]
		if !in.Op.IsControl() {
			pc++
			continue
		}
		branches++
		last := branches == info.Branches
		var next int
		taken := true
		switch in.Op {
		case isa.Jmp:
			next = int(in.Target)
		case isa.Br, isa.BrI:
			if ti >= len(toks) || (toks[ti] != '0' && toks[ti] != '1') {
				return replayOK, fmt.Errorf("branch %d at @%d: conditional without a cond token", branches, pc)
			}
			taken = toks[ti] == '1'
			ti++
			if taken {
				next = int(in.Target)
			} else {
				next = pc + 1
			}
		case isa.JmpInd, isa.CallInd:
			if ti+5 > len(toks) || toks[ti] != 'I' {
				return replayOK, fmt.Errorf("branch %d at @%d: indirect without an I token", branches, pc)
			}
			next = int(binary.LittleEndian.Uint32(toks[ti+1 : ti+5]))
			ti += 5
			if in.Op == isa.CallInd {
				stack = append(stack, pc+1)
			}
		case isa.Call:
			next = int(in.Target)
			stack = append(stack, pc+1)
		case isa.Ret:
			if len(stack) == 0 {
				// The return address lives in a caller frame established
				// before this path began: statically unknowable.
				return replayIndeterminate, nil
			}
			next = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case isa.Halt:
			// Halt emits no branch event; a signature can never record one.
			return replayOK, fmt.Errorf("halt counted as a branch event at @%d", pc)
		}
		// The tracker's termination rules: a terminating event may only be
		// the path's last, and the last event must terminate (unless the
		// path ended by cap or program end).
		terminates := isa.IsBackward(pc, next, taken)
		if !terminates && in.Op == isa.Ret && depth > 0 {
			terminates = true
		}
		if terminates && !last {
			return replayOK, fmt.Errorf("terminating event at branch %d/%d (@%d→%d)", branches, info.Branches, pc, next)
		}
		if last && !terminates && info.Branches < path.DefaultMaxBranches {
			// Not terminated, not capped: the only remaining reason is
			// program end — the next control reachable straight-line must be
			// a halt (or the run's end, which workloads never hit mid-path).
			q := next
			for q >= 0 && q < p.Len() && !p.Instrs[q].Op.IsControl() {
				q++
			}
			if q < 0 || q >= p.Len() || p.Instrs[q].Op != isa.Halt {
				return replayOK, fmt.Errorf("path ends at branch %d (@%d→%d) with no terminator, cap, or halt", branches, pc, next)
			}
		}
		switch in.Op {
		case isa.Call, isa.CallInd:
			depth++
		case isa.Ret:
			if depth > 0 {
				depth--
			}
		}
		pc = next
	}
	if ti != len(toks) {
		return replayOK, fmt.Errorf("%d token bytes left after %d branches", len(toks)-ti, info.Branches)
	}
	return replayOK, nil
}

// TestDynamicPathsReplayStatically is the containment differential: every
// path the online tracker interned on every workload must be statically
// re-derivable from the program text — i.e. the CFG-reachable forward
// paths are a superset of the dynamically observed ones. A failure means
// the static and dynamic views of path structure (branch kinds, signature
// encoding, termination rules) have diverged.
func TestDynamicPathsReplayStatically(t *testing.T) {
	for _, bm := range workload.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			p, err := bm.Build(0.02)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := profile.Collect(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			checked, indeterminate := 0, 0
			for id := 0; id < pr.Paths.NumPaths(); id++ {
				info := pr.Paths.Info(path.ID(id))
				out, err := replaySignature(p, info)
				if err != nil {
					t.Fatalf("path %d (%s): %v", id, info.Signature(), err)
				}
				if out == replayIndeterminate {
					indeterminate++
					continue
				}
				checked++
			}
			if checked == 0 {
				t.Fatalf("no path fully replayed (%d indeterminate)", indeterminate)
			}
			t.Logf("%s: %d paths replayed, %d indeterminate (unmatched returns)", bm.Name, checked, indeterminate)
		})
	}
}

// TestStaticWalksIntern checks the constructive direction on the walks
// themselves: every completed static walk produces a signature the online
// tracker COULD intern — replaying it against the program text succeeds.
func TestStaticWalksIntern(t *testing.T) {
	for _, bm := range workload.All() {
		p, err := bm.Build(0.02)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range a.Walks() {
			if w.Aborted {
				continue
			}
			branches := 0
			for _, s := range w.Steps {
				if p.Instrs[s.PC].Op.IsControl() && p.Instrs[s.PC].Op != isa.Halt {
					branches++
				}
			}
			if branches == 0 {
				continue // a head that runs straight into halt
			}
			info := path.Info{Start: w.Head, Branches: branches, Key: w.Key}
			if _, err := replaySignature(p, info); err != nil {
				t.Errorf("%s: walk from %d does not replay: %v", bm.Name, w.Head, err)
			}
		}
	}
}
