package staticpred

import (
	"netpath/internal/path"
	"netpath/internal/predict"
	"netpath/internal/profile"
	"netpath/internal/telemetry"
)

// Telemetry instruments (exported names get the netpath_ prefix).
var (
	telPredicted = telemetry.NewCounter("static_paths_predicted_total",
		"static walks matching a dynamically observed path (predicted hot)")
	telPhantoms = telemetry.NewCounter("static_phantom_predictions_total",
		"static walks whose path never executed as a whole")
	telAborts = telemetry.NewCounter("static_walk_aborts_total",
		"static walks aborted on indirect control or an unmatched return")
)

// Predictor is the profile-free static scheme as a predict.Predictor: the
// predicted set is fixed before the first path executes (τ = 0), Observe
// never predicts anything, and no counters exist (CounterSpace 0). Matching
// walked signatures against path IDs requires the interner, so the
// predictor is built against the profile it will be replayed on — the
// prediction itself used no profile data, only the interner's key→ID map.
type Predictor struct {
	set   []bool
	pre   []path.ID
	count int

	// Phantoms counts completed walks whose signature never executed;
	// Aborts counts walks that hit statically unpredictable control.
	Phantoms int
	Aborts   int
}

// NewPredictor matches the walks against pr's interned paths.
func NewPredictor(pr *profile.Profile, walks []Walk) *Predictor {
	s := &Predictor{set: make([]bool, pr.Paths.NumPaths())}
	for _, w := range walks {
		if w.Aborted {
			s.Aborts++
			continue
		}
		id := pr.Paths.Lookup(w.Key)
		if id == path.None {
			s.Phantoms++
			continue
		}
		if int(id) < len(s.set) && !s.set[id] {
			s.set[id] = true
			s.pre = append(s.pre, id)
			s.count++
		}
	}
	return s
}

// Name implements predict.Predictor.
func (s *Predictor) Name() string { return "static" }

// IsPredicted implements predict.Predictor.
func (s *Predictor) IsPredicted(id path.ID) bool {
	return id >= 0 && int(id) < len(s.set) && s.set[id]
}

// Observe implements predict.Predictor: the static scheme never learns
// from execution.
func (s *Predictor) Observe(id path.ID) bool { return false }

// PredictedCount implements predict.Predictor.
func (s *Predictor) PredictedCount() int { return s.count }

// CounterSpace implements predict.Predictor: the scheme's defining property.
func (s *Predictor) CounterSpace() int { return 0 }

// Reset implements predict.Predictor. The predicted set is the scheme's
// static output, not runtime state, so there is nothing to clear.
func (s *Predictor) Reset() {}

// PrePredicted returns the IDs predicted before replay began; the metrics
// evaluator uses it to account PredictedHot/PredictedCold, which for online
// schemes are filled in by Observe.
func (s *Predictor) PrePredicted() []path.ID { return s.pre }

// SetTelemetry reports the construction-time statistics through sink (the
// scheme has no runtime transitions to instrument).
func (s *Predictor) SetTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	sink.Add(telPredicted, int64(s.count))
	sink.Add(telPhantoms, int64(s.Phantoms))
	sink.Add(telAborts, int64(s.Aborts))
}

var _ predict.Predictor = (*Predictor)(nil)

// Predict is the one-call form: analyze pr's program, walk every static
// head, and return the predictor. Analysis or walk failures cannot occur on
// a program that produced a profile, but a malformed program yields an
// error rather than a panic.
func Predict(pr *profile.Profile) (*Predictor, error) {
	a, err := Analyze(pr.Program)
	if err != nil {
		return nil, err
	}
	return NewPredictor(pr, a.Walks()), nil
}
