package tracecache

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
	"netpath/internal/randprog"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

func tightLoop(n int64) *prog.Program {
	b := prog.NewBuilder("tight")
	b.SetMemSize(4)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.AddI(1, 1, 1)
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Halt()
	return b.MustBuild()
}

func TestTightLoopMostlySupplied(t *testing.T) {
	st, err := Measure(tightLoop(50_000), Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After the first iterations fill lines, the steady-state loop body
	// comes from the trace cache.
	if st.SuppliedPct() < 90 {
		t.Errorf("supplied = %.1f%%, want >= 90 on a tight loop\n%+v", st.SuppliedPct(), st)
	}
	if st.HitRate() < 90 {
		t.Errorf("hit rate = %.1f%%, want >= 90", st.HitRate())
	}
	if st.LinesBuilt == 0 {
		t.Error("no lines built")
	}
}

func TestInstructionAccounting(t *testing.T) {
	p := tightLoop(1_000)
	st, err := Measure(p, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// InstrsTotal counts instructions up to the last control transfer;
	// compare against the true step count (the final halt and trailing
	// straight-line code are not event-delimited).
	m := vm.New(p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if st.InstrsTotal > m.Steps || st.InstrsTotal < m.Steps-16 {
		t.Errorf("InstrsTotal = %d, machine steps = %d", st.InstrsTotal, m.Steps)
	}
	if st.InstrsSupplied > st.InstrsTotal {
		t.Error("supplied more instructions than executed")
	}
}

func TestAlternatingPathsNeedTwoLines(t *testing.T) {
	// A loop alternating two bodies: a single line per start address can
	// only hold one outcome pattern; the other iteration diverges. With
	// MaxBranches=3 a line spans more than one iteration, so supplied
	// fraction depends on pattern alignment — assert only the structural
	// bounds and determinism.
	b := prog.NewBuilder("alt")
	b.SetMemSize(8)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.RemI(1, 0, 2)
	m.BrI(isa.Eq, 1, 0, "even")
	m.AddI(2, 2, 1)
	m.Jmp("join")
	m.Label("even")
	m.AddI(3, 3, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, 20_000, "loop")
	m.Halt()
	p := b.MustBuild()
	st1, err := Measure(p, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Measure(p, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Error("simulation not deterministic")
	}
	if st1.SuppliedPct() <= 0 || st1.SuppliedPct() > 100 {
		t.Errorf("supplied = %.1f%%, out of range", st1.SuppliedPct())
	}
}

func TestCapacityEviction(t *testing.T) {
	// Many distinct loops with a 4-line cache force evictions.
	b := prog.NewBuilder("many")
	b.SetMemSize(4)
	m := b.Func("main")
	for j := 0; j < 16; j++ {
		lbl := "l" + string(rune('a'+j))
		m.MovI(0, 0)
		m.Label(lbl)
		m.AddI(1, 1, 1)
		m.AddI(0, 0, 1)
		m.BrI(isa.Lt, 0, 100, lbl)
	}
	m.Halt()
	st, err := Measure(b.MustBuild(), Config{Lines: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evictions == 0 {
		t.Error("tiny cache must evict")
	}
}

func TestLineLimitsRespected(t *testing.T) {
	s := New(tightLoop(10), Config{MaxInstrs: 8, MaxBranches: 2})
	// Feed synthetic segments through the fill unit.
	s.beginFetch(0)
	s.OnBranch(vm.BranchEvent{PC: 3, Target: 10, Taken: true, Kind: isa.KindJump})
	s.OnBranch(vm.BranchEvent{PC: 12, Target: 20, Taken: true, Kind: isa.KindJump})
	// Two branches: the line must have been installed and bounded.
	s.Finish()
	for _, l := range s.lines {
		if len(l.segments) > 2 || l.instrs > 8+4 {
			t.Errorf("line exceeds limits: %d segments, %d instrs", len(l.segments), l.instrs)
		}
	}
	if len(s.lines) == 0 {
		t.Error("fill unit installed nothing")
	}
}

func TestOnWorkloads(t *testing.T) {
	for _, name := range []string{"compress", "gcc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := b.Build(0.02)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Measure(p, Config{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.InstrsTotal == 0 || st.Fetches == 0 {
				t.Fatal("simulation saw nothing")
			}
			if st.SuppliedPct() < 5 {
				t.Errorf("supplied = %.1f%%, implausibly low", st.SuppliedPct())
			}
		})
	}
}

func TestRandomProgramsBounded(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := randprog.MustGenerate(seed, randprog.Options{})
		st, err := Measure(p, Config{Lines: 64}, 20_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.InstrsSupplied > st.InstrsTotal {
			t.Fatalf("seed %d: supplied > total", seed)
		}
		if st.Hits > st.Fetches {
			t.Fatalf("seed %d: hits > fetches", seed)
		}
	}
}
