// Package tracecache implements a Rotenberg/Bennett/Smith-style hardware
// trace cache simulator (related work, Section 7): a fill unit snoops the
// retiring instruction stream and assembles traces of consecutive basic
// blocks (bounded in instructions and branches); fetches that hit a cached
// trace are supplied from it until actual execution diverges from the
// recorded outcomes.
//
// The paper positions trace caches as fetch-bandwidth hardware that is
// "generally not accessible by user software"; this simulator makes the
// comparison concrete by reporting how much of the instruction stream a
// hardware trace cache supplies versus how much of it NET's
// software-selected fragments execute (see the hotpath hardware report).
package tracecache

import (
	"fmt"

	"netpath/internal/prog"
	"netpath/internal/vm"
)

// Config bounds the simulated trace cache.
type Config struct {
	// MaxInstrs bounds a trace line's instruction count (fetch width x
	// pipeline depth in real designs; default 16).
	MaxInstrs int
	// MaxBranches bounds the branches embedded in one line (default 3).
	MaxBranches int
	// Lines is the cache capacity in trace lines (default 512); eviction is
	// FIFO, standing in for a real design's index conflicts.
	Lines int
}

func (c Config) withDefaults() Config {
	if c.MaxInstrs <= 0 {
		c.MaxInstrs = 16
	}
	if c.MaxBranches <= 0 {
		c.MaxBranches = 3
	}
	if c.Lines <= 0 {
		c.Lines = 512
	}
	return c
}

// segment is one straight-line piece of a trace: instructions
// [From, To] followed by a transfer to Next.
type segment struct {
	From, To, Next int
}

type line struct {
	start    int
	segments []segment
	instrs   int
}

// Stats reports a simulation.
type Stats struct {
	// Fetches counts trace-cache lookups (one per segment start executed
	// outside an active trace); Hits the lookups that found a line.
	Fetches int64
	Hits    int64
	// InstrsTotal is the number of instructions executed; InstrsSupplied
	// the instructions delivered from cached traces before divergence.
	InstrsTotal    int64
	InstrsSupplied int64
	// Lines counts distinct lines ever installed; Evictions FIFO evictions.
	LinesBuilt int64
	Evictions  int64
}

// HitRate returns the per-fetch hit rate in percent.
func (s Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(s.Fetches)
}

// SuppliedPct returns the fraction of all instructions supplied from the
// trace cache, in percent — the analogue of the mini-Dynamo's cached
// fraction.
func (s Stats) SuppliedPct() float64 {
	if s.InstrsTotal == 0 {
		return 0
	}
	return 100 * float64(s.InstrsSupplied) / float64(s.InstrsTotal)
}

// String renders a summary.
func (s Stats) String() string {
	return fmt.Sprintf("trace cache: %.1f%% fetch hit rate, %.1f%% instructions supplied (%d lines, %d evictions)",
		s.HitRate(), s.SuppliedPct(), s.LinesBuilt, s.Evictions)
}

// Simulator consumes the branch event stream of one run.
type Simulator struct {
	cfg   Config
	stats Stats

	lines map[int]*line
	fifo  []int

	// Fill unit state.
	filling  *line
	fillFrom int

	// Consumption state: the active line and position.
	active *line
	pos    int

	curAddr int
}

// New creates a simulator for a program starting at its entry.
func New(p *prog.Program, cfg Config) *Simulator {
	return &Simulator{
		cfg:     cfg.withDefaults(),
		lines:   make(map[int]*line),
		curAddr: p.Entry,
	}
}

// Stats returns the accumulated statistics.
func (s *Simulator) Stats() Stats { return s.stats }

func (s *Simulator) install(l *line) {
	if len(l.segments) == 0 {
		return
	}
	if _, exists := s.lines[l.start]; !exists {
		if len(s.fifo) >= s.cfg.Lines {
			victim := s.fifo[0]
			s.fifo = s.fifo[1:]
			delete(s.lines, victim)
			s.stats.Evictions++
		}
		s.fifo = append(s.fifo, l.start)
		s.stats.LinesBuilt++
	}
	s.lines[l.start] = l
}

// beginFetch is called whenever execution starts a new straight-line
// segment outside an active trace: it both looks up the cache and starts
// the fill unit.
func (s *Simulator) beginFetch(addr int) {
	s.stats.Fetches++
	if l, ok := s.lines[addr]; ok {
		s.stats.Hits++
		s.active = l
		s.pos = 0
		return
	}
	s.filling = &line{start: addr}
	s.fillFrom = addr
}

// OnBranch consumes one executed control transfer.
func (s *Simulator) OnBranch(ev vm.BranchEvent) {
	segLen := int64(ev.PC - s.curAddr + 1)
	s.stats.InstrsTotal += segLen

	if s.active != nil {
		seg := s.active.segments[s.pos]
		if seg.From == s.curAddr && seg.To == ev.PC && seg.Next == ev.Target {
			// The trace supplied this segment correctly.
			s.stats.InstrsSupplied += segLen
			s.pos++
			if s.pos == len(s.active.segments) {
				s.active = nil
				s.beginFetch(ev.Target)
			}
			s.curAddr = ev.Target
			return
		}
		// Divergence: the rest of the supplied trace is squashed and the
		// fetch unit redirects to the branch's actual target.
		s.active = nil
		s.beginFetch(ev.Target)
		s.curAddr = ev.Target
		return
	}

	if s.filling != nil {
		s.filling.segments = append(s.filling.segments, segment{From: s.curAddr, To: ev.PC, Next: ev.Target})
		s.filling.instrs += int(segLen)
		if len(s.filling.segments) >= s.cfg.MaxBranches || s.filling.instrs >= s.cfg.MaxInstrs {
			s.install(s.filling)
			s.filling = nil
			s.beginFetch(ev.Target)
			s.curAddr = ev.Target
			return
		}
	}
	s.curAddr = ev.Target
}

// Finish flushes the fill unit after the program halts.
func (s *Simulator) Finish() {
	if s.filling != nil {
		s.install(s.filling)
		s.filling = nil
	}
	s.active = nil
}

// Measure runs the program through a fresh simulator.
func Measure(p *prog.Program, cfg Config, maxSteps int64) (Stats, error) {
	sim := New(p, cfg)
	m := vm.New(p)
	sim.beginFetch(p.Entry)
	m.SetSink(sim)
	if err := m.Run(maxSteps); err != nil && err != vm.ErrStepLimit {
		return sim.Stats(), err
	}
	sim.Finish()
	return sim.Stats(), nil
}
