package path

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/vm"
)

// buildSig constructs a representative signature into s and returns the key.
func buildSig(s *SigBuilder, start int, bits uint8) {
	s.Reset(start)
	for i := 0; i < 6; i++ {
		s.CondBit(bits&(1<<i) != 0)
	}
	s.Indirect(start + 100)
}

// TestInternHitZeroAllocs pins the repeated-path fast path: re-interning a
// signature that is already in the table via the live builder buffer must
// not allocate. This is the per-completed-path cost of profiling, the
// paper's "less is more" budget; a regression here (e.g. reintroducing a
// Key() string copy in Tracker.complete) shows up as a nonzero count.
func TestInternHitZeroAllocs(t *testing.T) {
	it := NewInterner()
	var sig SigBuilder
	for b := 0; b < 8; b++ {
		buildSig(&sig, 7, uint8(b))
		it.Intern(sig.Key(), 7, 7)
	}
	b := uint8(0)
	allocs := testing.AllocsPerRun(200, func() {
		buildSig(&sig, 7, b%8)
		if id := it.InternBytes(sig.Bytes(), 7, 7); id < 0 {
			t.Fatal("lost an interned path")
		}
		b++
	})
	if allocs != 0 {
		t.Errorf("InternBytes hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestInternBytesMatchesIntern pins that the two intern entry points share
// one identity space and that InternBytes copies on first insertion (the
// caller's buffer may be reused immediately).
func TestInternBytesMatchesIntern(t *testing.T) {
	it := NewInterner()
	var sig SigBuilder
	buildSig(&sig, 3, 0b101)
	id := it.InternBytes(sig.Bytes(), 3, 7)

	// Clobber the builder: the interned Info.Key must be unaffected.
	buildSig(&sig, 9, 0b010)
	key2 := it.Info(id).Key

	buildSig(&sig, 3, 0b101)
	if got := it.Intern(sig.Key(), 3, 7); got != id {
		t.Errorf("Intern after InternBytes = %d, want %d", got, id)
	}
	if key2 != sig.Key() {
		t.Errorf("interned key mutated by builder reuse: %q != %q", key2, sig.Key())
	}
	if it.NumPaths() != 1 {
		t.Errorf("NumPaths = %d, want 1", it.NumPaths())
	}
}

// TestSigKeyIsStableCopy pins the Key() contract its doc promises: the
// returned string is a copy, unaffected by further building.
func TestSigKeyIsStableCopy(t *testing.T) {
	var sig SigBuilder
	buildSig(&sig, 5, 0b110)
	key := sig.Key()
	buildSig(&sig, 6, 0b001)
	buildSig(&sig, 5, 0b110)
	if key != sig.Key() {
		t.Fatalf("Key() not reproducible: %q vs %q", key, sig.Key())
	}
	sig.Reset(1)
	sig.CondBit(true)
	if key == sig.Key() {
		t.Fatal("Key() aliased the live buffer: changed after Reset")
	}
}

// TestTrackerSteadyStateAllocs pins the whole per-path chain — signature
// build, completion, intern, callback — at zero allocations once the path
// is known.
func TestTrackerSteadyStateAllocs(t *testing.T) {
	it := NewInterner()
	var done int
	tr := NewTracker(it, 0, func(Completed) { done++ })
	loop := []vm.BranchEvent{
		{PC: 2, Target: 5, Taken: true, Kind: isa.KindCond},
		{PC: 7, Target: 0, Taken: true, Kind: isa.KindCond, Backward: true},
	}
	// Warm: intern the loop body path once.
	for _, ev := range loop {
		tr.OnBranch(ev)
	}
	allocs := testing.AllocsPerRun(500, func() {
		for _, ev := range loop {
			tr.OnBranch(ev)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state path completion allocates %.1f objects/op, want 0", allocs)
	}
	if done < 500 {
		t.Fatalf("tracker completed %d paths, want >= 500", done)
	}
	if it.NumPaths() != 1 {
		t.Fatalf("NumPaths = %d, want 1 (one repeated loop path)", it.NumPaths())
	}
}

// BenchmarkInternHit measures the repeated-path intern fast path; allocs/op
// must stay 0 (see TestInternHitZeroAllocs for the hard pin).
func BenchmarkInternHit(b *testing.B) {
	it := NewInterner()
	var sig SigBuilder
	for v := 0; v < 8; v++ {
		buildSig(&sig, 7, uint8(v))
		it.Intern(sig.Key(), 7, 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildSig(&sig, 7, uint8(i%8))
		it.InternBytes(sig.Bytes(), 7, 7)
	}
}

// BenchmarkInternMiss measures first-time interning (the copy path).
func BenchmarkInternMiss(b *testing.B) {
	it := NewInterner()
	var sig SigBuilder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.Reset(i)
		sig.CondBit(i&1 == 0)
		it.InternBytes(sig.Bytes(), i, 1)
	}
}
