package path

import "encoding/binary"

// SigBuilder incrementally constructs a bit-tracing path signature key:
// a 4-byte start address, one '0'/'1' byte per conditional branch outcome,
// and an 'I' + 4-byte target per indirect transfer. The Tracker uses it for
// executed paths; the boa package uses it to name paths it constructs from
// edge profiles, so constructed and executed paths share one identity space.
type SigBuilder struct {
	key []byte
}

// Reset begins a new signature for a path starting at start.
func (s *SigBuilder) Reset(start int) {
	s.key = s.key[:0]
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(start))
	s.key = append(s.key, b[:]...)
}

// CondBit records a conditional branch outcome.
func (s *SigBuilder) CondBit(taken bool) {
	if taken {
		s.key = append(s.key, '1')
	} else {
		s.key = append(s.key, '0')
	}
}

// Indirect records an indirect transfer target.
func (s *SigBuilder) Indirect(target int) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(target))
	s.key = append(s.key, 'I')
	s.key = append(s.key, b[:]...)
}

// Key returns the signature key for interning. The returned string is a
// copy and remains valid after further building; use Bytes when the caller
// only needs a transient view (Interner.InternBytes).
func (s *SigBuilder) Key() string { return string(s.key) }

// Bytes returns the live signature buffer without copying. The slice is
// only valid until the next Reset, CondBit or Indirect call; callers that
// need the key beyond that must use Key.
func (s *SigBuilder) Bytes() []byte { return s.key }
