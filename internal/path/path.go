// Package path implements the paper's program path abstraction.
//
// An interprocedural forward path (Section 3 of the paper) starts at the
// target of a backward taken branch and extends up to the next backward
// taken branch. The path may extend across procedure calls and returns
// unless the call or return is a backward branch, and if the path includes a
// forward procedure call it terminates at the corresponding return.
//
// Paths are identified by their bit-tracing signature (Section 2):
//
//	<start_address>.<history>,<indirect_branch_target_list>
//
// where history carries one bit per conditional branch outcome and the list
// carries the target of every indirect transfer on the path. Signatures are
// constructed on the fly as the program executes; no static analysis is
// required.
package path

import (
	"encoding/binary"
	"fmt"
	"strings"

	"netpath/internal/isa"
	"netpath/internal/vm"
)

// ID is a dense index for an interned path.
type ID int32

// None is the invalid path ID.
const None ID = -1

// DefaultMaxBranches is the default cap on taken control transfers per path.
// Dynamo bounds trace length the same way; the cap keeps signatures and
// recorded traces finite in pathological loop-free stretches.
const DefaultMaxBranches = 64

// EndReason records why a path terminated.
type EndReason uint8

// Path termination reasons.
const (
	// EndBackward: a backward taken branch ended the path (the common case;
	// the next path starts at the branch target).
	EndBackward EndReason = iota
	// EndMatchedReturn: the path included a forward call and reached the
	// corresponding return.
	EndMatchedReturn
	// EndCap: the path reached the branch-count cap.
	EndCap
	// EndRestart: the tracker was externally restarted (fragment-cache
	// transitions in the Dynamo simulation).
	EndRestart
	// EndProgram: the program halted with this path in flight.
	EndProgram
)

var endNames = [...]string{"backward", "matched-return", "cap", "restart", "program-end"}

// String names the termination reason.
func (r EndReason) String() string {
	if int(r) < len(endNames) {
		return endNames[r]
	}
	return fmt.Sprintf("end(%d)", uint8(r))
}

// Info is the interned metadata of a path.
type Info struct {
	Start    int    // path head: the address the path begins at
	Branches int    // number of control-transfer events on the path
	Key      string // encoded signature (see Signature for the decoded form)
}

// Signature renders the path in the paper's textual signature form,
// "start.history,indirect-targets", e.g. "A.0101" with numeric addresses.
// Dump/debug output only — never called while tracking.
//
//netpathvet:cold
func (in Info) Signature() string {
	var hist strings.Builder
	var ind []string
	key := []byte(in.Key)
	// Skip the 4-byte start prefix.
	for i := 4; i < len(key); {
		switch key[i] {
		case '0', '1':
			hist.WriteByte(key[i])
			i++
		case 'I':
			t := binary.LittleEndian.Uint32(key[i+1 : i+5])
			ind = append(ind, fmt.Sprintf("%d", t))
			i += 5
		default:
			hist.WriteByte('?')
			i++
		}
	}
	s := fmt.Sprintf("%d.%s", in.Start, hist.String())
	if len(ind) > 0 {
		s += "," + strings.Join(ind, "+")
	}
	return s
}

// Interner assigns dense IDs to path signatures. By default the table grows
// without bound (offline profiling wants every path); SetCapacity bounds it
// for online use, recycling the least-recently-hit slot (CLOCK) when full so
// memory stays bounded on pathological workloads.
type Interner struct {
	ids   map[string]ID
	infos []Info

	// Bounded mode (SetCapacity): CLOCK slot recycling.
	max       int
	ref       []bool
	hand      int
	evictions int64
	onEvict   func(ID)
}

// NewInterner returns an empty, unbounded interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]ID)}
}

// SetCapacity bounds the interner to max distinct signatures. Once full,
// interning a new signature recycles an existing slot chosen by the CLOCK
// rule (slots hit since the hand last passed are spared once): the old
// signature is forgotten and its dense ID is reassigned to the new path.
// onEvict (optional) is called with the recycled ID before it is reassigned
// so callers can reset per-ID state. max <= 0 restores unbounded growth.
func (it *Interner) SetCapacity(max int, onEvict func(ID)) {
	it.max = max
	it.onEvict = onEvict
	if max > 0 && it.ref == nil {
		it.ref = make([]bool, len(it.infos))
	}
}

// Evictions returns the number of slots recycled so far (bounded mode).
func (it *Interner) Evictions() int64 { return it.evictions }

// Intern returns the ID for the signature key, creating it if new.
func (it *Interner) Intern(key string, start, branches int) ID {
	if id, ok := it.ids[key]; ok {
		if it.max > 0 {
			it.ref[id] = true
		}
		return id
	}
	return it.insert(key, start, branches)
}

// InternBytes is Intern for a transient byte-slice key — the profiling hot
// path. The map lookup compiles to an allocation-free probe (the
// string(key) conversion does not escape), so re-interning an
// already-known path costs zero allocations; the key is copied into an
// owned string only the first time a signature is seen. The caller may
// reuse key's backing array immediately (the Tracker passes its live
// SigBuilder buffer).
func (it *Interner) InternBytes(key []byte, start, branches int) ID {
	if id, ok := it.ids[string(key)]; ok {
		if it.max > 0 {
			it.ref[id] = true
		}
		return id
	}
	return it.insert(string(key), start, branches)
}

// insert adds a new signature (an owned string) to the table, recycling a
// slot in bounded mode.
func (it *Interner) insert(key string, start, branches int) ID {
	if it.max > 0 && len(it.infos) >= it.max {
		return it.recycle(key, start, branches)
	}
	id := ID(len(it.infos))
	it.ids[key] = id
	it.infos = append(it.infos, Info{Start: start, Branches: branches, Key: key})
	if it.max > 0 {
		it.ref = append(it.ref, true)
	}
	return id
}

// recycle reassigns a CLOCK-chosen slot to a new signature.
func (it *Interner) recycle(key string, start, branches int) ID {
	for it.ref[it.hand] {
		it.ref[it.hand] = false
		it.hand = (it.hand + 1) % len(it.infos)
	}
	id := ID(it.hand)
	it.hand = (it.hand + 1) % len(it.infos)
	it.evictions++
	if it.onEvict != nil {
		it.onEvict(id)
	}
	delete(it.ids, it.infos[id].Key)
	it.ids[key] = id
	it.infos[id] = Info{Start: start, Branches: branches, Key: key}
	it.ref[id] = true
	return id
}

// Lookup returns the ID for key, or None.
func (it *Interner) Lookup(key string) ID {
	if id, ok := it.ids[key]; ok {
		return id
	}
	return None
}

// NumPaths returns the number of distinct paths interned.
func (it *Interner) NumPaths() int { return len(it.infos) }

// Info returns the metadata for id.
func (it *Interner) Info(id ID) Info { return it.infos[id] }

// Head returns the start address of path id.
func (it *Interner) Head(id ID) int { return it.infos[id].Start }

// UniqueHeads returns the number of distinct path start addresses — the
// counter space NET prediction needs (Table 2).
func (it *Interner) UniqueHeads() int {
	heads := make(map[int]struct{})
	for _, in := range it.infos {
		heads[in.Start] = struct{}{}
	}
	return len(heads)
}

// Completed reports one finished path execution.
type Completed struct {
	ID     ID
	Reason EndReason
}

// Tracker folds the VM branch event stream into a stream of completed
// interprocedural forward paths. It implements exactly the path definition
// above: signatures accumulate conditional outcomes and indirect targets;
// backward taken branches, matched returns and the branch cap terminate.
type Tracker struct {
	MaxBranches int

	interner   *Interner
	onComplete func(Completed)

	sig      SigBuilder // signature under construction
	start    int
	branches int
	depth    int // forward calls opened on this path
	active   bool
}

// NewTracker creates a tracker that interns into it and reports completed
// paths to onComplete. The first path starts at startAddr (program entry).
func NewTracker(it *Interner, startAddr int, onComplete func(Completed)) *Tracker {
	t := &Tracker{MaxBranches: DefaultMaxBranches, interner: it, onComplete: onComplete}
	t.reset(startAddr)
	return t
}

// Interner returns the tracker's interner.
func (t *Tracker) Interner() *Interner { return t.interner }

// CurrentStart returns the head address of the path under construction.
func (t *Tracker) CurrentStart() int { return t.start }

// CurrentBranches returns the number of events on the path in flight.
func (t *Tracker) CurrentBranches() int { return t.branches }

func (t *Tracker) reset(start int) {
	t.sig.Reset(start)
	t.start = start
	t.branches = 0
	t.depth = 0
	t.active = true
}

func (t *Tracker) complete(reason EndReason, nextStart int) {
	// InternBytes probes with the live signature buffer: completing an
	// already-known path (the steady state of every loop) allocates nothing.
	id := t.interner.InternBytes(t.sig.Bytes(), t.start, t.branches)
	if t.onComplete != nil {
		t.onComplete(Completed{ID: id, Reason: reason})
	}
	t.reset(nextStart)
}

// OnBranch consumes one branch event. It records the event into the current
// signature and terminates the path when the paper's rules say so.
func (t *Tracker) OnBranch(ev vm.BranchEvent) {
	if !t.active {
		t.reset(ev.Target)
		return
	}
	// Record the event into the signature.
	switch ev.Kind {
	case isa.KindCond:
		t.sig.CondBit(ev.Taken)
	case isa.KindIndirect, isa.KindCallInd:
		t.sig.Indirect(ev.Target)
	}
	t.branches++

	// Termination rules, in priority order.
	switch {
	case ev.Backward:
		t.complete(EndBackward, ev.Target)
		return
	case ev.Kind == isa.KindReturn:
		if t.depth > 0 {
			// Return matching a forward call on this path.
			t.complete(EndMatchedReturn, ev.Target)
			return
		}
		// Forward return out of the function the path started in: the path
		// extends across it.
	case ev.Kind == isa.KindCall || ev.Kind == isa.KindCallInd:
		t.depth++
	}
	max := t.MaxBranches
	if max <= 0 {
		max = DefaultMaxBranches
	}
	if t.branches >= max {
		t.complete(EndCap, ev.Target)
	}
}

// Restart silently abandons the path in flight and begins a new path at
// startAddr. The Dynamo simulation uses this when control enters or leaves
// the fragment cache, where the abandoned prefix was executed from cache and
// must not be profiled.
func (t *Tracker) Restart(startAddr int) {
	t.reset(startAddr)
}

// Finish reports the trailing partial path (with EndProgram) if it recorded
// any events; call it once after the program halts.
func (t *Tracker) Finish() {
	if t.active && t.branches > 0 {
		t.complete(EndProgram, t.start)
	}
	t.active = false
}
