package path

import (
	"strings"
	"testing"

	"netpath/internal/isa"
	"netpath/internal/vm"
)

// ev builds a branch event; backward is derived from pc/target exactly as
// the VM does (the shared isa.IsBackward rule).
func ev(pc, target int, taken bool, kind isa.BranchKind) vm.BranchEvent {
	return vm.BranchEvent{PC: pc, Target: target, Taken: taken, Kind: kind, Backward: isa.IsBackward(pc, target, taken)}
}

func collect(start int) (*Tracker, *[]Completed) {
	var out []Completed
	it := NewInterner()
	tr := NewTracker(it, start, func(c Completed) { out = append(out, c) })
	return tr, &out
}

func TestLoopIterationsAreOnePath(t *testing.T) {
	tr, out := collect(10)
	// Loop body: cond not taken at 12, backward jump at 15 -> 10, repeated.
	for i := 0; i < 5; i++ {
		tr.OnBranch(ev(12, 13, false, isa.KindCond))
		tr.OnBranch(ev(15, 10, true, isa.KindJump))
	}
	if len(*out) != 5 {
		t.Fatalf("completed %d paths, want 5", len(*out))
	}
	first := (*out)[0]
	if first.Reason != EndBackward {
		t.Errorf("reason = %v, want backward", first.Reason)
	}
	for _, c := range *out {
		if c.ID != first.ID {
			t.Errorf("loop iterations interned as different paths: %v vs %v", c.ID, first.ID)
		}
	}
	info := tr.Interner().Info(first.ID)
	if info.Start != 10 {
		t.Errorf("head = %d, want 10", info.Start)
	}
	if info.Branches != 2 {
		t.Errorf("branches = %d, want 2", info.Branches)
	}
	if sig := info.Signature(); sig != "10.0" {
		t.Errorf("signature = %q, want %q", sig, "10.0")
	}
}

func TestAlternatingOutcomesAreDistinctPaths(t *testing.T) {
	tr, out := collect(10)
	tr.OnBranch(ev(12, 20, true, isa.KindCond))
	tr.OnBranch(ev(25, 10, true, isa.KindJump))
	tr.OnBranch(ev(12, 13, false, isa.KindCond))
	tr.OnBranch(ev(25, 10, true, isa.KindJump))
	if len(*out) != 2 {
		t.Fatalf("completed %d paths, want 2", len(*out))
	}
	if (*out)[0].ID == (*out)[1].ID {
		t.Error("taken vs not-taken must intern as distinct paths")
	}
	s0 := tr.Interner().Info((*out)[0].ID).Signature()
	s1 := tr.Interner().Info((*out)[1].ID).Signature()
	if s0 != "10.1" || s1 != "10.0" {
		t.Errorf("signatures = %q, %q; want 10.1, 10.0", s0, s1)
	}
}

func TestIndirectTargetsDistinguishPaths(t *testing.T) {
	tr, out := collect(10)
	tr.OnBranch(ev(12, 30, true, isa.KindIndirect))
	tr.OnBranch(ev(35, 10, true, isa.KindJump))
	tr.OnBranch(ev(12, 40, true, isa.KindIndirect))
	tr.OnBranch(ev(45, 10, true, isa.KindJump))
	if (*out)[0].ID == (*out)[1].ID {
		t.Error("different indirect targets must intern as distinct paths")
	}
	sig := tr.Interner().Info((*out)[0].ID).Signature()
	if !strings.Contains(sig, "30") {
		t.Errorf("signature %q missing indirect target 30", sig)
	}
}

func TestMatchedReturnTerminates(t *testing.T) {
	// With address-ordered function layout a forward call's matching return
	// is always a backward branch (caller sits below the callee), so
	// EndBackward subsumes the matched-return rule in practice. The rule
	// still guards arbitrary layouts; exercise it with a synthetic forward
	// return while a call is open on the path.
	tr, out := collect(10)
	tr.OnBranch(ev(12, 100, true, isa.KindCall)) // forward call on the path
	tr.OnBranch(ev(105, 106, false, isa.KindCond))
	tr.OnBranch(ev(108, 110, true, isa.KindReturn)) // forward return, depth > 0
	if len(*out) != 1 {
		t.Fatalf("completed %d paths, want 1", len(*out))
	}
	if (*out)[0].Reason != EndMatchedReturn {
		t.Errorf("reason = %v, want matched-return", (*out)[0].Reason)
	}
	if tr.CurrentStart() != 110 {
		t.Errorf("next path starts at %d, want 110 (return target)", tr.CurrentStart())
	}
}

func TestBackwardReturnAfterForwardCall(t *testing.T) {
	// The realistic layout: call forward, return backward to the caller.
	// The return terminates the path as a backward branch.
	tr, out := collect(10)
	tr.OnBranch(ev(12, 100, true, isa.KindCall))
	tr.OnBranch(ev(108, 13, true, isa.KindReturn))
	if len(*out) != 1 || (*out)[0].Reason != EndBackward {
		t.Fatalf("want EndBackward termination, got %+v", *out)
	}
	if tr.CurrentStart() != 13 {
		t.Errorf("next path starts at %d, want 13", tr.CurrentStart())
	}
}

func TestUnmatchedForwardReturnExtends(t *testing.T) {
	// A path that starts inside a callee extends across the return into the
	// caller (depth 0 at the return).
	tr, out := collect(100)
	tr.OnBranch(ev(105, 13, false, isa.KindCond))
	tr.OnBranch(ev(108, 200, true, isa.KindReturn)) // forward return, no call on path
	tr.OnBranch(ev(205, 100, true, isa.KindJump))   // backward ends it
	if len(*out) != 1 {
		t.Fatalf("completed %d paths, want 1 (return must not terminate)", len(*out))
	}
	if got := tr.Interner().Info((*out)[0].ID).Branches; got != 3 {
		t.Errorf("path branches = %d, want 3 (cond + ret + jmp)", got)
	}
}

func TestBackwardReturnTerminates(t *testing.T) {
	tr, out := collect(100)
	tr.OnBranch(ev(108, 50, true, isa.KindReturn)) // backward return
	if len(*out) != 1 || (*out)[0].Reason != EndBackward {
		t.Fatalf("backward return must terminate with EndBackward, got %+v", *out)
	}
}

func TestRecursiveBackwardCallTerminates(t *testing.T) {
	// A recursive call to a lower address is a backward taken branch: it
	// terminates the path without unfolding the recursion.
	tr, out := collect(100)
	tr.OnBranch(ev(120, 100, true, isa.KindCall))
	if len(*out) != 1 || (*out)[0].Reason != EndBackward {
		t.Fatalf("backward call must terminate, got %+v", *out)
	}
	if tr.CurrentStart() != 100 {
		t.Errorf("next start = %d, want 100", tr.CurrentStart())
	}
}

func TestCapTerminates(t *testing.T) {
	tr, out := collect(0)
	tr.MaxBranches = 8
	for i := 0; i < 8; i++ {
		tr.OnBranch(ev(10+i, 11+i, false, isa.KindCond))
	}
	if len(*out) != 1 || (*out)[0].Reason != EndCap {
		t.Fatalf("want 1 cap-terminated path, got %+v", *out)
	}
	if got := tr.Interner().Info((*out)[0].ID).Branches; got != 8 {
		t.Errorf("branches = %d, want 8", got)
	}
}

func TestFinishEmitsPartial(t *testing.T) {
	tr, out := collect(0)
	tr.OnBranch(ev(5, 6, false, isa.KindCond))
	tr.Finish()
	if len(*out) != 1 || (*out)[0].Reason != EndProgram {
		t.Fatalf("Finish must emit the partial path, got %+v", *out)
	}
	// Finish on an empty path emits nothing.
	tr2, out2 := collect(0)
	tr2.Finish()
	if len(*out2) != 0 {
		t.Errorf("Finish on empty path emitted %+v", *out2)
	}
}

func TestRestartDropsPartial(t *testing.T) {
	tr, out := collect(0)
	tr.OnBranch(ev(5, 6, false, isa.KindCond))
	tr.Restart(50)
	if len(*out) != 0 {
		t.Fatalf("Restart must not emit, got %+v", *out)
	}
	if tr.CurrentStart() != 50 || tr.CurrentBranches() != 0 {
		t.Error("Restart did not reset tracker state")
	}
	tr.OnBranch(ev(55, 50, true, isa.KindJump))
	if len(*out) != 1 {
		t.Fatal("tracking did not resume after Restart")
	}
	if tr.Interner().Info((*out)[0].ID).Start != 50 {
		t.Errorf("restarted path head = %d, want 50", tr.Interner().Info((*out)[0].ID).Start)
	}
}

func TestSamePathDifferentHeadsDistinct(t *testing.T) {
	tr, out := collect(10)
	tr.OnBranch(ev(15, 10, true, isa.KindJump)) // path from 10
	tr.OnBranch(ev(12, 20, true, isa.KindCond)) // now at 10 again... build path to 20
	tr.Restart(20)
	tr.OnBranch(ev(25, 20, true, isa.KindJump)) // path from 20
	ids := map[ID]bool{}
	for _, c := range *out {
		ids[c.ID] = true
	}
	if len(ids) < 2 {
		t.Error("paths with different heads must be distinct")
	}
}

func TestInterner(t *testing.T) {
	it := NewInterner()
	a := it.Intern("k1", 10, 2)
	b := it.Intern("k2", 10, 3)
	c := it.Intern("k1", 10, 2)
	if a == b {
		t.Error("distinct keys shared an ID")
	}
	if a != c {
		t.Error("same key interned twice")
	}
	if it.NumPaths() != 2 {
		t.Errorf("NumPaths = %d, want 2", it.NumPaths())
	}
	if it.Lookup("k2") != b || it.Lookup("zz") != None {
		t.Error("Lookup wrong")
	}
	if it.Head(a) != 10 {
		t.Errorf("Head = %d, want 10", it.Head(a))
	}
	it.Intern("k3", 20, 1)
	if it.UniqueHeads() != 2 {
		t.Errorf("UniqueHeads = %d, want 2", it.UniqueHeads())
	}
}

func TestEndReasonString(t *testing.T) {
	for r := EndBackward; r <= EndProgram; r++ {
		if s := r.String(); s == "" || strings.HasPrefix(s, "end(") {
			t.Errorf("reason %d has no name", r)
		}
	}
	if !strings.Contains(EndReason(99).String(), "99") {
		t.Error("unknown reason must render numerically")
	}
}
