// Package par is the bounded worker pool behind the experiment pipeline.
//
// Every cell of the paper's evaluation grid — (benchmark, scheme, τ) — is
// independent, so the pipeline fans out across cores. The pool is built for
// reproducibility first: results are written into an index-addressed slice,
// so output order is identical to a serial run regardless of scheduling, and
// the configured worker count only changes wall-clock time, never bytes of
// output. A worker count of 1 degenerates to a plain loop (no goroutines),
// which the determinism tests use as the golden reference.
//
// The pool is deliberately tiny: stdlib only (no errgroup dependency),
// work-stealing by atomic index, context cancellation on first error.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width; 0 means GOMAXPROCS.
var workers atomic.Int64

// SetWorkers sets the worker count for subsequent Map/Do calls.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous setting
// so callers can restore it (the serial/parallel golden tests do).
func SetWorkers(n int) int {
	old := int(workers.Load())
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
	return old
}

// Workers returns the effective worker count for a new pool.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// indexed is the (first-come) error slot shared by a pool's workers. The
// lowest-index error wins so the reported failure is as close to the serial
// run's as scheduling allows.
type indexed struct {
	mu  sync.Mutex
	idx int
	err error
}

func (e *indexed) record(idx int, err error) {
	e.mu.Lock()
	if e.err == nil || idx < e.idx {
		e.idx, e.err = idx, err
	}
	e.mu.Unlock()
}

// MapErr runs f(ctx, i) for every i in [0, n) on a bounded worker pool and
// returns the results in index order. The first error cancels ctx for the
// remaining work and is returned (when several tasks fail concurrently, the
// lowest-index error is preferred). With one worker it runs f inline in index
// order, exactly like the pre-pool serial code.
func MapErr[T any](ctx context.Context, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := f(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		errs indexed
		wg   sync.WaitGroup
	)
	next.Store(-1)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := f(ctx, i)
				if err != nil {
					errs.record(i, err)
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if errs.err != nil {
		return nil, errs.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Map is MapErr for infallible tasks: f(i) for every i in [0, n), results in
// index order.
func Map[T any](n int, f func(i int) T) []T {
	out, _ := MapErr(context.Background(), n, func(_ context.Context, i int) (T, error) {
		return f(i), nil
	})
	return out
}

// Do runs f(i) for every i in [0, n) on the pool, for tasks that write their
// own results (typically into disjoint slots of a shared slice).
func Do(n int, f func(i int)) {
	Map(n, func(i int) struct{} { f(i); return struct{}{} })
}
