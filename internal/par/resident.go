// Resident pools. MapErr fans a finite grid out and tears the workers down;
// a server needs the opposite shape — workers that outlive any one request
// and drain cleanly on shutdown. A Resident pool runs a fixed crew of
// goroutines against a caller-supplied source: the source owns scheduling
// policy (netpathd's admission queue round-robins across tenants there),
// the pool owns only lifecycle, so the fairness logic stays testable
// without goroutines and the pool stays reusable without policy.
package par

import "sync"

// Resident is a fixed-width resident worker pool.
type Resident struct {
	wg sync.WaitGroup
	n  int
}

// StartResident launches n workers (n <= 0 takes the package default,
// Workers()). Each worker loops: task, ok := source(); a false ok retires
// the worker. The source must therefore be safe for concurrent calls and is
// expected to block until work (or shutdown) is available — a blocking
// queue's Dequeue. Panics in a task are the task's own problem; sources
// that must survive hostile tasks wrap them (netpathd does).
func StartResident(n int, source func() (func(), bool)) *Resident {
	if n <= 0 {
		n = Workers()
	}
	p := &Resident{n: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				task, ok := source()
				if !ok {
					return
				}
				if task != nil {
					task()
				}
			}
		}()
	}
	return p
}

// Size returns the worker count.
func (p *Resident) Size() int { return p.n }

// Wait blocks until every worker has retired (the source returned false to
// each). Closing the source's queue first is the caller's drain protocol.
func (p *Resident) Wait() { p.wg.Wait() }
