package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestResidentDrains: every submitted task runs exactly once, and Wait
// returns only after the source is exhausted.
func TestResidentDrains(t *testing.T) {
	const tasks = 1000
	ch := make(chan func(), tasks)
	var ran atomic.Int64
	for i := 0; i < tasks; i++ {
		ch <- func() { ran.Add(1) }
	}
	close(ch)
	p := StartResident(8, func() (func(), bool) {
		task, ok := <-ch
		return task, ok
	})
	p.Wait()
	if got := ran.Load(); got != tasks {
		t.Fatalf("ran %d tasks, want %d", got, tasks)
	}
}

// TestResidentConcurrency: the pool actually runs tasks on n workers, and a
// blocking source parks workers without busy-spinning.
func TestResidentConcurrency(t *testing.T) {
	const n = 4
	ch := make(chan func())
	var mu sync.Mutex
	inFlight, peak := 0, 0
	var entered sync.WaitGroup
	release := make(chan struct{})

	p := StartResident(n, func() (func(), bool) {
		task, ok := <-ch
		return task, ok
	})
	entered.Add(n)
	for i := 0; i < n; i++ {
		ch <- func() {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			entered.Done()
			<-release
			mu.Lock()
			inFlight--
			mu.Unlock()
		}
	}
	entered.Wait() // all n workers are simultaneously inside a task
	close(release)
	close(ch)
	p.Wait()
	if peak != n {
		t.Fatalf("peak concurrency %d, want %d", peak, n)
	}
	if p.Size() != n {
		t.Fatalf("Size = %d, want %d", p.Size(), n)
	}
}

// TestResidentDefaultWidth: n <= 0 falls back to Workers().
func TestResidentDefaultWidth(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	ch := make(chan func())
	close(ch)
	p := StartResident(0, func() (func(), bool) { task, ok := <-ch; return task, ok })
	p.Wait()
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (Workers default)", p.Size())
	}
}
