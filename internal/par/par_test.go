package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderIsDeterministic(t *testing.T) {
	for _, w := range []int{0, 1, 2, 7, 64} {
		old := SetWorkers(w)
		got := Map(100, func(i int) int { return i * i })
		SetWorkers(old)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapErrEmpty(t *testing.T) {
	out, err := MapErr(context.Background(), 0, func(context.Context, int) (int, error) {
		t.Fatal("f called for n=0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty", out, err)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	// Every task fails; the reported error must be a low-index one (with one
	// worker, exactly index 0 — the serial behaviour).
	old := SetWorkers(1)
	defer SetWorkers(old)
	_, err := MapErr(context.Background(), 10, func(_ context.Context, i int) (int, error) {
		return 0, fmt.Errorf("task %d", i)
	})
	if err == nil || err.Error() != "task 0" {
		t.Fatalf("serial error = %v, want task 0", err)
	}

	SetWorkers(4)
	_, err = MapErr(context.Background(), 10, func(_ context.Context, i int) (int, error) {
		return 0, fmt.Errorf("task %d", i)
	})
	if err == nil {
		t.Fatal("parallel run reported no error")
	}
}

func TestMapErrCancelsOnFirstError(t *testing.T) {
	old := SetWorkers(4)
	defer SetWorkers(old)
	sentinel := errors.New("boom")
	var ran atomic.Int64
	_, err := MapErr(context.Background(), 1000, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if n := ran.Load(); n == 1000 {
		t.Errorf("all %d tasks ran despite early error; cancellation is not stopping the pool", n)
	}
}

func TestMapErrHonorsCallerCancellation(t *testing.T) {
	old := SetWorkers(2)
	defer SetWorkers(old)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapErr(ctx, 10, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const w = 3
	old := SetWorkers(w)
	defer SetWorkers(old)
	var live, peak atomic.Int64
	Do(50, func(i int) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		live.Add(-1)
	})
	if p := peak.Load(); p > w {
		t.Errorf("peak concurrency %d exceeds %d workers", p, w)
	}
}

func TestWorkersDefault(t *testing.T) {
	old := SetWorkers(0)
	defer SetWorkers(old)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() after SetWorkers(-5) = %d, want GOMAXPROCS", got)
	}
}
