package predict_test

import (
	"fmt"

	"netpath/internal/path"
	"netpath/internal/predict"
)

// ExampleNET shows the scheme on a single loop head with a dominant tail:
// one counter at the head, and after τ=3 executions the next tail (the
// dominant one, statistically) is selected.
func ExampleNET() {
	// Two paths share head address 100: path 0 is dominant.
	heads := []int{100, 100}
	net := predict.NewNET(3, func(id path.ID) int { return heads[id] })

	stream := []path.ID{0, 0, 0, 1, 0, 0}
	for i, id := range stream {
		if net.IsPredicted(id) {
			fmt.Printf("execution %d: path %d from cache\n", i, id)
			continue
		}
		if net.Observe(id) {
			fmt.Printf("execution %d: path %d selected as hot\n", i, id)
		}
	}
	fmt.Printf("counters used: %d\n", net.CounterSpace())
	// Output:
	// execution 2: path 0 selected as hot
	// execution 4: path 0 from cache
	// execution 5: path 0 from cache
	// counters used: 1
}

// ExamplePathProfile contrasts the per-path counting scheme: every distinct
// path needs its own counter and its own τ executions.
func ExamplePathProfile() {
	pp := predict.NewPathProfile(3)
	stream := []path.ID{0, 1, 0, 1, 0, 1}
	for i, id := range stream {
		if pp.IsPredicted(id) {
			continue
		}
		if pp.Observe(id) {
			fmt.Printf("execution %d: path %d predicted\n", i, id)
		}
	}
	fmt.Printf("counters used: %d\n", pp.CounterSpace())
	// Output:
	// execution 4: path 0 predicted
	// execution 5: path 1 predicted
	// counters used: 2
}
