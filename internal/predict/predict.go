// Package predict implements online hot path prediction schemes (Section 4
// of the paper). A predictor consumes the stream of completed path
// executions and decides, online, which paths to predict hot. The metrics
// package replays a recorded path stream through a predictor and scores the
// predictions against the oracle HotPath set.
//
// The two schemes the paper compares are:
//
//   - Path-profile-based prediction: profile every path; when a path's
//     execution count exceeds the prediction delay τ, predict it.
//   - NET (Next Executing Tail) prediction: keep a counter only at each path
//     head (target of a backward taken branch); when a head's counter
//     exceeds τ, speculatively select the next executing tail from that head
//     as a hot path.
//
// State is slice-backed and grows on demand: path IDs are dense interner
// indices and heads are instruction addresses, so replaying multi-million
// event streams across a τ sweep stays cheap.
package predict

import (
	"netpath/internal/path"
	"netpath/internal/telemetry"
)

// Predictor is an online hot path prediction scheme.
//
// The replay protocol: for each path execution, the evaluator first asks
// IsPredicted(id). If true, the execution is predicted flow (a cache hit in
// a dynamic optimizer) and the predictor is NOT shown the execution —
// exactly as a cached path in Dynamo bypasses the profiled interpreter.
// If false, the execution is profiled flow and Observe(id) is called, which
// may predict id (effective for subsequent executions).
type Predictor interface {
	// Name identifies the scheme.
	Name() string
	// IsPredicted reports whether id has been predicted hot.
	IsPredicted(id path.ID) bool
	// Observe consumes one unpredicted execution of id and returns true if
	// this observation predicted id.
	Observe(id path.ID) bool
	// PredictedCount returns the number of paths predicted so far.
	PredictedCount() int
	// CounterSpace returns the number of distinct counters the scheme has
	// allocated (the space metric of Section 5.2).
	CounterSpace() int
	// Reset clears all state.
	Reset()
}

// predictedSet is the shared predicted-path bookkeeping.
type predictedSet struct {
	set   []bool
	count int
	tel   *telemetry.Sink // nil = no reporting (see telemetry.go)
}

func (s *predictedSet) IsPredicted(id path.ID) bool {
	return int(id) < len(s.set) && s.set[id]
}

func (s *predictedSet) PredictedCount() int { return s.count }

func (s *predictedSet) add(id path.ID) { s.addAt(id, -1) }

// addAt predicts id, reporting head (the path's head address) to telemetry
// when the scheme knows it (-1 otherwise).
func (s *predictedSet) addAt(id path.ID, head int) {
	if id < 0 {
		return
	}
	for int(id) >= len(s.set) {
		s.set = append(s.set, false)
	}
	if !s.set[id] {
		s.set[id] = true
		s.count++
		s.report(id, head)
	}
}

func (s *predictedSet) reset() {
	s.set = s.set[:0]
	s.count = 0
}

// counterTable is a growable dense counter array with allocation tracking
// (a counter stays "allocated" even when its value returns to zero, as NET's
// reset-on-selection requires). Counters saturate at counterMax so a
// corrupted or adversarial stream can never wrap a counter negative.
type counterTable struct {
	vals      []int64
	allocated []bool
	space     int
}

// counterMax is the counter saturation point: far above any meaningful τ,
// far below overflow.
const counterMax = int64(1) << 50

func (c *counterTable) grow(i int) {
	for i >= len(c.vals) {
		c.vals = append(c.vals, 0)
		c.allocated = append(c.allocated, false)
	}
}

// incr allocates (if needed) and increments counter i, returning the new
// value. Negative indices (corrupted path IDs) are ignored and report 0.
func (c *counterTable) incr(i int) int64 {
	if i < 0 {
		return 0
	}
	c.grow(i)
	if !c.allocated[i] {
		c.allocated[i] = true
		c.space++
	}
	if c.vals[i] < counterMax {
		c.vals[i]++
	}
	return c.vals[i]
}

func (c *counterTable) zero(i int) {
	if i >= 0 && i < len(c.vals) {
		c.vals[i] = 0
	}
}

func (c *counterTable) reset() {
	c.vals = c.vals[:0]
	c.allocated = c.allocated[:0]
	c.space = 0
}

// PathProfile is path-profile-based prediction: a counter per path, predict
// when the counter reaches the delay τ.
type PathProfile struct {
	predictedSet
	Tau    int64
	counts counterTable
}

// NewPathProfile returns a path-profile-based predictor with delay tau.
func NewPathProfile(tau int64) *PathProfile {
	return &PathProfile{Tau: tau}
}

// Name implements Predictor.
func (p *PathProfile) Name() string { return "pathprofile" }

// Observe implements Predictor.
func (p *PathProfile) Observe(id path.ID) bool {
	if p.counts.incr(int(id)) >= p.Tau {
		p.add(id)
		return true
	}
	return false
}

// CounterSpace implements Predictor: one counter per distinct path seen.
func (p *PathProfile) CounterSpace() int { return p.counts.space }

// Reset implements Predictor.
func (p *PathProfile) Reset() {
	p.reset()
	p.counts.reset()
}

// HeadOf maps a path to its head address; predictors that count at path
// heads obtain it from the path interner.
type HeadOf func(id path.ID) int

// NET is Next Executing Tail prediction. One counter per path head counts
// executions of not-yet-predicted paths starting there; when it reaches τ,
// the tail executing at that moment is selected and the counter resets.
//
// The counter reset models Dynamo's secondary trace formation: after a trace
// is selected for a head, later unpredicted tails from the same region keep
// accumulating and can be selected in turn. Disable it (Single=true) to
// model primary-trace-only selection.
type NET struct {
	predictedSet
	Tau    int64
	Single bool

	head   HeadOf
	counts counterTable
	done   []bool // heads retired in Single mode
}

// NewNET returns a NET predictor with delay tau.
func NewNET(tau int64, head HeadOf) *NET {
	return &NET{Tau: tau, head: head}
}

// NewNETSingle returns the primary-trace-only NET variant (each head
// selects at most one tail, ever); used in ablation benchmarks.
func NewNETSingle(tau int64, head HeadOf) *NET {
	n := NewNET(tau, head)
	n.Single = true
	return n
}

// Name implements Predictor.
func (n *NET) Name() string {
	if n.Single {
		return "net-single"
	}
	return "net"
}

// Observe implements Predictor.
func (n *NET) Observe(id path.ID) bool {
	h := n.head(id)
	if h < 0 {
		// Unattributable path (corrupted ID or evicted head): not countable.
		return false
	}
	if n.Single && h < len(n.done) && n.done[h] {
		return false
	}
	if n.counts.incr(h) >= n.Tau {
		n.addAt(id, h)
		n.counts.zero(h)
		if n.Single {
			for h >= len(n.done) {
				n.done = append(n.done, false)
			}
			n.done[h] = true
		}
		return true
	}
	return false
}

// CounterSpace implements Predictor: one counter per distinct head seen.
func (n *NET) CounterSpace() int { return n.counts.space }

// Reset implements Predictor.
func (n *NET) Reset() {
	n.reset()
	n.counts.reset()
	n.done = n.done[:0]
}

// Immediate predicts every path on its first execution (τ = 0 limit): the
// upper bound on hit rate and on noise. Used as a reference point — the
// paper notes that if hit rate were the only measure, predicting everything
// immediately would be trivially optimal.
type Immediate struct {
	predictedSet
}

// NewImmediate returns an Immediate predictor.
func NewImmediate() *Immediate { return &Immediate{} }

// Name implements Predictor.
func (p *Immediate) Name() string { return "immediate" }

// Observe implements Predictor.
func (p *Immediate) Observe(id path.ID) bool { p.add(id); return true }

// CounterSpace implements Predictor: the scheme needs no counters, only the
// predicted set itself.
func (p *Immediate) CounterSpace() int { return 0 }

// Reset implements Predictor.
func (p *Immediate) Reset() { p.reset() }

// Oracle predicts exactly a fixed set of paths on their first execution: the
// best any scheme that must see a path once could do against that set. Used
// as a reference bound with the oracle HotPath set.
type Oracle struct {
	predictedSet
	hot []bool
}

// NewOracle returns an Oracle predictor over the hot membership vector.
func NewOracle(isHot []bool) *Oracle {
	return &Oracle{hot: isHot}
}

// Name implements Predictor.
func (p *Oracle) Name() string { return "oracle" }

// Observe implements Predictor.
func (p *Oracle) Observe(id path.ID) bool {
	if int(id) < len(p.hot) && p.hot[id] {
		p.add(id)
		return true
	}
	return false
}

// CounterSpace implements Predictor.
func (p *Oracle) CounterSpace() int { return 0 }

// Reset implements Predictor.
func (p *Oracle) Reset() { p.reset() }

// Compile-time interface checks.
var (
	_ Predictor = (*PathProfile)(nil)
	_ Predictor = (*NET)(nil)
	_ Predictor = (*Immediate)(nil)
	_ Predictor = (*Oracle)(nil)
)
