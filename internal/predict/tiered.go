package predict

import "netpath/internal/path"

// Prediction tiers, in priority order. A path predicted by more than one
// tier is attributed to the earliest: static knowledge needs no profile at
// all, persisted knowledge needed a past run, live knowledge is paid for in
// this run's profiling phase.
const (
	TierStatic    = 0 // internal/staticpred's profile-free prior
	TierPersisted = 1 // paths carried in from a profile snapshot
	TierLive      = 2 // the run's own online predictor
	TierNone      = -1
)

// Tiered is the three-tier static → persisted → live predictor: two
// ahead-of-time predicted sets layered in front of an online scheme. The
// static tier is the prior for code no run has ever profiled; the persisted
// tier carries the fleet's accumulated profile; the live tier learns
// whatever both priors missed. Observations flow only to the live tier —
// the priors are fixed at construction, exactly as a restored fragment
// cache is fixed at process start.
type Tiered struct {
	static    predictedSet
	persisted predictedSet
	live      Predictor
}

// NewTiered builds a tiered predictor: static and persisted are the
// ahead-of-time predicted path sets (either may be empty), live is the
// online scheme layered behind them (typically NET).
func NewTiered(static, persisted []path.ID, live Predictor) *Tiered {
	t := &Tiered{live: live}
	for _, id := range static {
		t.static.add(id)
	}
	for _, id := range persisted {
		t.persisted.add(id)
	}
	return t
}

// Name implements Predictor.
func (t *Tiered) Name() string { return "tiered(" + t.live.Name() + ")" }

// IsPredicted implements Predictor: the union of the three tiers.
func (t *Tiered) IsPredicted(id path.ID) bool {
	return t.static.IsPredicted(id) || t.persisted.IsPredicted(id) || t.live.IsPredicted(id)
}

// TierOf returns which tier predicts id (TierNone if unpredicted),
// attributing overlaps to the highest-priority tier.
func (t *Tiered) TierOf(id path.ID) int {
	switch {
	case t.static.IsPredicted(id):
		return TierStatic
	case t.persisted.IsPredicted(id):
		return TierPersisted
	case t.live.IsPredicted(id):
		return TierLive
	}
	return TierNone
}

// Observe implements Predictor: unpredicted executions train the live tier
// only.
func (t *Tiered) Observe(id path.ID) bool { return t.live.Observe(id) }

// PredictedCount implements Predictor. Tiers can overlap (the same path
// known statically and persisted), so the count walks the union rather than
// summing the tiers.
func (t *Tiered) PredictedCount() int {
	n := t.live.PredictedCount()
	seen := func(id path.ID) bool { return t.live.IsPredicted(id) }
	for id, p := range t.persisted.set {
		if p && !seen(path.ID(id)) {
			n++
		}
	}
	for id, p := range t.static.set {
		if p && !seen(path.ID(id)) && !t.persisted.IsPredicted(path.ID(id)) {
			n++
		}
	}
	return n
}

// CounterSpace implements Predictor: the priors are sets, not counters; only
// the live tier spends counter space.
func (t *Tiered) CounterSpace() int { return t.live.CounterSpace() }

// PrePredicted returns every path the priors predict before the first
// execution; the metrics evaluator uses it to account ahead-of-time
// predictions (hot = correctly pre-predicted, cold = pre-predicted noise).
func (t *Tiered) PrePredicted() []path.ID {
	var out []path.ID
	for id, p := range t.static.set {
		if p {
			out = append(out, path.ID(id))
		}
	}
	for id, p := range t.persisted.set {
		if p && !t.static.IsPredicted(path.ID(id)) {
			out = append(out, path.ID(id))
		}
	}
	return out
}

// Reset implements Predictor: the live tier clears; the priors are
// construction-time facts and persist (a process restart rebuilds them from
// the same snapshot and static analysis).
func (t *Tiered) Reset() { t.live.Reset() }

var _ Predictor = (*Tiered)(nil)
