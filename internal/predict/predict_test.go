package predict

import (
	"testing"

	"netpath/internal/path"
)

// headTable maps synthetic path IDs to head addresses.
func headTable(heads []int) HeadOf {
	return func(id path.ID) int { return heads[id] }
}

func TestPathProfilePredictsAfterTau(t *testing.T) {
	p := NewPathProfile(3)
	id := path.ID(7)
	for i := 1; i <= 2; i++ {
		if p.Observe(id) {
			t.Fatalf("predicted after %d observations, want 3", i)
		}
		if p.IsPredicted(id) {
			t.Fatal("IsPredicted true before prediction")
		}
	}
	if !p.Observe(id) {
		t.Fatal("not predicted after 3 observations")
	}
	if !p.IsPredicted(id) || p.PredictedCount() != 1 {
		t.Error("prediction not recorded")
	}
}

func TestPathProfileCountersPerPath(t *testing.T) {
	p := NewPathProfile(100)
	for i := 0; i < 5; i++ {
		p.Observe(path.ID(i))
	}
	if p.CounterSpace() != 5 {
		t.Errorf("CounterSpace = %d, want 5", p.CounterSpace())
	}
	p.Reset()
	if p.CounterSpace() != 0 || p.PredictedCount() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestNETSharedHeadCounter(t *testing.T) {
	// Paths 0 and 1 share head 10. With τ=4, alternating executions
	// 0,1,0,1 predict the path executing on the 4th head execution.
	n := NewNET(4, headTable([]int{10, 10, 20}))
	seq := []path.ID{0, 1, 0, 1}
	var predicted []path.ID
	for _, id := range seq {
		if n.Observe(id) {
			predicted = append(predicted, id)
		}
	}
	if len(predicted) != 1 || predicted[0] != 1 {
		t.Fatalf("predicted %v, want [1] (tail executing when head count hits 4)", predicted)
	}
	// Counter reset: four more unpredicted executions of path 0 select it.
	for i := 0; i < 3; i++ {
		if n.Observe(0) {
			t.Fatalf("path 0 predicted after only %d post-reset executions", i+1)
		}
	}
	if !n.Observe(0) {
		t.Fatal("path 0 not predicted after counter reset + 4 executions")
	}
	if !n.IsPredicted(0) || !n.IsPredicted(1) {
		t.Error("both tails of head 10 should now be predicted")
	}
	if n.IsPredicted(2) {
		t.Error("path with different head predicted spuriously")
	}
}

func TestNETCounterSpacePerHead(t *testing.T) {
	heads := []int{10, 10, 20, 30, 30}
	n := NewNET(100, headTable(heads))
	for i := range heads {
		n.Observe(path.ID(i))
	}
	if n.CounterSpace() != 3 {
		t.Errorf("CounterSpace = %d, want 3 (distinct heads)", n.CounterSpace())
	}
}

func TestNETSingleRetiresHead(t *testing.T) {
	n := NewNETSingle(2, headTable([]int{10, 10}))
	n.Observe(0)
	if !n.Observe(0) {
		t.Fatal("path 0 not predicted at τ=2")
	}
	// Head retired: path 1 can never be predicted.
	for i := 0; i < 10; i++ {
		if n.Observe(1) {
			t.Fatal("net-single predicted a second tail for the same head")
		}
	}
	if n.CounterSpace() != 1 {
		t.Errorf("CounterSpace = %d, want 1", n.CounterSpace())
	}
	if n.Name() != "net-single" {
		t.Errorf("Name = %q", n.Name())
	}
}

func TestNETReset(t *testing.T) {
	n := NewNET(1, headTable([]int{10}))
	n.Observe(0)
	if !n.IsPredicted(0) {
		t.Fatal("τ=1 must predict on first execution")
	}
	n.Reset()
	if n.IsPredicted(0) || n.CounterSpace() != 0 || n.PredictedCount() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestImmediate(t *testing.T) {
	p := NewImmediate()
	if p.IsPredicted(0) {
		t.Fatal("predicted before first execution")
	}
	if !p.Observe(0) || !p.IsPredicted(0) {
		t.Fatal("immediate must predict on first execution")
	}
	if p.CounterSpace() != 0 {
		t.Errorf("CounterSpace = %d, want 0", p.CounterSpace())
	}
	p.Reset()
	if p.IsPredicted(0) {
		t.Error("Reset did not clear")
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle([]bool{true, false})
	if !o.Observe(0) || o.Observe(1) {
		t.Fatal("oracle must predict exactly the hot set")
	}
	if !o.IsPredicted(0) || o.IsPredicted(1) {
		t.Error("oracle membership wrong")
	}
	if o.Observe(path.ID(99)) { // out of range: cold
		t.Error("out-of-range path predicted")
	}
	o.Reset()
	if o.PredictedCount() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestNames(t *testing.T) {
	if NewPathProfile(1).Name() != "pathprofile" {
		t.Error("pathprofile name")
	}
	if NewNET(1, headTable([]int{0})).Name() != "net" {
		t.Error("net name")
	}
	if NewImmediate().Name() != "immediate" {
		t.Error("immediate name")
	}
	if NewOracle(nil).Name() != "oracle" {
		t.Error("oracle name")
	}
}
