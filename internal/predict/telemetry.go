// Telemetry for the online predictors. The replay evaluator owns millions of
// Observe calls per sweep cell, so only the rare transition — a path newly
// predicted hot — is instrumented, and only when a Sink was installed; the
// disabled path is one nil check inside an already-taken branch.
package predict

import (
	"netpath/internal/path"
	"netpath/internal/telemetry"
)

// telPredictions counts paths newly predicted hot across all schemes.
var telPredictions = telemetry.NewCounter("predict_predictions_total",
	"paths newly predicted hot (all schemes)")

// SetTelemetry installs the sink new predictions are reported through
// (nil disables, the default). Promoted to every predictor embedding
// predictedSet.
func (s *predictedSet) SetTelemetry(t *telemetry.Sink) { s.tel = t }

// report accounts one newly predicted path; head is the path's head address
// when the scheme knows it (-1 otherwise).
func (s *predictedSet) report(id path.ID, head int) {
	if s.tel == nil {
		return
	}
	s.tel.Inc(telPredictions)
	s.tel.Emit(telemetry.EvPredict, 0, head, int64(id))
}
