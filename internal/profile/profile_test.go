package profile

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/prog"
)

// biasedLoop builds a loop of n iterations whose body branches on the parity
// of a data word: Mem[data+i%len] < split takes the "then" arm.
func biasedLoop(t *testing.T, n int64, data []int64, split int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("biased")
	b.SetMemSize(16 + len(data))
	for i, v := range data {
		b.SetMem(16+i, v)
	}
	m := b.Func("main")
	m.MovI(0, 0) // i
	m.MovI(5, int64(len(data)))
	m.Label("loop")
	m.RemI(1, 0, int64(len(data)))
	m.AddI(1, 1, 16)
	m.Load(2, 1, 0) // r2 = data[i % len]
	m.BrI(isa.Lt, 2, split, "then")
	m.AddI(3, 3, 1) // else arm
	m.Jmp("join")
	m.Label("then")
	m.AddI(4, 4, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, n, "loop")
	m.Halt()
	return b.MustBuild()
}

func TestCollectCountsFlow(t *testing.T) {
	// Alternating data: exactly two distinct loop paths, 50 iterations each.
	data := []int64{0, 10}
	p := biasedLoop(t, 100, data, 5)
	pr, err := Collect(p, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if pr.Flow != int64(len(pr.Stream)) {
		t.Errorf("Flow = %d, len(Stream) = %d", pr.Flow, len(pr.Stream))
	}
	var sum int64
	for _, f := range pr.Freq {
		sum += f
	}
	if sum != pr.Flow {
		t.Errorf("sum(Freq) = %d != Flow %d", sum, pr.Flow)
	}
	// The two loop-body paths each execute ~50 times; everything else is
	// prologue/epilogue noise with tiny counts.
	top := pr.TopPaths(2)
	if len(top) < 2 {
		t.Fatalf("expected >= 2 paths, got %d", pr.NumPaths())
	}
	for _, pc := range top {
		if pc.Freq < 45 || pc.Freq > 55 {
			t.Errorf("top path freq = %d, want ~50", pc.Freq)
		}
	}
}

func TestHotSet(t *testing.T) {
	data := []int64{0, 10, 0, 0} // 75% biased toward "then"
	p := biasedLoop(t, 1000, data, 5)
	pr, err := Collect(p, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	hs := pr.Hot(0.001)
	if hs.Count == 0 {
		t.Fatal("no hot paths at 0.1%")
	}
	// Hot flow must be consistent with membership.
	var flow int64
	var count int
	for id, hot := range hs.IsHot {
		if hot {
			flow += pr.Freq[id]
			count++
			if pr.Freq[id] <= hs.Threshold {
				t.Errorf("path %d hot with freq %d <= threshold %d", id, pr.Freq[id], hs.Threshold)
			}
		} else if pr.Freq[id] > hs.Threshold {
			t.Errorf("path %d cold with freq %d > threshold %d", id, pr.Freq[id], hs.Threshold)
		}
	}
	if flow != hs.Flow || count != hs.Count {
		t.Errorf("HotSet flow/count = %d/%d, recomputed %d/%d", hs.Flow, hs.Count, flow, count)
	}
	pct := hs.FlowPct(pr)
	if pct <= 90 || pct > 100 {
		t.Errorf("hot flow pct = %.1f, want >90 (dominant loop paths)", pct)
	}
}

func TestTopPathsSorted(t *testing.T) {
	p := biasedLoop(t, 200, []int64{0, 10, 0}, 5)
	pr, err := Collect(p, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	all := pr.TopPaths(0)
	if len(all) != pr.NumPaths() {
		t.Errorf("TopPaths(0) = %d paths, want %d", len(all), pr.NumPaths())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Freq < all[i].Freq {
			t.Fatal("TopPaths not sorted by frequency")
		}
		if all[i-1].Freq == all[i].Freq && all[i-1].ID >= all[i].ID {
			t.Fatal("TopPaths tie-break by ID violated")
		}
	}
}

func TestHeadFreqSumsToFlow(t *testing.T) {
	p := biasedLoop(t, 300, []int64{0, 10}, 5)
	pr, err := Collect(p, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	var sum int64
	for _, f := range pr.HeadFreq() {
		sum += f
	}
	if sum != pr.Flow {
		t.Errorf("sum(HeadFreq) = %d, want Flow %d", sum, pr.Flow)
	}
	if pr.UniqueHeads() > pr.NumPaths() {
		t.Errorf("heads %d > paths %d", pr.UniqueHeads(), pr.NumPaths())
	}
}

func TestCollectStepLimitTruncates(t *testing.T) {
	p := biasedLoop(t, 1_000_000, []int64{0, 10}, 5)
	pr, err := Collect(p, 5000)
	if err != nil {
		t.Fatalf("Collect with limit: %v", err)
	}
	if pr.Steps > 5000 {
		t.Errorf("Steps = %d, want <= 5000", pr.Steps)
	}
	if pr.Flow == 0 {
		t.Error("truncated run produced no paths")
	}
}

func TestDeterministicProfiles(t *testing.T) {
	p := biasedLoop(t, 500, []int64{0, 10, 0, 10, 10}, 5)
	pr1, err1 := Collect(p, 0)
	pr2, err2 := Collect(p, 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("Collect: %v, %v", err1, err2)
	}
	if pr1.Flow != pr2.Flow || pr1.NumPaths() != pr2.NumPaths() {
		t.Fatal("profiles differ across identical runs")
	}
	for i := range pr1.Stream {
		if pr1.Stream[i] != pr2.Stream[i] {
			t.Fatalf("stream diverges at %d", i)
		}
	}
}
