// Package profile collects and queries offline ("oracle") path profiles: the
// complete frequency distribution over the interprocedural forward paths a
// program executed. The abstract prediction metrics (hit rate, noise) are
// defined against these profiles, and Table 1 of the paper is computed
// directly from them.
package profile

import (
	"fmt"
	"sort"

	"netpath/internal/path"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// Profile is a complete path profile of one program run.
type Profile struct {
	Program *prog.Program
	Paths   *path.Interner
	// Stream is the sequence of completed path executions in program order;
	// the online predictors are evaluated by replaying it.
	Stream []path.ID
	// Freq[id] is the execution frequency of path id.
	Freq []int64
	// Flow is the total number of path executions (== len(Stream)).
	Flow int64
	// Steps is the number of machine instructions executed.
	Steps int64
}

// Collect runs the program to completion (or maxSteps) under a path tracker
// and returns its full path profile. maxSteps <= 0 means unlimited.
func Collect(p *prog.Program, maxSteps int64) (*Profile, error) {
	m := vm.New(p)
	return CollectMachine(m, maxSteps)
}

// CollectMachine is Collect on a caller-prepared machine (already reset).
func CollectMachine(m *vm.Machine, maxSteps int64) (*Profile, error) {
	// The stream grows by one ID per completed path; start it with room for a
	// healthy run so early growth doesn't dominate small collections.
	pr := &Profile{Program: m.Prog, Paths: path.NewInterner(), Stream: make([]path.ID, 0, 4096)}
	tr := path.NewTracker(pr.Paths, m.PC, func(c path.Completed) {
		pr.Stream = append(pr.Stream, c.ID)
	})
	m.SetSink(tr)
	err := m.Run(maxSteps)
	if err == vm.ErrStepLimit {
		err = nil // a truncated run still yields a valid profile
	}
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	tr.Finish()
	m.SetSink(nil)

	pr.Freq = make([]int64, pr.Paths.NumPaths())
	for _, id := range pr.Stream {
		pr.Freq[id]++
	}
	pr.Flow = int64(len(pr.Stream))
	pr.Steps = m.Steps
	return pr, nil
}

// NumPaths returns the number of distinct executed paths.
func (pr *Profile) NumPaths() int { return pr.Paths.NumPaths() }

// HotSet is the set of hot paths for a given threshold.
type HotSet struct {
	// Threshold is the absolute frequency h; a path is hot iff freq > h.
	Threshold int64
	// IsHot[id] reports membership.
	IsHot []bool
	// Count is the number of hot paths.
	Count int
	// Flow is freq(HotPath): the total flow of the hot paths.
	Flow int64
}

// Hot computes the HotPath set for a fractional threshold: h = frac * Flow,
// and a path is hot iff freq(p) > h. The paper uses frac = 0.001 (0.1%).
func (pr *Profile) Hot(frac float64) *HotSet {
	h := int64(frac * float64(pr.Flow))
	hs := &HotSet{Threshold: h, IsHot: make([]bool, len(pr.Freq))}
	for id, f := range pr.Freq {
		if f > h {
			hs.IsHot[id] = true
			hs.Count++
			hs.Flow += f
		}
	}
	return hs
}

// FlowPct returns the percentage of total flow captured by the hot set
// (the "%Flow" column of Table 1).
func (hs *HotSet) FlowPct(pr *Profile) float64 {
	if pr.Flow == 0 {
		return 0
	}
	return 100 * float64(hs.Flow) / float64(pr.Flow)
}

// PathCount is one row of a sorted path listing.
type PathCount struct {
	ID   path.ID
	Freq int64
}

// TopPaths returns the n most frequent paths, ties broken by ID for
// determinism. n <= 0 returns all paths.
func (pr *Profile) TopPaths(n int) []PathCount {
	all := make([]PathCount, 0, len(pr.Freq))
	for id, f := range pr.Freq {
		all = append(all, PathCount{ID: path.ID(id), Freq: f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Freq != all[j].Freq {
			return all[i].Freq > all[j].Freq
		}
		return all[i].ID < all[j].ID
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// UniqueHeads returns the number of distinct path head addresses (Table 2).
func (pr *Profile) UniqueHeads() int { return pr.Paths.UniqueHeads() }

// HeadFreq returns total execution frequency per head address: the flow
// through each potential trace head. NET's counter space is its size.
func (pr *Profile) HeadFreq() map[int]int64 {
	hf := make(map[int]int64)
	for id, f := range pr.Freq {
		hf[pr.Paths.Head(path.ID(id))] += f
	}
	return hf
}
