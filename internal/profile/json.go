package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"netpath/internal/path"
)

// This file implements a JSON export/import of path profiles, the bridge
// between the online world and offline analysis (spreadsheets, plotting,
// diffing runs). The export carries the frequency table with decoded
// signatures; the execution-order stream is deliberately omitted (it is
// orders of magnitude larger and only the online replay needs it), so a
// profile read back supports the offline queries (hot sets, top paths,
// counter-space) but not Evaluate-style replay.

// jsonProfile is the serialized form.
type jsonProfile struct {
	Program string     `json:"program"`
	Flow    int64      `json:"flow"`
	Steps   int64      `json:"steps"`
	Paths   []jsonPath `json:"paths"`
}

type jsonPath struct {
	// Signature is the human-readable form ("start.history,targets").
	Signature string `json:"signature"`
	// Key is the raw interning key, base64-encoded by encoding/json;
	// it allows exact reconstruction (Signature alone is ambiguous for
	// malformed histories).
	Key      []byte `json:"key"`
	Start    int    `json:"start"`
	Branches int    `json:"branches"`
	Freq     int64  `json:"freq"`
}

// WriteJSON serializes the profile's frequency table.
func (pr *Profile) WriteJSON(w io.Writer) error {
	jp := jsonProfile{Flow: pr.Flow, Steps: pr.Steps}
	if pr.Program != nil {
		jp.Program = pr.Program.Name
	}
	jp.Paths = make([]jsonPath, 0, pr.NumPaths())
	for _, pc := range pr.TopPaths(0) { // sorted: stable, most frequent first
		info := pr.Paths.Info(pc.ID)
		jp.Paths = append(jp.Paths, jsonPath{
			Signature: info.Signature(),
			Key:       []byte(info.Key),
			Start:     info.Start,
			Branches:  info.Branches,
			Freq:      pc.Freq,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// ReadJSON reconstructs a profile (without the execution-order stream) from
// a WriteJSON export.
func ReadJSON(r io.Reader) (*Profile, error) {
	var jp jsonProfile
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("profile: decoding JSON: %w", err)
	}
	pr := &Profile{Paths: path.NewInterner(), Flow: jp.Flow, Steps: jp.Steps}
	pr.Freq = make([]int64, 0, len(jp.Paths))
	var sum int64
	for i, p := range jp.Paths {
		if len(p.Key) < 4 {
			return nil, fmt.Errorf("profile: path %d has a malformed key", i)
		}
		if p.Freq < 0 {
			return nil, fmt.Errorf("profile: path %d has negative frequency", i)
		}
		id := pr.Paths.Intern(string(p.Key), p.Start, p.Branches)
		if int(id) != i {
			return nil, fmt.Errorf("profile: duplicate path key at index %d", i)
		}
		pr.Freq = append(pr.Freq, p.Freq)
		sum += p.Freq
	}
	if sum != pr.Flow {
		return nil, fmt.Errorf("profile: frequencies sum to %d but flow is %d", sum, pr.Flow)
	}
	return pr, nil
}
