package profile

import (
	"bytes"
	"strings"
	"testing"

	"netpath/internal/path"
)

func TestJSONRoundTrip(t *testing.T) {
	p := biasedLoop(t, 500, []int64{0, 10, 0}, 5)
	pr, err := Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Flow != pr.Flow || got.Steps != pr.Steps || got.NumPaths() != pr.NumPaths() {
		t.Fatalf("round-trip mismatch: flow %d/%d paths %d/%d",
			got.Flow, pr.Flow, got.NumPaths(), pr.NumPaths())
	}
	// Frequencies per signature must be preserved (IDs may permute).
	for id := 0; id < pr.NumPaths(); id++ {
		info := pr.Paths.Info(path.ID(id))
		gid := got.Paths.Lookup(info.Key)
		if gid < 0 {
			t.Fatalf("signature %q missing after round-trip", info.Signature())
		}
		if got.Freq[gid] != pr.Freq[id] {
			t.Errorf("freq mismatch for %q: %d vs %d", info.Signature(), got.Freq[gid], pr.Freq[id])
		}
	}
	// Offline queries work on the reconstructed profile.
	hs1, hs2 := pr.Hot(0.001), got.Hot(0.001)
	if hs1.Count != hs2.Count || hs1.Flow != hs2.Flow {
		t.Error("hot sets differ after round-trip")
	}
	if pr.UniqueHeads() != got.UniqueHeads() {
		t.Error("head counts differ after round-trip")
	}
}

func TestJSONHumanReadable(t *testing.T) {
	p := biasedLoop(t, 50, []int64{0, 10}, 5)
	pr, err := Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"program": "biased"`, `"signature"`, `"freq"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{not json",
		"badKey":       `{"flow":0,"paths":[{"key":"YQ==","freq":0}]}`,
		"negFreq":      `{"flow":-1,"paths":[{"key":"YWFhYWE=","freq":-1}]}`,
		"flowMismatch": `{"flow":5,"paths":[{"key":"YWFhYWE=","freq":1}]}`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(src)); err == nil {
				t.Errorf("ReadJSON(%q) succeeded, want error", src)
			}
		})
	}
}

func TestReadJSONDuplicateKeys(t *testing.T) {
	// Two entries with the same key must be rejected.
	src := `{"flow":2,"paths":[
		{"key":"YWFhYWE=","freq":1},
		{"key":"YWFhYWE=","freq":1}]}`
	if _, err := ReadJSON(strings.NewReader(src)); err == nil {
		t.Error("duplicate keys must be rejected")
	}
}
