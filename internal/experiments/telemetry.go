// Telemetry for the experiment pipeline: cell-grained progress counters (one
// atomic per cell — the cells themselves run for milliseconds to seconds, so
// this is nowhere near a hot path) and the policy for handing telemetry sinks
// to the systems the grids spawn.
package experiments

import (
	"netpath/internal/dynamo"
	"netpath/internal/predict"
	"netpath/internal/telemetry"
)

// Grid progress: planned is bumped when a grid is scheduled, done as each
// cell completes. done/planned drives the stderr progress line and the
// /snapshot ETA math.
var (
	telCellsPlanned = telemetry.NewCounter("experiments_cells_planned_total",
		"experiment grid cells scheduled")
	telCellsDone = telemetry.NewCounter("experiments_cells_done_total",
		"experiment grid cells completed")
)

// ProgressCounters returns the (done, planned) cell counters for progress
// reporting (see telemetry.StartProgress).
func ProgressCounters() (done, planned *telemetry.Counter) {
	return telCellsDone, telCellsPlanned
}

// telSink returns a fresh write handle on the default registry when the
// process opted into telemetry collection, nil otherwise. One sink per grid
// cell keeps parallel cells on distinct counter shards.
func telSink() *telemetry.Sink {
	if !telemetry.Active() {
		return nil
	}
	return telemetry.Def.NewSink()
}

// attachPredictor installs sink on predictors that accept one (the concrete
// schemes embed predict.predictedSet; the interface stays telemetry-free).
func attachPredictor(p predict.Predictor, sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	if t, ok := p.(interface{ SetTelemetry(*telemetry.Sink) }); ok {
		t.SetTelemetry(sink)
	}
}

// planCells accounts a grid of n cells about to run.
func planCells(n int) { telCellsPlanned.Add(int64(n)) }

// cellDone accounts one completed grid cell, preferring the cell's own sink
// shard when it has one.
func cellDone(sink *telemetry.Sink) {
	if sink != nil {
		sink.Inc(telCellsDone)
		return
	}
	telCellsDone.Inc()
}

// dynamoSink wires cfg to report into the default registry when telemetry is
// active, returning the sink used (nil when inactive).
func dynamoSink(cfg *dynamo.Config) *telemetry.Sink {
	s := telSink()
	cfg.Telemetry = s
	return s
}
