package experiments

import (
	"strings"
	"testing"

	"netpath/internal/metrics"
	"netpath/internal/predict"
)

func evalHit(t *testing.T, bp BenchProfile, scheme string, head predict.HeadOf) float64 {
	t.Helper()
	return metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNET(20, head), 20).HitRate()
}

func evalHitSingle(t *testing.T, bp BenchProfile, head predict.HeadOf) float64 {
	t.Helper()
	return metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNETSingle(20, head), 20).HitRate()
}

func TestBoaReportRenders(t *testing.T) {
	bps := collect(t)
	out, err := BoaReport(bps, expScale, 20)
	if err != nil {
		t.Fatalf("BoaReport: %v", err)
	}
	for _, want := range []string{"Boa-style", "phantom", "NET hit", "compress"} {
		if !strings.Contains(out, want) {
			t.Errorf("BoaReport missing %q", want)
		}
	}
}

func TestAblationReportRenders(t *testing.T) {
	bps := collect(t)
	out := AblationReport(bps, 20)
	for _, want := range []string{"Ablation", "net-single", "oracle", "immediate"} {
		if !strings.Contains(out, want) {
			t.Errorf("AblationReport missing %q", want)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	// Structural invariants of the ablation at any delay: oracle and
	// immediate dominate both NET variants on hit rate, and net dominates
	// net-single (secondary selection only adds coverage).
	bps := collect(t)
	out := AblationReport(bps, 20)
	_ = out
	// Recompute directly for the assertion (the report is for humans).
	for _, bp := range bps {
		head := bp.Prof.Paths.Head
		net := evalHit(t, bp, "net", head)
		single := evalHitSingle(t, bp, head)
		if single > net+0.01 {
			t.Errorf("%s: net-single hit %.2f exceeds net %.2f", bp.Name, single, net)
		}
	}
}
