package experiments

import "testing"

// TestRunTimeToPeak locks the experiment's headline property at a small
// scale: the restored run reaches the cold run's steady-state coverage in a
// small fraction of the cold run's guest steps.
func TestRunTimeToPeak(t *testing.T) {
	results, err := RunTimeToPeak([]string{"compress"}, 0.05, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.SteadyCov < 0.5 {
		t.Errorf("steady coverage = %.3f, want a mostly-cached steady state", r.SteadyCov)
	}
	if r.Restored == 0 {
		t.Error("warm run restored no fragments")
	}
	if r.ColdSteps <= 0 || r.WarmSteps <= 0 {
		t.Fatalf("degenerate peaks: cold %d, warm %d", r.ColdSteps, r.WarmSteps)
	}
	// The acceptance bar for the committed benchmark entries is 25%; at test
	// scale allow 50% so a noisy tiny workload cannot flake the suite while a
	// real warm-start regression still fails.
	if ratio := float64(r.WarmSteps) / float64(r.ColdSteps); ratio > 0.5 {
		t.Errorf("warm/cold = %.3f, want <= 0.5 (warm %d steps, cold %d steps)",
			ratio, r.WarmSteps, r.ColdSteps)
	}
}

// TestStepsToPeak pins the rolling-window crossing logic on a synthetic
// curve.
func TestStepsToPeak(t *testing.T) {
	// 64-event probes; coverage ramps 0, 0.25, 0.5, 1.0, 1.0, 1.0 ...
	curve := []covPoint{
		{steps: 100, entered: 0, events: 64},
		{steps: 200, entered: 16, events: 128},
		{steps: 300, entered: 48, events: 192},
		{steps: 400, entered: 112, events: 256},
		{steps: 500, entered: 176, events: 320},
		{steps: 600, entered: 240, events: 384},
		{steps: 700, entered: 304, events: 448},
		{steps: 800, entered: 368, events: 512},
	}
	// Rolling 4-probe windows: the window ending at curve[6] spans events
	// 192..448 with 256 entered → coverage 1.0; the one at curve[5] spans
	// 128..384 with 224/256 = 0.875.
	steps, cov := stepsToPeak(curve, 0.9)
	if steps != 700 {
		t.Errorf("stepsToPeak = %d, want 700 (cov %.3f)", steps, cov)
	}
	if cov != 1.0 {
		t.Errorf("crossing coverage = %.3f, want 1.0", cov)
	}
	// Unreachable target falls back to the final probe.
	steps, _ = stepsToPeak(curve, 2.0)
	if steps != 800 {
		t.Errorf("unreachable target: steps = %d, want last probe 800", steps)
	}
	if s, c := stepsToPeak(nil, 0.5); s != 0 || c != 0 {
		t.Errorf("empty curve: got %d, %.3f", s, c)
	}
}

// TestSteadyCoverage: the estimate averages the final quarter's windows.
func TestSteadyCoverage(t *testing.T) {
	var curve []covPoint
	// 16 probes: first half cold (no coverage), second half fully cached.
	var entered int64
	for i := 1; i <= 16; i++ {
		if i > 8 {
			entered += 64
		}
		curve = append(curve, covPoint{steps: int64(i * 100), entered: entered, events: int64(i * 64)})
	}
	if got := steadyCoverage(curve); got != 1.0 {
		t.Errorf("steadyCoverage = %.3f, want 1.0 (final quarter is fully cached)", got)
	}
	if got := steadyCoverage(nil); got != 0 {
		t.Errorf("steadyCoverage(nil) = %.3f, want 0", got)
	}
}
