package experiments

import (
	"context"
	"fmt"

	"netpath/internal/chaos"
	"netpath/internal/dynamo"
	"netpath/internal/par"
	"netpath/internal/prog"
	"netpath/internal/tables"
	"netpath/internal/workload"
)

// chaosBaseRates is the ×1 soft-fault mix of the chaos experiment, in events
// per million machine steps. Only soft faults are swept — recording aborts,
// fragment aborts, counter corruption, selection spikes — so every run
// completes and the speedups stay comparable; hard machine traps end a run
// by design and are exercised by the test suite instead.
var chaosBaseRates = chaos.Rates{
	RecordAbortPerM: 200, // effective only during recording steps (rare)
	FragAbortPerM:   0.5, // effective during fragment steps (most of a good run)
	CorruptPerM:     1,
	SpikePerM:       0.1,
	SpikeLen:        16,
}

// ChaosMultipliers are the fault-rate multipliers of the sweep (0 = clean).
var ChaosMultipliers = []float64{0, 1, 3, 10, 100}

// chaosSeed fixes the injector schedule so the report is reproducible.
const chaosSeed = 42

// ChaosResult is one cell of the chaos sweep.
type ChaosResult struct {
	Bench  string
	Mult   float64
	Result dynamo.Result
}

// RunChaos sweeps the NET mini-Dynamo over every benchmark at each fault-rate
// multiplier. Every (benchmark, multiplier) cell builds its own seeded
// injector — the fault schedule depends only on (chaosSeed, rates), never on
// scheduling — so the cells run concurrently on the par pool and the result
// slice keeps the serial nested-loop order.
func RunChaos(scale float64, tau int64) ([]ChaosResult, error) {
	bs := workload.All()
	progs, err := par.MapErr(context.Background(), len(bs),
		func(_ context.Context, i int) (*prog.Program, error) {
			return bs[i].Build(scale)
		})
	if err != nil {
		return nil, err
	}
	planCells(len(bs) * len(ChaosMultipliers))
	return par.MapErr(context.Background(), len(bs)*len(ChaosMultipliers),
		func(_ context.Context, cell int) (ChaosResult, error) {
			b := bs[cell/len(ChaosMultipliers)]
			mult := ChaosMultipliers[cell%len(ChaosMultipliers)]
			cfg := dynamo.DefaultConfig(dynamo.SchemeNET, tau)
			if mult > 0 {
				cfg.Chaos = chaos.NewRandom(chaosSeed, chaosBaseRates.Scaled(mult))
			}
			sink := dynamoSink(&cfg)
			res, err := dynamo.New(progs[cell/len(ChaosMultipliers)], cfg).Run()
			if err != nil {
				return ChaosResult{}, fmt.Errorf("experiments: chaos %s ×%g: %w", b.Name, mult, err)
			}
			cellDone(sink)
			return ChaosResult{Bench: b.Name, Mult: mult, Result: res}, nil
		})
}

// ChaosReport renders the sweep: speedup per fault-rate multiplier, then the
// fault/degradation accounting at the heaviest rate. The point of the
// experiment is graceful degradation — rising fault rates must erode the
// speedup smoothly (aborted recordings waste build work, demoted fragments
// fall back to interpretation) without ever breaking a run.
func ChaosReport(scale float64, tau int64) (string, error) {
	results, err := RunChaos(scale, tau)
	if err != nil {
		return "", err
	}
	byCell := map[string]dynamo.Result{}
	for _, r := range results {
		byCell[fmt.Sprintf("%s/%g", r.Bench, r.Mult)] = r.Result
	}

	headers := []string{"Benchmark"}
	for _, m := range ChaosMultipliers {
		headers = append(headers, fmt.Sprintf("×%g", m))
	}
	t := tables.New(headers...)
	sums := make([]float64, len(ChaosMultipliers))
	counts := make([]int, len(ChaosMultipliers))
	for _, name := range workload.Names() {
		row := []any{name}
		for mi, m := range ChaosMultipliers {
			res := byCell[fmt.Sprintf("%s/%g", name, m)]
			cell := tables.SignedPct(100 * res.Speedup())
			if res.BailedOut {
				cell += " [bail]"
			} else {
				sums[mi] += 100 * res.Speedup()
				counts[mi]++
			}
			row = append(row, cell)
		}
		t.Row(row...)
	}
	avg := []any{"Average (no bail)"}
	for mi := range ChaosMultipliers {
		if counts[mi] > 0 {
			avg = append(avg, tables.SignedPct(sums[mi]/float64(counts[mi])))
		} else {
			avg = append(avg, "-")
		}
	}
	t.Row(avg...)

	heavy := ChaosMultipliers[len(ChaosMultipliers)-1]
	d := tables.New("Benchmark", "RecAborts", "FragAborts", "Demoted", "BlkSkips", "Corrupt", "Forced", "Bail")
	for _, name := range workload.Names() {
		res := byCell[fmt.Sprintf("%s/%g", name, heavy)]
		bail := "-"
		if res.BailedOut {
			bail = res.BailReason
		}
		d.Row(name,
			tables.Count(res.RecordAborts), tables.Count(res.FragAborts),
			tables.Count(int64(res.Demotions)), tables.Count(res.BlacklistSkips),
			tables.Count(res.Corruptions), tables.Count(res.ForcedSelections), bail)
	}

	return fmt.Sprintf("Chaos: NET τ=%d speedup vs soft-fault injection rate (multiples of the base mix)\n%s\nDegradation accounting at ×%g\n%s",
		tau, t.String(), heavy, d.String()), nil
}
