package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestWriteSeriesCSV(t *testing.T) {
	bps := collect(t)
	series := SweepSchemes(bps, []int64{10, 100})
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parsing CSV: %v", err)
	}
	// Header + 9 benchmarks x 3 schemes x 2 taus.
	if want := 1 + 9*3*2; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "benchmark" || rows[0][2] != "tau" {
		t.Errorf("header wrong: %v", rows[0])
	}
	for _, r := range rows[1:] {
		if len(r) != len(rows[0]) {
			t.Fatal("ragged CSV row")
		}
		// Numeric fields parse.
		if _, err := strconv.ParseFloat(r[3], 64); err != nil {
			t.Fatalf("bad profiled_flow_pct %q", r[3])
		}
		profiled, _ := strconv.ParseInt(r[6], 10, 64)
		hits, _ := strconv.ParseInt(r[7], 10, 64)
		noise, _ := strconv.ParseInt(r[8], 10, 64)
		flow, _ := strconv.ParseInt(r[9], 10, 64)
		if profiled+hits+noise != flow {
			t.Fatalf("flow not conserved in CSV row %v", r)
		}
	}
}

func TestWriteFig5CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamo grid is slow")
	}
	grid, err := RunFig5(expScale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, grid); err != nil {
		t.Fatalf("WriteFig5CSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parsing CSV: %v", err)
	}
	// 6 scheme×τ combos plus the static scheme's single τ=0 column.
	if want := 1 + 9*7; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows[1:] {
		if r[7] != "true" && r[7] != "false" {
			t.Errorf("bailed_out = %q", r[7])
		}
	}
}
