package experiments

import (
	"fmt"
	"strings"

	"netpath/internal/boa"
	"netpath/internal/metrics"
	"netpath/internal/par"
	"netpath/internal/predict"
	"netpath/internal/tables"
	"netpath/internal/workload"
)

// BoaReport compares Boa-style edge-profile path construction (related
// work, Section 7) against NET at the same prediction delay. Boa pays one
// profiling operation per executed branch; NET pays one per path head
// execution. Boa also constructs phantom paths — per-branch majorities
// combined into a path that never executes as a whole — which the paper
// cites as the scheme's structural weakness.
func BoaReport(bps []BenchProfile, scale float64, tau int64) (string, error) {
	t := tables.New("Benchmark", "heads", "constructed", "phantom", "aborted",
		"Boa hit", "Boa noise", "NET hit", "NET noise", "Boa ops", "NET ops")
	for _, bp := range bps {
		b, err := workload.ByName(bp.Name)
		if err != nil {
			return "", err
		}
		p, err := b.Build(scale)
		if err != nil {
			return "", err
		}
		rep, err := boa.Evaluate(p, bp.Prof, bp.Hot, tau)
		if err != nil {
			return "", fmt.Errorf("boa %s: %w", bp.Name, err)
		}
		net := metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNET(tau, bp.Prof.Paths.Head), tau)
		t.Row(bp.Name, rep.Heads, rep.Constructed, rep.Phantoms, rep.Aborted,
			tables.Pct(rep.HitRate()), tables.Pct(rep.NoiseRate()),
			tables.Pct(net.HitRate()), tables.Pct(net.NoiseRate()),
			tables.Count(rep.Updates), tables.Count(bp.Prof.Flow))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Boa-style edge-profile path construction vs NET at τ=%d (related work, §7)\n", tau)
	b.WriteString("Boa profiles every branch (ops = branch executions) and builds one path per\n")
	b.WriteString("hot head from per-branch majorities; NET profiles only path-head executions\n")
	b.WriteString("(ops = path executions) and selects tails that actually ran. 'phantom'\n")
	b.WriteString("counts constructed paths that never execute as a whole (ignored branch\n")
	b.WriteString("correlation).\n\n")
	b.WriteString(t.String())
	return b.String(), nil
}

// AblationReport compares NET against its design ablations and the
// reference bounds on the abstract metrics, at one delay:
//
//   - net: the full scheme (head counters reset on selection — Dynamo's
//     secondary trace formation);
//   - net-single: primary traces only (each head selects once, ever);
//   - pathprofile: full per-path counters;
//   - oracle: predicts exactly the hot set at first execution (upper bound
//     at zero noise);
//   - immediate: predicts everything at first execution (upper bound on
//     both hit rate and noise).
func AblationReport(bps []BenchProfile, tau int64) string {
	// Five independent replays per benchmark; rows fan out on the pool.
	rows := par.Map(len(bps), func(i int) [5]metrics.Point {
		bp := bps[i]
		head := bp.Prof.Paths.Head
		return [5]metrics.Point{
			metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNET(tau, head), tau),
			metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNETSingle(tau, head), tau),
			metrics.Evaluate(bp.Prof, bp.Hot, predict.NewPathProfile(tau), tau),
			metrics.Evaluate(bp.Prof, bp.Hot, predict.NewOracle(bp.Hot.IsHot), tau),
			metrics.Evaluate(bp.Prof, bp.Hot, predict.NewImmediate(), tau),
		}
	})
	t := tables.New("Benchmark",
		"net hit", "net-single hit", "pathprofile hit", "oracle hit", "immediate hit",
		"net noise", "net-single noise")
	for i, r := range rows {
		net, single, pp, oracle, imm := r[0], r[1], r[2], r[3], r[4]
		t.Row(bps[i].Name,
			tables.Pct(net.HitRate()), tables.Pct(single.HitRate()),
			tables.Pct(pp.HitRate()), tables.Pct(oracle.HitRate()), tables.Pct(imm.HitRate()),
			tables.Pct(net.NoiseRate()), tables.Pct(single.NoiseRate()))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: NET variants and reference bounds at τ=%d\n", tau)
	b.WriteString("net-single disables the counter reset (primary traces only): its hit-rate\n")
	b.WriteString("deficit against net measures how much of NET's coverage comes from\n")
	b.WriteString("secondary tail selection.\n\n")
	b.WriteString(t.String())
	return b.String()
}
