package experiments

import (
	"bytes"
	"testing"

	"netpath/internal/profile"
	"netpath/internal/vm"
	"netpath/internal/workload"
)

// TestProfileEngineEquivalence pins the experiment layer's inputs across
// execution engines: the path profile a workload produces — the stream the
// whole experiment grid is computed from — must serialize to byte-identical
// JSON whether the machine runs the predecoded engine or the legacy switch
// decoder.
func TestProfileEngineEquivalence(t *testing.T) {
	for _, name := range []string{"compress", "deltablue"} {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Build(0.01)
		if err != nil {
			t.Fatal(err)
		}

		fast, err := profile.Collect(p, 0)
		if err != nil {
			t.Fatalf("%s fast: %v", name, err)
		}

		lm := vm.New(p)
		lm.SetEngine(vm.EngineLegacy)
		legacy, err := profile.CollectMachine(lm, 0)
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}

		var fb, lb bytes.Buffer
		if err := fast.WriteJSON(&fb); err != nil {
			t.Fatal(err)
		}
		if err := legacy.WriteJSON(&lb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fb.Bytes(), lb.Bytes()) {
			t.Errorf("%s: profile JSON differs between engines (fast %d bytes, legacy %d bytes)",
				name, fb.Len(), lb.Len())
		}
	}
}
