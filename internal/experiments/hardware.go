package experiments

import (
	"context"
	"fmt"
	"strings"

	"netpath/internal/branchpred"
	"netpath/internal/dynamo"
	"netpath/internal/par"
	"netpath/internal/tables"
	"netpath/internal/tracecache"
	"netpath/internal/workload"
)

// HardwareReport measures the hardware schemes of the related-work section
// on the benchmark suite — branch predictor accuracies (bimodal, gshare,
// two-level) and a trace cache's instruction coverage — next to the
// mini-Dynamo's NET fragment coverage.
//
// The comparison underlines the paper's closing point: hardware predicts
// branches extremely well and a trace cache supplies much of the fetch
// stream, but neither is architecturally visible to a dynamic optimizer;
// NET gets comparable instruction coverage from software counters at path
// heads only.
func HardwareReport(scale float64, tau int64) (string, error) {
	type row struct {
		bi, gs, tl branchpred.Result
		tc         tracecache.Stats
		dres       dynamo.Result
	}
	bs := workload.All()
	// Five independent simulations per benchmark; fan every row out on the
	// pool and render in benchmark order afterwards.
	rows, err := par.MapErr(context.Background(), len(bs),
		func(_ context.Context, i int) (row, error) {
			b := bs[i]
			p, err := b.Build(scale)
			if err != nil {
				return row{}, err
			}
			var r row
			if r.bi, err = branchpred.Measure(p, branchpred.NewBimodal(14), 0); err != nil {
				return row{}, fmt.Errorf("hardware %s: %w", b.Name, err)
			}
			if r.gs, err = branchpred.Measure(p, branchpred.NewGShare(14), 0); err != nil {
				return row{}, err
			}
			if r.tl, err = branchpred.Measure(p, branchpred.NewTwoLevel(12), 0); err != nil {
				return row{}, err
			}
			if r.tc, err = tracecache.Measure(p, tracecache.Config{}, 0); err != nil {
				return row{}, err
			}
			cfg := dynamo.DefaultConfig(dynamo.SchemeNET, tau)
			cfg.BailoutAfter = 0 // coverage comparison needs the full run
			if r.dres, err = dynamo.New(p, cfg).Run(); err != nil {
				return row{}, err
			}
			return r, nil
		})
	if err != nil {
		return "", err
	}
	t := tables.New("Benchmark", "bimodal", "gshare", "two-level",
		"trace$ supplied", "trace$ hit rate", "NET cached")
	for i, r := range rows {
		t.Row(bs[i].Name,
			tables.Pct(r.bi.Accuracy()), tables.Pct(r.gs.Accuracy()), tables.Pct(r.tl.Accuracy()),
			tables.Pct(r.tc.SuppliedPct()), tables.Pct(r.tc.HitRate()),
			tables.Pct(100*r.dres.CachedFraction()))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Hardware schemes (related work, §7) vs NET software selection at τ=%d\n", tau)
	b.WriteString("Branch predictor columns are direction-prediction accuracy; 'trace$\n")
	b.WriteString("supplied' is the fraction of instructions a Rotenberg-style trace cache\n")
	b.WriteString("delivers; 'NET cached' is the mini-Dynamo fragment-cache fraction. The\n")
	b.WriteString("hardware is fast but architecturally invisible; NET reaches comparable\n")
	b.WriteString("coverage with software counters at path heads only.\n\n")
	b.WriteString(t.String())
	return b.String(), nil
}
