package experiments

import (
	"fmt"
	"strings"

	"netpath/internal/branchpred"
	"netpath/internal/dynamo"
	"netpath/internal/tables"
	"netpath/internal/tracecache"
	"netpath/internal/workload"
)

// HardwareReport measures the hardware schemes of the related-work section
// on the benchmark suite — branch predictor accuracies (bimodal, gshare,
// two-level) and a trace cache's instruction coverage — next to the
// mini-Dynamo's NET fragment coverage.
//
// The comparison underlines the paper's closing point: hardware predicts
// branches extremely well and a trace cache supplies much of the fetch
// stream, but neither is architecturally visible to a dynamic optimizer;
// NET gets comparable instruction coverage from software counters at path
// heads only.
func HardwareReport(scale float64, tau int64) (string, error) {
	t := tables.New("Benchmark", "bimodal", "gshare", "two-level",
		"trace$ supplied", "trace$ hit rate", "NET cached")
	for _, b := range workload.All() {
		p, err := b.Build(scale)
		if err != nil {
			return "", err
		}
		bi, err := branchpred.Measure(p, branchpred.NewBimodal(14), 0)
		if err != nil {
			return "", fmt.Errorf("hardware %s: %w", b.Name, err)
		}
		gs, err := branchpred.Measure(p, branchpred.NewGShare(14), 0)
		if err != nil {
			return "", err
		}
		tl, err := branchpred.Measure(p, branchpred.NewTwoLevel(12), 0)
		if err != nil {
			return "", err
		}
		tc, err := tracecache.Measure(p, tracecache.Config{}, 0)
		if err != nil {
			return "", err
		}
		cfg := dynamo.DefaultConfig(dynamo.SchemeNET, tau)
		cfg.BailoutAfter = 0 // coverage comparison needs the full run
		dres, err := dynamo.New(p, cfg).Run()
		if err != nil {
			return "", err
		}
		t.Row(b.Name,
			tables.Pct(bi.Accuracy()), tables.Pct(gs.Accuracy()), tables.Pct(tl.Accuracy()),
			tables.Pct(tc.SuppliedPct()), tables.Pct(tc.HitRate()),
			tables.Pct(100*dres.CachedFraction()))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Hardware schemes (related work, §7) vs NET software selection at τ=%d\n", tau)
	b.WriteString("Branch predictor columns are direction-prediction accuracy; 'trace$\n")
	b.WriteString("supplied' is the fraction of instructions a Rotenberg-style trace cache\n")
	b.WriteString("delivers; 'NET cached' is the mini-Dynamo fragment-cache fraction. The\n")
	b.WriteString("hardware is fast but architecturally invisible; NET reaches comparable\n")
	b.WriteString("coverage with software counters at path heads only.\n\n")
	b.WriteString(t.String())
	return b.String(), nil
}
