// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5 and 6) on the synthetic benchmark suite. It is the
// shared engine behind cmd/hotpath and the repository's benchmark harness.
//
// Experiment index:
//
//	Table 1  — benchmark set: paths, flow, 0.1% HotPath size and coverage
//	Table 2  — paths vs unique path heads (counter space)
//	Figure 2 — hit rate vs profiled flow, path-profile vs NET, sweep of τ
//	Figure 3 — noise rate vs profiled flow, same sweep
//	Figure 4 — NET counter space normalized to path-profile counter space
//	Figure 5 — mini-Dynamo speedup over native, NET vs path-profile, τ ∈ {10,50,100}
//	Phases   — §6.1/§7 extension: windowed hit/noise with retiring
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"netpath/internal/dynamo"
	"netpath/internal/metrics"
	"netpath/internal/par"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/staticpred"
	"netpath/internal/tables"
	"netpath/internal/workload"
)

// PaperTable1 records the paper's published Table 1 values for side-by-side
// comparison: #Paths, Flow (millions), hot-set size, hot flow percentage.
var PaperTable1 = map[string]struct {
	Paths    int
	FlowM    int
	HotPaths int
	HotPct   float64
}{
	"compress":  {230, 3061, 45, 99.6},
	"gcc":       {36738, 2191, 137, 47.5},
	"go":        {29629, 1214, 172, 55.5},
	"ijpeg":     {62125, 635, 74, 93.3},
	"li":        {1391, 3985, 111, 93.8},
	"m88ksim":   {1426, 2014, 107, 92.5},
	"perl":      {2776, 1514, 146, 88.5},
	"vortex":    {5825, 3016, 95, 85.8},
	"deltablue": {505, 1799, 28, 93.9},
}

// PaperTable2 records the paper's Table 2 unique-path-head counts.
var PaperTable2 = map[string]int{
	"compress": 143, "gcc": 8873, "go": 1813, "ijpeg": 669, "li": 710,
	"m88ksim": 651, "perl": 1053, "vortex": 3414, "deltablue": 268,
}

// HotFrac is the paper's hot threshold: 0.1% of total flow.
const HotFrac = 0.001

// BenchProfile bundles a benchmark's oracle profile and hot set.
type BenchProfile struct {
	Name string
	Prof *profile.Profile
	Hot  *profile.HotSet
}

// CollectAll runs every benchmark at the given scale and collects oracle
// profiles. This is the expensive step shared by Tables 1-2 and Figures 2-4;
// each benchmark is fully independent (its own VM, tracker and interner), so
// the runs fan out over the par worker pool. Results keep workload.All()
// order regardless of scheduling; the first failure cancels the rest.
func CollectAll(scale float64) ([]BenchProfile, error) {
	bs := workload.All()
	planCells(len(bs))
	return par.MapErr(context.Background(), len(bs),
		func(_ context.Context, i int) (BenchProfile, error) {
			b := bs[i]
			p, err := b.Build(scale)
			if err != nil {
				return BenchProfile{}, fmt.Errorf("experiments: %s: %w", b.Name, err)
			}
			pr, err := profile.Collect(p, 0)
			if err != nil {
				return BenchProfile{}, fmt.Errorf("experiments: %s: %w", b.Name, err)
			}
			cellDone(nil)
			return BenchProfile{Name: b.Name, Prof: pr, Hot: pr.Hot(HotFrac)}, nil
		})
}

// Table1 renders the benchmark-set table with the paper's values alongside.
func Table1(bps []BenchProfile) string {
	t := tables.New("Benchmark", "#Paths", "Flow(K)", "Hot #Paths", "Hot %Flow",
		"paper #Paths", "paper Flow(M)", "paper Hot", "paper %Flow")
	for _, bp := range bps {
		pp := PaperTable1[bp.Name]
		t.Row(bp.Name,
			tables.Count(int64(bp.Prof.NumPaths())),
			tables.Count(bp.Prof.Flow/1000),
			bp.Hot.Count,
			tables.Pct(bp.Hot.FlowPct(bp.Prof)),
			tables.Count(int64(pp.Paths)), pp.FlowM, pp.HotPaths, tables.Pct(pp.HotPct))
	}
	return "Table 1: benchmark set (0.1% HotPath)\n" + t.String()
}

// Table2 renders paths vs unique path heads.
func Table2(bps []BenchProfile) string {
	t := tables.New("Benchmark", "#Paths", "#Heads", "Heads/Paths",
		"paper #Paths", "paper #Heads", "paper ratio")
	for _, bp := range bps {
		paths := bp.Prof.NumPaths()
		heads := bp.Prof.UniqueHeads()
		pp := PaperTable1[bp.Name]
		ph := PaperTable2[bp.Name]
		t.Row(bp.Name,
			tables.Count(int64(paths)), tables.Count(int64(heads)),
			fmt.Sprintf("%.3f", float64(heads)/float64(paths)),
			tables.Count(int64(pp.Paths)), tables.Count(int64(ph)),
			fmt.Sprintf("%.3f", float64(ph)/float64(pp.Paths)))
	}
	return "Table 2: number of paths and unique path heads\n" + t.String()
}

// Series is one benchmark's sweep under one scheme.
type Series struct {
	Scheme string
	Bench  string
	Points []metrics.Point
}

// SweepSchemes runs the τ sweep for path-profile-based, NET and static
// (profile-free) prediction over every benchmark profile. The grid is
// flattened to individual (benchmark, scheme, τ) cells — each builds a
// fresh predictor and replays the shared read-only stream — and the cells
// fan out over the par worker pool, writing into preallocated slots so the
// output is identical to the serial nested loops. The static scheme has no
// delay knob (τ is zero by construction); its series carries the same
// point at every τ and renders as the flat profile-free baseline.
func SweepSchemes(bps []BenchProfile, taus []int64) []Series {
	out := make([]Series, 0, 3*len(bps))
	facs := make([]metrics.Factory, 0, 3*len(bps))
	for _, bp := range bps {
		out = append(out, Series{Scheme: "pathprofile", Bench: bp.Name, Points: make([]metrics.Point, len(taus))})
		facs = append(facs, metrics.PathProfileFactory())
		out = append(out, Series{Scheme: "net", Bench: bp.Name, Points: make([]metrics.Point, len(taus))})
		facs = append(facs, metrics.NETFactory(bp.Prof))
		out = append(out, Series{Scheme: "static", Bench: bp.Name, Points: make([]metrics.Point, len(taus))})
		facs = append(facs, metrics.StaticFactory(bp.Prof))
	}
	planCells(len(out) * len(taus))
	par.Do(len(out)*len(taus), func(cell int) {
		si, ti := cell/len(taus), cell%len(taus)
		bp := bps[si/3]
		sink := telSink()
		pred := facs[si](taus[ti])
		attachPredictor(pred, sink)
		out[si].Points[ti] = metrics.Evaluate(bp.Prof, bp.Hot, pred, taus[ti])
		cellDone(sink)
	})
	return out
}

// StaticReport renders the profile-free static scheme head-to-head against
// NET at the paper's headline delay τ=50: hit and noise rates, the size and
// quality of the static predicted set (phantom walks predicted paths that
// never execute; aborted walks hit indirect control), and counter space —
// zero by construction for static, the scheme's defining property.
func StaticReport(bps []BenchProfile) string {
	const tau = 50
	type row struct {
		sp  *staticpred.Predictor
		st  metrics.Point
		net metrics.Point
	}
	planCells(len(bps))
	rows := par.Map(len(bps), func(i int) row {
		bp := bps[i]
		sink := telSink()
		sp, err := staticpred.Predict(bp.Prof)
		if err != nil {
			sp = staticpred.NewPredictor(bp.Prof, nil)
		}
		sp.SetTelemetry(sink)
		st := metrics.Evaluate(bp.Prof, bp.Hot, sp, 0)
		net := metrics.Evaluate(bp.Prof, bp.Hot, metrics.NETFactory(bp.Prof)(tau), tau)
		cellDone(sink)
		return row{sp: sp, st: st, net: net}
	})
	t := tables.New("Benchmark", "static hit%", "static noise%", "NET50 hit%", "NET50 noise%",
		"predicted", "phantoms", "aborts", "static ctrs", "NET ctrs")
	for i, bp := range bps {
		r := rows[i]
		t.Row(bp.Name,
			tables.Pct(r.st.HitRate()), tables.Pct(r.st.NoiseRate()),
			tables.Pct(r.net.HitRate()), tables.Pct(r.net.NoiseRate()),
			r.st.PredictedHot+r.st.PredictedCold, r.sp.Phantoms, r.sp.Aborts,
			r.st.CounterSpace, r.net.CounterSpace)
	}
	return "Static prediction: profile-free hot paths vs NET (τ=50), zero counters and zero delay\n" + t.String()
}

// rate selects which figure a rendering serves.
type rate int

const (
	hitRate rate = iota
	noiseRate
)

// renderRate renders one scheme's series set as the paper's figure data:
// per benchmark (and the cross-benchmark average), the (profiled flow %,
// rate %) pairs across the τ sweep. zoomPct > 0 restricts to points with
// profiled flow below the given percentage (the right-hand zoom panels).
func renderRate(series []Series, scheme string, r rate, zoomPct float64) string {
	var names []string
	byBench := map[string][]metrics.Point{}
	for _, s := range series {
		if s.Scheme != scheme {
			continue
		}
		byBench[s.Bench] = s.Points
		names = append(names, s.Bench)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	taus := make([]int64, 0)
	for _, pt := range byBench[names[0]] {
		taus = append(taus, pt.Tau)
	}

	label, title := "hit rate", "Hit rate"
	if r == noiseRate {
		label, title = "noise rate", "Noise rate"
	}
	headers := []string{"tau"}
	for _, n := range names {
		headers = append(headers, n)
	}
	headers = append(headers, "Average")
	t := tables.New(headers...)
	for i, tau := range taus {
		row := []any{tau}
		sumProf, sumRate := 0.0, 0.0
		include := true
		for _, n := range names {
			pt := byBench[n][i]
			v := pt.HitRate()
			if r == noiseRate {
				v = pt.NoiseRate()
			}
			row = append(row, fmt.Sprintf("%5.1f@%-5.1f", v, pt.ProfiledPct()))
			sumProf += pt.ProfiledPct()
			sumRate += v
		}
		avgProf := sumProf / float64(len(names))
		avgRate := sumRate / float64(len(names))
		if zoomPct > 0 && avgProf > zoomPct {
			include = false
		}
		row = append(row, fmt.Sprintf("%5.1f@%-5.1f", avgRate, avgProf))
		if include {
			t.Row(row...)
		}
	}
	zoom := ""
	if zoomPct > 0 {
		zoom = fmt.Sprintf(" (zoom: average profiled flow <= %.0f%%)", zoomPct)
	}
	return fmt.Sprintf("%s, %s prediction%s — cells are %s%%@profiled-flow%%\n%s",
		title, schemeTitle(scheme), zoom, label, t.String())
}

func schemeTitle(scheme string) string {
	switch scheme {
	case "net":
		return "NET"
	case "static":
		return "static (profile-free)"
	}
	return "path profile based"
}

// Fig2 renders the hit-rate figure: full range and ≤10% zoom, both schemes.
func Fig2(series []Series) string {
	var b strings.Builder
	b.WriteString("Figure 2: hit rates (percentage of 0.1% hot flow captured after prediction)\n\n")
	b.WriteString("(a) " + renderRate(series, "pathprofile", hitRate, 0) + "\n")
	b.WriteString("(b) " + renderRate(series, "pathprofile", hitRate, 10) + "\n")
	b.WriteString("(c) " + renderRate(series, "net", hitRate, 0) + "\n")
	b.WriteString("(d) " + renderRate(series, "net", hitRate, 10) + "\n")
	b.WriteString("(e) " + renderRate(series, "static", hitRate, 0) + "\n")
	return b.String()
}

// Fig3 renders the noise-rate figure.
func Fig3(series []Series) string {
	var b strings.Builder
	b.WriteString("Figure 3: noise rates (cold flow predicted, as percentage of hot flow)\n\n")
	b.WriteString("(a) " + renderRate(series, "pathprofile", noiseRate, 0) + "\n")
	b.WriteString("(b) " + renderRate(series, "pathprofile", noiseRate, 10) + "\n")
	b.WriteString("(c) " + renderRate(series, "net", noiseRate, 0) + "\n")
	b.WriteString("(d) " + renderRate(series, "net", noiseRate, 10) + "\n")
	b.WriteString("(e) " + renderRate(series, "static", noiseRate, 0) + "\n")
	return b.String()
}

// Fig4 renders NET counter space normalized to path-profile counter space.
func Fig4(bps []BenchProfile) string {
	t := tables.New("Benchmark", "NET/PP counter space", "paper ratio")
	sum := 0.0
	for _, bp := range bps {
		ratio := metrics.CounterSpaceRatio(bp.Prof)
		sum += ratio
		pp := PaperTable1[bp.Name]
		ph := PaperTable2[bp.Name]
		t.Row(bp.Name, fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%.3f", float64(ph)/float64(pp.Paths)))
	}
	t.Row("Average", fmt.Sprintf("%.3f", sum/float64(len(bps))), "0.38")
	return "Figure 4: NET counter space normalized to path-profile counter space\n" + t.String()
}

// Fig5Result is one mini-Dynamo cell of Figure 5.
type Fig5Result struct {
	Bench  string
	Result dynamo.Result
}

// Fig5Taus are the prediction delays of Figure 5.
var Fig5Taus = []int64{10, 50, 100}

// fig5Combos is the full Figure 5 configuration grid: NET and path-profile
// at the paper's delays, plus the static profile-free scheme, which has no
// delay knob (its predictions exist before the first instruction runs, so
// its only cell is τ=0).
func fig5Combos() []struct {
	Scheme dynamo.Scheme
	Tau    int64
} {
	var combos []struct {
		Scheme dynamo.Scheme
		Tau    int64
	}
	for _, s := range []dynamo.Scheme{dynamo.SchemeNET, dynamo.SchemePathProfile} {
		for _, tau := range Fig5Taus {
			combos = append(combos, struct {
				Scheme dynamo.Scheme
				Tau    int64
			}{s, tau})
		}
	}
	combos = append(combos, struct {
		Scheme dynamo.Scheme
		Tau    int64
	}{dynamo.SchemeStatic, 0})
	return combos
}

// fig5Keys lists the grid's column keys in render order.
var fig5Keys = []string{"NET10", "NET50", "NET100",
	"PathProfile10", "PathProfile50", "PathProfile100", "Static0"}

// RunFig5 executes the full Figure 5 grid: NET and path-profile at delays
// 10/50/100 plus the static scheme at its fixed τ=0, over every benchmark.
// Programs are built once per benchmark (in parallel), then every
// (benchmark, scheme, τ) cell runs as an independent mini-Dynamo instance
// on the par pool — each System owns its machine, tracker and cache, and
// the shared *prog.Program is read-only. The grid map is assembled in
// benchmark order afterwards, so it is byte-identical to a serial run.
func RunFig5(scale float64) (map[string][]Fig5Result, error) {
	bs := workload.All()
	progs, err := par.MapErr(context.Background(), len(bs),
		func(_ context.Context, i int) (*prog.Program, error) {
			return bs[i].Build(scale)
		})
	if err != nil {
		return nil, err
	}
	combos := fig5Combos()
	cells := len(bs) * len(combos)
	planCells(cells)
	results, err := par.MapErr(context.Background(), cells,
		func(_ context.Context, cell int) (dynamo.Result, error) {
			bi := cell / len(combos)
			c := combos[cell%len(combos)]
			cfg := dynamo.DefaultConfig(c.Scheme, c.Tau)
			if c.Scheme != dynamo.SchemeNET {
				// The bail-out heuristic belongs to the production
				// system; the paper reports path-profile slowdowns on
				// every program the NET system processes, so the
				// comparison schemes (path-profile and static) run to
				// completion. Only NET's bail-outs define the figure's
				// processed set — a comparison cell that bailed would
				// otherwise erase NET's measured speedup for that row.
				cfg.BailoutAfter = 0
			}
			sink := dynamoSink(&cfg)
			res, err := dynamo.New(progs[bi], cfg).Run()
			if err != nil {
				return res, fmt.Errorf("experiments: %s %v τ=%d: %w", bs[bi].Name, c.Scheme, c.Tau, err)
			}
			cellDone(sink)
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := map[string][]Fig5Result{}
	for cell, res := range results {
		bi := cell / len(combos)
		c := combos[cell%len(combos)]
		key := fmt.Sprintf("%v%d", c.Scheme, c.Tau)
		out[key] = append(out[key], Fig5Result{Bench: bs[bi].Name, Result: res})
	}
	return out, nil
}

// Fig5 renders the Dynamo speedup figure. Benchmarks where Dynamo bails out
// are reported as such and excluded from the average, matching the paper
// (which plots only the programs processed without bail-out).
func Fig5(grid map[string][]Fig5Result) string {
	keys := fig5Keys
	headers := append([]string{"Benchmark"}, keys...)
	t := tables.New(headers...)

	// Determine the non-bail-out set: programs Dynamo processes under every
	// configuration.
	bailed := map[string]bool{}
	for _, k := range keys {
		for _, r := range grid[k] {
			if r.Result.BailedOut {
				bailed[r.Bench] = true
			}
		}
	}
	sums := make([]float64, len(keys))
	counts := make([]int, len(keys))
	for _, name := range workload.Names() {
		row := []any{name}
		for ki, k := range keys {
			var cell string
			for _, r := range grid[k] {
				if r.Bench != name {
					continue
				}
				if bailed[name] {
					cell = "bail-out"
				} else {
					cell = tables.SignedPct(100 * r.Result.Speedup())
					sums[ki] += 100 * r.Result.Speedup()
					counts[ki]++
				}
			}
			row = append(row, cell)
		}
		t.Row(row...)
	}
	avg := []any{"Average"}
	for ki := range keys {
		if counts[ki] > 0 {
			avg = append(avg, tables.SignedPct(sums[ki]/float64(counts[ki])))
		} else {
			avg = append(avg, "-")
		}
	}
	t.Row(avg...)
	return "Figure 5: mini-Dynamo speedup over native execution\n" +
		"(bail-out rows are excluded from the average, as in the paper)\n" + t.String()
}
