// Time-to-peak: how many guest steps a mini-Dynamo needs before the
// fragment cache carries its steady-state share of the execution — measured
// cold (empty cache, the predictor learns from scratch) and warm (the same
// System restored from the cold run's profile snapshot before the first
// guest instruction). The warm/cold ratio is the headline number for the
// persistent-snapshot work: how much of the cold-start interpretation tax a
// fleet-merged profile refunds.
package experiments

import (
	"fmt"

	"netpath/internal/dynamo"
	"netpath/internal/par"
	"netpath/internal/prog"
	"netpath/internal/snapshot"
	"netpath/internal/tables"
	"netpath/internal/workload"

	"context"
)

// TimeToPeakBenches is the default benchmark set: the two acceptance
// workloads (ijpeg's dominant inner path and compress's skewed hot set) plus
// two contrasting shapes — li's call-heavy flow and deltablue's small
// object-graph kernel.
var TimeToPeakBenches = []string{"compress", "ijpeg", "li", "deltablue"}

// timeToPeakProbeEvery is the sampling grain: one coverage point per this
// many path events. Fine enough that a warm run's peak registers within a
// small fraction of the cold run's ramp (the measured ratio's floor is one
// probe), coarse enough that probing never dominates the run.
const timeToPeakProbeEvery = 64

// peakWindowProbes is the coverage-window width in probes. Coverage is
// judged over a rolling window of this many probes (256 path events), not a
// single probe: one probe's window is narrow enough that a transient
// all-cached stretch during the cold ramp would count as "peak" long before
// the predictor has actually learned the hot set.
const peakWindowProbes = 4

// peakFraction: "at peak" means the windowed cached-coverage reaches this
// fraction of the run's steady-state coverage.
const peakFraction = 0.9

// collectTau is the trace-selection threshold of the profile-collecting run:
// 1, the record-everything limit. A live system sets τ high because every
// selected trace costs translation time the run may never earn back —
// that is the paper's "less is more" tradeoff, and it is an *online*
// tradeoff. A persisted profile amortizes the selection cost across every
// process that ever restores it, so the fleet collector can afford to keep
// every trace — including the short-lived start-up loops that never reach a
// production τ before their phase ends, which are exactly the traces a
// warm-start needs to cover the first window. The capacity judgment moves
// from collection time to import time: Restore clamps the profile to the
// consuming shard's table budget, flow-heaviest first.
const collectTau = 1

// TimeToPeakResult is one benchmark's cold-vs-warm comparison. Steps counts
// guest branch steps (System.Machine().Steps units); coverage is the
// fraction of path events served from the fragment cache (tier 1 and tier 2
// both) within one rolling probe window — the system's hit rate on hot-path
// opportunities, which is what profiling buys and what a warm-start
// pre-pays. (Instruction-domain coverage would conflate learning with the
// guest's own straight-line phases, which no cache can cover.)
type TimeToPeakResult struct {
	Bench       string
	SteadyCov   float64 // cold run's steady-state windowed coverage
	ColdSteps   int64   // guest steps until the cold run reaches peak
	WarmSteps   int64   // guest steps until the restored run reaches the SAME target
	ColdTotal   int64   // cold run's total guest steps (context for the above)
	Ratio       float64 // WarmSteps / ColdSteps
	Restored    int     // fragments pre-installed by Restore
	RestoredT2  int     // tier-2 promotions re-enqueued by Restore
	WarmPeakCov float64 // coverage of the window where the warm run peaked
}

// covPoint is one probe sample: cumulative counters at a path-event
// boundary.
type covPoint struct {
	steps   int64 // guest steps executed
	entered int64 // path starts that entered the fragment cache
	events  int64 // path events observed, all engines
}

// window returns the cached-coverage fraction of the window ending at p,
// starting at prev (the zero covPoint for the first window). Enters are
// counted at path starts and events at path ends, so a window boundary can
// split the two by one; clamp rather than report an over-unity hit rate.
func (p covPoint) window(prev covPoint) float64 {
	de := p.events - prev.events
	if de <= 0 {
		return 0
	}
	c := float64(p.entered-prev.entered) / float64(de)
	if c > 1 {
		c = 1
	}
	return c
}

// windowAt returns the rolling-window coverage ending at probe i: the
// cached fraction over the last peakWindowProbes probes (from the run's
// start while the window is still filling).
func windowAt(curve []covPoint, i int) float64 {
	prev := covPoint{}
	if i >= peakWindowProbes {
		prev = curve[i-peakWindowProbes]
	}
	return curve[i].window(prev)
}

// captureProbe reports whether to capture a profile snapshot at probe n
// during a collecting run: every power-of-two probe early (short early
// phases flush out of the cache fast — an exit-only snapshot would miss
// them entirely) and every 64th probe thereafter. The captures are merged
// into one profile: exactly the fleet-merge a population of processes at
// different lifecycle points produces.
func captureProbe(n int) bool {
	return n&(n-1) == 0 || n%64 == 0
}

// runCurve executes p once under NET (τ=tau) sampling a coverage curve at
// probe boundaries; when snap is non-nil the System is restored from it
// before the first guest instruction; when collect is true, periodic
// snapshots (plus one at exit) are captured and merged into the returned
// profile. Returns the curve, the merged snapshot (nil unless collect), and
// the run result.
func runCurve(p *prog.Program, tau int64, snap *snapshot.Snapshot, collect bool) ([]covPoint, *snapshot.Snapshot, dynamo.Result, error) {
	cfg := dynamo.DefaultConfig(dynamo.SchemeNET, tau)
	var curve []covPoint
	var snaps []*snapshot.Snapshot
	cfg.ProbeEvery = timeToPeakProbeEvery
	cfg.Probe = func(s *dynamo.System) {
		steps, _, _ := s.LiveStats()
		events, entered := s.LiveEvents()
		curve = append(curve, covPoint{steps: steps, entered: entered, events: events})
		if collect && captureProbe(len(curve)) {
			snaps = append(snaps, s.Snapshot(""))
		}
	}
	sink := dynamoSink(&cfg)
	sys := dynamo.New(p, cfg)
	if snap != nil {
		if err := sys.Restore(snap); err != nil {
			return nil, nil, dynamo.Result{}, err
		}
	}
	res, err := sys.Run()
	if err != nil {
		return nil, nil, res, err
	}
	// Close the curve with the run's final state: short runs may end between
	// probes, and the tail window anchors the steady-state estimate.
	steps, _, _ := sys.LiveStats()
	events, entered := sys.LiveEvents()
	if n := len(curve); n == 0 || curve[n-1].events != events {
		curve = append(curve, covPoint{steps: steps, entered: entered, events: events})
	}
	var merged *snapshot.Snapshot
	if collect {
		snaps = append(snaps, sys.Snapshot(""))
		if merged, err = snapshot.MergeAll(snaps); err != nil {
			return nil, nil, res, err
		}
	}
	cellDone(sink)
	return curve, merged, res, nil
}

// steadyCoverage estimates the run's steady-state cached coverage: the mean
// windowed coverage over the final quarter of the curve, where the hot set
// has long been selected and the windows measure pure steady execution.
func steadyCoverage(curve []covPoint) float64 {
	n := len(curve)
	if n == 0 {
		return 0
	}
	start := n - n/4
	if start >= n {
		start = n - 1
	}
	var sum float64
	var windows int
	for i := start; i < n; i++ {
		sum += windowAt(curve, i)
		windows++
	}
	return sum / float64(windows)
}

// stepsToPeak returns the guest-step count of the first probe window whose
// coverage reaches target, plus that window's coverage. A run that never
// reaches the target reports its final step count (the honest worst case:
// "peak" was the end of the run).
func stepsToPeak(curve []covPoint, target float64) (int64, float64) {
	for i, p := range curve {
		if c := windowAt(curve, i); c >= target {
			return p.steps, c
		}
	}
	if n := len(curve); n > 0 {
		return curve[n-1].steps, windowAt(curve, n-1)
	}
	return 0, 0
}

// RunTimeToPeak measures cold and warm time-to-peak for the named
// benchmarks (nil = TimeToPeakBenches) at the given scale. Per benchmark:
// a cold run samples its coverage curve and is snapshotted at exit; a fresh
// System is restored from that snapshot and re-run under the same probe; both
// runs are scored against the COLD run's steady-state coverage, so the warm
// number answers "how fast does a restored process reach the performance the
// cold process eventually earned". Benchmarks fan out over the par pool.
func RunTimeToPeak(names []string, scale float64, tau int64) ([]TimeToPeakResult, error) {
	if names == nil {
		names = TimeToPeakBenches
	}
	planCells(3 * len(names))
	return par.MapErr(context.Background(), len(names),
		func(_ context.Context, i int) (TimeToPeakResult, error) {
			name := names[i]
			b, err := workload.ByName(name)
			if err != nil {
				return TimeToPeakResult{}, err
			}
			p, err := b.Build(scale)
			if err != nil {
				return TimeToPeakResult{}, fmt.Errorf("experiments: %s: %w", name, err)
			}

			coldCurve, _, coldRes, err := runCurve(p, tau, nil, false)
			if err != nil {
				return TimeToPeakResult{}, fmt.Errorf("experiments: %s cold: %w", name, err)
			}
			// The profile comes from a separate collecting run at the fleet's
			// lower selection threshold (see collectTau) — the "previous
			// processes" whose merged profile warms the measured run.
			_, snap, _, err := runCurve(p, collectTau, nil, true)
			if err != nil {
				return TimeToPeakResult{}, fmt.Errorf("experiments: %s collect: %w", name, err)
			}

			steady := steadyCoverage(coldCurve)
			target := peakFraction * steady
			coldSteps, _ := stepsToPeak(coldCurve, target)

			warmCurve, _, warmRes, err := runCurve(p, tau, snap, false)
			if err != nil {
				return TimeToPeakResult{}, fmt.Errorf("experiments: %s warm: %w", name, err)
			}
			warmSteps, warmCov := stepsToPeak(warmCurve, target)

			r := TimeToPeakResult{
				Bench:       name,
				SteadyCov:   steady,
				ColdSteps:   coldSteps,
				WarmSteps:   warmSteps,
				ColdTotal:   coldRes.Steps,
				Restored:    warmRes.RestoredFragments,
				RestoredT2:  warmRes.RestoredT2,
				WarmPeakCov: warmCov,
			}
			if coldSteps > 0 {
				r.Ratio = float64(warmSteps) / float64(coldSteps)
			}
			return r, nil
		})
}

// TimeToPeakReport renders the cold-vs-warm table.
func TimeToPeakReport(scale float64, tau int64) (string, error) {
	results, err := RunTimeToPeak(nil, scale, tau)
	if err != nil {
		return "", err
	}
	t := tables.New("Benchmark", "steady cov", "cold steps", "warm steps",
		"warm/cold", "restored frags", "restored t2")
	for _, r := range results {
		t.Row(r.Bench,
			tables.Pct(100*r.SteadyCov),
			tables.Count(r.ColdSteps),
			tables.Count(r.WarmSteps),
			fmt.Sprintf("%.3f", r.Ratio),
			r.Restored, r.RestoredT2)
	}
	return fmt.Sprintf("Time to peak: guest steps until windowed cache coverage reaches %.0f%% of cold steady state (NET τ=%d)\n",
		100*peakFraction, tau) + t.String(), nil
}
