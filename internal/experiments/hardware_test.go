package experiments

import (
	"strings"
	"testing"
)

func TestHardwareReportRenders(t *testing.T) {
	out, err := HardwareReport(expScale, 20)
	if err != nil {
		t.Fatalf("HardwareReport: %v", err)
	}
	for _, want := range []string{"Hardware schemes", "bimodal", "gshare", "two-level", "NET cached", "deltablue"} {
		if !strings.Contains(out, want) {
			t.Errorf("HardwareReport missing %q", want)
		}
	}
	// Every row must contain percentage cells.
	if strings.Count(out, "%") < 40 {
		t.Errorf("report suspiciously sparse:\n%s", out)
	}
}
