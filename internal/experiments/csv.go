package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV exports the Figures 2-3 sweep as CSV for external
// plotting: one row per (benchmark, scheme, τ) with the full metric set.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "scheme", "tau",
		"profiled_flow_pct", "hit_rate_pct", "noise_rate_pct",
		"profiled", "hits", "noise", "flow", "hot_flow",
		"predicted_hot", "predicted_cold", "moc", "counter_space"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV: %w", err)
	}
	for _, s := range series {
		for _, pt := range s.Points {
			row := []string{
				s.Bench, s.Scheme, strconv.FormatInt(pt.Tau, 10),
				fmt.Sprintf("%.4f", pt.ProfiledPct()),
				fmt.Sprintf("%.4f", pt.HitRate()),
				fmt.Sprintf("%.4f", pt.NoiseRate()),
				strconv.FormatInt(pt.Profiled, 10),
				strconv.FormatInt(pt.Hits, 10),
				strconv.FormatInt(pt.Noise, 10),
				strconv.FormatInt(pt.Flow, 10),
				strconv.FormatInt(pt.HotFlow, 10),
				strconv.Itoa(pt.PredictedHot),
				strconv.Itoa(pt.PredictedCold),
				strconv.FormatInt(pt.MOC(), 10),
				strconv.Itoa(pt.CounterSpace),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: writing CSV: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV exports the Dynamo grid as CSV: one row per (benchmark,
// scheme, τ) cell.
func WriteFig5CSV(w io.Writer, grid map[string][]Fig5Result) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "scheme", "tau", "speedup_pct",
		"cached_fraction_pct", "fragments", "flushes", "bailed_out",
		"native_cycles", "dynamo_cycles"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV: %w", err)
	}
	for _, key := range fig5Keys {
		for _, r := range grid[key] {
			res := r.Result
			row := []string{
				r.Bench, res.Scheme.String(), strconv.FormatInt(res.Tau, 10),
				fmt.Sprintf("%.4f", 100*res.Speedup()),
				fmt.Sprintf("%.4f", 100*res.CachedFraction()),
				strconv.Itoa(res.Fragments),
				strconv.Itoa(res.Flushes),
				strconv.FormatBool(res.BailedOut),
				fmt.Sprintf("%.0f", res.NativeCycles),
				fmt.Sprintf("%.0f", res.Cycles),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: writing CSV: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
