package experiments

import (
	"fmt"
	"strings"

	"netpath/internal/metrics"
	"netpath/internal/par"
	"netpath/internal/predict"
	"netpath/internal/tables"
)

// PhasesReport runs the Section 6.1/7 extension: the windowed hit/noise
// metrics with and without prediction retiring, on the phased benchmarks
// (vortex's three query phases, deltablue's plan/execute alternation).
// Against accumulated metrics, phase-induced noise is invisible; the
// windowed evaluation exposes it, and retiring (modelling Dynamo's cache
// flush) trades a little re-prediction cost for removing stale predictions.
func PhasesReport(bps []BenchProfile, tau int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Phase extension (Sections 6.1 and 7): windowed hit/noise at τ=%d\n", tau)
	b.WriteString("Windowed rates score each predicted execution against the hot set of its\nown window; 'retired' counts predictions removed after idle windows.\n\n")

	type row struct {
		accum    metrics.Point
		win, ret metrics.PhasedPoint
	}
	// Three independent replays per benchmark; rows fan out on the pool.
	rows := par.Map(len(bps), func(i int) row {
		bp := bps[i]
		var r row
		r.accum = metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNET(tau, bp.Prof.Paths.Head), tau)

		cfg := metrics.PhasedConfig{Window: 50_000, HotFrac: HotFrac}
		r.win = metrics.EvaluatePhased(bp.Prof, cfg, predict.NewNET(tau, bp.Prof.Paths.Head), tau)

		cfgR := cfg
		cfgR.RetireAfter = 3
		r.ret = metrics.EvaluatePhased(bp.Prof, cfgR, predict.NewNET(tau, bp.Prof.Paths.Head), tau)
		return r
	})

	t := tables.New("Benchmark", "accum hit", "accum noise",
		"windowed hit", "windowed noise", "w/ retiring hit", "w/ retiring noise", "retired")
	for i, r := range rows {
		t.Row(bps[i].Name,
			tables.Pct(r.accum.HitRate()), tables.Pct(r.accum.NoiseRate()),
			tables.Pct(r.win.HitRate()), tables.Pct(r.win.NoiseRate()),
			tables.Pct(r.ret.HitRate()), tables.Pct(r.ret.NoiseRate()),
			r.ret.Retired)
	}
	b.WriteString(t.String())
	return b.String()
}
