package experiments

import (
	"fmt"
	"strings"

	"netpath/internal/metrics"
	"netpath/internal/predict"
	"netpath/internal/tables"
)

// PhasesReport runs the Section 6.1/7 extension: the windowed hit/noise
// metrics with and without prediction retiring, on the phased benchmarks
// (vortex's three query phases, deltablue's plan/execute alternation).
// Against accumulated metrics, phase-induced noise is invisible; the
// windowed evaluation exposes it, and retiring (modelling Dynamo's cache
// flush) trades a little re-prediction cost for removing stale predictions.
func PhasesReport(bps []BenchProfile, tau int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Phase extension (Sections 6.1 and 7): windowed hit/noise at τ=%d\n", tau)
	b.WriteString("Windowed rates score each predicted execution against the hot set of its\nown window; 'retired' counts predictions removed after idle windows.\n\n")

	t := tables.New("Benchmark", "accum hit", "accum noise",
		"windowed hit", "windowed noise", "w/ retiring hit", "w/ retiring noise", "retired")
	for _, bp := range bps {
		accum := metrics.Evaluate(bp.Prof, bp.Hot, predict.NewNET(tau, bp.Prof.Paths.Head), tau)

		cfg := metrics.PhasedConfig{Window: 50_000, HotFrac: HotFrac}
		win := metrics.EvaluatePhased(bp.Prof, cfg, predict.NewNET(tau, bp.Prof.Paths.Head), tau)

		cfgR := cfg
		cfgR.RetireAfter = 3
		ret := metrics.EvaluatePhased(bp.Prof, cfgR, predict.NewNET(tau, bp.Prof.Paths.Head), tau)

		t.Row(bp.Name,
			tables.Pct(accum.HitRate()), tables.Pct(accum.NoiseRate()),
			tables.Pct(win.HitRate()), tables.Pct(win.NoiseRate()),
			tables.Pct(ret.HitRate()), tables.Pct(ret.NoiseRate()),
			ret.Retired)
	}
	b.WriteString(t.String())
	return b.String()
}
