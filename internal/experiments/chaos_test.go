package experiments

import (
	"strings"
	"testing"
)

// TestChaosReport smoke-tests the sweep at a tiny scale: every cell runs to
// completion and the heaviest rate actually injects faults.
func TestChaosReport(t *testing.T) {
	results, err := RunChaos(0.01, 50)
	if err != nil {
		t.Fatal(err)
	}
	var clean, heavy int64
	heaviest := ChaosMultipliers[len(ChaosMultipliers)-1]
	for _, r := range results {
		injected := r.Result.RecordAborts + r.Result.FragAborts + r.Result.Corruptions + r.Result.ForcedSelections
		switch r.Mult {
		case 0:
			clean += injected
		case heaviest:
			heavy += injected
		}
		if r.Result.VMFault != "" {
			t.Errorf("%s ×%g: unexpected machine fault %q (sweep is soft-fault only)", r.Bench, r.Mult, r.Result.VMFault)
		}
	}
	if clean != 0 {
		t.Errorf("×0 runs recorded %d injected faults, want 0", clean)
	}
	if heavy == 0 {
		t.Errorf("×%g runs recorded no injected faults; rates too low to test anything", heaviest)
	}

	out, err := ChaosReport(0.01, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Chaos:", "×0", "×100", "Degradation accounting"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
