package experiments

import (
	"strings"
	"testing"

	"netpath/internal/metrics"
	"netpath/internal/par"
)

// renderAll renders every table/figure the abstract pipeline produces into
// one string, the golden unit of the determinism comparison.
func renderAll(bps []BenchProfile, series []Series) string {
	var b strings.Builder
	b.WriteString(Table1(bps))
	b.WriteString(Table2(bps))
	b.WriteString(Fig2(series))
	b.WriteString(Fig3(series))
	b.WriteString(Fig4(bps))
	b.WriteString(PhasesReport(bps, 20))
	b.WriteString(AblationReport(bps, 20))
	b.WriteString(StaticReport(bps))
	return b.String()
}

// TestParallelOutputIsByteIdentical is the determinism contract of the
// worker pool: the rendered tables and figures from a run with many workers
// must be byte-identical to the single-worker (plain loop) reference. This
// is what lets the parallel pipeline regenerate the paper's numbers — any
// scheduling leak (result order, shared predictor state, map iteration)
// shows up as a diff here.
func TestParallelOutputIsByteIdentical(t *testing.T) {
	taus := []int64{10, 100, 1000}

	old := par.SetWorkers(1)
	defer par.SetWorkers(old)
	bps, err := CollectAll(expScale)
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(bps, SweepSchemes(bps, taus))

	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		bps, err := CollectAll(expScale)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := renderAll(bps, SweepSchemes(bps, taus))
		if got != golden {
			t.Errorf("workers=%d: output differs from serial run\nserial:\n%s\nparallel:\n%s",
				w, excerptDiff(golden, got), excerptDiff(got, golden))
		}
	}
}

// TestParallelFig5IsByteIdentical covers the Dynamo grid the same way: the
// fragment-cache simulation is stateful per cell, so identical rendering
// proves each System really is isolated.
func TestParallelFig5IsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamo grid is slow")
	}
	old := par.SetWorkers(1)
	defer par.SetWorkers(old)
	grid, err := RunFig5(expScale)
	if err != nil {
		t.Fatal(err)
	}
	golden := Fig5(grid)

	par.SetWorkers(8)
	grid, err = RunFig5(expScale)
	if err != nil {
		t.Fatal(err)
	}
	if got := Fig5(grid); got != golden {
		t.Errorf("parallel Fig5 differs from serial:\n%s\nvs\n%s", golden, got)
	}
}

// TestParallelChaosIsByteIdentical pins the seeded fault schedules under
// parallelism: every (benchmark, multiplier) cell owns an injector seeded
// by (chaosSeed, rates) alone, so concurrent execution must reproduce the
// serial report byte for byte.
func TestParallelChaosIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	old := par.SetWorkers(1)
	defer par.SetWorkers(old)
	golden, err := ChaosReport(0.01, 50)
	if err != nil {
		t.Fatal(err)
	}

	par.SetWorkers(8)
	got, err := ChaosReport(0.01, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != golden {
		t.Errorf("parallel chaos report differs from serial:\n%s\nvs\n%s", golden, got)
	}
}

// TestParallelSweepMatchesMetricsSweep pins SweepSchemes' flattened cells
// against direct metrics.Sweep calls — the pre-pool formulation.
func TestParallelSweepMatchesMetricsSweep(t *testing.T) {
	bps, err := CollectAll(expScale)
	if err != nil {
		t.Fatal(err)
	}
	taus := []int64{10, 1000}
	series := SweepSchemes(bps, taus)
	for i, bp := range bps {
		pp := metrics.Sweep(bp.Prof, bp.Hot, metrics.PathProfileFactory(), taus)
		net := metrics.Sweep(bp.Prof, bp.Hot, metrics.NETFactory(bp.Prof), taus)
		st := metrics.Sweep(bp.Prof, bp.Hot, metrics.StaticFactory(bp.Prof), taus)
		for ti := range taus {
			if series[3*i].Points[ti] != pp[ti] {
				t.Errorf("%s pathprofile τ=%d: %v != %v", bp.Name, taus[ti], series[3*i].Points[ti], pp[ti])
			}
			if series[3*i+1].Points[ti] != net[ti] {
				t.Errorf("%s net τ=%d: %v != %v", bp.Name, taus[ti], series[3*i+1].Points[ti], net[ti])
			}
			if series[3*i+2].Points[ti] != st[ti] {
				t.Errorf("%s static τ=%d: %v != %v", bp.Name, taus[ti], series[3*i+2].Points[ti], st[ti])
			}
		}
	}
}

// excerptDiff returns the first line where a and b diverge, with context.
func excerptDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(la) {
				hi = len(la)
			}
			return strings.Join(la[lo:hi], "\n")
		}
	}
	return "(prefix identical; lengths differ)"
}
