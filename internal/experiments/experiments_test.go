package experiments

import (
	"strings"
	"testing"

	"netpath/internal/metrics"
)

// expScale keeps the full experiment pipeline fast under `go test`.
const expScale = 0.02

func collect(t *testing.T) []BenchProfile {
	t.Helper()
	bps, err := CollectAll(expScale)
	if err != nil {
		t.Fatalf("CollectAll: %v", err)
	}
	if len(bps) != 9 {
		t.Fatalf("benchmarks = %d, want 9", len(bps))
	}
	return bps
}

func TestTable1Renders(t *testing.T) {
	out := Table1(collect(t))
	for _, want := range []string{"Table 1", "compress", "deltablue", "paper #Paths", "99."} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2(collect(t))
	for _, want := range []string{"Table 2", "Heads/Paths", "0."} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestSweepAndFigures(t *testing.T) {
	bps := collect(t)
	taus := []int64{10, 100, 1000}
	series := SweepSchemes(bps, taus)
	if len(series) != 27 {
		t.Fatalf("series = %d, want 27 (9 benchmarks x 3 schemes)", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(taus) {
			t.Errorf("%s/%s: points = %d, want %d", s.Bench, s.Scheme, len(s.Points), len(taus))
		}
		for _, pt := range s.Points {
			if pt.Profiled+pt.Hits+pt.Noise != pt.Flow {
				t.Errorf("%s/%s τ=%d: flow not conserved", s.Bench, s.Scheme, pt.Tau)
			}
		}
	}
	f2 := Fig2(series)
	for _, want := range []string{"Figure 2", "NET prediction", "path profile based", "static (profile-free)"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}
	f3 := Fig3(series)
	if !strings.Contains(f3, "Figure 3") || !strings.Contains(f3, "noise") {
		t.Error("Fig3 rendering wrong")
	}
	f4 := Fig4(bps)
	if !strings.Contains(f4, "Figure 4") || !strings.Contains(f4, "Average") {
		t.Error("Fig4 rendering wrong")
	}
}

func TestStaticReportRenders(t *testing.T) {
	out := StaticReport(collect(t))
	for _, want := range []string{"Static prediction", "compress", "phantoms", "NET50"} {
		if !strings.Contains(out, want) {
			t.Errorf("StaticReport missing %q:\n%s", want, out)
		}
	}
}

func TestStaticSchemeScores(t *testing.T) {
	// The profile-free scheme must produce real hit/noise/MOC numbers on
	// every workload: zero counter space always, and nonzero hits on the
	// loop-dominated benchmarks where static walks can see the hot loops.
	bps := collect(t)
	anyHits := false
	for _, bp := range bps {
		pt := metrics.Evaluate(bp.Prof, bp.Hot, metrics.StaticFactory(bp.Prof)(0), 0)
		if pt.CounterSpace != 0 {
			t.Errorf("%s: static counter space = %d, want 0", bp.Name, pt.CounterSpace)
		}
		if pt.Profiled+pt.Hits+pt.Noise != pt.Flow {
			t.Errorf("%s: static flow not conserved", bp.Name)
		}
		if pt.PredictedHot+pt.PredictedCold == 0 {
			t.Errorf("%s: static predicted nothing", bp.Name)
		}
		if pt.Hits > 0 {
			anyHits = true
		}
	}
	if !anyHits {
		t.Error("static scheme scored zero hits on every workload")
	}
}

func TestHitRatesComparableAtShortDelays(t *testing.T) {
	// The paper's central abstract claim: at practically relevant delays the
	// two schemes have nearly identical hit rates.
	// At the test's 2%% scale a fixed τ is ~50x larger relative to flow than
	// at full scale, so the tolerance is loose here; the full-scale runs in
	// EXPERIMENTS.md show the schemes within 0.1 points at τ=50.
	bps := collect(t)
	for _, bp := range bps {
		pp := metrics.Evaluate(bp.Prof, bp.Hot, metrics.PathProfileFactory()(10), 10)
		net := metrics.Evaluate(bp.Prof, bp.Hot, metrics.NETFactory(bp.Prof)(10), 10)
		diff := pp.HitRate() - net.HitRate()
		if diff < 0 {
			diff = -diff
		}
		if diff > 8.0 {
			t.Errorf("%s: |hit(pp) - hit(net)| = %.2f at τ=10, want <= 8", bp.Name, diff)
		}
	}
}

func TestHitRateFallsWithDelay(t *testing.T) {
	// Longer profiling must not improve hit rate (missed opportunity cost).
	bps := collect(t)
	taus := []int64{10, 1_000, 100_000}
	for _, bp := range bps {
		pts := metrics.Sweep(bp.Prof, bp.Hot, metrics.NETFactory(bp.Prof), taus)
		for i := 1; i < len(pts); i++ {
			if pts[i].HitRate() > pts[i-1].HitRate()+0.01 {
				t.Errorf("%s: hit rate rose from τ=%d (%.1f) to τ=%d (%.1f)",
					bp.Name, taus[i-1], pts[i-1].HitRate(), taus[i], pts[i].HitRate())
			}
		}
	}
}

func TestNETUsesLessCounterSpace(t *testing.T) {
	for _, bp := range collect(t) {
		ratio := metrics.CounterSpaceRatio(bp.Prof)
		if ratio >= 1.0 || ratio <= 0 {
			t.Errorf("%s: counter space ratio = %.3f, want in (0,1)", bp.Name, ratio)
		}
	}
}

func TestFig5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamo grid is slow")
	}
	grid, err := RunFig5(0.05)
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if len(grid) != 7 {
		t.Fatalf("grid keys = %d, want 7", len(grid))
	}
	out := Fig5(grid)
	for _, want := range []string{"Figure 5", "NET50", "PathProfile100", "Static0", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q:\n%s", want, out)
		}
	}
	// The headline: NET average must beat path-profile average at τ=50 on
	// the non-bail-out set.
	var netAvg, ppAvg float64
	var n int
	bailed := map[string]bool{}
	for _, k := range []string{"NET10", "NET50", "NET100"} {
		for _, r := range grid[k] {
			if r.Result.BailedOut {
				bailed[r.Bench] = true
			}
		}
	}
	for _, r := range grid["NET50"] {
		if !bailed[r.Bench] {
			netAvg += r.Result.Speedup()
			n++
		}
	}
	for _, r := range grid["PathProfile50"] {
		if !bailed[r.Bench] {
			ppAvg += r.Result.Speedup()
		}
	}
	if n == 0 {
		t.Fatal("every benchmark bailed out at small scale; cannot compare")
	}
	if netAvg/float64(n) <= ppAvg/float64(n) {
		t.Errorf("NET avg %.3f must beat PathProfile avg %.3f", netAvg/float64(n), ppAvg/float64(n))
	}
}

func TestPhasesReportRenders(t *testing.T) {
	out := PhasesReport(collect(t), 20)
	for _, want := range []string{"Phase extension", "windowed", "vortex"} {
		if !strings.Contains(out, want) {
			t.Errorf("PhasesReport missing %q", want)
		}
	}
}

func TestPaperConstantsComplete(t *testing.T) {
	for _, name := range []string{"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex", "deltablue"} {
		if _, ok := PaperTable1[name]; !ok {
			t.Errorf("PaperTable1 missing %s", name)
		}
		if _, ok := PaperTable2[name]; !ok {
			t.Errorf("PaperTable2 missing %s", name)
		}
	}
}
