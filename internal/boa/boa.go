// Package boa implements the Boa-style hot path construction the paper's
// related-work section contrasts NET against (Sathaye et al., "BOA:
// Targeting multi-gigahertz with binary translation", 1999).
//
// Boa profiles every branch during interpretation; when a hot group entry
// is found, a path is selected by following the most likely successor of
// each branch according to the collected edge profile. The paper's
// criticism, which this package makes measurable: the scheme requires
// every branch to be profiled (unlike NET's head-only counters), and
// "constructing paths from isolated branch frequencies ignores branch
// correlation, which may lead to paths that, as a whole, never execute".
//
// The Report produced here counts exactly that: how many constructed paths
// are phantoms (never executed as a whole), and what hit rate the scheme
// achieves compared with NET at the same prediction delay.
package boa

import (
	"fmt"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/vm"
)

// EdgeProfile holds per-branch outcome frequencies, the information Boa's
// interpreter collects (one update per executed branch).
type EdgeProfile struct {
	// Taken and NotTaken count conditional branch outcomes by branch
	// address.
	Taken    map[int]int64
	NotTaken map[int]int64
	// IndTargets counts indirect transfer targets by branch address.
	IndTargets map[int]map[int]int64
	// Updates counts profiling operations (every branch execution).
	Updates int64
}

// CollectEdges gathers an edge profile from a full run.
func CollectEdges(p *prog.Program, maxSteps int64) (*EdgeProfile, error) {
	ep := &EdgeProfile{
		Taken:      make(map[int]int64),
		NotTaken:   make(map[int]int64),
		IndTargets: make(map[int]map[int]int64),
	}
	m := vm.New(p)
	m.SetListener(func(ev vm.BranchEvent) {
		ep.Updates++
		switch ev.Kind {
		case isa.KindCond:
			if ev.Taken {
				ep.Taken[ev.PC]++
			} else {
				ep.NotTaken[ev.PC]++
			}
		case isa.KindIndirect, isa.KindCallInd:
			tm := ep.IndTargets[ev.PC]
			if tm == nil {
				tm = make(map[int]int64)
				ep.IndTargets[ev.PC] = tm
			}
			tm[ev.Target]++
		}
	})
	if err := m.Run(maxSteps); err != nil && err != vm.ErrStepLimit {
		return nil, err
	}
	return ep, nil
}

// likelyTaken reports the majority outcome of a conditional branch; ok is
// false for branches never profiled.
func (ep *EdgeProfile) likelyTaken(pc int) (taken, ok bool) {
	t, n := ep.Taken[pc], ep.NotTaken[pc]
	if t == 0 && n == 0 {
		return false, false
	}
	return t >= n, true
}

// likelyTarget reports the most frequent target of an indirect branch.
func (ep *EdgeProfile) likelyTarget(pc int) (int, bool) {
	best, bestCount := 0, int64(-1)
	for tgt, c := range ep.IndTargets[pc] {
		if c > bestCount || (c == bestCount && tgt < best) {
			best, bestCount = tgt, c
		}
	}
	return best, bestCount >= 0
}

// Construction classifies the outcome of constructing one path.
type Construction int

// Construction outcomes.
const (
	// Constructed: the walk completed and the path was executed at least
	// once by the real program.
	Constructed Construction = iota
	// Phantom: the walk completed but the resulting path never executed as
	// a whole — the branch-correlation failure the paper describes.
	Phantom
	// Aborted: the walk hit an unprofiled branch or left the program.
	Aborted
)

var constructionNames = [...]string{"constructed", "phantom", "aborted"}

// String names the construction outcome.
func (c Construction) String() string {
	if int(c) < len(constructionNames) {
		return constructionNames[c]
	}
	return fmt.Sprintf("construction(%d)", int(c))
}

// Prediction is one constructed hot path.
type Prediction struct {
	Head    int
	Outcome Construction
	// ID is the constructed path's identity in the oracle profile, or
	// path.None for phantoms and aborts.
	ID path.ID
	// Freq is the constructed path's true execution frequency (0 for
	// phantoms).
	Freq int64
}

// maxWalk bounds the constructed path length, mirroring the tracker cap.
const maxWalk = path.DefaultMaxBranches

// constructPath walks the program from head following the most likely
// successors, building the path signature with the same rules the online
// tracker applies to executed paths.
func constructPath(p *prog.Program, ep *EdgeProfile, head int) (string, Construction) {
	var sig path.SigBuilder
	sig.Reset(head)
	pc := head
	depth := 0
	var stack []int
	for branches := 0; branches < maxWalk; {
		if pc < 0 || pc >= p.Len() {
			return "", Aborted
		}
		in := p.Instrs[pc]
		if !in.Op.IsControl() {
			pc++
			continue
		}
		branches++
		var next int
		taken := true
		switch in.Op {
		case isa.Jmp:
			next = int(in.Target)
		case isa.Br, isa.BrI:
			tk, ok := ep.likelyTaken(pc)
			if !ok {
				return "", Aborted
			}
			sig.CondBit(tk)
			taken = tk
			if tk {
				next = int(in.Target)
			} else {
				next = pc + 1
			}
		case isa.JmpInd, isa.CallInd:
			tgt, ok := ep.likelyTarget(pc)
			if !ok {
				return "", Aborted
			}
			sig.Indirect(tgt)
			next = tgt
			if in.Op == isa.CallInd {
				stack = append(stack, pc+1)
			}
		case isa.Call:
			next = int(in.Target)
			stack = append(stack, pc+1)
		case isa.Ret:
			if len(stack) == 0 {
				// Returning out of the walk's scope: the dynamic return
				// address is unknowable from an edge profile.
				return "", Aborted
			}
			next = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case isa.Halt:
			return sig.Key(), Constructed
		}
		if isa.IsBackward(pc, next, taken) {
			return sig.Key(), Constructed
		}
		switch in.Op {
		case isa.Call, isa.CallInd:
			depth++
		case isa.Ret:
			if depth > 0 {
				return sig.Key(), Constructed
			}
		}
		pc = next
	}
	return sig.Key(), Constructed
}

// Predict constructs one hot path per head whose flow exceeds tau,
// classifying each against the oracle profile.
func Predict(p *prog.Program, ep *EdgeProfile, oracle *profile.Profile, tau int64) []Prediction {
	headFlow := oracle.HeadFreq()
	var heads []int
	for h, f := range headFlow {
		if f > tau {
			heads = append(heads, h)
		}
	}
	// Deterministic order.
	for i := 1; i < len(heads); i++ {
		for j := i; j > 0 && heads[j] < heads[j-1]; j-- {
			heads[j], heads[j-1] = heads[j-1], heads[j]
		}
	}
	out := make([]Prediction, 0, len(heads))
	for _, h := range heads {
		key, outcome := constructPath(p, ep, h)
		pred := Prediction{Head: h, Outcome: outcome, ID: path.None}
		if outcome == Constructed {
			if id := oracle.Paths.Lookup(key); id != path.None {
				pred.ID = id
				pred.Freq = oracle.Freq[id]
			} else {
				pred.Outcome = Phantom
			}
		}
		out = append(out, pred)
	}
	return out
}

// Report aggregates a Boa prediction run.
type Report struct {
	Tau         int64
	Heads       int
	Constructed int
	Phantoms    int
	Aborted     int
	// Hits is the post-delay flow captured: Σ max(0, freq−τ) over
	// constructed hot paths; Noise the same over constructed cold paths.
	Hits  int64
	Noise int64
	// HotFlow is the oracle hot flow the rates normalize by.
	HotFlow int64
	// Updates is the number of per-branch profiling operations Boa paid.
	Updates int64
}

// HitRate returns hits as a percentage of hot flow.
func (r Report) HitRate() float64 {
	if r.HotFlow == 0 {
		return 0
	}
	return 100 * float64(r.Hits) / float64(r.HotFlow)
}

// NoiseRate returns noise as a percentage of hot flow.
func (r Report) NoiseRate() float64 {
	if r.HotFlow == 0 {
		return 0
	}
	return 100 * float64(r.Noise) / float64(r.HotFlow)
}

// PhantomPct returns the share of completed constructions that are
// phantoms.
func (r Report) PhantomPct() float64 {
	done := r.Constructed + r.Phantoms
	if done == 0 {
		return 0
	}
	return 100 * float64(r.Phantoms) / float64(done)
}

// Evaluate runs the full Boa pipeline on a program: edge collection, path
// construction for every hot head, and scoring against the oracle hot set.
func Evaluate(p *prog.Program, oracle *profile.Profile, hot *profile.HotSet, tau int64) (Report, error) {
	ep, err := CollectEdges(p, 0)
	if err != nil {
		return Report{}, err
	}
	preds := Predict(p, ep, oracle, tau)
	rep := Report{Tau: tau, Heads: len(preds), HotFlow: hot.Flow, Updates: ep.Updates}
	for _, pr := range preds {
		switch pr.Outcome {
		case Aborted:
			rep.Aborted++
		case Phantom:
			rep.Phantoms++
		case Constructed:
			rep.Constructed++
			credit := pr.Freq - tau
			if credit < 0 {
				credit = 0
			}
			if hot.IsHot[pr.ID] {
				rep.Hits += credit
			} else {
				rep.Noise += credit
			}
		}
	}
	return rep, nil
}
