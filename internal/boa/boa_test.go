package boa

import (
	"testing"

	"netpath/internal/isa"
	"netpath/internal/path"
	"netpath/internal/profile"
	"netpath/internal/prog"
	"netpath/internal/randprog"
	"netpath/internal/workload"
)

// dominantLoop: one loop, 90%-biased branch; Boa must construct the
// dominant path correctly.
func dominantLoop(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("dom")
	b.SetMemSize(32)
	for i := 0; i < 10; i++ {
		v := int64(0)
		if i == 7 {
			v = 10
		}
		b.SetMem(16+i, v)
	}
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.RemI(1, 0, 10)
	m.AddI(1, 1, 16)
	m.Load(2, 1, 0)
	m.BrI(isa.Lt, 2, 5, "hot")
	m.AddI(3, 3, 1)
	m.Jmp("join")
	m.Label("hot")
	m.AddI(4, 4, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, 10_000, "loop")
	m.Halt()
	return b.MustBuild()
}

func TestBoaConstructsDominantPath(t *testing.T) {
	p := dominantLoop(t)
	oracle, err := profile.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := oracle.Hot(0.001)
	rep, err := Evaluate(p, oracle, hot, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Constructed == 0 {
		t.Fatal("no path constructed")
	}
	if rep.HitRate() < 85 {
		t.Errorf("hit rate = %.1f, want >= 85 on a dominant loop", rep.HitRate())
	}
	// Boa pays one profiling update per executed branch.
	if rep.Updates < 30_000 {
		t.Errorf("updates = %d, want per-branch profiling (>= 3 per iteration)", rep.Updates)
	}
}

// anticorrelated builds the branch-correlation trap: two branches that are
// individually 50/50 but perfectly anticorrelated (outcomes TN or NT; never
// TT). Following per-branch majorities constructs a path that never
// executes as a whole.
func anticorrelated(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("anticorr")
	b.SetMemSize(32)
	// Data alternates 0,10,0,10,... so branch1 takes on even iterations.
	b.SetMem(16, 0)
	b.SetMem(17, 10)
	m := b.Func("main")
	m.MovI(0, 0)
	m.Label("loop")
	m.RemI(1, 0, 2)
	m.AddI(1, 1, 16)
	m.Load(2, 1, 0) // r2 alternates 0, 10
	// Branch 1: taken iff r2 < 5 (even iterations). Slight asymmetry in the
	// arms is irrelevant; both branches test the same value so outcomes are
	// perfectly anticorrelated between branch1-taken and branch2-taken.
	m.BrI(isa.Lt, 2, 5, "b1taken")
	m.AddI(3, 3, 1)
	m.Jmp("mid")
	m.Label("b1taken")
	m.AddI(4, 4, 1)
	m.Label("mid")
	// Branch 2: taken iff r2 >= 5 (odd iterations) — the complement.
	m.BrI(isa.Ge, 2, 5, "b2taken")
	m.AddI(5, 5, 1)
	m.Jmp("join")
	m.Label("b2taken")
	m.AddI(6, 6, 1)
	m.Label("join")
	m.AddI(0, 0, 1)
	m.BrI(isa.Lt, 0, 10_000, "loop")
	m.Halt()
	return b.MustBuild()
}

func TestBoaPhantomOnAnticorrelatedBranches(t *testing.T) {
	p := anticorrelated(t)
	oracle, err := profile.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := CollectEdges(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds := Predict(p, ep, oracle, 50)
	// The loop head's constructed path combines both branches' majority
	// outcomes; with perfect anticorrelation that combination never
	// executes (ties break toward taken for both → TT, which is
	// impossible).
	var phantom bool
	for _, pr := range preds {
		if pr.Outcome == Phantom {
			phantom = true
		}
	}
	if !phantom {
		t.Errorf("expected a phantom path from anticorrelated branches; got %+v", preds)
	}
}

func TestBoaEdgeProfileCounts(t *testing.T) {
	p := dominantLoop(t)
	ep, err := CollectEdges(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both the body branch (~90% taken) and the latch (9999/10000 taken)
	// execute once per iteration; find the body branch by its bias.
	var foundBody, foundLatch bool
	for pc, tk := range ep.Taken {
		nt := ep.NotTaken[pc]
		if tk+nt != 10_000 {
			continue
		}
		switch {
		case tk >= 8_500 && tk <= 9_500:
			foundBody = true
		case tk == 9_999:
			foundLatch = true
		default:
			t.Errorf("branch @%d taken %d of %d: neither body nor latch profile", pc, tk, tk+nt)
		}
	}
	if !foundBody || !foundLatch {
		t.Errorf("edge profile incomplete: body=%v latch=%v", foundBody, foundLatch)
	}
}

func TestBoaAbortsOnColdHead(t *testing.T) {
	// A head whose onward walk crosses a never-executed branch aborts.
	ep := &EdgeProfile{
		Taken:      map[int]int64{},
		NotTaken:   map[int]int64{},
		IndTargets: map[int]map[int]int64{},
	}
	p := dominantLoop(t)
	key, outcome := constructPath(p, ep, p.Entry)
	if outcome != Aborted {
		t.Errorf("walk over unprofiled branches = %v (%q), want abort", outcome, key)
	}
}

func TestBoaOnWorkload(t *testing.T) {
	b, err := workload.ByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := profile.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := oracle.Hot(0.001)
	rep, err := Evaluate(p, oracle, hot, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Heads == 0 {
		t.Fatal("no hot heads found")
	}
	if rep.Constructed+rep.Phantoms+rep.Aborted != rep.Heads {
		t.Error("classification does not partition the heads")
	}
	// One constructed path per head cannot beat NET's multi-tail coverage;
	// it must still capture something on a dispatch workload.
	if rep.Hits == 0 {
		t.Error("Boa captured no hot flow at all")
	}
}

func TestBoaDeterministic(t *testing.T) {
	p := randprog.MustGenerate(7, randprog.Options{})
	oracle, err := profile.Collect(p, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := CollectEdges(p, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	p1 := Predict(p, ep, oracle, 10)
	p2 := Predict(p, ep, oracle, 10)
	if len(p1) != len(p2) {
		t.Fatal("prediction counts differ")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func TestConstructionString(t *testing.T) {
	if Constructed.String() != "constructed" || Phantom.String() != "phantom" || Aborted.String() != "aborted" {
		t.Error("construction names wrong")
	}
}

func TestPredictionIDsValid(t *testing.T) {
	p := dominantLoop(t)
	oracle, err := profile.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := CollectEdges(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range Predict(p, ep, oracle, 50) {
		if pr.Outcome == Constructed {
			if pr.ID == path.None {
				t.Error("constructed prediction without an ID")
			}
			if pr.Freq <= 0 {
				t.Error("constructed prediction with zero frequency")
			}
		} else if pr.ID != path.None {
			t.Error("non-constructed prediction with an ID")
		}
	}
}
