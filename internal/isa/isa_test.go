package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Nop, "nop"}, {MovI, "movi"}, {Add, "add"}, {Br, "br"},
		{JmpInd, "jmpind"}, {CallInd, "callind"}, {Halt, "halt"}, {RemI, "remi"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
	if got := Op(250).String(); !strings.Contains(got, "250") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestOpValid(t *testing.T) {
	for op := Nop; op < numOps; op++ {
		if !op.Valid() {
			t.Errorf("op %v should be valid", op)
		}
	}
	if Op(numOps).Valid() || Op(255).Valid() {
		t.Error("out-of-range ops reported valid")
	}
}

func TestOpClassification(t *testing.T) {
	control := []Op{Jmp, Br, BrI, JmpInd, Call, CallInd, Ret, Halt}
	isControl := map[Op]bool{}
	for _, op := range control {
		isControl[op] = true
	}
	for op := Nop; op < numOps; op++ {
		if got := op.IsControl(); got != isControl[op] {
			t.Errorf("%v.IsControl() = %v, want %v", op, got, isControl[op])
		}
	}
	if !Br.IsConditional() || !BrI.IsConditional() {
		t.Error("Br/BrI must be conditional")
	}
	if Jmp.IsConditional() || Call.IsConditional() {
		t.Error("Jmp/Call must not be conditional")
	}
	if !JmpInd.IsIndirect() || !CallInd.IsIndirect() {
		t.Error("JmpInd/CallInd must be indirect")
	}
	if Br.IsIndirect() || Ret.IsIndirect() {
		t.Error("Br/Ret must not be indirect")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{Eq, 3, 3, true}, {Eq, 3, 4, false},
		{Ne, 3, 4, true}, {Ne, 3, 3, false},
		{Lt, -1, 0, true}, {Lt, 0, 0, false},
		{Le, 0, 0, true}, {Le, 1, 0, false},
		{Gt, 1, 0, true}, {Gt, 0, 0, false},
		{Ge, 0, 0, true}, {Ge, -1, 0, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
	if Cond(99).Eval(1, 1) {
		t.Error("invalid cond must evaluate false")
	}
}

func TestCondComplementary(t *testing.T) {
	// Eq/Ne, Lt/Ge, Le/Gt are complementary on every input pair.
	pairs := [][2]Cond{{Eq, Ne}, {Lt, Ge}, {Le, Gt}}
	f := func(a, b int64) bool {
		for _, p := range pairs {
			if p[0].Eval(a, b) == p[1].Eval(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondTrichotomy(t *testing.T) {
	f := func(a, b int64) bool {
		lt, eq, gt := Lt.Eval(a, b), Eq.Eval(a, b), Gt.Eval(a, b)
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrValidate(t *testing.T) {
	good := []Instr{
		{Op: Nop},
		{Op: MovI, A: 1, Imm: 42},
		{Op: Add, A: 1, B: 2, C: 3},
		{Op: Br, Cond: Lt, A: 1, B: 2, Target: 10},
		{Op: Load, A: 0, B: 31, Imm: 100},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", in, err)
		}
	}
	bad := []Instr{
		{Op: Op(200)},
		{Op: Br, Cond: Cond(99), A: 1, B: 2},
		{Op: Add, A: 40, B: 2, C: 3},
		{Op: Add, A: 1, B: 200, C: 3},
		{Op: Add, A: 1, B: 2, C: 99},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MovI, A: 3, Imm: -7}, "movi r3, -7"},
		{Instr{Op: Mov, A: 1, B: 2}, "mov r1, r2"},
		{Instr{Op: Add, A: 1, B: 2, C: 3}, "add r1, r2, r3"},
		{Instr{Op: AddI, A: 1, B: 2, Imm: 5}, "addi r1, r2, 5"},
		{Instr{Op: Load, A: 4, B: 5, Imm: 8}, "load r4, [r5+8]"},
		{Instr{Op: Store, A: 4, B: 5, Imm: 8}, "store [r5+8], r4"},
		{Instr{Op: Jmp, Target: 12}, "jmp @12"},
		{Instr{Op: Br, Cond: Ge, A: 1, B: 2, Target: 9}, "br.ge r1, r2, @9"},
		{Instr{Op: BrI, Cond: Lt, A: 1, Imm: 50, Target: 9}, "bri.lt r1, 50, @9"},
		{Instr{Op: JmpInd, A: 7}, "jmpind r7"},
		{Instr{Op: Call, Target: 3}, "call @3"},
		{Instr{Op: CallInd, A: 2}, "callind r2"},
		{Instr{Op: Ret}, "ret"},
		{Instr{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestIsBackward(t *testing.T) {
	cases := []struct {
		pc, target int
		taken      bool
		want       bool
	}{
		// Plain forward/backward taken transfers.
		{10, 5, true, true},
		{10, 11, true, false},
		{10, 100, true, false},
		{100, 10, true, true},
		// Not-taken transfers are never backward, whatever the target.
		{10, 5, false, false},
		{10, 10, false, false},
		{10, 11, false, false},
		// The self-branch tie-break: target == pc is backward (a loop of
		// body length one), by the <= in the definition.
		{10, 10, true, true},
		{0, 0, true, true},
	}
	for _, c := range cases {
		if got := IsBackward(c.pc, c.target, c.taken); got != c.want {
			t.Errorf("IsBackward(%d, %d, %v) = %v, want %v", c.pc, c.target, c.taken, got, c.want)
		}
	}
}

func TestIsBackwardProperties(t *testing.T) {
	f := func(pc, target int16, taken bool) bool {
		got := IsBackward(int(pc), int(target), taken)
		// Never backward when not taken; taken iff target <= pc.
		if !taken {
			return !got
		}
		return got == (int(target) <= int(pc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		op   Op
		kind BranchKind
		ok   bool
	}{
		{Br, KindCond, true}, {BrI, KindCond, true},
		{Jmp, KindJump, true}, {JmpInd, KindIndirect, true},
		{Call, KindCall, true}, {CallInd, KindCallInd, true},
		{Ret, KindReturn, true},
		{Halt, 0, false}, {Add, 0, false}, {Nop, 0, false},
	}
	for _, c := range cases {
		k, ok := KindOf(c.op)
		if ok != c.ok || (ok && k != c.kind) {
			t.Errorf("KindOf(%v) = (%v, %v), want (%v, %v)", c.op, k, ok, c.kind, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindCond; k < numKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := BranchKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind string = %q", s)
	}
}
