// Package isa defines the instruction set of the toy register machine that
// serves as the execution substrate for the hot path prediction experiments.
//
// The machine is deliberately small: a fixed register file, a flat word
// memory, and a control-flow repertoire rich enough to exercise every path
// profiling concept from the paper — conditional branches, unconditional
// jumps, indirect jumps (switch dispatch), direct and indirect calls,
// returns, and backward branches that delimit interprocedural forward paths.
//
// Instructions are addressed by their index in a flat instruction array;
// "address" throughout this repository means that index. A branch is
// backward when it is taken and its target address is less than or equal to
// the branch's own address (IsBackward). The "or equal" half is the
// tie-breaking rule for self-branches: a taken branch whose target is its
// own address re-executes the same instruction, which is a loop of body
// length one, so it terminates the current forward path exactly like any
// other loop back edge. Every layer that classifies transfers — the VM's
// event stream, the path tracker, the boa path constructor and the static
// CFG back-edge detector — must share this rule, or the same program would
// yield different path boundaries depending on who observed it.
package isa

import "fmt"

// NumRegs is the size of the register file. Registers are named r0..r31.
const NumRegs = 32

// Op enumerates the machine's opcodes.
type Op uint8

// Opcode space. Three-address ALU ops compute A := B op C; immediate forms
// compute A := B op Imm. Control transfer ops are the only instructions
// that may end a basic block.
const (
	Nop Op = iota

	// Data movement.
	MovI // A := Imm
	Mov  // A := B

	// Three-address ALU.
	Add // A := B + C
	Sub // A := B - C
	Mul // A := B * C
	Div // A := B / C (C==0 yields 0)
	Rem // A := B % C (C==0 yields 0)
	And // A := B & C
	Or  // A := B | C
	Xor // A := B ^ C
	Shl // A := B << (C & 63)
	Shr // A := B >> (C & 63) (arithmetic)

	// Immediate ALU.
	AddI // A := B + Imm
	MulI // A := B * Imm
	AndI // A := B & Imm
	RemI // A := B % Imm (Imm==0 yields 0)

	// Memory. Addresses are word indices.
	Load  // A := Mem[B + Imm]
	Store // Mem[B + Imm] := A

	// Control transfer.
	Jmp     // pc := Target
	Br      // if Cond(A, B) { pc := Target } else fall through
	BrI     // if Cond(A, Imm) { pc := Target } else fall through
	JmpInd  // pc := A (value must be a valid block entry address)
	Call    // push return address; pc := Target
	CallInd // push return address; pc := A
	Ret     // pc := popped return address
	Halt    // stop the machine

	numOps
)

var opNames = [numOps]string{
	Nop:     "nop",
	MovI:    "movi",
	Mov:     "mov",
	Add:     "add",
	Sub:     "sub",
	Mul:     "mul",
	Div:     "div",
	Rem:     "rem",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	Shl:     "shl",
	Shr:     "shr",
	AddI:    "addi",
	MulI:    "muli",
	AndI:    "andi",
	RemI:    "remi",
	Load:    "load",
	Store:   "store",
	Jmp:     "jmp",
	Br:      "br",
	BrI:     "bri",
	JmpInd:  "jmpind",
	Call:    "call",
	CallInd: "callind",
	Ret:     "ret",
	Halt:    "halt",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps }

// IsControl reports whether the opcode transfers control (and therefore must
// terminate a basic block).
func (op Op) IsControl() bool {
	switch op {
	case Jmp, Br, BrI, JmpInd, Call, CallInd, Ret, Halt:
		return true
	}
	return false
}

// IsConditional reports whether the opcode is a conditional branch.
func (op Op) IsConditional() bool { return op == Br || op == BrI }

// IsIndirect reports whether the opcode's target is computed at runtime.
func (op Op) IsIndirect() bool { return op == JmpInd || op == CallInd }

// IsBackward reports whether a control transfer from pc to target with the
// given taken outcome is a backward branch — the event that terminates an
// interprocedural forward path (Section 3 of the paper). A transfer is
// backward iff it is taken and target <= pc. The equality half is the
// self-branch tie-break: target == pc forms a single-instruction loop, so
// it counts as backward (a back edge, a path boundary), never as forward.
// This is the single definition shared by the VM event stream, the path
// tracker, the boa constructor and the cfg back-edge detector.
func IsBackward(pc, target int, taken bool) bool {
	return taken && target <= pc
}

// Cond enumerates comparison conditions for conditional branches.
type Cond uint8

// Comparison conditions.
const (
	Eq Cond = iota // ==
	Ne             // !=
	Lt             // <  (signed)
	Le             // <=
	Gt             // >
	Ge             // >=

	numConds
)

var condNames = [numConds]string{Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}

// String returns the mnemonic for the condition.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c is a defined condition.
func (c Cond) Valid() bool { return c < numConds }

// Eval evaluates the condition on two operand values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// Instr is a single machine instruction. Fields are interpreted per opcode;
// unused fields must be zero so that instructions compare cleanly.
type Instr struct {
	Op     Op
	Cond   Cond  // Br, BrI only
	A      uint8 // destination / source register per opcode
	B      uint8 // source register
	C      uint8 // source register
	Imm    int64 // immediate operand
	Target int32 // branch/call target address
}

// Validate checks structural validity of the instruction: defined opcode and
// condition, and register operands in range. It does not check branch
// targets; that requires program context (see prog.Program.Validate).
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if in.Op.IsConditional() && !in.Cond.Valid() {
		return fmt.Errorf("isa: invalid condition %d on %v", uint8(in.Cond), in.Op)
	}
	if int(in.A) >= NumRegs || int(in.B) >= NumRegs || int(in.C) >= NumRegs {
		return fmt.Errorf("isa: register out of range in %v (a=%d b=%d c=%d)", in.Op, in.A, in.B, in.C)
	}
	return nil
}

// String renders the instruction in assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case Nop, Halt, Ret:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("movi r%d, %d", in.A, in.Imm)
	case Mov:
		return fmt.Sprintf("mov r%d, r%d", in.A, in.B)
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	case AddI, MulI, AndI, RemI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case Load:
		return fmt.Sprintf("load r%d, [r%d+%d]", in.A, in.B, in.Imm)
	case Store:
		return fmt.Sprintf("store [r%d+%d], r%d", in.B, in.Imm, in.A)
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case Br:
		return fmt.Sprintf("br.%s r%d, r%d, @%d", in.Cond, in.A, in.B, in.Target)
	case BrI:
		return fmt.Sprintf("bri.%s r%d, %d, @%d", in.Cond, in.A, in.Imm, in.Target)
	case JmpInd:
		return fmt.Sprintf("jmpind r%d", in.A)
	case Call:
		return fmt.Sprintf("call @%d", in.Target)
	case CallInd:
		return fmt.Sprintf("callind r%d", in.A)
	}
	return in.Op.String()
}

// BranchKind classifies dynamic control transfer events for the profiling
// layers. Conditional branches contribute outcome bits to path signatures,
// indirect transfers contribute their target addresses, and all taken
// backward transfers terminate a forward path.
type BranchKind uint8

// Branch kinds.
const (
	KindCond     BranchKind = iota // Br, BrI
	KindJump                       // Jmp
	KindIndirect                   // JmpInd
	KindCall                       // Call
	KindCallInd                    // CallInd
	KindReturn                     // Ret

	numKinds
)

var kindNames = [numKinds]string{
	KindCond:     "cond",
	KindJump:     "jump",
	KindIndirect: "indirect",
	KindCall:     "call",
	KindCallInd:  "callind",
	KindReturn:   "return",
}

// String returns a short name for the branch kind.
func (k BranchKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindOf returns the branch kind for a control opcode, and ok=false for
// non-control opcodes and Halt (which produces no branch event).
func KindOf(op Op) (k BranchKind, ok bool) {
	switch op {
	case Br, BrI:
		return KindCond, true
	case Jmp:
		return KindJump, true
	case JmpInd:
		return KindIndirect, true
	case Call:
		return KindCall, true
	case CallInd:
		return KindCallInd, true
	case Ret:
		return KindReturn, true
	}
	return 0, false
}
